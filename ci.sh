#!/usr/bin/env bash
# CI entry point. Five jobs:
#   ./ci.sh verify    — tier-1: configure, build, run the full test suite
#   ./ci.sh sanitize  — ASan+UBSan build of src/ + tests, warnings-as-errors
#   ./ci.sh tsan      — TSan build; runs the parallel-runtime test slice
#   ./ci.sh docs      — markdown links resolve; EXPERIMENTS.md covers every
#                       bench binary and names no binary that doesn't build
#   ./ci.sh bench     — kernels_bench --quick through the RunReport schema,
#                       the <2% profiler-overhead gate (DESIGN.md §11), the
#                       engine events/sec gate vs the committed baseline
#                       (tools/check_engine_perf.py, >30% regression fails),
#                       and the kernel throughput gate
#                       (tools/check_kernel_perf.py, same threshold)
# No arguments runs all in sequence.
set -euo pipefail
cd "$(dirname "$0")"

jobs="${CI_JOBS:-$(nproc)}"

verify() {
  cmake -B build -S .
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
}

sanitize() {
  cmake -B build-asan -S . \
    -DACTCOMP_SANITIZE=ON \
    -DACTCOMP_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$jobs"
  # halt_on_error so ctest reports sanitizer hits as failures.
  ASAN_OPTIONS=detect_leaks=0:halt_on_error=1 \
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --test-dir build-asan --output-on-failure -j "$jobs"
  # The simulator-pinning harness (randomized-DAG properties, fault-layer
  # determinism, byte-for-byte golden tables) and the resilience surface
  # (checkpoint serialization, crash-recovery replay) get an explicit pass
  # under the sanitizers: these suites drive the engine, the fault RNG, and
  # the checkpoint byte-plumbing hardest, and a silent skip here (e.g. a
  # test-name prefix regression hiding them from the -R filter) must fail
  # loudly, so require a non-empty selection. The compress/, wire and
  # Lossless suites join for the lossless codec layer: hand-rolled byte
  # coders (RLE runs, Huffman bit accumulators, plane gathers) are exactly
  # where ASan/UBSan catch off-by-one overruns and shift UB.
  ASAN_OPTIONS=detect_leaks=0:halt_on_error=1 \
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --test-dir build-asan \
      -R 'golden|property|engine|topology|checkpoint|recovery|kv_cache|serving|Simd|compress/|wire|Lossless' \
      --no-tests=error --output-on-failure -j "$jobs"
  # The same slice once more with the kernel dispatch pinned to the scalar
  # tier: the SIMD tiers must be a pure throughput change (DESIGN.md §15),
  # so the byte-level suites have to pass identically with them disabled —
  # and the scalar kernels get their own sanitizer coverage.
  ACTCOMP_SIMD=scalar \
  ASAN_OPTIONS=detect_leaks=0:halt_on_error=1 \
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --test-dir build-asan \
      -R 'golden|property|engine|topology|checkpoint|recovery|kv_cache|serving|Simd|compress/|wire|Lossless' \
      --no-tests=error --output-on-failure -j "$jobs"
}

tsan() {
  cmake -B build-tsan -S . \
    -DACTCOMP_SANITIZE=thread \
    -DACTCOMP_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$jobs" \
    --target core_test tensor_test compress_test obs_test \
             checkpoint_test recovery_test topology_test \
             kv_cache_test serving_test serving_resilience_test \
             property_test
  # Everything that calls parallel_for runs under TSan: the runtime itself
  # (core/), the tensor kernels (tensor/), the compressor kernels
  # (compress/), and the profiler/registry (obs/), whose zone buffers and
  # CAS loops are exactly the cross-thread state TSan can vet. The
  # checkpoint/recovery suites join because checkpoint capture and the
  # training loop underneath it run tensor kernels on the pool too, and
  # topology/ because the 3D simulator it drives is the newest surface the
  # sanitizers should sweep. kv_cache/ runs its differential decode harness
  # at 1 and 4 pool threads (bit-identity across thread counts is exactly a
  # TSan question), and serving/ joins as the newest engine-driven surface,
  # with serving_resilience/ riding along: the fleet scheduler's seeded
  # determinism contract (same report at any thread count) is a TSan claim.
  # The lossless wire suites join through compress/ (codec unit tests) and
  # the property/Lossless|Stacked slices: the stacked compressor drives the
  # Top-K/quantize inner codecs' parallel_for gathers under TSan.
  # --no-tests=error guards against a prefix regression silently
  # deselecting the slice.
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan \
      -R 'core/|tensor/|compress/|obs/|checkpoint/|recovery/|topology/|kv_cache/|serving/|serving_resilience/|property/Lossless|property/Stacked' \
      --no-tests=error --output-on-failure -j "$jobs"
}

docs() {
  python3 tools/check_docs.py
}

bench() {
  cmake -B build -S .
  cmake --build build -j "$jobs" --target kernels_bench
  mkdir -p build/bench-ci
  # Two quick runs of the same seeded sweep: profiler off, then on. The
  # overhead gate compares their finetune_step timings (ISSUE acceptance:
  # enabled-profiler overhead < 2%; override with ACTCOMP_OVERHEAD_PCT).
  (cd build/bench-ci &&
    ACTCOMP_PROF=0 ../bench/kernels_bench --quick bench_prof_off.json)
  (cd build/bench-ci &&
    ACTCOMP_PROF=1 ../bench/kernels_bench --quick bench_prof_on.json)
  python3 tools/check_overhead.py \
    build/bench-ci/bench_prof_off.json build/bench-ci/bench_prof_on.json \
    "${ACTCOMP_OVERHEAD_PCT:-2.0}"
  # Engine throughput gate: a quick events/sec run against the committed
  # baseline (regenerate with `engine_bench --quick bench/baselines/
  # BENCH_engine.json` on a quiet box when the engine legitimately changes).
  cmake --build build -j "$jobs" --target engine_bench
  (cd build/bench-ci && ../bench/engine_bench --quick bench_engine.json)
  python3 tools/check_engine_perf.py \
    bench/baselines/BENCH_engine.json build/bench-ci/bench_engine.json \
    "${ACTCOMP_ENGINE_PERF_PCT:-30.0}"
  # Kernel throughput gate: the profiler-off quick run above against the
  # committed baseline (regenerate with `kernels_bench bench/baselines/
  # BENCH_kernels.json` on a quiet box when the kernels legitimately
  # change; keep the slower of repeated runs per record). Catches the
  # dispatch landing in the wrong SIMD tier — that is a ~30x drop, so the
  # 50% default rides out the reference box's frequency swings.
  python3 tools/check_kernel_perf.py \
    bench/baselines/BENCH_kernels.json build/bench-ci/bench_prof_off.json \
    "${ACTCOMP_KERNEL_PERF_PCT:-50.0}"
}

case "${1:-all}" in
  verify) verify ;;
  sanitize) sanitize ;;
  tsan) tsan ;;
  docs) docs ;;
  bench) bench ;;
  all)
    verify
    sanitize
    tsan
    docs
    bench
    ;;
  *)
    echo "usage: $0 [verify|sanitize|tsan|docs|bench|all]" >&2
    exit 2
    ;;
esac
