#!/usr/bin/env bash
# CI entry point. Three jobs:
#   ./ci.sh verify    — tier-1: configure, build, run the full test suite
#   ./ci.sh sanitize  — ASan+UBSan build of src/ + tests, warnings-as-errors
#   ./ci.sh tsan      — TSan build; runs the parallel-runtime test slice
# No arguments runs all in sequence.
set -euo pipefail
cd "$(dirname "$0")"

jobs="${CI_JOBS:-$(nproc)}"

verify() {
  cmake -B build -S .
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
}

sanitize() {
  cmake -B build-asan -S . \
    -DACTCOMP_SANITIZE=ON \
    -DACTCOMP_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$jobs"
  # halt_on_error so ctest reports sanitizer hits as failures.
  ASAN_OPTIONS=detect_leaks=0:halt_on_error=1 \
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --test-dir build-asan --output-on-failure -j "$jobs"
  # The simulator-pinning harness (randomized-DAG properties, fault-layer
  # determinism, byte-for-byte golden tables) gets an explicit pass under the
  # sanitizers: these suites drive the engine and the fault RNG hardest, and
  # a silent skip here (e.g. a test-name prefix regression hiding them from
  # the -R filter) must fail loudly, so require a non-empty selection.
  ASAN_OPTIONS=detect_leaks=0:halt_on_error=1 \
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --test-dir build-asan -R 'golden|property|engine' \
      --no-tests=error --output-on-failure -j "$jobs"
}

tsan() {
  cmake -B build-tsan -S . \
    -DACTCOMP_SANITIZE=thread \
    -DACTCOMP_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$jobs" \
    --target core_test tensor_test compress_test
  # Everything that calls parallel_for runs under TSan: the runtime itself
  # (core/), the tensor kernels (tensor/), and the compressor kernels
  # (compress/). --no-tests=error guards against a prefix regression
  # silently deselecting the slice.
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan -R 'core/|tensor/|compress/' \
      --no-tests=error --output-on-failure -j "$jobs"
}

case "${1:-all}" in
  verify) verify ;;
  sanitize) sanitize ;;
  tsan) tsan ;;
  all)
    verify
    sanitize
    tsan
    ;;
  *)
    echo "usage: $0 [verify|sanitize|tsan|all]" >&2
    exit 2
    ;;
esac
