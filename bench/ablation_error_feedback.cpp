// Ablation (paper §3.3): the paper's implementation supports error-feedback
// compression but never evaluates it. Does EF rescue sparsification?
//
// Frozen-probe protocol on MNLI-m (the most stable column): attach T3 with
// and without the error-feedback wrapper and with/without the hybrid
// AE+quant extension, and compare post-hoc accuracy. EF helps streaming
// signals whose error can be replayed (its classic data-parallel role);
// across a frozen forward pass its benefit is limited because consecutive
// batches are not the same signal — which is presumably why the paper left
// it unevaluated.
#include <cstdio>

#include "autograd/functions.h"
#include "bench/lab.h"
#include "compress/error_feedback.h"
#include "compress/hybrid.h"
#include "compress/topk.h"
#include "train/optimizer.h"
#include "train/trainer.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("ablation_error_feedback");
  namespace ag = autograd;
  const int64_t seq = 24;
  const int64_t L = bench::bench_model_config(seq).num_layers;

  bench::FrozenProbe probe =
      bench::train_frozen_probe(data::TaskId::kMnliM, seq, 3131);
  std::printf("Ablation — error feedback and the hybrid codec (MNLI-m, frozen probe)\n\n");
  std::printf("%-22s %10s\n", "configuration", "accuracy");
  std::printf("%-22s %10.2f\n", "baseline (w/o)", probe.baseline_metric);

  // T3 plain vs T3 + error feedback.
  for (bool ef : {false, true}) {
    tensor::Generator gen(17);
    const auto plan = core::CompressionPlan::paper_default(compress::Setting::kT3, L);
    core::CompressionBinder binder(*probe.model, plan, 2, gen, ef);
    tensor::Generator tg(18);
    const double acc = train::evaluate_classification(
        *probe.model, *probe.cls_head, *probe.dev, tg);
    std::printf("%-22s %10.2f\n", ef ? "T3 + error feedback" : "T3", acc);
  }

  // Hybrid AE+quant: train the codecs on the frozen model (as posthoc does
  // for plain AEs), then evaluate. Uses the A2 code size with 4-bit codes —
  // ~4x smaller messages than A2 itself.
  {
    tensor::Generator gen(19);
    const int64_t h = probe.config.hidden;
    const int64_t c = compress::ae_code_size(compress::Setting::kA2, h);
    std::vector<std::unique_ptr<compress::HybridAeQuantCompressor>> codecs;
    for (int64_t l = L / 2; l < L; ++l) {
      codecs.push_back(
          std::make_unique<compress::HybridAeQuantCompressor>(h, c, 4, gen));
      probe.model->set_layer_compression(l, codecs[codecs.size() - 1].get(),
                                         codecs[codecs.size() - 1].get());
    }
    std::vector<ag::Variable> params;
    for (auto& cd : codecs) {
      for (auto& p : cd->parameters()) params.push_back(p);
    }
    train::Adam copt(params, 2e-3f);
    tensor::Generator tg(20);
    for (int e = 0; e < 2; ++e) {
      for (const auto& b : probe.train->epoch_batches(16, &tg)) {
        copt.zero_grad();
        ag::Variable out = probe.model->forward(b.input, tg, true);
        ag::softmax_cross_entropy(probe.cls_head->forward(out), b.class_labels)
            .backward();
        copt.step();
      }
    }
    const double acc = train::evaluate_classification(
        *probe.model, *probe.cls_head, *probe.dev, tg);
    std::printf("%-22s %10.2f\n", "hybrid AE+4b (ours)", acc);
    for (int64_t l = L / 2; l < L; ++l) {
      probe.model->set_layer_compression(l, nullptr, nullptr);
    }
  }

  // Reference: plain A2 under the same protocol.
  {
    const auto plan = core::CompressionPlan::paper_default(compress::Setting::kA2, L);
    std::printf("%-22s %10.2f\n", "A2 (reference)",
                bench::posthoc_metric(probe, plan, 2, 21));
  }
  std::printf(
      "\nTakeaway: EF does not rescue Top-K on a frozen forward pass (its\n"
      "residual replay assumes a persistent signal, which fresh batches are\n"
      "not); the hybrid codec stays within a few points of A2 at ~4x less\n"
      "traffic — the direction the paper's conclusion points to.\n");
  return 0;
}
