// Reproduces paper Figure 5: the analytical performance model vs "real"
// measurements (our calibrated simulator plays the role of the testbed).
//
//   (a) per-layer computation time vs hidden size — real vs alpha-fit
//   (b) tensor-parallel all-reduce time vs hidden size — real vs piecewise fit
//   (c) AE encode+decode overhead vs hidden size — real vs gamma-fit
//   (d) predicted end-to-end AE speedup vs hidden size (Eq. 2)
//
// Paper shape: (a)-(c) fits track the measurements; (d) the speedup decays
// toward 1 as hidden size grows on a fixed node.
#include <cstdio>

#include "bench/lab.h"
#include "perf/perf_model.h"
#include "sim/hardware.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("fig5_perf_model");
  const auto cluster = sim::ClusterSpec::local_pcie();
  const std::vector<int64_t> hs = {256,  512,  1024, 2048,
                                   4096, 8192, 12288, 16384};
  const auto p = perf::fit_perf_model(cluster, 4, 16, 128, hs, 100);
  std::printf(
      "Figure 5 — perf model fit (1 Transformer layer, TP=4, b=16, s=128, PCIe)\n\n");
  std::vector<std::string> header{"hidden",    "comp real", "comp pred",
                                  "comm real", "comm pred", "ae-ovh real",
                                  "ae-ovh pred", "speedup"};
  std::vector<std::vector<std::string>> body;
  for (int64_t h : hs) {
    const auto m = perf::measure_layer(cluster, 4, 16, 128, h, 100);
    const double comp_pred = perf::t_comp(p, perf::layer_flops(16, 128, h));
    const double comm_pred =
        perf::t_comm(p, 16.0 * 128.0 * static_cast<double>(h));
    const double ovh_pred = perf::t_overhead(p, 16, 128, h);
    const double speedup = perf::speedup_single_node(p, 16, 128, h, 100);
    body.push_back({std::to_string(h), bench::fmt(m.comp_ms),
                    bench::fmt(comp_pred), bench::fmt(m.comm_ms, 3),
                    bench::fmt(comm_pred, 3), bench::fmt(m.ae_overhead_ms, 3),
                    bench::fmt(ovh_pred, 3), bench::fmt(speedup, 3) + "x"});
  }
  bench::print_table(header, body, 10);
  std::printf(
      "\nPaper reference (Fig. 5): alpha fitted at the largest hidden size\n"
      "(small-h fits overpredict large-h compute by up to 30x); comm is\n"
      "piecewise (flat below d = 409,600 elements, linear above); the (d)\n"
      "speedup panel decreases toward 1 as hidden size grows.\n");
  return 0;
}
