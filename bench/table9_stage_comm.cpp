// Reproduces paper Table 9: average communication time per iteration between
// adjacent pipeline stages (pre-training, TP=4/PP=4), without compression
// vs with A2 compressing the last 12 layers.
//
// Paper shape: the 0<->1 boundary (feeding uncompressed layer 6) is
// unchanged; 1<->2 and 2<->3 (feeding compressed layers 12 and 18) shrink
// by roughly the AE ratio, floored by link latency.
#include "bench/simbench.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("table9_stage_comm");
  parallel::ModelParallelSimulator sim(sim::ClusterSpec::aws_p3(4),
                                       nn::BertConfig::bert_large(), {4, 4},
                                       {128, 8, 128});
  const auto base = sim.run_baseline();
  const auto a2 =
      sim.run(core::CompressionPlan::paper_default(compress::Setting::kA2, 24));
  std::printf("Table 9 — forward p2p time per iteration between stages (ms)\n\n");
  std::vector<std::string> header{"Pipeline Stages", "Comm (w/o)", "Comm (A2)"};
  std::vector<std::vector<std::string>> body;
  for (size_t b = 0; b < base.boundary_fwd_ms.size(); ++b) {
    body.push_back({std::to_string(b) + " <-> " + std::to_string(b + 1),
                    bench::fmt(base.boundary_fwd_ms[b]),
                    bench::fmt(a2.boundary_fwd_ms[b])});
  }
  bench::print_table(header, body);
  std::printf(
      "\nPaper reference (Table 9): w/o = 77.8 / 88.7 / 97.7 ms; A2 = 76.1 /\n"
      "13.2 / 14.1 ms — first boundary unchanged, later ones ~6.7x smaller.\n");
  return 0;
}
