// Reproduces paper Table 5: fine-tuning accuracy over the nine GLUE-style
// task columns under every compression setting (TP=2/PP=2 plan: the last
// half of the layers is compressed at both tensor-parallel points, plus the
// mid-network pipeline boundary).
//
// Two panels:
//   A. the paper's protocol — fine-tune WITH compression active. At our
//      reduced scale joint training co-adapts around sparsification, so
//      Top-K damage is milder than the paper's catastrophic numbers.
//   B. the frozen-probe protocol — train uncompressed, freeze, attach
//      compression at evaluation (AE codecs trained on the frozen model).
//      This isolates information destruction and reproduces the paper's
//      ordering: quantization ~ baseline > AE > Top-K, and T4 > T1.
//
// Metrics follow the paper: F1 for QQP/MRPC, Matthews for CoLA, Spearman for
// STS-B, accuracy elsewhere; all x100.
#include <cstdio>

#include "bench/lab.h"
#include "data/tasks.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("table5_glue_finetune");
  const std::vector<compress::Setting> settings = {
      compress::Setting::kBaseline, compress::Setting::kA1,
      compress::Setting::kA2,       compress::Setting::kT1,
      compress::Setting::kT2,       compress::Setting::kT3,
      compress::Setting::kT4,       compress::Setting::kQ1,
      compress::Setting::kQ2};
  const int64_t seq = 24;
  const int64_t layers = bench::bench_model_config(seq).num_layers;

  std::vector<std::string> header{"Algorithm"};
  for (const auto& t : data::all_tasks()) header.push_back(t.name);
  header.push_back("Avg.");

  std::printf(
      "Table 5 — fine-tuning accuracy x100 (scale %.2f; model h=32, L=%lld,\n"
      "last %lld layers compressed; see header comment for protocol notes)\n\n"
      "Panel A: compressed fine-tuning (paper protocol, half-budget recipes)\n\n",
      bench::bench_scale(), static_cast<long long>(layers),
      static_cast<long long>(layers / 2));
  {
    std::vector<std::vector<std::string>> body;
    for (auto s : settings) {
      std::vector<std::string> row{compress::setting_label(s)};
      double sum = 0.0;
      for (const auto& t : data::all_tasks()) {
        const auto plan = core::CompressionPlan::paper_default(s, layers);
        const double m = bench::compressed_finetune(t.id, s, plan, seq, 1234, /*light=*/true);
        row.push_back(bench::fmt(m));
        sum += m;
      }
      row.push_back(bench::fmt(sum / static_cast<double>(data::all_tasks().size())));
      body.push_back(std::move(row));
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf("\n");
    bench::print_table(header, body, 10, 9);
  }

  std::printf("\nPanel B: frozen-probe (compression applied post-hoc)\n\n");
  {
    // One baseline training per task, then cheap evaluations per setting.
    std::vector<bench::FrozenProbe> probes;
    for (const auto& t : data::all_tasks()) {
      probes.push_back(bench::train_frozen_probe(t.id, seq, 77));
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf("\n");
    std::vector<std::vector<std::string>> body;
    for (auto s : settings) {
      std::vector<std::string> row{compress::setting_label(s)};
      double sum = 0.0;
      for (auto& p : probes) {
        double m;
        if (s == compress::Setting::kBaseline) {
          m = p.baseline_metric;
        } else {
          const auto plan = core::CompressionPlan::paper_default(s, layers);
          m = bench::posthoc_metric(p, plan, /*pp_degree=*/2, 91);
        }
        row.push_back(bench::fmt(m));
        sum += m;
      }
      row.push_back(bench::fmt(sum / static_cast<double>(probes.size())));
      body.push_back(std::move(row));
    }
    bench::print_table(header, body, 10, 9);
  }

  std::printf(
      "\nPaper reference (Table 5): w/o avg 86.64; A1/A2 avg ~82.5 (within\n"
      "~3-4 points); T1..T4 avg 44.8 / 55.0 / 50.9 / 70.9 (catastrophic,\n"
      "improving with kept fraction); Q1/Q2 avg 80.0 / 85.0. CoLA and RTE\n"
      "are the most damaged columns. Expect the ordering (Q ~ w/o > A > T,\n"
      "T4 > T1, CoLA/RTE weakest) in Panel B; Panel A shows compression-\n"
      "aware training recovering much of the loss at this scale.\n");
  return 0;
}
