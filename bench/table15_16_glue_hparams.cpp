// Reproduces paper Tables 15-16 (appendix): fine-tuning accuracy at the
// smaller hyper-parameter settings —
//   Table 15: batch 32, seq 128   ->  here: batch 16, seq 16 (scaled)
//   Table 16: batch 8,  seq 128   ->  here: batch 8,  seq 16
// with the TP=2/PP=2 plan (last half of the layers compressed).
//
// Paper shape: the same setting ordering as Table 5 persists at smaller
// shapes, with lower absolute scores (shorter sequences carry less signal)
// and more variance, especially on CoLA/RTE/STS-B.
#include <cstdio>

#include "bench/lab.h"
#include "core/binder.h"
#include "train/trainer.h"

namespace {

using namespace actcomp;

double run_cell(data::TaskId task, compress::Setting setting, int64_t seq,
                int64_t batch, uint64_t seed) {
  tensor::Generator gen(seed);
  const nn::BertConfig cfg = bench::bench_model_config(seq);
  nn::BertModel model(cfg, gen);
  core::CompressionBinder binder(
      model, core::CompressionPlan::paper_default(setting, cfg.num_layers),
      /*pp_degree=*/2, gen);
  const auto recipe = bench::light_recipe(task);
  data::TaskDataset train_ds =
      data::make_task_dataset(task, recipe.train_n, seq, gen);
  data::TaskDataset dev_ds =
      data::make_task_dataset(task, bench::scaled(256, 64), seq, gen);
  train::FinetuneConfig fc;
  fc.batch_size = batch;
  fc.epochs = recipe.epochs;
  fc.lr = recipe.lr;
  fc.seed = seed + 1;
  return train::finetune(model, train_ds, dev_ds, fc, &binder).dev_metric;
}

void run_panel(const char* caption, int64_t seq, int64_t batch) {
  const std::vector<compress::Setting> settings = {
      compress::Setting::kBaseline, compress::Setting::kA1,
      compress::Setting::kA2,       compress::Setting::kT1,
      compress::Setting::kT2,       compress::Setting::kT3,
      compress::Setting::kT4,       compress::Setting::kQ1,
      compress::Setting::kQ2};
  std::printf("%s\n\n", caption);
  std::vector<std::string> header{"Algorithm"};
  for (const auto& t : data::all_tasks()) header.push_back(t.name);
  std::vector<std::vector<std::string>> body;
  for (auto s : settings) {
    std::vector<std::string> row{compress::setting_label(s)};
    for (const auto& t : data::all_tasks()) {
      row.push_back(bench::fmt(run_cell(t.id, s, seq, batch, 4242)));
    }
    body.push_back(std::move(row));
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  bench::print_table(header, body, 10, 9);
  std::printf("\n");
}

}  // namespace

int main() {
  obs::RunReport report("table15_16_glue_hparams");
  std::printf(
      "Tables 15-16 — fine-tuning accuracy x100 at smaller shapes (scale %.2f)\n\n",
      bench::bench_scale());
  run_panel("Table 15 — batch 16, seq 16 (paper: b=32, s=128)", 16, 16);
  run_panel("Table 16 — batch 8, seq 16 (paper: b=8, s=128)", 16, 8);
  std::printf(
      "Paper reference: same ordering as Table 5 with lower absolute scores\n"
      "and higher variance; e.g. Table 16 w/o MNLI 86.2 vs Table 5's 88.1,\n"
      "CoLA collapsing to 0 for several compressed settings.\n");
  return 0;
}
