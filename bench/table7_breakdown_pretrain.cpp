// Reproduces paper Table 7: per-phase breakdown of the pre-training
// iteration at TP=4/PP=4 on 4 nodes (micro 128, global 1024, seq 128).
//
// Uses the paper's pre-training accounting: Forward/Backward are the
// busiest rank's totals across all micro-batches; Waiting & Pipeline Comm.
// absorbs the pipeline bubble and inter-node transfers.
#include "bench/simbench.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("table7_breakdown_pretrain");
  report.set_config("tp", int64_t{4});
  report.set_config("pp", int64_t{4});
  report.set_config("micro_batch", int64_t{128});
  report.set_config("num_micro", int64_t{8});
  report.set_config("seq", int64_t{128});
  report.set_config("cluster", "aws_p3x4");
  parallel::ModelParallelSimulator sim(sim::ClusterSpec::aws_p3(4),
                                       nn::BertConfig::bert_large(), {4, 4},
                                       {128, 8, 128});
  std::printf(
      "Table 7 — pre-training breakdown (ms), TP=4/PP=4, 4 nodes\n\n");
  std::vector<std::vector<std::string>> body;
  for (auto s : compress::main_settings()) {
    const auto plan = core::CompressionPlan::paper_default(s, 24);
    body.push_back(bench::breakdown_row(compress::setting_label(s), sim.run(plan),
                                        obs::Accounting::kPretrain));
  }
  bench::print_table(obs::breakdown_header(), body, 12);
  std::printf(
      "\nPaper reference (Table 7): w/o total 1,422 with wait 528; A1 total\n"
      "1,243 with wait 233; quantization inflates waiting (Q1 wait 1,205)\n"
      "because its backward boundary gradient stays full-size (§3.3).\n");
  return 0;
}
