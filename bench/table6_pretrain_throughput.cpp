// Reproduces paper Table 6: pre-training iteration time across compression
// settings and distributed settings, on 4 x p3.8xlarge (16 GPUs), micro
// batch 128, global batch 1024 (8 micro-batches), sequence length 128.
//
// Paper shape to check: TP=4/PP=4 is the best distributed setting; A1/A2
// beat the baseline (up to ~16%); T1/T2 give small gains; quantization and
// Random-K lose; TP=8/PP=2 (TP spilling across nodes) is ~10x slower.
#include "bench/simbench.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("table6_pretrain_throughput");
  bench::print_iteration_table(
      "Table 6 — pre-training iteration time (ms), 4 nodes x 4 V100",
      sim::ClusterSpec::aws_p3(4), bench::pretrain_parallel_rows(),
      parallel::TrainJob{128, 8, 128}, compress::main_settings());
  std::printf(
      "Paper reference (Table 6): w/o = 1,625 / 1,422 / 15,642 ms; best cell\n"
      "A2 at TP=4/PP=4 = 1,223 ms (16%% faster than baseline).\n");
  return 0;
}
