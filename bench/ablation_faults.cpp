// Ablation: does activation compression still help when the cluster is NOT
// clean? The paper's throughput tables (2-7) assume healthy links and
// uniform stages; its own PCIe/Ethernet results show the compressor ranking
// is bandwidth-sensitive, so stragglers and flaky links — the regime real
// model-parallel jobs live in — can flip it. The fault-injection layer
// (sim/faults.h) lets us ask that question rigorously.
//
// Protocol: for each (schedule x compressor x fault profile) cell, replay
// the iteration `trials` times with per-trial fault seeds and report the
// p50/p95/p99 makespan plus the slowdown vs the clean run. Every number is
// deterministic in the base seed (re-run the binary, get the same table).
//
//   $ ./ablation_faults [trials] [base_seed]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/simbench.h"
#include "core/threadpool.h"
#include "sim/faults.h"

int main(int argc, char** argv) {
  using namespace actcomp;
  obs::RunReport report("ablation_faults");
  const int trials = argc > 1 ? std::atoi(argv[1]) : 25;
  const uint64_t base_seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const auto cluster = sim::ClusterSpec::local_pcie();
  const auto model = nn::BertConfig::bert_large();
  const parallel::ParallelConfig par{2, 2};
  const parallel::TrainJob job{32, 4, 512};

  struct NamedProfile {
    const char* label;
    sim::FaultProfile profile;
  };
  const NamedProfile profiles[] = {
      {"straggler 1.5x", sim::FaultProfile::straggler(1, 1.5, 0)},
      {"link 4x slower", sim::FaultProfile::degraded_link(4.0, 0)},
      {"flaky link 10%",
       sim::FaultProfile::flaky_link(0.10, /*timeout=*/5.0, /*backoff=*/2.0, 0)},
      {"chaos", sim::FaultProfile::chaos(0)},
  };
  const compress::Setting settings[] = {
      compress::Setting::kBaseline, compress::Setting::kA1,
      compress::Setting::kT1, compress::Setting::kQ1};
  const struct {
    sim::ScheduleKind kind;
    const char* label;
  } schedules[] = {{sim::ScheduleKind::k1F1B, "1F1B"},
                   {sim::ScheduleKind::kGpipe, "GPipe"}};

  std::printf(
      "Ablation — fault injection: makespan distribution under stragglers,\n"
      "degraded links, and transient outages (cluster %s, TP=%d/PP=%d,\n"
      "micro %lld x %lld, seq %lld; %d trials, base seed %llu)\n",
      cluster.name.c_str(), par.tp, par.pp,
      static_cast<long long>(job.micro_batch),
      static_cast<long long>(job.num_micro), static_cast<long long>(job.seq),
      trials, static_cast<unsigned long long>(base_seed));

  bench::FaultSweep sweep;
  sweep.trials = trials;
  sweep.base_seed = base_seed;

  const auto wall_start = std::chrono::steady_clock::now();
  int64_t total_trials = 0;

  for (const auto& sched : schedules) {
    for (const auto& np : profiles) {
      std::printf("\n[%s | %s]\n\n", sched.label, np.label);
      std::vector<std::string> header{"Algorithm", "clean ms", "p50 ms",
                                      "p95 ms",    "p99 ms",   "x clean"};
      std::vector<std::vector<std::string>> body;
      double best_p99 = 1e300;
      std::string best_label;
      for (auto s : settings) {
        const auto plan = core::CompressionPlan::paper_default(s, model.num_layers);
        const auto summary = sweep.run(np.profile, [&](const sim::FaultProfile& fp) {
          parallel::SimOptions opts(sched.kind, 1, false, false, fp);
          parallel::ModelParallelSimulator sim(cluster, model, par, job, opts);
          return sim.run(plan).total_ms();
        });
        body.push_back({compress::setting_label(s), bench::fmt(summary.clean_ms),
                        bench::fmt(summary.p50_ms), bench::fmt(summary.p95_ms),
                        bench::fmt(summary.p99_ms),
                        bench::fmt(summary.slowdown_p99(), 3)});
        if (summary.p99_ms < best_p99) {
          best_p99 = summary.p99_ms;
          best_label = compress::setting_label(s);
        }
        total_trials += summary.trials;
      }
      bench::print_table(header, body, 12);
      std::printf("\nlowest p99: %s (%.2f ms)\n", best_label.c_str(), best_p99);
    }
  }

  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  std::printf("\ntotal wall clock: %.2f s  (%lld trials, %.1f trials/sec, %d threads)\n",
              wall_s, static_cast<long long>(total_trials),
              wall_s > 0 ? static_cast<double>(total_trials) / wall_s : 0.0,
              core::num_threads());

  std::printf(
      "\nTakeaway: compression buys robustness headroom, not just mean\n"
      "throughput — smaller messages spend less time on a degraded or flaky\n"
      "link, so the compressed settings' tail (p99) degrades more slowly\n"
      "than the baseline's; a pure compute straggler, by contrast, hits\n"
      "every algorithm equally and compression cannot help.\n");
  return 0;
}
