// Reproduces paper Table 3: AE iteration time with vs without NVLink.
//
// Paper shape: with NVLink, AE gives no gain at TP>=2; without NVLink
// (PCIe), AE wins — up to 17.8% at TP=4/PP=1 in the paper.
#include "bench/simbench.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("table3_nvlink_ablation");
  const std::vector<compress::Setting> cols = {
      compress::Setting::kBaseline, compress::Setting::kA1, compress::Setting::kA2};
  bench::print_iteration_table("Table 3a — fine-tuning with NVLink",
                               sim::ClusterSpec::aws_p3(1),
                               bench::finetune_parallel_rows(),
                               parallel::TrainJob{32, 1, 512}, cols);
  bench::print_iteration_table("Table 3b — fine-tuning without NVLink (PCIe)",
                               sim::ClusterSpec::local_pcie(),
                               bench::finetune_parallel_rows(),
                               parallel::TrainJob{32, 1, 512}, cols);
  // Summarize the headline speedup.
  const auto job = actcomp::parallel::TrainJob{32, 1, 512};
  const double base = bench::cell_total_ms(sim::ClusterSpec::local_pcie(), {4, 1},
                                           job, compress::Setting::kBaseline);
  const double a1 = bench::cell_total_ms(sim::ClusterSpec::local_pcie(), {4, 1},
                                         job, compress::Setting::kA1);
  std::printf("PCIe TP=4/PP=1 AE speedup: %.1f%%  (paper: up to 17.8%%)\n",
              (base / a1 - 1.0) * 100.0);
  return 0;
}
