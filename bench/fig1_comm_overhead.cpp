// Reproduces paper Figure 1: the fraction of iteration time spent on model-
// parallel communication for BERT-Large on 4 GPUs, as (batch, seq) grows.
//
// Paper shape: the communication share is substantial (tens of percent) and
// grows with batch size and sequence length — the motivation for the paper.
#include "bench/simbench.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("fig1_comm_overhead");
  std::printf(
      "Figure 1 — model-parallel communication share of iteration time\n"
      "(BERT-Large, fp16, 4 GPUs TP=4, PCIe machine)\n\n");
  std::vector<std::string> header{"(batch, seq)", "comm ms", "total ms",
                                  "comm share"};
  std::vector<std::vector<std::string>> body;
  const std::pair<int64_t, int64_t> pts[] = {
      {8, 128}, {8, 256}, {8, 512}, {16, 128}, {16, 256},
      {16, 512}, {32, 128}, {32, 256}, {32, 512}};
  for (auto [b, s] : pts) {
    parallel::ModelParallelSimulator sim(sim::ClusterSpec::local_pcie(),
                                         nn::BertConfig::bert_large(), {4, 1},
                                         {b, 1, s});
    const auto r = sim.run_baseline();
    body.push_back({"(" + std::to_string(b) + ", " + std::to_string(s) + ")",
                    bench::fmt(r.tensor_comm_ms), bench::fmt(r.total_ms()),
                    bench::fmt(100.0 * r.tensor_comm_ms / r.total_ms(), 1) + "%"});
  }
  bench::print_table(header, body);
  std::printf(
      "\nPaper reference (Fig. 1): communication is a large, growing share of\n"
      "iteration time as (batch, seq) scales on the 4-GPU machine.\n");
  return 0;
}
