// Validation sweep: the full 3D simulator (DP x PP x TP replicas on a
// hierarchical datacenter topology) against the §4.7 analytical
// extrapolation (perf::iteration_time_3d) at 128 / 512 / 1024 / 4096
// devices.
//
// The analytic side is Eq. 3's occupancy form plus a flat-ring gradient
// all-reduce term; the simulator additionally models 1F1B warmup/drain
// structure, per-message link latency, scatter-gather boundary
// parallelism, hierarchical all-reduce latency savings, and
// backward-overlapped gradient buckets. The deviation column measures
// exactly that modeling gap — the paper fit its closed form against a real
// cluster the same way (§4.7).
//
// Also reports the discrete-event engine's throughput on each op graph
// (the 4096-device iteration must simulate in seconds, not minutes) and a
// DP-payload ablation: compressed vs fp16 gradients on fat-tree vs 4:1
// oversubscribed spines at the largest scale.
//
//   $ ./ablation_3d
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/simbench.h"
#include "perf/perf_model.h"

namespace {

double wall_s(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  using namespace actcomp;
  obs::RunReport report("ablation_3d");

  // One model-parallel shape (TP=8 fills a node, PP=4 spans four nodes);
  // the data-parallel axis carries the scale-out.
  constexpr int kTp = 8, kPp = 4;
  const auto model = nn::BertConfig::bert_large();
  const parallel::TrainJob job{16, 32, 128};
  const int64_t grad_per_rank =
      parallel::ModelParallelSimulator::parameter_count(model) / (kTp * kPp);

  // Fit the §4.7 closed form once against the datacenter node hardware (the
  // links are scale-invariant; only the spine above them grows).
  const auto fit_cluster = sim::ClusterSpec::datacenter(16);
  const perf::PerfModelParams params = perf::fit_perf_model(
      fit_cluster, kTp, job.micro_batch, job.seq, {128, 256, 512, 1024}, 100);

  std::printf(
      "Ablation — 3D scale-out validation: simulator vs §4.7 analytic\n"
      "extrapolation (TP=%d, PP=%d, BERT-Large, micro %lld x %lld, seq %lld,\n"
      "fat-tree spine over 8-GPU NVLink islands)\n\n",
      kTp, kPp, static_cast<long long>(job.micro_batch),
      static_cast<long long>(job.num_micro), static_cast<long long>(job.seq));

  const int device_counts[] = {128, 512, 1024, 4096};
  std::vector<std::string> header{"Devices",     "DPxPPxTP", "sim ms",
                                  "analytic ms", "dev %",    "DP comm ms",
                                  "engine ops",  "Mops/s"};
  std::vector<std::vector<std::string>> body;

  for (int devices : device_counts) {
    const int nodes = devices / 8;
    const int dp = devices / (kTp * kPp);
    const auto cluster = sim::ClusterSpec::datacenter(nodes);
    const parallel::ModelParallelSimulator sim(cluster, model, {kTp, kPp, dp},
                                               job);

    parallel::IterationBreakdown bd;
    double best_s = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      best_s = std::min(best_s, wall_s([&] { bd = sim.run_baseline(); }));
    }
    // Exact op count of the graph simulate_pipeline builds here (1F1B, v=1,
    // no contention/faults, overlapped grads): per replica 2·m·pp compute
    // ops and 2·m·(pp−1) transfer ops, plus one all-reduce op per stage.
    const int64_t ops =
        static_cast<int64_t>(dp) * (2LL * job.num_micro * kPp +
                                    2LL * job.num_micro * (kPp - 1)) +
        kPp;
    const double mops_per_s = static_cast<double>(ops) / best_s / 1e6;

    perf::Analytic3dConfig ac;
    ac.micro_batch = job.micro_batch;
    ac.seq = job.seq;
    ac.hidden = model.hidden;
    ac.layers = model.num_layers;
    ac.num_micro = job.num_micro;
    ac.pp = kPp;
    ac.dp = dp;
    // fp16 elements/ms on the leaf uplink (pipeline boundaries are
    // neighbor-node hops; the DP ring's bandwidth is spine-preserved under
    // the fat tree, so both axes see the leaf rate).
    const double elems_per_ms = cluster.inter_node.bandwidth_gb_s * 1e9 / 2.0 * 1e-3;
    ac.boundary_elems_per_ms = elems_per_ms;
    ac.dp_elems_per_ms = elems_per_ms;
    ac.grad_elems_per_rank = static_cast<double>(grad_per_rank);
    const double analytic_ms = perf::iteration_time_3d(params, ac);

    const double dev_pct =
        (bd.makespan_ms - analytic_ms) / bd.makespan_ms * 100.0;
    body.push_back({std::to_string(devices),
                    std::to_string(dp) + "x" + std::to_string(kPp) + "x" +
                        std::to_string(kTp),
                    bench::fmt(bd.makespan_ms), bench::fmt(analytic_ms),
                    bench::fmt(dev_pct, 1), bench::fmt(bd.dp_comm_ms),
                    std::to_string(ops), bench::fmt(mops_per_s, 1)});

    obs::json::Value rec = obs::json::Value::object();
    rec.set("op", "sweep_3d");
    rec.set("devices", static_cast<int64_t>(devices));
    rec.set("dp", static_cast<int64_t>(dp));
    rec.set("pp", static_cast<int64_t>(kPp));
    rec.set("tp", static_cast<int64_t>(kTp));
    rec.set("sim_makespan_ms", bd.makespan_ms);
    rec.set("analytic_ms", analytic_ms);
    rec.set("deviation_pct", dev_pct);
    rec.set("dp_comm_ms", bd.dp_comm_ms);
    rec.set("engine_ops", ops);
    rec.set("engine_ops_per_sec", mops_per_s * 1e6);
    report.add_record(std::move(rec));
  }
  bench::print_table(header, body, 9, 12);

  // DP-payload ablation at the largest scale: does compressing the gradient
  // all-reduce matter, and does the answer change on an oversubscribed
  // spine? (The paper's activation question, transposed to the DP axis.)
  std::printf(
      "\nDP gradient payload at 4096 devices (makespan ms / DP comm ms):\n\n");
  const compress::Setting grad_settings[] = {compress::Setting::kBaseline,
                                             compress::Setting::kA1,
                                             compress::Setting::kQ1};
  std::vector<std::string> header2{"Spine"};
  for (auto s : grad_settings) header2.push_back(compress::setting_label(s));
  std::vector<std::vector<std::string>> body2;
  const struct {
    const char* label;
    sim::TopologySpec::Spine spine;
    double factor;
  } spines[] = {{"fat-tree", sim::TopologySpec::Spine::kFatTree, 1.0},
                {"4:1 oversub", sim::TopologySpec::Spine::kOversubscribed, 4.0}};
  for (const auto& sp : spines) {
    const auto cluster = sim::ClusterSpec::datacenter(512, sp.spine, sp.factor);
    std::vector<std::string> row{sp.label};
    for (auto s : grad_settings) {
      parallel::SimOptions opts;
      opts.dp_grad_setting = s;
      const parallel::ModelParallelSimulator sim(cluster, model,
                                                 {kTp, kPp, 128}, job, opts);
      const auto bd = sim.run_baseline();
      row.push_back(bench::fmt(bd.makespan_ms) + " / " +
                    bench::fmt(bd.dp_comm_ms));

      obs::json::Value rec = obs::json::Value::object();
      rec.set("op", "dp_payload");
      rec.set("spine", sp.label);
      rec.set("grad_setting", compress::setting_label(s));
      rec.set("sim_makespan_ms", bd.makespan_ms);
      rec.set("dp_comm_ms", bd.dp_comm_ms);
      report.add_record(std::move(rec));
    }
    body2.push_back(std::move(row));
  }
  bench::print_table(header2, body2, 14, 18);
  return 0;
}
