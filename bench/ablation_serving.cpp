// Ablation: does compressing the TP collectives help *serving*?
//
// The paper prices training iterations; this bench asks the same question of
// autoregressive inference, where the economics invert. A decode step moves
// one token per sequence through every TP collective — the payload collapses
// from micro_batch x seq x h to seqs x h, so the collectives are latency-
// bound, not bandwidth-bound, and the fixed encode/dispatch overhead of a
// compressor is paid per generated token. Prefill looks like training
// (hundreds of tokens per collective) and compression can still buy TTFT on
// slow links.
//
// Protocol: two cluster panels — a single NVLink node (TP=4, the regime
// where the paper's Takeaway 1 says compression already does not pay for
// training) and a TP=8 group spilled across two nodes' 1.25 GB/s uplink (the
// regime where it does). For each compression setting, a seeded Poisson
// request stream (fixed prompt/generation shape) is replayed through the
// continuous-batching serving simulator (sim/serving.h), with every
// scheduler step priced by parallel::make_serving_cost — the same
// compressed-collective rules as the training forward. The rate sweep traces
// a throughput-vs-p99 Pareto per compressor.
//
//   $ ./ablation_serving [num_requests] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/simbench.h"
#include "sim/serving.h"

int main(int argc, char** argv) {
  using namespace actcomp;
  obs::RunReport report("ablation_serving");
  const int num_requests = argc > 1 ? std::atoi(argv[1]) : 64;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const nn::BertConfig model = nn::BertConfig::bert_large();
  const int64_t prompt_tokens = 128;
  const int64_t max_new_tokens = 32;
  const int64_t max_batch = 8;
  const int64_t token_budget = 2048;

  // Baseline plus one compressor per family: autoencoder (allreduce-
  // compatible), Top-K (same ratio as A2), 4-bit quantization.
  const std::vector<compress::Setting> settings = {
      compress::Setting::kBaseline, compress::Setting::kA2,
      compress::Setting::kT3, compress::Setting::kQ2};

  struct Panel {
    const char* label;
    sim::ClusterSpec cluster;
    parallel::ParallelConfig par;
    std::vector<double> rates_per_s;  ///< arrival-rate sweep (Pareto x-axis)
  };
  const Panel panels[] = {
      {"NVLink node, TP=4", sim::ClusterSpec::aws_p3(1), {4, 1},
       {2.0, 6.0, 12.0}},
      {"2 nodes, TP=8 over 1.25 GB/s", sim::ClusterSpec::aws_p3(2), {8, 1},
       {0.5, 1.5, 3.0}},
  };

  report.set_config("num_requests", int64_t{num_requests});
  report.set_config("seed", static_cast<int64_t>(seed));
  report.set_config("prompt_tokens", prompt_tokens);
  report.set_config("max_new_tokens", max_new_tokens);
  report.set_config("max_batch", max_batch);
  report.set_config("token_budget", token_budget);

  std::printf(
      "Ablation — compressed TP collectives under inference serving\n"
      "(BERT-Large, prompt %lld, generate %lld, continuous batching with\n"
      "max_batch %lld / token budget %lld; %d Poisson requests, seed %llu)\n",
      static_cast<long long>(prompt_tokens),
      static_cast<long long>(max_new_tokens),
      static_cast<long long>(max_batch), static_cast<long long>(token_budget),
      num_requests, static_cast<unsigned long long>(seed));

  for (const Panel& panel : panels) {
    std::printf("\n=== %s (cluster %s) ===\n", panel.label,
                panel.cluster.name.c_str());

    // --- Per-step anatomy: where one prefill / one decode step spends. ---
    std::printf("\nStep anatomy (one request prefilling; a full decode "
                "batch mid-generation):\n\n");
    std::vector<std::string> aheader{"setting",   "prefill ms", "decode ms",
                                     "tp comm",   "enc+dec",    "dispatch",
                                     "1-req ttft", "1-req tpot"};
    std::vector<std::vector<std::string>> abody;
    for (compress::Setting s : settings) {
      parallel::ModelParallelSimulator sim(panel.cluster, model, panel.par,
                                           parallel::TrainJob{});
      const auto plan = core::CompressionPlan::paper_default(s, model.num_layers);
      const parallel::InferenceBatch prefill{
          1, prompt_tokens, prompt_tokens * (prompt_tokens + 1) / 2};
      const parallel::InferenceBatch decode{
          max_batch, max_batch,
          max_batch * (prompt_tokens + max_new_tokens / 2)};
      const auto pc = sim.inference_step_cost(plan, prefill);
      const auto dc = sim.inference_step_cost(plan, decode);
      const auto one = sim.run_inference(plan, prompt_tokens, max_new_tokens);
      abody.push_back({compress::setting_label(s), bench::fmt(pc.total_ms()),
                       bench::fmt(dc.total_ms()), bench::fmt(dc.tp_comm_ms),
                       bench::fmt(dc.enc_ms + dc.dec_ms),
                       bench::fmt(dc.dispatch_ms), bench::fmt(one.ttft_ms),
                       bench::fmt(one.per_token_ms)});
    }
    bench::print_table(aheader, abody, 10);

    // --- The serving sweep: one Pareto point per (setting, rate). ---
    for (const double rate : panel.rates_per_s) {
      sim::PoissonTraceSpec spec;
      spec.rate_per_s = rate;
      spec.num_requests = num_requests;
      spec.prompt_tokens = prompt_tokens;
      spec.max_new_tokens = max_new_tokens;
      spec.seed = seed;
      const auto trace = sim::poisson_trace(spec);

      std::printf("\n[%s | %.1f req/s]\n\n", panel.label, rate);
      std::vector<std::string> header{"setting",  "ttft p50", "ttft p99",
                                      "tpot p50", "tpot p99", "e2e p99",
                                      "tok/s",    "conc"};
      std::vector<std::vector<std::string>> body;
      for (compress::Setting s : settings) {
        parallel::ModelParallelSimulator sim(panel.cluster, model, panel.par,
                                             parallel::TrainJob{});
        const auto plan =
            core::CompressionPlan::paper_default(s, model.num_layers);
        sim::ServingConfig cfg;
        cfg.max_batch = max_batch;
        cfg.token_budget = token_budget;
        cfg.step_cost = parallel::make_serving_cost(sim, plan);
        const sim::ServingReport rep = sim::simulate_serving(trace, cfg);

        body.push_back({compress::setting_label(s), bench::fmt(rep.ttft.p50_ms),
                        bench::fmt(rep.ttft.p99_ms), bench::fmt(rep.tpot.p50_ms),
                        bench::fmt(rep.tpot.p99_ms), bench::fmt(rep.e2e.p99_ms),
                        bench::fmt(rep.throughput_tok_s()),
                        bench::fmt(rep.mean_concurrency, 1)});

        obs::json::Value rec = obs::json::Value::object();
        rec.set("panel", std::string(panel.label));
        rec.set("cluster", panel.cluster.name);
        rec.set("tp", int64_t{panel.par.tp});
        rec.set("setting", compress::setting_label(s));
        rec.set("rate_per_s", rate);
        rec.set("completed", rep.completed);
        rec.set("generated_tokens", rep.generated_tokens);
        rec.set("throughput_tok_s", rep.throughput_tok_s());
        rec.set("mean_concurrency", rep.mean_concurrency);
        rec.set("ttft_p50_ms", rep.ttft.p50_ms);
        rec.set("ttft_p95_ms", rep.ttft.p95_ms);
        rec.set("ttft_p99_ms", rep.ttft.p99_ms);
        rec.set("tpot_p50_ms", rep.tpot.p50_ms);
        rec.set("tpot_p95_ms", rep.tpot.p95_ms);
        rec.set("tpot_p99_ms", rep.tpot.p99_ms);
        rec.set("e2e_p99_ms", rep.e2e.p99_ms);
        report.add_record(std::move(rec));
      }
      bench::print_table(header, body, 10);
    }
  }

  std::printf(
      "\nTakeaway: serving inverts the training verdict per phase. Decode\n"
      "collectives carry one token per sequence, so they are latency-bound\n"
      "and every compressor pays its fixed encode/dispatch cost per output\n"
      "token — on the NVLink panel compression only widens the per-token\n"
      "tail (the serving twin of the paper's Takeaway 1). When TP spills\n"
      "across the 1.25 GB/s uplink even the one-token collectives are\n"
      "bandwidth-bound: Top-K and quantization pull TTFT p99 and TPOT below\n"
      "the baseline at every arrival rate, while the autoencoder's heavier\n"
      "per-step overhead still loses. Same model, same compressors — the\n"
      "Pareto winner flips with the link, so the choice must be priced per\n"
      "deployment, which is what this simulator is for.\n");
  return 0;
}
