// Ablation (DESIGN.md §5.1): how much of Top-K's communication cost is the
// wire format? The paper's implementation sends (fp16 value, int32 index)
// pairs — 6 bytes per kept element, which is why the "same compression
// ratio" settings T3/T4 transmit 3x more than the AE they are calibrated
// against. We sweep alternative index encodings at the simulator level and
// report the Table 2 TP=4/PP=1 cell under each.
//
//   int32 index (paper) : 6 B per kept element
//   int16 block-local   : 4 B  (indices relative to 64Ki-element blocks)
//   bitmap              : numel/8 B + 2 B per kept element
#include <cstdio>

#include "bench/simbench.h"
#include "sim/collectives.h"

namespace {

using namespace actcomp;

/// Iteration time with Top-K's per-element metadata cost overridden. We
/// model alternative formats by scaling the all-gather bytes; encode/decode
/// costs are unchanged (format packing is bandwidth-trivial next to the
/// top-k scan itself).
double t3_cell_with_bytes_per_kept(double bytes_per_kept, int64_t extra_fixed) {
  const auto cluster = sim::ClusterSpec::local_pcie();
  parallel::ModelParallelSimulator simulator(
      cluster, nn::BertConfig::bert_large(), {4, 1}, {32, 1, 512});
  // Reconstruct the T3 total by hand: run baseline and A-style deltas via
  // the public simulator, then adjust the comm term analytically.
  const auto plan = core::CompressionPlan::paper_default(compress::Setting::kT3, 24);
  const auto r = simulator.run(plan);
  // Wire bytes actually used by the simulator (6 B per kept element):
  const int64_t numel = 32LL * 512 * 1024;
  const int64_t k = sim::OverheadModel::kept_elements(compress::Setting::kT3, numel);
  const double old_bytes = 6.0 * static_cast<double>(k);
  const double new_bytes =
      bytes_per_kept * static_cast<double>(k) + static_cast<double>(extra_fixed);
  // 24 compressed all-gathers per iteration over the PCIe link at TP=4.
  const double per_gather_delta =
      sim::allgather_ms(static_cast<int64_t>(new_bytes), 4, cluster.intra_node) -
      sim::allgather_ms(static_cast<int64_t>(old_bytes), 4, cluster.intra_node);
  return r.total_ms() + 24.0 * per_gather_delta;
}

}  // namespace

int main() {
  using namespace actcomp;
  obs::RunReport report("ablation_wire_formats");
  std::printf(
      "Ablation — Top-K wire formats (T3, fine-tune, PCIe, TP=4/PP=1)\n\n");
  const int64_t numel = 32LL * 512 * 1024;
  std::vector<std::string> header{"Format", "bytes/kept", "iter ms"};
  std::vector<std::vector<std::string>> body;
  body.push_back({"fp16 + int32 (paper)", "6",
                  bench::fmt(t3_cell_with_bytes_per_kept(6.0, 0))});
  body.push_back({"fp16 + int16 block-local", "4",
                  bench::fmt(t3_cell_with_bytes_per_kept(4.0, 0))});
  body.push_back({"fp16 + bitmap", "2 + n/8k",
                  bench::fmt(t3_cell_with_bytes_per_kept(2.0, numel / 8))});
  const auto cluster = sim::ClusterSpec::local_pcie();
  parallel::ModelParallelSimulator simulator(
      cluster, nn::BertConfig::bert_large(), {4, 1}, {32, 1, 512});
  body.push_back({"w/o (baseline)", "-",
                  bench::fmt(simulator.run_baseline().total_ms())});
  body.push_back(
      {"A1 (reference)", "-",
       bench::fmt(simulator
                      .run(core::CompressionPlan::paper_default(
                          compress::Setting::kA1, 24))
                      .total_ms())});
  bench::print_table(header, body, 26);
  std::printf(
      "\nTakeaway: tighter index encodings shave the sparse formats' comm\n"
      "cost but cannot fix Top-K's encoding overhead, and none matches AE —\n"
      "the format is a second-order effect next to the algorithm choice.\n");
  return 0;
}
