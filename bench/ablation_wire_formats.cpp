// Ablation (DESIGN.md §5.1, §16): what does the wire format itself cost?
//
// Panel 1 — how much of Top-K's communication cost is the index encoding?
// The paper's implementation sends (fp16 value, int32 index) pairs — 6 bytes
// per kept element, which is why the "same compression ratio" settings T3/T4
// transmit 3x more than the AE they are calibrated against. We sweep
// alternative index encodings at the simulator level and report the Table 2
// TP=4/PP=1 cell under each.
//
//   int32 index (paper) : 6 B per kept element
//   int16 block-local   : 4 B  (indices relative to 64Ki-element blocks)
//   bitmap              : numel/8 B + 2 B per kept element
//
// Panel 2 — the column the source paper doesn't have (ZipCCL, PAPERS.md):
// lossless wire coding, alone and stacked over the lossy formats. The
// compression ratios are MEASURED by running the real compress/lossless.h
// codec (rle+huffman) over a seeded proxy activation — deterministic, so the
// table is golden-pinned byte for byte. The codec throughputs fed to the
// cost model are fixed reference constants for a GPU-class codec (ZipCCL
// reports order-100 GB/s on-accelerator); this box's measured scalar-CPU
// GB/s lives in BENCH_kernels.json and is gated separately — pinning the
// link model to constants keeps the golden machine-independent.
//
// Panel 3 — chunk-pipelined collectives: the same lossless config swept over
// the container chunk count. chunks=1 serializes encode → transfer → decode
// (exactly their sum, by the engine's left-to-right realization); chunks>1
// overlaps the three stages on the link, shrinking TP comm monotonically
// toward the bottleneck stage.
#include <cstdio>

#include "bench/simbench.h"
#include "compress/lossless.h"
#include "compress/quantize.h"
#include "compress/settings.h"
#include "compress/wire.h"
#include "sim/collectives.h"
#include "tensor/random.h"

namespace {

using namespace actcomp;

/// Reference GPU-class codec throughputs for the link cost model (see file
/// header). Fixed constants, NOT this box's measurement.
constexpr double kEncodeGbS = 50.0;
constexpr double kDecodeGbS = 100.0;
/// Container chunks for the breakdown panel (the chunk sweep varies it).
constexpr int kChunks = 8;

/// Iteration time with Top-K's per-element metadata cost overridden. We
/// model alternative formats by scaling the all-gather bytes; encode/decode
/// costs are unchanged (format packing is bandwidth-trivial next to the
/// top-k scan itself).
double t3_cell_with_bytes_per_kept(double bytes_per_kept, int64_t extra_fixed) {
  const auto cluster = sim::ClusterSpec::local_pcie();
  parallel::ModelParallelSimulator simulator(
      cluster, nn::BertConfig::bert_large(), {4, 1}, {32, 1, 512});
  // Reconstruct the T3 total by hand: run baseline and A-style deltas via
  // the public simulator, then adjust the comm term analytically.
  const auto plan = core::CompressionPlan::paper_default(compress::Setting::kT3, 24);
  const auto r = simulator.run(plan);
  // Wire bytes actually used by the simulator (6 B per kept element):
  const int64_t numel = 32LL * 512 * 1024;
  const int64_t k = sim::OverheadModel::kept_elements(compress::Setting::kT3, numel);
  const double old_bytes = 6.0 * static_cast<double>(k);
  const double new_bytes =
      bytes_per_kept * static_cast<double>(k) + static_cast<double>(extra_fixed);
  // 24 compressed all-gathers per iteration over the PCIe link at TP=4.
  const double per_gather_delta =
      sim::allgather_ms(static_cast<int64_t>(new_bytes), 4, cluster.intra_node) -
      sim::allgather_ms(static_cast<int64_t>(old_bytes), 4, cluster.intra_node);
  return r.total_ms() + 24.0 * per_gather_delta;
}

/// One measured wire ratio: encoded bytes / inner wire bytes, from real
/// codec runs on a seeded proxy activation (256 x hidden, unit normal — the
/// distribution the TP links carry). Deterministic by construction.
struct MeasuredRatio {
  std::string label;
  int64_t inner_bytes = 0;
  int64_t coded_bytes = 0;
  double ratio() const {
    return static_cast<double>(coded_bytes) / static_cast<double>(inner_bytes);
  }
};

MeasuredRatio measure_fp16_ratio(const tensor::Tensor& x) {
  std::vector<std::byte> raw;
  compress::wire::append_fp16(raw, x);
  const compress::LosslessCodec codec{compress::LosslessAlgo::kRleHuffman,
                                      compress::PlaneSplit::kStride2, 0};
  const auto enc = codec.encode(raw);
  return {"w/o + lossless", static_cast<int64_t>(raw.size()),
          static_cast<int64_t>(enc.size())};
}

MeasuredRatio measure_stacked_ratio(const std::string& label,
                                    compress::CompressorPtr inner,
                                    compress::SegmentLayoutFn layout,
                                    const tensor::Tensor& x) {
  const auto inner_msg = inner->encode(x);
  compress::StackedCompressor stacked(
      std::move(inner),
      compress::LosslessCodec{compress::LosslessAlgo::kRleHuffman,
                              compress::PlaneSplit::kStride2, 0},
      std::move(layout));
  const auto stacked_msg = stacked.encode(x);
  return {label, inner_msg.body_bytes(), stacked_msg.body_bytes()};
}

}  // namespace

int main() {
  using namespace actcomp;
  obs::RunReport report("ablation_wire_formats");
  std::printf(
      "Ablation — Top-K wire formats (T3, fine-tune, PCIe, TP=4/PP=1)\n\n");
  const int64_t numel = 32LL * 512 * 1024;
  std::vector<std::string> header{"Format", "bytes/kept", "iter ms"};
  std::vector<std::vector<std::string>> body;
  body.push_back({"fp16 + int32 (paper)", "6",
                  bench::fmt(t3_cell_with_bytes_per_kept(6.0, 0))});
  body.push_back({"fp16 + int16 block-local", "4",
                  bench::fmt(t3_cell_with_bytes_per_kept(4.0, 0))});
  body.push_back({"fp16 + bitmap", "2 + n/8k",
                  bench::fmt(t3_cell_with_bytes_per_kept(2.0, numel / 8))});
  const auto cluster = sim::ClusterSpec::local_pcie();
  parallel::ModelParallelSimulator simulator(
      cluster, nn::BertConfig::bert_large(), {4, 1}, {32, 1, 512});
  body.push_back({"w/o (baseline)", "-",
                  bench::fmt(simulator.run_baseline().total_ms())});
  body.push_back(
      {"A1 (reference)", "-",
       bench::fmt(simulator
                      .run(core::CompressionPlan::paper_default(
                          compress::Setting::kA1, 24))
                      .total_ms())});
  bench::print_table(header, body, 26);
  std::printf(
      "\nTakeaway: tighter index encodings shave the sparse formats' comm\n"
      "cost but cannot fix Top-K's encoding overhead, and none matches AE —\n"
      "the format is a second-order effect next to the algorithm choice.\n");

  // -------------------------------------------------------------------------
  // Panel 2: lossless / lossy / stacked (WIRE_FORMATS.md §4-§5).
  // -------------------------------------------------------------------------
  const nn::BertConfig model = nn::BertConfig::bert_large();
  const int64_t h = model.hidden;
  tensor::Generator gen(17);
  const tensor::Tensor proxy = gen.normal(tensor::Shape{256, h});

  const MeasuredRatio r_fp16 = measure_fp16_ratio(proxy);
  tensor::Generator cgen(17);
  const MeasuredRatio r_q2 = measure_stacked_ratio(
      "Q2 + lossless",
      compress::make_compressor(compress::Setting::kQ2, h, cgen),
      compress::segments_quantize(), proxy);
  const MeasuredRatio r_t3 = measure_stacked_ratio(
      "T3 + lossless",
      compress::make_compressor(compress::Setting::kT3, h, cgen),
      compress::segments_topk(), proxy);

  std::printf(
      "\n\nMeasured rle+huffman wire ratios (256x%lld unit-normal proxy)\n\n",
      static_cast<long long>(h));
  bench::print_table(
      {"Stack", "inner B", "coded B", "ratio"},
      {{r_fp16.label, std::to_string(r_fp16.inner_bytes),
        std::to_string(r_fp16.coded_bytes), bench::fmt(r_fp16.ratio())},
       {r_q2.label, std::to_string(r_q2.inner_bytes),
        std::to_string(r_q2.coded_bytes), bench::fmt(r_q2.ratio())},
       {r_t3.label, std::to_string(r_t3.inner_bytes),
        std::to_string(r_t3.coded_bytes), bench::fmt(r_t3.ratio())}},
      18);

  const parallel::ParallelConfig par{2, 2};
  const parallel::TrainJob job{32, 1, 512};
  auto run_cell = [&](compress::Setting setting, double ratio, int chunks) {
    parallel::SimOptions opt;
    if (ratio > 0.0) {
      opt.lossless_wire.enabled = true;
      opt.lossless_wire.ratio = ratio;
      opt.lossless_wire.encode_gb_s = kEncodeGbS;
      opt.lossless_wire.decode_gb_s = kDecodeGbS;
      opt.lossless_wire.chunks = chunks;
    }
    parallel::ModelParallelSimulator s(cluster, model, par, job, opt);
    return s.run(setting == compress::Setting::kBaseline
                     ? core::CompressionPlan::none()
                     : core::CompressionPlan::paper_default(
                           setting, model.num_layers));
  };

  std::printf(
      "\n\nLossless / lossy / stacked breakdown (Table 4 accounting, PCIe, "
      "TP=2/PP=2,\ncodec %g/%g GB/s enc/dec, %d chunks)\n\n",
      kEncodeGbS, kDecodeGbS, kChunks);
  std::vector<std::vector<std::string>> rows;
  rows.push_back(bench::breakdown_row(
      "w/o", run_cell(compress::Setting::kBaseline, -1.0, 1),
      obs::Accounting::kFinetune));
  rows.push_back(bench::breakdown_row(
      "w/o + lossless",
      run_cell(compress::Setting::kBaseline, r_fp16.ratio(), kChunks),
      obs::Accounting::kFinetune));
  rows.push_back(bench::breakdown_row(
      "Q2", run_cell(compress::Setting::kQ2, -1.0, 1),
      obs::Accounting::kFinetune));
  rows.push_back(bench::breakdown_row(
      "Q2 + lossless", run_cell(compress::Setting::kQ2, r_q2.ratio(), kChunks),
      obs::Accounting::kFinetune));
  rows.push_back(bench::breakdown_row(
      "T3", run_cell(compress::Setting::kT3, -1.0, 1),
      obs::Accounting::kFinetune));
  rows.push_back(bench::breakdown_row(
      "T3 + lossless", run_cell(compress::Setting::kT3, r_t3.ratio(), kChunks),
      obs::Accounting::kFinetune));
  bench::print_table({"Setting", "Fwd", "Bwd", "Optim", "Wait", "Total", "Enc",
                      "Dec", "TP comm"},
                     rows, 15);

  // -------------------------------------------------------------------------
  // Panel 3: chunk-pipelining sweep (w/o + lossless config).
  // -------------------------------------------------------------------------
  std::printf(
      "\nChunk-pipelined collectives (w/o + lossless): chunks=1 is the\n"
      "serialized encode + transfer + decode sum; more chunks overlap the\n"
      "stages on the link.\n\n");
  std::vector<std::vector<std::string>> crows;
  for (int chunks : {1, 2, 4, 8, 16, 32}) {
    const auto r =
        run_cell(compress::Setting::kBaseline, r_fp16.ratio(), chunks);
    crows.push_back({std::to_string(chunks), bench::fmt(r.tensor_comm_ms),
                     bench::fmt(r.lossless_enc_ms),
                     bench::fmt(r.lossless_dec_ms),
                     bench::fmt(r.total_ms())});
  }
  bench::print_table({"Chunks", "TP comm ms", "ll enc ms", "ll dec ms",
                      "Total ms"},
                     crows, 12);
  std::printf(
      "\nTakeaway: lossless coding is a strict win once the codec outruns the\n"
      "link — ~15%% off every fp16 payload with zero accuracy risk — and\n"
      "stacking it over the lossy formats compresses their metadata planes\n"
      "(Top-K indices, quantize row params) the lossy pass leaves behind.\n"
      "Chunking hides most of the codec time behind the transfer itself.\n");
  return 0;
}
