// Reproduces paper Figure 2: low-rank analysis — order the singular values
// of (a) a weight gradient and (b) a late-layer activation, and plot the
// cumulative singular-value mass ("sigma value percentage") against the
// dimension percentage.
//
// Paper shape: the gradient curve saturates quickly (low-rank); the
// activation curve is near the diagonal (NOT low-rank) — the reason the
// low-rank gradient compressors of data parallelism (PowerSGD etc.) do not
// transfer to activation compression.
#include <cstdio>

#include "autograd/functions.h"
#include "bench/lab.h"
#include "data/dataset.h"
#include "tensor/svd.h"
#include "train/optimizer.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("fig2_lowrank");
  namespace ag = autograd;
  namespace ts = tensor;

  // Train a model briefly on MNLI so the statistics are those of a real
  // training run (not random init), then capture one batch's quantities.
  const int64_t seq = 24;
  ts::Generator gen(5);
  const nn::BertConfig cfg = bench::bench_model_config(seq);
  nn::BertModel model(cfg, gen);
  data::TaskDataset ds = data::make_task_dataset(
      data::TaskId::kMnliM, bench::scaled(512), seq, gen);
  nn::ClassificationHead head(cfg.hidden, 3, gen);
  train::Adam opt(model.parameters(), 5e-4f);
  opt.add_parameters(head.parameters());
  ts::Generator tg(6);
  for (int epoch = 0; epoch < 2; ++epoch) {
    for (const auto& b : ds.epoch_batches(16, &tg)) {
      opt.zero_grad();
      ag::Variable out = model.forward(b.input, tg, true);
      ag::softmax_cross_entropy(head.forward(out), b.class_labels).backward();
      opt.step();
    }
  }

  // One more forward/backward to harvest: activation = last layer's output
  // rows (the "12th transformer layer" analogue), gradient = that layer's
  // attention output-projection weight gradient.
  const auto batch = ds.batch(0, 32);
  opt.zero_grad();
  ag::Variable out = model.forward(batch.input, tg, true);
  ag::softmax_cross_entropy(head.forward(out), batch.class_labels).backward();

  const ts::Tensor activation = out.value().reshape(
      ts::Shape{batch.input.batch * batch.input.seq, cfg.hidden});
  ts::Tensor grad;
  for (const auto& [name, p] : model.named_parameters()) {
    if (name == "layer3.attn.wo.weight") grad = p.grad().clone();
  }

  const auto sv_act = ts::singular_values(activation);
  const auto sv_grad = ts::singular_values(grad);
  const auto cum_act = ts::cumulative_sigma_fraction(sv_act);
  const auto cum_grad = ts::cumulative_sigma_fraction(sv_grad);

  std::printf(
      "Figure 2 — cumulative singular-value mass vs dimension percentage\n"
      "(activation: last-layer output rows; gradient: wo weight gradient)\n\n");
  std::vector<std::string> header{"dim %", "gradient", "activation"};
  std::vector<std::vector<std::string>> body;
  for (int pct : {5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}) {
    const size_t ia = std::min(cum_act.size() - 1, cum_act.size() * pct / 100);
    const size_t ig = std::min(cum_grad.size() - 1, cum_grad.size() * pct / 100);
    body.push_back({std::to_string(pct) + "%",
                    bench::fmt(100.0 * cum_grad[ig], 1) + "%",
                    bench::fmt(100.0 * cum_act[ia], 1) + "%"});
  }
  bench::print_table(header, body, 8);
  std::printf(
      "\nEffective rank (90%% mass): gradient %d / %zu dims, activation %d / %zu dims\n",
      ts::effective_rank(sv_grad, 0.9f), sv_grad.size(),
      ts::effective_rank(sv_act, 0.9f), sv_act.size());
  std::printf(
      "\nPaper reference (Fig. 2): the gradient reaches ~100%% of its singular\n"
      "mass within a small fraction of the dimensions, while the activation's\n"
      "cumulative mass grows nearly linearly — activations are not low-rank.\n");
  return 0;
}
