// Reproduces paper Tables 11-14 (appendix): fine-tuning iteration time when
// the batch size and sequence length shrink, with and without NVLink.
//
//   Table 11: NVLink,  b=32, s=128     Table 12: NVLink,  b=8, s=128
//   Table 13: PCIe,    b=32, s=128     Table 14: PCIe,    b=8, s=128
//
// Paper shape (Takeaway 8): at small batch/sequence the message sizes shrink
// but the encode/decode overhead does not, so NO compression setting beats
// the baseline in any of these four tables.
#include "bench/simbench.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("table11_14_hparam_sweep");
  std::vector<compress::Setting> cols = compress::main_settings();
  cols.push_back(compress::Setting::kQ3);  // the appendix tables include Q3

  struct Cfg {
    const char* caption;
    bool nvlink;
    int64_t batch;
  };
  const Cfg cfgs[] = {
      {"Table 11 — NVLink, batch 32, seq 128", true, 32},
      {"Table 12 — NVLink, batch 8, seq 128", true, 8},
      {"Table 13 — PCIe, batch 32, seq 128", false, 32},
      {"Table 14 — PCIe, batch 8, seq 128", false, 8},
  };
  for (const auto& c : cfgs) {
    bench::print_iteration_table(
        c.caption,
        c.nvlink ? sim::ClusterSpec::aws_p3(1) : sim::ClusterSpec::local_pcie(),
        bench::finetune_parallel_rows(), parallel::TrainJob{c.batch, 1, 128},
        cols);
  }
  std::printf(
      "Paper reference: in all four tables every compression column is >= the\n"
      "w/o column (e.g. Table 12 TP=2: w/o 121.26 vs A1 142.41 ms).\n");
  return 0;
}
