// Ablation (DESIGN.md §5.5): pipeline schedule choice. The simulator
// defaults to 1F1B (Megatron's schedule). For balanced stages over fast
// links the two schedules have the same steady-state bubble; over the slow
// 10 Gbps inter-node boundaries, 1F1B's strict one-backward-one-forward
// order stalls on backward arrivals that GPipe's all-forward phase hides —
// so GPipe is somewhat faster here, while 1F1B bounds the activation stash
// (the reason Megatron uses it). Either way the COMPRESSION conclusions are
// schedule-insensitive, which is what this bench checks.
#include <cstdio>

#include "bench/simbench.h"
#include "sim/trace.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("ablation_schedule");
  std::printf(
      "Ablation — GPipe vs 1F1B vs interleaved-1F1B schedules\n"
      "(pre-training grid, 4 nodes; interleaved uses v=2 model chunks)\n\n");
  std::vector<std::string> header{"Config",   "setting",  "1F1B ms",
                                  "GPipe ms", "delta",    "int-v2 ms"};
  std::vector<std::vector<std::string>> body;
  for (const auto& par : bench::pretrain_parallel_rows()) {
    for (auto s : {compress::Setting::kBaseline, compress::Setting::kA2,
                   compress::Setting::kQ2}) {
      const auto plan = core::CompressionPlan::paper_default(s, 24);
      parallel::ModelParallelSimulator one(
          sim::ClusterSpec::aws_p3(4), nn::BertConfig::bert_large(), par,
          {128, 8, 128}, sim::ScheduleKind::k1F1B);
      parallel::ModelParallelSimulator gp(
          sim::ClusterSpec::aws_p3(4), nn::BertConfig::bert_large(), par,
          {128, 8, 128}, sim::ScheduleKind::kGpipe);
      const double t1 = one.run(plan).total_ms();
      const double t2 = gp.run(plan).total_ms();
      // Interleaving needs layers % (pp*v) == 0 and micros % pp == 0;
      // BERT-Large's 24 layers rule out pp=8 with v=2.
      std::string ti = "n/a";
      if (24 % (par.pp * 2) == 0 && 8 % par.pp == 0) {
        parallel::ModelParallelSimulator inter(
            sim::ClusterSpec::aws_p3(4), nn::BertConfig::bert_large(), par,
            {128, 8, 128},
            parallel::SimOptions{sim::ScheduleKind::kInterleaved1F1B, 2, false,
                                 false});
        ti = bench::fmt(inter.run(plan).total_ms());
      }
      body.push_back({"TP=" + std::to_string(par.tp) + ",PP=" +
                          std::to_string(par.pp),
                      compress::setting_label(s), bench::fmt(t1), bench::fmt(t2),
                      bench::fmt(100.0 * (t2 - t1) / t1, 2) + "%", ti});
    }
  }
  bench::print_table(header, body, 14);

  // The schedules' real difference: peak stashed activations on stage 0
  // (from the traced simulation — see sim/trace.h).
  {
    sim::PipelineCosts c;
    c.fwd_ms.assign(4, 50.0);
    c.bwd_ms.assign(4, 100.0);
    c.p2p_fwd_ms.assign(3, 5.0);
    c.p2p_bwd_ms.assign(3, 5.0);
    c.micro_batches = 8;
    const auto one = sim::simulate_pipeline_traced(c, sim::ScheduleKind::k1F1B);
    const auto gp = sim::simulate_pipeline_traced(c, sim::ScheduleKind::kGpipe);
    std::printf(
        "\nPeak live micro-batch activations on stage 0 (pp=4, m=8):\n"
        "  GPipe: %d   1F1B: %d\n",
        gp.peak_live_activations(0), one.peak_live_activations(0));
  }
  std::printf(
      "\nTakeaway: over slow inter-node links GPipe hides p2p latency better\n"
      "(up to ~25%% here) while 1F1B halves the peak activation stash; under\n"
      "BOTH schedules the compression ordering (A2 < w/o < Q2) is identical,\n"
      "so the paper's conclusions do not depend on the schedule choice.\n"
      "Interleaved-1F1B (v=2) multiplies the p2p transfer count by v, so it\n"
      "loses on this NIC-bound grid; see ablation_overlap for the NVLink\n"
      "regime where the smaller bubble wins.\n");
  return 0;
}
