// Ablation: how should a crashing model-parallel job checkpoint, and does
// the Young/Daly rule-of-thumb survive contact with a discrete-event replay?
//
// The paper prices one clean iteration; a real training job runs millions of
// them on hardware that fails. This bench stitches the two layers together:
// the calibrated simulator (parallel/mp_simulator.h) prices one step of the
// paper's PCIe fine-tuning configuration, and the crash-recovery model
// (sim/recovery.h) replays a long horizon of those steps under fail-stop
// crashes at several MTBFs, sweeping the checkpoint interval around the
// Young/Daly optimum tau* = sqrt(2 C M).
//
// Protocol: for each per-stage MTBF, sweep a geometric grid of checkpoint
// intervals with common random numbers (same crash seeds for every interval)
// and report mean wall clock, goodput, and crash count per interval, plus
// the simulated argmin vs the analytic tau*. The acceptance bar — simulated
// optimum within 15% of tau* across the MTBF range — is pinned by
// tests/recovery_test.cpp on a cheaper configuration.
//
// A second section replays a bandwidth brown-out against the graceful-
// degradation controller (train/resilience.h) and prints the escalation /
// recovery decisions, step by step.
//
//   $ ./ablation_recovery [trials] [base_seed]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/simbench.h"
#include "core/threadpool.h"
#include "sim/recovery.h"
#include "train/resilience.h"

int main(int argc, char** argv) {
  using namespace actcomp;
  obs::RunReport report("ablation_recovery");
  const int trials = argc > 1 ? std::atoi(argv[1]) : 60;
  const uint64_t base_seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  // Price one step: the paper's PCIe fine-tuning cell (TP=2/PP=2, batch
  // 32x4, seq 512) under the baseline (uncompressed) setting.
  const auto cluster = sim::ClusterSpec::local_pcie();
  const auto model = nn::BertConfig::bert_large();
  const parallel::ParallelConfig par{2, 2};
  const parallel::TrainJob job{32, 4, 512};
  parallel::ModelParallelSimulator simulator(cluster, model, par, job);
  const double step_ms = simulator.run_baseline().total_ms();

  std::printf(
      "Ablation — crash recovery: checkpoint-interval sweep vs the\n"
      "Young/Daly analytic optimum (cluster %s, TP=%d/PP=%d, step %.2f ms;\n"
      "%d trials per interval, base seed %llu)\n",
      cluster.name.c_str(), par.tp, par.pp, step_ms, trials,
      static_cast<unsigned long long>(base_seed));

  sim::RecoveryConfig base;
  base.step_ms = step_ms;
  // Long enough that even the healthiest MTBF below realizes several
  // crashes per trial — the sweep's signal is crash overhead.
  base.total_steps = 20000;
  // Checkpoint cost: fp32 params + two Adam moments flushed to shared
  // storage, priced as several iterations.
  base.ckpt_cost_ms = 6.0 * step_ms;
  base.crash.num_stages = par.pp;
  base.crash.detect_ms = 2.0 * step_ms;
  base.crash.restart_ms = 10.0 * step_ms;
  base.seed = base_seed;

  // Per-stage MTBF in steps: from "crashy testbed" to "decent cluster".
  const double mtbf_steps[] = {500.0, 2000.0, 8000.0};

  report.set_config("step_ms", step_ms);
  report.set_config("total_steps", base.total_steps);
  report.set_config("trials", int64_t{trials});

  const auto wall_start = std::chrono::steady_clock::now();
  double worst_deviation = 0.0;

  for (double ms : mtbf_steps) {
    sim::RecoveryConfig cfg = base;
    cfg.crash.mtbf_ms = ms * step_ms;
    const double tau = sim::young_daly_interval_ms(
        cfg.ckpt_cost_ms, cfg.crash.effective_mtbf_ms());
    cfg.ckpt_interval_steps =
        std::max<int64_t>(1, static_cast<int64_t>(std::llround(tau / step_ms)));

    const auto sweep = sim::sweep_checkpoint_interval(cfg, trials);

    std::printf(
        "\n[per-stage MTBF %.0f steps -> job MTBF %.0f steps | tau* %.1f ms "
        "(%.0f steps)]\n\n",
        ms, ms / cfg.crash.num_stages, tau, std::round(tau / step_ms));
    std::vector<std::string> header{"interval",   "tau ms",    "mean wall s",
                                    "analytic s", "goodput/s", "crashes"};
    std::vector<std::vector<std::string>> body;
    // Star the raw per-point argmin; the reported optimum below is the
    // quadratic fit through its neighborhood.
    const auto* argmin = &sweep.points.front();
    for (const auto& p : sweep.points) {
      if (p.mean_wall_ms < argmin->mean_wall_ms) argmin = &p;
    }
    for (const auto& p : sweep.points) {
      std::string label = std::to_string(p.interval_steps) + " steps";
      if (&p == argmin) label += " *";
      body.push_back({label, bench::fmt(p.interval_ms),
                      bench::fmt(p.mean_wall_ms * 1e-3),
                      bench::fmt(p.analytic_wall * 1e-3),
                      bench::fmt(p.mean_goodput, 3),
                      bench::fmt(p.mean_crashes, 1)});
    }
    bench::print_table(header, body, 14);
    std::printf(
        "\nsimulated optimum %.1f ms vs Young/Daly %.1f ms (%+.1f%%)\n",
        sweep.best_interval_ms, sweep.young_daly_ms,
        sweep.deviation() * 100.0);
    worst_deviation =
        std::max(worst_deviation, std::fabs(sweep.deviation()));

    obs::json::Value rec = obs::json::Value::object();
    rec.set("mtbf_steps", ms);
    rec.set("young_daly_ms", sweep.young_daly_ms);
    rec.set("simulated_best_ms", sweep.best_interval_ms);
    rec.set("simulated_best_steps", sweep.best_interval_steps);
    rec.set("deviation", sweep.deviation());
    report.add_record(std::move(rec));
  }

  // --- Graceful degradation: a link brown-out, replayed step by step. ---
  std::printf(
      "\nGraceful degradation: boundary bandwidth collapses to 30%% for 20\n"
      "steps, then recovers; controller thresholds 0.6 / 0.9, hold 3.\n\n");
  train::ResilienceConfig rcfg;
  train::DegradationController ctl(rcfg, /*num_boundaries=*/1);
  std::vector<std::string> dheader{"steps", "signal", "smoothed", "level"};
  std::vector<std::vector<std::string>> dbody;
  train::DegradeLevel prev = train::DegradeLevel::kNone;
  int span_begin = 0;
  auto flush_span = [&](int end, double signal) {
    dbody.push_back({std::to_string(span_begin) + ".." + std::to_string(end),
                     bench::fmt(signal), bench::fmt(ctl.smoothed(0)),
                     train::degrade_level_label(ctl.level(0))});
    span_begin = end + 1;
  };
  for (int step = 0; step < 60; ++step) {
    const double signal = (step >= 20 && step < 40) ? 0.3 : 1.0;
    const train::DegradeLevel now = ctl.observe(0, signal);
    const bool boundary = step == 19 || step == 39 || step == 59;
    if (now != prev || boundary) {
      flush_span(step, signal);
      prev = now;
    }
  }
  bench::print_table(dheader, dbody, 10);
  std::printf("\nescalations: %lld, de-escalations: %lld, final level: %s\n",
              static_cast<long long>(ctl.escalations()),
              static_cast<long long>(ctl.deescalations()),
              train::degrade_level_label(ctl.level(0)));

  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  std::printf("\ntotal wall clock: %.2f s (%d threads)\n", wall_s,
              core::num_threads());

  std::printf(
      "\nTakeaway: the sqrt(2 C M) rule lands within the Monte-Carlo noise\n"
      "floor of the simulated optimum (worst deviation %.1f%% here) — the\n"
      "first-order model is all an operator needs to set the interval. The\n"
      "goodput curve is flat near tau*, so erring long (fewer checkpoints)\n"
      "is cheap; erring short is not. And when a link browns out, the\n"
      "hysteresis controller escalates compression after the hold window\n"
      "and steps back down only once the link has stayed healthy — no\n"
      "flapping at the thresholds.\n",
      worst_deviation * 100.0);
  return 0;
}
