// Shared helpers for the throughput benches (Tables 2-4, 6-7, 9, 11-14;
// Figs. 1 and 5), which drive the calibrated TP x PP simulator.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench/lab.h"
#include "core/compression_plan.h"
#include "obs/accounting.h"
#include "obs/report.h"
#include "parallel/mp_simulator.h"
#include "sim/hardware.h"

namespace actcomp::bench {

/// The (TP, PP) rows of the fine-tuning tables (4 GPUs).
inline std::vector<parallel::ParallelConfig> finetune_parallel_rows() {
  return {{1, 4}, {2, 2}, {4, 1}};
}
/// The (TP, PP) rows of the pre-training tables (16 GPUs).
inline std::vector<parallel::ParallelConfig> pretrain_parallel_rows() {
  return {{2, 8}, {4, 4}, {8, 2}};
}

/// Iteration time for one (cluster, parallel, job, setting) cell, with the
/// paper's default plan (compress the last half of the layers).
inline double cell_total_ms(const sim::ClusterSpec& cluster,
                            parallel::ParallelConfig par, parallel::TrainJob job,
                            compress::Setting setting) {
  parallel::ModelParallelSimulator sim(cluster, nn::BertConfig::bert_large(),
                                       par, job);
  const auto plan = core::CompressionPlan::paper_default(
      setting, nn::BertConfig::bert_large().num_layers);
  return sim.run(plan).total_ms();
}

/// One row of a Table-4/7 style breakdown table: the label plus the eight
/// numeric columns, computed through the canonical obs accounting (the same
/// projection the RunReport serializes). Both breakdown benches use this, so
/// the printed tables, the goldens, and the JSON can never disagree. Also
/// mirrors the row into the active RunReport as a structured phase.
inline std::vector<std::string> breakdown_row(
    const std::string& label, const parallel::IterationBreakdown& r,
    obs::Accounting accounting) {
  const obs::PhaseBreakdown b = r.phase_breakdown(accounting);
  if (obs::RunReport* report = obs::RunReport::current()) {
    report->add_phase(label, accounting, b);
  }
  std::vector<std::string> row{label};
  for (double v : obs::breakdown_columns(b)) row.push_back(fmt(v));
  return row;
}

/// A full iteration-time table in the paper's layout: one row per
/// distributed setting, one column per compression setting.
inline void print_iteration_table(const std::string& caption,
                                  const sim::ClusterSpec& cluster,
                                  const std::vector<parallel::ParallelConfig>& rows,
                                  parallel::TrainJob job,
                                  const std::vector<compress::Setting>& cols) {
  std::printf("%s\n(cluster: %s, micro-batch %lld x %lld micro-batches, seq %lld)\n\n",
              caption.c_str(), cluster.name.c_str(),
              static_cast<long long>(job.micro_batch),
              static_cast<long long>(job.num_micro),
              static_cast<long long>(job.seq));
  std::vector<std::string> header{"Distributed Setting"};
  for (auto s : cols) header.push_back(compress::setting_label(s));
  std::vector<std::vector<std::string>> body;
  for (const auto& par : rows) {
    std::vector<std::string> row{"TP=" + std::to_string(par.tp) +
                                 ", PP=" + std::to_string(par.pp)};
    for (auto s : cols) {
      row.push_back(fmt(cell_total_ms(cluster, par, job, s)));
    }
    body.push_back(std::move(row));
  }
  print_table(header, body);
  std::printf("\n");
}

}  // namespace actcomp::bench
