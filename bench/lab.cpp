#include "lab.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "autograd/functions.h"
#include "core/threadpool.h"
#include "data/vocab.h"
#include "obs/report.h"
#include "tensor/check.h"
#include "train/optimizer.h"

namespace actcomp::bench {

namespace ag = actcomp::autograd;
namespace ts = actcomp::tensor;

nn::BertConfig bench_model_config(int64_t max_seq) {
  nn::BertConfig cfg;
  cfg.vocab_size = data::Vocab::kSize;
  cfg.hidden = 32;
  cfg.num_layers = 4;
  cfg.num_heads = 2;
  cfg.intermediate = 128;
  cfg.max_seq = max_seq;
  cfg.dropout = 0.0f;
  return cfg;
}

double bench_scale() {
  const char* env = std::getenv("ACTCOMP_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return std::clamp(v, 0.05, 10.0);
}

int64_t scaled(int64_t n, int64_t min_n) {
  return std::max<int64_t>(
      min_n, static_cast<int64_t>(static_cast<double>(n) * bench_scale()));
}

TaskRecipe task_recipe(data::TaskId id) {
  // Sized so the uncompressed baseline clears chance by a clear margin
  // (tuned empirically; see DESIGN.md). Scale with ACTCOMP_SCALE.
  switch (id) {
    case data::TaskId::kMnliM:
    case data::TaskId::kMnliMM:
      return {scaled(1536), 3, 5e-4f};
    case data::TaskId::kQqp:
      return {scaled(1536), 3, 5e-4f};
    case data::TaskId::kSst2:
      return {scaled(768), 2, 5e-4f};
    case data::TaskId::kMrpc:
      return {scaled(1536), 5, 5e-4f};
    case data::TaskId::kCola:
      return {scaled(2048), 6, 5e-4f};
    case data::TaskId::kQnli:
      return {scaled(2048), 4, 5e-4f};
    case data::TaskId::kRte:  // deliberately small, as in GLUE (high variance)
      return {scaled(768), 6, 5e-4f};
    case data::TaskId::kStsb:
      return {scaled(2048), 5, 3e-4f};
  }
  ACTCOMP_ASSERT(false, "unknown task");
}

TaskRecipe light_recipe(data::TaskId id) {
  TaskRecipe r = task_recipe(id);
  r.train_n = std::max<int64_t>(128, r.train_n / 2);
  r.epochs = std::max<int64_t>(1, r.epochs * 2 / 3);
  return r;
}

double compressed_finetune(data::TaskId task, compress::Setting setting,
                           const core::CompressionPlan& plan, int64_t seq,
                           uint64_t seed, bool light) {
  ts::Generator gen(seed);
  const nn::BertConfig cfg = bench_model_config(seq);
  nn::BertModel model(cfg, gen);
  core::CompressionBinder binder(model, plan, /*pp_degree=*/2, gen);
  (void)setting;

  const TaskRecipe recipe = light ? light_recipe(task) : task_recipe(task);
  data::TaskDataset train = data::make_task_dataset(task, recipe.train_n, seq, gen);
  data::TaskDataset dev =
      data::make_task_dataset(task, scaled(256, 64), seq, gen);
  train::FinetuneConfig fc;
  fc.batch_size = 16;
  fc.epochs = recipe.epochs;
  fc.lr = recipe.lr;
  fc.seed = seed + 1;
  return train::finetune(model, train, dev, fc, &binder).dev_metric;
}

FrozenProbe train_frozen_probe(data::TaskId task, int64_t seq, uint64_t seed) {
  FrozenProbe p;
  p.task = task;
  p.config = bench_model_config(seq);
  ts::Generator gen(seed);
  p.model = std::make_unique<nn::BertModel>(p.config, gen);

  const TaskRecipe recipe = task_recipe(task);
  p.train = std::make_unique<data::TaskDataset>(
      data::make_task_dataset(task, recipe.train_n, seq, gen));
  p.dev = std::make_unique<data::TaskDataset>(
      data::make_task_dataset(task, scaled(256, 64), seq, gen));

  const auto& info = data::task_info(task);
  const bool regression = info.num_classes == 0;
  ts::Generator tg(seed + 1);
  if (regression) {
    p.reg_head = std::make_unique<nn::RegressionHead>(p.config.hidden, gen);
  } else {
    p.cls_head = std::make_unique<nn::ClassificationHead>(p.config.hidden,
                                                          info.num_classes, gen);
  }
  train::Adam opt(p.model->parameters(), recipe.lr, 0.9f, 0.999f, 1e-8f, 0.01f);
  opt.add_parameters(regression ? p.reg_head->parameters()
                                : p.cls_head->parameters());
  const int64_t steps_per_epoch = (p.train->size() + 15) / 16;
  train::LinearWarmupSchedule schedule(
      recipe.lr, steps_per_epoch * recipe.epochs / 10,
      steps_per_epoch * recipe.epochs);
  int64_t step = 0;
  for (int64_t e = 0; e < recipe.epochs; ++e) {
    for (const auto& b : p.train->epoch_batches(16, &tg)) {
      opt.set_lr(schedule.lr_at(step++));
      opt.zero_grad();
      ag::Variable out = p.model->forward(b.input, tg, /*training=*/true);
      ag::Variable loss;
      if (regression) {
        loss = ag::mse_loss(
            p.reg_head->forward(out),
            ts::Tensor(ts::Shape{static_cast<int64_t>(b.value_labels.size())},
                       std::vector<float>(b.value_labels.begin(),
                                          b.value_labels.end())));
      } else {
        loss = ag::softmax_cross_entropy(p.cls_head->forward(out), b.class_labels);
      }
      loss.backward();
      opt.clip_grad_norm(1.0f);
      opt.step();
    }
  }
  p.baseline_metric =
      regression
          ? train::evaluate_regression(*p.model, *p.reg_head, *p.dev, tg)
          : train::evaluate_classification(*p.model, *p.cls_head, *p.dev, tg);
  return p;
}

double posthoc_metric(FrozenProbe& probe, const core::CompressionPlan& plan,
                      int64_t pp_degree, uint64_t seed) {
  ts::Generator gen(seed);
  core::CompressionBinder binder(*probe.model, plan, pp_degree, gen);
  ts::Generator tg(seed + 1);
  const bool regression = probe.reg_head != nullptr;

  // Learning-based codecs are trained (model frozen) — an AE is only
  // meaningful once fitted to the activation distribution.
  auto codec_params = binder.codec_parameters();
  if (!codec_params.empty()) {
    train::Adam copt(codec_params, 2e-3f);
    for (int e = 0; e < 2; ++e) {
      for (const auto& b : probe.train->epoch_batches(16, &tg)) {
        copt.zero_grad();
        ag::Variable out = probe.model->forward(b.input, tg, /*training=*/true);
        ag::Variable loss;
        if (regression) {
          loss = ag::mse_loss(
              probe.reg_head->forward(out),
              ts::Tensor(ts::Shape{static_cast<int64_t>(b.value_labels.size())},
                         std::vector<float>(b.value_labels.begin(),
                                            b.value_labels.end())));
        } else {
          loss = ag::softmax_cross_entropy(probe.cls_head->forward(out),
                                           b.class_labels);
        }
        loss.backward();
        copt.step();
      }
    }
  }
  return regression ? train::evaluate_regression(*probe.model, *probe.reg_head,
                                                 *probe.dev, tg)
                    : train::evaluate_classification(*probe.model,
                                                     *probe.cls_head, *probe.dev,
                                                     tg);
}

FaultSweepSummary FaultSweep::run(
    sim::FaultProfile profile,
    const std::function<double(const sim::FaultProfile&)>& makespan_ms) const {
  ACTCOMP_CHECK(trials >= 1, "FaultSweep.trials must be >= 1, got " << trials);
  FaultSweepSummary s;
  s.trials = trials;
  s.clean_ms = makespan_ms(sim::FaultProfile::none());
  // Monte-Carlo trials are embarrassingly parallel: each gets its own
  // FaultProfile copy with seed = base_seed + t, so the sample set — and
  // every percentile below — is independent of the thread count.
  // `makespan_ms` must be safe to call concurrently (the simulator builds
  // all of its state per call).
  std::vector<double> samples(static_cast<size_t>(trials));
  core::parallel_for(0, trials, 1, [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      sim::FaultProfile p = profile;
      p.seed = base_seed + static_cast<uint64_t>(t);
      samples[static_cast<size_t>(t)] = makespan_ms(p);
    }
  });
  std::sort(samples.begin(), samples.end());
  auto pct = [&](double q) {  // nearest-rank percentile
    const auto n = static_cast<double>(samples.size());
    auto rank = static_cast<size_t>(std::ceil(q * n));
    return samples[std::min(samples.size() - 1, rank == 0 ? 0 : rank - 1)];
  };
  s.p50_ms = pct(0.50);
  s.p95_ms = pct(0.95);
  s.p99_ms = pct(0.99);
  s.worst_ms = samples.back();
  return s;
}

void print_table(const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows,
                 int first_width, int col_width) {
  // Every printed table is also captured into the active RunReport (if any),
  // so a bench main gets machine-readable output by declaring one RunReport —
  // no per-table plumbing.
  if (obs::RunReport* report = obs::RunReport::current()) {
    report->add_table(header, rows);
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i == 0) {
        std::printf("%-*s", first_width, row[i].c_str());
      } else {
        std::printf("%*s", col_width, row[i].c_str());
      }
    }
    std::printf("\n");
  };
  print_row(header);
  int total = first_width + col_width * static_cast<int>(header.size() - 1);
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows) print_row(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace actcomp::bench
