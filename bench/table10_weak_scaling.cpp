// Reproduces paper Table 10: weak-scaling AE speedup under the Eq. (3)
// cluster model, following the Megatron weak-scaling ladder (micro-batch 16,
// TP=4, hidden size / layers / nodes / batch from Narayanan et al.).
//
// Paper shape: on a FIXED cluster the AE speedup decays as hidden size
// grows (Eq. 2 / "understanding the trend"); when nodes scale with the
// model, the speedup flattens out instead of collapsing.
//
// Two panels: (1) Eq. 3 with constants fitted against our simulator;
// (2) Eq. 3 with beta solved so the FIRST row matches the paper's 1.91x,
// testing whether the model's decay shape then predicts the paper's
// plateau (it does — see EXPERIMENTS.md for the magnitude analysis).
#include <cstdio>

#include "bench/lab.h"
#include "perf/perf_model.h"
#include "sim/hardware.h"

namespace {

void print_rows(const std::vector<std::string>& header,
                const actcomp::perf::PerfModelParams& p,
                const actcomp::sim::ClusterSpec& cluster) {
  using namespace actcomp;
  std::vector<std::vector<std::string>> body;
  for (const auto& row : perf::weak_scaling_table(p, cluster, 100)) {
    const double fixed = perf::speedup_single_node(p, 16, 128, row.hidden, 100);
    body.push_back({std::to_string(row.hidden), std::to_string(row.layers),
                    std::to_string(row.nodes), std::to_string(row.global_batch),
                    bench::fmt(row.speedup, 3) + "x", bench::fmt(fixed, 3) + "x"});
  }
  bench::print_table(header, body, 10);
}

}  // namespace

int main() {
  using namespace actcomp;
  obs::RunReport report("table10_weak_scaling");
  // Fit on the communication-constrained platform (PCIe): the paper's own
  // fitted beta implies effective all-reduce bandwidth far below an NVLink
  // ring, and on NVLink the speedup column degenerates to 1.00x throughout.
  const auto cluster = sim::ClusterSpec::local_pcie();
  const auto params = perf::fit_perf_model(
      cluster, 4, 16, 128, {256, 512, 1024, 2048, 4096, 8192, 12288}, 100);
  std::printf(
      "Table 10 — weak-scaling AE speedup (Eq. 3)\n"
      "Panel 1: constants fitted against the simulator (PCIe, TP=4)\n"
      "alpha=%.3e ms/FLOP  beta=%.3e ms/elem  gamma=%.3e ms/elem\n"
      "c=%.3f ms  d=%.0f elems\n\n",
      params.alpha_ms_per_flop, params.beta_ms_per_elem,
      params.gamma_ms_per_elem, params.comm_const_ms,
      params.comm_threshold_elems);

  const std::vector<std::string> header{"hidden",  "layers",  "nodes",
                                        "batch",   "speedup", "fixed-1node"};
  print_rows(header, params, cluster);

  // Panel 2: solve for the beta the PAPER's first row implies (1.91x at
  // h=6144 on one node), then let Eq. 3 predict the remaining rows.
  perf::PerfModelParams pp = params;
  pp.comm_const_ms = 0.2;            // the paper's quoted c
  pp.comm_threshold_elems = 409600;  // the paper's quoted d
  const double elems = 16.0 * 128.0 * 6144.0;
  const double a_f = perf::t_comp(pp, perf::layer_flops(16, 128, 6144));
  const double g_e = perf::t_overhead(pp, 16, 128, 6144);
  pp.beta_ms_per_elem = (1.91 * (a_f + pp.comm_const_ms + g_e) - a_f) / elems;
  std::printf(
      "\nPanel 2: beta solved from the paper's first row (1.91x at h=6144)\n"
      "implied beta = %.3e ms/elem (~%.0f MB/s effective all-reduce)\n\n",
      pp.beta_ms_per_elem, 2.0e-3 / pp.beta_ms_per_elem / 1e6);
  print_rows(header, pp, cluster);

  std::printf(
      "\nPaper reference (Table 10): 1.91x at h=6144 decaying to a ~1.46-1.47x\n"
      "plateau at h=16384..25600. Panel 1's physically-calibrated constants\n"
      "give much smaller absolute speedups (the paper's implied all-reduce\n"
      "bandwidth is ~2 orders of magnitude below a V100 ring — see\n"
      "EXPERIMENTS.md); Panel 2 shows that GIVEN their first row, Eq. 3\n"
      "reproduces the decay-then-plateau shape of the remaining rows.\n");
  return 0;
}
