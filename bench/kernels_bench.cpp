// Machine-readable kernel benchmark: times the parallel compute core
// (blocked GEMM, compressor encode/decode, one end-to-end fine-tune step)
// across thread counts. Output is a canonical RunReport document
// (actcomp.run_report.v1, see obs/report.h): each measurement is one entry
// of the "records" array carrying {op, shape, threads, ns_op, gb_s} plus
// op-specific extras (gflops, speedup_vs_seed). The checked-in baseline
// lives at bench/baselines/BENCH_kernels.json; README's Performance table
// is derived from it.
//
// The GEMM baseline is a verbatim copy of the seed repo's matmul2d loop
// (including its zero-skip branch), compiled at this file's default
// optimization level — "speedup_vs_seed" is measured against it.
//
//   $ ./kernels_bench [--quick] [out.json]
//
// --quick trims the shape sweep to a few-second run for CI (ci.sh bench);
// the full sweep is what baselines are regenerated from.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "autograd/functions.h"
#include "compress/lossless.h"
#include "compress/quantize.h"
#include "compress/topk.h"
#include "compress/wire.h"
#include "core/simd.h"
#include "core/threadpool.h"
#include "nn/bert.h"
#include "obs/report.h"
#include "tensor/ops.h"
#include "tensor/random.h"
#include "train/optimizer.h"

namespace ts = actcomp::tensor;
namespace ag = actcomp::autograd;
namespace nn = actcomp::nn;
namespace cp = actcomp::compress;
namespace core = actcomp::core;
namespace obs = actcomp::obs;

namespace {

using Clock = std::chrono::steady_clock;

// The seed repo's GEMM, kept as the reference point for speedup numbers.
void seed_matmul(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    const float* a_row = a + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      if (av == 0.0f) continue;
      const float* b_row = b + kk * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

// Best-of-`reps` wall time of fn(), in seconds.
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt < best) best = dt;
  }
  return best;
}

int g_emitted = 0;

void emit(const std::string& op, const std::string& shape, int threads,
          double ns_op, double gb_s, double gflops = -1.0,
          double speedup_vs_seed = -1.0) {
  obs::json::Value r = obs::json::Value::object();
  r.set("op", op);
  r.set("shape", shape);
  r.set("threads", threads);
  r.set("ns_op", ns_op);
  r.set("gb_s", gb_s);
  if (gflops >= 0.0) r.set("gflops", gflops);
  if (speedup_vs_seed >= 0.0) r.set("speedup_vs_seed", speedup_vs_seed);
  obs::RunReport::current()->add_record(std::move(r));
  ++g_emitted;
}

void bench_matmul(int64_t m, int64_t k, int64_t n, bool run_seed) {
  ts::Generator gen(99);
  const ts::Tensor a = gen.normal(ts::Shape{m, k});
  const ts::Tensor b = gen.normal(ts::Shape{k, n});
  const double flops = 2.0 * static_cast<double>(m) * k * n;
  const double bytes = 4.0 * (static_cast<double>(m) * k +
                              static_cast<double>(k) * n +
                              static_cast<double>(m) * n);
  const int reps = flops > 1e10 ? 1 : 3;
  char shape[64];
  std::snprintf(shape, sizeof(shape), "%lldx%lldx%lld",
                static_cast<long long>(m), static_cast<long long>(k),
                static_cast<long long>(n));

  double seed_t = -1.0;
  if (run_seed) {
    ts::Tensor c{ts::Shape{m, n}};
    seed_t = best_of(reps, [&] {
      seed_matmul(a.data().data(), b.data().data(), c.data().data(), m, k, n);
    });
    emit("matmul2d_seed", shape, 1, seed_t * 1e9, bytes / seed_t / 1e9,
         flops / seed_t / 1e9);
    std::printf("matmul2d_seed %-18s t=1  %8.1f ms  %6.1f GFLOP/s\n", shape,
                seed_t * 1e3, flops / seed_t / 1e9);
  }
  for (int threads : {1, 2, 4}) {
    core::set_num_threads(threads);
    const double t = best_of(reps, [&] { ts::matmul2d(a, b); });
    emit("matmul2d", shape, threads, t * 1e9, bytes / t / 1e9, flops / t / 1e9,
         seed_t > 0 ? seed_t / t : -1.0);
    std::printf("matmul2d      %-18s t=%d  %8.1f ms  %6.1f GFLOP/s%s\n", shape,
                threads, t * 1e3, flops / t / 1e9,
                seed_t > 0
                    ? (" (" + std::to_string(seed_t / t).substr(0, 5) + "x seed)")
                          .c_str()
                    : "");
  }
  core::set_num_threads(1);
}

// One matmul2d record per SIMD tier the host supports, with the tier forced
// via core::set_simd_isa. Op names carry the tier ("matmul2d_avx2"), so the
// perf gate compares each tier against its own baseline and a dispatch
// regression (e.g. silently landing in the scalar tier) shows up directly.
void bench_matmul_tiers(int64_t m, int64_t k, int64_t n) {
  ts::Generator gen(99);
  const ts::Tensor a = gen.normal(ts::Shape{m, k});
  const ts::Tensor b = gen.normal(ts::Shape{k, n});
  const double flops = 2.0 * static_cast<double>(m) * k * n;
  const double bytes = 4.0 * (static_cast<double>(m) * k +
                              static_cast<double>(k) * n +
                              static_cast<double>(m) * n);
  char shape[64];
  std::snprintf(shape, sizeof(shape), "%lldx%lldx%lld",
                static_cast<long long>(m), static_cast<long long>(k),
                static_cast<long long>(n));
  const core::SimdIsa restore = core::simd_isa();
  for (int t = 0; t <= static_cast<int>(core::detected_simd_isa()); ++t) {
    const auto isa = static_cast<core::SimdIsa>(t);
    core::set_simd_isa(isa);
    const std::string op = std::string("matmul2d_") + core::simd_isa_name(isa);
    for (int threads : {1, 4}) {
      core::set_num_threads(threads);
      const double tsec = best_of(3, [&] { ts::matmul2d(a, b); });
      emit(op, shape, threads, tsec * 1e9, bytes / tsec / 1e9,
           flops / tsec / 1e9);
      std::printf("%-13s %-18s t=%d  %8.1f ms  %6.1f GFLOP/s\n", op.c_str(),
                  shape, threads, tsec * 1e3, flops / tsec / 1e9);
    }
  }
  core::set_simd_isa(restore);
  core::set_num_threads(1);
}

template <typename C>
void bench_compressor(const char* label, C& c, const ts::Tensor& x) {
  const double in_bytes = static_cast<double>(x.numel()) * 4.0;
  char shape[32];
  std::snprintf(shape, sizeof(shape), "%lld", static_cast<long long>(x.numel()));
  for (int threads : {1, 4}) {
    core::set_num_threads(threads);
    const auto msg = c.encode(x);
    const double te = best_of(3, [&] { c.encode(x); });
    const double td = best_of(3, [&] { c.decode(msg); });
    emit(std::string(label) + "_encode", shape, threads, te * 1e9,
         in_bytes / te / 1e9);
    emit(std::string(label) + "_decode", shape, threads, td * 1e9,
         in_bytes / td / 1e9);
    std::printf("%-13s %-18s t=%d  enc %6.2f GB/s  dec %6.2f GB/s\n", label,
                shape, threads, in_bytes / te / 1e9, in_bytes / td / 1e9);
  }
  core::set_num_threads(1);
}

// One encode + one decode record per standard lossless codec tier
// (compress/lossless.h), on the fp16 wire bytes of a seeded activation
// tensor — the byte distribution the codec actually sees on a link. GB/s is
// quoted against the RAW payload (what the link would otherwise carry);
// each record also stores the measured compression ratio. Runs in both
// --quick and full mode so the CI perf gate and the committed baseline
// share record keys. Scalar codecs: threads = 1 only.
void bench_lossless(const ts::Tensor& x) {
  std::vector<std::byte> raw;
  raw.reserve(static_cast<size_t>(x.numel()) * 2);
  cp::wire::append_fp16(raw, x);
  const double raw_bytes = static_cast<double>(raw.size());
  char shape[32];
  std::snprintf(shape, sizeof(shape), "%lld", static_cast<long long>(x.numel()));
  core::set_num_threads(1);
  for (const cp::LosslessCodec& codec : cp::standard_lossless_codecs()) {
    const std::vector<std::byte> enc = codec.encode(raw);
    const double ratio = static_cast<double>(enc.size()) / raw_bytes;
    const double te = best_of(3, [&] { codec.encode(raw); });
    const double td = best_of(3, [&] { codec.decode(enc); });
    const std::string label = "lossless(" + codec.name() + ")";
    for (const char* dir : {"_encode", "_decode"}) {
      const double t = dir[1] == 'e' ? te : td;
      obs::json::Value r = obs::json::Value::object();
      r.set("op", label + dir);
      r.set("shape", std::string(shape));
      r.set("threads", 1);
      r.set("ns_op", t * 1e9);
      r.set("gb_s", raw_bytes / t / 1e9);
      r.set("ratio", ratio);
      obs::RunReport::current()->add_record(std::move(r));
      ++g_emitted;
    }
    std::printf("%-28s %-10s t=1  enc %6.2f GB/s  dec %6.2f GB/s  ratio %.3f\n",
                label.c_str(), shape, raw_bytes / te / 1e9, raw_bytes / td / 1e9,
                ratio);
  }
}

void bench_finetune_step() {
  nn::BertConfig cfg;
  cfg.vocab_size = 1024;
  cfg.hidden = 128;
  cfg.num_layers = 4;
  cfg.num_heads = 4;
  cfg.intermediate = 512;
  cfg.max_seq = 64;
  cfg.dropout = 0.0f;
  const int64_t batch = 8, seq = 64;
  nn::EncoderInput in;
  in.batch = batch;
  in.seq = seq;
  for (int64_t i = 0; i < batch * seq; ++i) in.token_ids.push_back(i % 1000);
  in.segment_ids.assign(static_cast<size_t>(batch * seq), 0);
  in.lengths.assign(static_cast<size_t>(batch), seq);
  const ts::Tensor target{ts::Shape{batch, seq, cfg.hidden}};

  char shape[64];
  std::snprintf(shape, sizeof(shape), "b%lld_s%lld_h%lld_l%d",
                static_cast<long long>(batch), static_cast<long long>(seq),
                static_cast<long long>(cfg.hidden), static_cast<int>(cfg.num_layers));
  for (int threads : {1, 4}) {
    core::set_num_threads(threads);
    ts::Generator gen(5);
    nn::BertModel model(cfg, gen);
    std::vector<ag::Variable> params = model.parameters();
    actcomp::train::Adam opt(params, 1e-4f);
    auto step = [&] {
      ts::Generator fgen(7);
      ag::Variable y = model.forward(in, fgen, true);
      ag::Variable loss = ag::mse_loss(y, target);
      for (auto& p : params) p.zero_grad();
      loss.backward();
      opt.step();
    };
    step();  // warm-up (allocations, first-touch)
    const double t = best_of(3, step);
    emit("finetune_step", shape, threads, t * 1e9, 0.0);
    std::printf("finetune_step %-18s t=%d  %8.1f ms/step\n", shape, threads,
                t * 1e3);
  }
  core::set_num_threads(1);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  const char* out = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out = argv[i];
    }
  }
  obs::RunReport report("kernels_bench");
  report.set_config("quick", quick);
  report.set_config("seed", int64_t{99});
  std::printf("kernel benchmarks (pool default: %d threads)%s\n\n",
              core::num_threads(), quick ? " [quick]" : "");

  // The acceptance shape first, then the paper's hidden sizes as
  // (tokens x hidden x hidden) projections with tokens = 512. Quick mode
  // keeps one seeded shape and one larger hidden size.
  bench_matmul(512, 512, 512, /*run_seed=*/true);
  std::printf("\n");
  bench_matmul_tiers(512, 512, 512);
  if (!quick) {
    bench_matmul(768, 768, 768, /*run_seed=*/true);
    for (int64_t hidden : {768, 1024, 2048, 4096, 8192}) {
      bench_matmul(512, hidden, hidden, /*run_seed=*/hidden <= 4096);
    }
  } else {
    bench_matmul(512, 1024, 1024, /*run_seed=*/true);
  }

  std::printf("\n");
  {
    ts::Generator gen(11);
    // The 64x16384 shape runs in BOTH modes so `--quick` (the CI gate) and
    // the full sweep (what baselines are committed from) share record keys.
    const ts::Tensor xq = gen.normal(ts::Shape{64, 16384});
    cp::TopKCompressor topk(0.1);
    bench_compressor("topk(0.1)", topk, xq);
    cp::QuantizeCompressor quant(4);
    bench_compressor("quant(4b)", quant, xq);
    std::printf("\n");
    bench_lossless(xq);
    if (!quick) {
      const ts::Tensor x = gen.normal(ts::Shape{256, 16384});
      bench_compressor("topk(0.1)", topk, x);
      bench_compressor("quant(4b)", quant, x);
    }
  }

  std::printf("\n");
  bench_finetune_step();

  // The argv path gets the same canonical document the RunReport writes to
  // $ACTCOMP_REPORT_DIR — this is what baselines are committed from.
  const std::string doc = report.to_json().dump(2);
  if (FILE* f = std::fopen(out, "w")) {
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %d records to %s\n", g_emitted, out);
  } else {
    std::fprintf(stderr, "cannot open %s for writing\n", out);
  }
  return 0;
}
