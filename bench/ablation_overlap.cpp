// Ablation: what the discrete-event engine adds over the closed-form
// pipeline model — comm/compute overlap, explicit link contention, and
// interleaved (virtual-stage) schedules.
//
// Three questions, three tables:
//   1. How much p2p latency can async overlap hide on the NIC-bound
//      pre-training grid, with and without compression?
//   2. Does modelling the Megatron scatter-gather slices as discrete
//      messages queuing on link lanes (instead of the closed-form
//      divide-by-parallelism) change the picture?
//   3. Where does interleaved-1F1B pay off? (Compute-dominated NVLink
//      pipelines — on the slow NIC the doubled transfer volume wins.)
#include <cstdio>

#include "bench/simbench.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("ablation_overlap");
  const parallel::TrainJob job{128, 8, 128};
  const auto model = nn::BertConfig::bert_large();

  std::printf(
      "Ablation — discrete-event engine: overlap, contention, interleaving\n");

  // --- 1. comm/compute overlap on the pre-training grid -------------------
  std::printf("\n[1] Async p2p overlap (4 nodes, 16 GPUs)\n\n");
  {
    std::vector<std::string> header{"Config", "setting", "strict ms",
                                    "overlap ms", "hidden"};
    std::vector<std::vector<std::string>> body;
    for (const auto& par : bench::pretrain_parallel_rows()) {
      for (auto s : {compress::Setting::kBaseline, compress::Setting::kA2}) {
        const auto plan = core::CompressionPlan::paper_default(s, 24);
        auto cell = [&](bool overlap) {
          parallel::ModelParallelSimulator sim(
              sim::ClusterSpec::aws_p3(4), model, par, job,
              parallel::SimOptions{sim::ScheduleKind::k1F1B, 1, overlap,
                                   false});
          return sim.run(plan).total_ms();
        };
        const double strict = cell(false);
        const double lap = cell(true);
        body.push_back(
            {"TP=" + std::to_string(par.tp) + ",PP=" + std::to_string(par.pp),
             compress::setting_label(s), bench::fmt(strict), bench::fmt(lap),
             bench::fmt(100.0 * (strict - lap) / strict, 2) + "%"});
      }
    }
    bench::print_table(header, body, 14);
  }

  // --- 2. link contention vs the closed-form approximation ----------------
  std::printf(
      "\n[2] Scatter-gather slices queuing on link lanes (4 nodes)\n\n");
  {
    std::vector<std::string> header{"Config", "closed-form ms", "queued ms",
                                    "delta"};
    std::vector<std::vector<std::string>> body;
    for (const auto& par : bench::pretrain_parallel_rows()) {
      auto cell = [&](bool contention) {
        parallel::ModelParallelSimulator sim(
            sim::ClusterSpec::aws_p3(4), model, par, job,
            parallel::SimOptions{sim::ScheduleKind::k1F1B, 1, false,
                                 contention});
        return sim.run_baseline().total_ms();
      };
      const double closed = cell(false);
      const double queued = cell(true);
      body.push_back(
          {"TP=" + std::to_string(par.tp) + ",PP=" + std::to_string(par.pp),
           bench::fmt(closed), bench::fmt(queued),
           bench::fmt(100.0 * (queued - closed) / closed, 2) + "%"});
    }
    bench::print_table(header, body, 14);
  }

  // --- 3. interleaved schedules across comm regimes -----------------------
  std::printf(
      "\n[3] Interleaved-1F1B vs plain 1F1B (baseline, no compression)\n\n");
  {
    std::vector<std::string> header{"Cluster", "Config", "1F1B ms", "int-v2 ms",
                                    "delta"};
    std::vector<std::vector<std::string>> body;
    struct Row {
      sim::ClusterSpec cluster;
      parallel::ParallelConfig par;
      const char* label;
    };
    const Row rows[] = {
        {sim::ClusterSpec::aws_p3(1), {1, 4}, "1-node NVLink"},
        {sim::ClusterSpec::aws_p3(4), {4, 4}, "4-node NIC"},
    };
    for (const auto& row : rows) {
      auto cell = [&](sim::ScheduleKind kind, int v) {
        parallel::ModelParallelSimulator sim(
            row.cluster, model, row.par, job,
            parallel::SimOptions{kind, v, false, false});
        return sim.run_baseline().total_ms();
      };
      const double plain = cell(sim::ScheduleKind::k1F1B, 1);
      const double inter = cell(sim::ScheduleKind::kInterleaved1F1B, 2);
      body.push_back({row.label,
                      "TP=" + std::to_string(row.par.tp) + ",PP=" +
                          std::to_string(row.par.pp),
                      bench::fmt(plain), bench::fmt(inter),
                      bench::fmt(100.0 * (inter - plain) / plain, 2) + "%"});
    }
    bench::print_table(header, body, 14);
  }

  std::printf(
      "\nTakeaway: overlap hides part of the p2p cost that compression also\n"
      "targets, but even a perfectly async pipeline leaves the NIC-bound\n"
      "rows far above the NVLink rows — bandwidth, not ordering, is the\n"
      "bottleneck, which is the paper's motivation for compressing the\n"
      "activations themselves. Interleaving only helps once the links are\n"
      "fast (negative delta on NVLink, positive on the shared NIC).\n");
  return 0;
}
