// Ablation: serving under failures — routing, hedging, and SLO-aware
// compression degradation on a replicated fleet.
//
// ablation_serving priced compressed TP collectives on a clean single
// server; this bench asks what happens on the fleet an operator actually
// runs: replicas crash and recover, some brown out (persistently slow), and
// the arrival rate does not politely stay under capacity. Three panels, all
// driven by the fault-tolerant serving runtime (sim/serving_resilience.h)
// over seeded traces — every number is deterministic.
//
//   1. Routing x replica MTBF: a 3-replica NVLink fleet under seeded
//      crash/recovery processes. Blind round-robin keeps dispatching to dead
//      replicas and pays for it in timeouts and retries; join-shortest-queue
//      routes around them; health-aware ejection converges to JSQ after one
//      timeout per outage.
//   2. Hedged retries on a browned-out fleet: one of two replicas runs 8x
//      slow (a degraded node that still answers health checks — the
//      classic gray failure). Duplicating a straggling request to the other
//      replica after a latency threshold collapses the tail for a bounded
//      token overhead (first result wins, the loser is cancelled).
//   3. SLO-aware degradation under overload: a single cross-node TP=8
//      server offered ~4% more load than the uncompressed setting sustains.
//      The fixed `w/o` config misses its p99 SLO and its queue diverges;
//      the adaptive ladder escalates to Top-K compression when the measured
//      p99 breaches the target and recovers the SLO. A fixed-Top-K oracle
//      bounds what escalation can buy. Note the serving ladder here is
//      {w/o, T3}: unlike training, 8-bit quantization (Q3) is *slower*
//      than no compression for decode on this platform (its per-step
//      encode+dispatch overhead exceeds the bandwidth it saves), so a
//      useful degradation ladder must be priced per deployment — the same
//      per-deployment verdict as the paper's training tables.
//
//   $ ./ablation_serving_faults [num_requests] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/simbench.h"
#include "sim/serving_resilience.h"

int main(int argc, char** argv) {
  using namespace actcomp;
  obs::RunReport report("ablation_serving_faults");
  const int num_requests = argc > 1 ? std::atoi(argv[1]) : 96;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const nn::BertConfig model = nn::BertConfig::bert_large();
  report.set_config("num_requests", int64_t{num_requests});
  report.set_config("seed", static_cast<int64_t>(seed));

  std::printf(
      "Ablation — fault-tolerant serving: routing, hedging, SLO degradation\n"
      "(BERT-Large; seeded replica faults; %d-request panels 1-2, seed "
      "%llu)\n",
      num_requests, static_cast<unsigned long long>(seed));

  // Shared fleet pricing: the NVLink panels run TP=4 in one box, the
  // degradation panel TP=8 across two nodes' 1.25 GB/s uplink.
  parallel::ModelParallelSimulator nvlink(sim::ClusterSpec::aws_p3(1), model,
                                          {4, 1}, parallel::TrainJob{});
  parallel::ModelParallelSimulator crossnode(sim::ClusterSpec::aws_p3(2),
                                             model, {8, 1},
                                             parallel::TrainJob{});
  const auto nvlink_ladder =
      parallel::make_serving_cost_ladder(nvlink, model.num_layers);
  const auto crossnode_ladder =
      parallel::make_serving_cost_ladder(crossnode, model.num_layers);

  // --- Panel 1: routing policy x replica MTBF on a crashy fleet. ---------
  {
    std::printf(
        "\n=== Routing x replica MTBF (3 NVLink replicas, TP=4; prompt 128, "
        "generate 32;\n    retry on 1 s timeout, up to 4 attempts; repair "
        "2 s) ===\n\n");
    sim::PoissonTraceSpec spec;
    spec.rate_per_s = 24.0;
    spec.num_requests = num_requests;
    spec.prompt_tokens = 128;
    spec.max_new_tokens = 32;
    spec.seed = seed;
    const auto trace = sim::poisson_trace(spec);

    const double mtbfs[] = {0.0, 20000.0, 5000.0};  // 0 = no faults
    const sim::RoutePolicy policies[] = {
        sim::RoutePolicy::kRoundRobin, sim::RoutePolicy::kJoinShortestQueue,
        sim::RoutePolicy::kHealthAware};
    std::vector<std::string> header{"policy",   "mtbf s", "done",
                                    "failed",   "retries", "timeouts",
                                    "e2e p99",  "goodput"};
    std::vector<std::vector<std::string>> body;
    for (const double mtbf : mtbfs) {
      for (const sim::RoutePolicy policy : policies) {
        sim::ResilientServingConfig cfg;
        cfg.num_replicas = 3;
        cfg.policy = policy;
        cfg.max_batch = 8;
        cfg.token_budget = 2048;
        cfg.cost_ladder = {nvlink_ladder[0]};
        if (mtbf > 0.0) {
          for (int r = 0; r < 3; ++r) {
            sim::ReplicaFaultSpec fs;
            fs.mtbf_ms = mtbf;
            fs.repair_ms = 2000.0;
            fs.seed = seed * 100 + static_cast<uint64_t>(r);
            cfg.replica_faults.push_back(fs);
          }
        }
        cfg.retry.max_attempts = 4;
        cfg.retry.timeout_ms = 1000.0;
        cfg.retry.backoff_ms = 5.0;
        if (policy == sim::RoutePolicy::kHealthAware) {
          cfg.eject_ms = 2000.0;
        }
        const auto rep = sim::simulate_serving_resilient(trace, cfg);
        body.push_back({sim::route_policy_label(policy),
                        mtbf > 0.0 ? bench::fmt(mtbf / 1000.0, 0) : "inf",
                        bench::fmt(static_cast<double>(rep.serving.completed), 0),
                        bench::fmt(static_cast<double>(rep.failed), 0),
                        bench::fmt(static_cast<double>(rep.retries), 0),
                        bench::fmt(static_cast<double>(rep.timeouts), 0),
                        bench::fmt(rep.serving.e2e.p99_ms),
                        bench::fmt(rep.goodput_tok_s())});
        obs::json::Value rec = obs::json::Value::object();
        rec.set("panel", std::string("routing_mtbf"));
        rec.set("policy", std::string(sim::route_policy_label(policy)));
        rec.set("mtbf_ms", mtbf);
        rec.set("completed", rep.serving.completed);
        rec.set("failed", rep.failed);
        rec.set("retries", rep.retries);
        rec.set("timeouts", rep.timeouts);
        rec.set("crashes", rep.crashes);
        rec.set("e2e_p99_ms", rep.serving.e2e.p99_ms);
        rec.set("goodput_tok_s", rep.goodput_tok_s());
        report.add_record(std::move(rec));
      }
    }
    bench::print_table(header, body, 10);
  }

  // --- Panel 2: hedged retries against a browned-out replica. ------------
  {
    std::printf(
        "\n=== Hedging vs a gray failure (2 NVLink replicas, one 8x slow; "
        "round-robin;\n    hedge duplicates to the other replica, first "
        "result wins) ===\n\n");
    sim::PoissonTraceSpec spec;
    spec.rate_per_s = 10.0;
    spec.num_requests = num_requests;
    spec.prompt_tokens = 128;
    spec.max_new_tokens = 32;
    spec.seed = seed;
    const auto trace = sim::poisson_trace(spec);

    const double hedges_ms[] = {0.0, 400.0, 150.0};  // 0 = hedging off
    std::vector<std::string> header{"hedge ms", "e2e p50", "e2e p99",
                                    "hedges",   "wins",    "wasted tok",
                                    "goodput"};
    std::vector<std::vector<std::string>> body;
    for (const double hedge_after : hedges_ms) {
      sim::ResilientServingConfig cfg;
      cfg.num_replicas = 2;
      cfg.policy = sim::RoutePolicy::kRoundRobin;
      cfg.max_batch = 8;
      cfg.token_budget = 2048;
      cfg.cost_ladder = {nvlink_ladder[0]};
      sim::ReplicaFaultSpec slow;
      slow.slow_mtbf_ms = 1e-3;  // brown-out opens immediately...
      slow.slow_duration_ms = 1e12;  // ...and never closes
      slow.slow_factor = 8.0;
      slow.seed = seed;
      cfg.replica_faults = {slow, sim::ReplicaFaultSpec{}};
      cfg.retry.hedge_after_ms = hedge_after;
      const auto rep = sim::simulate_serving_resilient(trace, cfg);
      body.push_back({hedge_after > 0.0 ? bench::fmt(hedge_after, 0) : "off",
                      bench::fmt(rep.serving.e2e.p50_ms),
                      bench::fmt(rep.serving.e2e.p99_ms),
                      bench::fmt(static_cast<double>(rep.hedges), 0),
                      bench::fmt(static_cast<double>(rep.hedge_wins), 0),
                      bench::fmt(static_cast<double>(rep.wasted_tokens), 0),
                      bench::fmt(rep.goodput_tok_s())});
      obs::json::Value rec = obs::json::Value::object();
      rec.set("panel", std::string("hedging"));
      rec.set("hedge_after_ms", hedge_after);
      rec.set("e2e_p50_ms", rep.serving.e2e.p50_ms);
      rec.set("e2e_p99_ms", rep.serving.e2e.p99_ms);
      rec.set("hedges", rep.hedges);
      rec.set("hedge_wins", rep.hedge_wins);
      rec.set("wasted_tokens", rep.wasted_tokens);
      rec.set("goodput_tok_s", rep.goodput_tok_s());
      report.add_record(std::move(rec));
    }
    bench::print_table(header, body, 10);
  }

  // --- Panel 3: SLO-aware degradation under overload. --------------------
  {
    std::printf(
        "\n=== SLO-aware degradation (1 cross-node TP=8 server; prompt 512, "
        "generate 4;\n    800 requests at 10.2 req/s — ~4%% over the w/o "
        "capacity; SLO: e2e p99 <= 2000 ms) ===\n\n");
    sim::PoissonTraceSpec spec;
    spec.rate_per_s = 10.2;
    spec.num_requests = 800;
    spec.prompt_tokens = 512;
    spec.max_new_tokens = 4;
    spec.seed = seed;
    const auto trace = sim::poisson_trace(spec);
    const double slo_ms = 2000.0;

    struct Mode {
      const char* label;
      std::vector<sim::StepCostFn> ladder;
      bool adaptive;
      const char* fixed_rung;  ///< reported rung when not adaptive
    };
    const Mode modes[] = {
        {"fixed w/o", {crossnode_ladder[0]}, false, "w/o"},
        {"fixed T3 (oracle)", {crossnode_ladder[3]}, false, "T3"},
        {"adaptive w/o->T3",
         {crossnode_ladder[0], crossnode_ladder[3]},
         true,
         nullptr},
    };
    std::vector<std::string> header{"mode",    "e2e p50", "e2e p99",
                                    "SLO",     "goodput", "esc",
                                    "final rung"};
    std::vector<std::vector<std::string>> body;
    for (const Mode& mode : modes) {
      sim::ResilientServingConfig cfg;
      cfg.num_replicas = 1;
      cfg.max_batch = 8;
      cfg.token_budget = 8192;
      cfg.cost_ladder = mode.ladder;
      if (mode.adaptive) {
        cfg.slo_e2e_p99_ms = slo_ms;
        cfg.degrade.enabled = true;
        cfg.degrade.window = 8;
        cfg.degrade.hold_windows = 2;
        cfg.degrade.recover_fraction = 0.25;
      }
      const auto rep = sim::simulate_serving_resilient(trace, cfg);
      const char* rung = mode.adaptive
                             ? (rep.final_level == 0 ? "w/o" : "T3")
                             : mode.fixed_rung;
      body.push_back({mode.label, bench::fmt(rep.serving.e2e.p50_ms),
                      bench::fmt(rep.serving.e2e.p99_ms),
                      rep.slo_met(slo_ms) ? "met" : "MISSED",
                      bench::fmt(rep.goodput_tok_s()),
                      bench::fmt(static_cast<double>(rep.escalations), 0),
                      rung});
      obs::json::Value rec = obs::json::Value::object();
      rec.set("panel", std::string("slo_degradation"));
      rec.set("mode", std::string(mode.label));
      rec.set("slo_ms", slo_ms);
      rec.set("e2e_p50_ms", rep.serving.e2e.p50_ms);
      rec.set("e2e_p99_ms", rep.serving.e2e.p99_ms);
      rec.set("slo_met", rep.slo_met(slo_ms));
      rec.set("goodput_tok_s", rep.goodput_tok_s());
      rec.set("escalations", int64_t{rep.escalations});
      rec.set("final_level", int64_t{rep.final_level});
      report.add_record(std::move(rec));
    }
    bench::print_table(header, body, 10);
  }

  std::printf(
      "\nTakeaway: fault tolerance in serving is three separate levers and\n"
      "the simulator prices each. Routing only needs queue visibility to\n"
      "erase the cost of hard crashes (JSQ matches health-aware ejection;\n"
      "blind round-robin pays a timeout per dead dispatch). Gray failures\n"
      "are the opposite: the browned-out replica still accepts work, so\n"
      "only hedging rescues its requests — for a small wasted-token bill.\n"
      "And when the whole fleet is the bottleneck, the compression ladder\n"
      "is the last resort: escalating to Top-K under a breached SLO buys\n"
      "the few percent of capacity that separate a diverging queue from a\n"
      "stable one, which is exactly the knife's edge where the paper's\n"
      "per-deployment pricing question matters for inference too.\n");
  return 0;
}
