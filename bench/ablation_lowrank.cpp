// Ablation (paper §2.2 / Fig. 2, made quantitative): WHY the paper excludes
// low-rank compression for activations.
//
// At a fixed wire budget (the A2 autoencoder's), compare reconstruction
// error of the PowerSGD-style low-rank factorizer on (a) a gradient-like
// low-rank matrix and (b) a real trained-model activation, against the
// Table-1 compressors at the same-or-smaller budget.
#include <cstdio>

#include "autograd/functions.h"
#include "bench/lab.h"
#include "compress/lowrank.h"
#include "compress/settings.h"
#include "data/dataset.h"
#include "tensor/ops.h"
#include "train/optimizer.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("ablation_lowrank");
  namespace ts = tensor;
  namespace ag = autograd;

  // A real activation + gradient pair from a briefly-trained model (as in
  // fig2_lowrank).
  const int64_t seq = 24;
  ts::Generator gen(5);
  const nn::BertConfig cfg = bench::bench_model_config(seq);
  nn::BertModel model(cfg, gen);
  data::TaskDataset ds =
      data::make_task_dataset(data::TaskId::kMnliM, bench::scaled(512), seq, gen);
  nn::ClassificationHead head(cfg.hidden, 3, gen);
  train::Adam opt(model.parameters(), 5e-4f);
  opt.add_parameters(head.parameters());
  ts::Generator tg(6);
  for (const auto& b : ds.epoch_batches(16, &tg)) {
    opt.zero_grad();
    ag::Variable out = model.forward(b.input, tg, true);
    ag::softmax_cross_entropy(head.forward(out), b.class_labels).backward();
    opt.step();
  }
  const auto batch = ds.batch(0, 32);
  opt.zero_grad();
  ag::Variable out = model.forward(batch.input, tg, true);
  ag::softmax_cross_entropy(head.forward(out), batch.class_labels).backward();
  const ts::Tensor activation = out.value().reshape(
      ts::Shape{batch.input.batch * seq, cfg.hidden});
  ts::Tensor gradient;
  for (const auto& [name, p] : model.named_parameters()) {
    if (name == "layer3.attn.wo.weight") gradient = p.grad().clone();
  }

  ts::Generator cgen(11);
  auto a2 = compress::make_compressor(compress::Setting::kA2, cfg.hidden, cgen);
  const int64_t budget_act = a2->wire_size(activation.shape()).total_bytes();
  const int64_t r_act =
      compress::LowRankCompressor::rank_for_budget(activation.shape(), budget_act);
  // Same-rank comparison at 20% of the feature dimension: Fig. 2 says the
  // gradient holds ~95% of its singular mass there, the activation ~60%.
  const int64_t r_same = std::max<int64_t>(2, cfg.hidden / 5);

  std::printf(
      "Ablation — low-rank compression on activations vs gradients\n"
      "(activation %s at the A2 budget of %lld B -> rank %lld;\n"
      " same-rank comparison at r = %lld = 20%% of dims)\n\n",
      activation.shape().str().c_str(), static_cast<long long>(budget_act),
      static_cast<long long>(r_act), static_cast<long long>(r_same));

  std::vector<std::string> header{"compressor", "target", "rel. error"};
  std::vector<std::vector<std::string>> body;
  {
    compress::LowRankCompressor lr(r_same, 3, 2);
    body.push_back({"low-rank r=20%", "gradient",
                    bench::fmt(ts::rel_error(lr.round_trip(gradient), gradient), 4)});
    body.push_back({"low-rank r=20%", "activation",
                    bench::fmt(ts::rel_error(lr.round_trip(activation), activation), 4)});
  }
  {
    compress::LowRankCompressor lr(r_act, 3, 2);
    body.push_back({"low-rank @A2 budget", "activation",
                    bench::fmt(ts::rel_error(lr.round_trip(activation), activation), 4)});
  }
  for (auto s : {compress::Setting::kA2, compress::Setting::kT4,
                 compress::Setting::kQ2}) {
    auto c = compress::make_compressor(s, cfg.hidden, cgen);
    body.push_back(
        {compress::setting_label(s), "activation",
         bench::fmt(ts::rel_error(c->round_trip(activation), activation), 4)});
  }
  bench::print_table(header, body, 22);
  std::printf(
      "\nTakeaway (paper §2.2 / Fig. 2): at the same rank the factorizer\n"
      "reconstructs the gradient far better than the activation, and at an\n"
      "activation-compression budget its error stays large — which is why\n"
      "PowerSGD-style methods do not transfer from gradient to activation\n"
      "compression. (The untrained A2 codec is also poor here; unlike a\n"
      "low-rank projection it becomes competitive after joint training —\n"
      "see table5 panel B.)\n");
  return 0;
}
