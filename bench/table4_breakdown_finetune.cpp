// Reproduces paper Table 4: per-phase breakdown of the fine-tuning iteration
// (TP=2, PP=2, batch 32, seq 512, local PCIe machine — the calibration
// anchor for the overhead model).
//
// Columns follow the paper: Forward / Backward / Optimizer / Waiting &
// Pipeline Comm. / Total, then the tensor Enc / Dec / Comm sub-breakdown
// (which the paper counts as part of the forward step).
#include "bench/simbench.h"

int main() {
  using namespace actcomp;
  const auto cluster = sim::ClusterSpec::local_pcie();
  parallel::ModelParallelSimulator sim(cluster, nn::BertConfig::bert_large(),
                                       {2, 2}, {32, 1, 512});
  std::printf(
      "Table 4 — fine-tuning breakdown (ms), TP=2/PP=2, b=32, s=512, PCIe\n\n");
  std::vector<std::string> header{"Algorithm", "Forward",  "Backward", "Optim",
                                  "Wait&Pipe", "Total",    "Enc",      "Dec",
                                  "TensorComm"};
  std::vector<std::vector<std::string>> body;
  for (auto s : compress::main_settings()) {
    const auto plan = core::CompressionPlan::paper_default(s, 24);
    const auto r = sim.run(plan);
    body.push_back({compress::setting_label(s), bench::fmt(r.fwd_critical_ms),
                    bench::fmt(r.bwd_critical_ms), bench::fmt(r.optimizer_ms),
                    bench::fmt(r.waiting_finetune_ms()), bench::fmt(r.total_ms()),
                    bench::fmt(r.enc_ms), bench::fmt(r.dec_ms),
                    bench::fmt(r.tensor_comm_ms)});
  }
  bench::print_table(header, body, 12);
  std::printf(
      "\nPaper reference (Table 4): w/o total 646.14 (fwd 276.34, bwd 354.16,\n"
      "tensor comm 150.72); A1 total 586.65 with enc 2.16 / dec 3.12 /\n"
      "comm 80.88; T1 enc 70.08; R1 enc 2,040.24; Q1 enc 20.64 dec 32.16.\n");
  return 0;
}
