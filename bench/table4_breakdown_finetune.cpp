// Reproduces paper Table 4: per-phase breakdown of the fine-tuning iteration
// (TP=2, PP=2, batch 32, seq 512, local PCIe machine — the calibration
// anchor for the overhead model).
//
// Columns follow the paper: Forward / Backward / Optimizer / Waiting &
// Pipeline Comm. / Total, then the tensor Enc / Dec / Comm sub-breakdown
// (which the paper counts as part of the forward step).
#include "bench/simbench.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("table4_breakdown_finetune");
  report.set_config("tp", int64_t{2});
  report.set_config("pp", int64_t{2});
  report.set_config("micro_batch", int64_t{32});
  report.set_config("seq", int64_t{512});
  report.set_config("cluster", "local_pcie");
  const auto cluster = sim::ClusterSpec::local_pcie();
  parallel::ModelParallelSimulator sim(cluster, nn::BertConfig::bert_large(),
                                       {2, 2}, {32, 1, 512});
  std::printf(
      "Table 4 — fine-tuning breakdown (ms), TP=2/PP=2, b=32, s=512, PCIe\n\n");
  std::vector<std::vector<std::string>> body;
  for (auto s : compress::main_settings()) {
    const auto plan = core::CompressionPlan::paper_default(s, 24);
    body.push_back(bench::breakdown_row(compress::setting_label(s), sim.run(plan),
                                        obs::Accounting::kFinetune));
  }
  bench::print_table(obs::breakdown_header(), body, 12);
  std::printf(
      "\nPaper reference (Table 4): w/o total 646.14 (fwd 276.34, bwd 354.16,\n"
      "tensor comm 150.72); A1 total 586.65 with enc 2.16 / dec 3.12 /\n"
      "comm 80.88; T1 enc 70.08; R1 enc 2,040.24; Q1 enc 20.64 dec 32.16.\n");
  return 0;
}
