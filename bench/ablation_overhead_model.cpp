// Ablation (DESIGN.md §5.2): how much of the paper's negative Random-K
// result is the host-side random.sample implementation, vs the algorithm?
//
// We re-run the Table 2 Random-K column with the overhead model switched to
// a device-side sampler (mask generation + stream compaction). The sign
// flips: Random-K becomes competitive with Top-K, though still not with AE.
#include "bench/simbench.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("ablation_overhead_model");
  const auto cluster = sim::ClusterSpec::local_pcie();
  std::printf(
      "Ablation — Random-K encoder implementation (fine-tune, PCIe, b=32, s=512)\n\n");
  std::vector<std::string> header{"Distributed Setting", "w/o", "R1 host",
                                  "R1 device", "T1", "A1"};
  std::vector<std::vector<std::string>> body;
  for (const auto& par : bench::finetune_parallel_rows()) {
    parallel::ModelParallelSimulator sim(cluster, nn::BertConfig::bert_large(),
                                         par, {32, 1, 512});
    const auto plan_r1 =
        core::CompressionPlan::paper_default(compress::Setting::kR1, 24);
    const double base = sim.run_baseline().total_ms();
    const double r1_host = sim.run(plan_r1).total_ms();
    sim.overhead_model().device_side_randomk = true;
    const double r1_dev = sim.run(plan_r1).total_ms();
    sim.overhead_model().device_side_randomk = false;
    const double t1 =
        sim.run(core::CompressionPlan::paper_default(compress::Setting::kT1, 24))
            .total_ms();
    const double a1 =
        sim.run(core::CompressionPlan::paper_default(compress::Setting::kA1, 24))
            .total_ms();
    body.push_back({"TP=" + std::to_string(par.tp) + ", PP=" +
                        std::to_string(par.pp),
                    bench::fmt(base), bench::fmt(r1_host), bench::fmt(r1_dev),
                    bench::fmt(t1), bench::fmt(a1)});
  }
  bench::print_table(header, body);
  std::printf(
      "\nTakeaway: the paper's multi-second Random-K rows are an artifact of\n"
      "the host-side sampler; a device-side sampler is slightly CHEAPER than\n"
      "Top-K (no magnitude scan), but neither approaches AE, whose message\n"
      "also rides all-reduce instead of the all-gather fallback.\n");
  return 0;
}
