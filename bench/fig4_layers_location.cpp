// Reproduces paper Figure 4: fine-tuning accuracy on CoLA and RTE as the
// compression plan varies —
//   (a) compress the LAST n layers, n in {0..L}  (paper: {4,8,...,24} of 24)
//   (b) slide a fixed-size window across the network (location sweep)
//
// Uses the frozen-probe protocol (train uncompressed, attach compression
// post-hoc) with the A2 autoencoder: it isolates compression damage from
// training noise, which at our scale would otherwise dominate these small
// sweeps. Paper shape: (a) accuracy decreases as more layers are
// compressed; (b) compressing the EARLY layers hurts far more than the same
// number of late layers (error accumulates through the network).
#include <cstdio>

#include "bench/lab.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("fig4_layers_location");
  const int64_t seq = 24;
  const int64_t L = bench::bench_model_config(seq).num_layers;
  const auto setting = compress::Setting::kA2;

  std::printf("Figure 4 — accuracy vs compression amount and location (A2, x100)\n\n");
  for (data::TaskId task : {data::TaskId::kCola, data::TaskId::kRte}) {
    bench::FrozenProbe probe = bench::train_frozen_probe(task, seq, 2024);
    const auto& name = data::task_info(task).name;
    std::printf("%s baseline (uncompressed): %.2f\n\n", name.c_str(),
                probe.baseline_metric);

    std::printf("(a) compress the last n layers:\n");
    {
      std::vector<std::string> header{"last n"};
      std::vector<std::string> row{name};
      for (int64_t n = 0; n <= L; ++n) {
        header.push_back(std::to_string(n));
        if (n == 0) {
          row.push_back(bench::fmt(probe.baseline_metric));
          continue;
        }
        const auto plan = core::CompressionPlan::last_n(setting, L, n);
        row.push_back(bench::fmt(bench::posthoc_metric(probe, plan, 2, 5)));
      }
      bench::print_table(header, {row}, 10);
    }

    std::printf("\n(b) compress a %lld-layer window at each location:\n",
                static_cast<long long>(L / 2));
    {
      std::vector<std::string> header{"first layer"};
      std::vector<std::string> row{name};
      for (int64_t first = 0; first + L / 2 <= L; ++first) {
        header.push_back(std::to_string(first));
        const auto plan = core::CompressionPlan::window(setting, first, L / 2);
        row.push_back(bench::fmt(bench::posthoc_metric(probe, plan, 2, 5)));
      }
      bench::print_table(header, {row}, 10);
    }
    std::printf("\n");
  }
  std::printf(
      "Paper reference (Fig. 4): accuracy decreases monotonically-ish with\n"
      "the number of compressed layers (compressing the last 8 of 24 keeps\n"
      "the loss within ~3 points); placing the window over the FIRST layers\n"
      "is far more damaging than over the last layers.\n");
  return 0;
}
