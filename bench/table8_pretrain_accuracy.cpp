// Reproduces paper Table 8: fine-tuning accuracy when starting from a
// checkpoint PRE-TRAINED with compression active. Settings follow the
// paper's subset: w/o, A2, T2, Q2.
//
// Protocol (matching §4.4 / Takeaway 5):
//   1. MLM pre-train on the synthetic corpus with the setting's compressors
//      attached to the last-half layers.
//   2. Save ONLY the model weights (AE codecs are dropped — Takeaway 5:
//      "the parameters of the AE can be ignored" at fine-tuning time).
//   3. Fine-tune every GLUE-style task WITHOUT compression from that
//      checkpoint.
//
// Paper shape: A2- and Q2-pre-trained checkpoints fine-tune as well as the
// uncompressed one (avg 82.96 / 83.14 vs 82.89); the T2 checkpoint is
// heavily damaged (avg 51.55).
#include <cstdio>

#include "autograd/functions.h"
#include "bench/lab.h"
#include "data/pretrain.h"
#include "data/vocab.h"
#include "train/trainer.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("table8_pretrain_accuracy");
  namespace ts = tensor;
  const int64_t seq = 24;
  const nn::BertConfig cfg = bench::bench_model_config(seq);
  const std::vector<compress::Setting> settings = {
      compress::Setting::kBaseline, compress::Setting::kA2,
      compress::Setting::kT2, compress::Setting::kQ2};

  std::printf(
      "Table 8 — fine-tuning accuracy x100 from compressed pre-training\n"
      "(MLM pre-training with compression on the last %lld layers; codecs\n"
      "dropped before fine-tuning; fine-tuning itself uncompressed)\n\n",
      static_cast<long long>(cfg.num_layers / 2));

  std::vector<std::string> header{"Pretrained w/"};
  for (const auto& t : data::all_tasks()) header.push_back(t.name);
  header.push_back("Avg.");
  std::vector<std::vector<std::string>> body;

  for (auto s : settings) {
    // 1. Compressed pre-training.
    ts::Generator gen(31);
    nn::BertModel model(cfg, gen);
    nn::MlmHead head(cfg.hidden, data::Vocab::kSize, gen);
    core::CompressionBinder binder(
        model, core::CompressionPlan::paper_default(s, cfg.num_layers),
        /*pp_degree=*/2, gen);
    data::PretrainCorpus corpus(64, 512, gen);
    train::PretrainConfig pc;
    pc.batch_size = 16;
    pc.steps = bench::scaled(700, 60);
    pc.seq = seq;
    pc.lr = 1e-3f;
    const auto pres = train::pretrain_mlm(model, head, corpus, pc, &binder);
    std::printf("%s: MLM loss %.3f -> %.3f\n", compress::setting_label(s).c_str(),
                pres.initial_loss, pres.final_loss);
    std::fflush(stdout);

    // 2. Keep only the BERT weights.
    const ts::TensorMap ckpt = model.state_dict();

    // 3. Plain fine-tuning from the checkpoint, per task.
    std::vector<std::string> row{compress::setting_label(s)};
    double sum = 0.0;
    for (const auto& t : data::all_tasks()) {
      ts::Generator fgen(101);
      nn::BertModel fresh(cfg, fgen);
      fresh.load_state_dict(ckpt);
      const auto recipe = bench::light_recipe(t.id);
      data::TaskDataset train_ds =
          data::make_task_dataset(t.id, recipe.train_n, seq, fgen);
      data::TaskDataset dev_ds =
          data::make_task_dataset(t.id, bench::scaled(256, 64), seq, fgen);
      train::FinetuneConfig fc;
      fc.batch_size = 16;
      fc.epochs = recipe.epochs;
      fc.lr = recipe.lr;
      fc.seed = 555;
      const double m =
          train::finetune(fresh, train_ds, dev_ds, fc, nullptr).dev_metric;
      row.push_back(bench::fmt(m));
      sum += m;
    }
    row.push_back(bench::fmt(sum / static_cast<double>(data::all_tasks().size())));
    body.push_back(std::move(row));
  }
  std::printf("\n");
  bench::print_table(header, body, 14, 9);
  std::printf(
      "\nPaper reference (Table 8): avg 82.89 (w/o), 82.96 (A2), 51.55 (T2),\n"
      "83.14 (Q2) — AE and quantization checkpoints are as good as the\n"
      "uncompressed one; the Top-K checkpoint is heavily damaged.\n");
  return 0;
}
