// Reproduces paper Table 2: average iteration time (ms) for fine-tuning with
// each compression setting across distributed settings, on the NVLink
// machine (AWS p3.8xlarge), batch 32, sequence length 512.
//
// Paper shape to check: no compression setting meaningfully beats "w/o" on
// NVLink; Random-K is catastrophic (R1 < R2 < R3 < R4, all far above
// baseline); Top-K and quantization add overhead at TP >= 2.
#include "bench/simbench.h"

int main() {
  using namespace actcomp;
  obs::RunReport report("table2_finetune_nvlink");
  bench::print_iteration_table(
      "Table 2 — fine-tuning iteration time (ms), NVLink machine",
      sim::ClusterSpec::aws_p3(1), bench::finetune_parallel_rows(),
      parallel::TrainJob{32, 1, 512}, compress::main_settings());
  std::printf(
      "Paper reference (Table 2): w/o = 591.96 / 440.71 / 261.48 ms for the\n"
      "three rows; A1/A2 within ~3%% of baseline; R4 at TP=2 = 71,058 ms.\n");
  return 0;
}
