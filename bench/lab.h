// Shared infrastructure for the accuracy benches (Tables 5/8/15/16, Fig. 4).
//
// Two experimental protocols are provided:
//
//  * compressed_finetune() — the paper's protocol: train the task with the
//    compressors active in the forward pass (AE codecs learn jointly).
//  * train_frozen_probe() + posthoc_metric() — a complementary protocol that
//    isolates the *information destruction* of each compressor: train the
//    task uncompressed, freeze it, then attach compression at evaluation
//    time (training only the AE codecs, which are learned by definition).
//    At our reduced scale, joint training co-adapts around even aggressive
//    sparsification, muting the paper's catastrophic Top-K numbers; the
//    frozen probe reproduces the paper's ordering cleanly (see
//    EXPERIMENTS.md for the discussion).
//
// Scaling: every bench honors ACTCOMP_SCALE (float, default 1; e.g. 0.2 for
// a quick smoke run) applied to dataset sizes, and prints the resolved
// configuration.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/binder.h"
#include "data/dataset.h"
#include "nn/bert.h"
#include "obs/report.h"
#include "sim/faults.h"
#include "train/trainer.h"

namespace actcomp::bench {

/// The reduced-scale stand-in for BERT-Large used by accuracy experiments
/// (hidden 32 = 1/32 of BERT-Large's 1024; 4 layers standing in for 24, so
/// the paper's "last 12 of 24" plan maps to "last 2 of 4").
nn::BertConfig bench_model_config(int64_t max_seq = 24);

/// ACTCOMP_SCALE env var (default 1.0), clamped to [0.05, 10].
double bench_scale();

/// n scaled by bench_scale(), at least `min_n`.
int64_t scaled(int64_t n, int64_t min_n = 64);

/// Per-task fine-tuning recipe (sizes chosen so the uncompressed baseline
/// learns reliably at bench scale; see DESIGN.md).
struct TaskRecipe {
  int64_t train_n;
  int64_t epochs;
  float lr;
};
TaskRecipe task_recipe(data::TaskId id);
/// Half-budget recipe for the wide sweeps (Table 5 panel A, Tables 15/16):
/// half the data, two-thirds of the epochs — noisier but 3x cheaper.
TaskRecipe light_recipe(data::TaskId id);

/// The paper's protocol: fine-tune with compression active; returns the dev
/// metric x100. `pp_degree` controls where the pipeline-boundary compression
/// point falls (the paper's Table 5 uses TP=2, PP=2).
double compressed_finetune(data::TaskId task, compress::Setting setting,
                           const core::CompressionPlan& plan, int64_t seq,
                           uint64_t seed, bool light = false);

/// A task model trained without compression, frozen for post-hoc probing.
struct FrozenProbe {
  nn::BertConfig config;
  std::unique_ptr<nn::BertModel> model;
  std::unique_ptr<nn::ClassificationHead> cls_head;
  std::unique_ptr<nn::RegressionHead> reg_head;
  std::unique_ptr<data::TaskDataset> train;  // kept for AE codec training
  std::unique_ptr<data::TaskDataset> dev;
  data::TaskId task;
  double baseline_metric = 0.0;
};

FrozenProbe train_frozen_probe(data::TaskId task, int64_t seq, uint64_t seed);

/// Attach `plan` to the frozen model, train AE codecs if the setting is
/// learning-based, evaluate, detach. Returns the dev metric x100.
double posthoc_metric(FrozenProbe& probe, const core::CompressionPlan& plan,
                      int64_t pp_degree, uint64_t seed);

// ---- Monte-Carlo fault sweeps ----

/// Distribution of a scenario's makespan under fault injection, plus the
/// clean (fault-free) reference. Percentiles use the nearest-rank method
/// over the trial makespans.
struct FaultSweepSummary {
  double clean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double worst_ms = 0.0;
  int trials = 0;

  /// Slowdown vs the clean run (>= 1 by the fault model's construction).
  double slowdown_p50() const { return p50_ms / clean_ms; }
  double slowdown_p95() const { return p95_ms / clean_ms; }
  double slowdown_p99() const { return p99_ms / clean_ms; }
};

/// Replays one (schedule x compressor x fault profile) scenario `trials`
/// times, re-seeding the profile with base_seed + t each replay, and
/// summarizes the makespan distribution. The caller supplies the scenario
/// as a profile -> makespan function (e.g. a simulate_pipeline or
/// ModelParallelSimulator wrapper); it is called once with a disabled
/// profile for the clean reference. Fully deterministic: same base_seed,
/// same summary.
struct FaultSweep {
  int trials = 25;
  uint64_t base_seed = 1;

  FaultSweepSummary run(
      sim::FaultProfile profile,
      const std::function<double(const sim::FaultProfile&)>& makespan_ms) const;
};

// ---- table formatting ----

/// Print a fixed-width table: header row then body rows; first column is
/// left-aligned, the rest right-aligned with the given width.
void print_table(const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows,
                 int first_width = 20, int col_width = 11);

std::string fmt(double v, int precision = 2);

}  // namespace actcomp::bench
