// Micro-benchmarks (google-benchmark) for the real compression kernels:
// encode / decode / round-trip throughput of every algorithm on
// activation-shaped tensors. These are the CPU-library analogues of the
// paper's Table 4 Enc/Dec columns and are useful when adopting the
// compression library outside the simulator.
#include <benchmark/benchmark.h>

#include "compress/autoencoder.h"
#include "compress/identity.h"
#include "compress/quantize.h"
#include "compress/randomk.h"
#include "compress/settings.h"
#include "compress/topk.h"
#include "tensor/random.h"

namespace {

using namespace actcomp;

tensor::Tensor activation(int64_t rows, int64_t hidden) {
  tensor::Generator gen(7);
  return gen.normal(tensor::Shape{rows, hidden}, 0.0f, 2.0f);
}

void run_encode(benchmark::State& state, compress::Compressor& c,
                const tensor::Tensor& x) {
  for (auto _ : state) {
    auto msg = c.encode(x);
    benchmark::DoNotOptimize(msg.body.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * x.numel() * 4);
}

void run_round_trip(benchmark::State& state, compress::Compressor& c,
                    const tensor::Tensor& x) {
  for (auto _ : state) {
    auto y = c.round_trip(x);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * x.numel() * 4);
}

void BM_IdentityEncode(benchmark::State& state) {
  compress::IdentityCompressor c;
  const auto x = activation(state.range(0), 128);
  run_encode(state, c, x);
}
BENCHMARK(BM_IdentityEncode)->Arg(256)->Arg(2048);

void BM_TopKEncode(benchmark::State& state) {
  compress::TopKCompressor c(0.05);
  const auto x = activation(state.range(0), 128);
  run_encode(state, c, x);
}
BENCHMARK(BM_TopKEncode)->Arg(256)->Arg(2048);

void BM_TopKRoundTrip(benchmark::State& state) {
  compress::TopKCompressor c(0.05);
  const auto x = activation(state.range(0), 128);
  run_round_trip(state, c, x);
}
BENCHMARK(BM_TopKRoundTrip)->Arg(256)->Arg(2048);

void BM_RandomKEncode(benchmark::State& state) {
  compress::RandomKCompressor c(0.05, 99);
  const auto x = activation(state.range(0), 128);
  run_encode(state, c, x);
}
BENCHMARK(BM_RandomKEncode)->Arg(256)->Arg(2048);

void BM_QuantizeEncode(benchmark::State& state) {
  compress::QuantizeCompressor c(static_cast<int>(state.range(1)));
  const auto x = activation(state.range(0), 128);
  run_encode(state, c, x);
}
BENCHMARK(BM_QuantizeEncode)->Args({2048, 2})->Args({2048, 4})->Args({2048, 8});

void BM_QuantizeRoundTrip(benchmark::State& state) {
  compress::QuantizeCompressor c(4);
  const auto x = activation(state.range(0), 128);
  run_round_trip(state, c, x);
}
BENCHMARK(BM_QuantizeRoundTrip)->Arg(256)->Arg(2048);

void BM_AutoencoderEncode(benchmark::State& state) {
  tensor::Generator gen(3);
  compress::AutoencoderCompressor c(128, static_cast<int64_t>(state.range(1)), gen);
  const auto x = activation(state.range(0), 128);
  run_encode(state, c, x);
}
BENCHMARK(BM_AutoencoderEncode)->Args({2048, 6})->Args({2048, 13});

void BM_AutoencoderRoundTrip(benchmark::State& state) {
  tensor::Generator gen(3);
  compress::AutoencoderCompressor c(128, 13, gen);
  const auto x = activation(state.range(0), 128);
  run_round_trip(state, c, x);
}
BENCHMARK(BM_AutoencoderRoundTrip)->Arg(256)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
