// Engine micro-benchmark: events/sec of the discrete-event core on
// million-op DAGs, and the speedup of the refactored Engine::run() over the
// preserved pre-refactor dispatch loop (Engine::run_reference()).
//
// Two graph families, both shaped like the engine's real workloads:
//   * pipeline3d — a DP x PP x micro-batch grid (per-stage capacity-1
//     compute resources, capacity-0 ready-order links, per-stage gradient
//     all-reduce tails), the graph sim/pipeline.cpp builds at datacenter
//     scale;
//   * random — the property-test generator's arbitrary DAGs (mixed
//     policies, finite lane pools, ~3 deps/op), the adversarial case for
//     the ready heaps.
//
//   $ ./engine_bench [--quick] [out.json]
//
// Emits BENCH_engine.json-style records through the RunReport schema; the
// committed baseline lives at bench/baselines/BENCH_engine.json and
// tools/check_engine_perf.py gates ci.sh bench on it (>30% events/sec
// regression fails). --quick shrinks the DAGs ~5x for the CI gate.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/report.h"
#include "sim/engine.h"

namespace {

using actcomp::sim::Engine;
using actcomp::sim::ExecPolicy;

/// DP x PP x micro grid: per replica, p stages run m forwards + m backwards
/// in 1F1B-ish program order, transfers cross capacity-0 links, and a
/// per-stage gradient all-reduce op depends on the stage's last backward in
/// every replica (the 3D graph of sim/pipeline.cpp, reduced to its shape).
Engine build_pipeline3d(int dp, int p, int m, bool overlap) {
  Engine e;
  e.reserve(static_cast<size_t>(dp) * static_cast<size_t>(m) *
                    static_cast<size_t>(4 * p) +
                static_cast<size_t>(dp) * static_cast<size_t>(p),
            static_cast<size_t>(dp) * static_cast<size_t>(m) *
                static_cast<size_t>(6 * p));
  const ExecPolicy stage_policy =
      overlap ? ExecPolicy::kReadyOrder : ExecPolicy::kProgramOrder;
  std::vector<int> last_bwd(static_cast<size_t>(dp) * static_cast<size_t>(p));
  std::vector<int> grad_links(static_cast<size_t>(p));
  for (int s = 0; s < p; ++s) {
    grad_links[static_cast<size_t>(s)] = e.add_resource(1, stage_policy);
  }
  for (int r = 0; r < dp; ++r) {
    std::vector<int> compute(static_cast<size_t>(p));
    std::vector<int> link(static_cast<size_t>(p));
    for (int s = 0; s < p; ++s) {
      compute[static_cast<size_t>(s)] = e.add_resource(1, stage_policy);
      link[static_cast<size_t>(s)] = e.add_resource(0, ExecPolicy::kReadyOrder);
    }
    std::vector<int> fwd(static_cast<size_t>(p) * static_cast<size_t>(m));
    std::vector<int> bwd = fwd;
    auto at = [&](int s, int j) {
      return static_cast<size_t>(s) * static_cast<size_t>(m) +
             static_cast<size_t>(j);
    };
    for (int s = 0; s < p; ++s) {
      for (int j = 0; j < m; ++j) {
        fwd[at(s, j)] = e.add_op(compute[static_cast<size_t>(s)],
                                 1.0 + 0.1 * (s % 3));
      }
      for (int j = 0; j < m; ++j) {
        bwd[at(s, j)] = e.add_op(compute[static_cast<size_t>(s)],
                                 2.0 + 0.1 * (j % 5));
      }
    }
    for (int s = 0; s < p; ++s) {
      for (int j = 0; j < m; ++j) {
        if (s > 0) {
          const int t = e.add_op(link[static_cast<size_t>(s - 1)], 0.4);
          e.add_dep(t, fwd[at(s - 1, j)]);
          e.add_dep(fwd[at(s, j)], t);
        }
        if (s < p - 1) {
          const int t = e.add_op(link[static_cast<size_t>(s)], 0.4);
          e.add_dep(t, bwd[at(s + 1, j)]);
          e.add_dep(bwd[at(s, j)], t);
        } else {
          e.add_dep(bwd[at(s, j)], fwd[at(s, j)]);
        }
      }
      last_bwd[static_cast<size_t>(r) * static_cast<size_t>(p) +
               static_cast<size_t>(s)] = bwd[at(s, m - 1)];
    }
  }
  // Gradient all-reduce tails: one op per stage on a shared DP link,
  // depending on that stage's last backward in every replica.
  for (int s = 0; s < p; ++s) {
    const int ar = e.add_op(grad_links[static_cast<size_t>(s)], 5.0);
    for (int r = 0; r < dp; ++r) {
      e.add_dep(ar, last_bwd[static_cast<size_t>(r) * static_cast<size_t>(p) +
                             static_cast<size_t>(s)]);
    }
  }
  return e;
}

/// The property suite's randomized-DAG generator, scaled up: mixed policies,
/// finite lane pools, deps always pointing at lower ids.
Engine build_random(uint64_t seed, int num_ops) {
  std::mt19937_64 rng(seed);
  auto uni = [&](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<uint64_t>(hi - lo + 1));
  };
  Engine e;
  e.reserve(static_cast<size_t>(num_ops), static_cast<size_t>(num_ops) * 2);
  const int num_resources = uni(64, 256);
  for (int r = 0; r < num_resources; ++r) {
    e.add_resource(uni(1, 3), rng() % 2 ? ExecPolicy::kReadyOrder
                                        : ExecPolicy::kProgramOrder);
  }
  for (int i = 0; i < num_ops; ++i) {
    const int id = e.add_op(uni(0, num_resources - 1),
                            0.5 + static_cast<double>(rng() % 1000) / 100.0);
    if (i > 0) {
      const int want = uni(0, 3);
      for (int k = 0; k < want; ++k) e.add_dep(id, uni(0, i - 1));
    }
  }
  return e;
}

double once(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Row {
  std::string graph;
  int64_t ops;
  int64_t deps;
  double events_per_sec;
  double ref_events_per_sec;
};

Row bench_graph(const char* name, const Engine& e, int reps) {
  // Checksum both runs and pin their agreement: the speedup claim is only
  // meaningful if the fast path realizes the identical schedule. Fast and
  // reference reps are interleaved so a load spike on this shared box skews
  // both timings, not the ratio; min-of-reps drops the spikes entirely.
  double sum_fast = 0.0, sum_ref = 0.0;
  double fast_s = 1e30, ref_s = 1e30;
  for (int r = 0; r < reps; ++r) {
    fast_s = std::min(fast_s, once([&] {
               sum_fast = 0.0;
               for (const auto& t : e.run()) sum_fast += t.end_ms;
             }));
    ref_s = std::min(ref_s, once([&] {
              sum_ref = 0.0;
              for (const auto& t : e.run_reference()) sum_ref += t.end_ms;
            }));
  }
  if (sum_fast != sum_ref) {
    std::fprintf(stderr, "FATAL: %s: run() != run_reference() (%.17g vs %.17g)\n",
                 name, sum_fast, sum_ref);
    std::exit(1);
  }
  Row row;
  row.graph = name;
  row.ops = e.num_ops();
  row.deps = e.num_deps();
  row.events_per_sec = static_cast<double>(e.num_ops()) / fast_s;
  row.ref_events_per_sec = static_cast<double>(e.num_ops()) / ref_s;
  std::printf("%-12s %9lld ops %9lld deps  %10.0f ev/s  (ref %10.0f ev/s)  %5.1fx\n",
              name, static_cast<long long>(row.ops),
              static_cast<long long>(row.deps), row.events_per_sec,
              row.ref_events_per_sec,
              row.events_per_sec / row.ref_events_per_sec);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace actcomp;
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else {
      out_path = a;
    }
  }
  obs::RunReport report("engine_bench");
  report.set_config("quick", quick);
  const int reps = quick ? 3 : 5;

  std::printf("engine_bench — discrete-event core, events/sec (%s)\n\n",
              quick ? "quick" : "full");
  std::vector<Row> rows;
  // ~1M-op 3D pipeline grid (quick: ~200k).
  rows.push_back(bench_graph(
      "pipeline3d",
      build_pipeline3d(quick ? 8 : 16, 16, quick ? 400 : 1000, true), reps));
  rows.push_back(bench_graph(
      "pipeline3d-po",
      build_pipeline3d(quick ? 8 : 16, 16, quick ? 400 : 1000, false), reps));
  rows.push_back(bench_graph(
      "random", build_random(7, quick ? 200000 : 1000000), reps));

  double best_speedup = 0.0, worst_speedup = 1e30;
  for (const Row& r : rows) {
    const double s = r.events_per_sec / r.ref_events_per_sec;
    best_speedup = std::max(best_speedup, s);
    worst_speedup = std::min(worst_speedup, s);
    obs::json::Value rec = obs::json::Value::object();
    rec.set("op", "engine_run");
    rec.set("graph", r.graph);
    rec.set("ops", r.ops);
    rec.set("deps", r.deps);
    rec.set("events_per_sec", r.events_per_sec);
    rec.set("ref_events_per_sec", r.ref_events_per_sec);
    rec.set("speedup_vs_reference", r.events_per_sec / r.ref_events_per_sec);
    report.add_record(std::move(rec));
  }
  std::printf(
      "\nspeedup vs pre-refactor loop: %.1fx on the heap-free relaxed path\n"
      "(pipeline3d-po: what every overlap-off golden run executes), %.1fx\n"
      "floor on the event-heap path (overlap / finite-lane graphs).\n",
      best_speedup, worst_speedup);

  if (!out_path.empty()) {
    setenv("ACTCOMP_REPORT_DIR", ".", 0);
    // Write a copy at the requested path for the CI gate.
    obs::json::Value doc = report.to_json();
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f) {
      const std::string text = doc.dump(2);
      std::fwrite(text.data(), 1, text.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
  }
  return 0;
}
