# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/data_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/train_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
