file(REMOVE_RECURSE
  "CMakeFiles/data_metrics_test.dir/data_metrics_test.cpp.o"
  "CMakeFiles/data_metrics_test.dir/data_metrics_test.cpp.o.d"
  "data_metrics_test"
  "data_metrics_test.pdb"
  "data_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
