# Empty compiler generated dependencies file for data_metrics_test.
# This may be replaced when dependencies are built.
