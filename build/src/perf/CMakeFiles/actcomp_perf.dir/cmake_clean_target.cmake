file(REMOVE_RECURSE
  "libactcomp_perf.a"
)
