# Empty compiler generated dependencies file for actcomp_perf.
# This may be replaced when dependencies are built.
