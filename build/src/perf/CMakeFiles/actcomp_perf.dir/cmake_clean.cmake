file(REMOVE_RECURSE
  "CMakeFiles/actcomp_perf.dir/perf_model.cpp.o"
  "CMakeFiles/actcomp_perf.dir/perf_model.cpp.o.d"
  "libactcomp_perf.a"
  "libactcomp_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actcomp_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
