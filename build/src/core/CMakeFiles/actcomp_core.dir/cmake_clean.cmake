file(REMOVE_RECURSE
  "CMakeFiles/actcomp_core.dir/binder.cpp.o"
  "CMakeFiles/actcomp_core.dir/binder.cpp.o.d"
  "CMakeFiles/actcomp_core.dir/compression_plan.cpp.o"
  "CMakeFiles/actcomp_core.dir/compression_plan.cpp.o.d"
  "libactcomp_core.a"
  "libactcomp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actcomp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
