# Empty dependencies file for actcomp_core.
# This may be replaced when dependencies are built.
