file(REMOVE_RECURSE
  "libactcomp_core.a"
)
