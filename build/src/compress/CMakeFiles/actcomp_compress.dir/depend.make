# Empty dependencies file for actcomp_compress.
# This may be replaced when dependencies are built.
