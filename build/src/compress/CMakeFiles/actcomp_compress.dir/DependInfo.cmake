
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/autoencoder.cpp" "src/compress/CMakeFiles/actcomp_compress.dir/autoencoder.cpp.o" "gcc" "src/compress/CMakeFiles/actcomp_compress.dir/autoencoder.cpp.o.d"
  "/root/repo/src/compress/compressor.cpp" "src/compress/CMakeFiles/actcomp_compress.dir/compressor.cpp.o" "gcc" "src/compress/CMakeFiles/actcomp_compress.dir/compressor.cpp.o.d"
  "/root/repo/src/compress/error_feedback.cpp" "src/compress/CMakeFiles/actcomp_compress.dir/error_feedback.cpp.o" "gcc" "src/compress/CMakeFiles/actcomp_compress.dir/error_feedback.cpp.o.d"
  "/root/repo/src/compress/hybrid.cpp" "src/compress/CMakeFiles/actcomp_compress.dir/hybrid.cpp.o" "gcc" "src/compress/CMakeFiles/actcomp_compress.dir/hybrid.cpp.o.d"
  "/root/repo/src/compress/identity.cpp" "src/compress/CMakeFiles/actcomp_compress.dir/identity.cpp.o" "gcc" "src/compress/CMakeFiles/actcomp_compress.dir/identity.cpp.o.d"
  "/root/repo/src/compress/lowrank.cpp" "src/compress/CMakeFiles/actcomp_compress.dir/lowrank.cpp.o" "gcc" "src/compress/CMakeFiles/actcomp_compress.dir/lowrank.cpp.o.d"
  "/root/repo/src/compress/quantize.cpp" "src/compress/CMakeFiles/actcomp_compress.dir/quantize.cpp.o" "gcc" "src/compress/CMakeFiles/actcomp_compress.dir/quantize.cpp.o.d"
  "/root/repo/src/compress/randomk.cpp" "src/compress/CMakeFiles/actcomp_compress.dir/randomk.cpp.o" "gcc" "src/compress/CMakeFiles/actcomp_compress.dir/randomk.cpp.o.d"
  "/root/repo/src/compress/settings.cpp" "src/compress/CMakeFiles/actcomp_compress.dir/settings.cpp.o" "gcc" "src/compress/CMakeFiles/actcomp_compress.dir/settings.cpp.o.d"
  "/root/repo/src/compress/topk.cpp" "src/compress/CMakeFiles/actcomp_compress.dir/topk.cpp.o" "gcc" "src/compress/CMakeFiles/actcomp_compress.dir/topk.cpp.o.d"
  "/root/repo/src/compress/wire.cpp" "src/compress/CMakeFiles/actcomp_compress.dir/wire.cpp.o" "gcc" "src/compress/CMakeFiles/actcomp_compress.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/actcomp_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/actcomp_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
