file(REMOVE_RECURSE
  "libactcomp_compress.a"
)
