file(REMOVE_RECURSE
  "CMakeFiles/actcomp_compress.dir/autoencoder.cpp.o"
  "CMakeFiles/actcomp_compress.dir/autoencoder.cpp.o.d"
  "CMakeFiles/actcomp_compress.dir/compressor.cpp.o"
  "CMakeFiles/actcomp_compress.dir/compressor.cpp.o.d"
  "CMakeFiles/actcomp_compress.dir/error_feedback.cpp.o"
  "CMakeFiles/actcomp_compress.dir/error_feedback.cpp.o.d"
  "CMakeFiles/actcomp_compress.dir/hybrid.cpp.o"
  "CMakeFiles/actcomp_compress.dir/hybrid.cpp.o.d"
  "CMakeFiles/actcomp_compress.dir/identity.cpp.o"
  "CMakeFiles/actcomp_compress.dir/identity.cpp.o.d"
  "CMakeFiles/actcomp_compress.dir/lowrank.cpp.o"
  "CMakeFiles/actcomp_compress.dir/lowrank.cpp.o.d"
  "CMakeFiles/actcomp_compress.dir/quantize.cpp.o"
  "CMakeFiles/actcomp_compress.dir/quantize.cpp.o.d"
  "CMakeFiles/actcomp_compress.dir/randomk.cpp.o"
  "CMakeFiles/actcomp_compress.dir/randomk.cpp.o.d"
  "CMakeFiles/actcomp_compress.dir/settings.cpp.o"
  "CMakeFiles/actcomp_compress.dir/settings.cpp.o.d"
  "CMakeFiles/actcomp_compress.dir/topk.cpp.o"
  "CMakeFiles/actcomp_compress.dir/topk.cpp.o.d"
  "CMakeFiles/actcomp_compress.dir/wire.cpp.o"
  "CMakeFiles/actcomp_compress.dir/wire.cpp.o.d"
  "libactcomp_compress.a"
  "libactcomp_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actcomp_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
