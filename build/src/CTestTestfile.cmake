# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("tensor")
subdirs("autograd")
subdirs("compress")
subdirs("nn")
subdirs("metrics")
subdirs("data")
subdirs("core")
subdirs("train")
subdirs("sim")
subdirs("parallel")
subdirs("perf")
