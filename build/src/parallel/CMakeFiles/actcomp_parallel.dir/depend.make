# Empty dependencies file for actcomp_parallel.
# This may be replaced when dependencies are built.
