file(REMOVE_RECURSE
  "libactcomp_parallel.a"
)
