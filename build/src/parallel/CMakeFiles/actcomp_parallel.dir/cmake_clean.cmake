file(REMOVE_RECURSE
  "CMakeFiles/actcomp_parallel.dir/mp_simulator.cpp.o"
  "CMakeFiles/actcomp_parallel.dir/mp_simulator.cpp.o.d"
  "libactcomp_parallel.a"
  "libactcomp_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actcomp_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
