file(REMOVE_RECURSE
  "libactcomp_autograd.a"
)
