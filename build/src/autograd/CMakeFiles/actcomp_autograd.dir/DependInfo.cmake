
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/functions.cpp" "src/autograd/CMakeFiles/actcomp_autograd.dir/functions.cpp.o" "gcc" "src/autograd/CMakeFiles/actcomp_autograd.dir/functions.cpp.o.d"
  "/root/repo/src/autograd/variable.cpp" "src/autograd/CMakeFiles/actcomp_autograd.dir/variable.cpp.o" "gcc" "src/autograd/CMakeFiles/actcomp_autograd.dir/variable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/actcomp_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
