# Empty dependencies file for actcomp_autograd.
# This may be replaced when dependencies are built.
