file(REMOVE_RECURSE
  "CMakeFiles/actcomp_autograd.dir/functions.cpp.o"
  "CMakeFiles/actcomp_autograd.dir/functions.cpp.o.d"
  "CMakeFiles/actcomp_autograd.dir/variable.cpp.o"
  "CMakeFiles/actcomp_autograd.dir/variable.cpp.o.d"
  "libactcomp_autograd.a"
  "libactcomp_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actcomp_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
