# Empty dependencies file for actcomp_train.
# This may be replaced when dependencies are built.
