file(REMOVE_RECURSE
  "CMakeFiles/actcomp_train.dir/optimizer.cpp.o"
  "CMakeFiles/actcomp_train.dir/optimizer.cpp.o.d"
  "CMakeFiles/actcomp_train.dir/trainer.cpp.o"
  "CMakeFiles/actcomp_train.dir/trainer.cpp.o.d"
  "libactcomp_train.a"
  "libactcomp_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actcomp_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
