file(REMOVE_RECURSE
  "libactcomp_train.a"
)
