file(REMOVE_RECURSE
  "CMakeFiles/actcomp_nn.dir/attention.cpp.o"
  "CMakeFiles/actcomp_nn.dir/attention.cpp.o.d"
  "CMakeFiles/actcomp_nn.dir/bert.cpp.o"
  "CMakeFiles/actcomp_nn.dir/bert.cpp.o.d"
  "CMakeFiles/actcomp_nn.dir/layernorm.cpp.o"
  "CMakeFiles/actcomp_nn.dir/layernorm.cpp.o.d"
  "CMakeFiles/actcomp_nn.dir/linear.cpp.o"
  "CMakeFiles/actcomp_nn.dir/linear.cpp.o.d"
  "CMakeFiles/actcomp_nn.dir/module.cpp.o"
  "CMakeFiles/actcomp_nn.dir/module.cpp.o.d"
  "CMakeFiles/actcomp_nn.dir/transformer_layer.cpp.o"
  "CMakeFiles/actcomp_nn.dir/transformer_layer.cpp.o.d"
  "libactcomp_nn.a"
  "libactcomp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actcomp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
