file(REMOVE_RECURSE
  "libactcomp_nn.a"
)
