
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/actcomp_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/actcomp_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/bert.cpp" "src/nn/CMakeFiles/actcomp_nn.dir/bert.cpp.o" "gcc" "src/nn/CMakeFiles/actcomp_nn.dir/bert.cpp.o.d"
  "/root/repo/src/nn/layernorm.cpp" "src/nn/CMakeFiles/actcomp_nn.dir/layernorm.cpp.o" "gcc" "src/nn/CMakeFiles/actcomp_nn.dir/layernorm.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/actcomp_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/actcomp_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/actcomp_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/actcomp_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/transformer_layer.cpp" "src/nn/CMakeFiles/actcomp_nn.dir/transformer_layer.cpp.o" "gcc" "src/nn/CMakeFiles/actcomp_nn.dir/transformer_layer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/actcomp_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/actcomp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/actcomp_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
