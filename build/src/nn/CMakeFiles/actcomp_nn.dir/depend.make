# Empty dependencies file for actcomp_nn.
# This may be replaced when dependencies are built.
