file(REMOVE_RECURSE
  "CMakeFiles/actcomp_tensor.dir/fp16.cpp.o"
  "CMakeFiles/actcomp_tensor.dir/fp16.cpp.o.d"
  "CMakeFiles/actcomp_tensor.dir/io.cpp.o"
  "CMakeFiles/actcomp_tensor.dir/io.cpp.o.d"
  "CMakeFiles/actcomp_tensor.dir/ops.cpp.o"
  "CMakeFiles/actcomp_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/actcomp_tensor.dir/random.cpp.o"
  "CMakeFiles/actcomp_tensor.dir/random.cpp.o.d"
  "CMakeFiles/actcomp_tensor.dir/shape.cpp.o"
  "CMakeFiles/actcomp_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/actcomp_tensor.dir/svd.cpp.o"
  "CMakeFiles/actcomp_tensor.dir/svd.cpp.o.d"
  "CMakeFiles/actcomp_tensor.dir/tensor.cpp.o"
  "CMakeFiles/actcomp_tensor.dir/tensor.cpp.o.d"
  "libactcomp_tensor.a"
  "libactcomp_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actcomp_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
