# Empty compiler generated dependencies file for actcomp_tensor.
# This may be replaced when dependencies are built.
