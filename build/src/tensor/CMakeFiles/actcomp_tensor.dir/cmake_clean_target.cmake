file(REMOVE_RECURSE
  "libactcomp_tensor.a"
)
