file(REMOVE_RECURSE
  "CMakeFiles/actcomp_data.dir/dataset.cpp.o"
  "CMakeFiles/actcomp_data.dir/dataset.cpp.o.d"
  "CMakeFiles/actcomp_data.dir/pretrain.cpp.o"
  "CMakeFiles/actcomp_data.dir/pretrain.cpp.o.d"
  "CMakeFiles/actcomp_data.dir/tasks.cpp.o"
  "CMakeFiles/actcomp_data.dir/tasks.cpp.o.d"
  "libactcomp_data.a"
  "libactcomp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actcomp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
