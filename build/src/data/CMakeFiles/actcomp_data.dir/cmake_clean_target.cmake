file(REMOVE_RECURSE
  "libactcomp_data.a"
)
