
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/actcomp_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/actcomp_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/pretrain.cpp" "src/data/CMakeFiles/actcomp_data.dir/pretrain.cpp.o" "gcc" "src/data/CMakeFiles/actcomp_data.dir/pretrain.cpp.o.d"
  "/root/repo/src/data/tasks.cpp" "src/data/CMakeFiles/actcomp_data.dir/tasks.cpp.o" "gcc" "src/data/CMakeFiles/actcomp_data.dir/tasks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/actcomp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/actcomp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/actcomp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/actcomp_autograd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
