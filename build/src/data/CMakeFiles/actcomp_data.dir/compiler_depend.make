# Empty compiler generated dependencies file for actcomp_data.
# This may be replaced when dependencies are built.
