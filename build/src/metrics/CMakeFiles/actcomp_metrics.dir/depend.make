# Empty dependencies file for actcomp_metrics.
# This may be replaced when dependencies are built.
