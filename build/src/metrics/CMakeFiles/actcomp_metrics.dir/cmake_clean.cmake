file(REMOVE_RECURSE
  "CMakeFiles/actcomp_metrics.dir/metrics.cpp.o"
  "CMakeFiles/actcomp_metrics.dir/metrics.cpp.o.d"
  "libactcomp_metrics.a"
  "libactcomp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actcomp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
