file(REMOVE_RECURSE
  "libactcomp_metrics.a"
)
