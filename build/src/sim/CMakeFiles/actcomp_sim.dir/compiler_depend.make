# Empty compiler generated dependencies file for actcomp_sim.
# This may be replaced when dependencies are built.
