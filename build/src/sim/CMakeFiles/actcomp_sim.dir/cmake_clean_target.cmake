file(REMOVE_RECURSE
  "libactcomp_sim.a"
)
