
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/collectives.cpp" "src/sim/CMakeFiles/actcomp_sim.dir/collectives.cpp.o" "gcc" "src/sim/CMakeFiles/actcomp_sim.dir/collectives.cpp.o.d"
  "/root/repo/src/sim/hardware.cpp" "src/sim/CMakeFiles/actcomp_sim.dir/hardware.cpp.o" "gcc" "src/sim/CMakeFiles/actcomp_sim.dir/hardware.cpp.o.d"
  "/root/repo/src/sim/overhead.cpp" "src/sim/CMakeFiles/actcomp_sim.dir/overhead.cpp.o" "gcc" "src/sim/CMakeFiles/actcomp_sim.dir/overhead.cpp.o.d"
  "/root/repo/src/sim/pipeline.cpp" "src/sim/CMakeFiles/actcomp_sim.dir/pipeline.cpp.o" "gcc" "src/sim/CMakeFiles/actcomp_sim.dir/pipeline.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/actcomp_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/actcomp_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/actcomp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/actcomp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/actcomp_autograd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
