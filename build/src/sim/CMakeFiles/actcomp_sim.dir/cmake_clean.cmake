file(REMOVE_RECURSE
  "CMakeFiles/actcomp_sim.dir/collectives.cpp.o"
  "CMakeFiles/actcomp_sim.dir/collectives.cpp.o.d"
  "CMakeFiles/actcomp_sim.dir/hardware.cpp.o"
  "CMakeFiles/actcomp_sim.dir/hardware.cpp.o.d"
  "CMakeFiles/actcomp_sim.dir/overhead.cpp.o"
  "CMakeFiles/actcomp_sim.dir/overhead.cpp.o.d"
  "CMakeFiles/actcomp_sim.dir/pipeline.cpp.o"
  "CMakeFiles/actcomp_sim.dir/pipeline.cpp.o.d"
  "CMakeFiles/actcomp_sim.dir/trace.cpp.o"
  "CMakeFiles/actcomp_sim.dir/trace.cpp.o.d"
  "libactcomp_sim.a"
  "libactcomp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actcomp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
