# Empty dependencies file for throughput_explorer.
# This may be replaced when dependencies are built.
