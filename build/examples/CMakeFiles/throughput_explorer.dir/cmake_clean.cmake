file(REMOVE_RECURSE
  "CMakeFiles/throughput_explorer.dir/throughput_explorer.cpp.o"
  "CMakeFiles/throughput_explorer.dir/throughput_explorer.cpp.o.d"
  "throughput_explorer"
  "throughput_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
