
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/scaling_advisor.cpp" "examples/CMakeFiles/scaling_advisor.dir/scaling_advisor.cpp.o" "gcc" "examples/CMakeFiles/scaling_advisor.dir/scaling_advisor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/actcomp_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/actcomp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/actcomp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/actcomp_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/actcomp_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
