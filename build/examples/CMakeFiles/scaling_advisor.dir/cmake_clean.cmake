file(REMOVE_RECURSE
  "CMakeFiles/scaling_advisor.dir/scaling_advisor.cpp.o"
  "CMakeFiles/scaling_advisor.dir/scaling_advisor.cpp.o.d"
  "scaling_advisor"
  "scaling_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
