# Empty dependencies file for finetune_with_compression.
# This may be replaced when dependencies are built.
