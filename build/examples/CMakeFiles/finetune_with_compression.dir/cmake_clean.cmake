file(REMOVE_RECURSE
  "CMakeFiles/finetune_with_compression.dir/finetune_with_compression.cpp.o"
  "CMakeFiles/finetune_with_compression.dir/finetune_with_compression.cpp.o.d"
  "finetune_with_compression"
  "finetune_with_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finetune_with_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
