file(REMOVE_RECURSE
  "CMakeFiles/table10_weak_scaling.dir/table10_weak_scaling.cpp.o"
  "CMakeFiles/table10_weak_scaling.dir/table10_weak_scaling.cpp.o.d"
  "table10_weak_scaling"
  "table10_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
