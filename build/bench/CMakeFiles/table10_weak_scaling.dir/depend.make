# Empty dependencies file for table10_weak_scaling.
# This may be replaced when dependencies are built.
