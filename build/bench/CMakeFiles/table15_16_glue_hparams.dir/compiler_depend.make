# Empty compiler generated dependencies file for table15_16_glue_hparams.
# This may be replaced when dependencies are built.
