file(REMOVE_RECURSE
  "CMakeFiles/table15_16_glue_hparams.dir/table15_16_glue_hparams.cpp.o"
  "CMakeFiles/table15_16_glue_hparams.dir/table15_16_glue_hparams.cpp.o.d"
  "table15_16_glue_hparams"
  "table15_16_glue_hparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table15_16_glue_hparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
