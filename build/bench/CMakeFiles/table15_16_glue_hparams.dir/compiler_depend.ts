# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table15_16_glue_hparams.
