file(REMOVE_RECURSE
  "CMakeFiles/table2_finetune_nvlink.dir/table2_finetune_nvlink.cpp.o"
  "CMakeFiles/table2_finetune_nvlink.dir/table2_finetune_nvlink.cpp.o.d"
  "table2_finetune_nvlink"
  "table2_finetune_nvlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_finetune_nvlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
