# Empty dependencies file for table2_finetune_nvlink.
# This may be replaced when dependencies are built.
