# Empty compiler generated dependencies file for table4_breakdown_finetune.
# This may be replaced when dependencies are built.
