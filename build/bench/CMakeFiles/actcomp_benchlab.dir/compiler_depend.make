# Empty compiler generated dependencies file for actcomp_benchlab.
# This may be replaced when dependencies are built.
