file(REMOVE_RECURSE
  "CMakeFiles/actcomp_benchlab.dir/lab.cpp.o"
  "CMakeFiles/actcomp_benchlab.dir/lab.cpp.o.d"
  "libactcomp_benchlab.a"
  "libactcomp_benchlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actcomp_benchlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
