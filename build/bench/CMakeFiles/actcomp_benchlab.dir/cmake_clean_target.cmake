file(REMOVE_RECURSE
  "libactcomp_benchlab.a"
)
