file(REMOVE_RECURSE
  "CMakeFiles/fig1_comm_overhead.dir/fig1_comm_overhead.cpp.o"
  "CMakeFiles/fig1_comm_overhead.dir/fig1_comm_overhead.cpp.o.d"
  "fig1_comm_overhead"
  "fig1_comm_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_comm_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
