# Empty dependencies file for fig1_comm_overhead.
# This may be replaced when dependencies are built.
