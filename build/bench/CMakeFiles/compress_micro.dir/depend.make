# Empty dependencies file for compress_micro.
# This may be replaced when dependencies are built.
