file(REMOVE_RECURSE
  "CMakeFiles/compress_micro.dir/compress_micro.cpp.o"
  "CMakeFiles/compress_micro.dir/compress_micro.cpp.o.d"
  "compress_micro"
  "compress_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
