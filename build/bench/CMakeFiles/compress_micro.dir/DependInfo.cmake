
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/compress_micro.cpp" "bench/CMakeFiles/compress_micro.dir/compress_micro.cpp.o" "gcc" "bench/CMakeFiles/compress_micro.dir/compress_micro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/actcomp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/actcomp_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/actcomp_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
