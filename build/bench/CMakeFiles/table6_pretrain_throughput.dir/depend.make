# Empty dependencies file for table6_pretrain_throughput.
# This may be replaced when dependencies are built.
