# Empty dependencies file for fig4_layers_location.
# This may be replaced when dependencies are built.
