file(REMOVE_RECURSE
  "CMakeFiles/fig4_layers_location.dir/fig4_layers_location.cpp.o"
  "CMakeFiles/fig4_layers_location.dir/fig4_layers_location.cpp.o.d"
  "fig4_layers_location"
  "fig4_layers_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_layers_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
