file(REMOVE_RECURSE
  "CMakeFiles/fig2_lowrank.dir/fig2_lowrank.cpp.o"
  "CMakeFiles/fig2_lowrank.dir/fig2_lowrank.cpp.o.d"
  "fig2_lowrank"
  "fig2_lowrank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_lowrank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
