# Empty dependencies file for fig2_lowrank.
# This may be replaced when dependencies are built.
