file(REMOVE_RECURSE
  "CMakeFiles/ablation_wire_formats.dir/ablation_wire_formats.cpp.o"
  "CMakeFiles/ablation_wire_formats.dir/ablation_wire_formats.cpp.o.d"
  "ablation_wire_formats"
  "ablation_wire_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wire_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
