# Empty compiler generated dependencies file for ablation_wire_formats.
# This may be replaced when dependencies are built.
