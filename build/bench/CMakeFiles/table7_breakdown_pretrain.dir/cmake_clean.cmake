file(REMOVE_RECURSE
  "CMakeFiles/table7_breakdown_pretrain.dir/table7_breakdown_pretrain.cpp.o"
  "CMakeFiles/table7_breakdown_pretrain.dir/table7_breakdown_pretrain.cpp.o.d"
  "table7_breakdown_pretrain"
  "table7_breakdown_pretrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_breakdown_pretrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
