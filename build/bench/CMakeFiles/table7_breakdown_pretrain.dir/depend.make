# Empty dependencies file for table7_breakdown_pretrain.
# This may be replaced when dependencies are built.
