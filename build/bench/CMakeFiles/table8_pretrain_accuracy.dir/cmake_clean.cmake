file(REMOVE_RECURSE
  "CMakeFiles/table8_pretrain_accuracy.dir/table8_pretrain_accuracy.cpp.o"
  "CMakeFiles/table8_pretrain_accuracy.dir/table8_pretrain_accuracy.cpp.o.d"
  "table8_pretrain_accuracy"
  "table8_pretrain_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_pretrain_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
