file(REMOVE_RECURSE
  "CMakeFiles/table11_14_hparam_sweep.dir/table11_14_hparam_sweep.cpp.o"
  "CMakeFiles/table11_14_hparam_sweep.dir/table11_14_hparam_sweep.cpp.o.d"
  "table11_14_hparam_sweep"
  "table11_14_hparam_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_14_hparam_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
