# Empty dependencies file for table11_14_hparam_sweep.
# This may be replaced when dependencies are built.
