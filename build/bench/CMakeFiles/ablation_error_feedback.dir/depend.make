# Empty dependencies file for ablation_error_feedback.
# This may be replaced when dependencies are built.
