file(REMOVE_RECURSE
  "CMakeFiles/ablation_error_feedback.dir/ablation_error_feedback.cpp.o"
  "CMakeFiles/ablation_error_feedback.dir/ablation_error_feedback.cpp.o.d"
  "ablation_error_feedback"
  "ablation_error_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_error_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
