# Empty compiler generated dependencies file for ablation_overhead_model.
# This may be replaced when dependencies are built.
