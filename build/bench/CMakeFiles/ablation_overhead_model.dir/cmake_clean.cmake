file(REMOVE_RECURSE
  "CMakeFiles/ablation_overhead_model.dir/ablation_overhead_model.cpp.o"
  "CMakeFiles/ablation_overhead_model.dir/ablation_overhead_model.cpp.o.d"
  "ablation_overhead_model"
  "ablation_overhead_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overhead_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
