file(REMOVE_RECURSE
  "CMakeFiles/table9_stage_comm.dir/table9_stage_comm.cpp.o"
  "CMakeFiles/table9_stage_comm.dir/table9_stage_comm.cpp.o.d"
  "table9_stage_comm"
  "table9_stage_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_stage_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
