# Empty compiler generated dependencies file for table9_stage_comm.
# This may be replaced when dependencies are built.
