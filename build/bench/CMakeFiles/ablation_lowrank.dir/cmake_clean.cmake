file(REMOVE_RECURSE
  "CMakeFiles/ablation_lowrank.dir/ablation_lowrank.cpp.o"
  "CMakeFiles/ablation_lowrank.dir/ablation_lowrank.cpp.o.d"
  "ablation_lowrank"
  "ablation_lowrank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lowrank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
