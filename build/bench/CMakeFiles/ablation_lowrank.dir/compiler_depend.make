# Empty compiler generated dependencies file for ablation_lowrank.
# This may be replaced when dependencies are built.
