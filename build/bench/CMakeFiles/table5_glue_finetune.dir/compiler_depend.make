# Empty compiler generated dependencies file for table5_glue_finetune.
# This may be replaced when dependencies are built.
