file(REMOVE_RECURSE
  "CMakeFiles/table5_glue_finetune.dir/table5_glue_finetune.cpp.o"
  "CMakeFiles/table5_glue_finetune.dir/table5_glue_finetune.cpp.o.d"
  "table5_glue_finetune"
  "table5_glue_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_glue_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
