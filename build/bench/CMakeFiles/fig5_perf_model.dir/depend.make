# Empty dependencies file for fig5_perf_model.
# This may be replaced when dependencies are built.
