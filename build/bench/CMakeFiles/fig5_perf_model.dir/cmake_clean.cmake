file(REMOVE_RECURSE
  "CMakeFiles/fig5_perf_model.dir/fig5_perf_model.cpp.o"
  "CMakeFiles/fig5_perf_model.dir/fig5_perf_model.cpp.o.d"
  "fig5_perf_model"
  "fig5_perf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_perf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
