// Throughput explorer: "should I compress my model-parallel training job?"
//
// The practitioner-facing front end to the calibrated simulator: give it a
// platform, a parallel layout, and a job shape, and it predicts the
// per-iteration time of every compression setting plus a breakdown of the
// winner — the decision the paper's Tables 2-7 answer for BERT-Large.
//
//   $ ./throughput_explorer [--faults] [pcie|nvlink|multinode] [tp] [pp]
//                           [micro_batch] [num_micro] [seq]
//   $ ./throughput_explorer nvlink 4 1 32 1 512
//   $ ./throughput_explorer --faults pcie 2 2 32 4
//
// With --faults, each setting is additionally replayed under seeded fault
// scenarios (a straggler stage and a flaky link — see sim/faults.h) and the
// p50/p95/p99 makespan is reported, answering "which compressor is most
// robust", not just "which is fastest on a clean cluster".
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/lab.h"
#include "core/compression_plan.h"
#include "parallel/mp_simulator.h"
#include "sim/faults.h"
#include "sim/hardware.h"

int main(int argc, char** argv) {
  using namespace actcomp;
  obs::RunReport report("throughput_explorer");
  bool faults_mode = false;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--faults") {
      faults_mode = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  const size_t n = args.size();
  const std::string platform = n > 0 ? args[0] : "pcie";
  const int tp = n > 1 ? std::atoi(args[1]) : 2;
  const int pp = n > 2 ? std::atoi(args[2]) : 2;
  const int64_t micro = n > 3 ? std::atoll(args[3]) : 32;
  const int64_t num_micro = n > 4 ? std::atoll(args[4]) : 1;
  const int64_t seq = n > 5 ? std::atoll(args[5]) : 512;

  sim::ClusterSpec cluster;
  if (platform == "nvlink") {
    cluster = sim::ClusterSpec::aws_p3(1);
  } else if (platform == "multinode") {
    cluster = sim::ClusterSpec::aws_p3((tp * pp + 3) / 4);
  } else {
    cluster = sim::ClusterSpec::local_pcie();
  }

  const nn::BertConfig model = nn::BertConfig::bert_large();
  report.set_config("platform", platform);
  report.set_config("tp", int64_t{tp});
  report.set_config("pp", int64_t{pp});
  report.set_config("micro_batch", micro);
  report.set_config("num_micro", num_micro);
  report.set_config("seq", seq);
  parallel::ModelParallelSimulator simulator(cluster, model, {tp, pp},
                                             {micro, num_micro, seq});
  std::printf(
      "Platform %s | BERT-Large | TP=%d PP=%d | micro %lld x %lld, seq %lld\n\n",
      cluster.name.c_str(), tp, pp, static_cast<long long>(micro),
      static_cast<long long>(num_micro), static_cast<long long>(seq));

  double best = 1e30;
  compress::Setting best_setting = compress::Setting::kBaseline;
  std::printf("%-9s %12s %10s\n", "setting", "iter ms", "vs w/o");
  const double base = simulator.run_baseline().total_ms();
  for (compress::Setting s : compress::main_settings()) {
    const auto plan = core::CompressionPlan::paper_default(s, model.num_layers);
    const double t = simulator.run(plan).total_ms();
    std::printf("%-9s %12.2f %9.1f%%\n", compress::setting_label(s).c_str(), t,
                (base / t - 1.0) * 100.0);
    if (t < best) {
      best = t;
      best_setting = s;
    }
  }

  const auto plan =
      core::CompressionPlan::paper_default(best_setting, model.num_layers);
  // Same projection the breakdown benches use (obs/accounting.h), mirrored
  // into the report as a structured phase.
  const obs::PhaseBreakdown b =
      simulator.run(plan).phase_breakdown(obs::Accounting::kFinetune);
  report.add_phase(compress::setting_label(best_setting),
                   obs::Accounting::kFinetune, b);
  std::printf(
      "\nBest: %s (%.2f ms). Breakdown: fwd %.1f, bwd %.1f, optim %.1f,\n"
      "waiting+pipe %.1f, enc %.2f, dec %.2f, tensor comm %.2f ms.\n",
      compress::setting_label(best_setting).c_str(), b.total_ms, b.forward_ms,
      b.backward_ms, b.optimizer_ms, b.waiting_ms, b.encode_ms, b.decode_ms,
      b.tensor_comm_ms);
  if (best_setting == compress::Setting::kBaseline) {
    std::printf(
        "\nOn this configuration compression does not pay — the paper's\n"
        "Takeaway 1/8 regime (fast links or small messages).\n");
  }

  if (faults_mode) {
    struct NamedProfile {
      const char* label;
      sim::FaultProfile profile;
    };
    const NamedProfile scenarios[] = {
        {"straggler 1.5x on stage 1", sim::FaultProfile::straggler(1, 1.5, 0)},
        {"flaky link 10% outages",
         sim::FaultProfile::flaky_link(0.10, /*timeout=*/5.0, /*backoff=*/2.0,
                                       0)},
    };
    bench::FaultSweep sweep;  // 25 trials, base seed 1
    for (const auto& sc : scenarios) {
      std::printf("\nFaults: %s (%d seeded trials)\n\n", sc.label,
                  sweep.trials);
      std::vector<std::string> header{"setting", "clean ms", "p50 ms",
                                      "p95 ms",  "p99 ms",   "x clean"};
      std::vector<std::vector<std::string>> body;
      for (compress::Setting s : compress::main_settings()) {
        const auto p = core::CompressionPlan::paper_default(s, model.num_layers);
        const auto summary =
            sweep.run(sc.profile, [&](const sim::FaultProfile& fp) {
              parallel::SimOptions opts(sim::ScheduleKind::k1F1B, 1, false,
                                        false, fp);
              parallel::ModelParallelSimulator sim(cluster, model, {tp, pp},
                                                   {micro, num_micro, seq},
                                                   opts);
              return sim.run(p).total_ms();
            });
        body.push_back({compress::setting_label(s),
                        bench::fmt(summary.clean_ms), bench::fmt(summary.p50_ms),
                        bench::fmt(summary.p95_ms), bench::fmt(summary.p99_ms),
                        bench::fmt(summary.slowdown_p99(), 3)});
      }
      bench::print_table(header, body, 10);
    }
    std::printf(
        "\nReading the tail: a setting whose p99 stays close to its clean\n"
        "time tolerates the fault; a link fault widens the baseline's tail\n"
        "most because it ships the largest messages.\n");
  }
  return 0;
}
