// Throughput explorer: "should I compress my model-parallel training job?"
//
// The practitioner-facing front end to the calibrated simulator: give it a
// platform, a parallel layout, and a job shape, and it predicts the
// per-iteration time of every compression setting plus a breakdown of the
// winner — the decision the paper's Tables 2-7 answer for BERT-Large.
//
//   $ ./throughput_explorer [--faults] [--mtbf <ms>] [--ckpt-interval <steps>]
//                           [--dp <replicas>] [--topology <spine>]
//                           [--serve] [--rate <req/s>] [--prompt <tokens>]
//                           [--gen <tokens>] [--requests <n>]
//                           [--trace-out <file>] [--trace-in <file>]
//                           [--replicas <n>] [--serve-policy rr|jsq|health]
//                           [--serve-mtbf <ms>] [--serve-repair <ms>]
//                           [--serve-timeout <ms>] [--hedge <ms>]
//                           [--serve-slo <p99 ms>]
//                           [pcie|nvlink|multinode|datacenter] [tp] [pp]
//                           [micro_batch] [num_micro] [seq]
//   $ ./throughput_explorer nvlink 4 1 32 1 512
//   $ ./throughput_explorer --faults pcie 2 2 32 4
//   $ ./throughput_explorer --faults --mtbf 3600000 --ckpt-interval 200 pcie
//   $ ./throughput_explorer --dp 16 --topology oversub:4 datacenter 8 4 16 32
//   $ ./throughput_explorer --serve --rate 6 nvlink 4 1
//
// --dp adds a data-parallel axis (dp replicas of the tp x pp grid; the
// cluster is sized to tp*pp*dp GPUs on the multi-node platforms — pcie and
// nvlink are fixed 4-GPU boxes, so dp must satisfy tp*pp*dp == 4 there).
// --topology picks the spine above the nodes: flat (default), fat-tree, or
// oversub[:factor] (Ethernet uplinks at 1/factor bandwidth, default 4).
// The datacenter platform is 8-GPU NVLink islands under a 100 GbE spine.
//
// With --faults, each setting is additionally replayed under seeded fault
// scenarios (a straggler stage and a flaky link — see sim/faults.h) and the
// p50/p95/p99 makespan is reported, answering "which compressor is most
// robust", not just "which is fastest on a clean cluster".
//
// With --serve, the explorer answers the same question for inference
// serving instead of stopping at training: a seeded Poisson stream of
// (--requests) generation requests of shape --prompt/--gen at --rate req/s
// is replayed through the continuous-batching serving simulator
// (sim/serving.h) once per compression setting, with every scheduler step
// priced by the same compressed-TP-collective rules as the training
// forward. Reported per setting: TTFT and per-output-token latency
// percentiles, end-to-end p99, and throughput.
//
// --trace-out writes the arrival trace to a JSON file and --trace-in
// replays one (sim/serving_trace.h), so two invocations — different
// policies, fleet sizes, machines — score the exact same workload.
// --replicas > 1, --serve-mtbf, or --serve-slo switch the serving run to
// the fault-tolerant fleet runtime (sim/serving_resilience.h): each
// replica gets a seeded crash/recovery process (--serve-mtbf/--serve-repair),
// the router policy is --serve-policy (rr | jsq | health), requests retry
// after --serve-timeout ms, --hedge duplicates a straggling request to a
// second replica, and --serve-slo arms the SLO-aware degradation ladder
// (w/o -> Q8 -> Q4 -> Top-K) that escalates compression when the measured
// p99 breaches the target and de-escalates with hysteresis.
//
// With --mtbf <per-stage MTBF, ms>, the explorer also projects the job onto
// the crash-recovery model (sim/recovery.h): using the best setting's
// iteration time as the step cost, it reports the Young/Daly optimal
// checkpoint interval, the Monte-Carlo-simulated optimum, and the goodput
// at --ckpt-interval <steps> (defaults to the Young/Daly interval) so an
// operator can see what their current interval is costing them.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <cmath>

#include "bench/lab.h"
#include "core/compression_plan.h"
#include "parallel/mp_simulator.h"
#include "sim/faults.h"
#include "sim/hardware.h"
#include "sim/recovery.h"
#include "sim/serving.h"
#include "sim/serving_resilience.h"
#include "sim/serving_trace.h"

int main(int argc, char** argv) {
  using namespace actcomp;
  obs::RunReport report("throughput_explorer");
  bool faults_mode = false;
  bool serve_mode = false;
  double mtbf_ms = 0.0;           // per-stage MTBF; 0 = no recovery projection
  int64_t ckpt_interval = 0;      // steps; 0 = use the Young/Daly interval
  int dp = 1;
  double rate_per_s = 2.0;        // --serve arrival rate
  int64_t serve_prompt = 128;
  int64_t serve_gen = 32;
  int serve_requests = 64;
  std::string trace_in, trace_out;
  int replicas = 1;
  std::string serve_policy = "jsq";
  double serve_mtbf = 0.0;    // per-replica crash MTBF; 0 = no crashes
  double serve_repair = 0.0;  // 0 = default to mtbf / 10
  double serve_timeout = 0.0;
  double hedge_after = 0.0;
  double serve_slo = 0.0;  // e2e p99 target; 0 = no degradation ladder
  std::string topology = "flat";
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--faults") {
      faults_mode = true;
    } else if (a == "--serve") {
      serve_mode = true;
    } else if (a == "--rate" && i + 1 < argc) {
      rate_per_s = std::atof(argv[++i]);
    } else if (a == "--prompt" && i + 1 < argc) {
      serve_prompt = std::atoll(argv[++i]);
    } else if (a == "--gen" && i + 1 < argc) {
      serve_gen = std::atoll(argv[++i]);
    } else if (a == "--requests" && i + 1 < argc) {
      serve_requests = std::atoi(argv[++i]);
    } else if (a == "--trace-in" && i + 1 < argc) {
      trace_in = argv[++i];
    } else if (a == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (a == "--replicas" && i + 1 < argc) {
      replicas = std::atoi(argv[++i]);
    } else if (a == "--serve-policy" && i + 1 < argc) {
      serve_policy = argv[++i];
    } else if (a == "--serve-mtbf" && i + 1 < argc) {
      serve_mtbf = std::atof(argv[++i]);
    } else if (a == "--serve-repair" && i + 1 < argc) {
      serve_repair = std::atof(argv[++i]);
    } else if (a == "--serve-timeout" && i + 1 < argc) {
      serve_timeout = std::atof(argv[++i]);
    } else if (a == "--hedge" && i + 1 < argc) {
      hedge_after = std::atof(argv[++i]);
    } else if (a == "--serve-slo" && i + 1 < argc) {
      serve_slo = std::atof(argv[++i]);
    } else if (a == "--mtbf" && i + 1 < argc) {
      mtbf_ms = std::atof(argv[++i]);
    } else if (a == "--ckpt-interval" && i + 1 < argc) {
      ckpt_interval = std::atoll(argv[++i]);
    } else if (a == "--dp" && i + 1 < argc) {
      dp = std::atoi(argv[++i]);
    } else if (a == "--topology" && i + 1 < argc) {
      topology = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  const size_t n = args.size();
  const std::string platform = n > 0 ? args[0] : "pcie";
  const int tp = n > 1 ? std::atoi(args[1]) : 2;
  const int pp = n > 2 ? std::atoi(args[2]) : 2;
  const int64_t micro = n > 3 ? std::atoll(args[3]) : 32;
  const int64_t num_micro = n > 4 ? std::atoll(args[4]) : 1;
  const int64_t seq = n > 5 ? std::atoll(args[5]) : 512;

  // Spine override: flat | fat-tree | oversub[:factor].
  sim::TopologySpec topo;
  if (topology == "fat-tree") {
    topo.spine = sim::TopologySpec::Spine::kFatTree;
  } else if (topology.rfind("oversub", 0) == 0) {
    topo.spine = sim::TopologySpec::Spine::kOversubscribed;
    const size_t colon = topology.find(':');
    topo.oversubscription =
        colon == std::string::npos ? 4.0 : std::atof(topology.c_str() + colon + 1);
  } else if (topology != "flat") {
    std::fprintf(stderr, "unknown --topology '%s' (flat|fat-tree|oversub[:N])\n",
                 topology.c_str());
    return 2;
  }

  const int total_gpus = tp * pp * dp;
  sim::ClusterSpec cluster;
  if (platform == "nvlink") {
    cluster = sim::ClusterSpec::aws_p3(1);
  } else if (platform == "multinode") {
    cluster = sim::ClusterSpec::aws_p3((total_gpus + 3) / 4);
  } else if (platform == "datacenter") {
    cluster = sim::ClusterSpec::datacenter((total_gpus + 7) / 8, topo.spine,
                                           topo.oversubscription);
  } else {
    cluster = sim::ClusterSpec::local_pcie();
  }
  if (platform != "datacenter") {
    cluster.topology = topo;
    cluster.validate();
  }

  const nn::BertConfig model = nn::BertConfig::bert_large();
  report.set_config("platform", platform);
  report.set_config("tp", int64_t{tp});
  report.set_config("pp", int64_t{pp});
  report.set_config("dp", int64_t{dp});
  report.set_config("topology", topology);
  report.set_config("micro_batch", micro);
  report.set_config("num_micro", num_micro);
  report.set_config("seq", seq);
  parallel::ModelParallelSimulator simulator(cluster, model, {tp, pp, dp},
                                             {micro, num_micro, seq});
  std::printf(
      "Platform %s | BERT-Large | TP=%d PP=%d DP=%d | micro %lld x %lld, seq "
      "%lld\n\n",
      cluster.name.c_str(), tp, pp, dp, static_cast<long long>(micro),
      static_cast<long long>(num_micro), static_cast<long long>(seq));

  double best = 1e30;
  compress::Setting best_setting = compress::Setting::kBaseline;
  std::printf("%-9s %12s %10s\n", "setting", "iter ms", "vs w/o");
  const double base = simulator.run_baseline().total_ms();
  for (compress::Setting s : compress::main_settings()) {
    const auto plan = core::CompressionPlan::paper_default(s, model.num_layers);
    const double t = simulator.run(plan).total_ms();
    std::printf("%-9s %12.2f %9.1f%%\n", compress::setting_label(s).c_str(), t,
                (base / t - 1.0) * 100.0);
    if (t < best) {
      best = t;
      best_setting = s;
    }
  }

  const auto plan =
      core::CompressionPlan::paper_default(best_setting, model.num_layers);
  // Same projection the breakdown benches use (obs/accounting.h), mirrored
  // into the report as a structured phase.
  const obs::PhaseBreakdown b =
      simulator.run(plan).phase_breakdown(obs::Accounting::kFinetune);
  report.add_phase(compress::setting_label(best_setting),
                   obs::Accounting::kFinetune, b);
  std::printf(
      "\nBest: %s (%.2f ms). Breakdown: fwd %.1f, bwd %.1f, optim %.1f,\n"
      "waiting+pipe %.1f, enc %.2f, dec %.2f, tensor comm %.2f ms.\n",
      compress::setting_label(best_setting).c_str(), b.total_ms, b.forward_ms,
      b.backward_ms, b.optimizer_ms, b.waiting_ms, b.encode_ms, b.decode_ms,
      b.tensor_comm_ms);
  if (best_setting == compress::Setting::kBaseline) {
    std::printf(
        "\nOn this configuration compression does not pay — the paper's\n"
        "Takeaway 1/8 regime (fast links or small messages).\n");
  }

  if (serve_mode) {
    std::vector<sim::ServingRequest> trace;
    if (!trace_in.empty()) {
      trace = sim::load_serving_trace(trace_in);
      serve_requests = static_cast<int>(trace.size());
      std::printf("\nReplaying %d requests from %s\n", serve_requests,
                  trace_in.c_str());
    } else {
      sim::PoissonTraceSpec spec;
      spec.rate_per_s = rate_per_s;
      spec.num_requests = serve_requests;
      spec.prompt_tokens = serve_prompt;
      spec.max_new_tokens = serve_gen;
      spec.seed = 1;
      trace = sim::poisson_trace(spec);
    }
    if (!trace_out.empty()) {
      sim::save_serving_trace(trace_out, trace);
      std::printf("\nWrote %zu-request trace to %s\n", trace.size(),
                  trace_out.c_str());
    }
    report.set_config("serve_rate_per_s", rate_per_s);
    report.set_config("serve_prompt", serve_prompt);
    report.set_config("serve_gen", serve_gen);
    report.set_config("serve_requests", int64_t{serve_requests});

    std::printf(
        "\nServing: %d Poisson requests at %.1f req/s, prompt %lld, generate "
        "%lld\n(continuous batching, max_batch 8, token budget 2048)\n\n",
        serve_requests, rate_per_s, static_cast<long long>(serve_prompt),
        static_cast<long long>(serve_gen));
    std::vector<std::string> header{"setting",  "ttft p50", "ttft p99",
                                    "tpot p50", "tpot p99", "e2e p99",
                                    "tok/s"};
    std::vector<std::vector<std::string>> body;
    double best_p99 = 1e30;
    compress::Setting best_serve = compress::Setting::kBaseline;
    for (compress::Setting s : compress::main_settings()) {
      const auto p = core::CompressionPlan::paper_default(s, model.num_layers);
      sim::ServingConfig cfg;
      cfg.max_batch = 8;
      cfg.token_budget = 2048;
      cfg.step_cost = parallel::make_serving_cost(simulator, p);
      const sim::ServingReport rep = sim::simulate_serving(trace, cfg);
      body.push_back({compress::setting_label(s), bench::fmt(rep.ttft.p50_ms),
                      bench::fmt(rep.ttft.p99_ms), bench::fmt(rep.tpot.p50_ms),
                      bench::fmt(rep.tpot.p99_ms), bench::fmt(rep.e2e.p99_ms),
                      bench::fmt(rep.throughput_tok_s())});
      if (rep.e2e.p99_ms < best_p99) {
        best_p99 = rep.e2e.p99_ms;
        best_serve = s;
      }
      obs::json::Value rec = obs::json::Value::object();
      rec.set("setting", compress::setting_label(s));
      rec.set("ttft_p99_ms", rep.ttft.p99_ms);
      rec.set("tpot_p99_ms", rep.tpot.p99_ms);
      rec.set("e2e_p99_ms", rep.e2e.p99_ms);
      rec.set("throughput_tok_s", rep.throughput_tok_s());
      report.add_record(std::move(rec));
    }
    bench::print_table(header, body, 10);
    std::printf(
        "\nBest serving setting by e2e p99: %s (%.2f ms). Decode moves one\n"
        "token per sequence, so compression pays here only when the TP link\n"
        "is slow enough that even tiny collectives are bandwidth-bound.\n",
        compress::setting_label(best_serve).c_str(), best_p99);

    if (replicas > 1 || serve_mtbf > 0.0 || serve_slo > 0.0 ||
        hedge_after > 0.0 || serve_timeout > 0.0) {
      sim::ResilientServingConfig rcfg;
      rcfg.num_replicas = replicas;
      if (serve_policy == "rr") {
        rcfg.policy = sim::RoutePolicy::kRoundRobin;
      } else if (serve_policy == "health") {
        rcfg.policy = sim::RoutePolicy::kHealthAware;
        rcfg.eject_ms = 10.0 * serve_timeout;
      } else if (serve_policy == "jsq") {
        rcfg.policy = sim::RoutePolicy::kJoinShortestQueue;
      } else {
        std::fprintf(stderr, "unknown --serve-policy '%s' (rr|jsq|health)\n",
                     serve_policy.c_str());
        return 2;
      }
      rcfg.max_batch = 8;
      rcfg.token_budget = 2048;
      rcfg.cost_ladder =
          parallel::make_serving_cost_ladder(simulator, model.num_layers);
      if (serve_mtbf > 0.0) {
        for (int r = 0; r < replicas; ++r) {
          sim::ReplicaFaultSpec fs;
          fs.mtbf_ms = serve_mtbf;
          fs.repair_ms = serve_repair > 0.0 ? serve_repair : serve_mtbf / 10.0;
          fs.seed = 100 + static_cast<uint64_t>(r);
          rcfg.replica_faults.push_back(fs);
        }
      }
      rcfg.retry.max_attempts =
          serve_mtbf > 0.0 || serve_timeout > 0.0 ? 4 : 1;
      rcfg.retry.backoff_ms = 1.0;
      rcfg.retry.timeout_ms = serve_timeout;
      rcfg.retry.hedge_after_ms = hedge_after;
      if (serve_slo > 0.0) {
        rcfg.slo_e2e_p99_ms = serve_slo;
        rcfg.degrade.enabled = true;
      }
      const auto frep = sim::simulate_serving_resilient(trace, rcfg);
      std::printf(
          "\nFleet: %d replica(s), %s routing%s%s\n"
          "  completed %lld / offered %lld (shed %lld, failed %lld)\n"
          "  goodput %.1f tok/s | e2e p99 %.2f ms%s\n"
          "  crashes %lld, retries %lld, timeouts %lld, hedges %lld "
          "(%lld won), wasted %lld tok\n",
          replicas, sim::route_policy_label(rcfg.policy),
          serve_mtbf > 0.0 ? ", crash faults on" : "",
          rcfg.degrade.enabled ? ", SLO degradation on" : "",
          static_cast<long long>(frep.serving.completed),
          static_cast<long long>(frep.offered),
          static_cast<long long>(frep.shed),
          static_cast<long long>(frep.failed), frep.goodput_tok_s(),
          frep.serving.e2e.p99_ms,
          serve_slo > 0.0 ? (frep.slo_met(serve_slo) ? " (SLO met)"
                                                     : " (SLO MISSED)")
                          : "",
          static_cast<long long>(frep.crashes),
          static_cast<long long>(frep.retries),
          static_cast<long long>(frep.timeouts),
          static_cast<long long>(frep.hedges),
          static_cast<long long>(frep.hedge_wins),
          static_cast<long long>(frep.wasted_tokens));
      if (rcfg.degrade.enabled) {
        std::printf(
            "  degradation: %d escalation(s), %d de-escalation(s), final "
            "level %d (%s)\n",
            frep.escalations, frep.deescalations, frep.final_level,
            compress::setting_label(
                parallel::serving_ladder_settings()[static_cast<size_t>(
                    frep.final_level)])
                .c_str());
      }
      obs::json::Value rec = obs::json::Value::object();
      rec.set("fleet_replicas", int64_t{replicas});
      rec.set("fleet_policy", std::string(sim::route_policy_label(rcfg.policy)));
      rec.set("fleet_completed", frep.serving.completed);
      rec.set("fleet_shed", frep.shed);
      rec.set("fleet_failed", frep.failed);
      rec.set("fleet_goodput_tok_s", frep.goodput_tok_s());
      rec.set("fleet_e2e_p99_ms", frep.serving.e2e.p99_ms);
      rec.set("fleet_crashes", frep.crashes);
      rec.set("fleet_escalations", int64_t{frep.escalations});
      report.add_record(std::move(rec));
    }
  }

  if (faults_mode) {
    struct NamedProfile {
      const char* label;
      sim::FaultProfile profile;
    };
    const NamedProfile scenarios[] = {
        {"straggler 1.5x on stage 1", sim::FaultProfile::straggler(1, 1.5, 0)},
        {"flaky link 10% outages",
         sim::FaultProfile::flaky_link(0.10, /*timeout=*/5.0, /*backoff=*/2.0,
                                       0)},
    };
    bench::FaultSweep sweep;  // 25 trials, base seed 1
    for (const auto& sc : scenarios) {
      std::printf("\nFaults: %s (%d seeded trials)\n\n", sc.label,
                  sweep.trials);
      std::vector<std::string> header{"setting", "clean ms", "p50 ms",
                                      "p95 ms",  "p99 ms",   "x clean"};
      std::vector<std::vector<std::string>> body;
      for (compress::Setting s : compress::main_settings()) {
        const auto p = core::CompressionPlan::paper_default(s, model.num_layers);
        const auto summary =
            sweep.run(sc.profile, [&](const sim::FaultProfile& fp) {
              parallel::SimOptions opts(sim::ScheduleKind::k1F1B, 1, false,
                                        false, fp);
              parallel::ModelParallelSimulator sim(cluster, model, {tp, pp, dp},
                                                   {micro, num_micro, seq},
                                                   opts);
              return sim.run(p).total_ms();
            });
        body.push_back({compress::setting_label(s),
                        bench::fmt(summary.clean_ms), bench::fmt(summary.p50_ms),
                        bench::fmt(summary.p95_ms), bench::fmt(summary.p99_ms),
                        bench::fmt(summary.slowdown_p99(), 3)});
      }
      bench::print_table(header, body, 10);
    }
    std::printf(
        "\nReading the tail: a setting whose p99 stays close to its clean\n"
        "time tolerates the fault; a link fault widens the baseline's tail\n"
        "most because it ships the largest messages.\n");
  }

  if (mtbf_ms > 0.0) {
    // Project the job onto the crash-recovery model: the best setting's
    // iteration time is the step cost; a checkpoint write is priced as a few
    // iterations (fp32 params + two Adam moments flushed to shared storage).
    sim::RecoveryConfig rc;
    rc.step_ms = best;
    rc.total_steps = 10000;
    rc.ckpt_cost_ms = 4.0 * best;
    rc.crash.mtbf_ms = mtbf_ms;
    rc.crash.num_stages = pp;
    rc.crash.detect_ms = 2.0 * best;
    rc.crash.restart_ms = 10.0 * best;
    rc.seed = 1;

    const double tau =
        sim::young_daly_interval_ms(rc.ckpt_cost_ms, rc.crash.effective_mtbf_ms());
    const int64_t tau_steps =
        std::max<int64_t>(1, static_cast<int64_t>(std::llround(tau / rc.step_ms)));
    rc.ckpt_interval_steps = ckpt_interval > 0 ? ckpt_interval : tau_steps;
    rc.validate();

    const auto sweep = sim::sweep_checkpoint_interval(rc, /*trials=*/40);
    const auto chosen = sim::simulate_recovery(rc);
    std::printf(
        "\nCrash recovery (per-stage MTBF %.0f ms over %d stages, job MTBF "
        "%.0f ms;\ncheckpoint cost %.1f ms, detect %.1f ms, restart %.1f ms; "
        "%lld-step horizon):\n",
        rc.crash.mtbf_ms, rc.crash.num_stages, rc.crash.effective_mtbf_ms(),
        rc.ckpt_cost_ms, rc.crash.detect_ms, rc.crash.restart_ms,
        static_cast<long long>(rc.total_steps));
    std::printf(
        "  Young/Daly optimal interval: %.1f ms (%lld steps)\n"
        "  simulated optimal interval:  %.1f ms (%lld steps, %+.1f%% vs "
        "analytic)\n"
        "  at --ckpt-interval %lld: goodput %.3f steps/s, %d crashes, "
        "%.1f ms replayed\n",
        tau, static_cast<long long>(tau_steps), sweep.best_interval_ms,
        static_cast<long long>(sweep.best_interval_steps),
        sweep.deviation() * 100.0,
        static_cast<long long>(rc.ckpt_interval_steps),
        chosen.goodput_steps_per_sec(), chosen.crashes, chosen.replay_ms);

    obs::json::Value rec = obs::json::Value::object();
    rec.set("mtbf_ms", rc.crash.mtbf_ms);
    rec.set("ckpt_interval_steps", rc.ckpt_interval_steps);
    rec.set("young_daly_ms", tau);
    rec.set("simulated_best_ms", sweep.best_interval_ms);
    rec.set("goodput_steps_per_s", chosen.goodput_steps_per_sec());
    report.add_record(std::move(rec));
  }
  return 0;
}
