// Throughput explorer: "should I compress my model-parallel training job?"
//
// The practitioner-facing front end to the calibrated simulator: give it a
// platform, a parallel layout, and a job shape, and it predicts the
// per-iteration time of every compression setting plus a breakdown of the
// winner — the decision the paper's Tables 2-7 answer for BERT-Large.
//
//   $ ./throughput_explorer [pcie|nvlink|multinode] [tp] [pp] [micro_batch]
//                           [num_micro] [seq]
//   $ ./throughput_explorer nvlink 4 1 32 1 512
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/compression_plan.h"
#include "parallel/mp_simulator.h"
#include "sim/hardware.h"

int main(int argc, char** argv) {
  using namespace actcomp;
  const std::string platform = argc > 1 ? argv[1] : "pcie";
  const int tp = argc > 2 ? std::atoi(argv[2]) : 2;
  const int pp = argc > 3 ? std::atoi(argv[3]) : 2;
  const int64_t micro = argc > 4 ? std::atoll(argv[4]) : 32;
  const int64_t num_micro = argc > 5 ? std::atoll(argv[5]) : 1;
  const int64_t seq = argc > 6 ? std::atoll(argv[6]) : 512;

  sim::ClusterSpec cluster;
  if (platform == "nvlink") {
    cluster = sim::ClusterSpec::aws_p3(1);
  } else if (platform == "multinode") {
    cluster = sim::ClusterSpec::aws_p3((tp * pp + 3) / 4);
  } else {
    cluster = sim::ClusterSpec::local_pcie();
  }

  const nn::BertConfig model = nn::BertConfig::bert_large();
  parallel::ModelParallelSimulator simulator(cluster, model, {tp, pp},
                                             {micro, num_micro, seq});
  std::printf(
      "Platform %s | BERT-Large | TP=%d PP=%d | micro %lld x %lld, seq %lld\n\n",
      cluster.name.c_str(), tp, pp, static_cast<long long>(micro),
      static_cast<long long>(num_micro), static_cast<long long>(seq));

  double best = 1e30;
  compress::Setting best_setting = compress::Setting::kBaseline;
  std::printf("%-9s %12s %10s\n", "setting", "iter ms", "vs w/o");
  const double base = simulator.run_baseline().total_ms();
  for (compress::Setting s : compress::main_settings()) {
    const auto plan = core::CompressionPlan::paper_default(s, model.num_layers);
    const double t = simulator.run(plan).total_ms();
    std::printf("%-9s %12.2f %9.1f%%\n", compress::setting_label(s).c_str(), t,
                (base / t - 1.0) * 100.0);
    if (t < best) {
      best = t;
      best_setting = s;
    }
  }

  const auto plan =
      core::CompressionPlan::paper_default(best_setting, model.num_layers);
  const auto r = simulator.run(plan);
  std::printf(
      "\nBest: %s (%.2f ms). Breakdown: fwd %.1f, bwd %.1f, optim %.1f,\n"
      "waiting+pipe %.1f, enc %.2f, dec %.2f, tensor comm %.2f ms.\n",
      compress::setting_label(best_setting).c_str(), r.total_ms(),
      r.fwd_critical_ms, r.bwd_critical_ms, r.optimizer_ms,
      r.waiting_finetune_ms(), r.enc_ms, r.dec_ms, r.tensor_comm_ms);
  if (best_setting == compress::Setting::kBaseline) {
    std::printf(
        "\nOn this configuration compression does not pay — the paper's\n"
        "Takeaway 1/8 regime (fast links or small messages).\n");
  }
  return 0;
}
