// Quickstart: the compression library in five minutes.
//
// Builds one activation tensor, runs every compression setting from the
// paper's Table 1 over it, and reports what would cross the wire and what
// comes back — the core objects (Compressor, Setting, WireFormat) that the
// rest of the library composes.
//
//   $ ./quickstart
#include <cstdio>

#include "compress/settings.h"
#include "tensor/ops.h"
#include "tensor/random.h"

int main() {
  using namespace actcomp;

  // An activation the size a small Transformer would all-reduce:
  // batch 8 x seq 32 x hidden 128, fp16 on the wire = 128 KiB raw.
  const int64_t hidden = 128;
  tensor::Generator gen(7);
  const tensor::Tensor activation =
      gen.normal(tensor::Shape{8, 32, hidden}, 0.0f, 2.0f);
  const int64_t raw_bytes = compress::fp16_bytes(activation.shape());
  std::printf("activation: %s, %lld bytes as fp16\n\n",
              activation.shape().str().c_str(),
              static_cast<long long>(raw_bytes));

  std::printf("%-8s %-20s %12s %8s %12s %11s\n", "setting", "algorithm",
              "wire bytes", "ratio", "rel. error", "allreduce?");
  for (compress::Setting s : compress::all_settings()) {
    auto c = compress::make_compressor(s, hidden, gen);
    const auto wire = c->wire_size(activation.shape());
    const tensor::Tensor restored = c->round_trip(activation);
    std::printf("%-8s %-20s %12lld %7.1fx %12.4f %11s\n",
                compress::setting_label(s).c_str(), c->name().c_str(),
                static_cast<long long>(wire.total_bytes()),
                static_cast<double>(raw_bytes) /
                    static_cast<double>(wire.total_bytes()),
                tensor::rel_error(restored, activation),
                c->allreduce_compatible() ? "yes" : "no");
  }

  std::printf(
      "\nNotes:\n"
      "  * The untrained AE reconstructs poorly here — its value comes from\n"
      "    joint training (see examples/finetune_with_compression).\n"
      "  * Sparse formats cannot ride all-reduce: tensor parallelism falls\n"
      "    back to all-gather, multiplying their traffic by the TP degree.\n");
  return 0;
}
