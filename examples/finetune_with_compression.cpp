// End-to-end: fine-tune a small BERT on a synthetic GLUE-style task with an
// autoencoder compressing the last half of its layers, against the
// uncompressed baseline — the paper's central accuracy experiment at laptop
// scale, in ~1 minute of CPU time.
//
//   $ ./finetune_with_compression [setting] [task-index 0..8]
//   $ ./finetune_with_compression A2 3        # A2 on SST-2
#include <cstdio>
#include <cstdlib>

#include "core/binder.h"
#include "data/dataset.h"
#include "data/vocab.h"
#include "nn/bert.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace actcomp;
  const std::string label = argc > 1 ? argv[1] : "A2";
  const int task_index = argc > 2 ? std::atoi(argv[2]) : 3;  // SST-2
  const auto setting = compress::parse_setting(label);
  if (!setting || task_index < 0 ||
      task_index >= static_cast<int>(data::all_tasks().size())) {
    std::fprintf(stderr, "usage: %s [w/o|A1|A2|T1..T4|R1..R4|Q1..Q3] [0..8]\n",
                 argv[0]);
    return 1;
  }
  const auto& task = data::all_tasks()[static_cast<size_t>(task_index)];

  nn::BertConfig cfg;
  cfg.vocab_size = data::Vocab::kSize;
  cfg.hidden = 32;
  cfg.num_layers = 4;
  cfg.num_heads = 2;
  cfg.intermediate = 128;
  cfg.max_seq = 24;
  cfg.dropout = 0.0f;

  auto run = [&](compress::Setting s) {
    tensor::Generator gen(42);
    nn::BertModel model(cfg, gen);
    const auto plan = core::CompressionPlan::paper_default(s, cfg.num_layers);
    core::CompressionBinder binder(model, plan, /*pp_degree=*/2, gen);
    std::printf("[%s] %lld compression points, %zu trainable codec params\n",
                compress::setting_label(s).c_str(),
                static_cast<long long>(binder.num_compression_points()),
                binder.codec_parameters().size());
    data::TaskDataset train =
        data::make_task_dataset(task.id, 1024, cfg.max_seq, gen);
    data::TaskDataset dev = data::make_task_dataset(task.id, 256, cfg.max_seq, gen);
    train::FinetuneConfig fc;
    fc.batch_size = 16;
    fc.epochs = 3;
    fc.lr = 5e-4f;
    const auto res = train::finetune(model, train, dev, fc, &binder);
    std::printf("[%s] %s dev metric: %.2f (final train loss %.4f, %lld steps)\n\n",
                compress::setting_label(s).c_str(), task.name.c_str(),
                res.dev_metric, res.final_train_loss,
                static_cast<long long>(res.steps));
    return res.dev_metric;
  };

  std::printf("Task %s — compressed fine-tuning vs baseline\n\n", task.name.c_str());
  const double baseline = run(compress::Setting::kBaseline);
  const double compressed = run(*setting);
  std::printf("accuracy delta (%s - w/o): %+.2f\n", label.c_str(),
              compressed - baseline);
  return 0;
}
