// Scaling advisor: the paper's §4.7 analytical model as a planning tool.
//
// Fits the cost model on a platform, then answers: at YOUR hidden size,
// layer count, cluster size, and network, what AE speedup should you expect
// — and how should you scale nodes to keep it? (Table 10's question.)
//
//   $ ./scaling_advisor [hidden] [layers] [nodes] [global_batch]
//   $ ./scaling_advisor 8192 48 4 1536
#include <cstdio>
#include <cstdlib>

#include "perf/perf_model.h"
#include "sim/hardware.h"

int main(int argc, char** argv) {
  using namespace actcomp;
  const int64_t hidden = argc > 1 ? std::atoll(argv[1]) : 8192;
  const int64_t layers = argc > 2 ? std::atoll(argv[2]) : 48;
  const int64_t nodes = argc > 3 ? std::atoll(argv[3]) : 4;
  const int64_t global_batch = argc > 4 ? std::atoll(argv[4]) : 1536;
  constexpr int64_t kMicro = 16;
  constexpr int64_t kSeq = 128;
  constexpr int64_t kCode = 100;  // the paper's fixed AE dim for this study

  const auto cluster = sim::ClusterSpec::local_pcie();
  const auto p = perf::fit_perf_model(
      cluster, 4, kMicro, kSeq, {256, 512, 1024, 2048, 4096, 8192, 12288}, kCode);
  std::printf(
      "Fitted on %s (TP=4): alpha=%.3e ms/FLOP, beta=%.3e ms/elem,\n"
      "gamma=%.3e ms/elem, c=%.3f ms, d=%.0f elems\n\n",
      cluster.name.c_str(), p.alpha_ms_per_flop, p.beta_ms_per_elem,
      p.gamma_ms_per_elem, p.comm_const_ms, p.comm_threshold_elems);

  const double per_layer = perf::layer_time(p, kMicro, kSeq, hidden);
  const double per_layer_ae = perf::layer_time_ae(p, kMicro, kSeq, hidden, kCode);
  std::printf("Per-layer time @ h=%lld: %.3f ms -> %.3f ms with AE (Eq. 2: %.3fx)\n",
              static_cast<long long>(hidden), per_layer, per_layer_ae,
              perf::speedup_single_node(p, kMicro, kSeq, hidden, kCode));

  const double w = cluster.inter_node.bandwidth_gb_s * 1e9 / 2.0 * 1e-3;
  const int64_t num_micro = std::max<int64_t>(1, global_batch / kMicro);
  std::printf(
      "Cluster speedup (Eq. 3) at n=%lld nodes, %lld micro-batches: %.3fx\n\n",
      static_cast<long long>(nodes), static_cast<long long>(num_micro),
      perf::speedup_cluster(p, kMicro, kSeq, hidden, kCode, layers, nodes,
                            num_micro, w));

  std::printf("If you scale nodes with the model (weak scaling):\n");
  std::printf("%8s %8s %10s\n", "nodes", "hidden", "speedup");
  for (int64_t n = 1; n <= nodes * 8; n *= 2) {
    const int64_t h = hidden * n / nodes;  // grow the model with the cluster
    std::printf("%8lld %8lld %9.3fx\n", static_cast<long long>(n),
                static_cast<long long>(h),
                perf::speedup_cluster(p, kMicro, kSeq, h, kCode, layers, n,
                                      num_micro, w));
  }
  std::printf(
      "\nTakeaway (paper §4.7): compression's benefit decays with hidden size\n"
      "on a fixed cluster; retaining it requires scaling the cluster (and\n"
      "pipeline) together with the model.\n");
  return 0;
}
