// Scaling advisor: the paper's §4.7 analytical model as a planning tool.
//
// Fits the cost model on a platform, then answers: at YOUR hidden size,
// layer count, cluster size, and network, what AE speedup should you expect
// — and how should you scale nodes to keep it? (Table 10's question.)
//
//   $ ./scaling_advisor [--dp <replicas>] [--topology <spine>]
//                       [hidden] [layers] [nodes] [global_batch]
//   $ ./scaling_advisor 8192 48 4 1536
//   $ ./scaling_advisor --dp 32 --topology oversub:4 8192 48 4 1536
//
// With --dp, the advisor extends Eq. 3 to the full 3D grid
// (perf::iteration_time_3d): a ladder of data-parallel widths up to the
// requested one, each paying a ring gradient all-reduce over the spine
// selected by --topology (flat | fat-tree | oversub[:factor], on the
// datacenter link rates — 100 GbE uplinks).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "perf/perf_model.h"
#include "sim/hardware.h"

int main(int argc, char** argv) {
  using namespace actcomp;
  int dp = 1;
  std::string topology = "flat";
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--dp" && i + 1 < argc) {
      dp = std::atoi(argv[++i]);
    } else if (a == "--topology" && i + 1 < argc) {
      topology = argv[++i];
    } else {
      pos.push_back(argv[i]);
    }
  }
  sim::TopologySpec topo;
  if (topology == "fat-tree") {
    topo.spine = sim::TopologySpec::Spine::kFatTree;
  } else if (topology.rfind("oversub", 0) == 0) {
    topo.spine = sim::TopologySpec::Spine::kOversubscribed;
    const size_t colon = topology.find(':');
    topo.oversubscription =
        colon == std::string::npos ? 4.0 : std::atof(topology.c_str() + colon + 1);
  } else if (topology != "flat") {
    std::fprintf(stderr, "unknown --topology '%s' (flat|fat-tree|oversub[:N])\n",
                 topology.c_str());
    return 2;
  }
  const int64_t hidden = pos.size() > 0 ? std::atoll(pos[0]) : 8192;
  const int64_t layers = pos.size() > 1 ? std::atoll(pos[1]) : 48;
  const int64_t nodes = pos.size() > 2 ? std::atoll(pos[2]) : 4;
  const int64_t global_batch = pos.size() > 3 ? std::atoll(pos[3]) : 1536;
  constexpr int64_t kMicro = 16;
  constexpr int64_t kSeq = 128;
  constexpr int64_t kCode = 100;  // the paper's fixed AE dim for this study

  const auto cluster = sim::ClusterSpec::local_pcie();
  const auto p = perf::fit_perf_model(
      cluster, 4, kMicro, kSeq, {256, 512, 1024, 2048, 4096, 8192, 12288}, kCode);
  std::printf(
      "Fitted on %s (TP=4): alpha=%.3e ms/FLOP, beta=%.3e ms/elem,\n"
      "gamma=%.3e ms/elem, c=%.3f ms, d=%.0f elems\n\n",
      cluster.name.c_str(), p.alpha_ms_per_flop, p.beta_ms_per_elem,
      p.gamma_ms_per_elem, p.comm_const_ms, p.comm_threshold_elems);

  const double per_layer = perf::layer_time(p, kMicro, kSeq, hidden);
  const double per_layer_ae = perf::layer_time_ae(p, kMicro, kSeq, hidden, kCode);
  std::printf("Per-layer time @ h=%lld: %.3f ms -> %.3f ms with AE (Eq. 2: %.3fx)\n",
              static_cast<long long>(hidden), per_layer, per_layer_ae,
              perf::speedup_single_node(p, kMicro, kSeq, hidden, kCode));

  const double w = cluster.inter_node.bandwidth_gb_s * 1e9 / 2.0 * 1e-3;
  const int64_t num_micro = std::max<int64_t>(1, global_batch / kMicro);
  std::printf(
      "Cluster speedup (Eq. 3) at n=%lld nodes, %lld micro-batches: %.3fx\n\n",
      static_cast<long long>(nodes), static_cast<long long>(num_micro),
      perf::speedup_cluster(p, kMicro, kSeq, hidden, kCode, layers, nodes,
                            num_micro, w));

  std::printf("If you scale nodes with the model (weak scaling):\n");
  std::printf("%8s %8s %10s\n", "nodes", "hidden", "speedup");
  for (int64_t n = 1; n <= nodes * 8; n *= 2) {
    const int64_t h = hidden * n / nodes;  // grow the model with the cluster
    std::printf("%8lld %8lld %9.3fx\n", static_cast<long long>(n),
                static_cast<long long>(h),
                perf::speedup_cluster(p, kMicro, kSeq, h, kCode, layers, n,
                                      num_micro, w));
  }
  std::printf(
      "\nTakeaway (paper §4.7): compression's benefit decays with hidden size\n"
      "on a fixed cluster; retaining it requires scaling the cluster (and\n"
      "pipeline) together with the model.\n");

  if (dp > 1) {
    // 3D ladder: widen the data-parallel axis at a fixed tp x pp grid and
    // watch the ring all-reduce of the per-rank gradient shard take over
    // the iteration on the chosen spine.
    const auto dc = sim::ClusterSpec::datacenter(
        static_cast<int>(nodes), topo.spine, topo.oversubscription);
    const double boundary_w = dc.inter_node.bandwidth_gb_s * 1e9 / 2.0 * 1e-3;
    std::printf(
        "\n3D extrapolation on a %s-spine datacenter (100 GbE uplinks,\n"
        "TP=4 per Eq. 3 fit, PP=%lld, ~12Lh^2 parameters):\n\n",
        topology.c_str(), static_cast<long long>(nodes));
    std::printf("%8s %10s %12s %12s\n", "dp", "devices", "iter ms", "DP share");
    for (int d = 1; d <= dp; d *= 2) {
      perf::Analytic3dConfig c;
      c.micro_batch = kMicro;
      c.seq = kSeq;
      c.hidden = hidden;
      c.layers = layers;
      c.num_micro = num_micro;
      c.pp = static_cast<int>(nodes);
      c.dp = d;
      c.boundary_elems_per_ms = boundary_w;
      const sim::LinkSpec ring =
          dc.topology.cross_node(dc.inter_node, static_cast<int>(nodes) * d);
      c.dp_elems_per_ms = ring.bandwidth_gb_s * 1e9 / 2.0 * 1e-3;
      c.grad_elems_per_rank = 12.0 * static_cast<double>(hidden) *
                              static_cast<double>(hidden) *
                              static_cast<double>(layers) /
                              (4.0 * static_cast<double>(nodes));
      const double iter = perf::iteration_time_3d(p, c);
      c.dp = 1;
      const double no_dp = perf::iteration_time_3d(p, c);
      std::printf("%8d %10lld %12.2f %11.1f%%\n", d,
                  static_cast<long long>(4 * nodes * d), iter,
                  (iter - no_dp) / iter * 100.0);
    }
    std::printf(
        "\nThe DP share is the gradient all-reduce's cut of the iteration —\n"
        "the bound activation compression cannot touch (it rides the\n"
        "activation path only; compressing gradients is a separate knob,\n"
        "see ablation_3d).\n");
  }
  return 0;
}
