// Export Chrome/Perfetto traces of the simulated pipeline schedules.
//
//   ./build/examples/trace_export [out_dir]
//
// Writes trace_gpipe.json, trace_1f1b.json, trace_1f1b_overlap.json and
// trace_interleaved.json for a 4-stage, 8-micro-batch pipeline with slow
// transfers (so the comm rows are visible). Open them at
// https://ui.perfetto.dev -> "Open trace file": one row per stage plus one
// row per link direction; gaps on a stage row under a long slice on its
// inbound link row are waiting-on-comm, not bubble.
#include <cstdio>
#include <fstream>
#include <string>

#include "obs/json.h"
#include "obs/profiler.h"
#include "obs/report.h"
#include "sim/recovery.h"
#include "sim/trace.h"

int main(int argc, char** argv) {
  namespace sm = actcomp::sim;
  namespace obs = actcomp::obs;
  obs::RunReport report("trace_export");
  const std::string dir = argc > 1 ? argv[1] : ".";

  sm::PipelineCosts costs;
  costs.fwd_ms.assign(4, 10.0);
  costs.bwd_ms.assign(4, 20.0);
  costs.p2p_fwd_ms.assign(3, 4.0);
  costs.p2p_bwd_ms.assign(3, 4.0);
  costs.p2p_wrap_fwd_ms = 4.0;
  costs.p2p_wrap_bwd_ms = 4.0;
  costs.micro_batches = 8;

  struct Variant {
    const char* file;
    sm::PipelineOptions options;
  };
  const Variant variants[] = {
      {"trace_gpipe.json", {sm::ScheduleKind::kGpipe, 1, false}},
      {"trace_1f1b.json", {sm::ScheduleKind::k1F1B, 1, false}},
      {"trace_1f1b_overlap.json", {sm::ScheduleKind::k1F1B, 1, true}},
      {"trace_interleaved.json", {sm::ScheduleKind::kInterleaved1F1B, 2, false}},
  };
  for (const auto& v : variants) {
    const auto trace = sm::simulate_pipeline_traced(costs, v.options);
    const std::string path = dir + "/" + v.file;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    sm::write_chrome_trace(out, trace);
    std::printf("%-28s makespan %7.1f ms  peak stash (stage 0): %d\n",
                v.file, trace.result.makespan_ms,
                trace.peak_live_activations(0));
    obs::json::Value rec = obs::json::Value::object();
    rec.set("file", v.file);
    rec.set("makespan_ms", trace.result.makespan_ms);
    rec.set("peak_stash_stage0", trace.peak_live_activations(0));
    report.add_record(std::move(rec));
  }
  // A crash-recovery timeline in the same format: work / replay /
  // checkpoint / detect / restart slices plus an instant per crash — shows
  // the rollback-and-replay pattern the recovery model (sim/recovery.h)
  // prices. Knobs chosen so a 3000-step horizon realizes a handful of
  // crashes.
  {
    sm::RecoveryConfig rc;
    rc.step_ms = 10.0;
    rc.total_steps = 3000;
    rc.ckpt_interval_steps = 150;
    rc.ckpt_cost_ms = 40.0;
    rc.crash.mtbf_ms = 20000.0;
    rc.crash.num_stages = 4;
    rc.crash.detect_ms = 50.0;
    rc.crash.restart_ms = 200.0;
    rc.seed = 7;
    const auto rec = sm::simulate_recovery(rc);
    const std::string path = dir + "/trace_recovery.json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    sm::write_recovery_trace(out, rec);
    std::printf("%-28s wall %9.1f ms  crashes: %d  replayed: %.1f ms\n",
                "trace_recovery.json", rec.wall_ms, rec.crashes, rec.replay_ms);
    obs::json::Value jrec = obs::json::Value::object();
    jrec.set("file", "trace_recovery.json");
    jrec.set("wall_ms", rec.wall_ms);
    jrec.set("crashes", rec.crashes);
    jrec.set("goodput_steps_per_s", rec.goodput_steps_per_sec());
    report.add_record(std::move(jrec));
  }
  // The same viewer also reads the host-side profiler (obs/profiler.h):
  // with ACTCOMP_PROF=1, this process's own zones land next to the
  // simulated schedules.
  if (obs::profiler_enabled()) {
    const std::string path = dir + "/trace_profiler.json";
    std::ofstream out(path);
    if (out) {
      obs::to_chrome_trace(out);
      std::printf("%-28s (host-side profiler zones)\n", "trace_profiler.json");
    }
  }
  std::printf("\nLoad the .json files at https://ui.perfetto.dev\n");
  return 0;
}
