#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "data/vocab.h"
#include "tensor/check.h"

namespace actcomp::data {

TaskDataset::TaskDataset(TaskId task, std::vector<Example> examples,
                         int64_t max_seq)
    : task_(task), examples_(std::move(examples)), max_seq_(max_seq) {
  ACTCOMP_CHECK(max_seq >= 8, "max_seq must be >= 8, got " << max_seq);
  order_.resize(examples_.size());
  std::iota(order_.begin(), order_.end(), 0);
}

LabeledBatch TaskDataset::batch(int64_t begin, int64_t end) const {
  begin = std::clamp<int64_t>(begin, 0, size());
  end = std::clamp<int64_t>(end, begin, size());
  const int64_t b = end - begin;
  ACTCOMP_CHECK(b > 0, "empty batch [" << begin << ", " << end << ")");

  LabeledBatch out;
  out.input.batch = b;
  out.input.seq = max_seq_;
  out.input.token_ids.assign(static_cast<size_t>(b * max_seq_), Vocab::kPad);
  out.input.segment_ids.assign(static_cast<size_t>(b * max_seq_), 0);
  out.input.lengths.resize(static_cast<size_t>(b));

  for (int64_t i = 0; i < b; ++i) {
    const Example& e = examples_[static_cast<size_t>(order_[static_cast<size_t>(begin + i)])];
    auto* ids = out.input.token_ids.data() + i * max_seq_;
    auto* segs = out.input.segment_ids.data() + i * max_seq_;
    int64_t pos = 0;
    ids[pos++] = Vocab::kCls;
    // Reserve room: if there is a second sentence it gets at least 1/3 of
    // the budget; both sentences are truncated to fit two [SEP]s.
    const bool paired = !e.tokens_b.empty();
    const int64_t budget = max_seq_ - (paired ? 3 : 2);
    const int64_t a_budget =
        paired ? std::min<int64_t>(static_cast<int64_t>(e.tokens_a.size()),
                                   budget - budget / 3)
               : budget;
    for (int64_t j = 0; j < a_budget && j < static_cast<int64_t>(e.tokens_a.size());
         ++j) {
      ids[pos++] = e.tokens_a[static_cast<size_t>(j)];
    }
    ids[pos++] = Vocab::kSep;
    if (paired) {
      const int64_t b_budget = max_seq_ - pos - 1;
      for (int64_t j = 0;
           j < b_budget && j < static_cast<int64_t>(e.tokens_b.size()); ++j) {
        segs[pos] = 1;
        ids[pos++] = e.tokens_b[static_cast<size_t>(j)];
      }
      segs[pos] = 1;
      ids[pos++] = Vocab::kSep;
    }
    out.input.lengths[static_cast<size_t>(i)] = pos;
    out.class_labels.push_back(e.label_class);
    out.value_labels.push_back(e.label_value);
  }
  return out;
}

std::vector<LabeledBatch> TaskDataset::epoch_batches(
    int64_t batch_size, tensor::Generator* shuffle_gen) const {
  ACTCOMP_CHECK(batch_size > 0, "batch_size must be positive");
  if (shuffle_gen != nullptr) {
    for (size_t i = order_.size(); i > 1; --i) {
      std::swap(order_[i - 1],
                order_[static_cast<size_t>(
                    shuffle_gen->randint(0, static_cast<int64_t>(i) - 1))]);
    }
  }
  std::vector<LabeledBatch> out;
  for (int64_t begin = 0; begin < size(); begin += batch_size) {
    out.push_back(batch(begin, begin + batch_size));
  }
  return out;
}

TaskDataset make_task_dataset(TaskId task, int64_t count, int64_t max_seq,
                              tensor::Generator& gen) {
  // Sentence budget: leave room for [CLS]/[SEP]s; paired tasks split it.
  const int64_t sentence_len = std::max<int64_t>(6, (max_seq - 3) / 2);
  return TaskDataset(task, generate_examples(task, count, sentence_len, gen),
                     max_seq);
}

}  // namespace actcomp::data
