// Synthetic pre-training corpus + BERT-style MLM masking.
//
// Substitutes for the paper's Wikipedia + BooksCorpus (unavailable offline):
// documents are streams of topic-coherent token runs, so masked-token
// prediction teaches the encoder the same topical structure the fine-tuning
// tasks rely on — pre-training measurably helps downstream accuracy, which
// is the property Table 8 exercises.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/bert.h"
#include "tensor/random.h"

namespace actcomp::data {

struct MlmBatch {
  nn::EncoderInput input;
  /// Per-position original token id, or kIgnore at unmasked positions.
  std::vector<int64_t> labels;
  static constexpr int64_t kIgnore = -100;
};

class PretrainCorpus {
 public:
  /// `doc_len` tokens per document, `num_docs` documents.
  PretrainCorpus(int64_t num_docs, int64_t doc_len, tensor::Generator& gen);

  int64_t num_docs() const { return static_cast<int64_t>(docs_.size()); }
  const std::vector<int64_t>& doc(int64_t i) const;

  /// Sample a batch of `seq`-length windows and apply BERT masking: 15% of
  /// content positions are selected; of those 80% -> [MASK], 10% -> random
  /// token, 10% kept.
  MlmBatch sample_mlm_batch(int64_t batch, int64_t seq, tensor::Generator& gen,
                            double mask_prob = 0.15) const;

 private:
  std::vector<std::vector<int64_t>> docs_;
};

}  // namespace actcomp::data
