#include "data/pretrain.h"

#include "data/vocab.h"
#include "tensor/check.h"

namespace actcomp::data {

PretrainCorpus::PretrainCorpus(int64_t num_docs, int64_t doc_len,
                               tensor::Generator& gen) {
  ACTCOMP_CHECK(num_docs > 0 && doc_len >= 16, "corpus too small");
  docs_.reserve(static_cast<size_t>(num_docs));
  for (int64_t d = 0; d < num_docs; ++d) {
    std::vector<int64_t> doc;
    doc.reserve(static_cast<size_t>(doc_len));
    int64_t topic = gen.randint(0, Vocab::kNumTopics - 1);
    while (static_cast<int64_t>(doc.size()) < doc_len) {
      // A topic-coherent "sentence" of 5–15 words.
      const int64_t run = gen.randint(5, 15);
      for (int64_t i = 0; i < run && static_cast<int64_t>(doc.size()) < doc_len;
           ++i) {
        const double r = gen.rand_float();
        if (r < 0.80) {
          doc.push_back(Vocab::topic_word(topic, gen.randint(0, Vocab::kTopicWords - 1)));
        } else if (r < 0.90) {
          doc.push_back(gen.randint(Vocab::kPositiveBegin, Vocab::kNegativeEnd - 1));
        } else {
          doc.push_back(gen.randint(Vocab::kFillerBegin, Vocab::kFillerEnd - 1));
        }
      }
      if (gen.bernoulli(0.25)) topic = gen.randint(0, Vocab::kNumTopics - 1);
    }
    docs_.push_back(std::move(doc));
  }
}

const std::vector<int64_t>& PretrainCorpus::doc(int64_t i) const {
  ACTCOMP_CHECK(i >= 0 && i < num_docs(), "doc index out of range");
  return docs_[static_cast<size_t>(i)];
}

MlmBatch PretrainCorpus::sample_mlm_batch(int64_t batch, int64_t seq,
                                          tensor::Generator& gen,
                                          double mask_prob) const {
  ACTCOMP_CHECK(batch > 0 && seq >= 8, "bad MLM batch request");
  MlmBatch out;
  out.input.batch = batch;
  out.input.seq = seq;
  out.input.token_ids.assign(static_cast<size_t>(batch * seq), Vocab::kPad);
  out.input.segment_ids.assign(static_cast<size_t>(batch * seq), 0);
  out.input.lengths.assign(static_cast<size_t>(batch), seq);
  out.labels.assign(static_cast<size_t>(batch * seq), MlmBatch::kIgnore);

  for (int64_t b = 0; b < batch; ++b) {
    const auto& doc = docs_[static_cast<size_t>(gen.randint(0, num_docs() - 1))];
    const int64_t body = seq - 1;  // position 0 is [CLS]
    const int64_t max_start =
        std::max<int64_t>(0, static_cast<int64_t>(doc.size()) - body);
    const int64_t start = gen.randint(0, max_start);
    auto* ids = out.input.token_ids.data() + b * seq;
    auto* labels = out.labels.data() + b * seq;
    ids[0] = Vocab::kCls;
    for (int64_t i = 0; i < body && start + i < static_cast<int64_t>(doc.size());
         ++i) {
      const int64_t original = doc[static_cast<size_t>(start + i)];
      ids[1 + i] = original;
      if (gen.bernoulli(mask_prob)) {
        labels[1 + i] = original;
        const double r = gen.rand_float();
        if (r < 0.8) {
          ids[1 + i] = Vocab::kMask;
        } else if (r < 0.9) {
          ids[1 + i] = gen.randint(Vocab::kPositiveBegin, Vocab::kSize - 1);
        }  // else keep the original token
      }
    }
  }
  return out;
}

}  // namespace actcomp::data
