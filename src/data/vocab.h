// Synthetic vocabulary layout shared by every data generator.
//
// There is no real text in this environment (DESIGN.md §2), so tasks are
// generated directly over token ids. The id space is partitioned into
// structured regions — sentiment words, topical words, filler — that the
// task generators compose; a small Transformer can learn each task only by
// actually attending over the sequence, which is what the paper's accuracy
// experiments stress.
#pragma once

#include <cstdint>

namespace actcomp::data {

struct Vocab {
  // ---- special tokens ----
  static constexpr int64_t kPad = 0;
  static constexpr int64_t kCls = 1;
  static constexpr int64_t kSep = 2;
  static constexpr int64_t kMask = 3;
  static constexpr int64_t kNeg = 4;  ///< negation marker (MNLI contradictions)

  // ---- word regions ----
  static constexpr int64_t kPositiveBegin = 5;    ///< sentiment-positive words
  static constexpr int64_t kPositiveEnd = 45;
  static constexpr int64_t kNegativeBegin = 45;   ///< sentiment-negative words
  static constexpr int64_t kNegativeEnd = 85;
  static constexpr int64_t kNumTopics = 8;
  static constexpr int64_t kTopicWords = 20;      ///< words per topic
  static constexpr int64_t kTopicBegin = 85;      ///< 8 topics x 20 words
  static constexpr int64_t kTopicEnd = kTopicBegin + kNumTopics * kTopicWords;  // 245
  static constexpr int64_t kFillerBegin = 245;
  static constexpr int64_t kFillerEnd = 256;

  static constexpr int64_t kSize = 256;

  static constexpr int64_t topic_word(int64_t topic, int64_t index) {
    return kTopicBegin + topic * kTopicWords + index;
  }
  static constexpr int64_t topic_of(int64_t token) {
    return (token - kTopicBegin) / kTopicWords;
  }
  static constexpr bool is_topic_word(int64_t token) {
    return token >= kTopicBegin && token < kTopicEnd;
  }
};

}  // namespace actcomp::data
