// The nine GLUE-style evaluation columns of the paper's accuracy tables,
// backed by synthetic generators (see vocab.h for why).
//
// Each synthetic task mirrors the *shape* of its GLUE namesake:
//   MNLI-m/-mm  paired, 3-class entailment (contradiction via negation marker)
//   QQP, MRPC   paired, binary paraphrase — scored with F1
//   SST-2       single sentence, binary sentiment
//   CoLA        single sentence, binary acceptability (an order-sensitive
//               grammar) — scored with Matthews correlation; deliberately the
//               hardest task, as in the paper
//   QNLI, RTE   paired, binary entailment; RTE gets a small training set to
//               reproduce its high variance in the paper
//   STS-B       paired, regression on token overlap — scored with Spearman
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/random.h"

namespace actcomp::data {

enum class TaskId {
  kMnliM,
  kMnliMM,
  kQqp,
  kSst2,
  kMrpc,
  kCola,
  kQnli,
  kRte,
  kStsb,
};

enum class MetricKind { kAccuracy, kF1, kMatthews, kSpearman };

struct TaskInfo {
  TaskId id;
  std::string name;        ///< paper column header
  int num_classes;         ///< 0 for regression
  MetricKind metric;
  int64_t default_train;   ///< default training-set size
  int64_t default_dev;
};

const std::vector<TaskInfo>& all_tasks();
const TaskInfo& task_info(TaskId id);

/// One labeled example: one or two token sequences plus a label.
struct Example {
  std::vector<int64_t> tokens_a;
  std::vector<int64_t> tokens_b;  ///< empty for single-sentence tasks
  int64_t label_class = 0;        ///< classification tasks
  float label_value = 0.0f;       ///< regression tasks (STS-B, in [0, 5])
};

/// Deterministically generate `count` examples of `task`. `sentence_len` is
/// the per-sentence token budget (the pair is later packed as
/// [CLS] a… [SEP] b… [SEP] up to the model's sequence length).
std::vector<Example> generate_examples(TaskId task, int64_t count,
                                       int64_t sentence_len,
                                       tensor::Generator& gen);

}  // namespace actcomp::data
