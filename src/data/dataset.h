// Batching: packing Examples into padded EncoderInputs.
//
// Pairs are packed BERT-style as [CLS] a… [SEP] b… [SEP] with segment ids
// 0/1, truncated and padded to a fixed sequence length.
#pragma once

#include <cstdint>
#include <vector>

#include "data/tasks.h"
#include "nn/bert.h"
#include "tensor/random.h"

namespace actcomp::data {

struct LabeledBatch {
  nn::EncoderInput input;
  std::vector<int64_t> class_labels;  ///< classification tasks
  std::vector<float> value_labels;    ///< regression tasks
};

class TaskDataset {
 public:
  TaskDataset(TaskId task, std::vector<Example> examples, int64_t max_seq);

  int64_t size() const { return static_cast<int64_t>(examples_.size()); }
  TaskId task() const { return task_; }
  int64_t max_seq() const { return max_seq_; }

  /// Pack examples [begin, end) (clamped) into one padded batch.
  LabeledBatch batch(int64_t begin, int64_t end) const;

  /// All batches of `batch_size`, optionally shuffling example order first.
  std::vector<LabeledBatch> epoch_batches(int64_t batch_size,
                                          tensor::Generator* shuffle_gen) const;

  const Example& example(int64_t i) const { return examples_[static_cast<size_t>(i)]; }

 private:
  TaskId task_;
  std::vector<Example> examples_;
  int64_t max_seq_;
  mutable std::vector<int64_t> order_;  // shuffled view into examples_
};

/// Convenience: generate + wrap a dataset in one call.
TaskDataset make_task_dataset(TaskId task, int64_t count, int64_t max_seq,
                              tensor::Generator& gen);

}  // namespace actcomp::data
