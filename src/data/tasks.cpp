#include "data/tasks.h"

#include <algorithm>

#include "data/vocab.h"
#include "tensor/check.h"

namespace actcomp::data {

const std::vector<TaskInfo>& all_tasks() {
  static const std::vector<TaskInfo> kTasks = {
      {TaskId::kMnliM, "MNLI-m", 3, MetricKind::kAccuracy, 2400, 400},
      {TaskId::kMnliMM, "MNLI-mm", 3, MetricKind::kAccuracy, 2400, 400},
      {TaskId::kQqp, "QQP", 2, MetricKind::kF1, 2400, 400},
      {TaskId::kSst2, "SST-2", 2, MetricKind::kAccuracy, 2000, 400},
      {TaskId::kMrpc, "MRPC", 2, MetricKind::kF1, 1200, 400},
      {TaskId::kCola, "CoLA", 2, MetricKind::kMatthews, 1600, 400},
      {TaskId::kQnli, "QNLI", 2, MetricKind::kAccuracy, 2000, 400},
      {TaskId::kRte, "RTE", 2, MetricKind::kAccuracy, 500, 240},
      {TaskId::kStsb, "STS-B", 0, MetricKind::kSpearman, 1600, 400},
  };
  return kTasks;
}

const TaskInfo& task_info(TaskId id) {
  for (const TaskInfo& t : all_tasks()) {
    if (t.id == id) return t;
  }
  ACTCOMP_ASSERT(false, "unknown task id");
}

namespace {

using tensor::Generator;

int64_t rand_topic(Generator& gen) { return gen.randint(0, Vocab::kNumTopics - 1); }

int64_t rand_topic_except(Generator& gen, int64_t avoid) {
  const int64_t t = gen.randint(0, Vocab::kNumTopics - 2);
  return t >= avoid ? t + 1 : t;
}

int64_t rand_word_in_topic(Generator& gen, int64_t topic) {
  return Vocab::topic_word(topic, gen.randint(0, Vocab::kTopicWords - 1));
}

int64_t rand_filler(Generator& gen) {
  return gen.randint(Vocab::kFillerBegin, Vocab::kFillerEnd - 1);
}

std::vector<int64_t> topic_sentence(Generator& gen, int64_t topic, int64_t n,
                                    double filler_prob) {
  std::vector<int64_t> s(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    s[static_cast<size_t>(i)] = gen.bernoulli(filler_prob)
                                    ? rand_filler(gen)
                                    : rand_word_in_topic(gen, topic);
  }
  return s;
}

void shuffle(Generator& gen, std::vector<int64_t>& v) {
  for (size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[static_cast<size_t>(gen.randint(0, static_cast<int64_t>(i) - 1))]);
  }
}

/// A shuffled copy of the first `m` elements of `src` (a "summary").
std::vector<int64_t> subset_of(Generator& gen, const std::vector<int64_t>& src,
                               int64_t m) {
  std::vector<int64_t> out = src;
  shuffle(gen, out);
  out.resize(static_cast<size_t>(std::min<int64_t>(m, static_cast<int64_t>(out.size()))));
  return out;
}

Example gen_sst2(Generator& gen, int64_t n) {
  Example e;
  e.label_class = gen.randint(0, 1);
  const auto [lo, hi] = e.label_class == 1
                            ? std::pair{Vocab::kPositiveBegin, Vocab::kPositiveEnd}
                            : std::pair{Vocab::kNegativeBegin, Vocab::kNegativeEnd};
  const auto [olo, ohi] = e.label_class == 1
                              ? std::pair{Vocab::kNegativeBegin, Vocab::kNegativeEnd}
                              : std::pair{Vocab::kPositiveBegin, Vocab::kPositiveEnd};
  for (int64_t i = 0; i < n; ++i) {
    const double r = gen.rand_float();
    if (r < 0.70) {
      e.tokens_a.push_back(gen.randint(lo, hi - 1));
    } else if (r < 0.85) {
      e.tokens_a.push_back(gen.randint(olo, ohi - 1));
    } else {
      e.tokens_a.push_back(rand_filler(gen));
    }
  }
  return e;
}

Example gen_cola(Generator& gen, int64_t n) {
  // "Grammar": strict alternation between the first and second half of one
  // topic's word list. Violations swap one adjacent pair or substitute one
  // wrong-class word — detectable only through positional information.
  Example e;
  const int64_t topic = rand_topic(gen);
  const int64_t half = Vocab::kTopicWords / 2;
  if (n % 2 != 0) --n;
  for (int64_t i = 0; i < n; ++i) {
    const bool class_a = i % 2 == 0;
    const int64_t offset = class_a ? gen.randint(0, half - 1)
                                   : half + gen.randint(0, half - 1);
    e.tokens_a.push_back(Vocab::topic_word(topic, offset));
  }
  e.label_class = gen.randint(0, 1);
  if (e.label_class == 0) {  // corrupt
    if (gen.bernoulli(0.5)) {
      const int64_t i = gen.randint(0, n - 2);
      std::swap(e.tokens_a[static_cast<size_t>(i)],
                e.tokens_a[static_cast<size_t>(i + 1)]);
    } else {
      const int64_t i = gen.randint(0, n - 1);
      const bool class_a = i % 2 == 0;
      // Substitute a word of the *wrong* class.
      const int64_t offset = class_a ? half + gen.randint(0, half - 1)
                                     : gen.randint(0, half - 1);
      e.tokens_a[static_cast<size_t>(i)] = Vocab::topic_word(topic, offset);
    }
  }
  return e;
}

Example gen_mnli(Generator& gen, int64_t n, double filler_prob) {
  Example e;
  const int64_t topic = rand_topic(gen);
  e.tokens_a = topic_sentence(gen, topic, n, filler_prob);
  e.label_class = gen.randint(0, 2);
  switch (e.label_class) {
    case 0:  // entailment: hypothesis is a summary of the premise
      e.tokens_b = subset_of(gen, e.tokens_a, n / 2);
      break;
    case 1:  // neutral: different topic entirely
      e.tokens_b = topic_sentence(gen, rand_topic_except(gen, topic), n / 2,
                                  filler_prob);
      break;
    default:  // contradiction: summary of the premise, negated
      e.tokens_b = subset_of(gen, e.tokens_a, n / 2 - 1);
      e.tokens_b.insert(e.tokens_b.begin(), Vocab::kNeg);
      break;
  }
  return e;
}

Example gen_paraphrase(Generator& gen, int64_t n, double replace_prob,
                       bool hard_negatives) {
  Example e;
  const int64_t topic = rand_topic(gen);
  e.tokens_a = topic_sentence(gen, topic, n, 0.1);
  e.label_class = gen.randint(0, 1);
  if (e.label_class == 1) {  // paraphrase: shuffle + partial rewording
    e.tokens_b = e.tokens_a;
    shuffle(gen, e.tokens_b);
    for (int64_t& t : e.tokens_b) {
      if (gen.bernoulli(replace_prob) && Vocab::is_topic_word(t)) {
        t = rand_word_in_topic(gen, topic);
      }
    }
  } else if (hard_negatives && gen.bernoulli(0.5)) {
    // Same topic, different content — forces token-level comparison (MRPC
    // negatives are half hard, half cross-topic, so the task is learnable
    // but tops out mid-range, as MRPC does in the paper's tables).
    e.tokens_b = topic_sentence(gen, topic, n, 0.1);
  } else {
    e.tokens_b = topic_sentence(gen, rand_topic_except(gen, topic), n, 0.1);
  }
  return e;
}

Example gen_qnli(Generator& gen, int64_t n) {
  Example e;
  const int64_t topic = rand_topic(gen);
  // "Question": three probe words plus filler.
  std::vector<int64_t> probes;
  for (int i = 0; i < 3; ++i) probes.push_back(rand_word_in_topic(gen, topic));
  e.tokens_a = probes;
  while (static_cast<int64_t>(e.tokens_a.size()) < n / 2) {
    e.tokens_a.push_back(rand_filler(gen));
  }
  shuffle(gen, e.tokens_a);
  e.label_class = gen.randint(0, 1);
  // "Answer sentence": entailment (0) iff it actually contains the probe
  // words. Half the negatives are cross-topic (easy), half same-topic
  // (requiring exact probe matching), so a small encoder can learn the task
  // without it being trivial.
  const int64_t answer_topic =
      (e.label_class == 1 && gen.bernoulli(0.5)) ? rand_topic_except(gen, topic)
                                                 : topic;
  e.tokens_b = topic_sentence(gen, answer_topic, n, 0.1);
  if (e.label_class == 0) {
    for (size_t i = 0; i < probes.size() && i < e.tokens_b.size(); ++i) {
      e.tokens_b[static_cast<size_t>(gen.randint(
          0, static_cast<int64_t>(e.tokens_b.size()) - 1))] = probes[i];
    }
  }
  return e;
}

Example gen_rte(Generator& gen, int64_t n) {
  Example e;
  const int64_t topic = rand_topic(gen);
  e.tokens_a = topic_sentence(gen, topic, n, 0.15);
  e.label_class = gen.randint(0, 1);
  if (e.label_class == 0) {  // entailment
    e.tokens_b = subset_of(gen, e.tokens_a, n / 2);
  } else if (gen.bernoulli(0.5)) {
    e.tokens_b = topic_sentence(gen, rand_topic_except(gen, topic), n / 2, 0.15);
  } else {
    e.tokens_b = topic_sentence(gen, topic, n / 2, 0.15);  // hard negative
  }
  return e;
}

Example gen_stsb(Generator& gen, int64_t n) {
  Example e;
  const int64_t topic = rand_topic(gen);
  e.tokens_a = topic_sentence(gen, topic, n, 0.0);
  const double overlap = gen.rand_float();
  const int64_t shared = static_cast<int64_t>(overlap * static_cast<double>(n) + 0.5);
  e.tokens_b = subset_of(gen, e.tokens_a, shared);
  while (static_cast<int64_t>(e.tokens_b.size()) < n) {
    e.tokens_b.push_back(rand_word_in_topic(gen, rand_topic_except(gen, topic)));
  }
  shuffle(gen, e.tokens_b);
  e.label_value = static_cast<float>(5.0 * overlap);
  return e;
}

}  // namespace

std::vector<Example> generate_examples(TaskId task, int64_t count,
                                       int64_t sentence_len,
                                       tensor::Generator& gen) {
  ACTCOMP_CHECK(count >= 0, "negative example count");
  ACTCOMP_CHECK(sentence_len >= 6, "sentence_len must be >= 6, got " << sentence_len);
  std::vector<Example> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    switch (task) {
      case TaskId::kSst2: out.push_back(gen_sst2(gen, sentence_len)); break;
      case TaskId::kCola: out.push_back(gen_cola(gen, sentence_len)); break;
      case TaskId::kMnliM: out.push_back(gen_mnli(gen, sentence_len, 0.10)); break;
      case TaskId::kMnliMM: out.push_back(gen_mnli(gen, sentence_len, 0.25)); break;
      case TaskId::kQqp:
        out.push_back(gen_paraphrase(gen, sentence_len, 0.25, false));
        break;
      case TaskId::kMrpc:
        out.push_back(gen_paraphrase(gen, sentence_len, 0.40, true));
        break;
      case TaskId::kQnli: out.push_back(gen_qnli(gen, sentence_len)); break;
      case TaskId::kRte: out.push_back(gen_rte(gen, sentence_len)); break;
      case TaskId::kStsb: out.push_back(gen_stsb(gen, sentence_len)); break;
    }
  }
  return out;
}

}  // namespace actcomp::data
