// CompressionPlan: which layers are compressed, with which algorithm.
//
// The paper's default compresses the last 12 of BERT-Large's 24 layers
// (§4.1); §4.5 sweeps both the number of compressed layers (Fig. 4a) and the
// location of a fixed-size compressed window (Fig. 4b). A plan captures that
// choice independent of model scale, as a contiguous [first, first+count)
// window of layer indices.
#pragma once

#include <cstdint>

#include "compress/settings.h"

namespace actcomp::core {

struct CompressionPlan {
  compress::Setting setting = compress::Setting::kBaseline;
  int64_t first_layer = 0;  ///< first compressed layer (inclusive)
  int64_t count = 0;        ///< number of consecutive compressed layers

  /// Compress the last `n` of `total` layers (the paper's default uses
  /// n = total / 2).
  static CompressionPlan last_n(compress::Setting s, int64_t total, int64_t n);
  /// The paper's §4.1 default: last half of the network.
  static CompressionPlan paper_default(compress::Setting s, int64_t total);
  /// An explicit window [first, first + n) (Fig. 4b location sweeps).
  static CompressionPlan window(compress::Setting s, int64_t first, int64_t n);
  /// No compression anywhere.
  static CompressionPlan none();

  bool compresses(int64_t layer) const {
    return setting != compress::Setting::kBaseline && layer >= first_layer &&
           layer < first_layer + count;
  }
  int64_t last_layer() const { return first_layer + count - 1; }
};

}  // namespace actcomp::core
