#include "core/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace actcomp::core {

namespace {

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
SimdIsa probe_host() {
  // The AVX2 tier also uses F16C for the fp16 kernels, so both must be
  // present before we leave scalar; AVX-512 additionally needs the
  // foundation subset (the kernels use no BW/DQ/VL instructions).
  if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("f16c")) {
    return SimdIsa::kScalar;
  }
  if (__builtin_cpu_supports("avx512f")) return SimdIsa::kAvx512;
  return SimdIsa::kAvx2;
}
#else
SimdIsa probe_host() { return SimdIsa::kScalar; }
#endif

struct Config {
  SimdIsa detected;
  SimdIsa initial;
  const char* override_value;
};

const Config& config() {
  static const Config cfg = [] {
    Config c;
    c.detected = probe_host();
    c.initial = c.detected;
    c.override_value = "";
    if (const char* env = std::getenv("ACTCOMP_SIMD");
        env != nullptr && *env != '\0') {
      c.override_value = env;
      if (std::strcmp(env, "scalar") == 0) {
        c.initial = SimdIsa::kScalar;
      } else if (std::strcmp(env, "avx2") == 0) {
        c.initial = std::min(SimdIsa::kAvx2, c.detected);
      } else if (std::strcmp(env, "avx512") == 0) {
        c.initial = std::min(SimdIsa::kAvx512, c.detected);
      } else {
        std::fprintf(stderr,
                     "actcomp: ignoring unknown ACTCOMP_SIMD='%s' "
                     "(want scalar|avx2|avx512)\n",
                     env);
      }
    }
    return c;
  }();
  return cfg;
}

std::atomic<int>& active_tier() {
  static std::atomic<int> tier{static_cast<int>(config().initial)};
  return tier;
}

}  // namespace

SimdIsa simd_isa() {
  return static_cast<SimdIsa>(active_tier().load(std::memory_order_relaxed));
}

SimdIsa detected_simd_isa() { return config().detected; }

void set_simd_isa(SimdIsa isa) {
  active_tier().store(static_cast<int>(std::min(isa, config().detected)),
                      std::memory_order_relaxed);
}

const char* simd_isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar: return "scalar";
    case SimdIsa::kAvx2: return "avx2";
    case SimdIsa::kAvx512: return "avx512";
  }
  return "scalar";
}

const char* simd_override() { return config().override_value; }

}  // namespace actcomp::core
