// actcomp::core parallel runtime: a lazily-initialized global thread pool
// with a deterministic parallel_for.
//
// Determinism contract (DESIGN.md §10): parallel_for splits [begin, end)
// into consecutive chunks of exactly `grain` elements (the last chunk may
// be short). The chunk boundaries are a pure function of (begin, end,
// grain) — never of the thread count — and each chunk is executed exactly
// once, so any kernel whose writes are disjoint per chunk (and whose
// per-element arithmetic order is fixed within a chunk) produces
// bit-identical results whether the pool has 1 or N threads. Golden tables
// and seeded experiments therefore do not move when ACTCOMP_THREADS
// changes.
//
// Sizing: the pool is created on first use with ACTCOMP_THREADS lanes
// (env var; unset/0 means std::thread::hardware_concurrency). One lane is
// the calling thread itself — a pool of size N spawns N-1 workers — so
// ACTCOMP_THREADS=1 runs everything inline with zero synchronization.
//
// Nesting: a parallel_for issued from inside a pool worker runs inline on
// that worker (same chunk boundaries), so nested calls cannot deadlock and
// cannot oversubscribe.
//
// Exceptions: the first exception thrown by any chunk is captured,
// remaining chunks are skipped (cancelled), and the exception is rethrown
// on the calling thread once the job has drained.
#pragma once

#include <cstdint>
#include <functional>

namespace actcomp::core {

/// Total parallel lanes (workers + caller) the global pool runs with, >= 1.
int num_threads();

/// Test/bench hook: resize the global pool to exactly `n` lanes (clamped to
/// >= 1), overriding ACTCOMP_THREADS. Must not be called concurrently with
/// an in-flight parallel_for.
void set_num_threads(int n);

namespace detail {
/// Type-erased engine behind parallel_for. Executes fn once per chunk.
void parallel_chunks(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn);
}  // namespace detail

/// Run fn(chunk_begin, chunk_end) over consecutive chunks of `grain`
/// elements covering [begin, end). See the determinism contract above.
/// fn must be safe to call from multiple threads at once on distinct
/// chunks. Blocks until every chunk has run (or one has thrown).
template <typename Fn>
void parallel_for(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  detail::parallel_chunks(
      begin, end, grain,
      std::function<void(int64_t, int64_t)>(std::forward<Fn>(fn)));
}

}  // namespace actcomp::core
