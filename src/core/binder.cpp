#include "core/binder.h"

#include "compress/error_feedback.h"
#include "tensor/check.h"

namespace actcomp::core {

std::vector<int64_t> pipeline_boundaries(int64_t total_layers, int64_t pp_degree) {
  ACTCOMP_CHECK(pp_degree >= 1 && total_layers >= pp_degree,
                "cannot split " << total_layers << " layers into " << pp_degree
                                << " stages");
  std::vector<int64_t> out;
  const int64_t per_stage = total_layers / pp_degree;
  const int64_t remainder = total_layers % pp_degree;
  int64_t layer = -1;
  for (int64_t s = 0; s + 1 < pp_degree; ++s) {
    layer += per_stage + (s < remainder ? 1 : 0);
    out.push_back(layer);
  }
  return out;
}

compress::CompressorPtr CompressionBinder::make(tensor::Generator& gen,
                                                bool error_feedback) {
  compress::CompressorPtr c =
      compress::make_compressor(plan_.setting, model_.config().hidden, gen);
  if (error_feedback) {
    c = std::make_unique<compress::ErrorFeedbackCompressor>(std::move(c));
  }
  return c;
}

CompressionBinder::CompressionBinder(nn::BertModel& model,
                                     const CompressionPlan& plan,
                                     int64_t pp_degree, tensor::Generator& gen,
                                     bool error_feedback)
    : model_(model), plan_(plan) {
  ACTCOMP_CHECK(plan.first_layer + plan.count <= model.num_layers(),
                "plan window [" << plan.first_layer << ", "
                                << plan.first_layer + plan.count
                                << ") exceeds model depth " << model.num_layers());
  if (plan.setting == compress::Setting::kBaseline) return;

  for (int64_t i = plan.first_layer; i < plan.first_layer + plan.count; ++i) {
    owned_.push_back(make(gen, error_feedback));
    compress::Compressor* attn = owned_.back().get();
    owned_.push_back(make(gen, error_feedback));
    compress::Compressor* mlp = owned_.back().get();
    model_.set_layer_compression(i, attn, mlp);
  }
  for (int64_t b : pipeline_boundaries(model.num_layers(), pp_degree)) {
    if (!plan.compresses(b)) continue;
    owned_.push_back(make(gen, error_feedback));
    model_.set_boundary_compression(b, owned_.back().get());
    boundary_layers_.push_back(b);
  }
}

CompressionBinder::~CompressionBinder() {
  for (int64_t i = plan_.first_layer; i < plan_.first_layer + plan_.count; ++i) {
    if (i < model_.num_layers()) model_.set_layer_compression(i, nullptr, nullptr);
  }
  for (int64_t b : boundary_layers_) model_.set_boundary_compression(b, nullptr);
}

std::vector<autograd::Variable> CompressionBinder::codec_parameters() const {
  std::vector<autograd::Variable> out;
  for (const auto& c : owned_) {
    for (auto& p : c->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<nn::NamedParam> CompressionBinder::named_codec_parameters() const {
  std::vector<nn::NamedParam> out;
  for (size_t i = 0; i < owned_.size(); ++i) {
    auto params = owned_[i]->parameters();
    for (size_t j = 0; j < params.size(); ++j) {
      out.emplace_back("codec" + std::to_string(i) + ".param" + std::to_string(j),
                       params[j]);
    }
  }
  return out;
}

}  // namespace actcomp::core
