#include "core/compression_plan.h"

#include "tensor/check.h"

namespace actcomp::core {

CompressionPlan CompressionPlan::last_n(compress::Setting s, int64_t total,
                                        int64_t n) {
  ACTCOMP_CHECK(n >= 0 && n <= total,
                "cannot compress " << n << " of " << total << " layers");
  return {s, total - n, n};
}

CompressionPlan CompressionPlan::paper_default(compress::Setting s, int64_t total) {
  return last_n(s, total, total / 2);
}

CompressionPlan CompressionPlan::window(compress::Setting s, int64_t first,
                                        int64_t n) {
  ACTCOMP_CHECK(first >= 0 && n >= 0, "invalid compression window");
  return {s, first, n};
}

CompressionPlan CompressionPlan::none() {
  return {compress::Setting::kBaseline, 0, 0};
}

}  // namespace actcomp::core
