// Runtime CPU dispatch for the SIMD kernel layer (DESIGN.md §15).
//
// The kernel tier is picked once, at first use: cpuid (via
// __builtin_cpu_supports) decides the widest tier the host can run, and the
// ACTCOMP_SIMD env var (scalar|avx2|avx512) can force a narrower one for
// testing and benchmarking. A forced tier is always clamped to what the
// host actually supports — asking for avx512 on an AVX2 box silently runs
// the AVX2 tier, so a stray env var can never SIGILL.
//
// Every tier computes bit-identical results for finite inputs (the
// contract the per-ISA kernels in tensor/kernels are written against), so
// switching tiers moves throughput, never bytes.
#pragma once

namespace actcomp::core {

/// Kernel tiers, narrowest to widest. Values are contiguous and used as
/// indices into the dispatch table.
enum class SimdIsa { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// The active tier: min(detected, ACTCOMP_SIMD override, set_simd_isa()).
SimdIsa simd_isa();

/// The widest tier the host supports, ignoring overrides.
SimdIsa detected_simd_isa();

/// Test/bench hook: force the active tier (clamped to detected). Not safe
/// to call concurrently with in-flight kernels.
void set_simd_isa(SimdIsa isa);

/// "scalar", "avx2", or "avx512".
const char* simd_isa_name(SimdIsa isa);

/// The raw ACTCOMP_SIMD env value, or "" when unset.
const char* simd_override();

}  // namespace actcomp::core
