#include "core/threadpool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/profiler.h"
#include "obs/registry.h"

namespace actcomp::core {

namespace {

// Set while a pool worker is executing chunks; nested parallel_for calls on
// such a thread run inline instead of re-entering the pool.
thread_local bool t_in_worker = false;

int env_threads() {
  const char* env = std::getenv("ACTCOMP_THREADS");
  long v = 0;
  if (env != nullptr && *env != '\0') v = std::strtol(env, nullptr, 10);
  if (v <= 0) v = static_cast<long>(std::thread::hardware_concurrency());
  return static_cast<int>(std::clamp<long>(v, 1, 256));
}

// One parallel_for invocation. Chunks are claimed by atomic increment of
// `next`; completion is tracked so the submitting thread can block until the
// job drains even when workers are still finishing their last chunk.
struct Job {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 1;
  int64_t nchunks = 0;
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  /// Submitter's profiler zone: workers adopt it while running this job's
  /// chunks, so zones opened inside chunk bodies nest under the call site
  /// regardless of which thread executes them (obs/profiler.h).
  uint32_t profile_ctx = 0;

  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  std::atomic<bool> cancelled{false};

  std::mutex mu;
  std::condition_variable drained;
  std::exception_ptr error;

  // Claim and run chunks until none are left. Returns when this thread can
  // take no more work (other threads may still be running their chunk).
  void work() {
    obs::ZoneContext prof_ctx(profile_ctx);
    for (;;) {
      const int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) return;
      if (!cancelled.load(std::memory_order_relaxed)) {
        const int64_t b = begin + c * grain;
        const int64_t e = std::min(end, b + grain);
        try {
          (*fn)(b, e);
        } catch (...) {
          cancelled.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(mu);
          if (!error) error = std::current_exception();
        }
      }
      finish_chunk();
    }
  }

  void finish_chunk() {
    if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == nchunks) {
      std::lock_guard<std::mutex> lock(mu);  // pair with the wait's predicate
      drained.notify_all();
    }
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    drained.wait(lock, [&] { return done.load(std::memory_order_acquire) == nchunks; });
    if (error) std::rethrow_exception(error);
  }
};

class ThreadPool {
 public:
  explicit ThreadPool(int lanes) { start(lanes); }
  ~ThreadPool() { stop(); }

  static ThreadPool& instance() {
    static ThreadPool pool(env_threads());
    return pool;
  }

  int lanes() const { return lanes_; }

  void resize(int lanes) {
    stop();
    start(std::max(1, lanes));
  }

  void submit_and_wait(const std::shared_ptr<Job>& job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.push_back(job);
    }
    cv_.notify_all();
    job->work();  // the caller is a lane too
    job->wait();
    std::lock_guard<std::mutex> lock(mu_);
    std::erase(jobs_, job);
  }

 private:
  void start(int lanes) {
    lanes_ = lanes;
    stopping_ = false;
    obs::Registry::instance().gauge("core.pool.lanes").set(lanes);
    for (int i = 0; i < lanes - 1; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
  }

  // The first queued job that still has unclaimed chunks (exhausted jobs
  // linger until their submitter erases them). Caller must hold mu_.
  std::shared_ptr<Job> claimable_job() const {
    for (const auto& j : jobs_) {
      if (j->next.load(std::memory_order_relaxed) < j->nchunks) return j;
    }
    return nullptr;
  }

  void worker_loop() {
    t_in_worker = true;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return stopping_ || (job = claimable_job()) != nullptr;
        });
        if (stopping_) return;
      }
      job->work();
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::shared_ptr<Job>> jobs_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  int lanes_ = 1;
};

}  // namespace

int num_threads() { return ThreadPool::instance().lanes(); }

void set_num_threads(int n) { ThreadPool::instance().resize(n); }

namespace detail {

void parallel_chunks(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t n = end - begin;
  const int64_t nchunks = (n + grain - 1) / grain;

  // Opened on BOTH the inline and the pooled path, so the zone tree is a
  // pure function of the call pattern — a 4-lane and a 1-lane run aggregate
  // to identical snapshots (same paths, same counts), which obs_test pins.
  ACTCOMP_PROFILE("core.parallel_for");

  ThreadPool& pool = ThreadPool::instance();
  if (t_in_worker || pool.lanes() == 1 || nchunks == 1) {
    // Inline path: identical chunk boundaries, sequential execution. Nested
    // calls land here, so nesting can neither deadlock nor oversubscribe.
    static obs::Counter& inline_runs =
        obs::Registry::instance().counter("core.pool.inline_runs");
    inline_runs.add();
    for (int64_t c = 0; c < nchunks; ++c) {
      const int64_t b = begin + c * grain;
      fn(b, std::min(end, b + grain));
    }
    return;
  }

  static obs::Counter& pooled_jobs =
      obs::Registry::instance().counter("core.pool.jobs");
  static obs::Counter& pooled_chunks =
      obs::Registry::instance().counter("core.pool.chunks");
  static obs::Histogram& job_chunks =
      obs::Registry::instance().histogram("core.pool.chunks_per_job");
  pooled_jobs.add();
  pooled_chunks.add(nchunks);
  job_chunks.observe(static_cast<double>(nchunks));

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->nchunks = nchunks;
  job->fn = &fn;
  job->profile_ctx = obs::current_zone_id();
  pool.submit_and_wait(job);
}

}  // namespace detail

}  // namespace actcomp::core
