// CompressionBinder: instantiate a CompressionPlan on a real BertModel.
//
// For every compressed layer it creates *independent* compressor instances
// for the two tensor-parallel communication points (the paper keeps one
// learnable codec per layer), and for every pipeline-stage boundary that
// falls inside the compressed window it creates a boundary compressor
// (Fig. 3's inter-stage C/DC pair). The binder owns the compressors and
// detaches them from the model on destruction.
#pragma once

#include <memory>
#include <vector>

#include "compress/compressor.h"
#include "core/compression_plan.h"
#include "nn/bert.h"
#include "tensor/random.h"

namespace actcomp::core {

class CompressionBinder {
 public:
  /// `pp_degree` determines where pipeline-stage boundaries fall (layers are
  /// split into pp_degree equal stages, Megatron's balanced assignment).
  CompressionBinder(nn::BertModel& model, const CompressionPlan& plan,
                    int64_t pp_degree, tensor::Generator& gen,
                    bool error_feedback = false);
  ~CompressionBinder();

  CompressionBinder(const CompressionBinder&) = delete;
  CompressionBinder& operator=(const CompressionBinder&) = delete;

  const CompressionPlan& plan() const { return plan_; }

  /// Trainable codec parameters (non-empty only for AE settings); the
  /// trainer adds these to the optimizer.
  std::vector<autograd::Variable> codec_parameters() const;

  /// Codec parameters as named tensors (for checkpointing them separately
  /// from the model, so fine-tuning can drop them — Takeaway 5).
  std::vector<nn::NamedParam> named_codec_parameters() const;

  /// Number of compressor instances created (TP points + PP boundaries).
  int64_t num_compression_points() const {
    return static_cast<int64_t>(owned_.size());
  }

 private:
  compress::CompressorPtr make(tensor::Generator& gen, bool error_feedback);

  nn::BertModel& model_;
  CompressionPlan plan_;
  std::vector<compress::CompressorPtr> owned_;
  std::vector<int64_t> boundary_layers_;
};

/// Layer indices after which a pipeline-stage boundary sits, for `total`
/// layers split into `pp_degree` balanced stages (e.g. 24 layers, pp=4 ->
/// boundaries after layers 5, 11, 17).
std::vector<int64_t> pipeline_boundaries(int64_t total_layers, int64_t pp_degree);

}  // namespace actcomp::core
