#include "parallel/mp_simulator.h"

#include <algorithm>

#include "compress/compressor.h"
#include "sim/collectives.h"
#include "tensor/check.h"

namespace actcomp::parallel {

namespace cp = actcomp::compress;
namespace sm = actcomp::sim;

namespace {

bool is_quant(cp::Setting s) {
  return s == cp::Setting::kQ1 || s == cp::Setting::kQ2 || s == cp::Setting::kQ3;
}
bool is_ae(cp::Setting s) {
  return s == cp::Setting::kA1 || s == cp::Setting::kA2;
}

/// Wire bytes for one compressed activation message of `numel` elements.
int64_t wire_bytes(cp::Setting s, int64_t numel, int64_t hidden) {
  switch (s) {
    case cp::Setting::kBaseline:
      return numel * 2;
    case cp::Setting::kA1:
    case cp::Setting::kA2:
      return numel / hidden * cp::ae_code_size(s, hidden) * 2;
    case cp::Setting::kT1:
    case cp::Setting::kT2:
    case cp::Setting::kT3:
    case cp::Setting::kT4:
    case cp::Setting::kR1:
    case cp::Setting::kR2:
    case cp::Setting::kR3:
    case cp::Setting::kR4:
      return sm::OverheadModel::kept_elements(s, numel) *
             cp::kSparseBytesPerElement;
    case cp::Setting::kQ1:
    case cp::Setting::kQ2:
    case cp::Setting::kQ3: {
      const int bits = cp::quant_bits(s);
      const int64_t rows = numel / hidden;
      return (numel * bits + 7) / 8 + rows * 4;
    }
  }
  ACTCOMP_ASSERT(false, "unreachable setting");
}

/// Bytes of the backward (gradient) message crossing a compressed pipeline
/// boundary. Sparse and AE gradients shrink with the forward message; the
/// quantized path does NOT (paper §3.3: the backward engine only supports
/// float gradients, so the gradient stays activation-sized).
int64_t backward_wire_bytes(cp::Setting s, int64_t numel, int64_t hidden) {
  if (s == cp::Setting::kBaseline || is_quant(s)) return numel * 2;
  return wire_bytes(s, numel, hidden);
}

}  // namespace

ModelParallelSimulator::ModelParallelSimulator(sim::ClusterSpec cluster,
                                               nn::BertConfig model,
                                               ParallelConfig parallel,
                                               TrainJob job,
                                               sim::ScheduleKind schedule)
    : cluster_(std::move(cluster)),
      model_(model),
      parallel_(parallel),
      job_(job),
      schedule_(schedule) {
  ACTCOMP_CHECK(parallel_.tp >= 1 && parallel_.pp >= 1, "bad parallel degrees");
  ACTCOMP_CHECK(parallel_.tp * parallel_.pp == cluster_.total_gpus(),
                "tp*pp = " << parallel_.tp * parallel_.pp << " != cluster GPUs "
                           << cluster_.total_gpus());
  ACTCOMP_CHECK(model_.num_layers % parallel_.pp == 0,
                "layers " << model_.num_layers << " not divisible by pp "
                          << parallel_.pp);
  ACTCOMP_CHECK(job_.micro_batch > 0 && job_.num_micro > 0 && job_.seq > 0,
                "bad train job");
  overhead_.gpu = cluster_.gpu;
}

const sim::LinkSpec& ModelParallelSimulator::tp_link() const {
  // TP inside the node when it fits; otherwise it spills over the network.
  return parallel_.tp <= cluster_.gpus_per_node ? cluster_.intra_node
                                                : cluster_.inter_node;
}

const sim::LinkSpec& ModelParallelSimulator::boundary_link(int boundary) const {
  // Stage s occupies global GPUs [s*tp, (s+1)*tp); the boundary crosses
  // nodes iff the adjacent stages' lead GPUs live on different nodes.
  const int gpu_a = boundary * parallel_.tp;
  const int gpu_b = (boundary + 1) * parallel_.tp;
  const int node_a = gpu_a / cluster_.gpus_per_node;
  const int node_b = gpu_b / cluster_.gpus_per_node;
  return node_a == node_b ? cluster_.intra_node : cluster_.inter_node;
}

double ModelParallelSimulator::boundary_parallelism(int boundary) const {
  const bool cross_node =
      &boundary_link(boundary) == &cluster_.inter_node;
  if (cross_node) return 1.0;            // slices share one NIC
  if (!cluster_.has_nvlink) return 1.0;  // slices share one PCIe bridge
  return static_cast<double>(parallel_.tp);  // parallel NVLink lanes
}

int64_t ModelParallelSimulator::parameter_count(const nn::BertConfig& cfg) {
  // Per layer: QKV+output projections 4h^2 + MLP 8h^2 + biases/LN ~ 13h.
  const int64_t per_layer = 12 * cfg.hidden * cfg.hidden + 13 * cfg.hidden;
  return cfg.num_layers * per_layer + (cfg.vocab_size + cfg.max_seq) * cfg.hidden;
}

IterationBreakdown ModelParallelSimulator::run(
    const core::CompressionPlan& plan) const {
  const int tp = parallel_.tp;
  const int pp = parallel_.pp;
  const int64_t h = model_.hidden;
  const int64_t b = job_.micro_batch;
  const int64_t s = job_.seq;
  const int64_t layers_per_stage = model_.num_layers / pp;
  const int64_t msg_numel = b * s * h;  // one all-reduce / boundary tensor

  // Paper §4.7 / Narayanan et al.: FLOPs (fwd+bwd) per layer per micro-batch.
  const double layer_total_flops =
      96.0 * static_cast<double>(b) * static_cast<double>(s) *
          static_cast<double>(h) * static_cast<double>(h) +
      16.0 * static_cast<double>(b) * static_cast<double>(s) *
          static_cast<double>(s) * static_cast<double>(h);
  const double layer_fwd_flops = layer_total_flops / 3.0;
  const double layer_bwd_flops = 2.0 * layer_total_flops / 3.0;

  sm::PipelineCosts costs;
  costs.micro_batches = static_cast<int>(job_.num_micro);
  costs.fwd_ms.assign(static_cast<size_t>(pp), 0.0);
  costs.bwd_ms.assign(static_cast<size_t>(pp), 0.0);
  costs.p2p_fwd_ms.assign(static_cast<size_t>(pp - 1), 0.0);
  costs.p2p_bwd_ms.assign(static_cast<size_t>(pp - 1), 0.0);

  std::vector<double> stage_enc(static_cast<size_t>(pp), 0.0);
  std::vector<double> stage_dec(static_cast<size_t>(pp), 0.0);
  std::vector<double> stage_tp_comm(static_cast<size_t>(pp), 0.0);

  const sim::LinkSpec& tpl = tp_link();
  const cp::Setting setting = plan.setting;

  for (int stage = 0; stage < pp; ++stage) {
    double fwd = 0.0, bwd = 0.0, enc = 0.0, dec = 0.0, comm = 0.0;
    for (int64_t l = stage * layers_per_stage; l < (stage + 1) * layers_per_stage;
         ++l) {
      fwd += cluster_.gpu.compute_ms(layer_fwd_flops / tp);
      bwd += cluster_.gpu.compute_ms(layer_bwd_flops / tp);
      if (tp > 1) {
        // Two forward all-reduces (attention out, MLP out) — the compressible
        // points — and two backward all-reduces (input grads), never
        // compressed.
        const bool comp = plan.compresses(l);
        for (int point = 0; point < 2; ++point) {
          if (!comp) {
            comm += sm::allreduce_ms(msg_numel * 2, tp, tpl);
          } else if (is_ae(setting)) {
            fwd += overhead_.dispatch_ms;  // outside the enc/dec timers
            enc += overhead_.encode_ms(setting, msg_numel, h);
            comm += sm::allreduce_ms(wire_bytes(setting, msg_numel, h), tp, tpl);
            dec += overhead_.decode_ms(setting, msg_numel, h);
          } else {
            // Multi-tensor wire formats cannot ride all-reduce (§3.2):
            // all-gather, then every rank decodes all tp messages.
            fwd += overhead_.dispatch_ms;
            enc += overhead_.encode_ms(setting, msg_numel, h);
            comm += sm::allgather_ms(wire_bytes(setting, msg_numel, h), tp, tpl);
            dec += overhead_.decode_ms(setting, msg_numel, h, tp);
          }
        }
        comm += 2.0 * sm::allreduce_ms(msg_numel * 2, tp, tpl);  // backward
        if (comp) bwd += 2.0 * overhead_.backward_extra_ms(setting, msg_numel, h);
      }
    }
    // TP comm and codec work happen inside the forward/backward steps.
    const double fwd_comm_share = tp > 1 ? comm / 2.0 : 0.0;  // fwd all-reduces
    costs.fwd_ms[static_cast<size_t>(stage)] = fwd + fwd_comm_share + enc + dec;
    costs.bwd_ms[static_cast<size_t>(stage)] = bwd + (comm - fwd_comm_share);
    stage_enc[static_cast<size_t>(stage)] = enc;
    stage_dec[static_cast<size_t>(stage)] = dec;
    stage_tp_comm[static_cast<size_t>(stage)] = comm;
  }

  // Pipeline boundaries. The activation leaving stage `st` feeds the first
  // layer of stage st+1; it is compressed iff that consumer layer is in the
  // plan window (matches the paper's Table 9, where with the last 12 of 24
  // layers compressed and pp=4, boundaries 1<->2 and 2<->3 shrink but 0<->1
  // does not).
  for (int bd = 0; bd + 1 < pp; ++bd) {
    const int64_t consumer_layer = static_cast<int64_t>(bd + 1) * layers_per_stage;
    const bool comp = plan.compresses(consumer_layer);
    const sim::LinkSpec& link = boundary_link(bd);
    const double par = boundary_parallelism(bd);

    const int64_t fwd_bytes =
        comp ? wire_bytes(setting, msg_numel, h) : msg_numel * 2;
    const int64_t bwd_bytes =
        comp ? backward_wire_bytes(setting, msg_numel, h) : msg_numel * 2;
    costs.p2p_fwd_ms[static_cast<size_t>(bd)] =
        sm::p2p_ms(static_cast<int64_t>(static_cast<double>(fwd_bytes) / par), link);
    costs.p2p_bwd_ms[static_cast<size_t>(bd)] =
        sm::p2p_ms(static_cast<int64_t>(static_cast<double>(bwd_bytes) / par), link);

    if (comp) {
      // Sender encodes at the end of its forward; receiver decodes at the
      // start of its forward.
      const double e = overhead_.encode_ms(setting, msg_numel, h);
      const double d = overhead_.decode_ms(setting, msg_numel, h);
      costs.fwd_ms[static_cast<size_t>(bd)] += e + overhead_.dispatch_ms / 2;
      costs.fwd_ms[static_cast<size_t>(bd + 1)] += d + overhead_.dispatch_ms / 2;
      stage_enc[static_cast<size_t>(bd)] += e;
      stage_dec[static_cast<size_t>(bd + 1)] += d;
    }
  }

  const sm::PipelineResult pres = sm::simulate_pipeline(costs, schedule_);

  IterationBreakdown out;
  out.makespan_ms = pres.makespan_ms;
  const int64_t params_per_rank = parameter_count(model_) / (tp * pp);
  // Fused Adam on V100: ~0.04 ns/param plus a fixed launch cost (fitted to
  // the paper's 5-8 ms optimizer rows).
  out.optimizer_ms = 3.0 + static_cast<double>(params_per_rank) * 0.04e-6;

  const double m = static_cast<double>(job_.num_micro);
  for (int stage = 0; stage < pp; ++stage) {
    out.fwd_critical_ms += costs.fwd_ms[static_cast<size_t>(stage)];
    out.bwd_critical_ms += costs.bwd_ms[static_cast<size_t>(stage)];
    out.fwd_busy_max_ms =
        std::max(out.fwd_busy_max_ms, m * costs.fwd_ms[static_cast<size_t>(stage)]);
    out.bwd_busy_max_ms =
        std::max(out.bwd_busy_max_ms, m * costs.bwd_ms[static_cast<size_t>(stage)]);
  }
  // The paper profiles the last pipeline stage's rank (where the compressed
  // layers live under the default last-half plan); report that stage's
  // per-iteration totals.
  out.enc_ms = m * stage_enc[static_cast<size_t>(pp - 1)];
  out.dec_ms = m * stage_dec[static_cast<size_t>(pp - 1)];
  out.tensor_comm_ms = m * stage_tp_comm[static_cast<size_t>(pp - 1)];
  for (int bd = 0; bd + 1 < pp; ++bd) {
    out.boundary_fwd_ms.push_back(m * costs.p2p_fwd_ms[static_cast<size_t>(bd)]);
    out.boundary_bwd_ms.push_back(m * costs.p2p_bwd_ms[static_cast<size_t>(bd)]);
  }
  return out;
}

}  // namespace actcomp::parallel
