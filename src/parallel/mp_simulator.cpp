#include "parallel/mp_simulator.h"

#include <algorithm>
#include <string>

#include "compress/compressor.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "sim/collectives.h"
#include "tensor/check.h"

namespace actcomp::parallel {

namespace cp = actcomp::compress;
namespace sm = actcomp::sim;

namespace {

bool is_quant(cp::Setting s) {
  return s == cp::Setting::kQ1 || s == cp::Setting::kQ2 || s == cp::Setting::kQ3;
}
bool is_ae(cp::Setting s) {
  return s == cp::Setting::kA1 || s == cp::Setting::kA2;
}

/// Wire bytes for one compressed activation message of `numel` elements.
int64_t wire_bytes(cp::Setting s, int64_t numel, int64_t hidden) {
  switch (s) {
    case cp::Setting::kBaseline:
      return numel * 2;
    case cp::Setting::kA1:
    case cp::Setting::kA2:
      return numel / hidden * cp::ae_code_size(s, hidden) * 2;
    case cp::Setting::kT1:
    case cp::Setting::kT2:
    case cp::Setting::kT3:
    case cp::Setting::kT4:
    case cp::Setting::kR1:
    case cp::Setting::kR2:
    case cp::Setting::kR3:
    case cp::Setting::kR4:
      return sm::OverheadModel::kept_elements(s, numel) *
             cp::kSparseBytesPerElement;
    case cp::Setting::kQ1:
    case cp::Setting::kQ2:
    case cp::Setting::kQ3: {
      const int bits = cp::quant_bits(s);
      const int64_t rows = numel / hidden;
      return (numel * bits + 7) / 8 + rows * 4;
    }
  }
  ACTCOMP_ASSERT(false, "unreachable setting");
}

/// Bytes of the backward (gradient) message crossing a compressed pipeline
/// boundary. Sparse and AE gradients shrink with the forward message; the
/// quantized path does NOT (paper §3.3: the backward engine only supports
/// float gradients, so the gradient stays activation-sized).
int64_t backward_wire_bytes(cp::Setting s, int64_t numel, int64_t hidden) {
  if (s == cp::Setting::kBaseline || is_quant(s)) return numel * 2;
  return wire_bytes(s, numel, hidden);
}

}  // namespace

obs::PhaseBreakdown IterationBreakdown::phase_breakdown(
    obs::Accounting accounting) const {
  const bool ft = accounting == obs::Accounting::kFinetune;
  obs::PhaseBreakdown b;
  b.forward_ms = ft ? fwd_critical_ms : fwd_busy_max_ms;
  b.backward_ms = ft ? bwd_critical_ms : bwd_busy_max_ms;
  b.optimizer_ms = optimizer_ms;
  b.waiting_ms = ft ? waiting_finetune_ms() : waiting_pretrain_ms();
  b.total_ms = total_ms();
  b.encode_ms = enc_ms;
  b.decode_ms = dec_ms;
  b.tensor_comm_ms = tensor_comm_ms;
  return b;
}

ModelParallelSimulator::ModelParallelSimulator(sim::ClusterSpec cluster,
                                               nn::BertConfig model,
                                               ParallelConfig parallel,
                                               TrainJob job,
                                               sim::ScheduleKind schedule)
    : ModelParallelSimulator(std::move(cluster), model, parallel, job,
                             SimOptions{schedule, 1, false, false}) {}

ModelParallelSimulator::ModelParallelSimulator(sim::ClusterSpec cluster,
                                               nn::BertConfig model,
                                               ParallelConfig parallel,
                                               TrainJob job, SimOptions options)
    : cluster_(std::move(cluster)),
      model_(model),
      parallel_(parallel),
      job_(job),
      options_(options) {
  cluster_.validate();
  ACTCOMP_CHECK(parallel_.tp >= 1 && parallel_.pp >= 1 && parallel_.dp >= 1,
                "bad parallel degrees");
  ACTCOMP_CHECK(parallel_.tp * parallel_.pp * parallel_.dp == cluster_.total_gpus(),
                "tp*pp*dp = " << parallel_.tp * parallel_.pp * parallel_.dp
                              << " != cluster GPUs " << cluster_.total_gpus());
  ACTCOMP_CHECK(model_.num_layers % parallel_.pp == 0,
                "layers " << model_.num_layers << " not divisible by pp "
                          << parallel_.pp);
  ACTCOMP_CHECK(job_.micro_batch > 0 && job_.num_micro > 0 && job_.seq > 0,
                "bad train job");
  const int v = options_.virtual_stages;
  if (options_.schedule == sim::ScheduleKind::kInterleaved1F1B) {
    ACTCOMP_CHECK(v >= 2, "interleaved 1F1B needs virtual_stages >= 2");
    ACTCOMP_CHECK(
        model_.num_layers % (parallel_.pp * static_cast<int64_t>(v)) == 0,
        "layers " << model_.num_layers << " not divisible by pp*v = "
                  << parallel_.pp * v);
    ACTCOMP_CHECK(job_.num_micro % parallel_.pp == 0,
                  "interleaved 1F1B needs num_micro divisible by pp");
  } else {
    ACTCOMP_CHECK(v == 1,
                  "virtual_stages > 1 requires ScheduleKind::kInterleaved1F1B");
  }
  if (options_.lossless_wire.enabled) {
    ACTCOMP_CHECK(v == 1,
                  "lossless_wire models one message per boundary crossing and "
                  "is only supported with virtual_stages == 1");
    ACTCOMP_CHECK(options_.lossless_wire.ratio > 0.0 &&
                      options_.lossless_wire.ratio <= 1.0,
                  "lossless_wire.ratio must be in (0, 1], got "
                      << options_.lossless_wire.ratio);
    ACTCOMP_CHECK(options_.lossless_wire.chunks >= 1,
                  "lossless_wire.chunks must be >= 1, got "
                      << options_.lossless_wire.chunks);
  }
  overhead_.gpu = cluster_.gpu;
}

const sim::LinkSpec& ModelParallelSimulator::tp_link() const {
  // TP inside the node when it fits; otherwise it spills over the network.
  return parallel_.tp <= cluster_.gpus_per_node ? cluster_.intra_node
                                                : cluster_.inter_node;
}

const sim::LinkSpec& ModelParallelSimulator::boundary_link(int boundary) const {
  // Stage s occupies global GPUs [s*tp, (s+1)*tp); the boundary crosses
  // nodes iff the adjacent stages' lead GPUs live on different nodes.
  return boundary_cross_node(boundary) ? cluster_.inter_node
                                       : cluster_.intra_node;
}

bool ModelParallelSimulator::boundary_cross_node(int boundary) const {
  const int gpu_a = boundary * parallel_.tp;
  const int gpu_b = (boundary + 1) * parallel_.tp;
  return gpu_a / cluster_.gpus_per_node != gpu_b / cluster_.gpus_per_node;
}

double ModelParallelSimulator::boundary_parallelism(int boundary) const {
  if (boundary_cross_node(boundary)) return 1.0;  // slices share one NIC
  if (!cluster_.has_nvlink) return 1.0;  // slices share one PCIe bridge
  return static_cast<double>(parallel_.tp);  // parallel NVLink lanes
}

void ModelParallelSimulator::dp_group_shape(int* intra, int* inter) const {
  const int mp = parallel_.tp * parallel_.pp;
  int in_node = std::min(parallel_.dp, std::max(1, cluster_.gpus_per_node / mp));
  // Keep the two-level split exact; a ragged fit degenerates to all-inter.
  if (parallel_.dp % in_node != 0) in_node = 1;
  *intra = in_node;
  *inter = parallel_.dp / in_node;
}

int64_t ModelParallelSimulator::parameter_count(const nn::BertConfig& cfg) {
  // Per layer: QKV+output projections 4h^2 + MLP 8h^2 + biases/LN ~ 13h.
  const int64_t per_layer = 12 * cfg.hidden * cfg.hidden + 13 * cfg.hidden;
  return cfg.num_layers * per_layer + (cfg.vocab_size + cfg.max_seq) * cfg.hidden;
}

IterationBreakdown ModelParallelSimulator::run(
    const core::CompressionPlan& plan) const {
  ACTCOMP_PROFILE("parallel.mp_sim.run");
  const int tp = parallel_.tp;
  const int pp = parallel_.pp;
  const int64_t h = model_.hidden;
  const int64_t b = job_.micro_batch;
  const int64_t s = job_.seq;
  const int64_t layers_per_stage = model_.num_layers / pp;
  const int64_t msg_numel = b * s * h;  // one all-reduce / boundary tensor

  // Paper §4.7 / Narayanan et al.: FLOPs (fwd+bwd) per layer per micro-batch.
  const double layer_total_flops =
      96.0 * static_cast<double>(b) * static_cast<double>(s) *
          static_cast<double>(h) * static_cast<double>(h) +
      16.0 * static_cast<double>(b) * static_cast<double>(s) *
          static_cast<double>(s) * static_cast<double>(h);
  const double layer_fwd_flops = layer_total_flops / 3.0;
  const double layer_bwd_flops = 2.0 * layer_total_flops / 3.0;

  sm::PipelineCosts costs;
  costs.micro_batches = static_cast<int>(job_.num_micro);
  costs.fwd_ms.assign(static_cast<size_t>(pp), 0.0);
  costs.bwd_ms.assign(static_cast<size_t>(pp), 0.0);
  costs.p2p_fwd_ms.assign(static_cast<size_t>(pp - 1), 0.0);
  costs.p2p_bwd_ms.assign(static_cast<size_t>(pp - 1), 0.0);

  std::vector<double> stage_enc(static_cast<size_t>(pp), 0.0);
  std::vector<double> stage_dec(static_cast<size_t>(pp), 0.0);
  std::vector<double> stage_tp_comm(static_cast<size_t>(pp), 0.0);
  // Per-micro-batch bytes crossing each pipeline boundary (summed over
  // chunks under interleaving); flushed into per-link counters at the end.
  std::vector<int64_t> link_fwd_bytes(static_cast<size_t>(pp > 0 ? pp - 1 : 0), 0);
  std::vector<int64_t> link_bwd_bytes(link_fwd_bytes.size(), 0);

  const sim::LinkSpec& tpl = tp_link();
  const cp::Setting setting = plan.setting;

  // Lossless wire stage (ZipCCL-style link shim, DESIGN.md §16): the
  // collective keeps its algorithm, its payload shrinks by the measured
  // ratio, and each endpoint pays one encode + one decode at the measured
  // GB/s — chunk-pipelined against the transfer. The codec time is INSIDE
  // the returned span (it serializes into comm / p2p durations); the
  // stage_ll_* accumulators only report it. Disabled takes none of these
  // branches, so the pre-existing arithmetic is reproduced bit for bit.
  const sm::LosslessWireSpec& lw = options_.lossless_wire;
  std::vector<double> stage_ll_enc(static_cast<size_t>(pp), 0.0);
  std::vector<double> stage_ll_dec(static_cast<size_t>(pp), 0.0);
  auto ll_bytes = [&](int64_t raw) { return sm::lossless_wire_bytes(raw, lw); };
  auto ll_collective = [&](double coll_ms, int64_t raw_bytes, double* e_acc,
                           double* d_acc) {
    const double e = sm::codec_ms(raw_bytes, lw.encode_gb_s);
    const double d = sm::codec_ms(raw_bytes, lw.decode_gb_s);
    *e_acc += e;
    *d_acc += d;
    return sm::chunk_pipelined_ms(e, coll_ms, d, lw.chunks);
  };

  for (int stage = 0; stage < pp; ++stage) {
    double fwd = 0.0, bwd = 0.0, enc = 0.0, dec = 0.0, comm = 0.0;
    double ll_e = 0.0, ll_d = 0.0;
    for (int64_t l = stage * layers_per_stage; l < (stage + 1) * layers_per_stage;
         ++l) {
      fwd += cluster_.gpu.compute_ms(layer_fwd_flops / tp);
      bwd += cluster_.gpu.compute_ms(layer_bwd_flops / tp);
      if (tp > 1) {
        // Two forward all-reduces (attention out, MLP out) — the compressible
        // points — and two backward all-reduces (input grads), never
        // compressed.
        const bool comp = plan.compresses(l);
        for (int point = 0; point < 2; ++point) {
          if (!comp) {
            if (!lw.enabled) {
              comm += sm::allreduce_ms(msg_numel * 2, tp, tpl);
            } else {
              comm += ll_collective(
                  sm::allreduce_ms(ll_bytes(msg_numel * 2), tp, tpl),
                  msg_numel * 2, &ll_e, &ll_d);
            }
          } else if (is_ae(setting)) {
            fwd += overhead_.dispatch_ms;  // outside the enc/dec timers
            enc += overhead_.encode_ms(setting, msg_numel, h);
            const int64_t w = wire_bytes(setting, msg_numel, h);
            if (!lw.enabled) {
              comm += sm::allreduce_ms(w, tp, tpl);
            } else {
              comm += ll_collective(sm::allreduce_ms(ll_bytes(w), tp, tpl), w,
                                    &ll_e, &ll_d);
            }
            dec += overhead_.decode_ms(setting, msg_numel, h);
          } else {
            // Multi-tensor wire formats cannot ride all-reduce (§3.2):
            // all-gather, then every rank decodes all tp messages.
            fwd += overhead_.dispatch_ms;
            enc += overhead_.encode_ms(setting, msg_numel, h);
            const int64_t w = wire_bytes(setting, msg_numel, h);
            if (!lw.enabled) {
              comm += sm::allgather_ms(w, tp, tpl);
            } else {
              comm += ll_collective(sm::allgather_ms(ll_bytes(w), tp, tpl), w,
                                    &ll_e, &ll_d);
            }
            dec += overhead_.decode_ms(setting, msg_numel, h, tp);
          }
        }
        if (!lw.enabled) {
          comm += 2.0 * sm::allreduce_ms(msg_numel * 2, tp, tpl);  // backward
        } else {
          // Two identical backward all-reduces. Summing the pair before the
          // += keeps the neutral spec (ratio 1, free codecs, chunks 1)
          // bit-identical to the `2.0 *` form above: a + a == 2.0 * a in
          // IEEE, whereas (comm += a) twice rounds differently.
          const double ar = sm::allreduce_ms(ll_bytes(msg_numel * 2), tp, tpl);
          comm += ll_collective(ar, msg_numel * 2, &ll_e, &ll_d) +
                  ll_collective(ar, msg_numel * 2, &ll_e, &ll_d);
        }
        if (comp) bwd += 2.0 * overhead_.backward_extra_ms(setting, msg_numel, h);
      }
    }
    // TP comm and codec work happen inside the forward/backward steps.
    const double fwd_comm_share = tp > 1 ? comm / 2.0 : 0.0;  // fwd all-reduces
    costs.fwd_ms[static_cast<size_t>(stage)] = fwd + fwd_comm_share + enc + dec;
    costs.bwd_ms[static_cast<size_t>(stage)] = bwd + (comm - fwd_comm_share);
    stage_enc[static_cast<size_t>(stage)] = enc;
    stage_dec[static_cast<size_t>(stage)] = dec;
    stage_tp_comm[static_cast<size_t>(stage)] = comm;
    stage_ll_enc[static_cast<size_t>(stage)] += ll_e;
    stage_ll_dec[static_cast<size_t>(stage)] += ll_d;
  }

  // Pipeline boundaries. The activation leaving stage `st` feeds the first
  // layer of stage st+1; it is compressed iff that consumer layer is in the
  // plan window (matches the paper's Table 9, where with the last 12 of 24
  // layers compressed and pp=4, boundaries 1<->2 and 2<->3 shrink but 0<->1
  // does not).
  const int v = options_.virtual_stages;
  if (options_.link_contention) {
    // Engine-level contention: the boundary tensor moves as tp
    // scatter-gather slices over the link's lanes (tp parallel NVLink
    // lanes, or a single shared NIC / PCIe lane), so slice launch latency
    // and cross-micro-batch queuing are simulated instead of approximated.
    costs.boundary_shape.resize(static_cast<size_t>(pp - 1));
    for (int bd = 0; bd + 1 < pp; ++bd) {
      auto& shape = costs.boundary_shape[static_cast<size_t>(bd)];
      shape.slices = tp;
      shape.lanes =
          (boundary_cross_node(bd) || !cluster_.has_nvlink) ? 1 : tp;
    }
  }
  // p2p duration of one transfer (or one slice, under contention).
  auto p2p_cost = [&](int64_t bytes, int bd) {
    const sim::LinkSpec& link = boundary_link(bd);
    if (options_.link_contention) return sm::p2p_ms(bytes / tp, link);
    const double par = boundary_parallelism(bd);
    return sm::p2p_ms(static_cast<int64_t>(static_cast<double>(bytes) / par),
                      link);
  };
  if (v == 1) {
    for (int bd = 0; bd + 1 < pp; ++bd) {
      const int64_t consumer_layer =
          static_cast<int64_t>(bd + 1) * layers_per_stage;
      const bool comp = plan.compresses(consumer_layer);
      const int64_t fwd_bytes =
          comp ? wire_bytes(setting, msg_numel, h) : msg_numel * 2;
      const int64_t bwd_bytes =
          comp ? backward_wire_bytes(setting, msg_numel, h) : msg_numel * 2;
      if (!lw.enabled) {
        costs.p2p_fwd_ms[static_cast<size_t>(bd)] = p2p_cost(fwd_bytes, bd);
        costs.p2p_bwd_ms[static_cast<size_t>(bd)] = p2p_cost(bwd_bytes, bd);
      } else {
        // Sender encodes, link carries the coded bytes, receiver decodes;
        // chunks overlap the three. The whole span rides in the boundary's
        // p2p duration (the engine's transfer op), like the lossy path's
        // closed-form p2p cost.
        const double fe = sm::codec_ms(fwd_bytes, lw.encode_gb_s);
        const double fd = sm::codec_ms(fwd_bytes, lw.decode_gb_s);
        const double be = sm::codec_ms(bwd_bytes, lw.encode_gb_s);
        const double bdd = sm::codec_ms(bwd_bytes, lw.decode_gb_s);
        costs.p2p_fwd_ms[static_cast<size_t>(bd)] = sm::chunk_pipelined_ms(
            fe, p2p_cost(ll_bytes(fwd_bytes), bd), fd, lw.chunks);
        costs.p2p_bwd_ms[static_cast<size_t>(bd)] = sm::chunk_pipelined_ms(
            be, p2p_cost(ll_bytes(bwd_bytes), bd), bdd, lw.chunks);
        stage_ll_enc[static_cast<size_t>(bd)] += fe;
        stage_ll_dec[static_cast<size_t>(bd + 1)] += fd;
        stage_ll_enc[static_cast<size_t>(bd + 1)] += be;
        stage_ll_dec[static_cast<size_t>(bd)] += bdd;
      }
      link_fwd_bytes[static_cast<size_t>(bd)] = ll_bytes(fwd_bytes);
      link_bwd_bytes[static_cast<size_t>(bd)] = ll_bytes(bwd_bytes);

      if (comp) {
        // Sender encodes at the end of its forward; receiver decodes at the
        // start of its forward.
        const double e = overhead_.encode_ms(setting, msg_numel, h);
        const double d = overhead_.decode_ms(setting, msg_numel, h);
        costs.fwd_ms[static_cast<size_t>(bd)] += e + overhead_.dispatch_ms / 2;
        costs.fwd_ms[static_cast<size_t>(bd + 1)] += d + overhead_.dispatch_ms / 2;
        stage_enc[static_cast<size_t>(bd)] += e;
        stage_dec[static_cast<size_t>(bd + 1)] += d;
      }
    }
  } else {
    // Interleaved: each boundary is crossed once per model chunk (and the
    // wrap link between consecutive chunks). The engine charges one p2p
    // duration per boundary, so we average the per-chunk wire sizes — the
    // total traffic is preserved exactly; per-crossing variation within one
    // boundary is smoothed.
    const int64_t layers_per_chunk = model_.num_layers / (pp * v);
    auto transition_bytes = [&](int64_t consumer_layer, bool backward) {
      const bool comp = plan.compresses(consumer_layer);
      if (!comp) return msg_numel * 2;
      return backward ? backward_wire_bytes(setting, msg_numel, h)
                      : wire_bytes(setting, msg_numel, h);
    };
    for (int bd = 0; bd + 1 < pp; ++bd) {
      double fwd_sum = 0.0, bwd_sum = 0.0;
      for (int c = 0; c < v; ++c) {
        const int64_t consumer_layer =
            (static_cast<int64_t>(c) * pp + bd + 1) * layers_per_chunk;
        fwd_sum += static_cast<double>(transition_bytes(consumer_layer, false));
        bwd_sum += static_cast<double>(transition_bytes(consumer_layer, true));
        if (plan.compresses(consumer_layer)) {
          const double e = overhead_.encode_ms(setting, msg_numel, h);
          const double d = overhead_.decode_ms(setting, msg_numel, h);
          costs.fwd_ms[static_cast<size_t>(bd)] +=
              e + overhead_.dispatch_ms / 2;
          costs.fwd_ms[static_cast<size_t>(bd + 1)] +=
              d + overhead_.dispatch_ms / 2;
          stage_enc[static_cast<size_t>(bd)] += e;
          stage_dec[static_cast<size_t>(bd + 1)] += d;
        }
      }
      costs.p2p_fwd_ms[static_cast<size_t>(bd)] =
          p2p_cost(static_cast<int64_t>(fwd_sum / v), bd);
      costs.p2p_bwd_ms[static_cast<size_t>(bd)] =
          p2p_cost(static_cast<int64_t>(bwd_sum / v), bd);
      link_fwd_bytes[static_cast<size_t>(bd)] = static_cast<int64_t>(fwd_sum);
      link_bwd_bytes[static_cast<size_t>(bd)] = static_cast<int64_t>(bwd_sum);
    }
    // Wrap link (stage pp-1 -> stage 0), crossed between chunks c and c+1.
    const bool wrap_cross =
        ((pp - 1) * tp) / cluster_.gpus_per_node != 0;
    const sim::LinkSpec& wrap_link =
        wrap_cross ? cluster_.inter_node : cluster_.intra_node;
    const double wrap_par =
        (wrap_cross || !cluster_.has_nvlink) ? 1.0 : static_cast<double>(tp);
    if (v > 1 && pp > 1) {
      double fwd_sum = 0.0, bwd_sum = 0.0;
      for (int c = 0; c + 1 < v; ++c) {
        const int64_t consumer_layer =
            (static_cast<int64_t>(c) * pp + pp) * layers_per_chunk;
        fwd_sum += static_cast<double>(transition_bytes(consumer_layer, false));
        bwd_sum += static_cast<double>(transition_bytes(consumer_layer, true));
        if (plan.compresses(consumer_layer)) {
          const double e = overhead_.encode_ms(setting, msg_numel, h);
          const double d = overhead_.decode_ms(setting, msg_numel, h);
          costs.fwd_ms[static_cast<size_t>(pp - 1)] +=
              e + overhead_.dispatch_ms / 2;
          costs.fwd_ms[0] += d + overhead_.dispatch_ms / 2;
          stage_enc[static_cast<size_t>(pp - 1)] += e;
          stage_dec[0] += d;
        }
      }
      costs.p2p_wrap_fwd_ms = sm::p2p_ms(
          static_cast<int64_t>(fwd_sum / (v - 1) / wrap_par), wrap_link);
      costs.p2p_wrap_bwd_ms = sm::p2p_ms(
          static_cast<int64_t>(bwd_sum / (v - 1) / wrap_par), wrap_link);
    }
  }

  // Data-parallel axis: dp replicas of the tp*pp grid, coupled by a
  // per-stage gradient all-reduce over the DP group. The group is
  // hierarchical on the cluster — peers inside a node reduce over NVLink,
  // one leader per node rings over the spine-adjusted cross-node link.
  // Gradients may be compressed (dp_grad_setting); codec time is serialized
  // with the collective on the DP link, and the wire-size model is the same
  // one activations use (the gradient shard is priced as a numel-element
  // tensor of hidden-sized rows).
  if (parallel_.dp > 1) {
    costs.dp.replicas = parallel_.dp;
    costs.dp.overlap_grads = options_.dp_overlap_grads;
    const cp::Setting gset = options_.dp_grad_setting;
    const int64_t grad_elems = parameter_count(model_) / (tp * pp);
    int64_t grad_wire = grad_elems * 2;
    double g_enc = 0.0, g_dec = 0.0;
    if (gset != cp::Setting::kBaseline) {
      grad_wire = wire_bytes(gset, grad_elems, h);
      g_enc = overhead_.encode_ms(gset, grad_elems, h);
      g_dec = overhead_.decode_ms(gset, grad_elems, h);
    }
    int dp_intra = 1, dp_inter = 1;
    dp_group_shape(&dp_intra, &dp_inter);
    const sim::LinkSpec cross =
        cluster_.topology.cross_node(cluster_.inter_node, dp_inter);
    const double ar_ms =
        sm::hierarchical_allreduce_ms(grad_wire, dp_intra, dp_inter,
                                      cluster_.intra_node, cross) +
        g_enc + g_dec;
    costs.dp.grad_allreduce_ms.assign(static_cast<size_t>(pp), ar_ms);
  }

  const sm::PipelineResult pres = sm::simulate_pipeline(
      costs, sm::PipelineOptions{options_.schedule, options_.virtual_stages,
                                 options_.overlap, options_.faults});

  IterationBreakdown out;
  out.makespan_ms = pres.makespan_ms;
  out.fault_retries = pres.fault_retries;
  out.fault_retry_ms = pres.fault_retry_ms + pres.fault_backoff_ms;
  out.dp_replicas = pres.dp_replicas;
  out.dp_comm_ms = pres.dp_comm_ms;
  const int64_t params_per_rank = parameter_count(model_) / (tp * pp);
  // Fused Adam on V100: ~0.04 ns/param plus a fixed launch cost (fitted to
  // the paper's 5-8 ms optimizer rows).
  out.optimizer_ms = 3.0 + static_cast<double>(params_per_rank) * 0.04e-6;

  const double m = static_cast<double>(job_.num_micro);
  for (int stage = 0; stage < pp; ++stage) {
    out.fwd_critical_ms += costs.fwd_ms[static_cast<size_t>(stage)];
    out.bwd_critical_ms += costs.bwd_ms[static_cast<size_t>(stage)];
    out.fwd_busy_max_ms =
        std::max(out.fwd_busy_max_ms, m * costs.fwd_ms[static_cast<size_t>(stage)]);
    out.bwd_busy_max_ms =
        std::max(out.bwd_busy_max_ms, m * costs.bwd_ms[static_cast<size_t>(stage)]);
  }
  // The paper profiles the last pipeline stage's rank (where the compressed
  // layers live under the default last-half plan); report that stage's
  // per-iteration totals.
  out.enc_ms = m * stage_enc[static_cast<size_t>(pp - 1)];
  out.dec_ms = m * stage_dec[static_cast<size_t>(pp - 1)];
  out.tensor_comm_ms = m * stage_tp_comm[static_cast<size_t>(pp - 1)];
  out.lossless_enc_ms = m * stage_ll_enc[static_cast<size_t>(pp - 1)];
  out.lossless_dec_ms = m * stage_ll_dec[static_cast<size_t>(pp - 1)];
  for (int bd = 0; bd + 1 < pp; ++bd) {
    out.boundary_fwd_ms.push_back(m * costs.p2p_fwd_ms[static_cast<size_t>(bd)]);
    out.boundary_bwd_ms.push_back(m * costs.p2p_bwd_ms[static_cast<size_t>(bd)]);
  }
  // Bytes-on-wire per link, per iteration simulated. Cumulative across run()
  // calls, so a sweep's report shows the traffic of the whole sweep.
  obs::Registry& reg = obs::Registry::instance();
  for (size_t bd = 0; bd < link_fwd_bytes.size(); ++bd) {
    const std::string base = "parallel.link.b" + std::to_string(bd);
    reg.counter(base + ".fwd_bytes").add(job_.num_micro * link_fwd_bytes[bd]);
    reg.counter(base + ".bwd_bytes").add(job_.num_micro * link_bwd_bytes[bd]);
  }
  return out;
}

InferenceStepCost ModelParallelSimulator::inference_step_cost(
    const core::CompressionPlan& plan, const InferenceBatch& batch) const {
  ACTCOMP_CHECK(batch.seqs >= 1,
                "inference batch needs seqs >= 1, got " << batch.seqs);
  ACTCOMP_CHECK(batch.new_tokens >= 1,
                "inference batch needs new_tokens >= 1, got " << batch.new_tokens);
  ACTCOMP_CHECK(batch.context_tokens >= batch.new_tokens,
                "context_tokens = " << batch.context_tokens << " < new_tokens = "
                                    << batch.new_tokens
                                    << " — every new token attends at least "
                                       "itself");
  const int tp = parallel_.tp;
  const int pp = parallel_.pp;
  const int64_t h = model_.hidden;
  const int64_t layers_per_stage = model_.num_layers / pp;
  // One TP collective moves the new tokens' activations only — the KV cache
  // stays resident on its ranks. This is why decode steps are latency-bound:
  // msg_numel collapses to seqs*h per step.
  const int64_t msg_numel = batch.new_tokens * h;
  // Forward-only FLOPs, the training model's fwd third specialized to
  // incremental attention: GEMMs scale with new tokens, attention with the
  // attended (query, key) pairs.
  const double gemm_flops = 32.0 * static_cast<double>(batch.new_tokens) *
                            static_cast<double>(h) * static_cast<double>(h);
  const double attn_flops =
      16.0 / 3.0 * static_cast<double>(batch.context_tokens) *
      static_cast<double>(h);
  const sim::LinkSpec& tpl = tp_link();
  const cp::Setting setting = plan.setting;

  InferenceStepCost out;
  for (int64_t l = 0; l < model_.num_layers; ++l) {
    out.compute_ms += cluster_.gpu.compute_ms((gemm_flops + attn_flops) / tp);
    if (tp > 1) {
      // The same two compressible forward collectives per layer as training
      // (attention out, MLP out); no backward all-reduces exist here.
      const bool comp = plan.compresses(l);
      for (int point = 0; point < 2; ++point) {
        if (!comp) {
          out.tp_comm_ms += sm::allreduce_ms(msg_numel * 2, tp, tpl);
        } else if (is_ae(setting)) {
          out.dispatch_ms += overhead_.dispatch_ms;
          out.enc_ms += overhead_.encode_ms(setting, msg_numel, h);
          out.tp_comm_ms +=
              sm::allreduce_ms(wire_bytes(setting, msg_numel, h), tp, tpl);
          out.dec_ms += overhead_.decode_ms(setting, msg_numel, h);
        } else {
          out.dispatch_ms += overhead_.dispatch_ms;
          out.enc_ms += overhead_.encode_ms(setting, msg_numel, h);
          out.tp_comm_ms +=
              sm::allgather_ms(wire_bytes(setting, msg_numel, h), tp, tpl);
          out.dec_ms += overhead_.decode_ms(setting, msg_numel, h, tp);
        }
      }
    }
  }
  for (int bd = 0; bd + 1 < pp; ++bd) {
    const int64_t consumer_layer =
        static_cast<int64_t>(bd + 1) * layers_per_stage;
    const bool comp = plan.compresses(consumer_layer);
    const int64_t bytes =
        comp ? wire_bytes(setting, msg_numel, h) : msg_numel * 2;
    const double par = boundary_parallelism(bd);
    out.p2p_ms +=
        sm::p2p_ms(static_cast<int64_t>(static_cast<double>(bytes) / par),
                   boundary_link(bd));
    if (comp) {
      out.dispatch_ms += overhead_.dispatch_ms;
      out.enc_ms += overhead_.encode_ms(setting, msg_numel, h);
      out.dec_ms += overhead_.decode_ms(setting, msg_numel, h);
    }
  }
  return out;
}

InferenceBreakdown ModelParallelSimulator::run_inference(
    const core::CompressionPlan& plan, int64_t prompt_tokens,
    int64_t new_tokens, int64_t batch) const {
  ACTCOMP_CHECK(prompt_tokens >= 1,
                "run_inference needs prompt_tokens >= 1, got " << prompt_tokens);
  ACTCOMP_CHECK(new_tokens >= 0,
                "run_inference needs new_tokens >= 0, got " << new_tokens);
  ACTCOMP_CHECK(batch >= 1, "run_inference needs batch >= 1, got " << batch);

  InferenceBreakdown out;
  const InferenceBatch pre{batch, batch * prompt_tokens,
                           batch * prompt_tokens * (prompt_tokens + 1) / 2};
  out.prefill = inference_step_cost(plan, pre);
  out.ttft_ms = out.prefill.total_ms();
  out.total_ms = out.ttft_ms;
  // Token g of the generation (g >= 1; token 0 falls out of the prefill) is
  // decoded at context prompt + g. Summed exactly, not at a mean context.
  double decode_sum = 0.0;
  for (int64_t g = 1; g < new_tokens; ++g) {
    const InferenceBatch dec{batch, batch, batch * (prompt_tokens + g)};
    const InferenceStepCost c = inference_step_cost(plan, dec);
    if (g == 1) out.first_decode = c;
    decode_sum += c.total_ms();
  }
  if (new_tokens >= 2) {
    out.per_token_ms = decode_sum / static_cast<double>(new_tokens - 1);
    out.total_ms += decode_sum;
  }
  return out;
}

sim::StepCostFn make_serving_cost(const ModelParallelSimulator& sim,
                                  const core::CompressionPlan& plan) {
  return [sim, plan](const sim::StepShape& shape) {
    const InferenceBatch batch{shape.seqs, shape.new_tokens,
                               shape.context_tokens};
    return sim.inference_step_cost(plan, batch).total_ms();
  };
}

std::vector<compress::Setting> serving_ladder_settings() {
  return {compress::Setting::kBaseline, compress::Setting::kQ3,
          compress::Setting::kQ2, compress::Setting::kT3};
}

std::vector<sim::StepCostFn> make_serving_cost_ladder(
    const ModelParallelSimulator& sim, int64_t num_layers) {
  std::vector<sim::StepCostFn> ladder;
  for (const compress::Setting s : serving_ladder_settings()) {
    ladder.push_back(make_serving_cost(
        sim, core::CompressionPlan::paper_default(s, num_layers)));
  }
  return ladder;
}

}  // namespace actcomp::parallel
