// ModelParallelSimulator: iteration-time simulation of Megatron-style
// TP x PP Transformer training with activation compression.
//
// Builds per-stage forward/backward costs (roofline compute + collective
// comm + calibrated encode/decode overheads), per-boundary p2p costs, runs
// the pipeline schedule, and reports the same breakdown columns as the
// paper's Tables 4 and 7.
//
// Topology rules (paper §4.7 / Narayanan et al.): tensor parallelism is
// mapped inside a node whenever tp <= gpus_per_node; when tp exceeds the
// node size the TP group spills onto the inter-node link — this is what
// makes the paper's TP=8/PP=2 row (Table 6) an order of magnitude slower.
#pragma once

#include <cstdint>
#include <vector>

#include "core/compression_plan.h"
#include "nn/bert.h"
#include "obs/accounting.h"
#include "sim/collectives.h"
#include "sim/hardware.h"
#include "sim/overhead.h"
#include "sim/pipeline.h"
#include "sim/serving.h"

namespace actcomp::parallel {

struct ParallelConfig {
  int tp = 1;  ///< tensor model-parallel degree (innermost, intra-node)
  int pp = 1;  ///< pipeline model-parallel degree
  int dp = 1;  ///< data-parallel degree (outermost; replicas of the tp*pp grid)
};

/// Execution-model knobs for the discrete-event pipeline engine.
struct SimOptions {
  sim::ScheduleKind schedule = sim::ScheduleKind::k1F1B;
  /// Model chunks per stage (Megatron virtual pipeline); >= 2 requires
  /// schedule == kInterleaved1F1B, layers divisible by pp*virtual_stages,
  /// and num_micro divisible by pp.
  int virtual_stages = 1;
  /// Async p2p: a stage computes micro-batch i while micro-batch i-1's
  /// activations are still in flight, instead of stalling in program order.
  bool overlap = false;
  /// Model the Megatron scatter-gather boundary slices as discrete messages
  /// queuing on the link's lanes (tp parallel NVLink lanes, or ONE lane for
  /// a shared NIC / PCIe bridge), replacing boundary_parallelism()'s
  /// closed-form divide-by-parallelism approximation.
  bool link_contention = false;
  /// Seeded fault scenario (stragglers, degraded links, outage/retry chains)
  /// injected into the pipeline op graph; disabled by default. See
  /// sim/faults.h and bench/ablation_faults.
  sim::FaultProfile faults;

  /// Compress the data-parallel gradient all-reduce payload with this
  /// setting (kBaseline = fp16 gradients on the wire). Priced with the same
  /// OverheadModel encode/decode costs as activation compression; the codec
  /// work is serialized with the all-reduce on the DP link. Only read when
  /// parallel.dp > 1.
  compress::Setting dp_grad_setting = compress::Setting::kBaseline;
  /// Overlap gradient all-reduces with the backward drain (bucketed DDP);
  /// false appends them as a synchronous phase. Only read when dp > 1.
  bool dp_overlap_grads = true;

  /// Lossless wire stage on the model-parallel links (DESIGN.md §16,
  /// compress/lossless.h): every TP collective payload and pipeline-boundary
  /// message shrinks by the measured codec ratio, and each endpoint pays
  /// encode/decode at the measured GB/s — chunk-pipelined against the
  /// transfer when chunks > 1 (sim::chunk_pipelined_ms). Composes with the
  /// lossy wire formats: a lossy plan plus an enabled spec prices the
  /// stacked (lossless-over-lossy) column. Scope: the training run() only,
  /// virtual_stages == 1 (the constructor enforces this), and NOT the DP
  /// gradient all-reduce (dp_grad_setting already owns gradient payloads).
  /// Disabled (default) is bit-identical to the pre-existing cost model.
  sim::LosslessWireSpec lossless_wire;

  SimOptions() = default;
  SimOptions(sim::ScheduleKind s, int v, bool ov, bool contention,
             sim::FaultProfile f = {})
      : schedule(s),
        virtual_stages(v),
        overlap(ov),
        link_contention(contention),
        faults(f) {}
};

struct TrainJob {
  int64_t micro_batch = 32;
  int64_t num_micro = 1;   ///< micro-batches per iteration (global/micro)
  int64_t seq = 512;
};

/// Shape of one forward-only inference step over a batch of sequences
/// (prefill: new_tokens = sum of prompt lengths; decode: new_tokens = seqs).
/// `context_tokens` is the total KV positions attended across new tokens.
struct InferenceBatch {
  int64_t seqs = 1;
  int64_t new_tokens = 1;
  int64_t context_tokens = 1;
};

/// Cost decomposition of one inference step on one pipeline traversal.
struct InferenceStepCost {
  double compute_ms = 0.0;   ///< GEMMs + attention, summed over all layers
  double tp_comm_ms = 0.0;   ///< the per-layer TP collectives (2 per layer)
  double enc_ms = 0.0;       ///< compression encode at TP points + boundaries
  double dec_ms = 0.0;       ///< decode (x tp copies under all-gather)
  double p2p_ms = 0.0;       ///< pipeline-boundary activations
  double dispatch_ms = 0.0;  ///< fixed per-compressed-point launch overhead

  double total_ms() const {
    return compute_ms + tp_comm_ms + enc_ms + dec_ms + p2p_ms + dispatch_ms;
  }
};

/// TTFT/TPOT summary for one (prompt, generate) request shape.
struct InferenceBreakdown {
  double ttft_ms = 0.0;       ///< the prefill step
  double per_token_ms = 0.0;  ///< mean decode step over the generation
  double total_ms = 0.0;
  InferenceStepCost prefill;
  InferenceStepCost first_decode;
};

/// Per-iteration timing, decomposed as in the paper's breakdown tables.
struct IterationBreakdown {
  double makespan_ms = 0.0;   ///< pipeline schedule makespan (excl. optimizer)
  double optimizer_ms = 0.0;

  /// One micro-batch's traversal of the whole pipeline (sum over stages).
  /// Matches the paper's Forward/Backward columns for single-micro-batch
  /// fine-tuning (Table 4).
  double fwd_critical_ms = 0.0;
  double bwd_critical_ms = 0.0;
  /// Busiest rank's total forward/backward time across all micro-batches.
  /// Matches the paper's pre-training convention (Table 7).
  double fwd_busy_max_ms = 0.0;
  double bwd_busy_max_ms = 0.0;

  /// Busiest stage's per-iteration encode/decode/TP-communication totals
  /// (the last three columns of Tables 4 and 7).
  double enc_ms = 0.0;
  double dec_ms = 0.0;
  double tensor_comm_ms = 0.0;

  /// Per-boundary p2p transfer totals per iteration (Table 9 reports the
  /// forward direction).
  std::vector<double> boundary_fwd_ms;
  std::vector<double> boundary_bwd_ms;

  /// Fault-injection accounting (zero on clean runs): hung transfer
  /// attempts and the link/backoff time they burned.
  int fault_retries = 0;
  double fault_retry_ms = 0.0;

  /// Data-parallel accounting (dp_replicas == 1, dp_comm_ms == 0 on 2D
  /// runs): replicas simulated and the total gradient all-reduce time per
  /// iteration (encode/decode included when dp_grad_setting compresses).
  int dp_replicas = 1;
  double dp_comm_ms = 0.0;

  /// Busiest stage's per-iteration lossless codec time (zero unless
  /// SimOptions::lossless_wire is enabled). Reported separately from
  /// enc_ms/dec_ms and NOT added to any phase column: the codec runs inside
  /// the chunk-pipelined transfer spans, so its serialized share is already
  /// inside tensor_comm_ms and the boundary p2p durations.
  double lossless_enc_ms = 0.0;
  double lossless_dec_ms = 0.0;

  double total_ms() const { return makespan_ms + optimizer_ms; }
  /// "Waiting & Pipeline Comm." under the fine-tune accounting.
  double waiting_finetune_ms() const {
    return std::max(0.0, makespan_ms - fwd_critical_ms - bwd_critical_ms);
  }
  /// "Waiting & Pipeline Comm." under the pre-train accounting.
  double waiting_pretrain_ms() const {
    return std::max(0.0, makespan_ms - fwd_busy_max_ms - bwd_busy_max_ms);
  }

  /// Project onto the paper's Table 4/7 columns. This is the ONLY place the
  /// finetune-vs-pretrain column choice is made; benches and RunReports both
  /// go through it (obs/accounting.h).
  obs::PhaseBreakdown phase_breakdown(obs::Accounting accounting) const;
};

class ModelParallelSimulator {
 public:
  ModelParallelSimulator(sim::ClusterSpec cluster, nn::BertConfig model,
                         ParallelConfig parallel, TrainJob job,
                         sim::ScheduleKind schedule = sim::ScheduleKind::k1F1B);
  ModelParallelSimulator(sim::ClusterSpec cluster, nn::BertConfig model,
                         ParallelConfig parallel, TrainJob job,
                         SimOptions options);

  IterationBreakdown run(const core::CompressionPlan& plan) const;

  /// Baseline convenience.
  IterationBreakdown run_baseline() const {
    return run(core::CompressionPlan::none());
  }

  /// Prices one forward-only inference step (serving): per-layer GEMM +
  /// attention FLOPs split over tp, the two per-layer TP collective points
  /// with the SAME compressed-collective rules as the training forward
  /// (all-reduce for baseline/AE, all-gather + tp decode copies for
  /// sparse/quant), and the pp-1 boundary p2p hops. TrainJob batch/seq are
  /// ignored — the step shape is the argument.
  InferenceStepCost inference_step_cost(const core::CompressionPlan& plan,
                                        const InferenceBatch& batch) const;

  /// One request's latency profile: a prefill over `prompt_tokens`, then
  /// `new_tokens - 1` single-token decode steps at growing context (priced
  /// exactly, not at a mean context). batch > 1 decodes that many requests
  /// in lockstep.
  InferenceBreakdown run_inference(const core::CompressionPlan& plan,
                                   int64_t prompt_tokens, int64_t new_tokens,
                                   int64_t batch = 1) const;

  const sim::OverheadModel& overhead_model() const { return overhead_; }
  sim::OverheadModel& overhead_model() { return overhead_; }

  /// Total parameter count of the configured model (for optimizer cost).
  static int64_t parameter_count(const nn::BertConfig& cfg);

 private:
  /// Link used by a stage's TP group.
  const sim::LinkSpec& tp_link() const;
  /// Link crossing a given pipeline boundary.
  const sim::LinkSpec& boundary_link(int boundary) const;
  /// Whether a boundary's p2p traffic leaves the node.
  bool boundary_cross_node(int boundary) const;
  /// Scatter-gather parallelism factor on a boundary (paper's Megatron
  /// optimization splits the boundary tensor across TP ranks; the slices
  /// move in parallel over NVLink but share a single NIC or PCIe bridge).
  /// Closed-form approximation, used only when options_.link_contention is
  /// off; with contention on, the engine queues the slices on explicit lane
  /// resources instead.
  double boundary_parallelism(int boundary) const;
  /// DP-group shape on the cluster: how many of the dp peers share a node
  /// (`intra`) and how many node islands the group spans (`inter`);
  /// intra * inter == dp. Replicas are tp*pp-GPU blocks laid out
  /// contiguously, so peers share a node only when the whole model-parallel
  /// grid fits inside one.
  void dp_group_shape(int* intra, int* inter) const;

  sim::ClusterSpec cluster_;
  nn::BertConfig model_;
  ParallelConfig parallel_;
  TrainJob job_;
  SimOptions options_;
  sim::OverheadModel overhead_;
};

/// Bridge to sim/serving: a StepCostFn pricing every scheduler step through
/// `sim.inference_step_cost(plan, ·)`. Captures copies, so the returned
/// function outlives both arguments.
sim::StepCostFn make_serving_cost(const ModelParallelSimulator& sim,
                                  const core::CompressionPlan& plan);

/// The canonical serving degradation ladder, quality-first: w/o -> Q3
/// (8-bit) -> Q2 (4-bit) -> T3 (Top-K). Rung settings in ladder order.
std::vector<compress::Setting> serving_ladder_settings();

/// One StepCostFn per rung of serving_ladder_settings(), each pricing steps
/// through `sim` with the paper_default CompressionPlan for that setting
/// over `num_layers` layers. Rung 0 is the uncompressed clean-path cost —
/// feeding the ladder to sim::ResilientServingConfig::cost_ladder gives the
/// SLO degradation controller progressively cheaper wire formats to escalate
/// through (the paper's slow-network regime is exactly where the later rungs
/// buy back step time).
std::vector<sim::StepCostFn> make_serving_cost_ladder(
    const ModelParallelSimulator& sim, int64_t num_layers);

}  // namespace actcomp::parallel
