#include "obs/report.h"

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "core/simd.h"
#include "obs/profiler.h"
#include "obs/registry.h"

#ifndef ACTCOMP_GIT_REV
#define ACTCOMP_GIT_REV "unknown"
#endif

namespace actcomp::obs {

namespace {

RunReport* g_current = nullptr;

const char* accounting_label(Accounting a) {
  return a == Accounting::kFinetune ? "finetune" : "pretrain";
}

}  // namespace

RunReport::RunReport(std::string binary) : binary_(std::move(binary)) {
  prev_ = g_current;
  g_current = this;
}

RunReport::~RunReport() {
  write();
  g_current = prev_;
}

RunReport* RunReport::current() { return g_current; }

bool RunReport::reports_enabled() {
  const char* env = std::getenv("ACTCOMP_REPORT");
  return env == nullptr || *env == '\0' || *env != '0';
}

void RunReport::set_config(std::string_view key, json::Value v) {
  config_.set(key, std::move(v));
}

void RunReport::add_phase(std::string label, Accounting accounting,
                          const PhaseBreakdown& breakdown) {
  json::Value p = json::Value::object();
  p.set("label", std::move(label));
  p.set("accounting", accounting_label(accounting));
  // Qualified: the member to_json() would otherwise hide the free function.
  const json::Value columns = ::actcomp::obs::to_json(breakdown);
  for (const auto& [key, value] : columns.members()) {
    p.set(key, value);
  }
  phases_.push_back(std::move(p));
}

void RunReport::add_table(const std::vector<std::string>& header,
                          const std::vector<std::vector<std::string>>& rows) {
  json::Value t = json::Value::object();
  json::Value h = json::Value::array();
  for (const auto& c : header) h.push_back(c);
  t.set("header", std::move(h));
  json::Value body = json::Value::array();
  for (const auto& row : rows) {
    json::Value r = json::Value::array();
    for (const auto& cell : row) r.push_back(cell);
    body.push_back(std::move(r));
  }
  t.set("rows", std::move(body));
  tables_.push_back(std::move(t));
}

void RunReport::add_record(json::Value record) {
  records_.push_back(std::move(record));
}

json::Value RunReport::to_json() const {
  json::Value root = json::Value::object();
  root.set("schema", "actcomp.run_report.v1");
  root.set("binary", binary_);
  root.set("git_rev", ACTCOMP_GIT_REV);
  json::Value hw = json::Value::object();
  hw.set("hw_concurrency",
         static_cast<int64_t>(std::thread::hardware_concurrency()));
  // Which SIMD tier the kernels actually dispatched to (DESIGN.md §15):
  // simd_isa is what ran, simd_detected what the host supports, and
  // simd_override the raw ACTCOMP_SIMD value ("" when unset).
  hw.set("simd_isa", core::simd_isa_name(core::simd_isa()));
  hw.set("simd_detected", core::simd_isa_name(core::detected_simd_isa()));
  hw.set("simd_override", core::simd_override());
  root.set("hardware", std::move(hw));
  if (config_.size() > 0) root.set("config", config_);
  if (phases_.size() > 0) root.set("phases", phases_);
  if (tables_.size() > 0) root.set("tables", tables_);
  if (records_.size() > 0) root.set("records", records_);
  root.set("counters", Registry::instance().snapshot());
  if (profiler_compiled_in() && profiler_enabled()) {
    json::Value zones = json::Value::array();
    for (const ZoneStats& z : snapshot_zones()) {
      json::Value zv = json::Value::object();
      zv.set("path", z.path);
      zv.set("depth", z.depth);
      zv.set("count", z.count);
      zv.set("total_ms", z.total_ms);
      zv.set("self_ms", z.self_ms);
      zones.push_back(std::move(zv));
    }
    root.set("profile", std::move(zones));
  }
  return root;
}

std::string RunReport::path() const {
  const char* dir = std::getenv("ACTCOMP_REPORT_DIR");
  std::string d = dir != nullptr && *dir != '\0' ? dir : ".";
  if (d.back() != '/') d += '/';
  return d + "REPORT_" + binary_ + ".json";
}

bool RunReport::write() {
  if (written_) return true;
  if (!reports_enabled()) return false;
  const std::string out = to_json().dump(2);
  const std::string p = path();
  FILE* f = std::fopen(p.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  written_ = ok;
  return ok;
}

}  // namespace actcomp::obs
