#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace actcomp::obs::json {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Shortest decimal form that parses back to exactly the same double, so
// reports stay byte-stable across serialize/parse cycles without printing
// seventeen digits for every timing.
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; report them as null
    out += "null";
    return;
  }
  char buf[32];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

struct Parser {
  std::string_view text;
  size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) {
      error = msg + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return fail("bad literal");
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return fail("truncated escape");
        char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            const std::string hex(text.substr(pos, 4));
            pos += 4;
            const long cp = std::strtol(hex.c_str(), nullptr, 16);
            if (cp > 0x7f) return fail("non-ASCII \\u escape unsupported");
            out += static_cast<char>(cp);
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out = Value::object();
      skip_ws();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        std::string key;
        skip_ws();
        if (!parse_string(key)) return false;
        if (!consume(':')) return false;
        Value v;
        if (!parse_value(v)) return false;
        out.set(key, std::move(v));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return consume('}');
      }
    }
    if (c == '[') {
      ++pos;
      out = Value::array();
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        Value v;
        if (!parse_value(v)) return false;
        out.push_back(std::move(v));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return consume(']');
      }
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Value(std::move(s));
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return false;
      out = Value(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return false;
      out = Value(false);
      return true;
    }
    if (c == 'n') {
      if (!literal("null")) return false;
      out = Value();
      return true;
    }
    // number: integer when it has no fraction/exponent and fits int64
    const size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    bool is_double = false;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      if (text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E') {
        is_double = true;
      }
      ++pos;
    }
    if (pos == start) return fail("unexpected character");
    const std::string num(text.substr(start, pos - start));
    if (is_double) {
      out = Value(std::strtod(num.c_str(), nullptr));
    } else {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(num.c_str(), &end, 10);
      if (errno != 0 || end == num.c_str()) return fail("bad integer");
      out = Value(static_cast<int64_t>(v));
    }
    return true;
  }
};

}  // namespace

void Value::push_back(Value v) {
  kind_ = Kind::kArray;
  items_.push_back(std::move(v));
}

size_t Value::size() const {
  return kind_ == Kind::kArray ? items_.size() : members_.size();
}

const Value& Value::at(size_t i) const { return items_.at(i); }

void Value::set(std::string_view key, Value v) {
  kind_ = Kind::kObject;
  for (auto& m : members_) {
    if (m.first == key) {
      m.second = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(v));
}

const Value* Value::find(std::string_view key) const {
  for (const auto& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kDouble: append_double(out, double_); break;
    case Kind::kString: append_escaped(out, string_); break;
    case Kind::kArray: {
      out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        append_escaped(out, members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Value Value::parse(std::string_view text, std::string* err) {
  Parser p;
  p.text = text;
  Value v;
  if (!p.parse_value(v)) {
    if (err != nullptr) *err = p.error;
    return Value();
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (err != nullptr) *err = "trailing data at byte " + std::to_string(p.pos);
    return Value();
  }
  if (err != nullptr) err->clear();
  return v;
}

}  // namespace actcomp::obs::json
