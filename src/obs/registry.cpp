#include "obs/registry.h"

#include <bit>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <variant>

namespace actcomp::obs {

namespace {

/// CAS-update an atomic double (stored as bits) with `f(old, v)`.
template <typename F>
void update_double(std::atomic<int64_t>& bits, double v, F f) {
  int64_t old = bits.load(std::memory_order_relaxed);
  for (;;) {
    const double updated = f(std::bit_cast<double>(old), v);
    if (bits.compare_exchange_weak(old, std::bit_cast<int64_t>(updated),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

void Histogram::observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  update_double(sum_bits_, v, [](double a, double b) { return a + b; });
  update_double(min_bits_, v, [](double a, double b) { return b < a ? b : a; });
  update_double(max_bits_, v, [](double a, double b) { return b > a ? b : a; });
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  if (s.count > 0) {
    s.min = std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
    s.max = std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  }
  return s;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(std::bit_cast<int64_t>(0.0), std::memory_order_relaxed);
  min_bits_.store(
      std::bit_cast<int64_t>(std::numeric_limits<double>::infinity()),
      std::memory_order_relaxed);
  max_bits_.store(
      std::bit_cast<int64_t>(-std::numeric_limits<double>::infinity()),
      std::memory_order_relaxed);
}

json::Value Histogram::to_json() const {
  const Snapshot s = snapshot();
  json::Value v = json::Value::object();
  v.set("count", s.count);
  v.set("sum", s.sum);
  v.set("min", s.min);
  v.set("max", s.max);
  return v;
}

struct Registry::Impl {
  using Metric = std::variant<std::unique_ptr<Counter>, std::unique_ptr<Gauge>,
                              std::unique_ptr<Histogram>>;
  mutable std::mutex mu;
  std::map<std::string, Metric, std::less<>> metrics;  // sorted by name
};

Registry::Impl& Registry::impl() const {
  // Leaked so metric references cached in static locals stay valid through
  // process teardown.
  static Impl* impl = new Impl;
  return *impl;
}

Registry& Registry::instance() {
  static Registry* r = new Registry;
  return *r;
}

namespace {

template <typename T>
T& find_or_create(Registry::Impl& impl, std::string_view name) {
  std::lock_guard<std::mutex> lock(impl.mu);
  auto it = impl.metrics.find(name);
  if (it == impl.metrics.end()) {
    it = impl.metrics
             .emplace(std::string(name),
                      Registry::Impl::Metric(std::make_unique<T>()))
             .first;
  }
  auto* slot = std::get_if<std::unique_ptr<T>>(&it->second);
  if (slot == nullptr) {
    throw std::logic_error("obs metric '" + std::string(name) +
                           "' already registered with a different type");
  }
  return **slot;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return find_or_create<Counter>(impl(), name);
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_create<Gauge>(impl(), name);
}

Histogram& Registry::histogram(std::string_view name) {
  return find_or_create<Histogram>(impl(), name);
}

json::Value Registry::snapshot() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  json::Value out = json::Value::object();
  for (const auto& [name, metric] : i.metrics) {
    if (const auto* c = std::get_if<std::unique_ptr<Counter>>(&metric)) {
      out.set(name, (*c)->value());
    } else if (const auto* g = std::get_if<std::unique_ptr<Gauge>>(&metric)) {
      out.set(name, (*g)->value());
    } else if (const auto* h = std::get_if<std::unique_ptr<Histogram>>(&metric)) {
      out.set(name, (*h)->to_json());
    }
  }
  return out;
}

void Registry::reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  for (auto& [name, metric] : i.metrics) {
    if (auto* c = std::get_if<std::unique_ptr<Counter>>(&metric)) {
      (*c)->reset();
    } else if (auto* g = std::get_if<std::unique_ptr<Gauge>>(&metric)) {
      (*g)->reset();
    } else if (auto* h = std::get_if<std::unique_ptr<Histogram>>(&metric)) {
      (*h)->reset();
    }
  }
}

}  // namespace actcomp::obs
