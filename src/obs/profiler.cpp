#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <utility>

namespace actcomp::obs {

namespace detail {
std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("ACTCOMP_PROF");
  return env != nullptr && *env != '\0' && *env != '0';
}()};
}  // namespace detail

namespace {

constexpr size_t kMaxEventsPerThread = 1u << 20;

struct ZoneEvent {
  uint32_t node = 0;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
};

/// Per-node accumulation cell (indexed by node id).
struct Cell {
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t child_ns = 0;  ///< direct children's total, for self-time
};

struct ThreadState {
  std::mutex mu;  ///< guards stats/events against snapshot/reset readers
  uint32_t tid = 0;
  std::vector<Cell> stats;
  std::vector<ZoneEvent> events;
  int64_t dropped = 0;
};

struct Node {
  uint32_t parent = 0;
  std::string name;
};

// All shared profiler state. Leaked on purpose (function-local `new`) so
// thread-local destructors running at process exit never race static
// destruction.
struct Globals {
  std::mutex node_mu;
  std::vector<Node> nodes{Node{}};  // id 0 = root
  std::map<std::pair<uint32_t, std::string>, uint32_t> node_ids;

  std::mutex states_mu;
  std::vector<ThreadState*> states;  // live threads
  std::vector<Cell> retired;         // merged stats of exited threads
  std::vector<ZoneEvent> retired_events;
  int64_t retired_dropped = 0;
  uint32_t next_tid = 0;

  int64_t t0_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
};

Globals& G() {
  static Globals* g = new Globals;
  return *g;
}

void merge_cells(std::vector<Cell>& into, const std::vector<Cell>& from) {
  if (into.size() < from.size()) into.resize(from.size());
  for (size_t i = 0; i < from.size(); ++i) {
    into[i].count += from[i].count;
    into[i].total_ns += from[i].total_ns;
    into[i].child_ns += from[i].child_ns;
  }
}

/// Owns the calling thread's state; on thread exit, folds it into the
/// retired accumulator so no samples are lost.
struct ThreadStateHolder {
  ThreadState* state = nullptr;

  ThreadState& get() {
    if (state == nullptr) {
      state = new ThreadState;
      Globals& g = G();
      std::lock_guard<std::mutex> lock(g.states_mu);
      state->tid = g.next_tid++;
      g.states.push_back(state);
    }
    return *state;
  }

  ~ThreadStateHolder() {
    if (state == nullptr) return;
    Globals& g = G();
    std::lock_guard<std::mutex> lock(g.states_mu);
    merge_cells(g.retired, state->stats);
    g.retired_events.insert(g.retired_events.end(), state->events.begin(),
                            state->events.end());
    g.retired_dropped += state->dropped;
    std::erase(g.states, state);
    delete state;
  }
};

thread_local ThreadStateHolder t_holder;
thread_local uint32_t t_current_zone = 0;
// (parent, name pointer) -> node id. Name pointers are per-TU literals, so
// the cache key is exact; the global table dedupes by string content.
thread_local std::unordered_map<uint64_t, uint32_t> t_zone_cache;

uint64_t cache_key(uint32_t parent, const char* name) {
  return (static_cast<uint64_t>(parent) << 48) ^
         (reinterpret_cast<uintptr_t>(name) & 0xffffffffffffull);
}

}  // namespace

bool profiler_enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_profiler_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

namespace detail {

uint32_t current_zone() { return t_current_zone; }

void set_current_zone(uint32_t id) { t_current_zone = id; }

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         G().t0_ns;
}

uint32_t intern_zone(uint32_t parent, const char* name) {
  const uint64_t key = cache_key(parent, name);
  auto it = t_zone_cache.find(key);
  if (it != t_zone_cache.end()) return it->second;

  Globals& g = G();
  uint32_t id = 0;
  {
    std::lock_guard<std::mutex> lock(g.node_mu);
    auto [slot, inserted] =
        g.node_ids.try_emplace({parent, std::string(name)}, 0);
    if (inserted) {
      slot->second = static_cast<uint32_t>(g.nodes.size());
      g.nodes.push_back(Node{parent, std::string(name)});
    }
    id = slot->second;
  }
  t_zone_cache.emplace(key, id);
  return id;
}

void record_zone(uint32_t id, uint32_t parent, int64_t start_ns,
                 int64_t end_ns) {
  ThreadState& st = t_holder.get();
  std::lock_guard<std::mutex> lock(st.mu);
  const size_t need = static_cast<size_t>(std::max(id, parent)) + 1;
  if (st.stats.size() < need) st.stats.resize(need);
  st.stats[id].count += 1;
  st.stats[id].total_ns += end_ns - start_ns;
  st.stats[parent].child_ns += end_ns - start_ns;
  if (st.events.size() < kMaxEventsPerThread) {
    st.events.push_back({id, start_ns, end_ns});
  } else {
    ++st.dropped;
  }
}

}  // namespace detail

namespace {

/// Merged per-node cells from every live and retired thread.
std::vector<Cell> merged_stats() {
  Globals& g = G();
  std::vector<Cell> merged;
  std::lock_guard<std::mutex> lock(g.states_mu);
  merged = g.retired;
  for (ThreadState* st : g.states) {
    std::lock_guard<std::mutex> slock(st->mu);
    merge_cells(merged, st->stats);
  }
  return merged;
}

}  // namespace

std::vector<ZoneStats> snapshot_zones() {
  Globals& g = G();
  const std::vector<Cell> cells = merged_stats();

  std::lock_guard<std::mutex> lock(g.node_mu);
  const size_t n = g.nodes.size();
  std::vector<std::vector<uint32_t>> children(n);
  for (uint32_t id = 1; id < n; ++id) {
    children[g.nodes[id].parent].push_back(id);
  }
  for (auto& c : children) {
    std::sort(c.begin(), c.end(), [&](uint32_t a, uint32_t b) {
      return g.nodes[a].name < g.nodes[b].name;
    });
  }
  // A node appears if it (or any descendant) recorded samples — a parent
  // zone still open during the snapshot keeps its finished children visible.
  std::vector<char> live(n, 0);
  for (uint32_t id = static_cast<uint32_t>(n); id-- > 1;) {
    if (id < cells.size() && cells[id].count > 0) live[id] = 1;
    for (uint32_t c : children[id]) live[id] |= live[c];
  }

  std::vector<ZoneStats> out;
  // Iterative DFS; a stack entry is (node, depth, path prefix length).
  struct Frame {
    uint32_t id;
    int depth;
    std::string path;
  };
  std::vector<Frame> stack;
  for (auto it = children[0].rbegin(); it != children[0].rend(); ++it) {
    stack.push_back({*it, 0, g.nodes[*it].name});
  }
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (!live[f.id]) continue;
    const Cell cell = f.id < cells.size() ? cells[f.id] : Cell{};
    ZoneStats zs;
    zs.path = f.path;
    zs.name = g.nodes[f.id].name;
    zs.depth = f.depth;
    zs.count = cell.count;
    zs.total_ms = static_cast<double>(cell.total_ns) * 1e-6;
    zs.self_ms =
        static_cast<double>(cell.total_ns - cell.child_ns) * 1e-6;
    out.push_back(std::move(zs));
    for (auto it = children[f.id].rbegin(); it != children[f.id].rend(); ++it) {
      stack.push_back({*it, f.depth + 1, f.path + "/" + g.nodes[*it].name});
    }
  }
  return out;
}

void reset_zones() {
  Globals& g = G();
  std::lock_guard<std::mutex> lock(g.states_mu);
  for (ThreadState* st : g.states) {
    std::lock_guard<std::mutex> slock(st->mu);
    st->stats.assign(st->stats.size(), Cell{});
    st->events.clear();
    st->dropped = 0;
  }
  g.retired.clear();
  g.retired_events.clear();
  g.retired_dropped = 0;
}

int64_t dropped_zone_events() {
  Globals& g = G();
  std::lock_guard<std::mutex> lock(g.states_mu);
  int64_t dropped = g.retired_dropped;
  for (ThreadState* st : g.states) {
    std::lock_guard<std::mutex> slock(st->mu);
    dropped += st->dropped;
  }
  return dropped;
}

void to_chrome_trace(std::ostream& os) {
  Globals& g = G();
  // Copy events out under the locks, then serialize without holding them.
  struct TidEvents {
    uint32_t tid;
    std::vector<ZoneEvent> events;
  };
  std::vector<TidEvents> all;
  {
    std::lock_guard<std::mutex> lock(g.states_mu);
    if (!g.retired_events.empty()) {
      // Retired threads' tids are no longer meaningful; group them on one row.
      all.push_back({~0u, g.retired_events});
    }
    for (ThreadState* st : g.states) {
      std::lock_guard<std::mutex> slock(st->mu);
      if (!st->events.empty()) all.push_back({st->tid, st->events});
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TidEvents& a, const TidEvents& b) { return a.tid < b.tid; });

  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(g.node_mu);
    names.reserve(g.nodes.size());
    for (const Node& nd : g.nodes) names.push_back(nd.name);
  }

  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };
  for (const TidEvents& te : all) {
    const uint32_t tid = te.tid == ~0u ? 9999 : te.tid;
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\""
       << (te.tid == ~0u ? std::string("obs retired")
                         : "obs thread " + std::to_string(tid))
       << "\"}}";
    for (const ZoneEvent& ev : te.events) {
      sep();
      os << "{\"name\":\"" << (ev.node < names.size() ? names[ev.node] : "?")
         << "\",\"cat\":\"obs\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
         << ",\"ts\":" << static_cast<double>(ev.start_ns) * 1e-3
         << ",\"dur\":" << static_cast<double>(ev.end_ns - ev.start_ns) * 1e-3
         << '}';
    }
  }
  os << "]}";
}

}  // namespace actcomp::obs
