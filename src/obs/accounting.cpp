#include "obs/accounting.h"

namespace actcomp::obs {

const std::vector<std::string>& breakdown_header() {
  static const std::vector<std::string> header{
      "Algorithm", "Forward",  "Backward", "Optim", "Wait&Pipe",
      "Total",     "Enc",      "Dec",      "TensorComm"};
  return header;
}

std::vector<double> breakdown_columns(const PhaseBreakdown& b) {
  return {b.forward_ms, b.backward_ms, b.optimizer_ms, b.waiting_ms,
          b.total_ms,   b.encode_ms,   b.decode_ms,    b.tensor_comm_ms};
}

json::Value to_json(const PhaseBreakdown& b) {
  json::Value v = json::Value::object();
  v.set("forward_ms", b.forward_ms);
  v.set("backward_ms", b.backward_ms);
  v.set("optimizer_ms", b.optimizer_ms);
  v.set("waiting_ms", b.waiting_ms);
  v.set("total_ms", b.total_ms);
  v.set("encode_ms", b.encode_ms);
  v.set("decode_ms", b.decode_ms);
  v.set("tensor_comm_ms", b.tensor_comm_ms);
  return v;
}

}  // namespace actcomp::obs
