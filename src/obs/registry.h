// Typed counter / gauge / histogram registry (DESIGN.md §11).
//
// Instruments register by name on first use and cache the returned
// reference, so the hot path is one atomic RMW:
//
//   static obs::Counter& c =
//       obs::Registry::instance().counter("compress.encode.bytes_out");
//   c.add(msg.body_bytes());
//
// Snapshots are deterministic: entries sort by name, values serialize with
// the json module's stable number formatting — two runs of a seeded
// experiment produce byte-identical counter sections, which is what lets
// RunReports be diffed (and golden-tested) across commits.
//
// Metrics never alter computation; they are always compiled in (unlike
// profiler zones) because a relaxed atomic add is too cheap to gate.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace actcomp::obs {

/// Monotonic (within a run) integer accumulator.
class Counter {
 public:
  void add(int64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Last-write-wins double (pool size, achieved compression ratio, ...).
class Gauge {
 public:
  void set(double v) {
    bits_.store(std::bit_cast<int64_t>(v), std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() { set(0.0); }

 private:
  std::atomic<int64_t> bits_{std::bit_cast<int64_t>(0.0)};
};

/// Running count/sum/min/max of observed doubles (queue depths, retry
/// delays). Lock-free: sum/min/max update via CAS loops, so concurrent
/// observers never block; count/sum are exact, min/max are exact, but the
/// four fields are not sampled as one atomic tuple (fine for reporting).
class Histogram {
 public:
  void observe(double v);
  struct Snapshot {
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
  };
  Snapshot snapshot() const;
  void reset();
  json::Value to_json() const;

 private:
  // min/max idle at +/-infinity so concurrent first observations need no
  // seeding handshake; snapshot() maps the empty case back to 0.
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_bits_{std::bit_cast<int64_t>(0.0)};
  std::atomic<int64_t> min_bits_{
      std::bit_cast<int64_t>(std::numeric_limits<double>::infinity())};
  std::atomic<int64_t> max_bits_{
      std::bit_cast<int64_t>(-std::numeric_limits<double>::infinity())};
};

class Registry {
 public:
  static Registry& instance();

  /// Find-or-create by name. The kind is fixed on first registration;
  /// re-registering a name as a different kind throws std::logic_error.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// JSON object, one member per metric, sorted by name. Counters serialize
  /// as integers, gauges as doubles, histograms as {count, sum, min, max}.
  json::Value snapshot() const;

  /// Zero every registered metric (names stay registered).
  void reset();

  /// Opaque storage; defined (and only reachable) in registry.cpp.
  struct Impl;

 private:
  Registry() = default;
  Impl& impl() const;
};

}  // namespace actcomp::obs
