// Minimal JSON value for the observability layer (obs/report.h).
//
// Why hand-rolled: the container bakes no JSON dependency, and the repo's
// machine-readable artifacts (RunReport, BENCH_kernels.json) need one
// canonical serializer whose output is deterministic — object keys keep
// insertion order, doubles print with the shortest representation that
// round-trips, so `diff` on two reports shows real changes only. The parser
// exists for the schema round-trip tests and the docs tooling, not as a
// general-purpose JSON library: it accepts exactly the subset dump() emits
// (no \u escapes beyond ASCII control chars, no comments).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace actcomp::obs::json {

class Value;
using Array = std::vector<Value>;
/// Objects preserve insertion order (the schema reads top-down) and reject
/// duplicate keys on set().
using Member = std::pair<std::string, Value>;

enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

class Value {
 public:
  Value() : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}                  // NOLINT
  Value(int v) : kind_(Kind::kInt), int_(v) {}                     // NOLINT
  Value(int64_t v) : kind_(Kind::kInt), int_(v) {}                 // NOLINT
  Value(double v) : kind_(Kind::kDouble), double_(v) {}            // NOLINT
  Value(const char* s) : kind_(Kind::kString), string_(s) {}       // NOLINT
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT

  static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool as_bool() const { return bool_; }
  int64_t as_int() const { return int_; }
  /// Numeric value of an int or double node.
  double as_double() const { return kind_ == Kind::kInt ? static_cast<double>(int_) : double_; }
  const std::string& as_string() const { return string_; }

  // ---- array ----
  void push_back(Value v);
  size_t size() const;
  const Value& at(size_t i) const;

  // ---- object ----
  /// Insert or overwrite a member, preserving first-insertion order.
  void set(std::string_view key, Value v);
  /// Member lookup; nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;
  const std::vector<Member>& members() const { return members_; }

  /// Serialize. indent < 0: compact one-line form; indent >= 0: pretty-print
  /// with that many spaces per level. Deterministic: same Value, same bytes.
  std::string dump(int indent = -1) const;

  /// Parse the subset dump() emits (standard JSON without unicode escapes).
  /// On failure returns null and, when err != nullptr, a message with the
  /// byte offset.
  static Value parse(std::string_view text, std::string* err = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array items_;                  // kArray
  std::vector<Member> members_;  // kObject
};

}  // namespace actcomp::obs::json
