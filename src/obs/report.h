// RunReport: the one machine-readable artifact every bench/example emits.
//
// Construct one at the top of main(); on destruction it assembles the
// canonical JSON (schema below), snapshots the counter registry and — when
// the profiler is enabled — the zone tree, and writes
// $ACTCOMP_REPORT_DIR/REPORT_<binary>.json silently (never to stdout, so
// golden-tested bench output is untouched). ACTCOMP_REPORT=0 disables
// writing entirely.
//
// Schema (DESIGN.md §11 is the normative description):
//   {
//     "schema": "actcomp.run_report.v1",
//     "binary": "table4_breakdown_finetune",
//     "git_rev": "<short rev or unknown>",
//     "hardware": {"hw_concurrency": N},
//     "config":   {...},        // bench-specific knobs incl. "seed"
//     "phases":   [{"label": ..., "accounting": ..., <PhaseBreakdown>}],
//     "tables":   [{"header": [...], "rows": [[...]]}],
//     "records":  [...],        // free-form (kernels_bench measurements)
//     "counters": {...},        // Registry::snapshot(), name-sorted
//     "profile":  [...]         // zone tree when the profiler is enabled
//   }
// Sections that would be empty are omitted. Key order is fixed and object
// members are deterministic, so two reports diff cleanly.
//
// While a RunReport is alive it is discoverable via RunReport::current();
// bench::print_table uses that to mirror every printed table into the
// report without touching the 20+ bench mains' printing code.
#pragma once

#include <string>
#include <vector>

#include "obs/accounting.h"
#include "obs/json.h"

namespace actcomp::obs {

class RunReport {
 public:
  /// `binary` names the emitting program (also the output file suffix).
  explicit RunReport(std::string binary);
  /// Writes (unless already written or disabled), then pops itself from the
  /// current() stack.
  ~RunReport();

  RunReport(const RunReport&) = delete;
  RunReport& operator=(const RunReport&) = delete;

  /// Innermost live RunReport on this process (benches have exactly one);
  /// nullptr when none.
  static RunReport* current();

  /// True unless ACTCOMP_REPORT=0.
  static bool reports_enabled();

  // ---- content ----
  void set_config(std::string_view key, json::Value v);
  void add_phase(std::string label, Accounting accounting,
                 const PhaseBreakdown& breakdown);
  void add_table(const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows);
  void add_record(json::Value record);

  /// Assembled report (also snapshots counters/profiler at call time).
  json::Value to_json() const;

  /// Resolved output path: $ACTCOMP_REPORT_DIR (default ".") /
  /// REPORT_<binary>.json.
  std::string path() const;

  /// Write now (idempotent; the destructor then does nothing). Returns
  /// false when disabled or the file could not be opened.
  bool write();

 private:
  std::string binary_;
  json::Value config_ = json::Value::object();
  json::Value phases_ = json::Value::array();
  json::Value tables_ = json::Value::array();
  json::Value records_ = json::Value::array();
  RunReport* prev_ = nullptr;  ///< current() stack link
  bool written_ = false;
};

}  // namespace actcomp::obs
