// Hierarchical scoped profiler (DESIGN.md §11).
//
//   void step() {
//     ACTCOMP_PROFILE("train.step");
//     forward();   // zones opened inside nest under train.step
//   }
//
// Model: each ACTCOMP_PROFILE(name) opens a zone under the calling thread's
// current zone, forming a global tree of zone *paths* ("train.step/forward/
// matmul2d"). Timing is recorded into thread-local buffers on zone exit and
// merged only when snapshot_zones() runs, so the hot path never touches a
// shared cache line; raw begin/end events are kept too (bounded) for the
// Chrome-trace bridge (obs::to_chrome_trace).
//
// Cross-thread nesting: a zone's identity is a small global node id, so a
// parent context can be carried onto another thread with ZoneContext — the
// core thread pool does this for every pooled job, which is why a kernel
// profiled under a 4-lane pool aggregates to the exact same tree (same
// paths, same counts) as under 1 lane; only the timings differ.
//
// Cost contract: compiled out (cmake -DACTCOMP_PROFILE=0, which defines
// ACTCOMP_PROFILE_ENABLED=0) the macro expands to nothing and the helpers
// below are empty inlines — the binary is bit-identical in behaviour to an
// uninstrumented build. Compiled in but runtime-disabled (the default), a
// zone costs one relaxed atomic load. Enabled (ACTCOMP_PROF=1 or
// set_profiler_enabled(true)), a zone costs two clock reads plus a
// thread-local map hit — <2% on the end-to-end fine-tune step, enforced by
// `./ci.sh bench`'s overhead gate.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#ifndef ACTCOMP_PROFILE_ENABLED
#define ACTCOMP_PROFILE_ENABLED 1
#endif

namespace actcomp::obs {

/// Runtime switch. Initialized from the ACTCOMP_PROF env var (unset/0 =
/// off); flipping it mid-run is allowed (zones straddling the flip record).
bool profiler_enabled();
void set_profiler_enabled(bool on);

/// False when the build compiled zones out (ACTCOMP_PROFILE=0).
constexpr bool profiler_compiled_in() { return ACTCOMP_PROFILE_ENABLED != 0; }

/// One node of the aggregated zone tree, in deterministic order: depth-first
/// from the root, siblings sorted by name.
struct ZoneStats {
  std::string path;  ///< "train.step/forward/matmul2d"
  std::string name;  ///< leaf segment
  int depth = 0;     ///< 0 for top-level zones
  int64_t count = 0;
  double total_ms = 0.0;  ///< wall time in the zone, children included
  double self_ms = 0.0;   ///< total_ms minus direct children's total
};

/// Merge every thread's buffers (and the buffers of threads that have since
/// exited) into the aggregated tree. Does not reset. Thread-safe; callers
/// should be quiesced relative to in-flight zones they care about.
std::vector<ZoneStats> snapshot_zones();

/// Drop all recorded timings and events (the zone-path table survives, so
/// node ids remain valid).
void reset_zones();

/// Chrome tracing JSON of the raw zone events ("traceEvents", ph:"X",
/// pid 1, one tid per OS thread observed, ts/dur in µs). Loadable in
/// Perfetto alongside the simulator's write_chrome_trace output.
void to_chrome_trace(std::ostream& os);

/// Events are capped per thread (kMaxEventsPerThread); this counts what got
/// dropped after the cap, across all threads, since the last reset.
int64_t dropped_zone_events();

namespace detail {

extern std::atomic<bool> g_enabled;  // read by the macro's fast path

uint32_t current_zone();
void set_current_zone(uint32_t id);
/// Find-or-create the child of `parent` named `name`; thread-safe.
uint32_t intern_zone(uint32_t parent, const char* name);
void record_zone(uint32_t id, uint32_t parent, int64_t start_ns, int64_t end_ns);
int64_t now_ns();

}  // namespace detail

#if ACTCOMP_PROFILE_ENABLED

/// RAII zone. Prefer the ACTCOMP_PROFILE macro; `name` must outlive the
/// profiler (string literals only).
class ScopedZone {
 public:
  explicit ScopedZone(const char* name) {
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
    parent_ = detail::current_zone();
    id_ = detail::intern_zone(parent_, name);
    detail::set_current_zone(id_);
    start_ns_ = detail::now_ns();
  }
  ~ScopedZone() {
    if (id_ == 0) return;
    detail::record_zone(id_, parent_, start_ns_, detail::now_ns());
    detail::set_current_zone(parent_);
  }
  ScopedZone(const ScopedZone&) = delete;
  ScopedZone& operator=(const ScopedZone&) = delete;

 private:
  uint32_t id_ = 0;
  uint32_t parent_ = 0;
  int64_t start_ns_ = 0;
};

/// Adopt a zone (by id) as the calling thread's current context; restores on
/// destruction. Used by the thread pool to parent worker-side zones under
/// the submitting call site.
class ZoneContext {
 public:
  explicit ZoneContext(uint32_t id) : saved_(detail::current_zone()) {
    detail::set_current_zone(id);
  }
  ~ZoneContext() { detail::set_current_zone(saved_); }
  ZoneContext(const ZoneContext&) = delete;
  ZoneContext& operator=(const ZoneContext&) = delete;

 private:
  uint32_t saved_;
};

/// The calling thread's current zone id (0 = root), for ZoneContext.
inline uint32_t current_zone_id() { return detail::current_zone(); }

#define ACTCOMP_PROF_CONCAT2(a, b) a##b
#define ACTCOMP_PROF_CONCAT(a, b) ACTCOMP_PROF_CONCAT2(a, b)
#define ACTCOMP_PROFILE(name) \
  ::actcomp::obs::ScopedZone ACTCOMP_PROF_CONCAT(actcomp_prof_zone_, __COUNTER__)(name)

#else  // ACTCOMP_PROFILE_ENABLED == 0: every hook is a no-op.

class ScopedZone {
 public:
  explicit ScopedZone(const char*) {}
};
class ZoneContext {
 public:
  explicit ZoneContext(uint32_t) {}
};
inline uint32_t current_zone_id() { return 0; }

#define ACTCOMP_PROFILE(name) ((void)0)

#endif  // ACTCOMP_PROFILE_ENABLED

}  // namespace actcomp::obs
