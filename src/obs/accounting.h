// The paper's per-phase time accounting (Tables 4 and 7), as one canonical
// struct + column order instead of per-bench arithmetic.
//
// The two breakdown tables share the same eight columns but differ in what
// "Forward/Backward" mean: fine-tuning (Table 4) reports one micro-batch's
// traversal of the whole pipeline, pre-training (Table 7) reports the
// busiest rank's totals across all micro-batches — Accounting names that
// choice. parallel::IterationBreakdown::phase_breakdown() is the only
// conversion, so the tables, the RunReports, and the golden tests all read
// the same numbers.
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"

namespace actcomp::obs {

/// Which Forward/Backward/Waiting convention a breakdown uses.
enum class Accounting {
  kFinetune,  ///< Table 4: per-micro-batch critical path
  kPretrain,  ///< Table 7: busiest rank's totals
};

/// One row of the paper's breakdown tables, in ms.
struct PhaseBreakdown {
  double forward_ms = 0.0;
  double backward_ms = 0.0;
  double optimizer_ms = 0.0;
  double waiting_ms = 0.0;  ///< "Waiting & Pipeline Comm."
  double total_ms = 0.0;
  double encode_ms = 0.0;
  double decode_ms = 0.0;
  double tensor_comm_ms = 0.0;
};

/// The column headers of Tables 4/7, first column ("Algorithm") included,
/// in the order benches print and reports serialize.
const std::vector<std::string>& breakdown_header();

/// The numeric columns of one row, in breakdown_header() order (without the
/// label column).
std::vector<double> breakdown_columns(const PhaseBreakdown& b);

/// {"forward_ms": ..., ..., "tensor_comm_ms": ...} for RunReport phases.
json::Value to_json(const PhaseBreakdown& b);

}  // namespace actcomp::obs
