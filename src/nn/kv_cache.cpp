#include "nn/kv_cache.h"

#include <algorithm>

#include "tensor/check.h"

namespace actcomp::nn {

namespace ts = actcomp::tensor;

KvCache::KvCache(int64_t num_layers, int64_t batch, int64_t hidden,
                 int64_t capacity)
    : batch_(batch), hidden_(hidden) {
  ACTCOMP_CHECK(num_layers > 0, "KvCache needs num_layers >= 1, got " << num_layers);
  ACTCOMP_CHECK(batch > 0, "KvCache needs batch >= 1, got " << batch);
  ACTCOMP_CHECK(hidden > 0, "KvCache needs hidden >= 1, got " << hidden);
  ACTCOMP_CHECK(capacity >= 0, "KvCache capacity must be >= 0, got " << capacity);
  slots_.resize(static_cast<size_t>(num_layers));
  if (capacity > 0) grow(capacity);
}

void KvCache::grow(int64_t needed) {
  if (needed <= cap_) return;
  int64_t new_cap = std::max<int64_t>(cap_ * 2, 16);
  new_cap = std::max(new_cap, needed);
  for (auto& slot : slots_) {
    ts::Tensor k{ts::Shape{batch_, new_cap, hidden_}};
    ts::Tensor v{ts::Shape{batch_, new_cap, hidden_}};
    if (len_ > 0) {
      const auto ok = slot.k.data();
      const auto ov = slot.v.data();
      auto nk = k.data();
      auto nv = v.data();
      for (int64_t b = 0; b < batch_; ++b) {
        const size_t src = static_cast<size_t>(b * cap_ * hidden_);
        const size_t dst = static_cast<size_t>(b * new_cap * hidden_);
        const size_t rows = static_cast<size_t>(len_ * hidden_);
        std::copy_n(ok.data() + src, rows, nk.data() + dst);
        std::copy_n(ov.data() + src, rows, nv.data() + dst);
      }
    }
    slot.k = std::move(k);
    slot.v = std::move(v);
  }
  cap_ = new_cap;
}

void KvCache::begin_step(int64_t n) {
  ACTCOMP_CHECK(n >= 1, "KvCache::begin_step needs n >= 1, got " << n);
  ACTCOMP_CHECK(!step_open_, "KvCache::begin_step: a step of " << step_n_
                             << " positions is already open (commit it first)");
  grow(len_ + n);
  step_n_ = n;
  step_open_ = true;
  for (auto& slot : slots_) slot.appended = false;
}

void KvCache::append(int64_t layer, const tensor::Tensor& k,
                     const tensor::Tensor& v) {
  ACTCOMP_CHECK(step_open_, "KvCache::append outside begin_step/commit");
  ACTCOMP_CHECK(layer >= 0 && layer < num_layers(),
                "KvCache::append: layer " << layer << " out of range [0, "
                                          << num_layers() << ")");
  auto& slot = slots_[static_cast<size_t>(layer)];
  ACTCOMP_CHECK(!slot.appended,
                "KvCache::append: layer " << layer << " already appended this step");
  const ts::Shape want{batch_, step_n_, hidden_};
  ACTCOMP_CHECK(k.shape() == want && v.shape() == want,
                "KvCache::append: expected k/v " << want.str() << ", got k "
                                                 << k.shape().str() << ", v "
                                                 << v.shape().str());
  const auto sk = k.data();
  const auto sv = v.data();
  auto dk = slot.k.data();
  auto dv = slot.v.data();
  for (int64_t b = 0; b < batch_; ++b) {
    const size_t src = static_cast<size_t>(b * step_n_ * hidden_);
    const size_t dst = static_cast<size_t>((b * cap_ + len_) * hidden_);
    const size_t rows = static_cast<size_t>(step_n_ * hidden_);
    std::copy_n(sk.data() + src, rows, dk.data() + dst);
    std::copy_n(sv.data() + src, rows, dv.data() + dst);
  }
  slot.appended = true;
}

void KvCache::commit() {
  ACTCOMP_CHECK(step_open_, "KvCache::commit without an open step");
  for (int64_t l = 0; l < num_layers(); ++l) {
    ACTCOMP_CHECK(slots_[static_cast<size_t>(l)].appended,
                  "KvCache::commit: layer " << l << " never appended this step");
  }
  len_ += step_n_;
  step_n_ = 0;
  step_open_ = false;
}

tensor::Tensor KvCache::gather(const tensor::Tensor& store, int64_t layer,
                               int64_t total) const {
  const int64_t visible =
      len_ + (step_open_ && slots_[static_cast<size_t>(layer)].appended ? step_n_
                                                                        : 0);
  ACTCOMP_CHECK(total >= 0 && total <= visible,
                "KvCache: requested " << total << " positions of layer " << layer
                                      << ", only " << visible << " are cached");
  ts::Tensor out{ts::Shape{batch_, total, hidden_}};
  const auto src = store.data();
  auto dst = out.data();
  for (int64_t b = 0; b < batch_; ++b) {
    std::copy_n(src.data() + static_cast<size_t>(b * cap_ * hidden_),
                static_cast<size_t>(total * hidden_),
                dst.data() + static_cast<size_t>(b * total * hidden_));
  }
  return out;
}

tensor::Tensor KvCache::keys(int64_t layer, int64_t total) const {
  ACTCOMP_CHECK(layer >= 0 && layer < num_layers(),
                "KvCache::keys: layer " << layer << " out of range");
  return gather(slots_[static_cast<size_t>(layer)].k, layer, total);
}

tensor::Tensor KvCache::values(int64_t layer, int64_t total) const {
  ACTCOMP_CHECK(layer >= 0 && layer < num_layers(),
                "KvCache::values: layer " << layer << " out of range");
  return gather(slots_[static_cast<size_t>(layer)].v, layer, total);
}

void KvCache::rollback(int64_t new_len) {
  ACTCOMP_CHECK(!step_open_, "KvCache::rollback with an open step");
  ACTCOMP_CHECK(new_len >= 0 && new_len <= len_,
                "KvCache::rollback to " << new_len << " outside [0, " << len_
                                        << "]");
  len_ = new_len;
}

}  // namespace actcomp::nn
