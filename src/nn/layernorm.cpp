#include "nn/layernorm.h"

#include "autograd/functions.h"
#include "tensor/check.h"

namespace actcomp::nn {

LayerNorm::LayerNorm(int64_t features, float eps) : eps_(eps) {
  ACTCOMP_CHECK(features > 0, "layernorm features must be positive");
  gamma_ = autograd::Variable::leaf(tensor::Tensor::ones(tensor::Shape{features}),
                                    /*requires_grad=*/true);
  beta_ = autograd::Variable::leaf(tensor::Tensor::zeros(tensor::Shape{features}),
                                   /*requires_grad=*/true);
}

autograd::Variable LayerNorm::forward(const autograd::Variable& x) const {
  return autograd::layernorm(x, gamma_, beta_, eps_);
}

std::vector<NamedParam> LayerNorm::named_parameters() const {
  return {{"gamma", gamma_}, {"beta", beta_}};
}

}  // namespace actcomp::nn
