// Multi-head self-attention (the BERT encoder flavour).
#pragma once

#include "nn/linear.h"
#include "nn/module.h"

namespace actcomp::nn {

class MultiHeadAttention final : public Module {
 public:
  MultiHeadAttention(int64_t hidden, int64_t num_heads, tensor::Generator& gen);

  /// x: [b, s, h]. `key_mask` is either empty (no padding) or a [b, s] tensor
  /// that is 0 at valid positions and a large negative value at padded ones;
  /// it is added to every query's attention scores.
  autograd::Variable forward(const autograd::Variable& x,
                             const tensor::Tensor& key_mask) const;

  std::vector<NamedParam> named_parameters() const override;

  int64_t hidden() const { return hidden_; }
  int64_t num_heads() const { return heads_; }

 private:
  int64_t hidden_;
  int64_t heads_;
  int64_t head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

}  // namespace actcomp::nn
