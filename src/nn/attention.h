// Multi-head self-attention (the BERT encoder flavour).
#pragma once

#include "nn/kv_cache.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace actcomp::nn {

class MultiHeadAttention final : public Module {
 public:
  MultiHeadAttention(int64_t hidden, int64_t num_heads, tensor::Generator& gen);

  /// x: [b, s, h]. `key_mask` is either empty (no padding) or a [b, s] tensor
  /// that is 0 at valid positions and a large negative value at padded ones;
  /// it is added to every query's attention scores.
  autograd::Variable forward(const autograd::Variable& x,
                             const tensor::Tensor& key_mask) const;

  /// Full-sequence causal self-attention (no cache): query t attends keys
  /// 0..t via an additive -inf mask. The reference path the KV-cache decode
  /// is pinned against (tests/kv_cache_test.cpp).
  autograd::Variable forward_causal(const autograd::Variable& x) const;

  /// Incremental causal attention: projects k/v for the n new positions in
  /// `x` ([b, n, h]), appends them to `cache` under `layer`, and attends the
  /// new queries over every cached position. The cache step must be open
  /// (KvCache::begin_step).
  autograd::Variable forward_cached(const autograd::Variable& x, KvCache& cache,
                                    int64_t layer) const;

  std::vector<NamedParam> named_parameters() const override;

  int64_t hidden() const { return hidden_; }
  int64_t num_heads() const { return heads_; }

 private:
  int64_t hidden_;
  int64_t heads_;
  int64_t head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

}  // namespace actcomp::nn
