// Linear (dense) layer: y = x W + b.
#pragma once

#include "autograd/functions.h"
#include "nn/module.h"
#include "tensor/random.h"

namespace actcomp::nn {

class Linear final : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, tensor::Generator& gen,
         bool bias = true);

  /// x: [..., in_features] -> [..., out_features]. When `act` is not kNone
  /// the activation fuses with the bias into one tape node (bias_act).
  autograd::Variable forward(const autograd::Variable& x,
                             autograd::Act act = autograd::Act::kNone) const;

  std::vector<NamedParam> named_parameters() const override;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }
  const autograd::Variable& weight() const { return weight_; }

 private:
  int64_t in_;
  int64_t out_;
  autograd::Variable weight_;  // [in, out]
  autograd::Variable bias_;    // [out], undefined when bias = false
};

}  // namespace actcomp::nn
