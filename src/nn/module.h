// Module: base class for parameterized network components.
//
// Parameters are exposed by name so checkpoints can be saved/loaded
// selectively — the paper's Takeaway 5 (pre-train with AE codecs, fine-tune
// without them) is exactly a filtered load.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "tensor/io.h"

namespace actcomp::nn {

using NamedParam = std::pair<std::string, autograd::Variable>;

class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters with hierarchical dotted names.
  virtual std::vector<NamedParam> named_parameters() const = 0;

  /// Flat parameter list (tape leaves, shared with named_parameters()).
  std::vector<autograd::Variable> parameters() const;

  /// Total trainable scalar count.
  int64_t parameter_count() const;

  /// Snapshot parameter values into a tensor map (names -> cloned tensors).
  tensor::TensorMap state_dict() const;

  /// Load values for every parameter whose name appears in `state`; names
  /// absent from `state` are left untouched (enables partial restores).
  /// Returns the number of parameters loaded.
  int load_state_dict(const tensor::TensorMap& state);
};

/// Prefix every name in `params` with `prefix + "."` (module composition).
std::vector<NamedParam> prefixed(const std::string& prefix,
                                 std::vector<NamedParam> params);

}  // namespace actcomp::nn
