// TransformerEncoderLayer with the paper's compression hook points.
//
// Megatron-LM tensor parallelism all-reduces exactly two [b, s, h] tensors
// per layer: the attention block output and the MLP block output (Fig. 3's
// `g` operators). A compressor attached to this layer is applied to those two
// tensors right before the (virtual) all-reduce — faithfully replicating
// where the paper's C/DC pair sits in the computation.
#pragma once

#include "compress/compressor.h"
#include "nn/attention.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace actcomp::nn {

struct TransformerLayerConfig {
  int64_t hidden = 128;
  int64_t num_heads = 4;
  int64_t intermediate = 512;  ///< MLP inner size (4h in BERT)
  float dropout = 0.1f;
};

class TransformerEncoderLayer final : public Module {
 public:
  TransformerEncoderLayer(const TransformerLayerConfig& cfg,
                          tensor::Generator& gen);

  /// Attach (or detach, with nullptr) the compressors applied to the two
  /// TP communication points. Not owned; must outlive forward/backward.
  void set_compression(compress::Compressor* attn_comm,
                       compress::Compressor* mlp_comm);

  bool is_compressed() const { return attn_comm_ != nullptr || mlp_comm_ != nullptr; }

  autograd::Variable forward(const autograd::Variable& x,
                             const tensor::Tensor& key_mask,
                             tensor::Generator& gen, bool training) const;

  /// Causal full-sequence inference forward (no dropout). Compressors
  /// attached to the two TP points still apply — the decode path compresses
  /// exactly what the training path does.
  autograd::Variable forward_causal(const autograd::Variable& x) const;

  /// Incremental inference forward over this layer's cached keys/values.
  autograd::Variable forward_cached(const autograd::Variable& x, KvCache& cache,
                                    int64_t layer) const;

  std::vector<NamedParam> named_parameters() const override;

  const TransformerLayerConfig& config() const { return cfg_; }

 private:
  /// Shared tail of the inference forwards: TP-point compression, residuals,
  /// layer norms, MLP (no dropout).
  autograd::Variable finish_inference(const autograd::Variable& x,
                                      autograd::Variable a) const;

  TransformerLayerConfig cfg_;
  MultiHeadAttention attn_;
  LayerNorm ln1_;
  Linear mlp_in_;
  Linear mlp_out_;
  LayerNorm ln2_;
  compress::Compressor* attn_comm_ = nullptr;
  compress::Compressor* mlp_comm_ = nullptr;
};

}  // namespace actcomp::nn
