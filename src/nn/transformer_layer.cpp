#include "nn/transformer_layer.h"

#include "autograd/functions.h"
#include "tensor/check.h"

namespace actcomp::nn {

namespace ag = actcomp::autograd;

TransformerEncoderLayer::TransformerEncoderLayer(const TransformerLayerConfig& cfg,
                                                 tensor::Generator& gen)
    : cfg_(cfg),
      attn_(cfg.hidden, cfg.num_heads, gen),
      ln1_(cfg.hidden),
      mlp_in_(cfg.hidden, cfg.intermediate, gen),
      mlp_out_(cfg.intermediate, cfg.hidden, gen),
      ln2_(cfg.hidden) {}

void TransformerEncoderLayer::set_compression(compress::Compressor* attn_comm,
                                              compress::Compressor* mlp_comm) {
  attn_comm_ = attn_comm;
  mlp_comm_ = mlp_comm;
}

ag::Variable TransformerEncoderLayer::forward(const ag::Variable& x,
                                              const tensor::Tensor& key_mask,
                                              tensor::Generator& gen,
                                              bool training) const {
  // Attention block; compress where TP would all-reduce its output.
  ag::Variable a = attn_.forward(x, key_mask);
  if (attn_comm_ != nullptr) a = attn_comm_->apply(a);
  a = ag::dropout(a, cfg_.dropout, gen, training);
  ag::Variable h1 = ln1_.forward(ag::add(x, a));

  // MLP block; compress where TP would all-reduce its output. The gelu
  // fuses into mlp_in's bias epilogue (one tape node, same bytes).
  ag::Variable m = mlp_out_.forward(mlp_in_.forward(h1, ag::Act::kGelu));
  if (mlp_comm_ != nullptr) m = mlp_comm_->apply(m);
  m = ag::dropout(m, cfg_.dropout, gen, training);
  return ln2_.forward(ag::add(h1, m));
}

ag::Variable TransformerEncoderLayer::finish_inference(const ag::Variable& x,
                                                       ag::Variable a) const {
  if (attn_comm_ != nullptr) a = attn_comm_->apply(a);
  ag::Variable h1 = ln1_.forward(ag::add(x, a));
  ag::Variable m = mlp_out_.forward(mlp_in_.forward(h1, ag::Act::kGelu));
  if (mlp_comm_ != nullptr) m = mlp_comm_->apply(m);
  return ln2_.forward(ag::add(h1, m));
}

ag::Variable TransformerEncoderLayer::forward_causal(const ag::Variable& x) const {
  return finish_inference(x, attn_.forward_causal(x));
}

ag::Variable TransformerEncoderLayer::forward_cached(const ag::Variable& x,
                                                     KvCache& cache,
                                                     int64_t layer) const {
  return finish_inference(x, attn_.forward_cached(x, cache, layer));
}

std::vector<NamedParam> TransformerEncoderLayer::named_parameters() const {
  std::vector<NamedParam> out;
  for (auto& p : prefixed("attn", attn_.named_parameters())) out.push_back(std::move(p));
  for (auto& p : prefixed("ln1", ln1_.named_parameters())) out.push_back(std::move(p));
  for (auto& p : prefixed("mlp_in", mlp_in_.named_parameters())) out.push_back(std::move(p));
  for (auto& p : prefixed("mlp_out", mlp_out_.named_parameters())) out.push_back(std::move(p));
  for (auto& p : prefixed("ln2", ln2_.named_parameters())) out.push_back(std::move(p));
  return out;
}

}  // namespace actcomp::nn
