#include "nn/bert.h"

#include "autograd/functions.h"
#include "tensor/check.h"

namespace actcomp::nn {

namespace ag = actcomp::autograd;
namespace ts = actcomp::tensor;

tensor::Tensor make_key_mask(const EncoderInput& in) {
  ts::Tensor mask{ts::Shape{in.batch, in.seq}};
  auto d = mask.data();
  for (int64_t b = 0; b < in.batch; ++b) {
    const int64_t len = b < static_cast<int64_t>(in.lengths.size())
                            ? in.lengths[static_cast<size_t>(b)]
                            : in.seq;
    for (int64_t s = len; s < in.seq; ++s) {
      d[static_cast<size_t>(b * in.seq + s)] = -1e4f;
    }
  }
  return mask;
}

BertModel::BertModel(const BertConfig& cfg, tensor::Generator& gen)
    : cfg_(cfg), emb_ln_(cfg.hidden) {
  ACTCOMP_CHECK(cfg.vocab_size > 0 && cfg.hidden > 0 && cfg.num_layers > 0,
                "invalid BertConfig");
  const float std = 0.02f;  // BERT's truncated-normal-ish init
  tok_emb_ = ag::Variable::leaf(
      gen.normal(ts::Shape{cfg.vocab_size, cfg.hidden}, 0.0f, std), true);
  pos_emb_ = ag::Variable::leaf(
      gen.normal(ts::Shape{cfg.max_seq, cfg.hidden}, 0.0f, std), true);
  seg_emb_ = ag::Variable::leaf(
      gen.normal(ts::Shape{cfg.type_vocab, cfg.hidden}, 0.0f, std), true);
  layers_.reserve(static_cast<size_t>(cfg.num_layers));
  for (int64_t i = 0; i < cfg.num_layers; ++i) {
    layers_.push_back(
        std::make_unique<TransformerEncoderLayer>(cfg.layer_config(), gen));
  }
}

TransformerEncoderLayer& BertModel::layer(int64_t i) {
  ACTCOMP_CHECK(i >= 0 && i < num_layers(), "layer index " << i << " out of range");
  return *layers_[static_cast<size_t>(i)];
}

void BertModel::set_layer_compression(int64_t i, compress::Compressor* attn_comm,
                                      compress::Compressor* mlp_comm) {
  layer(i).set_compression(attn_comm, mlp_comm);
}

void BertModel::set_boundary_compression(int64_t i, compress::Compressor* comp) {
  ACTCOMP_CHECK(i >= 0 && i < num_layers(), "boundary index " << i << " out of range");
  if (comp == nullptr) {
    boundary_comp_.erase(i);
  } else {
    boundary_comp_[i] = comp;
  }
}

void BertModel::clear_compression() {
  for (auto& l : layers_) l->set_compression(nullptr, nullptr);
  boundary_comp_.clear();
}

ag::Variable BertModel::forward(const EncoderInput& in, tensor::Generator& gen,
                                bool training) const {
  ACTCOMP_CHECK(in.batch > 0 && in.seq > 0, "empty encoder input");
  ACTCOMP_CHECK(in.seq <= cfg_.max_seq,
                "sequence length " << in.seq << " exceeds max_seq " << cfg_.max_seq);
  ACTCOMP_CHECK(static_cast<int64_t>(in.token_ids.size()) == in.batch * in.seq,
                "token_ids size mismatch");

  // Token + position + segment embeddings.
  ag::Variable x = ag::embedding(tok_emb_, in.token_ids);  // [b*s, h]
  std::vector<int64_t> pos_ids(static_cast<size_t>(in.batch * in.seq));
  for (int64_t b = 0; b < in.batch; ++b) {
    for (int64_t s = 0; s < in.seq; ++s) {
      pos_ids[static_cast<size_t>(b * in.seq + s)] = s;
    }
  }
  x = ag::add(x, ag::embedding(pos_emb_, pos_ids));
  if (!in.segment_ids.empty()) {
    ACTCOMP_CHECK(static_cast<int64_t>(in.segment_ids.size()) == in.batch * in.seq,
                  "segment_ids size mismatch");
    x = ag::add(x, ag::embedding(seg_emb_, in.segment_ids));
  }
  x = emb_ln_.forward(x);
  x = ag::dropout(x, cfg_.dropout, gen, training);
  x = ag::reshape(x, ts::Shape{in.batch, in.seq, cfg_.hidden});

  const ts::Tensor key_mask = make_key_mask(in);
  for (int64_t i = 0; i < num_layers(); ++i) {
    x = layers_[static_cast<size_t>(i)]->forward(x, key_mask, gen, training);
    const auto it = boundary_comp_.find(i);
    if (it != boundary_comp_.end()) x = it->second->apply(x);
  }
  return x;
}

ag::Variable BertModel::embed_causal(const std::vector<int64_t>& token_ids,
                                     int64_t batch, int64_t start) const {
  ACTCOMP_CHECK(batch > 0, "causal forward needs batch >= 1, got " << batch);
  ACTCOMP_CHECK(!token_ids.empty(),
                "causal forward got an empty token stream — decode needs at "
                "least one token");
  ACTCOMP_CHECK(static_cast<int64_t>(token_ids.size()) % batch == 0,
                "token_ids size " << token_ids.size()
                                  << " not divisible by batch " << batch);
  const int64_t n = static_cast<int64_t>(token_ids.size()) / batch;
  ACTCOMP_CHECK(start + n <= cfg_.max_seq,
                "decode positions [" << start << ", " << start + n
                                     << ") exceed max_seq " << cfg_.max_seq);

  ag::Variable x = ag::embedding(tok_emb_, token_ids);  // [b*n, h]
  std::vector<int64_t> pos_ids(static_cast<size_t>(batch * n));
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t i = 0; i < n; ++i) {
      pos_ids[static_cast<size_t>(b * n + i)] = start + i;
    }
  }
  x = ag::add(x, ag::embedding(pos_emb_, pos_ids));
  x = emb_ln_.forward(x);
  return ag::reshape(x, ts::Shape{batch, n, cfg_.hidden});
}

ag::Variable BertModel::forward_causal(const std::vector<int64_t>& token_ids,
                                       int64_t batch) const {
  ag::Variable x = embed_causal(token_ids, batch, 0);
  for (int64_t i = 0; i < num_layers(); ++i) {
    x = layers_[static_cast<size_t>(i)]->forward_causal(x);
    const auto it = boundary_comp_.find(i);
    if (it != boundary_comp_.end()) x = it->second->apply(x);
  }
  return x;
}

ag::Variable BertModel::forward_cached(const std::vector<int64_t>& token_ids,
                                       int64_t batch, KvCache& cache) const {
  ACTCOMP_CHECK(cache.num_layers() == num_layers() &&
                    cache.hidden() == cfg_.hidden && cache.batch() == batch,
                "cache shaped for " << cache.num_layers() << " layers x ["
                                    << cache.batch() << ", ·, " << cache.hidden()
                                    << "], model needs " << num_layers()
                                    << " x [" << batch << ", ·, " << cfg_.hidden
                                    << "]");
  ag::Variable x = embed_causal(token_ids, batch, cache.len());
  const int64_t n = x.value().dim(1);
  cache.begin_step(n);
  for (int64_t i = 0; i < num_layers(); ++i) {
    x = layers_[static_cast<size_t>(i)]->forward_cached(x, cache, i);
    const auto it = boundary_comp_.find(i);
    if (it != boundary_comp_.end()) x = it->second->apply(x);
  }
  cache.commit();
  return x;
}

KvCache BertModel::make_cache(int64_t batch, int64_t capacity) const {
  return KvCache(num_layers(), batch, cfg_.hidden, capacity);
}

std::vector<NamedParam> BertModel::named_parameters() const {
  std::vector<NamedParam> out{{"embeddings.token", tok_emb_},
                              {"embeddings.position", pos_emb_},
                              {"embeddings.segment", seg_emb_}};
  for (auto& p : prefixed("embeddings.ln", emb_ln_.named_parameters())) {
    out.push_back(std::move(p));
  }
  for (size_t i = 0; i < layers_.size(); ++i) {
    for (auto& p : prefixed("layer" + std::to_string(i),
                            layers_[i]->named_parameters())) {
      out.push_back(std::move(p));
    }
  }
  return out;
}

// ---- heads ----

namespace {
/// [CLS] rows of a [b, s, h] sequence output, as [b, h].
ag::Variable cls_rows(const ag::Variable& seq_out) {
  const ts::Tensor& v = seq_out.value();
  ACTCOMP_CHECK(v.rank() == 3, "head expects [b, s, h], got " << v.shape().str());
  const int64_t b = v.dim(0), s = v.dim(1), h = v.dim(2);
  ag::Variable flat = ag::reshape(seq_out, ts::Shape{b * s, h});
  std::vector<int64_t> rows(static_cast<size_t>(b));
  for (int64_t i = 0; i < b; ++i) rows[static_cast<size_t>(i)] = i * s;
  return ag::gather_rows(flat, rows);
}
}  // namespace

ClassificationHead::ClassificationHead(int64_t hidden, int64_t num_classes,
                                       tensor::Generator& gen)
    : pooler_(hidden, hidden, gen), classifier_(hidden, num_classes, gen) {}

ag::Variable ClassificationHead::forward(const ag::Variable& seq_out) const {
  ag::Variable pooled = ag::tanh(pooler_.forward(cls_rows(seq_out)));
  return classifier_.forward(pooled);
}

std::vector<NamedParam> ClassificationHead::named_parameters() const {
  std::vector<NamedParam> out;
  for (auto& p : prefixed("pooler", pooler_.named_parameters())) out.push_back(std::move(p));
  for (auto& p : prefixed("classifier", classifier_.named_parameters())) out.push_back(std::move(p));
  return out;
}

RegressionHead::RegressionHead(int64_t hidden, tensor::Generator& gen)
    : pooler_(hidden, hidden, gen), out_(hidden, 1, gen) {}

ag::Variable RegressionHead::forward(const ag::Variable& seq_out) const {
  ag::Variable pooled = ag::tanh(pooler_.forward(cls_rows(seq_out)));
  ag::Variable y = out_.forward(pooled);  // [b, 1]
  return ag::reshape(y, ts::Shape{y.value().dim(0)});
}

std::vector<NamedParam> RegressionHead::named_parameters() const {
  std::vector<NamedParam> out;
  for (auto& p : prefixed("pooler", pooler_.named_parameters())) out.push_back(std::move(p));
  for (auto& p : prefixed("out", out_.named_parameters())) out.push_back(std::move(p));
  return out;
}

MlmHead::MlmHead(int64_t hidden, int64_t vocab, tensor::Generator& gen)
    : transform_(hidden, hidden, gen), ln_(hidden), decoder_(hidden, vocab, gen) {}

ag::Variable MlmHead::forward(const ag::Variable& seq_out) const {
  const ts::Tensor& v = seq_out.value();
  ACTCOMP_CHECK(v.rank() == 3, "MLM head expects [b, s, h], got " << v.shape().str());
  const int64_t b = v.dim(0), s = v.dim(1), h = v.dim(2);
  ag::Variable flat = ag::reshape(seq_out, ts::Shape{b * s, h});
  ag::Variable t = ln_.forward(transform_.forward(flat, ag::Act::kGelu));
  return decoder_.forward(t);
}

std::vector<NamedParam> MlmHead::named_parameters() const {
  std::vector<NamedParam> out;
  for (auto& p : prefixed("transform", transform_.named_parameters())) out.push_back(std::move(p));
  for (auto& p : prefixed("ln", ln_.named_parameters())) out.push_back(std::move(p));
  for (auto& p : prefixed("decoder", decoder_.named_parameters())) out.push_back(std::move(p));
  return out;
}

// ---- greedy decoding ----

namespace {

/// Last position of a [1, n, h] hidden state as [1, 1, h].
ag::Variable last_position(const ag::Variable& h) {
  const ts::Tensor& v = h.value();
  const int64_t n = v.dim(1), hid = v.dim(2);
  if (n == 1) return h;
  ag::Variable flat = ag::reshape(h, ts::Shape{n, hid});
  ag::Variable last = ag::gather_rows(flat, {n - 1});
  return ag::reshape(last, ts::Shape{1, 1, hid});
}

/// Argmax over a [1, vocab] logits row, lowest index on ties.
int64_t argmax_logits(const ag::Variable& logits) {
  const auto d = logits.value().data();
  int64_t best = 0;
  for (int64_t i = 1; i < static_cast<int64_t>(d.size()); ++i) {
    if (d[static_cast<size_t>(i)] > d[static_cast<size_t>(best)]) best = i;
  }
  return best;
}

}  // namespace

GenerateResult greedy_generate(const BertModel& model, const MlmHead& lm_head,
                               const std::vector<int64_t>& prompt,
                               int64_t max_new_tokens) {
  ACTCOMP_CHECK(!prompt.empty(),
                "greedy_generate: empty prompt — the decode loop needs at "
                "least one token of context");
  ACTCOMP_CHECK(max_new_tokens >= 0,
                "greedy_generate: max_new_tokens = " << max_new_tokens
                                                     << ", must be >= 0");
  const int64_t p = static_cast<int64_t>(prompt.size());
  ACTCOMP_CHECK(p + max_new_tokens <= model.config().max_seq,
                "greedy_generate: prompt (" << p << ") + max_new_tokens ("
                                            << max_new_tokens
                                            << ") exceeds max_seq "
                                            << model.config().max_seq);

  GenerateResult r;
  r.tokens = prompt;
  r.prompt_tokens = p;
  if (max_new_tokens == 0) return r;  // zero-length decode: graceful no-op

  KvCache cache = model.make_cache(1, p + max_new_tokens);
  ag::Variable h = model.forward_cached(prompt, 1, cache);  // prefill
  int64_t next = argmax_logits(lm_head.forward(last_position(h)));
  for (;;) {
    r.tokens.push_back(next);
    ++r.generated;
    if (r.generated == max_new_tokens) break;
    h = model.forward_cached({next}, 1, cache);  // decode one position
    next = argmax_logits(lm_head.forward(h));
  }
  return r;
}

}  // namespace actcomp::nn
