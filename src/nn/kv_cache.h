// KvCache: per-layer key/value storage for autoregressive decoding.
//
// The cache holds, for every encoder layer, the projected keys and values of
// every committed position as [batch, capacity, hidden] tensors sharing one
// position counter. A decode step is a transaction: begin_step(n) reserves n
// positions (growing storage if needed), each layer append()s its k/v rows as
// its attention runs, and commit() advances the shared length — so a throw
// mid-forward leaves the committed prefix intact and the step can simply be
// retried. rollback() truncates to any shorter prefix (speculative decoding,
// prompt reuse) without touching storage.
//
// Contract pinned by tests/kv_cache_test.cpp: decoding token-by-token through
// the cache reproduces the full-sequence causal forward byte-for-byte at
// every prefix length and at any thread count. This works because every
// kernel on the path accumulates per output element as a left fold in
// ascending reduction order regardless of tensor shape, and the causal mask
// uses -inf (exp(-inf) == 0.0 exactly), so a query's softmax row and context
// sum are unchanged by the trailing positions it cannot see.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace actcomp::nn {

class KvCache {
 public:
  /// A cache for `num_layers` layers over a [batch, ·, hidden] stream.
  /// `capacity` pre-reserves positions (0 = grow on demand).
  KvCache(int64_t num_layers, int64_t batch, int64_t hidden,
          int64_t capacity = 0);

  int64_t num_layers() const { return static_cast<int64_t>(slots_.size()); }
  int64_t batch() const { return batch_; }
  int64_t hidden() const { return hidden_; }
  /// Committed positions (== the next position to be written).
  int64_t len() const { return len_; }
  int64_t capacity() const { return cap_; }
  /// Positions reserved by an open step (0 when no step is open).
  int64_t pending() const { return step_open_ ? step_n_ : 0; }

  /// Opens a step of `n` new positions, growing storage if len()+n exceeds
  /// capacity (growth preserves all committed rows).
  void begin_step(int64_t n);
  /// Stores `k`/`v` ([batch, n, hidden]) for `layer` at positions
  /// [len(), len()+n). Each layer appends exactly once per step.
  void append(int64_t layer, const tensor::Tensor& k, const tensor::Tensor& v);
  /// Commits the open step: every layer must have appended.
  void commit();

  /// The first `total` cached key/value rows of `layer` as [batch, total,
  /// hidden]. Within an open step, rows the layer just appended are visible.
  tensor::Tensor keys(int64_t layer, int64_t total) const;
  tensor::Tensor values(int64_t layer, int64_t total) const;

  /// Truncates to a shorter committed prefix (no step may be open).
  void rollback(int64_t new_len);
  /// rollback(0): forget everything, keep storage.
  void reset() { rollback(0); }

 private:
  void grow(int64_t needed);
  tensor::Tensor gather(const tensor::Tensor& store, int64_t layer,
                        int64_t total) const;

  struct Slot {
    tensor::Tensor k;  // [batch, cap, hidden]
    tensor::Tensor v;  // [batch, cap, hidden]
    bool appended = false;  ///< this layer's rows for the open step
  };

  int64_t batch_;
  int64_t hidden_;
  int64_t len_ = 0;
  int64_t cap_ = 0;
  int64_t step_n_ = 0;
  bool step_open_ = false;
  std::vector<Slot> slots_;
};

}  // namespace actcomp::nn
