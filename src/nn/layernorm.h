// LayerNorm module: affine layer normalization over the last dimension.
#pragma once

#include "nn/module.h"

namespace actcomp::nn {

class LayerNorm final : public Module {
 public:
  explicit LayerNorm(int64_t features, float eps = 1e-5f);

  autograd::Variable forward(const autograd::Variable& x) const;

  std::vector<NamedParam> named_parameters() const override;

 private:
  autograd::Variable gamma_;
  autograd::Variable beta_;
  float eps_;
};

}  // namespace actcomp::nn
