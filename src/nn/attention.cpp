#include "nn/attention.h"

#include <cmath>
#include <limits>

#include "autograd/functions.h"
#include "tensor/check.h"

namespace actcomp::nn {

namespace ag = actcomp::autograd;
namespace ts = actcomp::tensor;

MultiHeadAttention::MultiHeadAttention(int64_t hidden, int64_t num_heads,
                                       tensor::Generator& gen)
    : hidden_(hidden),
      heads_(num_heads),
      head_dim_(hidden / num_heads),
      wq_(hidden, hidden, gen),
      wk_(hidden, hidden, gen),
      wv_(hidden, hidden, gen),
      wo_(hidden, hidden, gen) {
  ACTCOMP_CHECK(num_heads > 0 && hidden % num_heads == 0,
                "hidden " << hidden << " not divisible by heads " << num_heads);
}

namespace {

/// [b, s, h] -> [b*nh, s, dh]
ag::Variable split_heads(const ag::Variable& x, int64_t b, int64_t s, int64_t nh,
                         int64_t dh) {
  ag::Variable r = ag::reshape(x, ts::Shape{b, s, nh, dh});
  r = ag::permute(r, {0, 2, 1, 3});  // [b, nh, s, dh]
  return ag::reshape(r, ts::Shape{b * nh, s, dh});
}

/// Additive causal mask [groups, n, total]: query row i sits at global
/// position start+i and sees keys 0..start+i; later keys get -inf. -inf (not
/// the finite -1e4 the padding mask uses) makes masked lanes exactly 0.0
/// after softmax, which is what keeps the cached decode bit-identical to the
/// full causal forward: trailing zero terms perturb neither the softmax
/// normalizer nor the context accumulation.
ts::Tensor causal_mask(int64_t groups, int64_t n, int64_t total, int64_t start) {
  ts::Tensor m{ts::Shape{groups, n, total}};
  const float ninf = -std::numeric_limits<float>::infinity();
  auto d = m.data();
  for (int64_t g = 0; g < groups; ++g) {
    for (int64_t i = 0; i < n; ++i) {
      float* row = d.data() + static_cast<size_t>((g * n + i) * total);
      for (int64_t j = start + i + 1; j < total; ++j) row[j] = ninf;
    }
  }
  return m;
}

}  // namespace

ag::Variable MultiHeadAttention::forward(const ag::Variable& x,
                                         const ts::Tensor& key_mask) const {
  const ts::Tensor& xv = x.value();
  ACTCOMP_CHECK(xv.rank() == 3 && xv.dim(2) == hidden_,
                "attention expects [b, s, " << hidden_ << "], got "
                                            << xv.shape().str());
  const int64_t b = xv.dim(0), s = xv.dim(1);

  ag::Variable q = split_heads(wq_.forward(x), b, s, heads_, head_dim_);
  ag::Variable k = split_heads(wk_.forward(x), b, s, heads_, head_dim_);
  ag::Variable v = split_heads(wv_.forward(x), b, s, heads_, head_dim_);

  ag::Variable scores = ag::matmul(q, ag::transpose_last2(k));  // [b*nh, s, s]
  scores = ag::mul_scalar(scores, 1.0f / std::sqrt(static_cast<float>(head_dim_)));

  if (key_mask.numel() > 0) {
    ACTCOMP_CHECK(key_mask.shape() == (ts::Shape{b, s}),
                  "key_mask must be [b, s], got " << key_mask.shape().str());
    // Expand the per-key mask to [b*nh, s, s]: every (query row, head) sees
    // the same additive bias over keys.
    ts::Tensor full{ts::Shape{b * heads_, s, s}};
    const auto dm = key_mask.data();
    auto df = full.data();
    for (int64_t bi = 0; bi < b; ++bi) {
      for (int64_t hrow = 0; hrow < heads_ * s; ++hrow) {
        for (int64_t key = 0; key < s; ++key) {
          df[static_cast<size_t>(((bi * heads_ * s) + hrow) * s + key)] =
              dm[static_cast<size_t>(bi * s + key)];
        }
      }
    }
    scores = ag::add(scores, ag::Variable::leaf(std::move(full)));
  }

  ag::Variable attn = ag::softmax_last(scores);
  ag::Variable ctx = ag::matmul(attn, v);  // [b*nh, s, dh]
  ctx = ag::reshape(ctx, ts::Shape{b, heads_, s, head_dim_});
  ctx = ag::permute(ctx, {0, 2, 1, 3});  // [b, s, nh, dh]
  ctx = ag::reshape(ctx, ts::Shape{b, s, hidden_});
  return wo_.forward(ctx);
}

ag::Variable MultiHeadAttention::forward_causal(const ag::Variable& x) const {
  const ts::Tensor& xv = x.value();
  ACTCOMP_CHECK(xv.rank() == 3 && xv.dim(2) == hidden_,
                "causal attention expects [b, s, " << hidden_ << "], got "
                                                   << xv.shape().str());
  const int64_t b = xv.dim(0), s = xv.dim(1);

  ag::Variable q = split_heads(wq_.forward(x), b, s, heads_, head_dim_);
  ag::Variable k = split_heads(wk_.forward(x), b, s, heads_, head_dim_);
  ag::Variable v = split_heads(wv_.forward(x), b, s, heads_, head_dim_);

  ag::Variable scores = ag::matmul(q, ag::transpose_last2(k));  // [b*nh, s, s]
  scores = ag::mul_scalar(scores, 1.0f / std::sqrt(static_cast<float>(head_dim_)));
  scores = ag::add(scores, ag::Variable::leaf(causal_mask(b * heads_, s, s, 0)));

  ag::Variable attn = ag::softmax_last(scores);
  ag::Variable ctx = ag::matmul(attn, v);  // [b*nh, s, dh]
  ctx = ag::reshape(ctx, ts::Shape{b, heads_, s, head_dim_});
  ctx = ag::permute(ctx, {0, 2, 1, 3});
  ctx = ag::reshape(ctx, ts::Shape{b, s, hidden_});
  return wo_.forward(ctx);
}

ag::Variable MultiHeadAttention::forward_cached(const ag::Variable& x,
                                                KvCache& cache,
                                                int64_t layer) const {
  const ts::Tensor& xv = x.value();
  ACTCOMP_CHECK(xv.rank() == 3 && xv.dim(2) == hidden_,
                "cached attention expects [b, n, " << hidden_ << "], got "
                                                   << xv.shape().str());
  ACTCOMP_CHECK(cache.hidden() == hidden_ && cache.batch() == xv.dim(0),
                "cache shape [" << cache.batch() << ", ·, " << cache.hidden()
                                << "] does not match input "
                                << xv.shape().str());
  const int64_t b = xv.dim(0), n = xv.dim(1);
  const int64_t start = cache.len();
  const int64_t total = start + n;

  ag::Variable q = wq_.forward(x);
  ag::Variable k = wk_.forward(x);
  ag::Variable v = wv_.forward(x);
  cache.append(layer, k.value(), v.value());

  ag::Variable q3 = split_heads(q, b, n, heads_, head_dim_);
  ag::Variable k3 = split_heads(ag::Variable::leaf(cache.keys(layer, total)), b,
                                total, heads_, head_dim_);
  ag::Variable v3 = split_heads(ag::Variable::leaf(cache.values(layer, total)),
                                b, total, heads_, head_dim_);

  ag::Variable scores = ag::matmul(q3, ag::transpose_last2(k3));  // [b*nh, n, total]
  scores = ag::mul_scalar(scores, 1.0f / std::sqrt(static_cast<float>(head_dim_)));
  scores =
      ag::add(scores, ag::Variable::leaf(causal_mask(b * heads_, n, total, start)));

  ag::Variable attn = ag::softmax_last(scores);
  ag::Variable ctx = ag::matmul(attn, v3);  // [b*nh, n, dh]
  ctx = ag::reshape(ctx, ts::Shape{b, heads_, n, head_dim_});
  ctx = ag::permute(ctx, {0, 2, 1, 3});
  ctx = ag::reshape(ctx, ts::Shape{b, n, hidden_});
  return wo_.forward(ctx);
}

std::vector<NamedParam> MultiHeadAttention::named_parameters() const {
  std::vector<NamedParam> out;
  for (auto& p : prefixed("wq", wq_.named_parameters())) out.push_back(std::move(p));
  for (auto& p : prefixed("wk", wk_.named_parameters())) out.push_back(std::move(p));
  for (auto& p : prefixed("wv", wv_.named_parameters())) out.push_back(std::move(p));
  for (auto& p : prefixed("wo", wo_.named_parameters())) out.push_back(std::move(p));
  return out;
}

}  // namespace actcomp::nn
