// BertModel: embeddings + N transformer encoder layers, plus task heads.
//
// The architecture matches BERT/Megatron-LM (learned token/position/segment
// embeddings, post-LN encoder layers, tanh pooler over [CLS]); the default
// configuration is scaled down so real training runs on one CPU core, while
// the throughput simulator (src/sim) models the paper's BERT-Large shape.
#pragma once

#include <map>
#include <memory>

#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/transformer_layer.h"

namespace actcomp::nn {

struct BertConfig {
  int64_t vocab_size = 1024;
  int64_t hidden = 128;
  int64_t num_layers = 8;
  int64_t num_heads = 4;
  int64_t intermediate = 512;
  int64_t max_seq = 128;
  int64_t type_vocab = 2;  ///< segment ids (sentence A / B)
  float dropout = 0.1f;

  TransformerLayerConfig layer_config() const {
    return {hidden, num_heads, intermediate, dropout};
  }

  /// The paper's BERT-Large shape (345M params) — used by the simulator and
  /// the analytical model, not for CPU training.
  static BertConfig bert_large() {
    return {30522, 1024, 24, 16, 4096, 512, 2, 0.1f};
  }
};

/// One tokenized (and padded) mini-batch.
struct EncoderInput {
  int64_t batch = 0;
  int64_t seq = 0;
  std::vector<int64_t> token_ids;    ///< batch*seq, row-major
  std::vector<int64_t> segment_ids;  ///< batch*seq (all zero if single-segment)
  std::vector<int64_t> lengths;      ///< batch; positions >= length are padding
};

/// Additive attention mask: 0 at valid key positions, -1e4 at padding.
tensor::Tensor make_key_mask(const EncoderInput& in);

class BertModel final : public Module {
 public:
  BertModel(const BertConfig& cfg, tensor::Generator& gen);

  /// Sequence output [b, s, h].
  autograd::Variable forward(const EncoderInput& in, tensor::Generator& gen,
                             bool training) const;

  /// Causal (decoder-style) full-sequence inference forward: token + position
  /// embeddings (single-segment, no dropout), causal layers, boundary
  /// compressors. `token_ids` is batch*seq row-major; output [b, s, h].
  autograd::Variable forward_causal(const std::vector<int64_t>& token_ids,
                                    int64_t batch) const;

  /// Incremental inference forward: embeds the n new tokens per sequence at
  /// positions [cache.len(), cache.len()+n), runs every layer over the
  /// cache, and commits the step. Bit-identical to forward_causal over the
  /// concatenated token stream at every prefix (tests/kv_cache_test.cpp);
  /// n == prompt length is the prefill phase, n == 1 the decode phase.
  autograd::Variable forward_cached(const std::vector<int64_t>& token_ids,
                                    int64_t batch, KvCache& cache) const;

  /// A cache shaped for this model: [num_layers] x [batch, ·, hidden].
  KvCache make_cache(int64_t batch, int64_t capacity = 0) const;

  std::vector<NamedParam> named_parameters() const override;

  const BertConfig& config() const { return cfg_; }
  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }
  TransformerEncoderLayer& layer(int64_t i);

  /// Attach a compressor pair to layer i's two TP communication points.
  void set_layer_compression(int64_t i, compress::Compressor* attn_comm,
                             compress::Compressor* mlp_comm);
  /// Attach a compressor to the activation leaving layer i (a pipeline-stage
  /// boundary in the paper's Fig. 3). Pass nullptr to detach.
  void set_boundary_compression(int64_t i, compress::Compressor* comp);
  /// Detach every compressor.
  void clear_compression();

 private:
  /// Token + position embeddings for n new tokens starting at `start`,
  /// normalized and shaped [b, n, h] (the shared head of the causal paths).
  autograd::Variable embed_causal(const std::vector<int64_t>& token_ids,
                                  int64_t batch, int64_t start) const;

  BertConfig cfg_;
  autograd::Variable tok_emb_;  // [V, h]
  autograd::Variable pos_emb_;  // [max_seq, h]
  autograd::Variable seg_emb_;  // [type_vocab, h]
  LayerNorm emb_ln_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
  std::map<int64_t, compress::Compressor*> boundary_comp_;
};

/// Sequence classification head: tanh pooler over [CLS] + linear classifier.
class ClassificationHead final : public Module {
 public:
  ClassificationHead(int64_t hidden, int64_t num_classes, tensor::Generator& gen);
  /// seq_out: [b, s, h] -> logits [b, num_classes].
  autograd::Variable forward(const autograd::Variable& seq_out) const;
  std::vector<NamedParam> named_parameters() const override;
  int64_t num_classes() const { return classifier_.out_features(); }

 private:
  Linear pooler_;
  Linear classifier_;
};

/// Regression head (STS-B): tanh pooler over [CLS] + linear to a scalar.
class RegressionHead final : public Module {
 public:
  RegressionHead(int64_t hidden, tensor::Generator& gen);
  /// seq_out: [b, s, h] -> predictions [b].
  autograd::Variable forward(const autograd::Variable& seq_out) const;
  std::vector<NamedParam> named_parameters() const override;

 private:
  Linear pooler_;
  Linear out_;
};

/// Result of an autoregressive decode (greedy_generate).
struct GenerateResult {
  std::vector<int64_t> tokens;  ///< prompt followed by the generated tokens
  int64_t prompt_tokens = 0;
  int64_t generated = 0;
};

class MlmHead;

/// Greedy autoregressive decoding: prefill the prompt through the cached
/// causal path in one step, then decode one token at a time, feeding back the
/// argmax (lowest index on ties) of the LM head's logits. max_new_tokens == 0
/// is a graceful no-op that returns the prompt unchanged; an empty prompt or
/// prompt + max_new_tokens > max_seq throw std::invalid_argument.
GenerateResult greedy_generate(const BertModel& model, const MlmHead& lm_head,
                               const std::vector<int64_t>& prompt,
                               int64_t max_new_tokens);

/// Masked-language-model head: transform + GELU + LN + vocabulary decoder.
class MlmHead final : public Module {
 public:
  MlmHead(int64_t hidden, int64_t vocab, tensor::Generator& gen);
  /// seq_out: [b, s, h] -> logits [b*s, vocab].
  autograd::Variable forward(const autograd::Variable& seq_out) const;
  std::vector<NamedParam> named_parameters() const override;

 private:
  Linear transform_;
  LayerNorm ln_;
  Linear decoder_;
};

}  // namespace actcomp::nn
