#include "nn/linear.h"

#include "autograd/functions.h"
#include "tensor/check.h"

namespace actcomp::nn {

Linear::Linear(int64_t in_features, int64_t out_features, tensor::Generator& gen,
               bool bias)
    : in_(in_features), out_(out_features) {
  ACTCOMP_CHECK(in_features > 0 && out_features > 0,
                "linear dims must be positive: " << in_features << " x "
                                                 << out_features);
  weight_ = autograd::Variable::leaf(
      tensor::xavier_uniform(gen, tensor::Shape{in_, out_}, in_, out_),
      /*requires_grad=*/true);
  if (bias) {
    bias_ = autograd::Variable::leaf(tensor::Tensor::zeros(tensor::Shape{out_}),
                                     /*requires_grad=*/true);
  }
}

autograd::Variable Linear::forward(const autograd::Variable& x,
                                   autograd::Act act) const {
  ACTCOMP_CHECK(x.value().dim(-1) == in_,
                "linear expects last dim " << in_ << ", got "
                                           << x.value().shape().str());
  autograd::Variable y = autograd::matmul(x, weight_);
  if (bias_.defined()) return autograd::bias_act(y, bias_, act);
  switch (act) {
    case autograd::Act::kRelu:
      return autograd::relu(y);
    case autograd::Act::kGelu:
      return autograd::gelu(y);
    case autograd::Act::kNone:
      break;
  }
  return y;
}

std::vector<NamedParam> Linear::named_parameters() const {
  std::vector<NamedParam> out{{"weight", weight_}};
  if (bias_.defined()) out.emplace_back("bias", bias_);
  return out;
}

}  // namespace actcomp::nn
