#include "nn/module.h"

#include "tensor/check.h"

namespace actcomp::nn {

std::vector<autograd::Variable> Module::parameters() const {
  std::vector<autograd::Variable> out;
  for (auto& [name, p] : named_parameters()) out.push_back(p);
  return out;
}

int64_t Module::parameter_count() const {
  int64_t n = 0;
  for (const auto& [name, p] : named_parameters()) n += p.value().numel();
  return n;
}

tensor::TensorMap Module::state_dict() const {
  tensor::TensorMap m;
  for (const auto& [name, p] : named_parameters()) {
    ACTCOMP_CHECK(!m.count(name), "duplicate parameter name '" << name << "'");
    m.emplace(name, p.value().clone());
  }
  return m;
}

int Module::load_state_dict(const tensor::TensorMap& state) {
  int loaded = 0;
  for (auto& [name, p] : named_parameters()) {
    const auto it = state.find(name);
    if (it == state.end()) continue;
    ACTCOMP_CHECK(it->second.shape() == p.value().shape(),
                  "checkpoint shape " << it->second.shape().str()
                                      << " != parameter shape "
                                      << p.value().shape().str() << " for '"
                                      << name << "'");
    // Variables are handles; writing through the handle updates the live node.
    autograd::Variable handle = p;
    handle.mutable_value() = it->second.clone();
    ++loaded;
  }
  return loaded;
}

std::vector<NamedParam> prefixed(const std::string& prefix,
                                 std::vector<NamedParam> params) {
  for (auto& [name, p] : params) name = prefix + "." + name;
  return params;
}

}  // namespace actcomp::nn
