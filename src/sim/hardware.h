// Hardware models for the two platforms the paper evaluates (§4.1):
//   * AWS p3.8xlarge — 4 × V100 with NVLink, 10 Gbps between instances;
//   * a local 4 × V100 server with a single PCIe bridge (no NVLink).
//
// Calibration notes (documented where each constant is used):
//   * NVLink effective collective bandwidth 100 GB/s (40 GB/s per link,
//     striped across the p3.8xlarge hybrid mesh — see hardware.cpp).
//   * PCIe effective bandwidth 11 GB/s — fitted from the paper's Table 4
//     baseline tensor-communication time (48 all-reduces of 33.6 MB in
//     150.72 ms at TP=2 implies ≈ 10.7 GB/s effective).
//   * V100 peak 112 fp16 TFLOP/s; Megatron-on-V100 utilization fitted from
//     Table 2's TP=1/PP=4 row (see GpuSpec::mfu).
#pragma once

#include <cstdint>
#include <string>

namespace actcomp::sim {

/// Alpha-beta link model: time = latency + bytes / bandwidth.
struct LinkSpec {
  double bandwidth_gb_s = 1.0;  ///< effective bandwidth, GB/s (1e9 bytes/s)
  double latency_us = 10.0;     ///< per-message launch latency

  double transfer_ms(int64_t bytes) const {
    return latency_us * 1e-3 +
           static_cast<double>(bytes) / (bandwidth_gb_s * 1e9) * 1e3;
  }
};

struct GpuSpec {
  double peak_fp16_tflops = 112.0;  ///< V100 tensor-core peak
  /// Achieved fraction of peak for transformer-layer GEMMs. The paper's
  /// Table 2 TP=1/PP=4 row (24 BERT-Large layers in ~590 ms) implies ≈ 65%
  /// of peak, while its TP=4 rows imply more; 55% splits the difference so
  /// every distributed setting lands within ~20% of the paper's baseline.
  double mfu = 0.55;

  double compute_ms(double flops) const {
    return flops / (peak_fp16_tflops * 1e12 * mfu) * 1e3;
  }
};

struct ClusterSpec {
  std::string name;
  int num_nodes = 1;
  int gpus_per_node = 4;
  bool has_nvlink = true;
  LinkSpec intra_node;  ///< GPU<->GPU inside one node
  LinkSpec inter_node;  ///< node<->node network
  GpuSpec gpu;

  int total_gpus() const { return num_nodes * gpus_per_node; }

  /// AWS p3.8xlarge: NVLink 40 GB/s intra, 10 Gbps (1.25 GB/s) inter.
  static ClusterSpec aws_p3(int num_nodes);
  /// Local server: 4 V100s behind one PCIe bridge, no NVLink.
  static ClusterSpec local_pcie();
};

}  // namespace actcomp::sim
