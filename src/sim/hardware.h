// Hardware models for the two platforms the paper evaluates (§4.1):
//   * AWS p3.8xlarge — 4 × V100 with NVLink, 10 Gbps between instances;
//   * a local 4 × V100 server with a single PCIe bridge (no NVLink).
//
// Calibration notes (documented where each constant is used):
//   * NVLink effective collective bandwidth 100 GB/s (40 GB/s per link,
//     striped across the p3.8xlarge hybrid mesh — see hardware.cpp).
//   * PCIe effective bandwidth 11 GB/s — fitted from the paper's Table 4
//     baseline tensor-communication time (48 all-reduces of 33.6 MB in
//     150.72 ms at TP=2 implies ≈ 10.7 GB/s effective).
//   * V100 peak 112 fp16 TFLOP/s; Megatron-on-V100 utilization fitted from
//     Table 2's TP=1/PP=4 row (see GpuSpec::mfu).
#pragma once

#include <cstdint>
#include <string>

namespace actcomp::sim {

/// Alpha-beta link model: time = latency + bytes / bandwidth.
struct LinkSpec {
  double bandwidth_gb_s = 1.0;  ///< effective bandwidth, GB/s (1e9 bytes/s)
  double latency_us = 10.0;     ///< per-message launch latency

  double transfer_ms(int64_t bytes) const {
    return latency_us * 1e-3 +
           static_cast<double>(bytes) / (bandwidth_gb_s * 1e9) * 1e3;
  }
};

/// Degradation and outage model for a link, consumed by the fault-injection
/// layer (sim/faults.h). The default is a healthy link: no slowdown, no
/// outages. All perturbations only lengthen transfers, so a faulted run can
/// never beat the clean one.
struct LinkFaultSpec {
  /// Persistent bandwidth loss: every transfer duration is multiplied by
  /// this factor (>= 1). 4.0 models a link running at a quarter speed.
  double degrade_factor = 1.0;
  /// Probability, per transfer attempt, that the attempt hangs and must be
  /// retried. In [0, 1).
  double outage_rate = 0.0;
  /// A hung attempt occupies the link until this detection timeout fires.
  double timeout_ms = 0.0;
  /// Backoff before retry k is backoff_ms * 2^(k-1); the link is free to
  /// serve other transfers while a sender backs off.
  double backoff_ms = 0.0;
  /// Cap on failed attempts per transfer; the attempt after the last failure
  /// always succeeds, so every simulation terminates.
  int max_retries = 3;

  bool faulty() const { return degrade_factor > 1.0 || outage_rate > 0.0; }
};

/// Fail-stop crash model for a model-parallel job, consumed by the
/// crash-recovery layer (sim/recovery.h). Unlike LinkFaultSpec's transient
/// outages — which a retry chain absorbs within the iteration — a crash
/// kills the whole synchronous job: every stage must roll back to the last
/// checkpoint and replay. The default is crash-free.
struct CrashSpec {
  /// Per-stage mean time between fail-stop crashes (exponential arrivals).
  /// 0 disables crashes entirely.
  double mtbf_ms = 0.0;
  /// Stages crashing independently; the job-level failure rate is
  /// num_stages / mtbf_ms (the minimum of independent exponentials).
  int num_stages = 1;
  /// Delay until the failure detector fires (the job burns this time
  /// computing results that will be discarded).
  double detect_ms = 0.0;
  /// Restart / rejoin cost paid once per crash before replay begins.
  double restart_ms = 0.0;

  bool enabled() const { return mtbf_ms > 0.0; }
  /// Job-level MTBF: mtbf_ms / num_stages.
  double effective_mtbf_ms() const {
    return mtbf_ms / static_cast<double>(num_stages);
  }
};

struct GpuSpec {
  double peak_fp16_tflops = 112.0;  ///< V100 tensor-core peak
  /// Achieved fraction of peak for transformer-layer GEMMs. The paper's
  /// Table 2 TP=1/PP=4 row (24 BERT-Large layers in ~590 ms) implies ≈ 65%
  /// of peak, while its TP=4 rows imply more; 55% splits the difference so
  /// every distributed setting lands within ~20% of the paper's baseline.
  double mfu = 0.55;

  double compute_ms(double flops) const {
    return flops / (peak_fp16_tflops * 1e12 * mfu) * 1e3;
  }
};

/// Spine topology above the node-local islands. kFlat reproduces the
/// original two-level ClusterSpec semantics exactly: inter_node is the only
/// cross-node path and its LinkSpec is used as-is. The hierarchical spines
/// model a datacenter fabric:
///   * kFatTree — full-bisection Clos: per-node injection bandwidth is
///     preserved at any scale, but each switch tier adds one inter_node
///     latency (tiers = ceil(log_16 nodes), a 16-port leaf radix);
///   * kOversubscribed — Ethernet spine whose uplinks are provisioned at
///     1/oversubscription of the leaf bandwidth: cross-spine traffic sees
///     inter_node bandwidth divided by the factor, same tier latency.
struct TopologySpec {
  enum class Spine { kFlat, kFatTree, kOversubscribed };
  Spine spine = Spine::kFlat;
  /// Uplink oversubscription factor (>= 1); only read for kOversubscribed.
  double oversubscription = 1.0;

  bool hierarchical() const { return spine != Spine::kFlat; }
  /// Number of switch tiers a cross-node message traverses when `nodes`
  /// nodes hang off the spine (1 tier per factor-of-16 fan-out; >= 1).
  int tiers(int nodes) const;
  /// The cross-node link a collective spanning `nodes` nodes observes:
  /// `inter` itself for kFlat, otherwise bandwidth/latency adjusted per the
  /// spine model above.
  LinkSpec cross_node(const LinkSpec& inter, int nodes) const;
};

struct ClusterSpec {
  std::string name;
  int num_nodes = 1;
  int gpus_per_node = 4;
  bool has_nvlink = true;
  LinkSpec intra_node;  ///< GPU<->GPU inside one node
  LinkSpec inter_node;  ///< node<->node network (leaf uplink)
  TopologySpec topology;  ///< spine above the nodes (default: flat)
  GpuSpec gpu;

  int total_gpus() const { return num_nodes * gpus_per_node; }

  /// The link seen by traffic between two GPUs `nodes_spanned` nodes apart:
  /// intra_node within an island, otherwise the spine-adjusted inter link.
  LinkSpec link_between(int nodes_spanned) const;

  /// Validates counts and link parameters; throws std::invalid_argument
  /// with a "ClusterSpec: ..." message naming the offending field. Factories
  /// validate on construction; call after mutating a spec by hand.
  void validate() const;

  /// AWS p3.8xlarge: NVLink 40 GB/s intra, 10 Gbps (1.25 GB/s) inter.
  static ClusterSpec aws_p3(int num_nodes);
  /// Local server: 4 V100s behind one PCIe bridge, no NVLink.
  static ClusterSpec local_pcie();
  /// Datacenter: 8-GPU NVLink islands under a 100 GbE spine. `spine`
  /// selects fat-tree (full bisection) or oversubscribed uplinks.
  static ClusterSpec datacenter(int num_nodes,
                                TopologySpec::Spine spine = TopologySpec::Spine::kFatTree,
                                double oversubscription = 1.0);
};

}  // namespace actcomp::sim
