#include "sim/serving_resilience.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>
#include <queue>

#include "tensor/check.h"

namespace actcomp::sim {

const char* route_policy_label(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::kRoundRobin: return "round-robin";
    case RoutePolicy::kJoinShortestQueue: return "jsq";
    case RoutePolicy::kHealthAware: return "health-aware";
  }
  return "?";
}

const char* request_outcome_label(RequestOutcome o) {
  switch (o) {
    case RequestOutcome::kCompleted: return "completed";
    case RequestOutcome::kShed: return "shed";
    case RequestOutcome::kFailed: return "failed";
  }
  return "?";
}

SloDegradationController::SloDegradationController(
    const ServingDegradeSpec& spec, double slo_p99_ms, int num_levels)
    : spec_(spec), slo_ms_(slo_p99_ms), num_levels_(num_levels) {
  ACTCOMP_CHECK(spec.window >= 1, "SloDegradationController: window = "
                                      << spec.window << ", must be >= 1");
  ACTCOMP_CHECK(spec.hold_windows >= 1,
                "SloDegradationController: hold_windows = "
                    << spec.hold_windows << ", must be >= 1");
  ACTCOMP_CHECK(
      spec.recover_fraction > 0.0 && spec.recover_fraction < 1.0,
      "SloDegradationController: recover_fraction = " << spec.recover_fraction
                                                      << ", must be in (0, 1)");
  ACTCOMP_CHECK(std::isfinite(slo_p99_ms) && slo_p99_ms > 0.0,
                "SloDegradationController: slo_p99_ms = " << slo_p99_ms
                                                          << ", must be > 0");
  ACTCOMP_CHECK(num_levels >= 1, "SloDegradationController: num_levels = "
                                     << num_levels << ", must be >= 1");
  buf_.reserve(static_cast<size_t>(spec.window));
}

int SloDegradationController::observe_e2e(double e2e_ms) {
  buf_.push_back(e2e_ms);
  if (buf_.size() < static_cast<size_t>(spec_.window)) return level_;
  last_p99_ = latency_percentiles(buf_).p99_ms;
  buf_.clear();
  // Dead band between the escalate threshold (the SLO) and the recover
  // threshold (recover_fraction x SLO): a p99 sitting between them resets
  // both runs, so the controller cannot oscillate on a constant load.
  if (last_p99_ > slo_ms_) {
    ++over_run_;
    under_run_ = 0;
  } else if (last_p99_ < spec_.recover_fraction * slo_ms_) {
    ++under_run_;
    over_run_ = 0;
  } else {
    over_run_ = 0;
    under_run_ = 0;
  }
  if (over_run_ >= spec_.hold_windows && level_ < num_levels_ - 1) {
    ++level_;
    ++escalations_;
    max_seen_ = std::max(max_seen_, level_);
    over_run_ = 0;
    under_run_ = 0;
  } else if (under_run_ >= spec_.hold_windows && level_ > 0) {
    --level_;
    ++deescalations_;
    over_run_ = 0;
    under_run_ = 0;
  }
  return level_;
}

void validate_resilient_serving_inputs(
    const std::vector<ServingRequest>& requests,
    const ResilientServingConfig& cfg) {
  ACTCOMP_CHECK(cfg.num_replicas >= 1,
                "ResilientServingConfig.num_replicas = " << cfg.num_replicas
                                                         << ", must be >= 1");
  ACTCOMP_CHECK(!cfg.cost_ladder.empty(),
                "ResilientServingConfig.cost_ladder is empty — rung 0 must "
                "price the clean path");
  for (size_t i = 0; i < cfg.cost_ladder.size(); ++i) {
    ACTCOMP_CHECK(static_cast<bool>(cfg.cost_ladder[i]),
                  "ResilientServingConfig.cost_ladder[" << i
                                                        << "] is not set");
  }
  // Per-replica admission semantics are exactly ServingConfig's, so the
  // request-level validation (sorted arrivals, budget feasibility, ...) is
  // too.
  validate_serving_inputs(requests, cfg.base_config());
  ACTCOMP_CHECK(cfg.replica_faults.empty() ||
                    cfg.replica_faults.size() ==
                        static_cast<size_t>(cfg.num_replicas),
                "ResilientServingConfig.replica_faults has "
                    << cfg.replica_faults.size() << " specs for "
                    << cfg.num_replicas
                    << " replicas — must be empty or one per replica");
  for (const ReplicaFaultSpec& s : cfg.replica_faults) s.validate();
  ACTCOMP_CHECK(cfg.retry.max_attempts >= 1 && cfg.retry.max_attempts <= 16,
                "RetryPolicy.max_attempts = " << cfg.retry.max_attempts
                                              << ", must be in [1, 16]");
  auto check_knob = [](double v, const char* name) {
    ACTCOMP_CHECK(std::isfinite(v) && v >= 0.0,
                  name << " = " << v << ", must be finite and >= 0");
  };
  check_knob(cfg.retry.backoff_ms, "RetryPolicy.backoff_ms");
  check_knob(cfg.retry.timeout_ms, "RetryPolicy.timeout_ms");
  check_knob(cfg.retry.hedge_after_ms, "RetryPolicy.hedge_after_ms");
  ACTCOMP_CHECK(cfg.retry.hedge_after_ms <= 0.0 || cfg.num_replicas >= 2,
                "RetryPolicy.hedge_after_ms = "
                    << cfg.retry.hedge_after_ms
                    << " with a single replica — a hedge needs somewhere "
                       "else to go");
  ACTCOMP_CHECK(cfg.admission.max_queued_tokens >= 0,
                "AdmissionPolicy.max_queued_tokens = "
                    << cfg.admission.max_queued_tokens << ", must be >= 0");
  check_knob(cfg.admission.shed_wait_over_ms,
             "AdmissionPolicy.shed_wait_over_ms");
  check_knob(cfg.slo_e2e_p99_ms, "ResilientServingConfig.slo_e2e_p99_ms");
  check_knob(cfg.eject_ms, "ResilientServingConfig.eject_ms");
  if (cfg.degrade.enabled) {
    ACTCOMP_CHECK(cfg.slo_e2e_p99_ms > 0.0,
                  "ServingDegradeSpec.enabled requires a positive "
                  "slo_e2e_p99_ms — there is no SLO to defend");
    ACTCOMP_CHECK(cfg.cost_ladder.size() >= 2,
                  "ServingDegradeSpec.enabled requires a cost_ladder with "
                  ">= 2 rungs — there is nothing to escalate to");
    ACTCOMP_CHECK(cfg.degrade.window >= 1, "ServingDegradeSpec.window = "
                                               << cfg.degrade.window
                                               << ", must be >= 1");
    ACTCOMP_CHECK(cfg.degrade.hold_windows >= 1,
                  "ServingDegradeSpec.hold_windows = "
                      << cfg.degrade.hold_windows << ", must be >= 1");
    ACTCOMP_CHECK(cfg.degrade.recover_fraction > 0.0 &&
                      cfg.degrade.recover_fraction < 1.0,
                  "ServingDegradeSpec.recover_fraction = "
                      << cfg.degrade.recover_fraction
                      << ", must be in (0, 1)");
  }
}

namespace {

enum class CopyState { kQueued, kRunning, kDone, kCancelled, kKilled };

struct Copy {
  size_t req = 0;
  int replica = 0;
  bool hedge = false;
  CopyState state = CopyState::kQueued;
  int64_t cached = 0;     ///< KV positions committed
  int64_t generated = 0;
  int64_t reserved = 0;   ///< budget tokens held on its replica (0 = freed)
  double admit_ms = 0.0;
  double first_token_ms = 0.0;
};

struct RequestState {
  bool resolved = false;
  RequestOutcome outcome = RequestOutcome::kFailed;
  int attempts = 0;       ///< primary dispatches (hedges excluded)
  bool hedged = false;
  int live = 0;           ///< copies currently queued or running
  bool retry_pending = false;
  std::vector<int64_t> copy_ids;
};

// The discrete-event scheduler's event kinds. The kind value doubles as the
// tie-break priority at equal timestamps (arrivals land before the dispatch
// pass so same-instant arrivals join one admission wave, exactly like
// simulate_serving; a step that ends exactly when its replica crashes still
// counts). seq — a monotone insertion counter — is the final tie-break, so
// the heap order is a total order and the whole simulation is deterministic.
enum EventKind {
  kEvArrival = 0,
  kEvRetry = 1,
  kEvRecover = 2,
  kEvStepEnd = 3,
  kEvCrash = 4,
  kEvHedge = 5,
  kEvTimeout = 6,
};

struct Event {
  double t = 0.0;
  int kind = 0;
  uint64_t seq = 0;
  int64_t a = 0;  ///< request index / replica / copy id, by kind
  uint64_t b = 0; ///< step serial for kEvStepEnd
};

struct EventAfter {
  bool operator()(const Event& x, const Event& y) const {
    if (x.t != y.t) return x.t > y.t;
    if (x.kind != y.kind) return x.kind > y.kind;
    return x.seq > y.seq;
  }
};

struct Replica {
  std::deque<int64_t> queue;        ///< copy ids awaiting admission (lazy)
  std::vector<int64_t> running;     ///< decode batch
  std::vector<int64_t> step_admitted; ///< copies in the in-flight prefill
  bool up = true;
  bool busy = false;
  uint64_t step_serial = 0;  ///< bumped on crash; stale step-ends carry old
  bool step_prefill = false;
  double step_start = 0.0, step_end = 0.0;
  int64_t step_seqs = 0, step_new_tokens = 0;
  double last_end = 0.0;
  int64_t reserved = 0;       ///< admitted KV tokens held
  int64_t queued_tokens = 0;  ///< KV tokens of live queued copies
  double down_until = 0.0;
  double ejected_until = 0.0;
  double ewma_step_ms = 0.0;  ///< for predicted-wait shedding
  ReplicaFaultProcess faults;
  ReplicaStats stats;

  explicit Replica(const ReplicaFaultSpec& spec) : faults(spec) {}
};

class ResilientScheduler {
 public:
  ResilientScheduler(const std::vector<ServingRequest>& requests,
                     const ResilientServingConfig& cfg)
      : requests_(requests), cfg_(cfg) {}

  ResilientServingReport run() {
    ResilientServingReport out;
    out.offered = static_cast<int64_t>(requests_.size());
    out.serving.requests.resize(requests_.size());
    for (size_t i = 0; i < requests_.size(); ++i) {
      out.serving.requests[i].arrival_ms = requests_[i].arrival_ms;
      out.serving.requests[i].prompt_tokens = requests_[i].prompt_tokens;
    }
    out.replicas.resize(static_cast<size_t>(cfg_.num_replicas));
    rep_ = &out;

    for (int r = 0; r < cfg_.num_replicas; ++r) {
      replicas_.emplace_back(cfg_.replica_faults.empty()
                                 ? ReplicaFaultSpec{}
                                 : cfg_.replica_faults[static_cast<size_t>(r)]);
    }
    if (cfg_.degrade.enabled) {
      controller_.emplace(cfg_.degrade, cfg_.slo_e2e_p99_ms,
                          static_cast<int>(cfg_.cost_ladder.size()));
    }
    state_.resize(requests_.size());
    completed_.assign(requests_.size(), 0);

    if (requests_.empty()) {
      finalize(out);
      return out;
    }

    for (size_t i = 0; i < requests_.size(); ++i) {
      push({requests_[i].arrival_ms, kEvArrival, 0,
            static_cast<int64_t>(i), 0});
    }
    for (int r = 0; r < cfg_.num_replicas; ++r) {
      schedule_crash(r, 0.0);
    }

    while (resolved_ < requests_.size()) {
      ACTCOMP_ASSERT(!heap_.empty(),
                     "resilient serving scheduler stalled with "
                         << requests_.size() - resolved_
                         << " requests unresolved");
      const double t = heap_.top().t;
      // Drain EVERY event at this instant before dispatching: same-time
      // arrivals form one admission wave, and a handler that schedules a
      // zero-delay follow-up at t gets it handled in the same drain.
      while (!heap_.empty() && heap_.top().t == t) {
        const Event ev = heap_.top();
        heap_.pop();
        handle(ev);
      }
      for (int r = 0; r < cfg_.num_replicas; ++r) maybe_dispatch(r, t);
    }

    finalize(out);
    return out;
  }

 private:
  int64_t need(const Copy& c) const {
    const ServingRequest& r = requests_[c.req];
    return r.prompt_tokens + r.max_new_tokens;
  }

  void push(Event ev) {
    ev.seq = seq_++;
    heap_.push(ev);
  }

  void schedule_crash(int r, double from_ms) {
    const double at = replicas_[static_cast<size_t>(r)].faults
                          .draw_crash_after(from_ms);
    if (std::isfinite(at)) push({at, kEvCrash, 0, r, 0});
  }

  int active_level() const { return controller_ ? controller_->level() : 0; }

  double price(const StepShape& shape) const {
    const size_t lv = std::min(static_cast<size_t>(active_level()),
                               cfg_.cost_ladder.size() - 1);
    const double ms = cfg_.cost_ladder[lv](shape);
    ACTCOMP_CHECK(std::isfinite(ms) && ms >= 0.0,
                  "cost_ladder[" << lv << "] returned " << ms << " for a "
                                 << (shape.prefill ? "prefill" : "decode")
                                 << " step — must be finite and >= 0");
    return ms;
  }

  int64_t live_load(int r) const {
    const Replica& rep = replicas_[static_cast<size_t>(r)];
    int64_t load = 0;
    for (const int64_t cid : rep.queue) {
      if (copies_[static_cast<size_t>(cid)].state == CopyState::kQueued) ++load;
    }
    for (const int64_t cid : rep.running) {
      if (copies_[static_cast<size_t>(cid)].state == CopyState::kRunning) ++load;
    }
    for (const int64_t cid : rep.step_admitted) {
      if (copies_[static_cast<size_t>(cid)].state == CopyState::kRunning) ++load;
    }
    return load;
  }

  int64_t queued_live(int r) const {
    const Replica& rep = replicas_[static_cast<size_t>(r)];
    int64_t n = 0;
    for (const int64_t cid : rep.queue) {
      if (copies_[static_cast<size_t>(cid)].state == CopyState::kQueued) ++n;
    }
    return n;
  }

  int route(double t, int exclude) {
    const int R = cfg_.num_replicas;
    if (cfg_.policy == RoutePolicy::kRoundRobin) {
      // Blind: cycles through every replica, down or not. The baseline the
      // ablation measures the smarter policies against.
      for (int k = 0; k < R; ++k) {
        const int r = static_cast<int>(rr_next_++ % static_cast<uint64_t>(R));
        if (r != exclude) return r;
      }
      return 0;  // unreachable: exclude is only set when R >= 2
    }
    auto pick = [&](auto&& eligible) {
      int best = -1;
      int64_t best_load = 0;
      for (int r = 0; r < R; ++r) {
        if (r == exclude || !eligible(r)) continue;
        const int64_t load = live_load(r);
        if (best < 0 || load < best_load) {
          best = r;
          best_load = load;
        }
      }
      return best;
    };
    int r = -1;
    if (cfg_.policy == RoutePolicy::kHealthAware) {
      r = pick([&](int q) {
        const Replica& rep = replicas_[static_cast<size_t>(q)];
        return rep.up && t >= rep.ejected_until;
      });
    }
    if (r < 0) {
      r = pick([&](int q) { return replicas_[static_cast<size_t>(q)].up; });
    }
    if (r < 0) {
      r = pick([](int) { return true; });
    }
    return r;
  }

  void dispatch_to(size_t i, int r, double t, bool hedge) {
    RequestState& st = state_[i];
    const int64_t cid = static_cast<int64_t>(copies_.size());
    Copy c;
    c.req = i;
    c.replica = r;
    c.hedge = hedge;
    copies_.push_back(c);
    if (!hedge) ++st.attempts;
    ++st.live;
    st.copy_ids.push_back(cid);
    Replica& rep = replicas_[static_cast<size_t>(r)];
    rep.queue.push_back(cid);
    rep.queued_tokens += need(c);
    ++rep_->dispatches;
    if (cfg_.retry.timeout_ms > 0.0) {
      push({t + cfg_.retry.timeout_ms, kEvTimeout, 0, cid, 0});
    }
    // The hedge timer arms once, on the first primary dispatch.
    if (!hedge && st.attempts == 1 && cfg_.retry.hedge_after_ms > 0.0) {
      push({t + cfg_.retry.hedge_after_ms, kEvHedge, 0,
            static_cast<int64_t>(i), 0});
    }
  }

  double predicted_wait(int r, double t) const {
    const Replica& rep = replicas_[static_cast<size_t>(r)];
    double w = 0.0;
    if (!rep.up) {
      w += rep.down_until - t;
    } else if (rep.busy) {
      w += rep.step_end - t;
    }
    w += static_cast<double>(queued_live(r)) * rep.ewma_step_ms;
    return w;
  }

  void shed(size_t i) {
    RequestState& st = state_[i];
    st.resolved = true;
    st.outcome = RequestOutcome::kShed;
    ++resolved_;
    ++rep_->shed;
  }

  void on_arrival(size_t i, double t) {
    const int64_t tokens =
        requests_[i].prompt_tokens + requests_[i].max_new_tokens;
    if (cfg_.admission.max_queued_tokens > 0) {
      int64_t fleet = 0;
      for (const Replica& rep : replicas_) {
        fleet += rep.reserved + rep.queued_tokens;
      }
      if (fleet + tokens > cfg_.admission.max_queued_tokens) {
        shed(i);
        return;
      }
    }
    const int r = route(t, -1);
    if (cfg_.admission.shed_wait_over_ms > 0.0 &&
        predicted_wait(r, t) > cfg_.admission.shed_wait_over_ms) {
      shed(i);
      return;
    }
    dispatch_to(i, r, t, false);
  }

  void on_retry(size_t i, double t) {
    RequestState& st = state_[i];
    st.retry_pending = false;
    if (st.resolved) return;
    ++rep_->retries;
    dispatch_to(i, route(t, -1), t, false);
  }

  void on_hedge(size_t i, double t) {
    RequestState& st = state_[i];
    if (st.resolved || st.hedged || st.live == 0) return;
    // Route away from the live primary's replica — a hedge on the same box
    // would just queue behind the copy it is meant to race.
    int exclude = -1;
    for (const int64_t cid : st.copy_ids) {
      const Copy& c = copies_[static_cast<size_t>(cid)];
      if (c.state == CopyState::kQueued || c.state == CopyState::kRunning) {
        exclude = c.replica;
        break;
      }
    }
    st.hedged = true;
    ++rep_->hedges;
    dispatch_to(i, route(t, exclude), t, true);
  }

  void on_timeout(int64_t cid, double t) {
    Copy& c = copies_[static_cast<size_t>(cid)];
    if (c.state != CopyState::kQueued && c.state != CopyState::kRunning) return;
    Replica& rep = replicas_[static_cast<size_t>(c.replica)];
    if (c.state == CopyState::kQueued) rep.queued_tokens -= need(c);
    // A running copy keeps its reservation until the sweep at its step end —
    // the KV memory really is held until the batch moves on.
    c.state = CopyState::kCancelled;
    --state_[c.req].live;
    ++rep.stats.timeouts;
    ++rep_->timeouts;
    if (cfg_.policy == RoutePolicy::kHealthAware && cfg_.eject_ms > 0.0) {
      rep.ejected_until = std::max(rep.ejected_until, t + cfg_.eject_ms);
    }
    resolve_or_retry(c.req, t);
  }

  void resolve_or_retry(size_t i, double t) {
    RequestState& st = state_[i];
    if (st.resolved || st.retry_pending || st.live > 0) return;
    if (st.attempts < cfg_.retry.max_attempts) {
      st.retry_pending = true;
      const double delay =
          cfg_.retry.backoff_ms *
          static_cast<double>(int64_t{1} << (st.attempts - 1));
      push({t + delay, kEvRetry, 0, static_cast<int64_t>(i), 0});
    } else {
      st.resolved = true;
      st.outcome = RequestOutcome::kFailed;
      ++resolved_;
      ++rep_->failed;
    }
  }

  /// Releases a cancelled/killed copy still holding a reservation; its
  /// generated tokens were real work that reached no user.
  void free_loser(Copy& c, Replica& rep) {
    rep.reserved -= c.reserved;
    c.reserved = 0;
    rep_->wasted_tokens += c.generated;
  }

  void sweep_running(Replica& rep) {
    size_t keep = 0;
    for (size_t k = 0; k < rep.running.size(); ++k) {
      Copy& c = copies_[static_cast<size_t>(rep.running[k])];
      if (c.state == CopyState::kRunning) {
        rep.running[keep++] = rep.running[k];
      } else {
        free_loser(c, rep);
      }
    }
    rep.running.resize(keep);
  }

  void complete_copy(int64_t cid, int r, double end_ms) {
    Copy& c = copies_[static_cast<size_t>(cid)];
    Replica& rep = replicas_[static_cast<size_t>(r)];
    RequestState& st = state_[c.req];
    rep.reserved -= c.reserved;
    c.reserved = 0;
    --st.live;
    if (st.resolved) {
      // A sibling copy of the same request finished earlier in this very
      // step; this one is a well-timed loser.
      c.state = CopyState::kCancelled;
      rep_->wasted_tokens += c.generated;
      return;
    }
    c.state = CopyState::kDone;
    st.resolved = true;
    st.outcome = RequestOutcome::kCompleted;
    ++resolved_;
    completed_[c.req] = 1;
    RequestTiming& rt = rep_->serving.requests[c.req];
    rt.admit_ms = c.admit_ms;
    rt.first_token_ms = c.first_token_ms;
    rt.done_ms = end_ms;
    rt.generated = c.generated;
    ++rep.stats.completed;
    if (c.hedge) ++rep_->hedge_wins;
    // First-wins: every other live copy of this request is cancelled. Queued
    // losers leave immediately; running losers are swept at their step end.
    for (const int64_t ocid : st.copy_ids) {
      if (ocid == cid) continue;
      Copy& o = copies_[static_cast<size_t>(ocid)];
      if (o.state == CopyState::kQueued) {
        replicas_[static_cast<size_t>(o.replica)].queued_tokens -= need(o);
        o.state = CopyState::kCancelled;
        --st.live;
      } else if (o.state == CopyState::kRunning) {
        o.state = CopyState::kCancelled;
        --st.live;
      }
    }
    if (controller_) controller_->observe_e2e(rt.e2e_ms());
  }

  void on_step_end(int r, uint64_t serial) {
    Replica& rep = replicas_[static_cast<size_t>(r)];
    if (!rep.up || !rep.busy || serial != rep.step_serial) return;  // stale
    rep.busy = false;
    rep.last_end = rep.step_end;
    const double dur = rep.step_end - rep.step_start;
    ++rep.stats.steps;
    rep.stats.busy_ms += dur;
    rep.ewma_step_ms = rep.ewma_step_ms == 0.0
                           ? dur
                           : 0.5 * dur + 0.5 * rep.ewma_step_ms;
    steps_.push_back({rep.step_prefill, rep.step_start, rep.step_end,
                      rep.step_seqs, rep.step_new_tokens, r});
    if (rep.step_prefill) {
      for (const int64_t cid : rep.step_admitted) {
        Copy& c = copies_[static_cast<size_t>(cid)];
        if (c.state != CopyState::kRunning) {
          free_loser(c, rep);
          continue;
        }
        c.admit_ms = rep.step_start;
        c.first_token_ms = rep.step_end;
        c.generated = std::min<int64_t>(1, requests_[c.req].max_new_tokens);
        if (c.generated == requests_[c.req].max_new_tokens) {
          complete_copy(cid, r, rep.step_end);
        } else {
          rep.running.push_back(cid);
        }
      }
      rep.step_admitted.clear();
    } else {
      std::vector<int64_t> still;
      still.reserve(rep.running.size());
      for (const int64_t cid : rep.running) {
        Copy& c = copies_[static_cast<size_t>(cid)];
        if (c.state != CopyState::kRunning) {
          free_loser(c, rep);
          continue;
        }
        c.cached += 1;
        c.generated += 1;
        if (c.generated == requests_[c.req].max_new_tokens) {
          complete_copy(cid, r, rep.step_end);
        } else {
          still.push_back(cid);
        }
      }
      rep.running = std::move(still);
    }
  }

  void on_crash(int r, double t) {
    Replica& rep = replicas_[static_cast<size_t>(r)];
    if (!rep.up) return;
    rep.up = false;
    rep.busy = false;
    ++rep.step_serial;  // the in-flight step's end event is now stale
    ++rep.stats.crashes;
    ++rep_->crashes;
    const double repair = rep.faults.spec().repair_ms;
    rep.stats.down_ms += repair;
    rep.down_until = t + repair;
    // Everything on the replica dies: the in-flight step's work, the decode
    // batch, and the queue. Affected requests go through the retry policy.
    std::vector<size_t> affected;
    auto kill = [&](int64_t cid) {
      Copy& c = copies_[static_cast<size_t>(cid)];
      if (c.state == CopyState::kQueued) {
        rep.queued_tokens -= need(c);
        c.state = CopyState::kKilled;
        --state_[c.req].live;
        ++rep_->killed_copies;
        affected.push_back(c.req);
      } else if (c.state == CopyState::kRunning) {
        free_loser(c, rep);
        c.state = CopyState::kKilled;
        --state_[c.req].live;
        ++rep_->killed_copies;
        affected.push_back(c.req);
      } else if (c.reserved > 0) {
        free_loser(c, rep);  // cancelled-but-unswept still held KV
      }
    };
    for (const int64_t cid : rep.step_admitted) kill(cid);
    for (const int64_t cid : rep.running) kill(cid);
    for (const int64_t cid : rep.queue) kill(cid);
    rep.step_admitted.clear();
    rep.running.clear();
    rep.queue.clear();
    rep.queued_tokens = 0;
    ACTCOMP_ASSERT(rep.reserved == 0,
                   "replica " << r << " crashed with " << rep.reserved
                              << " reserved tokens unaccounted");
    push({rep.down_until, kEvRecover, 0, r, 0});
    for (const size_t i : affected) resolve_or_retry(i, t);
  }

  void on_recover(int r, double t) {
    Replica& rep = replicas_[static_cast<size_t>(r)];
    if (rep.up) return;
    rep.up = true;
    rep.last_end = std::max(rep.last_end, t);
    schedule_crash(r, t);
  }

  void handle(const Event& ev) {
    switch (ev.kind) {
      case kEvArrival: on_arrival(static_cast<size_t>(ev.a), ev.t); break;
      case kEvRetry: on_retry(static_cast<size_t>(ev.a), ev.t); break;
      case kEvRecover: on_recover(static_cast<int>(ev.a), ev.t); break;
      case kEvStepEnd: on_step_end(static_cast<int>(ev.a), ev.b); break;
      case kEvCrash: on_crash(static_cast<int>(ev.a), ev.t); break;
      case kEvHedge: on_hedge(static_cast<size_t>(ev.a), ev.t); break;
      case kEvTimeout: on_timeout(ev.a, ev.t); break;
      default: ACTCOMP_ASSERT(false, "unknown event kind " << ev.kind);
    }
  }

  void maybe_dispatch(int r, double t) {
    Replica& rep = replicas_[static_cast<size_t>(r)];
    if (!rep.up || rep.busy) return;
    sweep_running(rep);
    // Admission wave: FIFO under max_batch and the token budget, stopping at
    // the first head that does not fit — exactly simulate_serving's rule, so
    // the clean path realizes the identical schedule.
    std::vector<int64_t> admitted;
    int64_t prompts = 0, context = 0;
    while (!rep.queue.empty()) {
      const int64_t cid = rep.queue.front();
      Copy& c = copies_[static_cast<size_t>(cid)];
      if (c.state != CopyState::kQueued) {  // lazily drop dead entries
        rep.queue.pop_front();
        continue;
      }
      const ServingRequest& q = requests_[c.req];
      if (static_cast<int64_t>(rep.running.size() + admitted.size()) >=
          cfg_.max_batch) {
        break;
      }
      const int64_t tokens = q.prompt_tokens + q.max_new_tokens;
      if (rep.reserved + tokens > cfg_.token_budget) break;
      rep.queue.pop_front();
      rep.queued_tokens -= tokens;
      c.state = CopyState::kRunning;
      c.reserved = tokens;
      c.cached = q.prompt_tokens;
      rep.reserved += tokens;
      prompts += q.prompt_tokens;
      context += q.prompt_tokens * (q.prompt_tokens + 1) / 2;
      admitted.push_back(cid);
    }

    StepShape shape;
    if (!admitted.empty()) {
      shape = {true, static_cast<int64_t>(admitted.size()), prompts, context};
    } else if (!rep.running.empty()) {
      int64_t ctx = 0;
      for (const int64_t cid : rep.running) {
        ctx += copies_[static_cast<size_t>(cid)].cached + 1;
      }
      shape = {false, static_cast<int64_t>(rep.running.size()),
               static_cast<int64_t>(rep.running.size()), ctx};
    } else {
      return;  // idle
    }
    const double start = std::max(rep.last_end, t);
    // Brown-out multiplier is exactly 1.0 when the fault process is off, so
    // the clean path's durations are the cost function's, bit for bit.
    const double dur = price(shape) * rep.faults.slow_multiplier_at(start);
    rep.busy = true;
    rep.step_prefill = shape.prefill;
    rep.step_start = start;
    rep.step_end = start + dur;
    rep.step_seqs = shape.seqs;
    rep.step_new_tokens = shape.new_tokens;
    rep.step_admitted = std::move(admitted);
    push({rep.step_end, kEvStepEnd, 0, r, rep.step_serial});
  }

  void finalize(ResilientServingReport& out) {
    // Steps from all replicas merge into one timeline ordered by start time;
    // stable sort keeps the deterministic scheduling order among ties. In
    // the clean path this is already simulate_serving's program order, so
    // finalize_serving_report sums busy_ms in the identical FP order.
    std::stable_sort(steps_.begin(), steps_.end(),
                     [](const StepTiming& x, const StepTiming& y) {
                       return x.start_ms < y.start_ms;
                     });
    out.serving.steps = std::move(steps_);
    finalize_serving_report(out.serving, &completed_);
    out.outcomes.resize(requests_.size());
    for (size_t i = 0; i < requests_.size(); ++i) {
      out.outcomes[i] = state_[i].outcome;
    }
    for (int r = 0; r < cfg_.num_replicas; ++r) {
      out.replicas[static_cast<size_t>(r)] =
          replicas_[static_cast<size_t>(r)].stats;
    }
    if (controller_) {
      out.escalations = controller_->escalations();
      out.deescalations = controller_->deescalations();
      out.final_level = controller_->level();
      out.max_level_seen = controller_->max_level_seen();
    }
  }

  const std::vector<ServingRequest>& requests_;
  const ResilientServingConfig& cfg_;
  ResilientServingReport* rep_ = nullptr;
  std::vector<Replica> replicas_;
  std::vector<Copy> copies_;
  std::vector<RequestState> state_;
  std::vector<char> completed_;
  std::vector<StepTiming> steps_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  std::optional<SloDegradationController> controller_;
  uint64_t seq_ = 0;
  uint64_t rr_next_ = 0;
  size_t resolved_ = 0;
};

}  // namespace

ResilientServingReport simulate_serving_resilient(
    const std::vector<ServingRequest>& requests,
    const ResilientServingConfig& cfg) {
  validate_resilient_serving_inputs(requests, cfg);
  ResilientScheduler sched(requests, cfg);
  return sched.run();
}

}  // namespace actcomp::sim
