// The pre-refactor Engine::run() dispatch loop, preserved verbatim as a
// reference implementation. Test/bench use only:
//   * tests/engine_test.cpp pins run() == run_reference() on randomized DAGs
//     (the refactor's byte-identity contract);
//   * bench/engine_bench measures run()'s events/sec against this loop (the
//     ISSUE 6 >= 10x acceptance bound).
// Differences from the original are mechanical: per-op dependency vectors
// are reconstructed from the flat dep_edges_ list (the op nodes no longer
// carry them), preserving the original vector-of-vectors allocation pattern
// and per-dispatch behavior exactly.
#include <cmath>
#include <functional>
#include <queue>

#include "sim/engine.h"
#include "tensor/check.h"

namespace actcomp::sim {

std::vector<OpTiming> Engine::run_reference() const {
  const size_t n = ops_.size();
  std::vector<OpTiming> times(n);
  std::vector<int> deps_left(n, 0);
  std::vector<std::vector<int>> dependents(n);
  for (const auto& [op, dep] : dep_edges_) {
    ++deps_left[static_cast<size_t>(op)];
    dependents[static_cast<size_t>(dep)].push_back(op);
  }

  struct ResourceState {
    size_t next = 0;  ///< program-order cursor (kProgramOrder)
    int busy = 0;     ///< ops in flight
    std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
  };
  std::vector<ResourceState> state(resources_.size());
  std::vector<char> is_ready(n, 0);

  // Completion events, processed in (time, op id) order for determinism.
  using Event = std::pair<double, int>;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  size_t finished = 0;

  auto start_op = [&](int id, double now) {
    const OpNode& op = ops_[static_cast<size_t>(id)];
    times[static_cast<size_t>(id)] = {now, now + op.duration_ms};
    ++state[static_cast<size_t>(op.resource)].busy;
    events.push({now + op.duration_ms, id});
  };

  auto dispatch = [&](int res, double now) {
    const ResourceNode& r = resources_[static_cast<size_t>(res)];
    ResourceState& s = state[static_cast<size_t>(res)];
    if (r.policy == ExecPolicy::kProgramOrder) {
      while (s.next < r.ops.size() &&
             is_ready[static_cast<size_t>(r.ops[s.next])] &&
             (r.capacity == 0 || s.busy < r.capacity)) {
        start_op(r.ops[s.next], now);
        ++s.next;
      }
    } else {
      while (!s.ready.empty() && (r.capacity == 0 || s.busy < r.capacity)) {
        const int id = s.ready.top();
        s.ready.pop();
        start_op(id, now);
      }
    }
  };

  auto mark_ready = [&](int id) {
    is_ready[static_cast<size_t>(id)] = 1;
    const int res = ops_[static_cast<size_t>(id)].resource;
    if (resources_[static_cast<size_t>(res)].policy == ExecPolicy::kReadyOrder) {
      state[static_cast<size_t>(res)].ready.push(id);
    }
  };

  for (size_t i = 0; i < n; ++i) {
    if (deps_left[i] == 0) mark_ready(static_cast<int>(i));
  }
  for (int r = 0; r < num_resources(); ++r) dispatch(r, 0.0);

  while (!events.empty()) {
    const auto [now, id] = events.top();
    events.pop();
    ++finished;
    --state[static_cast<size_t>(ops_[static_cast<size_t>(id)].resource)].busy;
    for (int d : dependents[static_cast<size_t>(id)]) {
      if (--deps_left[static_cast<size_t>(d)] == 0) mark_ready(d);
    }
    // Re-dispatch the freed resource and every resource that gained a ready
    // op (dispatch is idempotent, so duplicates are harmless).
    dispatch(ops_[static_cast<size_t>(id)].resource, now);
    for (int d : dependents[static_cast<size_t>(id)]) {
      dispatch(ops_[static_cast<size_t>(d)].resource, now);
    }
  }

  ACTCOMP_ASSERT(finished == n, "engine deadlocked with " << n - finished
                                                          << " ops unreachable");
  return times;
}

}  // namespace actcomp::sim
