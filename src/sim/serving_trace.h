// Serving arrival-trace files: a deterministic JSON round-trip for
// std::vector<ServingRequest> via obs/json.
//
// Why: fault/routing/degradation sweeps are only comparable when every
// config replays the SAME workload. poisson_trace is already seeded, but a
// file pins the workload across binaries, machines and future PRs — the
// `throughput_explorer --serve --trace-out/--trace-in` pair writes a trace
// once and replays it under any fleet config. obs/json prints doubles with
// the shortest round-tripping representation and keeps key order, so
// save(load(x)) == x byte-for-byte and arrival times survive exactly (the
// scheduler's determinism contract depends on bit-exact arrivals).
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"
#include "sim/serving.h"

namespace actcomp::sim {

/// Schema tag embedded in every trace file; load rejects anything else.
inline constexpr const char* kServingTraceSchema = "actcomp.serving_trace.v1";

/// Build the JSON document: {"schema": ..., "requests": [{"arrival_ms",
/// "prompt_tokens", "max_new_tokens"}, ...]}.
obs::json::Value serving_trace_to_json(
    const std::vector<ServingRequest>& requests);

/// Inverse of serving_trace_to_json. Throws std::invalid_argument with a
/// precise message on a wrong schema tag, missing/mistyped fields, or a
/// non-object request entry. Does NOT re-validate scheduling feasibility —
/// pass the result through validate_serving_inputs with the target config.
std::vector<ServingRequest> serving_trace_from_json(
    const obs::json::Value& doc);

/// Write the trace as pretty-printed JSON (trailing newline). Throws
/// std::runtime_error when the file cannot be opened.
void save_serving_trace(const std::string& path,
                        const std::vector<ServingRequest>& requests);

/// Read a trace file back. Throws std::runtime_error on IO failure and
/// std::invalid_argument on malformed content.
std::vector<ServingRequest> load_serving_trace(const std::string& path);

}  // namespace actcomp::sim
