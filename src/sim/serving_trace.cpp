#include "sim/serving_trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace actcomp::sim {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("serving_trace: " + msg);
}

}  // namespace

obs::json::Value serving_trace_to_json(
    const std::vector<ServingRequest>& requests) {
  obs::json::Value doc = obs::json::Value::object();
  doc.set("schema", kServingTraceSchema);
  obs::json::Value arr = obs::json::Value::array();
  for (const ServingRequest& r : requests) {
    obs::json::Value item = obs::json::Value::object();
    item.set("arrival_ms", r.arrival_ms);
    item.set("prompt_tokens", r.prompt_tokens);
    item.set("max_new_tokens", r.max_new_tokens);
    arr.push_back(std::move(item));
  }
  doc.set("requests", std::move(arr));
  return doc;
}

std::vector<ServingRequest> serving_trace_from_json(
    const obs::json::Value& doc) {
  if (doc.kind() != obs::json::Kind::kObject) {
    fail("document is not a JSON object");
  }
  const obs::json::Value* schema = doc.find("schema");
  if (schema == nullptr || schema->kind() != obs::json::Kind::kString) {
    fail("missing string field 'schema'");
  }
  if (schema->as_string() != kServingTraceSchema) {
    fail("schema '" + schema->as_string() + "' — expected '" +
         std::string(kServingTraceSchema) + "'");
  }
  const obs::json::Value* reqs = doc.find("requests");
  if (reqs == nullptr || reqs->kind() != obs::json::Kind::kArray) {
    fail("missing array field 'requests'");
  }
  std::vector<ServingRequest> out;
  out.reserve(reqs->size());
  for (size_t i = 0; i < reqs->size(); ++i) {
    const obs::json::Value& item = reqs->at(i);
    std::ostringstream at;
    at << "requests[" << i << "]";
    if (item.kind() != obs::json::Kind::kObject) {
      fail(at.str() + " is not an object");
    }
    auto number = [&](const char* key) {
      const obs::json::Value* v = item.find(key);
      if (v == nullptr || (v->kind() != obs::json::Kind::kInt &&
                           v->kind() != obs::json::Kind::kDouble)) {
        fail(at.str() + ": missing numeric field '" + key + "'");
      }
      return v;
    };
    ServingRequest r;
    r.arrival_ms = number("arrival_ms")->as_double();
    r.prompt_tokens = number("prompt_tokens")->as_int();
    r.max_new_tokens = number("max_new_tokens")->as_int();
    out.push_back(r);
  }
  return out;
}

void save_serving_trace(const std::string& path,
                        const std::vector<ServingRequest>& requests) {
  std::ofstream f(path);
  if (!f) {
    throw std::runtime_error("serving_trace: cannot open '" + path +
                             "' for writing");
  }
  f << serving_trace_to_json(requests).dump(2) << "\n";
  if (!f) {
    throw std::runtime_error("serving_trace: write to '" + path + "' failed");
  }
}

std::vector<ServingRequest> load_serving_trace(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    throw std::runtime_error("serving_trace: cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  std::string err;
  const obs::json::Value doc = obs::json::Value::parse(buf.str(), &err);
  if (doc.is_null() && !err.empty()) {
    fail("parse error in '" + path + "': " + err);
  }
  return serving_trace_from_json(doc);
}

}  // namespace actcomp::sim
