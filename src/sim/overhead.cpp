#include "sim/overhead.h"

#include <cmath>

#include "tensor/check.h"

namespace actcomp::sim {

namespace {

namespace cp = actcomp::compress;

bool is_topk(cp::Setting s) {
  return s == cp::Setting::kT1 || s == cp::Setting::kT2 ||
         s == cp::Setting::kT3 || s == cp::Setting::kT4;
}
bool is_randk(cp::Setting s) {
  return s == cp::Setting::kR1 || s == cp::Setting::kR2 ||
         s == cp::Setting::kR3 || s == cp::Setting::kR4;
}
bool is_ae(cp::Setting s) {
  return s == cp::Setting::kA1 || s == cp::Setting::kA2;
}
bool is_quant(cp::Setting s) {
  return s == cp::Setting::kQ1 || s == cp::Setting::kQ2 ||
         s == cp::Setting::kQ3;
}

// Calibration constants — see the header table for the Table 4 anchors.
constexpr double kTopkScanNsPerElem = 0.17;
constexpr double kTopkSelectNsPerKept = 0.15;
constexpr double kSparseFillNsPerElem = 0.015;
constexpr double kSparseScatterNsPerKept = 1.2;
constexpr double kRandkHostCoeff = 0.048;   // ns · k^1.7 scale
constexpr double kRandkHostExponent = 1.7;
constexpr double kRandkDeviceNsPerElem = 0.02;  // RNG mask generation
constexpr double kRandkDeviceNsPerKept = 0.3;   // compaction
constexpr double kQuantEncNsPerElem = 0.05;
constexpr double kQuantDecNsPerElem = 0.08;
constexpr double kAeEncMfu = 0.20;
constexpr double kAeDecMfu = 0.15;
// Fixed dispatch cost per encode/decode invocation (kernel launches plus
// framework-level bookkeeping). This floor is why no compressor pays off at
// tiny batch/sequence sizes (Takeaway 8 / Tables 12 & 14).
constexpr double kLaunchMs = 0.03;

double ns_to_ms(double ns) { return ns * 1e-6; }

}  // namespace

int64_t OverheadModel::kept_elements(cp::Setting setting, int64_t numel) {
  const double f = cp::sparse_fraction(setting);
  const auto k = static_cast<int64_t>(std::llround(f * static_cast<double>(numel)));
  return std::max<int64_t>(1, k);
}

double OverheadModel::encode_ms(cp::Setting setting, int64_t numel,
                                int64_t hidden) const {
  ACTCOMP_CHECK(numel >= 0 && hidden > 0, "bad overhead query");
  if (setting == cp::Setting::kBaseline || numel == 0) return 0.0;
  if (is_ae(setting)) {
    const int64_t c = cp::ae_code_size(setting, hidden);
    const double flops = 2.0 * static_cast<double>(numel) * static_cast<double>(c);
    GpuSpec g = gpu;
    g.mfu = kAeEncMfu;
    return kLaunchMs + g.compute_ms(flops);
  }
  if (is_topk(setting)) {
    const int64_t k = kept_elements(setting, numel);
    return kLaunchMs + ns_to_ms(kTopkScanNsPerElem * static_cast<double>(numel) +
                                kTopkSelectNsPerKept * static_cast<double>(k));
  }
  if (is_randk(setting)) {
    const int64_t k = kept_elements(setting, numel);
    if (device_side_randomk) {
      return kLaunchMs +
             ns_to_ms(kRandkDeviceNsPerElem * static_cast<double>(numel) +
                      kRandkDeviceNsPerKept * static_cast<double>(k));
    }
    return kLaunchMs + ns_to_ms(kRandkHostCoeff *
                                std::pow(static_cast<double>(k),
                                         kRandkHostExponent));
  }
  if (is_quant(setting)) {
    return kLaunchMs + ns_to_ms(kQuantEncNsPerElem * static_cast<double>(numel));
  }
  ACTCOMP_ASSERT(false, "unhandled setting in encode_ms");
}

double OverheadModel::decode_ms(cp::Setting setting, int64_t numel,
                                int64_t hidden, int copies) const {
  ACTCOMP_CHECK(copies >= 1, "decode copies must be >= 1");
  if (setting == cp::Setting::kBaseline || numel == 0) return 0.0;
  if (is_ae(setting)) {
    // AE rides all-reduce: exactly one decode GEMM regardless of TP degree.
    const int64_t c = cp::ae_code_size(setting, hidden);
    const double flops = 2.0 * static_cast<double>(numel) * static_cast<double>(c);
    GpuSpec g = gpu;
    g.mfu = kAeDecMfu;
    return kLaunchMs + g.compute_ms(flops);
  }
  if (is_topk(setting) || is_randk(setting)) {
    const int64_t k = kept_elements(setting, numel) * copies;
    return kLaunchMs +
           ns_to_ms(kSparseFillNsPerElem * static_cast<double>(numel) +
                    kSparseScatterNsPerKept * static_cast<double>(k));
  }
  if (is_quant(setting)) {
    return kLaunchMs + ns_to_ms(kQuantDecNsPerElem * static_cast<double>(numel) *
                                static_cast<double>(copies));
  }
  ACTCOMP_ASSERT(false, "unhandled setting in decode_ms");
}

double OverheadModel::backward_extra_ms(cp::Setting setting, int64_t numel,
                                        int64_t hidden) const {
  if (setting == cp::Setting::kBaseline || numel == 0) return 0.0;
  if (is_ae(setting)) {
    // Four gradient GEMMs (dX and dW for encoder and decoder), each the size
    // of the forward codec GEMM. Anchor: A1 adds ≈ 8.5 ms of backward time
    // in Table 4.
    const int64_t c = cp::ae_code_size(setting, hidden);
    const double flops = 8.0 * static_cast<double>(numel) * static_cast<double>(c);
    GpuSpec g = gpu;
    g.mfu = kAeDecMfu;
    return g.compute_ms(flops);
  }
  // Straight-through / masked backward: one elementwise pass.
  return ns_to_ms(0.01 * static_cast<double>(numel));
}

}  // namespace actcomp::sim
