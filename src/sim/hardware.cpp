#include "sim/hardware.h"

#include <cmath>
#include <stdexcept>

#include "tensor/check.h"

namespace actcomp::sim {

int TopologySpec::tiers(int nodes) const {
  ACTCOMP_CHECK(nodes >= 1, "TopologySpec: nodes must be >= 1, got " << nodes);
  if (spine == Spine::kFlat || nodes <= 1) return 1;
  // One tier per factor-of-16 fan-out: 2..16 nodes share a leaf (1 tier),
  // 17..256 add a spine tier, 257..4096 an aggregation tier, and so on.
  int t = 0;
  long long reach = 1;
  while (reach < nodes) {
    reach *= 16;
    ++t;
  }
  return t;
}

LinkSpec TopologySpec::cross_node(const LinkSpec& inter, int nodes) const {
  if (spine == Spine::kFlat) return inter;
  LinkSpec l = inter;
  l.latency_us = inter.latency_us * static_cast<double>(tiers(nodes));
  if (spine == Spine::kOversubscribed && nodes > 16) {
    // Traffic stays under one leaf switch up to the radix; beyond it the
    // uplinks are the bottleneck.
    l.bandwidth_gb_s = inter.bandwidth_gb_s / oversubscription;
  }
  return l;
}

LinkSpec ClusterSpec::link_between(int nodes_spanned) const {
  ACTCOMP_CHECK(nodes_spanned >= 1,
                "ClusterSpec: nodes_spanned must be >= 1, got " << nodes_spanned);
  if (nodes_spanned == 1) return intra_node;
  return topology.cross_node(inter_node, nodes_spanned);
}

void ClusterSpec::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::invalid_argument("ClusterSpec: " + msg);
  };
  if (num_nodes < 1) {
    fail("num_nodes must be >= 1, got " + std::to_string(num_nodes));
  }
  if (gpus_per_node < 1) {
    fail("gpus_per_node must be >= 1, got " + std::to_string(gpus_per_node));
  }
  if (!(intra_node.bandwidth_gb_s > 0.0) ||
      !std::isfinite(intra_node.bandwidth_gb_s)) {
    fail("intra_node.bandwidth_gb_s must be positive and finite, got " +
         std::to_string(intra_node.bandwidth_gb_s));
  }
  if (!(inter_node.bandwidth_gb_s > 0.0) ||
      !std::isfinite(inter_node.bandwidth_gb_s)) {
    fail("inter_node.bandwidth_gb_s must be positive and finite, got " +
         std::to_string(inter_node.bandwidth_gb_s));
  }
  if (intra_node.latency_us < 0.0 || inter_node.latency_us < 0.0) {
    fail("link latency_us must be >= 0");
  }
  if (topology.oversubscription < 1.0 ||
      !std::isfinite(topology.oversubscription)) {
    fail("topology.oversubscription must be >= 1, got " +
         std::to_string(topology.oversubscription));
  }
  if (!(gpu.peak_fp16_tflops > 0.0) || !(gpu.mfu > 0.0) || gpu.mfu > 1.0) {
    fail("gpu peak/mfu must satisfy peak > 0 and 0 < mfu <= 1");
  }
}

ClusterSpec ClusterSpec::aws_p3(int num_nodes) {
  ACTCOMP_CHECK(num_nodes >= 1, "need at least one node");
  ClusterSpec c;
  c.name = num_nodes == 1 ? "aws-p3.8xlarge"
                          : std::to_string(num_nodes) + "x-aws-p3.8xlarge";
  c.num_nodes = num_nodes;
  c.gpus_per_node = 4;
  c.has_nvlink = true;
  // Effective collective bandwidth over the hybrid-mesh NVLink fabric.
  // The paper quotes 40 GB/s per link; ring collectives stripe across the
  // parallel links, and ~100 GB/s effective reconciles the paper's
  // TP=4/PP=1 NVLink rows with its TP=1/PP=4 compute-only rows.
  c.intra_node = {.bandwidth_gb_s = 100.0, .latency_us = 8.0};
  c.inter_node = {.bandwidth_gb_s = 1.25, .latency_us = 50.0};  // 10 Gbps
  c.validate();
  return c;
}

ClusterSpec ClusterSpec::local_pcie() {
  ClusterSpec c;
  c.name = "local-4xV100-pcie";
  c.num_nodes = 1;
  c.gpus_per_node = 4;
  c.has_nvlink = false;
  // One shared PCIe bridge: effective 11 GB/s, fitted from Table 4 (see
  // hardware.h header comment).
  c.intra_node = {.bandwidth_gb_s = 11.0, .latency_us = 15.0};
  c.inter_node = {.bandwidth_gb_s = 1.25, .latency_us = 50.0};
  c.validate();
  return c;
}

ClusterSpec ClusterSpec::datacenter(int num_nodes, TopologySpec::Spine spine,
                                    double oversubscription) {
  ClusterSpec c;
  c.name = std::to_string(num_nodes) + "-node-datacenter";
  c.num_nodes = num_nodes;
  c.gpus_per_node = 8;
  c.has_nvlink = true;
  // 8-GPU NVLink island (same effective collective bandwidth calibration as
  // aws_p3) under a 100 GbE leaf uplink (12.5 GB/s).
  c.intra_node = {.bandwidth_gb_s = 100.0, .latency_us = 8.0};
  c.inter_node = {.bandwidth_gb_s = 12.5, .latency_us = 20.0};
  c.topology.spine = spine;
  c.topology.oversubscription = oversubscription;
  c.validate();
  return c;
}

}  // namespace actcomp::sim
