#include "sim/hardware.h"

#include "tensor/check.h"

namespace actcomp::sim {

ClusterSpec ClusterSpec::aws_p3(int num_nodes) {
  ACTCOMP_CHECK(num_nodes >= 1, "need at least one node");
  ClusterSpec c;
  c.name = num_nodes == 1 ? "aws-p3.8xlarge"
                          : std::to_string(num_nodes) + "x-aws-p3.8xlarge";
  c.num_nodes = num_nodes;
  c.gpus_per_node = 4;
  c.has_nvlink = true;
  // Effective collective bandwidth over the hybrid-mesh NVLink fabric.
  // The paper quotes 40 GB/s per link; ring collectives stripe across the
  // parallel links, and ~100 GB/s effective reconciles the paper's
  // TP=4/PP=1 NVLink rows with its TP=1/PP=4 compute-only rows.
  c.intra_node = {.bandwidth_gb_s = 100.0, .latency_us = 8.0};
  c.inter_node = {.bandwidth_gb_s = 1.25, .latency_us = 50.0};  // 10 Gbps
  return c;
}

ClusterSpec ClusterSpec::local_pcie() {
  ClusterSpec c;
  c.name = "local-4xV100-pcie";
  c.num_nodes = 1;
  c.gpus_per_node = 4;
  c.has_nvlink = false;
  // One shared PCIe bridge: effective 11 GB/s, fitted from Table 4 (see
  // hardware.h header comment).
  c.intra_node = {.bandwidth_gb_s = 11.0, .latency_us = 15.0};
  c.inter_node = {.bandwidth_gb_s = 1.25, .latency_us = 50.0};
  return c;
}

}  // namespace actcomp::sim
