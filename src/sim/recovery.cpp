#include "sim/recovery.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <random>
#include <sstream>
#include <stdexcept>

#include "obs/registry.h"

namespace actcomp::sim {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("RecoveryConfig: " + msg);
}

void check_finite_nonneg(double v, const char* name) {
  if (!std::isfinite(v) || v < 0.0) {
    std::ostringstream os;
    os << name << " = " << v << " — must be finite and non-negative";
    fail(os.str());
  }
}

/// Same 53-bit construction as FaultInjector::next_uniform — identical
/// crash realizations across standard libraries.
double next_uniform(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

double draw_exponential(std::mt19937_64& rng, double mean) {
  // Inverse CDF on (0, 1]; 1 - u avoids log(0).
  return -mean * std::log(1.0 - next_uniform(rng));
}

}  // namespace

void RecoveryConfig::validate() const {
  if (!std::isfinite(step_ms) || step_ms <= 0.0) {
    std::ostringstream os;
    os << "step_ms = " << step_ms << " — must be finite and positive";
    fail(os.str());
  }
  if (total_steps < 1) {
    std::ostringstream os;
    os << "total_steps = " << total_steps << " — must be >= 1";
    fail(os.str());
  }
  if (ckpt_interval_steps < 0) {
    std::ostringstream os;
    os << "ckpt_interval_steps = " << ckpt_interval_steps << " — must be >= 0";
    fail(os.str());
  }
  check_finite_nonneg(ckpt_cost_ms, "ckpt_cost_ms");
  check_finite_nonneg(crash.mtbf_ms, "crash.mtbf_ms");
  check_finite_nonneg(crash.detect_ms, "crash.detect_ms");
  check_finite_nonneg(crash.restart_ms, "crash.restart_ms");
  if (crash.num_stages < 1) {
    std::ostringstream os;
    os << "crash.num_stages = " << crash.num_stages << " — must be >= 1";
    fail(os.str());
  }
}

const char* recovery_segment_label(RecoverySegmentKind k) {
  switch (k) {
    case RecoverySegmentKind::kWork: return "work";
    case RecoverySegmentKind::kReplay: return "replay";
    case RecoverySegmentKind::kCheckpoint: return "checkpoint";
    case RecoverySegmentKind::kDetect: return "detect";
    case RecoverySegmentKind::kRestart: return "restart";
  }
  return "?";
}

RecoveryResult simulate_recovery(const RecoveryConfig& cfg) {
  cfg.validate();
  std::mt19937_64 rng(cfg.seed);
  const bool crashes_on = cfg.crash.enabled();
  const double mtbf = crashes_on ? cfg.crash.effective_mtbf_ms() : 0.0;
  const int64_t k = cfg.ckpt_interval_steps;

  RecoveryResult r;
  r.useful_steps = cfg.total_steps;

  double t = 0.0;
  int64_t done = 0;        // steps completed since the last rollback
  int64_t safe = 0;        // last checkpointed step
  int64_t high_water = 0;  // furthest step ever completed (replay boundary)
  double next_crash = crashes_on
                          ? draw_exponential(rng, mtbf)
                          : std::numeric_limits<double>::infinity();

  auto emit = [&](RecoverySegmentKind kind, double start, double end,
                  int64_t s_begin, int64_t s_end) {
    if (end > start) r.segments.push_back({kind, start, end, s_begin, s_end});
  };
  // Splits a work/replay span at the replay -> new-work boundary so the
  // timeline shows exactly which spans are re-execution.
  auto emit_run = [&](double start, int64_t s_begin, int64_t s_end) {
    const int64_t replay_end = std::min(s_end, std::max(s_begin, high_water));
    const double mid =
        start + static_cast<double>(replay_end - s_begin) * cfg.step_ms;
    emit(RecoverySegmentKind::kReplay, start, mid, s_begin, replay_end);
    emit(RecoverySegmentKind::kWork, mid,
         mid + static_cast<double>(s_end - replay_end) * cfg.step_ms,
         replay_end, s_end);
    r.replay_ms += mid - start;
  };

  while (done < cfg.total_steps) {
    // Advance to the next milestone: the next checkpoint boundary or the end.
    const int64_t target =
        k > 0 ? std::min(cfg.total_steps, (done / k + 1) * k) : cfg.total_steps;
    const double block_ms = static_cast<double>(target - done) * cfg.step_ms;

    if (next_crash < t + block_ms) {
      // Crash mid-block: the partial step plus everything completed since
      // the last checkpoint is discarded.
      const int64_t whole = static_cast<int64_t>((next_crash - t) / cfg.step_ms);
      const int64_t reached = std::min(target, done + whole);
      emit_run(t, done, reached);
      const double partial_start =
          t + static_cast<double>(reached - done) * cfg.step_ms;
      if (next_crash > partial_start) {
        // The torn step: the job is up and executing, but the crash will
        // discard it before it completes.
        const bool replaying = reached < high_water;
        emit(replaying ? RecoverySegmentKind::kReplay
                       : RecoverySegmentKind::kWork,
             partial_start, next_crash, reached, reached);
        if (replaying) r.replay_ms += next_crash - partial_start;
      }
      r.lost_ms += (next_crash - t) +
                   static_cast<double>(done - safe) * cfg.step_ms;
      t = next_crash;
      r.crash_times_ms.push_back(t);
      ++r.crashes;
      // A thrashing configuration (MTBF far below the step time) never
      // finishes; fail loudly instead of spinning forever.
      if (r.crashes > 1000000) {
        throw std::runtime_error(
            "simulate_recovery: job cannot make progress (over 1e6 crashes; "
            "MTBF is below the per-step cost — shrink step_ms or raise "
            "crash.mtbf_ms)");
      }
      high_water = std::max(high_water, reached);
      emit(RecoverySegmentKind::kDetect, t, t + cfg.crash.detect_ms, 0, 0);
      t += cfg.crash.detect_ms;
      emit(RecoverySegmentKind::kRestart, t, t + cfg.crash.restart_ms, 0, 0);
      t += cfg.crash.restart_ms;
      r.downtime_ms += cfg.crash.detect_ms + cfg.crash.restart_ms;
      done = safe;  // rollback-and-replay from the last checkpoint
      next_crash = t + draw_exponential(rng, mtbf);
      continue;
    }

    emit_run(t, done, target);
    t += block_ms;
    high_water = std::max(high_water, target);
    done = target;
    if (done >= cfg.total_steps) break;

    // Checkpoint write at the interval boundary; a crash mid-write tears
    // the file (safe stays put) and the job still rolls back.
    if (next_crash < t + cfg.ckpt_cost_ms) {
      emit(RecoverySegmentKind::kCheckpoint, t, next_crash, 0, 0);
      r.ckpt_ms += next_crash - t;
      r.lost_ms += static_cast<double>(done - safe) * cfg.step_ms;
      t = next_crash;
      r.crash_times_ms.push_back(t);
      ++r.crashes;
      emit(RecoverySegmentKind::kDetect, t, t + cfg.crash.detect_ms, 0, 0);
      t += cfg.crash.detect_ms;
      emit(RecoverySegmentKind::kRestart, t, t + cfg.crash.restart_ms, 0, 0);
      t += cfg.crash.restart_ms;
      r.downtime_ms += cfg.crash.detect_ms + cfg.crash.restart_ms;
      done = safe;
      next_crash = t + draw_exponential(rng, mtbf);
      continue;
    }
    emit(RecoverySegmentKind::kCheckpoint, t, t + cfg.ckpt_cost_ms, 0, 0);
    t += cfg.ckpt_cost_ms;
    r.ckpt_ms += cfg.ckpt_cost_ms;
    safe = done;
  }

  r.wall_ms = t;
  auto& reg = obs::Registry::instance();
  reg.counter("sim.recovery.runs").add();
  reg.counter("sim.recovery.crashes").add(r.crashes);
  reg.gauge("sim.recovery.goodput_steps_per_s").set(r.goodput_steps_per_sec());
  return r;
}

double young_daly_interval_ms(double ckpt_cost_ms, double effective_mtbf_ms) {
  if (!(ckpt_cost_ms > 0.0) || !(effective_mtbf_ms > 0.0)) {
    std::ostringstream os;
    os << "young_daly_interval_ms needs positive checkpoint cost and MTBF, got "
       << ckpt_cost_ms << " / " << effective_mtbf_ms;
    throw std::invalid_argument(os.str());
  }
  return std::sqrt(2.0 * ckpt_cost_ms * effective_mtbf_ms);
}

double analytic_wall_ms(const RecoveryConfig& cfg, double interval_ms) {
  cfg.validate();
  if (!(interval_ms > 0.0)) {
    std::ostringstream os;
    os << "interval_ms = " << interval_ms << " — must be positive";
    throw std::invalid_argument(os.str());
  }
  const double work = static_cast<double>(cfg.total_steps) * cfg.step_ms;
  const double ckpt_overhead = cfg.ckpt_cost_ms / interval_ms;
  if (!cfg.crash.enabled()) {
    // Exact: one checkpoint per full interval, none after the final step.
    const int64_t k =
        std::max<int64_t>(1, static_cast<int64_t>(interval_ms / cfg.step_ms));
    return work + cfg.ckpt_cost_ms *
                      static_cast<double>((cfg.total_steps - 1) / k);
  }
  const double mtbf = cfg.crash.effective_mtbf_ms();
  const double rework = interval_ms / 2.0 + cfg.ckpt_cost_ms / 2.0 +
                        cfg.crash.detect_ms + cfg.crash.restart_ms;
  return work * (1.0 + ckpt_overhead) * (1.0 + rework / mtbf);
}

double analytic_goodput(const RecoveryConfig& cfg, double interval_ms) {
  const double wall = analytic_wall_ms(cfg, interval_ms);
  return wall > 0.0 ? static_cast<double>(cfg.total_steps) / wall * 1e3 : 0.0;
}

IntervalSweepResult sweep_checkpoint_interval(const RecoveryConfig& base,
                                              int trials, double span,
                                              int grid_points) {
  base.validate();
  if (trials < 1) fail("sweep needs trials >= 1");
  if (!(span > 1.0) || grid_points < 2) fail("sweep needs span > 1 and >= 2 grid points");
  if (!base.crash.enabled() || base.ckpt_cost_ms <= 0.0) {
    fail("sweep needs crashes enabled and a positive checkpoint cost");
  }

  IntervalSweepResult out;
  out.young_daly_ms =
      young_daly_interval_ms(base.ckpt_cost_ms, base.crash.effective_mtbf_ms());

  // Geometric grid over [tau*/span, tau* x span], deduplicated after
  // rounding to whole steps.
  std::vector<int64_t> grid;
  const double lo = out.young_daly_ms / span;
  const double ratio = std::pow(span * span, 1.0 / (grid_points - 1));
  for (int i = 0; i < grid_points; ++i) {
    const double tau = lo * std::pow(ratio, i);
    const int64_t steps = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(tau / base.step_ms)));
    if (grid.empty() || grid.back() != steps) grid.push_back(steps);
  }

  double best_wall = std::numeric_limits<double>::infinity();
  size_t argmin = 0;
  for (int64_t steps : grid) {
    RecoveryConfig cfg = base;
    cfg.ckpt_interval_steps = steps;
    IntervalSweepPoint pt;
    pt.interval_steps = steps;
    pt.interval_ms = static_cast<double>(steps) * base.step_ms;
    // Common random numbers: every interval replays the same seed set, so
    // interval-to-interval comparisons share their crash realizations and
    // the argmin is stable at moderate trial counts.
    for (int tr = 0; tr < trials; ++tr) {
      cfg.seed = base.seed + static_cast<uint64_t>(tr);
      const RecoveryResult r = simulate_recovery(cfg);
      pt.mean_wall_ms += r.wall_ms;
      pt.mean_goodput += r.goodput_steps_per_sec();
      pt.mean_crashes += r.crashes;
    }
    pt.mean_wall_ms /= trials;
    pt.mean_goodput /= trials;
    pt.mean_crashes /= trials;
    pt.analytic_wall = analytic_wall_ms(cfg, pt.interval_ms);
    if (pt.mean_wall_ms < best_wall) {
      best_wall = pt.mean_wall_ms;
      argmin = out.points.size();
    }
    out.points.push_back(pt);
  }

  // The wall-clock curve is nearly flat around tau* (the overhead is
  // C/tau + tau/2M, with second-order curvature at the minimum), so the raw
  // per-point argmin wanders with residual Monte-Carlo noise. Fit a
  // quadratic in log(tau) to the window around the argmin and report the
  // fitted vertex — the standard treatment for locating the minimum of a
  // flat noisy curve. Falls back to the raw argmin when the fit degenerates
  // (non-positive curvature or a vertex outside the window).
  out.best_interval_ms = out.points[argmin].interval_ms;
  out.best_interval_steps = out.points[argmin].interval_steps;
  const size_t w_lo = argmin > 4 ? argmin - 4 : 0;
  const size_t w_hi = std::min(out.points.size() - 1, argmin + 4);
  if (w_hi - w_lo + 1 >= 5) {
    // Least squares w = a + b x + c x^2 over x = log(tau), centered for
    // conditioning; solved with the 3x3 normal equations.
    const double x0 = std::log(out.points[argmin].interval_ms);
    double s0 = 0, s1 = 0, s2 = 0, s3 = 0, s4 = 0, t0 = 0, t1 = 0, t2 = 0;
    for (size_t i = w_lo; i <= w_hi; ++i) {
      const double x = std::log(out.points[i].interval_ms) - x0;
      const double y = out.points[i].mean_wall_ms;
      const double x2 = x * x;
      s0 += 1; s1 += x; s2 += x2; s3 += x2 * x; s4 += x2 * x2;
      t0 += y; t1 += x * y; t2 += x2 * y;
    }
    const double det = s0 * (s2 * s4 - s3 * s3) - s1 * (s1 * s4 - s2 * s3) +
                       s2 * (s1 * s3 - s2 * s2);
    if (std::fabs(det) > 1e-12) {
      const double b = (s0 * (t1 * s4 - s3 * t2) - t0 * (s1 * s4 - s2 * s3) +
                        s2 * (s1 * t2 - t1 * s2)) / det;
      const double c = (s0 * (s2 * t2 - t1 * s3) - s1 * (s1 * t2 - t1 * s2) +
                        t0 * (s1 * s3 - s2 * s2)) / det;
      const double x_lo = std::log(out.points[w_lo].interval_ms) - x0;
      const double x_hi = std::log(out.points[w_hi].interval_ms) - x0;
      if (c > 0.0) {
        const double xv = -b / (2.0 * c);
        if (xv >= x_lo && xv <= x_hi) {
          out.best_interval_ms = std::exp(xv + x0);
          out.best_interval_steps = std::max<int64_t>(
              1, static_cast<int64_t>(
                     std::llround(out.best_interval_ms / base.step_ms)));
        }
      }
    }
  }
  return out;
}

void write_recovery_trace(std::ostream& os, const RecoveryResult& r) {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };
  sep();
  os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"recovery timeline\"}}";
  sep();
  os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
        "\"args\":{\"name\":\"crashes\"}}";
  for (const RecoverySegment& s : r.segments) {
    sep();
    os << "{\"name\":\"" << recovery_segment_label(s.kind);
    if (s.kind == RecoverySegmentKind::kWork ||
        s.kind == RecoverySegmentKind::kReplay) {
      os << ' ' << s.step_begin << "-" << s.step_end;
    }
    os << "\",\"cat\":\"" << recovery_segment_label(s.kind)
       << "\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":" << s.start_ms * 1e3
       << ",\"dur\":" << (s.end_ms - s.start_ms) * 1e3 << '}';
  }
  for (size_t i = 0; i < r.crash_times_ms.size(); ++i) {
    sep();
    os << "{\"name\":\"crash " << i + 1
       << "\",\"cat\":\"crash\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,"
          "\"tid\":1,\"ts\":"
       << r.crash_times_ms[i] * 1e3 << '}';
  }
  os << "]}\n";
}

}  // namespace actcomp::sim
