// Collective-communication cost models (ring algorithms, as in NCCL).
//
//   all-reduce     : 2·(n−1)/n · S / BW + 2·(n−1)·α   (ring, reduce+broadcast)
//   all-gather     : (n−1)/n · n·S_rank / BW + (n−1)·α = (n−1)·S_rank/BW + …
//   reduce-scatter : (n−1)/n · S / BW + (n−1)·α
//   p2p            : α + S / BW
//
// These are the standard alpha-beta ring bounds; NCCL approaches them for
// the MB-scale messages the paper communicates.
//
// hierarchical_allreduce_ms composes them the way NCCL trees a multi-node
// job: reduce-scatter inside each node island, ring all-reduce of the 1/a
// shard across one rank per node, all-gather inside the island. Its volume
// term is algebraically identical to the flat ring over a·b ranks
// (2·(ab−1)/(ab)·S/BW when both links are equal) while its latency term is
// 2·(a+b−2)·α instead of 2·(ab−1)·α — the whole point of hierarchy at
// datacenter scale (tests/topology_test.cpp pins both properties).
#pragma once

#include <cstdint>

#include "sim/hardware.h"

namespace actcomp::sim {

/// Ring all-reduce of `bytes` over `ranks` peers connected by `link`.
double allreduce_ms(int64_t bytes, int ranks, const LinkSpec& link);

/// Ring all-gather where each rank contributes `bytes_per_rank`.
double allgather_ms(int64_t bytes_per_rank, int ranks, const LinkSpec& link);

/// Ring reduce-scatter of `bytes` over `ranks` peers: each rank ends up
/// owning a reduced 1/ranks shard.
double reduce_scatter_ms(int64_t bytes, int ranks, const LinkSpec& link);

/// Hierarchical all-reduce of `bytes` over `intra_ranks` GPUs per node ×
/// `inter_ranks` nodes: reduce-scatter over `intra` inside the island, ring
/// all-reduce of the shard over `inter` across one leader per node, then
/// all-gather over `intra`. Either factor may be 1 (degenerates to the flat
/// ring over the other link).
double hierarchical_allreduce_ms(int64_t bytes, int intra_ranks,
                                 int inter_ranks, const LinkSpec& intra,
                                 const LinkSpec& inter);

/// Point-to-point send of `bytes`.
double p2p_ms(int64_t bytes, const LinkSpec& link);

// ---------------------------------------------------------------------------
// Lossless wire stage + chunk-pipelined transfers (DESIGN.md §16).
// ---------------------------------------------------------------------------

/// Cost-model view of a compress/lossless.h codec on a link: messages shrink
/// by `ratio`, and each endpoint pays encode/decode at the measured
/// throughputs (bench/kernels_bench records them per tier). With chunks > 1
/// the codec's chunk table lets encode, transfer, and decode of successive
/// chunks overlap — chunk_pipelined_ms() realizes that on a sim::Engine
/// graph. Disabled (the default) is the exact pre-existing cost model.
struct LosslessWireSpec {
  bool enabled = false;
  double ratio = 1.0;        ///< encoded bytes / raw bytes, in (0, 1]
  double encode_gb_s = 0.0;  ///< 0 = free (pure volume-scaling model)
  double decode_gb_s = 0.0;  ///< 0 = free
  int chunks = 1;            ///< container chunks; 1 = no pipelining
};

/// Time to push `bytes` through a codec running at `gb_s`; 0 GB/s = free.
double codec_ms(int64_t bytes, double gb_s);

/// On-wire bytes for a raw payload under the spec (ceil of raw * ratio;
/// unchanged when disabled).
int64_t lossless_wire_bytes(int64_t raw_bytes, const LosslessWireSpec& spec);

/// Makespan of an encode → transfer → decode chain split into `chunks` equal
/// parts, with chunk i's transfer overlapping chunk i+1's encode and chunk
/// i-1's decode. Modeled as real chunk ops on a sim::Engine event graph
/// (three program-order resources: encoder, link, decoder; deps t_i ← e_i,
/// d_i ← t_i). chunks == 1 realizes exactly enc + transfer + dec (the engine
/// sums the chain left to right, so the double arithmetic is bit-identical
/// to the unpipelined expression). Stages split evenly with no per-chunk
/// latency, so the makespan (E + X + D + (chunks−1)·max(E,X,D)) / chunks is
/// never larger than the unpipelined E + X + D and never smaller than
/// max(E, X, D) (tests/engine_test.cpp pins both properties).
double chunk_pipelined_ms(double encode_ms, double transfer_ms,
                          double decode_ms, int chunks);

}  // namespace actcomp::sim
