// Collective-communication cost models (ring algorithms, as in NCCL).
//
//   all-reduce     : 2·(n−1)/n · S / BW + 2·(n−1)·α   (ring, reduce+broadcast)
//   all-gather     : (n−1)/n · n·S_rank / BW + (n−1)·α = (n−1)·S_rank/BW + …
//   reduce-scatter : (n−1)/n · S / BW + (n−1)·α
//   p2p            : α + S / BW
//
// These are the standard alpha-beta ring bounds; NCCL approaches them for
// the MB-scale messages the paper communicates.
//
// hierarchical_allreduce_ms composes them the way NCCL trees a multi-node
// job: reduce-scatter inside each node island, ring all-reduce of the 1/a
// shard across one rank per node, all-gather inside the island. Its volume
// term is algebraically identical to the flat ring over a·b ranks
// (2·(ab−1)/(ab)·S/BW when both links are equal) while its latency term is
// 2·(a+b−2)·α instead of 2·(ab−1)·α — the whole point of hierarchy at
// datacenter scale (tests/topology_test.cpp pins both properties).
#pragma once

#include <cstdint>

#include "sim/hardware.h"

namespace actcomp::sim {

/// Ring all-reduce of `bytes` over `ranks` peers connected by `link`.
double allreduce_ms(int64_t bytes, int ranks, const LinkSpec& link);

/// Ring all-gather where each rank contributes `bytes_per_rank`.
double allgather_ms(int64_t bytes_per_rank, int ranks, const LinkSpec& link);

/// Ring reduce-scatter of `bytes` over `ranks` peers: each rank ends up
/// owning a reduced 1/ranks shard.
double reduce_scatter_ms(int64_t bytes, int ranks, const LinkSpec& link);

/// Hierarchical all-reduce of `bytes` over `intra_ranks` GPUs per node ×
/// `inter_ranks` nodes: reduce-scatter over `intra` inside the island, ring
/// all-reduce of the shard over `inter` across one leader per node, then
/// all-gather over `intra`. Either factor may be 1 (degenerates to the flat
/// ring over the other link).
double hierarchical_allreduce_ms(int64_t bytes, int intra_ranks,
                                 int inter_ranks, const LinkSpec& intra,
                                 const LinkSpec& inter);

/// Point-to-point send of `bytes`.
double p2p_ms(int64_t bytes, const LinkSpec& link);

}  // namespace actcomp::sim
