// Collective-communication cost models (ring algorithms, as in NCCL).
//
//   all-reduce  : 2·(n−1)/n · S / BW + 2·(n−1)·α      (ring, reduce+broadcast)
//   all-gather  : (n−1)/n · n·S_rank / BW + (n−1)·α = (n−1)·S_rank/BW + …
//   p2p         : α + S / BW
//
// These are the standard alpha-beta ring bounds; NCCL approaches them for
// the MB-scale messages the paper communicates.
#pragma once

#include <cstdint>

#include "sim/hardware.h"

namespace actcomp::sim {

/// Ring all-reduce of `bytes` over `ranks` peers connected by `link`.
double allreduce_ms(int64_t bytes, int ranks, const LinkSpec& link);

/// Ring all-gather where each rank contributes `bytes_per_rank`.
double allgather_ms(int64_t bytes_per_rank, int ranks, const LinkSpec& link);

/// Point-to-point send of `bytes`.
double p2p_ms(int64_t bytes, const LinkSpec& link);

}  // namespace actcomp::sim
