// Discrete-event execution engine for the pipeline simulator.
//
// The engine models a set of *resources* (things that serialize work: a
// stage's compute unit, a link's lane pool) and a static DAG of *ops*
// (forward/backward compute steps, point-to-point transfers). Schedules —
// GPipe, 1F1B, interleaved 1F1B — are expressed as op-dependency graphs on
// top of this core (see sim/pipeline.cpp) instead of bespoke loops, so new
// schedules only need a graph builder, not a new simulator.
//
// Resource semantics:
//   * capacity N > 0 — at most N ops in flight (N lanes); capacity 0 means
//     unlimited (a link with no contention is pure dependency delay).
//   * ExecPolicy::kProgramOrder — ops run strictly in the order they were
//     added to the resource, each starting at max(previous op's end, its
//     dependencies' end). This reproduces a synchronous executor exactly.
//   * ExecPolicy::kReadyOrder — the resource is work-conserving: whenever a
//     lane is free it starts the ready op with the lowest insertion index.
//     This models comm/compute overlap (async p2p): a stage stalled on a
//     late arrival runs the next op whose inputs are already present.
//
// run() is deterministic: events are processed in (time, op id) order.
#pragma once

#include <cstddef>
#include <vector>

namespace actcomp::sim {

enum class ExecPolicy { kProgramOrder, kReadyOrder };

struct OpTiming {
  double start_ms = 0.0;
  double end_ms = 0.0;
};

class Engine {
 public:
  /// Adds a resource; `capacity` is the number of concurrent lanes (0 =
  /// unlimited). Returns its id.
  int add_resource(int capacity, ExecPolicy policy = ExecPolicy::kProgramOrder);

  /// Adds an op bound to `resource` with the given duration. Insertion order
  /// per resource defines the program order (kProgramOrder) and the
  /// tie-break priority (kReadyOrder). Returns the op id.
  int add_op(int resource, double duration_ms);

  /// Declares that `op` cannot start before `dep` has finished.
  void add_dep(int op, int dep);

  int num_ops() const { return static_cast<int>(ops_.size()); }
  int num_resources() const { return static_cast<int>(resources_.size()); }

  /// Introspection for accounting and property tests (realized times come
  /// from run()). Throw std::out_of_range on bad ids.
  int op_resource(int op) const { return ops_.at(static_cast<size_t>(op)).resource; }
  double op_duration_ms(int op) const {
    return ops_.at(static_cast<size_t>(op)).duration_ms;
  }
  int resource_capacity(int resource) const {
    return resources_.at(static_cast<size_t>(resource)).capacity;
  }

  /// Executes the DAG to completion and returns per-op realized times.
  /// Throws std::logic_error if the graph cannot make progress (a dependency
  /// cycle, or a kProgramOrder resource whose next op waits on a later one).
  std::vector<OpTiming> run() const;

 private:
  struct OpNode {
    int resource = 0;
    double duration_ms = 0.0;
    std::vector<int> deps;
  };
  struct ResourceNode {
    int capacity = 0;
    ExecPolicy policy = ExecPolicy::kProgramOrder;
    std::vector<int> ops;  ///< insertion order = program order
  };

  std::vector<OpNode> ops_;
  std::vector<ResourceNode> resources_;
};

}  // namespace actcomp::sim
