// Discrete-event execution engine for the pipeline simulator.
//
// The engine models a set of *resources* (things that serialize work: a
// stage's compute unit, a link's lane pool) and a static DAG of *ops*
// (forward/backward compute steps, point-to-point transfers). Schedules —
// GPipe, 1F1B, interleaved 1F1B — are expressed as op-dependency graphs on
// top of this core (see sim/pipeline.cpp) instead of bespoke loops, so new
// schedules only need a graph builder, not a new simulator.
//
// Resource semantics:
//   * capacity N > 0 — at most N ops in flight (N lanes); capacity 0 means
//     unlimited (a link with no contention is pure dependency delay).
//   * ExecPolicy::kProgramOrder — ops run strictly in the order they were
//     added to the resource, each starting at max(previous op's end, its
//     dependencies' end). This reproduces a synchronous executor exactly.
//   * ExecPolicy::kReadyOrder — the resource is work-conserving: whenever a
//     lane is free it starts the ready op with the lowest insertion index.
//     This models comm/compute overlap (async p2p): a stage stalled on a
//     late arrival runs the next op whose inputs are already present.
//
// run() is deterministic: events are processed in (time, op id) order.
//
// Scale: the engine is sized for datacenter-scale DP x TP x PP graphs
// (millions of ops per run). run() picks between two executors:
//   * run_relaxed() — when no resource is work-conserving with a finite lane
//     pool, every start time is a pure function of the graph (longest-path
//     relaxation over deps + per-resource serialization), so the DAG is
//     evaluated in O(ops + edges) with no event heap at all. This covers
//     every overlap-off pipeline graph the golden tables run.
//   * run_events() — the general discrete-event core: dependency edges in
//     one CSR adjacency, completion events in an indexed 4-ary heap with
//     O(log n) push/pop, and each completion touches only the resources it
//     dirtied (an explicit worklist), never a linear scan over all
//     resources.
// Both realize identical times (same max/+ arithmetic over the same values).
// The pre-refactor dispatch loop is preserved verbatim as run_reference()
// (sim/engine_reference.cpp) so property tests and bench/engine_bench can
// pin both paths' makespans and measure their speedup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace actcomp::sim {

enum class ExecPolicy { kProgramOrder, kReadyOrder };

struct OpTiming {
  double start_ms = 0.0;
  double end_ms = 0.0;
};

class Engine {
 public:
  /// Adds a resource; `capacity` is the number of concurrent lanes (0 =
  /// unlimited). Returns its id.
  int add_resource(int capacity, ExecPolicy policy = ExecPolicy::kProgramOrder);

  /// Adds an op bound to `resource` with the given duration. Insertion order
  /// per resource defines the program order (kProgramOrder) and the
  /// tie-break priority (kReadyOrder). Returns the op id.
  int add_op(int resource, double duration_ms);

  /// Declares that `op` cannot start before `dep` has finished.
  void add_dep(int op, int dep);

  /// Grows the op/edge arrays up front (optional; purely a performance hint
  /// for graph builders that know their size, e.g. the 3D pipeline).
  void reserve(size_t num_ops, size_t num_deps);

  int num_ops() const { return static_cast<int>(ops_.size()); }
  int num_resources() const { return static_cast<int>(resources_.size()); }
  int num_deps() const { return static_cast<int>(dep_edges_.size()); }

  /// Introspection for accounting and property tests (realized times come
  /// from run()). Throw std::out_of_range on bad ids.
  int op_resource(int op) const { return ops_.at(static_cast<size_t>(op)).resource; }
  double op_duration_ms(int op) const {
    return ops_.at(static_cast<size_t>(op)).duration_ms;
  }
  int resource_capacity(int resource) const {
    return resources_.at(static_cast<size_t>(resource)).capacity;
  }

  /// Executes the DAG to completion and returns per-op realized times.
  /// Throws std::logic_error if the graph cannot make progress (a dependency
  /// cycle, or a kProgramOrder resource whose next op waits on a later one).
  std::vector<OpTiming> run() const;

  /// The pre-refactor dispatch loop, kept verbatim as a reference
  /// implementation (sim/engine_reference.cpp). Test/bench use only: the
  /// randomized-DAG property suite pins run() == run_reference() and
  /// bench/engine_bench reports run()'s events/sec speedup over it.
  std::vector<OpTiming> run_reference() const;

 private:
  /// General discrete-event executor (heap-based); handles every policy.
  std::vector<OpTiming> run_events() const;
  /// Heap-free longest-path relaxation; valid only when no resource is
  /// kReadyOrder with capacity > 0 (run() checks and routes).
  std::vector<OpTiming> run_relaxed() const;

  struct OpNode {
    int resource = 0;
    double duration_ms = 0.0;
  };
  struct ResourceNode {
    int capacity = 0;
    ExecPolicy policy = ExecPolicy::kProgramOrder;
    std::vector<int> ops;  ///< insertion order = program order
  };

  std::vector<OpNode> ops_;
  std::vector<ResourceNode> resources_;
  /// Dependency edges (op, dep) in declaration order; run() builds the CSR
  /// adjacency from this flat list in O(ops + edges) with no per-op
  /// allocations.
  std::vector<std::pair<int, int>> dep_edges_;
};

}  // namespace actcomp::sim
