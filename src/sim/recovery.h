// Crash-recovery simulation: checkpointed training under fail-stop faults.
//
// The pipeline engine (sim/engine.h) prices ONE iteration; this layer models
// the multi-iteration timeline of a long training job whose stages crash
// fail-stop (CrashSpec in sim/hardware.h, carried on FaultProfile::crash):
//
//   run k steps -> write checkpoint (cost C) -> run k steps -> ...
//   ... crash! -> detection delay -> restart cost -> replay every step
//   since the last checkpoint -> continue
//
// simulate_recovery() plays that timeline exactly, event by event, with
// every crash arrival drawn from a seeded exponential stream (same
// hand-rolled 53-bit uniforms as sim/faults.cpp, so the realization is
// identical across standard libraries). It reports wall-clock, per-cause
// overhead, and *goodput* — useful steps per second, the number that tells
// an operator whether their checkpoint interval is paying for itself.
//
// The analytic side is the classic Young/Daly model: for checkpoint cost C
// and job-level MTBF M the optimal interval is tau* = sqrt(2 C M), and the
// first-order expected wall clock for any interval tau is
//
//   W(tau) ~= T (1 + C/tau) (1 + (tau/2 + C/2 + R) / M)
//
// (T = total useful work, R = detection + restart). Monte-Carlo sweeps
// (sweep_checkpoint_interval, bench/ablation_recovery) sit within 15% of
// tau* across the MTBF range — the acceptance bar tests/recovery_test.cpp
// pins.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/hardware.h"

namespace actcomp::sim {

/// One recovery scenario: a job of `total_steps` useful steps, each costing
/// `step_ms` (price it with the pipeline engine / ModelParallelSimulator),
/// checkpointing every `ckpt_interval_steps` at `ckpt_cost_ms` a write,
/// under `crash`. Crashes arrive while the job is up (working, replaying,
/// or checkpointing); detection and restart windows are crash-free (the
/// first-order assumption the analytic model shares).
struct RecoveryConfig {
  double step_ms = 1.0;
  int64_t total_steps = 1000;
  /// Checkpoint after every k completed steps; 0 = never checkpoint (a
  /// crash then replays from step 0).
  int64_t ckpt_interval_steps = 100;
  double ckpt_cost_ms = 0.0;
  CrashSpec crash;
  uint64_t seed = 0;

  /// Throws std::invalid_argument with a precise message on bad knobs.
  void validate() const;
};

enum class RecoverySegmentKind { kWork, kReplay, kCheckpoint, kDetect, kRestart };
const char* recovery_segment_label(RecoverySegmentKind k);

/// One contiguous span of the realized timeline. Work/replay segments carry
/// the step range they executed; crashes are instants (RecoveryResult::
/// crash_times_ms), not segments.
struct RecoverySegment {
  RecoverySegmentKind kind = RecoverySegmentKind::kWork;
  double start_ms = 0.0;
  double end_ms = 0.0;
  int64_t step_begin = 0;  ///< first step executed in this span (work/replay)
  int64_t step_end = 0;    ///< one past the last
};

struct RecoveryResult {
  double wall_ms = 0.0;      ///< total wall clock to finish every useful step
  int crashes = 0;
  double lost_ms = 0.0;      ///< work discarded by rollbacks (incl. partial steps)
  double replay_ms = 0.0;    ///< time re-executing previously-completed steps
  double ckpt_ms = 0.0;      ///< checkpoint-write overhead (incl. torn writes)
  double downtime_ms = 0.0;  ///< detection + restart time
  int64_t useful_steps = 0;

  std::vector<RecoverySegment> segments;  ///< realized timeline, in order
  std::vector<double> crash_times_ms;     ///< crash instants, in order

  /// Useful steps per wall-clock second — the metric the interval sweep
  /// optimizes.
  double goodput_steps_per_sec() const {
    return wall_ms > 0.0 ? useful_steps / wall_ms * 1e3 : 0.0;
  }
};

/// Deterministic in (config, seed): same inputs, bit-identical result
/// (including the segment timeline).
RecoveryResult simulate_recovery(const RecoveryConfig& cfg);

/// Young/Daly optimal checkpoint interval sqrt(2 C M) in ms of useful work
/// between checkpoints. Requires C > 0 and M > 0.
double young_daly_interval_ms(double ckpt_cost_ms, double effective_mtbf_ms);

/// First-order expected wall clock / goodput at interval tau (formula
/// above). With crashes disabled this is exact: T + C * floor((steps-1)/k).
double analytic_wall_ms(const RecoveryConfig& cfg, double interval_ms);
double analytic_goodput(const RecoveryConfig& cfg, double interval_ms);

/// Monte-Carlo sweep of the checkpoint interval: geometric grid of
/// `grid_points` intervals spanning [tau*/span, tau* x span] around the
/// Young/Daly optimum, `trials` seeded replays each (seed = base.seed + t,
/// the same seeds for every interval — common random numbers keep the
/// argmin stable). Returns per-interval mean wall/goodput plus the
/// simulated-vs-analytic optimum comparison.
struct IntervalSweepPoint {
  int64_t interval_steps = 0;
  double interval_ms = 0.0;
  double mean_wall_ms = 0.0;
  double mean_goodput = 0.0;
  double mean_crashes = 0.0;
  double analytic_wall = 0.0;
};
struct IntervalSweepResult {
  std::vector<IntervalSweepPoint> points;
  double young_daly_ms = 0.0;
  /// Simulated optimal interval: the vertex of a quadratic (in log tau) fit
  /// to the window of grid points around the raw argmin — the curve is
  /// nearly flat at the minimum, so the fit is what tames residual
  /// Monte-Carlo noise. Falls back to the raw argmin if the fit degenerates.
  double best_interval_ms = 0.0;
  int64_t best_interval_steps = 0;
  /// best_interval_ms / young_daly_ms — 1 (signed relative deviation).
  double deviation() const {
    return young_daly_ms > 0.0 ? best_interval_ms / young_daly_ms - 1.0 : 0.0;
  }
};
IntervalSweepResult sweep_checkpoint_interval(const RecoveryConfig& base,
                                              int trials, double span = 4.0,
                                              int grid_points = 25);

/// Chrome tracing JSON of a realized timeline: one row of work / replay /
/// checkpoint / detect / restart slices plus an instant event per crash.
/// Loads in Perfetto alongside write_chrome_trace / the profiler bridge.
void write_recovery_trace(std::ostream& os, const RecoveryResult& r);

}  // namespace actcomp::sim
