// Per-algorithm message encode/decode cost models.
//
// The paper's central negative result is that most compressors lose to their
// own encoding overhead (Takeaways 1, 3). This model reproduces those
// overheads as functions of element count, calibrated against the paper's
// measured breakdown (Table 4: fine-tuning, TP=2/PP=2, b=32, s=512, h=1024,
// last 12 layers compressed — i.e. 24 compressed tensors of 16.8M elements
// per iteration):
//
//   algorithm   model                                     fit anchor (Table 4)
//   ---------   ---------------------------------------   --------------------
//   AE enc      GEMM 2·numel·c FLOPs at mfu 0.20          A1 enc 2.16 ms
//   AE dec      GEMM 2·numel·c FLOPs at mfu 0.15          A1 dec 3.12 ms
//   Top-K enc   0.17 ns/elem scan + 0.15 ns/kept          T1 70.08, T4 74.88 ms
//   Top-K dec   0.015 ns/elem zero-fill + 1.2 ns/kept     T1 13.68, T4 45.36 ms
//   Rand-K enc  0.048 ns · k^1.7 per tensor (host-side    R1 2 040 ms, R3
//               random.sample, the paper's pathology)     11 499 ms, R4 44 039 ms
//   Rand-K dec  as Top-K dec                              R1 15.84 ms
//   quant enc   0.05 ns/elem (minmax + pack passes)       Q1 20.64 ms
//   quant dec   0.08 ns/elem (unpack + affine)            Q1 32.16 ms
//
// The Random-K exponent 1.7 is a power-law fit to the paper's four R rows;
// it reflects Python's random.sample slowing super-linearly at large k, not
// anything fundamental — set `device_side_randomk` to model a proper
// device-side sampler instead (the ablation in bench/ablation_overhead_model
// shows this flips Random-K's sign).
#pragma once

#include <cstdint>

#include "compress/settings.h"
#include "sim/hardware.h"

namespace actcomp::sim {

struct OverheadModel {
  GpuSpec gpu;
  bool device_side_randomk = false;
  /// Fixed wall-clock cost per compressed communication point (framework
  /// dispatch, extra kernel launches, collective re-setup). The paper's
  /// enc/dec timer columns do NOT include it — Table 4 reports A1 enc+dec
  /// at ~5.3 ms total, yet Tables 12/14 show AE LOSING ~7 ms at b=8/s=128,
  /// which only a fixed per-point cost outside those timers explains.
  double dispatch_ms = 0.25;

  /// Time to encode one activation tensor of `numel` elements (feature size
  /// `hidden`) under `setting`, in ms. Baseline costs nothing.
  double encode_ms(compress::Setting setting, int64_t numel, int64_t hidden) const;

  /// Time to decode `copies` gathered messages back into a `numel`-element
  /// tensor (copies > 1 models the all-gather fallback, where every TP rank
  /// decodes and reduces all peers' messages).
  double decode_ms(compress::Setting setting, int64_t numel, int64_t hidden,
                   int copies = 1) const;

  /// Extra backward time a compression point adds (AE codec weight/input
  /// gradients; ~0 for straight-through algorithms).
  double backward_extra_ms(compress::Setting setting, int64_t numel,
                           int64_t hidden) const;

  /// Kept elements for sparsification settings at this tensor size.
  static int64_t kept_elements(compress::Setting setting, int64_t numel);
};

}  // namespace actcomp::sim
