// Fault-tolerant multi-replica serving on top of sim/serving + sim/faults.
//
// simulate_serving (sim/serving.h) models ONE fault-free replica. This layer
// models the fleet around it — the part of a production serving stack that
// decides where a request runs and what happens when that goes wrong:
//
//   * replica pool — N copies of the same model, each priced by the shared
//     cost ladder and each with its own seeded ReplicaFaultSpec (fail-stop
//     crash/repair cycles that kill in-flight work, and brown-out windows
//     that multiply step durations);
//   * router — pluggable policies: blind round-robin, join-shortest-queue
//     over live copies, and health-aware JSQ that also ejects replicas for
//     eject_ms after a request times out on them;
//   * retries and hedging — a request whose copy dies (crash) or times out
//     is re-dispatched up to max_attempts times with exponential backoff;
//     optionally a hedge copy is dispatched to a DIFFERENT replica once the
//     first copy has been outstanding hedge_after_ms, first-wins, the loser
//     is cancelled (its generated tokens are accounted as waste, not
//     goodput);
//   * admission control — fleet-wide token backpressure (shed on arrival when
//     reserved + queued KV tokens would exceed max_queued_tokens) and
//     predicted-wait shedding at the routed replica; shed requests are
//     reported separately and never pollute the latency percentiles;
//   * SLO-aware degradation — a serving-side generalization of
//     train/resilience's hysteresis controller: measured e2e p99 over a
//     sliding window breaching the SLO escalates the fleet one rung down the
//     compression cost ladder (w/o -> Q8 -> Q2/T3, built by
//     parallel::make_serving_cost_ladder); sustained recovery de-escalates.
//     This operationalizes the paper's thesis — compression buys little on a
//     healthy fleet but recovers the SLO on a degraded one.
//
// Determinism: the scheduler is a single-threaded discrete-event loop whose
// only randomness is the per-replica ReplicaFaultProcess streams (seeded,
// raw-draw uniforms), so same trace + config => byte-identical report, on any
// machine, at any thread-pool width. With one replica and every knob off, the
// event loop degenerates to exactly simulate_serving's admission/decode
// schedule and the embedded ServingReport is field-for-field identical —
// tests/serving_resilience_test.cpp pins both claims, and transitively the
// PR 7 serving goldens.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/faults.h"
#include "sim/serving.h"

namespace actcomp::sim {

/// How the router picks a replica for a fresh (or retried/hedged) copy.
enum class RoutePolicy {
  kRoundRobin,        ///< blind cyclic assignment, even to down replicas
  kJoinShortestQueue, ///< fewest live copies among UP replicas
  kHealthAware,       ///< JSQ over up && not-ejected; timeouts eject
};
const char* route_policy_label(RoutePolicy p);

/// Retry / hedging policy, applied per request. Defaults = one attempt,
/// never time out, never hedge — i.e. exactly the single-dispatch semantics
/// of the clean path.
struct RetryPolicy {
  int max_attempts = 1;       ///< total primary dispatches (>= 1)
  double backoff_ms = 0.0;    ///< delay before retry a is backoff * 2^(a-1)
  double timeout_ms = 0.0;    ///< abandon a copy outstanding this long; 0 = never
  double hedge_after_ms = 0.0; ///< duplicate to another replica; 0 = never

  bool enabled() const {
    return max_attempts > 1 || timeout_ms > 0.0 || hedge_after_ms > 0.0;
  }
};

/// Load shedding at arrival time. Retried/hedged copies are exempt — once
/// admitted, a request is owed a best effort. Defaults = admit everything.
struct AdmissionPolicy {
  /// Shed when fleet-wide held + queued KV tokens would exceed this. 0 = off.
  int64_t max_queued_tokens = 0;
  /// Shed when the routed replica's predicted wait (remaining step + queue
  /// length x EWMA step time + remaining downtime) exceeds this. 0 = off.
  double shed_wait_over_ms = 0.0;

  bool enabled() const {
    return max_queued_tokens > 0 || shed_wait_over_ms > 0.0;
  }
};

/// Hysteresis spec for the SLO degradation controller (the serving twin of
/// train::DegradeSpec): p99 over each `window` completions is compared to the
/// SLO; `hold_windows` consecutive breaches escalate one ladder rung,
/// `hold_windows` consecutive windows below recover_fraction x SLO
/// de-escalate one. The dead band between the two thresholds is what makes
/// oscillation on a constant load impossible.
struct ServingDegradeSpec {
  bool enabled = false;
  int window = 32;              ///< completions per p99 measurement
  int hold_windows = 2;         ///< consecutive windows before a transition
  double recover_fraction = 0.7; ///< de-escalate below this fraction of SLO
};

/// Standalone, unit-testable controller. Feed it every completed request's
/// e2e latency in completion order; read back the active ladder level.
class SloDegradationController {
 public:
  /// Throws std::invalid_argument on window/hold_windows < 1,
  /// recover_fraction outside (0, 1), slo_p99_ms <= 0, or num_levels < 1.
  SloDegradationController(const ServingDegradeSpec& spec, double slo_p99_ms,
                           int num_levels);

  /// Records one completion; returns the (possibly changed) active level.
  int observe_e2e(double e2e_ms);

  int level() const { return level_; }
  int max_level_seen() const { return max_seen_; }
  int escalations() const { return escalations_; }
  int deescalations() const { return deescalations_; }
  /// p99 of the most recently completed window (0 before the first window).
  double last_window_p99() const { return last_p99_; }

 private:
  ServingDegradeSpec spec_;
  double slo_ms_;
  int num_levels_;
  int level_ = 0, max_seen_ = 0;
  int escalations_ = 0, deescalations_ = 0;
  int over_run_ = 0, under_run_ = 0;
  double last_p99_ = 0.0;
  std::vector<double> buf_;
};

struct ResilientServingConfig {
  int num_replicas = 1;
  RoutePolicy policy = RoutePolicy::kRoundRobin;
  int64_t max_batch = 16;      ///< per replica, as ServingConfig
  int64_t token_budget = 4096; ///< per replica KV budget
  /// Compression cost ladder, cheapest-quality last. Rung 0 prices the clean
  /// path; the degradation controller walks down the ladder under SLO
  /// pressure. parallel::make_serving_cost_ladder builds the canonical
  /// w/o -> Q8 -> Q2 -> T3 ladder from a calibrated simulator.
  std::vector<StepCostFn> cost_ladder;
  /// Per-replica fault scenarios: empty (all healthy) or size num_replicas.
  std::vector<ReplicaFaultSpec> replica_faults;
  RetryPolicy retry;
  AdmissionPolicy admission;
  /// End-to-end p99 SLO in ms; required (> 0) when degrade.enabled, also
  /// used by the report's slo_met flag. 0 = no SLO.
  double slo_e2e_p99_ms = 0.0;
  ServingDegradeSpec degrade;
  /// Health-aware ejection window after a timeout on a replica. 0 = off.
  double eject_ms = 0.0;

  /// The single-replica ServingConfig this fleet degenerates to (rung 0).
  ServingConfig base_config() const {
    return {max_batch, token_budget,
            cost_ladder.empty() ? StepCostFn{} : cost_ladder.front()};
  }
};

enum class RequestOutcome {
  kCompleted, ///< some copy finished; timing recorded
  kShed,      ///< rejected at admission, never dispatched
  kFailed,    ///< every attempt died (crash/timeout), retries exhausted
};
const char* request_outcome_label(RequestOutcome o);

struct ReplicaStats {
  int64_t completed = 0;  ///< requests whose winning copy ran here
  int64_t steps = 0;
  double busy_ms = 0.0;
  int64_t crashes = 0;
  double down_ms = 0.0;   ///< total repair time scheduled
  int64_t timeouts = 0;   ///< copies abandoned while on this replica
};

struct ResilientServingReport {
  /// Aggregates over COMPLETED requests only (shed/failed requests keep
  /// zeroed timings in serving.requests and are excluded from percentiles,
  /// throughput and concurrency). Steps from every replica, sorted by start
  /// time; StepTiming::replica says who ran each.
  ServingReport serving;
  std::vector<RequestOutcome> outcomes;  ///< input order, one per request

  int64_t offered = 0;       ///< total requests in the trace
  int64_t shed = 0;
  int64_t failed = 0;
  int64_t dispatches = 0;    ///< copies dispatched (primary + retry + hedge)
  int64_t retries = 0;
  int64_t hedges = 0;
  int64_t hedge_wins = 0;    ///< requests won by the hedge copy
  int64_t timeouts = 0;
  int64_t crashes = 0;
  int64_t killed_copies = 0; ///< copies killed by replica crashes
  /// Tokens generated by copies that did not win (cancelled, killed, timed
  /// out) — real work the fleet did that never reached a user.
  int64_t wasted_tokens = 0;

  int escalations = 0;
  int deescalations = 0;
  int final_level = 0;
  int max_level_seen = 0;

  std::vector<ReplicaStats> replicas;

  /// Completed tokens per second of makespan — the goodput the SLO buys.
  double goodput_tok_s() const { return serving.throughput_tok_s(); }
  double shed_rate() const {
    return offered > 0 ? static_cast<double>(shed) / static_cast<double>(offered)
                       : 0.0;
  }
  bool slo_met(double slo_p99_ms) const {
    return slo_p99_ms <= 0.0 || serving.e2e.p99_ms <= slo_p99_ms;
  }
};

/// Throws std::invalid_argument with a precise message on: num_replicas < 1,
/// an empty or unset cost ladder rung, replica_faults of the wrong size or
/// with invalid specs, retry.max_attempts outside [1, 16], non-finite or
/// negative retry/admission/SLO/eject knobs, hedging with a single replica,
/// degradation without a positive SLO or with a single-rung ladder, a bad
/// degrade window, plus everything validate_serving_inputs checks against
/// the per-replica base config.
void validate_resilient_serving_inputs(
    const std::vector<ServingRequest>& requests,
    const ResilientServingConfig& cfg);

/// Runs the trace to completion (every request resolves as completed, shed
/// or failed — the loop always terminates). Deterministic: same trace +
/// config => byte-identical report.
ResilientServingReport simulate_serving_resilient(
    const std::vector<ServingRequest>& requests,
    const ResilientServingConfig& cfg);

}  // namespace actcomp::sim
