#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "tensor/check.h"

namespace actcomp::sim {

int Engine::add_resource(int capacity, ExecPolicy policy) {
  ACTCOMP_CHECK(capacity >= 0, "resource capacity must be >= 0 (0 = unlimited)");
  resources_.push_back({capacity, policy, {}});
  return static_cast<int>(resources_.size()) - 1;
}

int Engine::add_op(int resource, double duration_ms) {
  ACTCOMP_CHECK(resource >= 0 && resource < num_resources(),
                "op bound to unknown resource " << resource);
  ACTCOMP_CHECK(std::isfinite(duration_ms) && duration_ms >= 0.0,
                "op duration must be finite and non-negative, got "
                    << duration_ms);
  const int id = num_ops();
  ops_.push_back({resource, duration_ms});
  resources_[static_cast<size_t>(resource)].ops.push_back(id);
  return id;
}

void Engine::add_dep(int op, int dep) {
  ACTCOMP_CHECK(op >= 0 && op < num_ops() && dep >= 0 && dep < num_ops(),
                "add_dep(" << op << ", " << dep << ") out of range");
  ACTCOMP_CHECK(op != dep, "op " << op << " cannot depend on itself");
  dep_edges_.emplace_back(op, dep);
}

void Engine::reserve(size_t num_ops, size_t num_deps) {
  ops_.reserve(num_ops);
  dep_edges_.reserve(num_deps);
}

namespace {

/// Completion event: processed in (time, op id) order — the heap's strict
/// weak ordering, which (ids being unique) is total, so the pop sequence is
/// the same for any push order and the engine stays deterministic.
struct Event {
  double time_ms;
  int op;
};

inline bool event_less(const Event& a, const Event& b) {
  if (a.time_ms != b.time_ms) return a.time_ms < b.time_ms;
  return a.op < b.op;
}

/// Indexed 4-ary min-heap over a preallocated flat array. 4-ary rather than
/// binary: half the tree depth per pop and child groups share a cache line,
/// which is what the 1M-event graphs in bench/engine_bench are sensitive to.
class EventHeap {
 public:
  explicit EventHeap(size_t capacity) { heap_.reserve(capacity); }

  bool empty() const { return heap_.empty(); }
  const Event& top() const { return heap_.front(); }

  void push(Event e) {
    size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const size_t parent = (i - 1) / 4;
      if (!event_less(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void pop() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    const size_t n = heap_.size();
    size_t i = 0;
    while (true) {
      const size_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      const size_t last_child = first_child + 4 < n ? first_child + 4 : n;
      size_t best = first_child;
      for (size_t c = first_child + 1; c < last_child; ++c) {
        if (event_less(heap_[c], heap_[best])) best = c;
      }
      if (!event_less(heap_[best], heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

 private:
  std::vector<Event> heap_;
};

/// Per-resource binary min-heap of ready op ids (kReadyOrder with a finite
/// lane pool), intrusively stored: each resource owns a slice of ids managed
/// as an implicit heap in its own vector, preallocated on first use.
inline void ready_push(std::vector<int>& h, int id) {
  size_t i = h.size();
  h.push_back(id);
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (h[parent] <= h[i]) break;
    std::swap(h[i], h[parent]);
    i = parent;
  }
}

inline int ready_pop(std::vector<int>& h) {
  const int top = h.front();
  h.front() = h.back();
  h.pop_back();
  const size_t n = h.size();
  size_t i = 0;
  while (true) {
    const size_t l = 2 * i + 1;
    if (l >= n) break;
    const size_t r = l + 1;
    const size_t best = (r < n && h[r] < h[l]) ? r : l;
    if (h[i] <= h[best]) break;
    std::swap(h[i], h[best]);
    i = best;
  }
  return top;
}

}  // namespace

std::vector<OpTiming> Engine::run() const {
  // Work-conserving resources with a finite lane pool (kReadyOrder,
  // capacity > 0) pick which op runs next based on what is ready *now*, so
  // they need globally time-ordered event processing. Everything else —
  // program-order resources of any capacity and uncontended (capacity-0)
  // links — realizes start times that are a pure function of the graph:
  // start = max(deps' ends, resource serialization constraint). For those
  // graphs run() uses an O(ops + edges) longest-path relaxation with no
  // event heap at all (run_relaxed()); the computed times are bit-identical
  // because both paths evaluate the same max/+ arithmetic over the same
  // values (tests/engine_test.cpp pins this against run_reference()).
  bool needs_events = false;
  for (const ResourceNode& r : resources_) {
    if (r.policy == ExecPolicy::kReadyOrder && r.capacity > 0) {
      needs_events = true;
      break;
    }
  }
  return needs_events ? run_events() : run_relaxed();
}

std::vector<OpTiming> Engine::run_events() const {
  const size_t n = ops_.size();
  const size_t e = dep_edges_.size();
  std::vector<OpTiming> times(n);

  // CSR adjacency dep -> dependents, built by counting sort: O(n + e), three
  // flat arrays, no per-op allocations.
  std::vector<int> deps_left(n, 0);
  std::vector<int> dep_off(n + 1, 0);
  for (const auto& [op, dep] : dep_edges_) {
    ++deps_left[static_cast<size_t>(op)];
    ++dep_off[static_cast<size_t>(dep) + 1];
  }
  for (size_t i = 0; i < n; ++i) dep_off[i + 1] += dep_off[i];
  std::vector<int> dep_adj(e);
  {
    std::vector<int> cursor(dep_off.begin(), dep_off.end() - 1);
    for (const auto& [op, dep] : dep_edges_) {
      dep_adj[static_cast<size_t>(cursor[static_cast<size_t>(dep)]++)] = op;
    }
  }

  // Flat per-resource state. Ready heaps exist only for finite-capacity
  // kReadyOrder resources; capacity-0 ones start ready ops immediately (all
  // starts at one timestamp realize the same times, and the event heap's
  // (time, id) order makes the processing sequence independent of push
  // order, so this is exactly the reference semantics without the queue
  // round-trip).
  const size_t nr = resources_.size();
  std::vector<size_t> next(nr, 0);  ///< program-order cursor (kProgramOrder)
  std::vector<int> busy(nr, 0);     ///< ops in flight
  std::vector<std::vector<int>> ready_heap(nr);
  std::vector<char> is_ready(n, 0);

  EventHeap events(n);
  size_t finished = 0;
  double now = 0.0;

  auto start_op = [&](int id) {
    const OpNode& op = ops_[static_cast<size_t>(id)];
    times[static_cast<size_t>(id)] = {now, now + op.duration_ms};
    ++busy[static_cast<size_t>(op.resource)];
    events.push({now + op.duration_ms, id});
  };

  auto dispatch = [&](int res) {
    const ResourceNode& r = resources_[static_cast<size_t>(res)];
    if (r.policy == ExecPolicy::kProgramOrder) {
      size_t& cur = next[static_cast<size_t>(res)];
      while (cur < r.ops.size() &&
             is_ready[static_cast<size_t>(r.ops[cur])] &&
             (r.capacity == 0 || busy[static_cast<size_t>(res)] < r.capacity)) {
        start_op(r.ops[cur]);
        ++cur;
      }
    } else {
      std::vector<int>& heap = ready_heap[static_cast<size_t>(res)];
      while (!heap.empty() && busy[static_cast<size_t>(res)] < r.capacity) {
        start_op(ready_pop(heap));
      }
    }
  };

  // Dirty-resource worklist: a completion dirties the freed resource plus
  // every resource that gained a ready op; each is dispatched once per event
  // instead of once per dependent (dispatch is idempotent between state
  // changes, so deduplication cannot alter any start time).
  std::vector<int> dirty;
  dirty.reserve(nr);
  std::vector<char> is_dirty(nr, 0);
  auto mark_dirty = [&](int res) {
    if (!is_dirty[static_cast<size_t>(res)]) {
      is_dirty[static_cast<size_t>(res)] = 1;
      dirty.push_back(res);
    }
  };

  auto mark_ready = [&](int id) {
    is_ready[static_cast<size_t>(id)] = 1;
    const int res = ops_[static_cast<size_t>(id)].resource;
    const ResourceNode& r = resources_[static_cast<size_t>(res)];
    if (r.policy == ExecPolicy::kReadyOrder) {
      if (r.capacity == 0) {
        start_op(id);  // unlimited lanes: no queueing, start at `now`
        return;
      }
      std::vector<int>& heap = ready_heap[static_cast<size_t>(res)];
      if (heap.empty()) heap.reserve(r.ops.size());
      ready_push(heap, id);
    }
    mark_dirty(res);
  };

  for (size_t i = 0; i < n; ++i) {
    if (deps_left[i] == 0) mark_ready(static_cast<int>(i));
  }
  for (int r = 0; r < static_cast<int>(nr); ++r) mark_dirty(r);
  for (int r : dirty) {
    is_dirty[static_cast<size_t>(r)] = 0;
    dispatch(r);
  }
  dirty.clear();

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    now = ev.time_ms;
    const int id = ev.op;
    ++finished;
    const int freed = ops_[static_cast<size_t>(id)].resource;
    --busy[static_cast<size_t>(freed)];
    mark_dirty(freed);
    for (int k = dep_off[static_cast<size_t>(id)];
         k < dep_off[static_cast<size_t>(id) + 1]; ++k) {
      const int d = dep_adj[static_cast<size_t>(k)];
      if (--deps_left[static_cast<size_t>(d)] == 0) mark_ready(d);
    }
    for (size_t w = 0; w < dirty.size(); ++w) {
      const int res = dirty[w];
      is_dirty[static_cast<size_t>(res)] = 0;
      dispatch(res);
    }
    dirty.clear();
  }

  ACTCOMP_ASSERT(finished == n, "engine deadlocked with " << n - finished
                                                          << " ops unreachable");
  return times;
}

namespace {

/// Min-heap of the `cap` largest completion times on a kProgramOrder
/// resource with capacity > 1: its top is the time the oldest of the `cap`
/// most recent lanes frees, i.e. the lane constraint for the next op.
inline void lane_push(std::vector<double>& h, double end_ms, int cap) {
  if (static_cast<int>(h.size()) < cap) {
    h.push_back(end_ms);
    std::push_heap(h.begin(), h.end(), std::greater<double>());
  } else if (end_ms > h.front()) {
    std::pop_heap(h.begin(), h.end(), std::greater<double>());
    h.back() = end_ms;
    std::push_heap(h.begin(), h.end(), std::greater<double>());
  }
}

}  // namespace

std::vector<OpTiming> Engine::run_relaxed() const {
  // Longest-path relaxation. With no finite-capacity kReadyOrder resource in
  // the graph there is no dynamic "which ready op grabs the free lane"
  // choice, so each start time is a closed-form max:
  //   * any op:                    >= max over deps of the dep's end;
  //   * kProgramOrder, capacity 0: >= previous op's start (starts are issued
  //     in program order);
  //   * kProgramOrder, capacity 1: >= previous op's end (ends are monotone
  //     on a single lane, so this subsumes the start constraint);
  //   * kProgramOrder, capacity N: >= previous op's start and >= the N-th
  //     largest end among earlier ops on the resource (the time the in-
  //     flight count drops below N once all earlier ops have started);
  //   * kReadyOrder, capacity 0:   no resource constraint (pure delay).
  // Every bound is a max of values the event executor also realizes (ends,
  // starts, 0), and end = start + duration, so the times are bit-identical
  // to run_events()/run_reference() — without any heap: O(ops + edges)
  // total, processed from an unordered worklist (the result is a pure
  // function of the graph, so processing order is irrelevant).
  const size_t n = ops_.size();
  const size_t e = dep_edges_.size();
  std::vector<OpTiming> times(n);

  /// Fused per-op pending state: the dependents loop is the hot path (one
  /// scattered access per edge), so the remaining-deps counter and the
  /// running max of finished deps' ends share a cache line. ready_ms is
  /// final once left hits 0, so no op->deps adjacency is needed.
  struct Pending {
    double ready_ms = 0.0;
    int left = 0;
  };
  std::vector<Pending> pend(n);
  std::vector<int> dep_off(n + 1, 0);
  for (const auto& [op, dep] : dep_edges_) {
    ++pend[static_cast<size_t>(op)].left;
    ++dep_off[static_cast<size_t>(dep) + 1];
  }
  for (size_t i = 0; i < n; ++i) dep_off[i + 1] += dep_off[i];
  std::vector<int> dep_adj(e);
  // Scatter through dep_off itself (each slot ends one past its row), then
  // shift the offsets back down — saves the usual cursor-array copy.
  for (const auto& [op, dep] : dep_edges_) {
    dep_adj[static_cast<size_t>(dep_off[static_cast<size_t>(dep)]++)] = op;
  }
  for (size_t i = n; i > 0; --i) dep_off[i] = dep_off[i - 1];
  dep_off[0] = 0;

  const size_t nr = resources_.size();
  std::vector<size_t> cursor(nr, 0);        ///< program-order position
  std::vector<double> last_start(nr, 0.0);  ///< kProgramOrder cap != 1
  std::vector<double> last_end(nr, 0.0);    ///< kProgramOrder cap == 1
  std::vector<std::vector<double>> lanes(nr);  ///< kProgramOrder cap > 1

  std::vector<int> work;
  work.reserve(n);
  // An op enters the worklist when its deps are done AND (for kProgramOrder)
  // every earlier op on its resource has been processed — each op is pushed
  // exactly once, by whichever of the two conditions becomes true last.
  // Seed by resource: a program-order resource can only offer its first op,
  // a ready-order (capacity-0) one offers every zero-dep op it owns.
  for (const ResourceNode& r : resources_) {
    if (r.policy == ExecPolicy::kProgramOrder) {
      if (!r.ops.empty() && pend[static_cast<size_t>(r.ops[0])].left == 0) {
        work.push_back(r.ops[0]);
      }
    } else {
      for (int id : r.ops) {
        if (pend[static_cast<size_t>(id)].left == 0) work.push_back(id);
      }
    }
  }

  size_t finished = 0;
  while (!work.empty()) {
    int id = work.back();
    work.pop_back();
    // Inner loop: when the op just processed unblocks its program-order
    // successor, chain to it directly — long same-resource runs (a stage's
    // micro-batch train) execute with the resource state hot instead of
    // round-tripping through the worklist.
    for (;;) {
      const OpNode& op = ops_[static_cast<size_t>(id)];
      const size_t res = static_cast<size_t>(op.resource);
      const ResourceNode& r = resources_[res];

      double start = pend[static_cast<size_t>(id)].ready_ms;
      int chained = -1;
      const double dur = op.duration_ms;
      if (r.policy == ExecPolicy::kProgramOrder) {
        if (r.capacity == 1) {
          if (last_end[res] > start) start = last_end[res];
          last_end[res] = start + dur;
        } else {
          if (last_start[res] > start) start = last_start[res];
          if (r.capacity > 1) {
            const std::vector<double>& h = lanes[res];
            if (static_cast<int>(h.size()) == r.capacity && h.front() > start) {
              start = h.front();
            }
            lane_push(lanes[res], start + dur, r.capacity);
          }
          last_start[res] = start;
        }
        size_t& cur = cursor[res];
        ++cur;
        if (cur < r.ops.size()) {
          const int nxt = r.ops[cur];
          if (pend[static_cast<size_t>(nxt)].left == 0) chained = nxt;
        }
      }
      const double end = start + dur;
      times[static_cast<size_t>(id)] = {start, end};
      ++finished;

      for (int k = dep_off[static_cast<size_t>(id)];
           k < dep_off[static_cast<size_t>(id) + 1]; ++k) {
        const int d = dep_adj[static_cast<size_t>(k)];
        Pending& pd = pend[static_cast<size_t>(d)];
        if (end > pd.ready_ms) pd.ready_ms = end;
        if (--pd.left == 0) {
          const size_t dres =
              static_cast<size_t>(ops_[static_cast<size_t>(d)].resource);
          const ResourceNode& rd = resources_[dres];
          if (rd.policy == ExecPolicy::kReadyOrder ||
              rd.ops[cursor[dres]] == d) {
            work.push_back(d);
          }
        }
      }

      if (chained < 0) break;
      id = chained;
    }
  }

  ACTCOMP_ASSERT(finished == n, "engine deadlocked with " << n - finished
                                                          << " ops unreachable");
  return times;
}

}  // namespace actcomp::sim
