#include "sim/engine.h"

#include <cmath>
#include <functional>
#include <queue>

#include "tensor/check.h"

namespace actcomp::sim {

int Engine::add_resource(int capacity, ExecPolicy policy) {
  ACTCOMP_CHECK(capacity >= 0, "resource capacity must be >= 0 (0 = unlimited)");
  resources_.push_back({capacity, policy, {}});
  return static_cast<int>(resources_.size()) - 1;
}

int Engine::add_op(int resource, double duration_ms) {
  ACTCOMP_CHECK(resource >= 0 && resource < num_resources(),
                "op bound to unknown resource " << resource);
  ACTCOMP_CHECK(std::isfinite(duration_ms) && duration_ms >= 0.0,
                "op duration must be finite and non-negative, got "
                    << duration_ms);
  const int id = num_ops();
  ops_.push_back({resource, duration_ms, {}});
  resources_[static_cast<size_t>(resource)].ops.push_back(id);
  return id;
}

void Engine::add_dep(int op, int dep) {
  ACTCOMP_CHECK(op >= 0 && op < num_ops() && dep >= 0 && dep < num_ops(),
                "add_dep(" << op << ", " << dep << ") out of range");
  ACTCOMP_CHECK(op != dep, "op " << op << " cannot depend on itself");
  ops_[static_cast<size_t>(op)].deps.push_back(dep);
}

std::vector<OpTiming> Engine::run() const {
  const size_t n = ops_.size();
  std::vector<OpTiming> times(n);
  std::vector<int> deps_left(n, 0);
  std::vector<std::vector<int>> dependents(n);
  for (size_t i = 0; i < n; ++i) {
    deps_left[i] = static_cast<int>(ops_[i].deps.size());
    for (int d : ops_[i].deps) dependents[static_cast<size_t>(d)].push_back(static_cast<int>(i));
  }

  struct ResourceState {
    size_t next = 0;  ///< program-order cursor (kProgramOrder)
    int busy = 0;     ///< ops in flight
    std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
  };
  std::vector<ResourceState> state(resources_.size());
  std::vector<char> is_ready(n, 0);

  // Completion events, processed in (time, op id) order for determinism.
  using Event = std::pair<double, int>;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  size_t finished = 0;

  auto start_op = [&](int id, double now) {
    const OpNode& op = ops_[static_cast<size_t>(id)];
    times[static_cast<size_t>(id)] = {now, now + op.duration_ms};
    ++state[static_cast<size_t>(op.resource)].busy;
    events.push({now + op.duration_ms, id});
  };

  auto dispatch = [&](int res, double now) {
    const ResourceNode& r = resources_[static_cast<size_t>(res)];
    ResourceState& s = state[static_cast<size_t>(res)];
    if (r.policy == ExecPolicy::kProgramOrder) {
      while (s.next < r.ops.size() &&
             is_ready[static_cast<size_t>(r.ops[s.next])] &&
             (r.capacity == 0 || s.busy < r.capacity)) {
        start_op(r.ops[s.next], now);
        ++s.next;
      }
    } else {
      while (!s.ready.empty() && (r.capacity == 0 || s.busy < r.capacity)) {
        const int id = s.ready.top();
        s.ready.pop();
        start_op(id, now);
      }
    }
  };

  auto mark_ready = [&](int id) {
    is_ready[static_cast<size_t>(id)] = 1;
    const int res = ops_[static_cast<size_t>(id)].resource;
    if (resources_[static_cast<size_t>(res)].policy == ExecPolicy::kReadyOrder) {
      state[static_cast<size_t>(res)].ready.push(id);
    }
  };

  for (size_t i = 0; i < n; ++i) {
    if (deps_left[i] == 0) mark_ready(static_cast<int>(i));
  }
  for (int r = 0; r < num_resources(); ++r) dispatch(r, 0.0);

  while (!events.empty()) {
    const auto [now, id] = events.top();
    events.pop();
    ++finished;
    --state[static_cast<size_t>(ops_[static_cast<size_t>(id)].resource)].busy;
    for (int d : dependents[static_cast<size_t>(id)]) {
      if (--deps_left[static_cast<size_t>(d)] == 0) mark_ready(d);
    }
    // Re-dispatch the freed resource and every resource that gained a ready
    // op (dispatch is idempotent, so duplicates are harmless).
    dispatch(ops_[static_cast<size_t>(id)].resource, now);
    for (int d : dependents[static_cast<size_t>(id)]) {
      dispatch(ops_[static_cast<size_t>(d)].resource, now);
    }
  }

  ACTCOMP_ASSERT(finished == n, "engine deadlocked with " << n - finished
                                                          << " ops unreachable");
  return times;
}

}  // namespace actcomp::sim
