#include "sim/collectives.h"

#include <vector>

#include "sim/engine.h"
#include "tensor/check.h"

namespace actcomp::sim {

double allreduce_ms(int64_t bytes, int ranks, const LinkSpec& link) {
  ACTCOMP_CHECK(ranks >= 1 && bytes >= 0, "bad allreduce args");
  if (ranks == 1 || bytes == 0) return 0.0;
  const double n = static_cast<double>(ranks);
  const double volume_ms =
      2.0 * (n - 1.0) / n * static_cast<double>(bytes) / (link.bandwidth_gb_s * 1e9) * 1e3;
  const double latency_ms = 2.0 * (n - 1.0) * link.latency_us * 1e-3;
  return volume_ms + latency_ms;
}

double allgather_ms(int64_t bytes_per_rank, int ranks, const LinkSpec& link) {
  ACTCOMP_CHECK(ranks >= 1 && bytes_per_rank >= 0, "bad allgather args");
  if (ranks == 1 || bytes_per_rank == 0) return 0.0;
  const double n = static_cast<double>(ranks);
  const double volume_ms = (n - 1.0) * static_cast<double>(bytes_per_rank) /
                           (link.bandwidth_gb_s * 1e9) * 1e3;
  const double latency_ms = (n - 1.0) * link.latency_us * 1e-3;
  return volume_ms + latency_ms;
}

double reduce_scatter_ms(int64_t bytes, int ranks, const LinkSpec& link) {
  ACTCOMP_CHECK(ranks >= 1 && bytes >= 0, "bad reduce_scatter args");
  if (ranks == 1 || bytes == 0) return 0.0;
  const double n = static_cast<double>(ranks);
  const double volume_ms = (n - 1.0) / n * static_cast<double>(bytes) /
                           (link.bandwidth_gb_s * 1e9) * 1e3;
  const double latency_ms = (n - 1.0) * link.latency_us * 1e-3;
  return volume_ms + latency_ms;
}

double hierarchical_allreduce_ms(int64_t bytes, int intra_ranks,
                                 int inter_ranks, const LinkSpec& intra,
                                 const LinkSpec& inter) {
  ACTCOMP_CHECK(intra_ranks >= 1 && inter_ranks >= 1 && bytes >= 0,
                "bad hierarchical_allreduce args");
  if (bytes == 0 || (intra_ranks == 1 && inter_ranks == 1)) return 0.0;
  if (intra_ranks == 1) return allreduce_ms(bytes, inter_ranks, inter);
  if (inter_ranks == 1) return allreduce_ms(bytes, intra_ranks, intra);
  // The shard crossing the spine is S/a; computed in doubles so the phase
  // costs compose exactly (no int truncation when a does not divide S).
  const double a = static_cast<double>(intra_ranks);
  const double b = static_cast<double>(inter_ranks);
  const double s = static_cast<double>(bytes);
  const double intra_bw = intra.bandwidth_gb_s * 1e9;
  const double inter_bw = inter.bandwidth_gb_s * 1e9;
  const double rs_ms = (a - 1.0) / a * s / intra_bw * 1e3 +
                       (a - 1.0) * intra.latency_us * 1e-3;
  const double ar_ms = 2.0 * (b - 1.0) / b * (s / a) / inter_bw * 1e3 +
                       2.0 * (b - 1.0) * inter.latency_us * 1e-3;
  const double ag_ms = (a - 1.0) * (s / a) / intra_bw * 1e3 +
                       (a - 1.0) * intra.latency_us * 1e-3;
  return rs_ms + ar_ms + ag_ms;
}

double p2p_ms(int64_t bytes, const LinkSpec& link) {
  ACTCOMP_CHECK(bytes >= 0, "negative p2p bytes");
  if (bytes == 0) return 0.0;
  return link.transfer_ms(bytes);
}

double codec_ms(int64_t bytes, double gb_s) {
  ACTCOMP_CHECK(bytes >= 0, "negative codec bytes");
  ACTCOMP_CHECK(gb_s >= 0.0, "negative codec throughput");
  if (bytes == 0 || gb_s == 0.0) return 0.0;
  return static_cast<double>(bytes) / (gb_s * 1e9) * 1e3;
}

int64_t lossless_wire_bytes(int64_t raw_bytes, const LosslessWireSpec& spec) {
  ACTCOMP_CHECK(raw_bytes >= 0, "negative payload bytes");
  if (!spec.enabled) return raw_bytes;
  ACTCOMP_CHECK(spec.ratio > 0.0 && spec.ratio <= 1.0,
                "lossless ratio must be in (0, 1], got " << spec.ratio);
  const double coded = static_cast<double>(raw_bytes) * spec.ratio;
  return static_cast<int64_t>(coded) == coded
             ? static_cast<int64_t>(coded)
             : static_cast<int64_t>(coded) + 1;
}

double chunk_pipelined_ms(double encode_ms, double transfer_ms,
                          double decode_ms, int chunks) {
  ACTCOMP_CHECK(chunks >= 1, "need >= 1 chunk, got " << chunks);
  ACTCOMP_CHECK(encode_ms >= 0.0 && transfer_ms >= 0.0 && decode_ms >= 0.0,
                "negative stage duration");
  // Real chunk ops on the event graph, not a closed form: encoder, link and
  // decoder are program-order resources; chunk i's transfer depends on its
  // encode, its decode on its transfer. Stages split evenly across chunks
  // (the codec's chunk table makes chunks independently decodable), so the
  // realized makespan is (E + X + D + (chunks−1)·max(E,X,D)) / chunks — equal
  // to E + X + D at chunks == 1 and never larger (see collectives.h).
  Engine eng;
  const int encoder = eng.add_resource(1);
  const int link = eng.add_resource(1);
  const int decoder = eng.add_resource(1);
  const double c = static_cast<double>(chunks);
  std::vector<int> enc_ops, xfer_ops, dec_ops;
  enc_ops.reserve(static_cast<size_t>(chunks));
  xfer_ops.reserve(static_cast<size_t>(chunks));
  dec_ops.reserve(static_cast<size_t>(chunks));
  for (int i = 0; i < chunks; ++i) {
    enc_ops.push_back(eng.add_op(encoder, encode_ms / c));
    xfer_ops.push_back(eng.add_op(link, transfer_ms / c));
    dec_ops.push_back(eng.add_op(decoder, decode_ms / c));
    eng.add_dep(xfer_ops.back(), enc_ops.back());
    eng.add_dep(dec_ops.back(), xfer_ops.back());
  }
  const std::vector<OpTiming> times = eng.run();
  return times[static_cast<size_t>(dec_ops.back())].end_ms;
}

}  // namespace actcomp::sim
