#include "sim/collectives.h"

#include "tensor/check.h"

namespace actcomp::sim {

double allreduce_ms(int64_t bytes, int ranks, const LinkSpec& link) {
  ACTCOMP_CHECK(ranks >= 1 && bytes >= 0, "bad allreduce args");
  if (ranks == 1 || bytes == 0) return 0.0;
  const double n = static_cast<double>(ranks);
  const double volume_ms =
      2.0 * (n - 1.0) / n * static_cast<double>(bytes) / (link.bandwidth_gb_s * 1e9) * 1e3;
  const double latency_ms = 2.0 * (n - 1.0) * link.latency_us * 1e-3;
  return volume_ms + latency_ms;
}

double allgather_ms(int64_t bytes_per_rank, int ranks, const LinkSpec& link) {
  ACTCOMP_CHECK(ranks >= 1 && bytes_per_rank >= 0, "bad allgather args");
  if (ranks == 1 || bytes_per_rank == 0) return 0.0;
  const double n = static_cast<double>(ranks);
  const double volume_ms = (n - 1.0) * static_cast<double>(bytes_per_rank) /
                           (link.bandwidth_gb_s * 1e9) * 1e3;
  const double latency_ms = (n - 1.0) * link.latency_us * 1e-3;
  return volume_ms + latency_ms;
}

double reduce_scatter_ms(int64_t bytes, int ranks, const LinkSpec& link) {
  ACTCOMP_CHECK(ranks >= 1 && bytes >= 0, "bad reduce_scatter args");
  if (ranks == 1 || bytes == 0) return 0.0;
  const double n = static_cast<double>(ranks);
  const double volume_ms = (n - 1.0) / n * static_cast<double>(bytes) /
                           (link.bandwidth_gb_s * 1e9) * 1e3;
  const double latency_ms = (n - 1.0) * link.latency_us * 1e-3;
  return volume_ms + latency_ms;
}

double hierarchical_allreduce_ms(int64_t bytes, int intra_ranks,
                                 int inter_ranks, const LinkSpec& intra,
                                 const LinkSpec& inter) {
  ACTCOMP_CHECK(intra_ranks >= 1 && inter_ranks >= 1 && bytes >= 0,
                "bad hierarchical_allreduce args");
  if (bytes == 0 || (intra_ranks == 1 && inter_ranks == 1)) return 0.0;
  if (intra_ranks == 1) return allreduce_ms(bytes, inter_ranks, inter);
  if (inter_ranks == 1) return allreduce_ms(bytes, intra_ranks, intra);
  // The shard crossing the spine is S/a; computed in doubles so the phase
  // costs compose exactly (no int truncation when a does not divide S).
  const double a = static_cast<double>(intra_ranks);
  const double b = static_cast<double>(inter_ranks);
  const double s = static_cast<double>(bytes);
  const double intra_bw = intra.bandwidth_gb_s * 1e9;
  const double inter_bw = inter.bandwidth_gb_s * 1e9;
  const double rs_ms = (a - 1.0) / a * s / intra_bw * 1e3 +
                       (a - 1.0) * intra.latency_us * 1e-3;
  const double ar_ms = 2.0 * (b - 1.0) / b * (s / a) / inter_bw * 1e3 +
                       2.0 * (b - 1.0) * inter.latency_us * 1e-3;
  const double ag_ms = (a - 1.0) * (s / a) / intra_bw * 1e3 +
                       (a - 1.0) * intra.latency_us * 1e-3;
  return rs_ms + ar_ms + ag_ms;
}

double p2p_ms(int64_t bytes, const LinkSpec& link) {
  ACTCOMP_CHECK(bytes >= 0, "negative p2p bytes");
  if (bytes == 0) return 0.0;
  return link.transfer_ms(bytes);
}

}  // namespace actcomp::sim
