#include "sim/collectives.h"

#include "tensor/check.h"

namespace actcomp::sim {

double allreduce_ms(int64_t bytes, int ranks, const LinkSpec& link) {
  ACTCOMP_CHECK(ranks >= 1 && bytes >= 0, "bad allreduce args");
  if (ranks == 1 || bytes == 0) return 0.0;
  const double n = static_cast<double>(ranks);
  const double volume_ms =
      2.0 * (n - 1.0) / n * static_cast<double>(bytes) / (link.bandwidth_gb_s * 1e9) * 1e3;
  const double latency_ms = 2.0 * (n - 1.0) * link.latency_us * 1e-3;
  return volume_ms + latency_ms;
}

double allgather_ms(int64_t bytes_per_rank, int ranks, const LinkSpec& link) {
  ACTCOMP_CHECK(ranks >= 1 && bytes_per_rank >= 0, "bad allgather args");
  if (ranks == 1 || bytes_per_rank == 0) return 0.0;
  const double n = static_cast<double>(ranks);
  const double volume_ms = (n - 1.0) * static_cast<double>(bytes_per_rank) /
                           (link.bandwidth_gb_s * 1e9) * 1e3;
  const double latency_ms = (n - 1.0) * link.latency_us * 1e-3;
  return volume_ms + latency_ms;
}

double p2p_ms(int64_t bytes, const LinkSpec& link) {
  ACTCOMP_CHECK(bytes >= 0, "negative p2p bytes");
  if (bytes == 0) return 0.0;
  return link.transfer_ms(bytes);
}

}  // namespace actcomp::sim
