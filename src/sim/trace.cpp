#include "sim/trace.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "tensor/check.h"

namespace actcomp::sim {

int PipelineTrace::peak_live_activations(int stage) const {
  // Walk events in time order; a forward on `stage` stashes one micro-batch's
  // activations, the matching backward releases it.
  struct Event {
    double t;
    int delta;
  };
  std::vector<Event> events;
  for (const TraceOp& op : ops) {
    if (op.stage != stage) continue;
    events.push_back({op.backward ? op.end_ms : op.start_ms,
                      op.backward ? -1 : +1});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;  // release before stash at equal timestamps
  });
  int live = 0, peak = 0;
  for (const Event& e : events) {
    live += e.delta;
    peak = std::max(peak, live);
  }
  return peak;
}

void write_chrome_trace(std::ostream& os, const PipelineTrace& trace) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceOp& op : trace.ops) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << (op.backward ? 'B' : 'F') << op.micro
       << "\",\"cat\":\"" << (op.backward ? "backward" : "forward")
       << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << op.stage
       << ",\"ts\":" << op.start_ms * 1e3
       << ",\"dur\":" << (op.end_ms - op.start_ms) * 1e3 << '}';
  }
  os << "]}";
  ACTCOMP_CHECK(static_cast<bool>(os), "trace stream write failed");
}

}  // namespace actcomp::sim
