#include "sim/trace.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "tensor/check.h"

namespace actcomp::sim {

int PipelineTrace::peak_live_activations(int stage) const {
  // Walk events in time order; a forward on `stage` stashes one micro-batch's
  // activations, the matching backward releases it.
  struct Event {
    double t;
    int delta;
  };
  std::vector<Event> events;
  for (const TraceOp& op : ops) {
    if (op.stage != stage) continue;
    events.push_back({op.backward ? op.end_ms : op.start_ms,
                      op.backward ? -1 : +1});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;  // release before stash at equal timestamps
  });
  int live = 0, peak = 0;
  for (const Event& e : events) {
    live += e.delta;
    peak = std::max(peak, live);
  }
  return peak;
}

void write_chrome_trace(std::ostream& os, const PipelineTrace& trace) {
  const int stages = static_cast<int>(trace.result.stage_busy_ms.size());
  bool multi_chunk = false;
  for (const TraceOp& op : trace.ops) multi_chunk |= op.chunk > 0;

  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };

  // Thread-name metadata so Perfetto labels every row.
  for (int s = 0; s < stages; ++s) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << s
       << ",\"args\":{\"name\":\"stage " << s << "\"}}";
  }
  bool has_wrap = false;
  std::vector<char> used_boundary(static_cast<size_t>(std::max(0, stages - 1)), 0);
  for (const TraceComm& cm : trace.comms) {
    if (cm.wrap) {
      has_wrap = true;
    } else if (cm.boundary >= 0 &&
               cm.boundary < static_cast<int>(used_boundary.size())) {
      used_boundary[static_cast<size_t>(cm.boundary)] = 1;
    }
  }
  for (int b = 0; b + 1 < stages; ++b) {
    if (!used_boundary[static_cast<size_t>(b)]) continue;
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << stages + b << ",\"args\":{\"name\":\"link " << b << "-" << b + 1
       << "\"}}";
  }
  if (has_wrap) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << stages + stages - 1 << ",\"args\":{\"name\":\"wrap link\"}}";
  }

  for (const TraceOp& op : trace.ops) {
    sep();
    os << "{\"name\":\"" << (op.backward ? 'B' : 'F') << op.micro;
    if (multi_chunk) os << ".c" << op.chunk;
    os << "\",\"cat\":\"" << (op.backward ? "backward" : "forward")
       << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << op.stage
       << ",\"ts\":" << op.start_ms * 1e3
       << ",\"dur\":" << (op.end_ms - op.start_ms) * 1e3 << '}';
  }
  for (const TraceComm& cm : trace.comms) {
    sep();
    // Fault-injected rows: a hung attempt renders as "outage …" (category
    // "outage"), a transfer that needed retries carries a " try<N>" suffix.
    os << "{\"name\":\"" << (cm.failed ? "outage " : "")
       << (cm.backward ? "grad " : "act ") << (cm.backward ? 'B' : 'F')
       << cm.micro;
    if (multi_chunk) os << ".c" << cm.chunk;
    if (cm.slice > 0) os << " s" << cm.slice;
    if (cm.failed) {
      os << " #" << cm.attempt;
    } else if (cm.attempt > 0) {
      os << " try" << cm.attempt;
    }
    os << "\",\"cat\":\"" << (cm.failed ? "outage" : "comm")
       << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << stages + cm.boundary
       << ",\"ts\":" << cm.start_ms * 1e3
       << ",\"dur\":" << (cm.end_ms - cm.start_ms) * 1e3 << '}';
  }
  os << "]}";
  ACTCOMP_CHECK(static_cast<bool>(os), "trace stream write failed");
}

}  // namespace actcomp::sim
