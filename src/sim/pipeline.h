// Pipeline-schedule simulation (GPipe, 1F1B, interleaved 1F1B).
//
// Given per-stage forward/backward durations and per-boundary transfer times
// (all per micro-batch), builds the schedule's op-dependency graph on the
// discrete-event engine (sim/engine.h), runs it, and returns the makespan
// plus the per-stage busy/idle decomposition the paper's breakdown tables
// report ("Waiting & Pipeline Comm.").
//
// Three knobs beyond the original two-schedule simulator:
//   * interleaved 1F1B — each physical stage hosts `virtual_stages` model
//     chunks (Megatron's virtual pipeline); the bubble shrinks by ~1/v.
//   * comm/compute overlap — async p2p: a stage stalled on a late arrival
//     runs the next op whose inputs are present instead of idling.
//   * link contention — a boundary transfer is split into TP scatter-gather
//     slices that queue on a finite lane pool (one lane = a shared NIC or
//     PCIe bridge), instead of the closed-form divide-by-parallelism.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/faults.h"

namespace actcomp::sim {

enum class ScheduleKind { kGpipe, k1F1B, kInterleaved1F1B };

struct PipelineCosts {
  /// Per-stage, per-micro-batch compute+TP-comm time.
  std::vector<double> fwd_ms;
  std::vector<double> bwd_ms;
  /// Per-boundary, per-micro-batch p2p transfer time (size = stages - 1).
  /// When `boundary_shape` is set, this is the duration of ONE slice.
  std::vector<double> p2p_fwd_ms;
  std::vector<double> p2p_bwd_ms;
  int micro_batches = 1;

  /// Wrap-around link (last stage -> stage 0) crossed between consecutive
  /// model chunks under interleaved schedules. Ignored when virtual_stages
  /// is 1.
  double p2p_wrap_fwd_ms = 0.0;
  double p2p_wrap_bwd_ms = 0.0;

  /// Optional link-contention shape per boundary. A transfer becomes
  /// `slices` messages (TP scatter-gather slices) of p2p_*_ms[b] each that
  /// share `lanes` serialized lanes: lanes == slices models parallel NVLink
  /// lanes; lanes == 1 models slices queuing on one NIC / PCIe bridge.
  /// Empty means one message per transfer on an uncontended link (pure
  /// dependency delay — the original model).
  struct LinkShape {
    int slices = 1;
    int lanes = 1;
  };
  std::vector<LinkShape> boundary_shape;

  /// Data-parallel axis: `replicas` identical copies of the pipeline train
  /// on different data shards; each stage's gradient shard is all-reduced
  /// across the replicas at the end of its backward work. With replicas == 1
  /// this section is ignored entirely and the op graph built is
  /// byte-identical to the pre-DP simulator (the golden tables pin this).
  struct DataParallel {
    int replicas = 1;
    /// Per-stage, per-iteration gradient all-reduce duration (size = stages,
    /// or empty for no DP communication). The caller prices it — typically
    /// collectives::hierarchical_allreduce_ms over the DP group plus
    /// compression encode/decode from sim/overhead.h. Interleaved schedules
    /// split it evenly across the stage's model chunks.
    std::vector<double> grad_allreduce_ms;
    /// true: a (stage, chunk)'s all-reduce launches as soon as that chunk's
    /// last backward finished in every replica (bucketed DDP overlap);
    /// false: all all-reduces wait for the entire backward pass of every
    /// replica (a synchronous comm phase appended to the iteration).
    bool overlap_grads = true;
  };
  DataParallel dp;
};

struct PipelineOptions {
  ScheduleKind schedule = ScheduleKind::k1F1B;
  /// Model chunks per physical stage; must be >= 2 for kInterleaved1F1B and
  /// 1 otherwise. Interleaving requires micro_batches % stages == 0.
  int virtual_stages = 1;
  /// Async p2p (comm/compute overlap): stages execute any ready op,
  /// lowest-program-order first, instead of stalling in strict order.
  bool overlap = false;
  /// Seeded fault scenario applied while building the op graph (stragglers,
  /// link degradation, outage/retry chains — see sim/faults.h). The default
  /// is disabled, and the clean simulation is then bit-for-bit identical to
  /// a build without this field.
  FaultProfile faults;

  PipelineOptions() = default;
  PipelineOptions(ScheduleKind s, int v, bool ov, FaultProfile f = {})
      : schedule(s), virtual_stages(v), overlap(ov), faults(f) {}
};

struct PipelineResult {
  double makespan_ms = 0.0;
  std::vector<double> stage_busy_ms;      ///< sum of op durations per stage
  std::vector<double> stage_idle_ms;      ///< makespan - busy
  std::vector<double> boundary_comm_ms;   ///< fwd+bwd transfer total per boundary
  double wrap_comm_ms = 0.0;              ///< interleaved wrap-link total
  /// Average over stages of (idle + adjacent boundary transfer time): the
  /// quantity the paper's "Waiting & Pipeline Comm." column measures.
  double waiting_and_pipe_ms = 0.0;

  // Fault-injection accounting (zero on clean runs). With faults enabled,
  // stage_busy_ms and boundary_comm_ms above already reflect the realized
  // (jittered / degraded) durations, not the clean inputs.
  int fault_retries = 0;        ///< hung transfer attempts injected
  double fault_retry_ms = 0.0;  ///< link time burned by hung attempts
  double fault_backoff_ms = 0.0;  ///< pure-delay backoff time injected

  // Data-parallel accounting (dp_replicas == 1 on non-DP runs). makespan_ms
  // includes the gradient all-reduce tail; the per-stage busy/idle arrays
  // and the trace describe replica 0 (replicas are identical except for
  // per-replica fault draws), while fault counters sum over all replicas.
  int dp_replicas = 1;
  double dp_comm_ms = 0.0;  ///< total gradient all-reduce link time
};

/// Throws std::invalid_argument with a precise message if the cost arrays
/// are inconsistent (sizes, negative/non-finite entries, micro_batches < 1)
/// or the options are invalid for the schedule.
void validate_pipeline_inputs(const PipelineCosts& costs,
                              const PipelineOptions& options);

PipelineResult simulate_pipeline(const PipelineCosts& costs,
                                 const PipelineOptions& options);
/// Legacy convenience: strict-order, non-interleaved simulation.
PipelineResult simulate_pipeline(const PipelineCosts& costs, ScheduleKind kind);

}  // namespace actcomp::sim
