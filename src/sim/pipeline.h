// Pipeline-schedule simulation (GPipe and 1F1B), dependency-exact.
//
// Given per-stage forward/backward durations and per-boundary transfer times
// (all per micro-batch), simulates the schedule op by op and returns the
// makespan plus the per-stage busy/idle decomposition the paper's breakdown
// tables report ("Waiting & Pipeline Comm.").
#pragma once

#include <cstdint>
#include <vector>

namespace actcomp::sim {

enum class ScheduleKind { kGpipe, k1F1B };

struct PipelineCosts {
  /// Per-stage, per-micro-batch compute+TP-comm time.
  std::vector<double> fwd_ms;
  std::vector<double> bwd_ms;
  /// Per-boundary, per-micro-batch p2p transfer time (size = stages - 1).
  std::vector<double> p2p_fwd_ms;
  std::vector<double> p2p_bwd_ms;
  int micro_batches = 1;
};

struct PipelineResult {
  double makespan_ms = 0.0;
  std::vector<double> stage_busy_ms;      ///< sum of op durations per stage
  std::vector<double> stage_idle_ms;      ///< makespan - busy
  std::vector<double> boundary_comm_ms;   ///< fwd+bwd transfer total per boundary
  /// Average over stages of (idle + adjacent boundary transfer time): the
  /// quantity the paper's "Waiting & Pipeline Comm." column measures.
  double waiting_and_pipe_ms = 0.0;
};

PipelineResult simulate_pipeline(const PipelineCosts& costs, ScheduleKind kind);

}  // namespace actcomp::sim
