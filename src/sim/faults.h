// Deterministic fault injection for the pipeline simulator.
//
// The paper's throughput tables assume a clean cluster; real model-parallel
// jobs see stragglers and flaky links — exactly the regime (slow/contended
// networks) where activation compression is supposed to pay. This layer
// perturbs the op graph that sim/pipeline.cpp builds, while Engine::run()
// itself stays pure (no RNG anywhere inside the engine):
//
//   * compute jitter — every compute op's duration is scaled by an
//     independent factor 1 + U[0, compute_jitter]; one stage can further be
//     a persistent straggler (a fixed slowdown on all its ops);
//   * link degradation — persistent bandwidth loss on one (or every)
//     boundary: transfer durations scale by LinkFaultSpec::degrade_factor;
//   * transient outages — each transfer attempt independently hangs with
//     probability outage_rate. A hung attempt occupies the link resource
//     until timeout_ms (it is a real op on the link, so other transfers
//     queue behind it), then the sender backs off exponentially (a pure
//     delay — the link is free meanwhile) and retries, up to max_retries
//     failures; the next attempt always succeeds.
//
// Every stochastic draw comes from one std::mt19937_64 seeded with
// FaultProfile::seed and consumed in op-graph construction order, so a given
// (graph, profile) pair always realizes the same fault pattern. All
// perturbations are duration-lengthening (multipliers >= 1, extra serial
// ops), which is what makes "faulted makespan >= clean makespan" a testable
// invariant (tests/engine_test.cpp sweeps it over seeds).
#pragma once

#include <cstdint>
#include <random>

#include "sim/hardware.h"

namespace actcomp::sim {

/// U[0, 1) from the 53 high mantissa bits of one raw 64-bit draw. The repo's
/// canonical stochastic primitive (FaultInjector, poisson_trace, the replica
/// fault processes all share it): unlike std::uniform_real_distribution the
/// realization is identical across standard libraries, which is what makes
/// seeded fault patterns a portable golden-test surface.
inline double uniform_raw(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// A complete fault scenario. Default-constructed = everything disabled; the
/// simulator's clean path is then bit-for-bit unchanged.
struct FaultProfile {
  /// Per-op multiplicative compute jitter: duration *= 1 + U[0, jitter].
  double compute_jitter = 0.0;
  /// Persistent straggler stage (-1 = none); all its compute ops are scaled
  /// by straggler_slowdown (>= 1) on top of the jitter.
  int straggler_stage = -1;
  double straggler_slowdown = 1.0;
  /// Link faults, applied to boundary `faulty_boundary`, or to every
  /// boundary (and the interleaved wrap link) when faulty_boundary == -1.
  /// For a p-stage pipeline, boundaries are 0..p-2 and the wrap link is
  /// addressed as p-1.
  LinkFaultSpec link;
  int faulty_boundary = -1;
  /// Fail-stop stage crashes. NOT consumed by the per-iteration injector
  /// below (a crash kills the whole job, not one op): the multi-iteration
  /// recovery layer (sim/recovery.h) reads it to model crash -> detection ->
  /// restart -> rollback-and-replay against a checkpoint interval. enabled()
  /// therefore ignores it, which keeps the per-iteration clean path
  /// bit-identical when only crashes are configured.
  CrashSpec crash;
  /// Seed for every stochastic draw. Two profiles differing only in seed
  /// realize different jitter/outage patterns over the same scenario.
  uint64_t seed = 0;

  /// True if any perturbation is active.
  bool enabled() const;
  /// Throws std::invalid_argument with a precise message if any knob is out
  /// of range (negative jitter, slowdown/degrade < 1, rate outside [0, 1),
  /// negative timeout/backoff, max_retries outside [1, 16] while outages
  /// are on).
  void validate() const;

  // Presets used by the benches, the explorer's --faults mode, and tests.
  static FaultProfile none();
  static FaultProfile straggler(int stage, double slowdown, uint64_t seed);
  static FaultProfile degraded_link(double factor, uint64_t seed);
  static FaultProfile flaky_link(double outage_rate, double timeout_ms,
                                 double backoff_ms, uint64_t seed);
  /// Everything at once: 10% jitter, one 1.5x straggler, 2x degradation and
  /// 5% outages on every link.
  static FaultProfile chaos(uint64_t seed);
};

/// Consumes a FaultProfile while sim/pipeline.cpp builds the op graph. The
/// draw order is the graph construction order, which is deterministic, so
/// the injector is too. All multipliers returned are >= 1.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultProfile& profile);

  bool enabled() const { return enabled_; }
  const FaultProfile& profile() const { return profile_; }

  /// Multiplier for the next compute op on `stage`; consumes one RNG draw
  /// when jitter is active. Exactly 1.0 when faults are disabled.
  double compute_multiplier(int stage);
  /// Persistent degradation multiplier for transfers crossing `boundary`
  /// (the wrap link is stages - 1). Exactly 1.0 off the faulty boundary.
  double transfer_multiplier(int boundary) const;
  /// Number of hung attempts (0 = transfer succeeds immediately) for the
  /// next transfer on `boundary`; consumes RNG draws.
  int draw_outages(int boundary);
  /// Link occupancy of one hung attempt.
  double attempt_timeout_ms() const { return profile_.link.timeout_ms; }
  /// Pure-delay backoff before retry `attempt` (1-based): backoff * 2^(a-1).
  double backoff_ms(int attempt) const;

 private:
  bool link_faulty(int boundary) const;
  /// U[0, 1) from the profile's own engine (uniform_raw above).
  double next_uniform();

  FaultProfile profile_;
  bool enabled_ = false;
  std::mt19937_64 rng_;
};

/// Fault scenario for ONE serving replica (sim/serving_resilience.h). Two
/// independent renewal processes, both seeded from `seed`:
///
///   * fail-stop crashes — exponential up-time with mean `mtbf_ms`, then the
///     replica is down for `repair_ms` (in-flight and queued work is lost and
///     must be retried or fails);
///   * brown-outs — after an exponential healthy period with mean
///     `slow_mtbf_ms`, every step STARTED inside the next `slow_duration_ms`
///     window runs `slow_factor` (>= 1) times slower. This is the serving
///     twin of FaultProfile's persistent link degradation: the replica stays
///     up but its effective capacity drops, which is exactly the regime where
///     escalating to a cheaper wire format recovers the SLO.
///
/// Default-constructed = healthy forever; the resilient scheduler's clean
/// path is then bit-for-bit the single-replica simulate_serving schedule.
struct ReplicaFaultSpec {
  double mtbf_ms = 0.0;          ///< mean up-time between crashes; 0 = never
  double repair_ms = 0.0;        ///< downtime per crash
  double slow_mtbf_ms = 0.0;     ///< mean healthy time between brown-outs
  double slow_duration_ms = 0.0; ///< brown-out window length
  double slow_factor = 1.0;      ///< step-duration multiplier inside a window
  uint64_t seed = 0;

  /// True if any perturbation is active.
  bool enabled() const;
  /// Throws std::invalid_argument with a precise "ReplicaFaultSpec: ..."
  /// message on non-finite/negative durations, slow_factor < 1, or a
  /// brown-out process with a zero-length window.
  void validate() const;
};

/// Materializes one replica's fault timeline lazily and deterministically:
/// same spec => same crash instants and the same brown-out windows, consumed
/// in simulation order. Crash and brown-out draws come from two independent
/// mt19937_64 streams derived from the spec's seed, so enabling one process
/// never re-times the other.
class ReplicaFaultProcess {
 public:
  explicit ReplicaFaultProcess(const ReplicaFaultSpec& spec);

  const ReplicaFaultSpec& spec() const { return spec_; }

  /// Absolute time of the next crash given the replica is up from `from_ms`.
  /// +infinity when crashes are disabled. Consumes one crash-stream draw per
  /// call; the resilient scheduler calls it once at t = 0 and once per
  /// recovery.
  double draw_crash_after(double from_ms);

  /// Step-duration multiplier for a step starting at `start_ms` (>= 1;
  /// exactly 1.0 when brown-outs are disabled, so the clean path's durations
  /// are bit-identical). Calls must be non-decreasing in start_ms — the
  /// window sequence is advanced, never rewound.
  double slow_multiplier_at(double start_ms);

 private:
  double next_exponential(std::mt19937_64& rng, double mean_ms);

  ReplicaFaultSpec spec_;
  std::mt19937_64 crash_rng_;
  std::mt19937_64 slow_rng_;
  bool slow_seeded_ = false;
  double slow_start_ms_ = 0.0;  ///< current/next brown-out window
  double slow_end_ms_ = 0.0;
};

}  // namespace actcomp::sim
