// Request-level inference serving simulator on the discrete-event engine.
//
// Models one model replica serving an arrival stream of generation requests
// with continuous batching (Orca/vLLM-style): the scheduler admits requests
// FIFO under a max-batch and a token-budget cap, runs one PREFILL step for
// each admission wave, and otherwise advances every running request by one
// token per DECODE step. Requests join and leave the batch between steps —
// a finished request frees its budget immediately, so short requests never
// wait for long ones.
//
// The step costs come from a caller-supplied StepCostFn, so this module knows
// nothing about hardware or compression — parallel/make_serving_cost bridges
// ModelParallelSimulator's TP-collective pricing (compressed or not) into it.
//
// The scheduler is driven by sim::Engine: every arrival is a pure-delay op on
// an unbounded ready-order resource and every step is an op on the replica's
// single program-order lane, with dependency edges from the admitted
// requests' arrivals. The scheduler's own clock and the engine's realized
// times are the same max/+ arithmetic; simulate_serving asserts they agree
// exactly and reports the engine's times. Everything is deterministic: same
// trace + config => byte-identical report (tests/serving_test.cpp pins this,
// plus Little's law, work conservation, and p99 monotonicity).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace actcomp::sim {

/// One generation request: `prompt_tokens` to prefill, then up to
/// `max_new_tokens` decode steps of one token each.
struct ServingRequest {
  double arrival_ms = 0.0;
  int64_t prompt_tokens = 0;
  int64_t max_new_tokens = 0;
};

/// Seeded Poisson arrival trace with fixed request shapes. The inter-arrival
/// exponentials come from one std::mt19937_64 via inverse-CDF over raw 64-bit
/// draws (no std::distribution, so the trace is identical across standard
/// libraries). The same seed at two rates yields the SAME unit-exponential
/// sequence scaled by 1/rate — arrival order is preserved, which is what
/// makes "higher rate never lowers p99" a testable property.
struct PoissonTraceSpec {
  double rate_per_s = 1.0;
  int num_requests = 64;
  int64_t prompt_tokens = 128;
  int64_t max_new_tokens = 32;
  uint64_t seed = 1;
};
std::vector<ServingRequest> poisson_trace(const PoissonTraceSpec& spec);

/// Shape of one scheduler step, priced by the cost function. For a prefill
/// step `new_tokens` is the sum of admitted prompt lengths; for a decode step
/// it equals `seqs` (one token per running request). `context_tokens` is the
/// total number of cached positions attended across all new tokens (the
/// attention term of the step's FLOPs).
struct StepShape {
  bool prefill = false;
  int64_t seqs = 0;
  int64_t new_tokens = 0;
  int64_t context_tokens = 0;
};

/// Wall-clock milliseconds one step of this shape takes on the replica.
using StepCostFn = std::function<double(const StepShape&)>;

struct ServingConfig {
  int64_t max_batch = 16;     ///< concurrent requests per replica
  int64_t token_budget = 4096;  ///< KV slots: sum of admitted prompt+max_new
  StepCostFn step_cost;       ///< required
};

/// Per-request realized timeline. TTFT for a request that generates nothing
/// (max_new_tokens == 0) is undefined and excluded from percentiles; TPOT
/// needs >= 2 generated tokens.
struct RequestTiming {
  double arrival_ms = 0.0;
  double admit_ms = 0.0;        ///< start of its prefill step
  double first_token_ms = 0.0;  ///< end of its prefill step
  double done_ms = 0.0;
  int64_t prompt_tokens = 0;
  int64_t generated = 0;

  double ttft_ms() const { return first_token_ms - arrival_ms; }
  double e2e_ms() const { return done_ms - arrival_ms; }
  double tpot_ms() const {
    return generated > 1 ? (done_ms - first_token_ms) /
                               static_cast<double>(generated - 1)
                         : 0.0;
  }
};

struct StepTiming {
  bool prefill = false;
  double start_ms = 0.0;
  double end_ms = 0.0;
  int64_t seqs = 0;
  int64_t new_tokens = 0;
  /// Which replica ran the step. Always 0 for simulate_serving; the
  /// multi-replica scheduler (sim/serving_resilience.h) fills it in.
  int replica = 0;
};

/// Nearest-rank percentiles (the bench::FaultSweep convention). All zero for
/// an empty sample set.
struct LatencyPercentiles {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};
LatencyPercentiles latency_percentiles(std::vector<double> samples);

struct ServingReport {
  int64_t completed = 0;
  int64_t generated_tokens = 0;
  double makespan_ms = 0.0;  ///< first arrival to last completion
  double busy_ms = 0.0;      ///< sum of step durations on the replica
  /// Time-average of in-flight requests over [first arrival, last done],
  /// integrated from the arrival/completion event sweep — an independent
  /// measurement the Little's-law property test checks against
  /// completed/makespan x mean e2e latency.
  double mean_concurrency = 0.0;
  LatencyPercentiles ttft;  ///< arrival -> first token
  LatencyPercentiles tpot;  ///< per generated token after the first
  LatencyPercentiles e2e;   ///< arrival -> completion
  std::vector<RequestTiming> requests;  ///< input order
  std::vector<StepTiming> steps;

  double throughput_tok_s() const {
    return makespan_ms > 0.0
               ? static_cast<double>(generated_tokens) / makespan_ms * 1e3
               : 0.0;
  }
};

/// Throws std::invalid_argument with a precise message on: missing step_cost,
/// max_batch/token_budget < 1, non-finite or negative arrival, unsorted
/// arrivals, a zero-length prompt, negative max_new_tokens, or a request
/// whose prompt + max_new_tokens exceeds the token budget (it could never be
/// admitted — the scheduler would livelock).
void validate_serving_inputs(const std::vector<ServingRequest>& requests,
                             const ServingConfig& cfg);

/// Runs the trace to completion. An empty trace returns an empty report (no
/// engine graph is built — the zero-request edge case degrades gracefully).
ServingReport simulate_serving(const std::vector<ServingRequest>& requests,
                               const ServingConfig& cfg);

/// Fills the derived aggregates of a report whose `requests` and `steps` are
/// already populated: busy_ms (sum of step durations in step order),
/// completed / generated_tokens, the ttft/tpot/e2e percentiles, makespan and
/// the event-sweep mean concurrency. When `completed` is non-null it is a
/// per-request mask (same indexing as rep.requests) and only masked-in
/// requests contribute to the aggregates — the resilient scheduler uses this
/// to keep shed/failed requests out of the latency statistics while still
/// reporting their (empty) timelines. Null counts every request, which is
/// exactly simulate_serving's accounting; both paths share this code so the
/// clean-path byte-identity is structural, not coincidental.
void finalize_serving_report(ServingReport& rep,
                             const std::vector<char>* completed = nullptr);

}  // namespace actcomp::sim
