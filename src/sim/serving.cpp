#include "sim/serving.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "sim/engine.h"
#include "sim/faults.h"
#include "tensor/check.h"

namespace actcomp::sim {

std::vector<ServingRequest> poisson_trace(const PoissonTraceSpec& spec) {
  ACTCOMP_CHECK(spec.rate_per_s > 0.0,
                "poisson_trace: rate_per_s = " << spec.rate_per_s
                                               << ", must be > 0");
  ACTCOMP_CHECK(spec.num_requests >= 0,
                "poisson_trace: num_requests = " << spec.num_requests
                                                 << ", must be >= 0");
  ACTCOMP_CHECK(spec.prompt_tokens >= 1,
                "poisson_trace: prompt_tokens = " << spec.prompt_tokens
                                                  << ", must be >= 1");
  ACTCOMP_CHECK(spec.max_new_tokens >= 0,
                "poisson_trace: max_new_tokens = " << spec.max_new_tokens
                                                   << ", must be >= 0");
  std::mt19937_64 rng(spec.seed);
  std::vector<ServingRequest> out;
  out.reserve(static_cast<size_t>(spec.num_requests));
  double t_ms = 0.0;
  for (int i = 0; i < spec.num_requests; ++i) {
    // Inverse-CDF exponential inter-arrival, scaled from seconds to ms.
    t_ms += -std::log(1.0 - uniform_raw(rng)) / spec.rate_per_s * 1e3;
    out.push_back({t_ms, spec.prompt_tokens, spec.max_new_tokens});
  }
  return out;
}

LatencyPercentiles latency_percentiles(std::vector<double> samples) {
  LatencyPercentiles out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  auto pct = [&](double q) {  // nearest-rank, as bench::FaultSweep
    const auto n = static_cast<double>(samples.size());
    auto rank = static_cast<size_t>(std::ceil(q * n));
    return samples[std::min(samples.size() - 1, rank == 0 ? 0 : rank - 1)];
  };
  out.p50_ms = pct(0.50);
  out.p95_ms = pct(0.95);
  out.p99_ms = pct(0.99);
  return out;
}

void validate_serving_inputs(const std::vector<ServingRequest>& requests,
                             const ServingConfig& cfg) {
  ACTCOMP_CHECK(static_cast<bool>(cfg.step_cost),
                "ServingConfig.step_cost is not set — the scheduler cannot "
                "price steps");
  ACTCOMP_CHECK(cfg.max_batch >= 1,
                "ServingConfig.max_batch = " << cfg.max_batch
                                             << ", must be >= 1");
  ACTCOMP_CHECK(cfg.token_budget >= 1,
                "ServingConfig.token_budget = " << cfg.token_budget
                                                << ", must be >= 1");
  for (size_t i = 0; i < requests.size(); ++i) {
    const ServingRequest& r = requests[i];
    ACTCOMP_CHECK(std::isfinite(r.arrival_ms) && r.arrival_ms >= 0.0,
                  "request " << i << ": arrival_ms = " << r.arrival_ms
                             << ", must be finite and >= 0");
    ACTCOMP_CHECK(i == 0 || requests[i - 1].arrival_ms <= r.arrival_ms,
                  "request " << i << ": arrivals must be sorted (got "
                             << r.arrival_ms << " after "
                             << requests[i - 1].arrival_ms << ")");
    ACTCOMP_CHECK(r.prompt_tokens >= 1,
                  "request " << i << ": prompt_tokens = " << r.prompt_tokens
                             << " — a zero-length prompt has nothing to "
                                "prefill");
    ACTCOMP_CHECK(r.max_new_tokens >= 0,
                  "request " << i << ": max_new_tokens = " << r.max_new_tokens
                             << ", must be >= 0");
    ACTCOMP_CHECK(r.prompt_tokens + r.max_new_tokens <= cfg.token_budget,
                  "request " << i << ": prompt + max_new_tokens = "
                             << r.prompt_tokens + r.max_new_tokens
                             << " exceeds token_budget = " << cfg.token_budget
                             << " — it could never be admitted");
  }
}

ServingReport simulate_serving(const std::vector<ServingRequest>& requests,
                               const ServingConfig& cfg) {
  validate_serving_inputs(requests, cfg);
  ServingReport rep;
  rep.requests.resize(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    rep.requests[i].arrival_ms = requests[i].arrival_ms;
    rep.requests[i].prompt_tokens = requests[i].prompt_tokens;
  }
  // Zero requests: nothing to schedule, no engine graph at all.
  if (requests.empty()) return rep;

  Engine eng;
  const int arrivals_res = eng.add_resource(0, ExecPolicy::kReadyOrder);
  const int replica_res = eng.add_resource(1, ExecPolicy::kProgramOrder);
  std::vector<int> arrival_op(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    // Pure delay: the op "ends" exactly at the request's arrival time.
    arrival_op[i] = eng.add_op(arrivals_res, requests[i].arrival_ms);
  }

  struct Live {
    size_t idx;
    int64_t cached;     ///< KV positions committed (prompt + generated - 1)
    int64_t generated;
    int64_t reserved;   ///< budget tokens held until completion
  };
  struct PlannedStep {
    int op;
    bool prefill;
    double start_ms, end_ms;
    int64_t seqs, new_tokens;
  };
  std::vector<Live> running;
  std::vector<PlannedStep> steps;
  size_t next = 0;
  int64_t reserved_total = 0;
  double last_end = 0.0;

  auto price = [&cfg](const StepShape& shape) {
    const double ms = cfg.step_cost(shape);
    ACTCOMP_CHECK(std::isfinite(ms) && ms >= 0.0,
                  "step_cost returned " << ms << " for a "
                                        << (shape.prefill ? "prefill" : "decode")
                                        << " step — must be finite and >= 0");
    return ms;
  };

  while (next < requests.size() || !running.empty()) {
    // Idle replica: the clock jumps to the next arrival (validation
    // guarantees the FIFO head fits an empty replica, so progress is
    // assured). In the engine this jump is the prefill op's arrival dep.
    const double now = running.empty() && next < requests.size()
                           ? std::max(last_end, requests[next].arrival_ms)
                           : last_end;

    // Admission wave: FIFO under max_batch and the token budget.
    std::vector<size_t> admitted;
    int64_t admit_prompts = 0, admit_context = 0;
    while (next < requests.size() && requests[next].arrival_ms <= now &&
           static_cast<int64_t>(running.size() + admitted.size()) <
               cfg.max_batch &&
           reserved_total + requests[next].prompt_tokens +
                   requests[next].max_new_tokens <=
               cfg.token_budget) {
      const ServingRequest& r = requests[next];
      reserved_total += r.prompt_tokens + r.max_new_tokens;
      admit_prompts += r.prompt_tokens;
      admit_context += r.prompt_tokens * (r.prompt_tokens + 1) / 2;
      admitted.push_back(next);
      ++next;
    }

    if (!admitted.empty()) {
      const StepShape shape{true, static_cast<int64_t>(admitted.size()),
                            admit_prompts, admit_context};
      const double dur = price(shape);
      const int op = eng.add_op(replica_res, dur);
      double start = last_end;
      for (const size_t idx : admitted) {
        eng.add_dep(op, arrival_op[idx]);
        start = std::max(start, requests[idx].arrival_ms);
      }
      const double end = start + dur;
      for (const size_t idx : admitted) {
        const ServingRequest& r = requests[idx];
        RequestTiming& t = rep.requests[idx];
        t.admit_ms = start;
        t.first_token_ms = end;
        t.generated = std::min<int64_t>(1, r.max_new_tokens);
        if (t.generated == r.max_new_tokens) {
          t.done_ms = end;  // 0- or 1-token requests finish at prefill
          reserved_total -= r.prompt_tokens + r.max_new_tokens;
        } else {
          running.push_back({idx, r.prompt_tokens, t.generated,
                             r.prompt_tokens + r.max_new_tokens});
        }
      }
      steps.push_back({op, true, start, end, shape.seqs, shape.new_tokens});
      last_end = end;
      continue;  // re-check admission before decoding
    }

    ACTCOMP_ASSERT(!running.empty(),
                   "serving scheduler stalled with requests pending");
    int64_t context = 0;
    for (const Live& l : running) context += l.cached + 1;
    const StepShape shape{false, static_cast<int64_t>(running.size()),
                          static_cast<int64_t>(running.size()), context};
    const double dur = price(shape);
    const int op = eng.add_op(replica_res, dur);
    const double start = last_end;
    const double end = start + dur;
    std::vector<Live> still;
    still.reserve(running.size());
    for (Live& l : running) {
      l.cached += 1;
      l.generated += 1;
      RequestTiming& t = rep.requests[l.idx];
      t.generated = l.generated;
      if (l.generated == requests[l.idx].max_new_tokens) {
        t.done_ms = end;
        reserved_total -= l.reserved;
      } else {
        still.push_back(l);
      }
    }
    running = std::move(still);
    steps.push_back({op, false, start, end, shape.seqs, shape.new_tokens});
    last_end = end;
  }

  // Realize the graph on the engine and check the scheduler's clock against
  // it exactly — the claim "driven by sim::Engine" is an invariant, not a
  // comment.
  const std::vector<OpTiming> times = eng.run();
  for (const PlannedStep& s : steps) {
    const OpTiming& t = times[static_cast<size_t>(s.op)];
    ACTCOMP_ASSERT(t.start_ms == s.start_ms && t.end_ms == s.end_ms,
                   "engine-realized step times diverge from the scheduler: ["
                       << t.start_ms << ", " << t.end_ms << "] vs ["
                       << s.start_ms << ", " << s.end_ms << "]");
    rep.steps.push_back({s.prefill, t.start_ms, t.end_ms, s.seqs, s.new_tokens});
  }

  finalize_serving_report(rep);
  return rep;
}

void finalize_serving_report(ServingReport& rep,
                             const std::vector<char>* completed) {
  for (const StepTiming& s : rep.steps) rep.busy_ms += s.end_ms - s.start_ms;
  if (rep.requests.empty()) return;
  ACTCOMP_CHECK(completed == nullptr || completed->size() == rep.requests.size(),
                "finalize_serving_report: completed mask has "
                    << (completed ? completed->size() : 0) << " entries for "
                    << rep.requests.size() << " requests");
  auto counted = [&](size_t i) {
    return completed == nullptr || (*completed)[i] != 0;
  };

  std::vector<double> ttft, tpot, e2e;
  for (size_t i = 0; i < rep.requests.size(); ++i) {
    if (!counted(i)) continue;
    const RequestTiming& t = rep.requests[i];
    rep.completed += 1;
    rep.generated_tokens += t.generated;
    if (t.generated >= 1) ttft.push_back(t.ttft_ms());
    if (t.generated >= 2) tpot.push_back(t.tpot_ms());
    e2e.push_back(t.e2e_ms());
  }
  rep.ttft = latency_percentiles(std::move(ttft));
  rep.tpot = latency_percentiles(std::move(tpot));
  rep.e2e = latency_percentiles(std::move(e2e));

  // Makespan runs from the first ARRIVAL (of any request, even one later
  // shed — it still offered load) to the last counted completion.
  const double t0 = rep.requests.front().arrival_ms;
  double t1 = t0;
  for (size_t i = 0; i < rep.requests.size(); ++i) {
    if (counted(i)) t1 = std::max(t1, rep.requests[i].done_ms);
  }
  rep.makespan_ms = t1 - t0;

  // Mean concurrency by event-sweep time integration — measured
  // independently of the per-request latencies so Little's law is a real
  // cross-check of the bookkeeping, not an algebraic identity.
  struct Event {
    double t;
    int delta;
  };
  std::vector<Event> events;
  events.reserve(rep.requests.size() * 2);
  for (size_t i = 0; i < rep.requests.size(); ++i) {
    if (!counted(i)) continue;
    const RequestTiming& t = rep.requests[i];
    events.push_back({t.arrival_ms, +1});
    events.push_back({t.done_ms, -1});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.t < b.t || (a.t == b.t && a.delta < b.delta);
  });
  double integral = 0.0, prev = t0;
  int count = 0;
  for (const Event& ev : events) {
    integral += static_cast<double>(count) * (ev.t - prev);
    count += ev.delta;
    prev = ev.t;
  }
  rep.mean_concurrency = rep.makespan_ms > 0.0 ? integral / rep.makespan_ms : 0.0;
}

}  // namespace actcomp::sim
