// Execution tracing for the pipeline simulator.
//
// simulate_pipeline_traced() returns, in addition to the timing result, the
// realized start/end of every forward/backward op — enough to reconstruct
// the schedule — and write_chrome_trace() serializes it in the Chrome
// tracing JSON format (load in chrome://tracing or Perfetto), with one
// timeline row per pipeline stage. Also computes the peak number of
// in-flight activations per stage, the quantity that makes 1F1B preferable
// to GPipe in practice (bench/ablation_schedule discusses it).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/pipeline.h"

namespace actcomp::sim {

struct TraceOp {
  int stage = 0;
  int micro = 0;
  bool backward = false;
  double start_ms = 0.0;
  double end_ms = 0.0;
};

struct PipelineTrace {
  PipelineResult result;
  std::vector<TraceOp> ops;  ///< in realized execution order

  /// Peak count of micro-batches whose forward has run on `stage` but whose
  /// backward has not yet completed there — the stage's peak stash of live
  /// activations (GPipe: up to m; 1F1B: at most stages - stage).
  int peak_live_activations(int stage) const;
};

PipelineTrace simulate_pipeline_traced(const PipelineCosts& costs,
                                       ScheduleKind kind);

/// Chrome tracing JSON ("traceEvents" array of X events; ts/dur in µs,
/// pid 0, one tid per stage).
void write_chrome_trace(std::ostream& os, const PipelineTrace& trace);

}  // namespace actcomp::sim
