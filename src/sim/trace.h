// Execution tracing for the pipeline simulator.
//
// simulate_pipeline_traced() returns, in addition to the timing result, the
// realized start/end of every forward/backward op — enough to reconstruct
// the schedule — plus every point-to-point transfer, and
// write_chrome_trace() serializes it in the Chrome tracing JSON format
// (load in chrome://tracing or Perfetto): one timeline row per pipeline
// stage, one per boundary link, and one for the interleaved wrap link.
// Also computes the peak number of in-flight activations per stage, the
// quantity that makes 1F1B preferable to GPipe in practice
// (bench/ablation_schedule discusses it).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/pipeline.h"

namespace actcomp::sim {

struct TraceOp {
  int stage = 0;
  int micro = 0;
  bool backward = false;
  double start_ms = 0.0;
  double end_ms = 0.0;
  int chunk = 0;  ///< virtual model chunk (0 unless interleaved)
};

/// One realized p2p transfer (or one slice of it under link contention).
struct TraceComm {
  int boundary = 0;     ///< boundary index; for wrap transfers, stages - 1
  bool wrap = false;    ///< crosses the last-stage -> stage-0 wrap link
  int slice = 0;        ///< scatter-gather slice index within the transfer
  int chunk = 0;
  int micro = 0;
  bool backward = false;
  double start_ms = 0.0;
  double end_ms = 0.0;
  /// Fault-injection annotations: `attempt` counts the retries that preceded
  /// this transfer (0 = first try), `failed` marks a hung attempt that
  /// occupied the link until its timeout (its matching retry follows).
  int attempt = 0;
  bool failed = false;
};

struct PipelineTrace {
  PipelineResult result;
  std::vector<TraceOp> ops;      ///< compute ops, in realized execution order
  std::vector<TraceComm> comms;  ///< transfers, in realized execution order

  /// Peak count of micro-batches whose forward has run on `stage` but whose
  /// backward has not yet completed there — the stage's peak stash of live
  /// activations (GPipe: up to m; 1F1B: at most stages - stage).
  int peak_live_activations(int stage) const;
};

PipelineTrace simulate_pipeline_traced(const PipelineCosts& costs,
                                       const PipelineOptions& options);
PipelineTrace simulate_pipeline_traced(const PipelineCosts& costs,
                                       ScheduleKind kind);

/// Chrome tracing JSON ("traceEvents" array; ts/dur in µs, pid 0). Compute
/// ops land on tid = stage, transfers on tid = stages + boundary (the wrap
/// link on tid = stages + stages - 1), with thread_name metadata records
/// naming every row so Perfetto labels the tracks.
void write_chrome_trace(std::ostream& os, const PipelineTrace& trace);

}  // namespace actcomp::sim
