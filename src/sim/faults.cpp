#include "sim/faults.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace actcomp::sim {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("FaultProfile: " + msg);
}

void check_finite_nonneg(double v, const char* name) {
  if (!std::isfinite(v) || v < 0.0) {
    std::ostringstream os;
    os << name << " = " << v << " — must be finite and non-negative";
    fail(os.str());
  }
}

}  // namespace

bool FaultProfile::enabled() const {
  return compute_jitter > 0.0 ||
         (straggler_stage >= 0 && straggler_slowdown > 1.0) || link.faulty();
}

void FaultProfile::validate() const {
  std::ostringstream os;
  check_finite_nonneg(compute_jitter, "compute_jitter");
  if (!std::isfinite(straggler_slowdown) || straggler_slowdown < 1.0) {
    os << "straggler_slowdown = " << straggler_slowdown << " — must be >= 1";
    fail(os.str());
  }
  if (straggler_stage < -1) {
    os << "straggler_stage = " << straggler_stage << " — must be >= -1";
    fail(os.str());
  }
  if (faulty_boundary < -1) {
    os << "faulty_boundary = " << faulty_boundary << " — must be >= -1";
    fail(os.str());
  }
  if (!std::isfinite(link.degrade_factor) || link.degrade_factor < 1.0) {
    os << "link.degrade_factor = " << link.degrade_factor
       << " — must be >= 1 (faults only lengthen transfers)";
    fail(os.str());
  }
  if (!std::isfinite(link.outage_rate) || link.outage_rate < 0.0 ||
      link.outage_rate >= 1.0) {
    os << "link.outage_rate = " << link.outage_rate << " — must be in [0, 1)";
    fail(os.str());
  }
  check_finite_nonneg(link.timeout_ms, "link.timeout_ms");
  check_finite_nonneg(link.backoff_ms, "link.backoff_ms");
  if (link.outage_rate > 0.0 &&
      (link.max_retries < 1 || link.max_retries > 16)) {
    os << "link.max_retries = " << link.max_retries
       << " — must be in [1, 16] when outage_rate > 0";
    fail(os.str());
  }
  check_finite_nonneg(crash.mtbf_ms, "crash.mtbf_ms");
  check_finite_nonneg(crash.detect_ms, "crash.detect_ms");
  check_finite_nonneg(crash.restart_ms, "crash.restart_ms");
  if (crash.num_stages < 1) {
    os << "crash.num_stages = " << crash.num_stages << " — must be >= 1";
    fail(os.str());
  }
}

FaultProfile FaultProfile::none() { return {}; }

FaultProfile FaultProfile::straggler(int stage, double slowdown,
                                     uint64_t seed) {
  FaultProfile p;
  p.straggler_stage = stage;
  p.straggler_slowdown = slowdown;
  p.seed = seed;
  return p;
}

FaultProfile FaultProfile::degraded_link(double factor, uint64_t seed) {
  FaultProfile p;
  p.link.degrade_factor = factor;
  p.seed = seed;
  return p;
}

FaultProfile FaultProfile::flaky_link(double outage_rate, double timeout_ms,
                                      double backoff_ms, uint64_t seed) {
  FaultProfile p;
  p.link.outage_rate = outage_rate;
  p.link.timeout_ms = timeout_ms;
  p.link.backoff_ms = backoff_ms;
  p.seed = seed;
  return p;
}

FaultProfile FaultProfile::chaos(uint64_t seed) {
  FaultProfile p;
  p.compute_jitter = 0.10;
  p.straggler_stage = 0;
  p.straggler_slowdown = 1.5;
  p.link.degrade_factor = 2.0;
  p.link.outage_rate = 0.05;
  p.link.timeout_ms = 1.0;
  p.link.backoff_ms = 0.5;
  p.seed = seed;
  return p;
}

FaultInjector::FaultInjector(const FaultProfile& profile)
    : profile_(profile), rng_(profile.seed) {
  profile_.validate();
  enabled_ = profile_.enabled();
}

double FaultInjector::next_uniform() { return uniform_raw(rng_); }

double FaultInjector::compute_multiplier(int stage) {
  if (!enabled_) return 1.0;
  double mul = 1.0;
  if (profile_.compute_jitter > 0.0) {
    mul += profile_.compute_jitter * next_uniform();
  }
  if (stage == profile_.straggler_stage) mul *= profile_.straggler_slowdown;
  return mul;
}

bool FaultInjector::link_faulty(int boundary) const {
  return profile_.faulty_boundary == -1 || profile_.faulty_boundary == boundary;
}

double FaultInjector::transfer_multiplier(int boundary) const {
  if (!enabled_ || !link_faulty(boundary)) return 1.0;
  return profile_.link.degrade_factor;
}

int FaultInjector::draw_outages(int boundary) {
  if (!enabled_ || profile_.link.outage_rate <= 0.0 || !link_faulty(boundary)) {
    return 0;
  }
  int fails = 0;
  while (fails < profile_.link.max_retries &&
         next_uniform() < profile_.link.outage_rate) {
    ++fails;
  }
  return fails;
}

double FaultInjector::backoff_ms(int attempt) const {
  return profile_.link.backoff_ms *
         static_cast<double>(int64_t{1} << (attempt - 1));
}

bool ReplicaFaultSpec::enabled() const {
  return mtbf_ms > 0.0 || (slow_mtbf_ms > 0.0 && slow_factor > 1.0);
}

void ReplicaFaultSpec::validate() const {
  auto fail_spec = [](const std::string& msg) {
    throw std::invalid_argument("ReplicaFaultSpec: " + msg);
  };
  auto check = [&](double v, const char* name) {
    if (!std::isfinite(v) || v < 0.0) {
      std::ostringstream os;
      os << name << " = " << v << " — must be finite and non-negative";
      fail_spec(os.str());
    }
  };
  check(mtbf_ms, "mtbf_ms");
  check(repair_ms, "repair_ms");
  check(slow_mtbf_ms, "slow_mtbf_ms");
  check(slow_duration_ms, "slow_duration_ms");
  if (!std::isfinite(slow_factor) || slow_factor < 1.0) {
    std::ostringstream os;
    os << "slow_factor = " << slow_factor
       << " — must be >= 1 (faults only lengthen steps)";
    fail_spec(os.str());
  }
  if (slow_mtbf_ms > 0.0 && slow_factor > 1.0 && slow_duration_ms <= 0.0) {
    fail_spec("slow_duration_ms must be > 0 when brown-outs are enabled");
  }
}

ReplicaFaultProcess::ReplicaFaultProcess(const ReplicaFaultSpec& spec)
    : spec_(spec),
      crash_rng_(spec.seed),
      // Splitmix64's odd constant decorrelates the two streams so enabling
      // crashes never re-times the brown-out windows (and vice versa).
      slow_rng_(spec.seed ^ 0x9E3779B97F4A7C15ULL) {
  spec_.validate();
}

double ReplicaFaultProcess::next_exponential(std::mt19937_64& rng,
                                             double mean_ms) {
  // Inverse-CDF on the raw-draw uniform: portable seeded realization.
  return -std::log(1.0 - uniform_raw(rng)) * mean_ms;
}

double ReplicaFaultProcess::draw_crash_after(double from_ms) {
  if (spec_.mtbf_ms <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return from_ms + next_exponential(crash_rng_, spec_.mtbf_ms);
}

double ReplicaFaultProcess::slow_multiplier_at(double start_ms) {
  if (spec_.slow_mtbf_ms <= 0.0 || spec_.slow_factor <= 1.0) return 1.0;
  if (!slow_seeded_) {
    slow_seeded_ = true;
    slow_start_ms_ = next_exponential(slow_rng_, spec_.slow_mtbf_ms);
    slow_end_ms_ = slow_start_ms_ + spec_.slow_duration_ms;
  }
  // Advance past windows that ended before this step starts. Healthy gaps
  // are exponential, windows a fixed length, so the sequence is a renewal
  // process materialized lazily in step-start order.
  while (start_ms >= slow_end_ms_) {
    slow_start_ms_ = slow_end_ms_ + next_exponential(slow_rng_, spec_.slow_mtbf_ms);
    slow_end_ms_ = slow_start_ms_ + spec_.slow_duration_ms;
  }
  return start_ms >= slow_start_ms_ ? spec_.slow_factor : 1.0;
}

}  // namespace actcomp::sim
