#include "sim/pipeline.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/profiler.h"
#include "obs/registry.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "tensor/check.h"

namespace actcomp::sim {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("simulate_pipeline: " + msg);
}

void check_durations(const std::vector<double>& v, const char* name) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i]) || v[i] < 0.0) {
      std::ostringstream os;
      os << name << "[" << i << "] = " << v[i]
         << " — durations must be finite and non-negative";
      fail(os.str());
    }
  }
}

/// One schedule step: run `micro`'s forward or backward for model chunk
/// `chunk` on the stage at hand.
struct Step {
  bool backward;
  int chunk;
  int micro;
};

// Megatron's interleaved-1F1B enumeration: virtual step k walks micro-batch
// groups of size `p` through each of the `v` chunks in turn, so forwards go
// (chunk 0: micros 0..p-1), (chunk 1: micros 0..p-1), ..., then the next
// group of p micros. Backwards mirror it with the chunk order reversed.
int interleave_chunk(int k, int p, int v, bool backward) {
  const int c = (k % (p * v)) / p;
  return backward ? v - 1 - c : c;
}
int interleave_micro(int k, int p, int v) { return (k / (p * v)) * p + k % p; }

/// Program order of stage `s` for the requested schedule.
std::vector<Step> stage_program(int s, int p, int v, int m, ScheduleKind kind) {
  std::vector<Step> prog;
  if (kind == ScheduleKind::kGpipe) {
    for (int j = 0; j < m; ++j) prog.push_back({false, 0, j});
    for (int j = 0; j < m; ++j) prog.push_back({true, 0, j});
  } else if (kind == ScheduleKind::k1F1B) {
    // Warmup forwards, steady 1B1F, drain backwards.
    const int warmup = std::min(m, p - s);
    int next_f = 0, next_b = 0;
    for (; next_f < warmup; ++next_f) prog.push_back({false, 0, next_f});
    while (next_b < m) {
      prog.push_back({true, 0, next_b++});
      if (next_f < m) prog.push_back({false, 0, next_f++});
    }
  } else {
    // Interleaved 1F1B (Megatron virtual pipeline): warmup of
    // (p - s - 1)*2 + (v - 1)*p virtual forwards, then steady
    // one-forward-one-backward, then drain.
    const int total = m * v;
    const int warmup = std::min(total, (p - s - 1) * 2 + (v - 1) * p);
    auto fstep = [&](int k) {
      return Step{false, interleave_chunk(k, p, v, false),
                  interleave_micro(k, p, v)};
    };
    auto bstep = [&](int k) {
      return Step{true, interleave_chunk(k, p, v, true),
                  interleave_micro(k, p, v)};
    };
    for (int k = 0; k < warmup; ++k) prog.push_back(fstep(k));
    for (int k = warmup; k < total; ++k) {
      prog.push_back(fstep(k));
      prog.push_back(bstep(k - warmup));
    }
    for (int k = total - warmup; k < total; ++k) prog.push_back(bstep(k));
  }
  return prog;
}

}  // namespace

void validate_pipeline_inputs(const PipelineCosts& c,
                              const PipelineOptions& o) {
  const size_t p = c.fwd_ms.size();
  std::ostringstream os;
  if (p == 0) fail("fwd_ms is empty — need at least one stage");
  if (c.bwd_ms.size() != p) {
    os << "bwd_ms has " << c.bwd_ms.size() << " entries, expected stages = "
       << p;
    fail(os.str());
  }
  if (c.p2p_fwd_ms.size() != p - 1) {
    os << "p2p_fwd_ms has " << c.p2p_fwd_ms.size()
       << " entries, expected stages - 1 = " << p - 1;
    fail(os.str());
  }
  if (c.p2p_bwd_ms.size() != p - 1) {
    os << "p2p_bwd_ms has " << c.p2p_bwd_ms.size()
       << " entries, expected stages - 1 = " << p - 1;
    fail(os.str());
  }
  if (c.micro_batches < 1) {
    os << "micro_batches = " << c.micro_batches << ", must be >= 1";
    fail(os.str());
  }
  check_durations(c.fwd_ms, "fwd_ms");
  check_durations(c.bwd_ms, "bwd_ms");
  check_durations(c.p2p_fwd_ms, "p2p_fwd_ms");
  check_durations(c.p2p_bwd_ms, "p2p_bwd_ms");
  check_durations({c.p2p_wrap_fwd_ms, c.p2p_wrap_bwd_ms}, "p2p_wrap_ms");
  if (!c.boundary_shape.empty()) {
    if (c.boundary_shape.size() != p - 1) {
      os << "boundary_shape has " << c.boundary_shape.size()
         << " entries, expected stages - 1 = " << p - 1 << " (or empty)";
      fail(os.str());
    }
    for (size_t b = 0; b < c.boundary_shape.size(); ++b) {
      if (c.boundary_shape[b].slices < 1 || c.boundary_shape[b].lanes < 1) {
        os << "boundary_shape[" << b << "] = {slices="
           << c.boundary_shape[b].slices << ", lanes="
           << c.boundary_shape[b].lanes << "} — both must be >= 1";
        fail(os.str());
      }
    }
  }
  o.faults.validate();
  if (o.faults.straggler_stage >= static_cast<int>(p)) {
    os << "faults.straggler_stage = " << o.faults.straggler_stage
       << ", but there are only " << p << " stages";
    fail(os.str());
  }
  if (o.faults.faulty_boundary >= static_cast<int>(p)) {
    os << "faults.faulty_boundary = " << o.faults.faulty_boundary
       << " out of range — boundaries are 0.." << p - 2
       << " and the wrap link is " << p - 1;
    fail(os.str());
  }
  if (o.schedule == ScheduleKind::kInterleaved1F1B) {
    if (o.virtual_stages < 2) {
      os << "interleaved 1F1B needs virtual_stages >= 2, got "
         << o.virtual_stages;
      fail(os.str());
    }
    if (c.micro_batches % static_cast<int>(p) != 0) {
      os << "interleaved 1F1B needs micro_batches divisible by stages, got "
         << c.micro_batches << " % " << p << " != 0";
      fail(os.str());
    }
  } else if (o.virtual_stages != 1) {
    os << "virtual_stages = " << o.virtual_stages
       << " is only valid with ScheduleKind::kInterleaved1F1B";
    fail(os.str());
  }
  if (c.dp.replicas < 1) {
    os << "dp.replicas = " << c.dp.replicas << ", must be >= 1";
    fail(os.str());
  }
  if (!c.dp.grad_allreduce_ms.empty() && c.dp.grad_allreduce_ms.size() != p) {
    os << "dp.grad_allreduce_ms has " << c.dp.grad_allreduce_ms.size()
       << " entries, expected stages = " << p << " (or empty)";
    fail(os.str());
  }
  check_durations(c.dp.grad_allreduce_ms, "dp.grad_allreduce_ms");
}

PipelineTrace simulate_pipeline_traced(const PipelineCosts& costs,
                                       const PipelineOptions& options) {
  validate_pipeline_inputs(costs, options);
  const int p = static_cast<int>(costs.fwd_ms.size());
  const int m = costs.micro_batches;
  const int v = options.schedule == ScheduleKind::kInterleaved1F1B
                    ? options.virtual_stages
                    : 1;

  const int dp_r = costs.dp.replicas;
  const bool dp_active = dp_r > 1 && !costs.dp.grad_allreduce_ms.empty();

  FaultInjector inj(options.faults);

  Engine eng;
  const ExecPolicy stage_policy =
      options.overlap ? ExecPolicy::kReadyOrder : ExecPolicy::kProgramOrder;

  auto idx = [&](int chunk, int stage, int micro) {
    return (static_cast<size_t>(chunk) * static_cast<size_t>(p) +
            static_cast<size_t>(stage)) *
               static_cast<size_t>(m) +
           static_cast<size_t>(micro);
  };

  // Replica 0 keeps full op-id grids for the trace and the breakdown
  // accounting; every replica keeps its backward grid (gradient all-reduce
  // dependencies) and replicas > 0 additionally list their compute ops so
  // the makespan can max over them. With dp.replicas == 1 the loop below
  // runs once and issues exactly the pre-DP construction sequence — same
  // resource ids, op ids, and fault-RNG draw order (the goldens pin this).
  std::vector<int> id_f;
  std::vector<std::vector<int>> rep_id_b(static_cast<size_t>(dp_r));
  std::vector<int> secondary_compute;
  // Realized (fault-adjusted) compute time per stage of replica 0,
  // accumulated in program order. With faults disabled the multiplier is
  // exactly 1.0, so these sums are bit-identical to summing the clean costs.
  std::vector<double> realized_busy(static_cast<size_t>(p), 0.0);
  int backoff_res = -1;

  // Comm op ids are collected alongside their labels so the trace can
  // report them (replica 0 only); fault counters sum over all replicas.
  std::vector<TraceComm> comm_meta;
  std::vector<int> comm_ids;
  int fault_retries = 0;
  double fault_retry_ms = 0.0, fault_backoff_ms = 0.0, fault_wrap_comm = 0.0;
  std::vector<double> fault_boundary_comm(static_cast<size_t>(std::max(0, p - 1)),
                                          0.0);

  for (int rep = 0; rep < dp_r; ++rep) {
    const bool primary = rep == 0;
    std::vector<int> compute(static_cast<size_t>(p));
    for (int s = 0; s < p; ++s) compute[static_cast<size_t>(s)] = eng.add_resource(1, stage_policy);

    // One lane-pool resource per boundary and direction; capacity 0 (no
    // contention) makes a transfer pure dependency delay, matching the
    // original closed-form simulator.
    std::vector<int> link_fwd(static_cast<size_t>(std::max(0, p - 1)));
    std::vector<int> link_bwd = link_fwd;
    for (int b = 0; b + 1 < p; ++b) {
      const int lanes = costs.boundary_shape.empty()
                            ? 0
                            : costs.boundary_shape[static_cast<size_t>(b)].lanes;
      link_fwd[static_cast<size_t>(b)] = eng.add_resource(lanes, ExecPolicy::kReadyOrder);
      link_bwd[static_cast<size_t>(b)] = eng.add_resource(lanes, ExecPolicy::kReadyOrder);
    }
    int wrap_fwd = -1, wrap_bwd = -1;
    if (v > 1) {
      wrap_fwd = eng.add_resource(0, ExecPolicy::kReadyOrder);
      wrap_bwd = eng.add_resource(0, ExecPolicy::kReadyOrder);
    }

    // Compute ops, created in per-stage program order (which is what a
    // kProgramOrder resource executes and a kReadyOrder one prefers).
    std::vector<int> lid_f(static_cast<size_t>(v * p) * static_cast<size_t>(m), -1);
    std::vector<int> lid_b = lid_f;
    for (int s = 0; s < p; ++s) {
      const auto prog = stage_program(s, p, v, m, options.schedule);
      ACTCOMP_ASSERT(prog.size() == static_cast<size_t>(2 * m * v),
                     "stage program must run every op exactly once");
      for (const Step& st : prog) {
        const double dur = (st.backward ? costs.bwd_ms[static_cast<size_t>(s)]
                                        : costs.fwd_ms[static_cast<size_t>(s)]) /
                           static_cast<double>(v) * inj.compute_multiplier(s);
        auto& slot = (st.backward ? lid_b : lid_f)[idx(st.chunk, s, st.micro)];
        ACTCOMP_ASSERT(slot == -1, "duplicate op in stage program");
        slot = eng.add_op(compute[static_cast<size_t>(s)], dur);
        if (primary) {
          realized_busy[static_cast<size_t>(s)] += dur;
        } else {
          secondary_compute.push_back(slot);
        }
      }
    }

    // Backoff delays between outage retries are pure waits — the link is
    // free while a sender backs off — so they live on an unlimited no-op
    // resource, shared across replicas.
    if (primary && inj.enabled()) {
      backoff_res = eng.add_resource(0, ExecPolicy::kReadyOrder);
    }

    // Transfers and dependencies. Under fault injection a transfer becomes:
    // [hung attempt (link, timeout) -> backoff (delay)]* -> transfer (link,
    // degraded duration); only link-occupying ops are traced.
    auto add_transfer = [&](int resource, double dur, int slices, int producer,
                            int consumer, TraceComm label) {
      const double fdur = dur * inj.transfer_multiplier(label.boundary);
      for (int sl = 0; sl < slices; ++sl) {
        label.slice = sl;
        int prev = producer;
        const int fails = inj.draw_outages(label.boundary);
        for (int a = 1; a <= fails; ++a) {
          const int hung = eng.add_op(resource, inj.attempt_timeout_ms());
          eng.add_dep(hung, prev);
          label.attempt = a - 1;
          label.failed = true;
          if (primary) {
            comm_ids.push_back(hung);
            comm_meta.push_back(label);
          }
          const int wait = eng.add_op(backoff_res, inj.backoff_ms(a));
          eng.add_dep(wait, hung);
          prev = wait;
          ++fault_retries;
          fault_retry_ms += inj.attempt_timeout_ms();
          fault_backoff_ms += inj.backoff_ms(a);
        }
        const int cid = eng.add_op(resource, fdur);
        eng.add_dep(cid, prev);
        eng.add_dep(consumer, cid);
        label.attempt = fails;
        label.failed = false;
        if (primary) {
          comm_ids.push_back(cid);
          comm_meta.push_back(label);
        }
        if (inj.enabled()) {
          if (label.wrap) {
            fault_wrap_comm += fdur;
          } else {
            fault_boundary_comm[static_cast<size_t>(label.boundary)] += fdur;
          }
        }
      }
    };

    for (int c = 0; c < v; ++c) {
      for (int s = 0; s < p; ++s) {
        for (int j = 0; j < m; ++j) {
          const int f = lid_f[idx(c, s, j)];
          const int b = lid_b[idx(c, s, j)];
          if (s > 0) {
            const int bd = s - 1;
            const int slices =
                costs.boundary_shape.empty()
                    ? 1
                    : costs.boundary_shape[static_cast<size_t>(bd)].slices;
            add_transfer(link_fwd[static_cast<size_t>(bd)],
                         costs.p2p_fwd_ms[static_cast<size_t>(bd)], slices,
                         lid_f[idx(c, s - 1, j)], f,
                         {bd, false, 0, c, j, false, 0.0, 0.0});
          } else if (c > 0) {
            add_transfer(wrap_fwd, costs.p2p_wrap_fwd_ms, 1,
                         lid_f[idx(c - 1, p - 1, j)], f,
                         {p - 1, true, 0, c, j, false, 0.0, 0.0});
          }
          if (s < p - 1) {
            const int slices =
                costs.boundary_shape.empty()
                    ? 1
                    : costs.boundary_shape[static_cast<size_t>(s)].slices;
            add_transfer(link_bwd[static_cast<size_t>(s)],
                         costs.p2p_bwd_ms[static_cast<size_t>(s)], slices,
                         lid_b[idx(c, s + 1, j)], b,
                         {s, false, 0, c, j, true, 0.0, 0.0});
          } else if (c < v - 1) {
            add_transfer(wrap_bwd, costs.p2p_wrap_bwd_ms, 1,
                         lid_b[idx(c + 1, 0, j)], b,
                         {p - 1, true, 0, c, j, true, 0.0, 0.0});
          } else {
            // Loss turnaround: the last chunk's backward follows its forward.
            eng.add_dep(b, f);
          }
        }
      }
    }

    if (primary) id_f = std::move(lid_f);
    rep_id_b[static_cast<size_t>(rep)] = std::move(lid_b);
  }
  const std::vector<int>& id_b = rep_id_b[0];

  // Gradient all-reduce tail: one op per (stage, model chunk) on a per-stage
  // capacity-1 program-order DP link (all-reduces launch in a fixed bucket
  // order, as NCCL does), depending on the bucket's backwards in every
  // replica — every micro-batch's backward for that (stage, chunk), since a
  // ready-order stage may realize them out of program order.
  std::vector<int> ar_ids;
  double dp_comm_total = 0.0;
  if (dp_active) {
    std::vector<int> dp_link(static_cast<size_t>(p));
    for (int s = 0; s < p; ++s) {
      dp_link[static_cast<size_t>(s)] = eng.add_resource(1, ExecPolicy::kProgramOrder);
    }
    std::vector<int> sentinel(static_cast<size_t>(dp_r), -1);
    if (!costs.dp.overlap_grads) {
      // Synchronous DP: one zero-duration "backward pass done" sentinel per
      // replica gates every all-reduce.
      const int sync_res = eng.add_resource(0, ExecPolicy::kReadyOrder);
      for (int rep = 0; rep < dp_r; ++rep) {
        const int sen = eng.add_op(sync_res, 0.0);
        for (int bid : rep_id_b[static_cast<size_t>(rep)]) eng.add_dep(sen, bid);
        sentinel[static_cast<size_t>(rep)] = sen;
      }
    }
    ar_ids.reserve(static_cast<size_t>(p) * static_cast<size_t>(v));
    for (int s = 0; s < p; ++s) {
      for (int c = 0; c < v; ++c) {
        const double dur =
            costs.dp.grad_allreduce_ms[static_cast<size_t>(s)] /
            static_cast<double>(v);
        const int ar = eng.add_op(dp_link[static_cast<size_t>(s)], dur);
        for (int rep = 0; rep < dp_r; ++rep) {
          if (costs.dp.overlap_grads) {
            for (int j = 0; j < m; ++j) {
              eng.add_dep(ar, rep_id_b[static_cast<size_t>(rep)][idx(c, s, j)]);
            }
          } else {
            eng.add_dep(ar, sentinel[static_cast<size_t>(rep)]);
          }
        }
        ar_ids.push_back(ar);
        dp_comm_total += dur;
      }
    }
  }

  std::vector<OpTiming> times;
  {
    ACTCOMP_PROFILE("sim.engine.run");
    times = eng.run();
  }
  if (fault_retries > 0) {
    obs::Registry& reg = obs::Registry::instance();
    reg.counter("sim.fault.retries").add(fault_retries);
    reg.histogram("sim.fault.retry_ms").observe(fault_retry_ms);
    reg.histogram("sim.fault.backoff_ms").observe(fault_backoff_ms);
  }

  PipelineTrace trace;
  // Compute ops: iterate in id (creation) order so per-stage busy sums add
  // in program order, then sort into realized execution order.
  PipelineResult& r = trace.result;
  r.stage_busy_ms = realized_busy;
  r.fault_retries = fault_retries;
  r.fault_retry_ms = fault_retry_ms;
  r.fault_backoff_ms = fault_backoff_ms;
  for (int c = 0; c < v; ++c) {
    for (int s = 0; s < p; ++s) {
      for (int j = 0; j < m; ++j) {
        for (const bool backward : {false, true}) {
          const int id = (backward ? id_b : id_f)[idx(c, s, j)];
          const OpTiming& t = times[static_cast<size_t>(id)];
          trace.ops.push_back({s, j, backward, t.start_ms, t.end_ms, c});
        }
      }
    }
  }
  std::sort(trace.ops.begin(), trace.ops.end(),
            [](const TraceOp& a, const TraceOp& b) {
              if (a.start_ms != b.start_ms) return a.start_ms < b.start_ms;
              if (a.stage != b.stage) return a.stage < b.stage;
              if (a.chunk != b.chunk) return a.chunk < b.chunk;
              if (a.micro != b.micro) return a.micro < b.micro;
              return a.backward < b.backward;
            });
  for (size_t i = 0; i < comm_ids.size(); ++i) {
    TraceComm cm = comm_meta[i];
    cm.start_ms = times[static_cast<size_t>(comm_ids[i])].start_ms;
    cm.end_ms = times[static_cast<size_t>(comm_ids[i])].end_ms;
    trace.comms.push_back(cm);
  }
  std::sort(trace.comms.begin(), trace.comms.end(),
            [](const TraceComm& a, const TraceComm& b) {
              if (a.start_ms != b.start_ms) return a.start_ms < b.start_ms;
              if (a.boundary != b.boundary) return a.boundary < b.boundary;
              if (a.micro != b.micro) return a.micro < b.micro;
              return a.slice < b.slice;
            });

  // Aggregates: same accounting as the original closed-loop simulator (busy
  // time was accumulated at op creation, in the same program order).
  r.makespan_ms = 0.0;
  for (int s = 0; s < p; ++s) {
    const auto prog = stage_program(s, p, v, m, options.schedule);
    for (const Step& st : prog) {
      const int id = (st.backward ? id_b : id_f)[idx(st.chunk, s, st.micro)];
      r.makespan_ms = std::max(r.makespan_ms, times[static_cast<size_t>(id)].end_ms);
    }
  }
  // Other replicas' compute and the gradient all-reduce tail extend the
  // iteration; with dp.replicas == 1 both lists are empty.
  for (int id : secondary_compute) {
    r.makespan_ms = std::max(r.makespan_ms, times[static_cast<size_t>(id)].end_ms);
  }
  for (int id : ar_ids) {
    r.makespan_ms = std::max(r.makespan_ms, times[static_cast<size_t>(id)].end_ms);
  }
  r.dp_replicas = dp_r;
  r.dp_comm_ms = dp_comm_total;
  r.stage_idle_ms.resize(static_cast<size_t>(p));
  for (int s = 0; s < p; ++s) {
    r.stage_idle_ms[static_cast<size_t>(s)] =
        r.makespan_ms - r.stage_busy_ms[static_cast<size_t>(s)];
  }
  r.boundary_comm_ms.resize(static_cast<size_t>(std::max(0, p - 1)));
  if (inj.enabled()) {
    // Realized (degraded) durations of the successful transfers; hung
    // attempts are reported separately via fault_retry_ms.
    r.boundary_comm_ms = fault_boundary_comm;
    r.wrap_comm_ms = fault_wrap_comm;
  } else {
    for (int b = 0; b + 1 < p; ++b) {
      const int slices = costs.boundary_shape.empty()
                             ? 1
                             : costs.boundary_shape[static_cast<size_t>(b)].slices;
      r.boundary_comm_ms[static_cast<size_t>(b)] =
          static_cast<double>(m * v * slices) *
          (costs.p2p_fwd_ms[static_cast<size_t>(b)] +
           costs.p2p_bwd_ms[static_cast<size_t>(b)]);
    }
    r.wrap_comm_ms = static_cast<double>(m * (v - 1)) *
                     (costs.p2p_wrap_fwd_ms + costs.p2p_wrap_bwd_ms);
  }
  // "Waiting & pipeline comm": mean per-stage idle plus the mean boundary
  // transfer burden. For p == 1 both terms are zero.
  double idle_sum = 0.0;
  for (double x : r.stage_idle_ms) idle_sum += x;
  double comm_sum = 0.0;
  for (double x : r.boundary_comm_ms) comm_sum += x;
  r.waiting_and_pipe_ms =
      idle_sum / static_cast<double>(p) +
      (p > 1 ? comm_sum / static_cast<double>(p - 1) : 0.0);
  return trace;
}

PipelineTrace simulate_pipeline_traced(const PipelineCosts& costs,
                                       ScheduleKind kind) {
  return simulate_pipeline_traced(costs, PipelineOptions{kind, 1, false});
}

PipelineResult simulate_pipeline(const PipelineCosts& costs,
                                 const PipelineOptions& options) {
  return simulate_pipeline_traced(costs, options).result;
}

PipelineResult simulate_pipeline(const PipelineCosts& costs, ScheduleKind kind) {
  return simulate_pipeline_traced(costs, kind).result;
}

}  // namespace actcomp::sim
