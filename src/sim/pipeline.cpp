#include "sim/pipeline.h"

#include <algorithm>
#include <limits>

#include "sim/trace.h"
#include "tensor/check.h"

namespace actcomp::sim {

namespace {

struct Op {
  bool backward;
  int micro;       // micro-batch index
  double duration;
};

/// Per-stage op sequence for the requested schedule.
std::vector<std::vector<Op>> build_sequences(const PipelineCosts& c,
                                             ScheduleKind kind) {
  const int p = static_cast<int>(c.fwd_ms.size());
  const int m = c.micro_batches;
  std::vector<std::vector<Op>> seq(static_cast<size_t>(p));
  for (int s = 0; s < p; ++s) {
    auto& ops = seq[static_cast<size_t>(s)];
    const double tf = c.fwd_ms[static_cast<size_t>(s)];
    const double tb = c.bwd_ms[static_cast<size_t>(s)];
    if (kind == ScheduleKind::kGpipe) {
      for (int j = 0; j < m; ++j) ops.push_back({false, j, tf});
      for (int j = 0; j < m; ++j) ops.push_back({true, j, tb});
    } else {  // 1F1B: warmup forwards, steady 1B1F, drain backwards
      const int warmup = std::min(m, p - s);
      int next_f = 0, next_b = 0;
      for (; next_f < warmup; ++next_f) ops.push_back({false, next_f, tf});
      while (next_b < m) {
        ops.push_back({true, next_b++, tb});
        if (next_f < m) ops.push_back({false, next_f++, tf});
      }
    }
  }
  return seq;
}

}  // namespace

PipelineTrace simulate_pipeline_traced(const PipelineCosts& costs,
                                       ScheduleKind kind) {
  const int p = static_cast<int>(costs.fwd_ms.size());
  const int m = costs.micro_batches;
  ACTCOMP_CHECK(p >= 1 && m >= 1, "pipeline needs >= 1 stage and micro-batch");
  ACTCOMP_CHECK(costs.bwd_ms.size() == static_cast<size_t>(p),
                "bwd_ms size mismatch");
  ACTCOMP_CHECK(costs.p2p_fwd_ms.size() == static_cast<size_t>(p - 1) &&
                    costs.p2p_bwd_ms.size() == static_cast<size_t>(p - 1),
                "boundary cost arrays must have stages-1 entries");

  const auto seq = build_sequences(costs, kind);

  constexpr double kUnset = -1.0;
  // end_f[s][j], end_b[s][j]
  std::vector<std::vector<double>> end_f(
      static_cast<size_t>(p), std::vector<double>(static_cast<size_t>(m), kUnset));
  std::vector<std::vector<double>> end_b = end_f;
  std::vector<size_t> cursor(static_cast<size_t>(p), 0);
  std::vector<double> stage_clock(static_cast<size_t>(p), 0.0);

  PipelineTrace trace;

  // Dependency-driven execution: repeatedly run any stage whose next op's
  // inputs have arrived. The op orders within stages are fixed, so this is a
  // deterministic list scheduling; the loop terminates because every pass
  // retires at least one op (schedules are deadlock-free by construction —
  // enforced by the progress check below).
  int remaining = 0;
  for (const auto& ops : seq) remaining += static_cast<int>(ops.size());
  while (remaining > 0) {
    bool progressed = false;
    for (int s = 0; s < p; ++s) {
      auto& cur = cursor[static_cast<size_t>(s)];
      if (cur >= seq[static_cast<size_t>(s)].size()) continue;
      const Op& op = seq[static_cast<size_t>(s)][cur];
      double ready = 0.0;
      bool deps_ok = true;
      if (!op.backward) {
        if (s > 0) {
          const double dep = end_f[static_cast<size_t>(s - 1)][static_cast<size_t>(op.micro)];
          if (dep == kUnset) {
            deps_ok = false;
          } else {
            ready = dep + costs.p2p_fwd_ms[static_cast<size_t>(s - 1)];
          }
        }
      } else {
        if (s < p - 1) {
          const double dep = end_b[static_cast<size_t>(s + 1)][static_cast<size_t>(op.micro)];
          if (dep == kUnset) {
            deps_ok = false;
          } else {
            ready = dep + costs.p2p_bwd_ms[static_cast<size_t>(s)];
          }
        } else {
          const double dep = end_f[static_cast<size_t>(s)][static_cast<size_t>(op.micro)];
          if (dep == kUnset) {
            deps_ok = false;
          } else {
            ready = dep;
          }
        }
      }
      if (!deps_ok) continue;
      const double start = std::max(stage_clock[static_cast<size_t>(s)], ready);
      const double end = start + op.duration;
      stage_clock[static_cast<size_t>(s)] = end;
      if (op.backward) {
        end_b[static_cast<size_t>(s)][static_cast<size_t>(op.micro)] = end;
      } else {
        end_f[static_cast<size_t>(s)][static_cast<size_t>(op.micro)] = end;
      }
      trace.ops.push_back({s, op.micro, op.backward, start, end});
      ++cur;
      --remaining;
      progressed = true;
    }
    ACTCOMP_ASSERT(progressed, "pipeline schedule deadlocked");
  }

  PipelineResult& r = trace.result;
  r.makespan_ms = *std::max_element(stage_clock.begin(), stage_clock.end());
  r.stage_busy_ms.resize(static_cast<size_t>(p), 0.0);
  for (int s = 0; s < p; ++s) {
    for (const Op& op : seq[static_cast<size_t>(s)]) {
      r.stage_busy_ms[static_cast<size_t>(s)] += op.duration;
    }
  }
  r.stage_idle_ms.resize(static_cast<size_t>(p));
  for (int s = 0; s < p; ++s) {
    r.stage_idle_ms[static_cast<size_t>(s)] =
        r.makespan_ms - r.stage_busy_ms[static_cast<size_t>(s)];
  }
  r.boundary_comm_ms.resize(static_cast<size_t>(std::max(0, p - 1)));
  for (int b = 0; b + 1 < p; ++b) {
    r.boundary_comm_ms[static_cast<size_t>(b)] =
        static_cast<double>(m) * (costs.p2p_fwd_ms[static_cast<size_t>(b)] +
                                  costs.p2p_bwd_ms[static_cast<size_t>(b)]);
  }
  // "Waiting & pipeline comm": mean per-stage idle plus the mean boundary
  // transfer burden. For p == 1 both terms are zero.
  double idle_sum = 0.0;
  for (double v : r.stage_idle_ms) idle_sum += v;
  double comm_sum = 0.0;
  for (double v : r.boundary_comm_ms) comm_sum += v;
  r.waiting_and_pipe_ms =
      idle_sum / static_cast<double>(p) +
      (p > 1 ? comm_sum / static_cast<double>(p - 1) : 0.0);
  return trace;
}

PipelineResult simulate_pipeline(const PipelineCosts& costs, ScheduleKind kind) {
  return simulate_pipeline_traced(costs, kind).result;
}

}  // namespace actcomp::sim
