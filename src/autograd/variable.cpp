#include "autograd/variable.h"

#include <unordered_map>
#include <unordered_set>

#include "obs/profiler.h"
#include "tensor/check.h"
#include "tensor/ops.h"

namespace actcomp::autograd {

namespace detail {

void Node::accumulate(const tensor::Tensor& g) {
  ACTCOMP_CHECK(g.shape() == value.shape(),
                "gradient shape " << g.shape().str() << " != value shape "
                                  << value.shape().str() << " in op '" << op << "'");
  if (!has_grad) {
    grad = g.clone();
    has_grad = true;
  } else {
    auto dg = grad.data();
    const auto ds = g.data();
    for (size_t i = 0; i < dg.size(); ++i) dg[i] += ds[i];
  }
}

}  // namespace detail

namespace {
thread_local bool g_grad_enabled = true;
}

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }
bool NoGradGuard::grad_enabled() { return g_grad_enabled; }

Variable Variable::leaf(tensor::Tensor value, bool requires_grad) {
  auto node = std::make_shared<detail::Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  node->op = "leaf";
  return Variable(std::move(node));
}

Variable Variable::make(tensor::Tensor value, std::vector<Variable> parents,
                        std::function<void(detail::Node&)> backward_fn,
                        std::string op_name) {
  auto node = std::make_shared<detail::Node>();
  node->value = std::move(value);
  node->op = std::move(op_name);
  bool any_grad = false;
  for (const Variable& p : parents) {
    ACTCOMP_CHECK(p.defined(), "undefined parent in op '" << node->op << "'");
    any_grad = any_grad || p.requires_grad();
  }
  if (any_grad && NoGradGuard::grad_enabled()) {
    node->requires_grad = true;
    node->parents.reserve(parents.size());
    for (const Variable& p : parents) node->parents.push_back(p.node());
    node->backward_fn = std::move(backward_fn);
  }
  return Variable(std::move(node));
}

const tensor::Tensor& Variable::value() const {
  ACTCOMP_CHECK(defined(), "value() on undefined Variable");
  return node_->value;
}

tensor::Tensor& Variable::mutable_value() {
  ACTCOMP_CHECK(defined(), "mutable_value() on undefined Variable");
  return node_->value;
}

bool Variable::requires_grad() const {
  ACTCOMP_CHECK(defined(), "requires_grad() on undefined Variable");
  return node_->requires_grad;
}

const tensor::Tensor& Variable::grad() const {
  ACTCOMP_CHECK(defined() && node_->has_grad,
                "grad() before backward produced one");
  return node_->grad;
}

bool Variable::has_grad() const { return defined() && node_->has_grad; }

void Variable::zero_grad() {
  ACTCOMP_CHECK(defined(), "zero_grad() on undefined Variable");
  node_->has_grad = false;
  node_->grad = tensor::Tensor();
}

const std::string& Variable::op_name() const {
  ACTCOMP_CHECK(defined(), "op_name() on undefined Variable");
  return node_->op;
}

Variable Variable::detach() const {
  return leaf(value(), /*requires_grad=*/false);
}

void Variable::backward() const {
  ACTCOMP_CHECK(defined(), "backward() on undefined Variable");
  ACTCOMP_CHECK(value().numel() == 1,
                "backward() without seed requires a scalar, got "
                    << value().shape().str());
  backward(tensor::Tensor::full(value().shape(), 1.0f));
}

void Variable::backward(const tensor::Tensor& seed) const {
  ACTCOMP_PROFILE("autograd.backward");
  ACTCOMP_CHECK(defined(), "backward() on undefined Variable");
  ACTCOMP_CHECK(node_->requires_grad,
                "backward() from a node that does not require grad");

  // Iterative post-order DFS to build reverse topological order.
  std::vector<detail::Node*> topo;
  std::unordered_set<detail::Node*> visited;
  struct Frame {
    detail::Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({node_.get(), 0});
  visited.insert(node_.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      detail::Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && !visited.count(p)) {
        visited.insert(p);
        stack.push_back({p, 0});
      }
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }

  node_->accumulate(seed);
  // topo is post-order (parents before children); walk it backwards so each
  // node's gradient is final before its backward_fn distributes it.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    detail::Node* n = *it;
    if (n->backward_fn && n->has_grad) n->backward_fn(*n);
  }
}

}  // namespace actcomp::autograd
