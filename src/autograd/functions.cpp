#include "autograd/functions.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/threadpool.h"
#include "tensor/check.h"
#include "tensor/kernels/kernel_table.h"
#include "tensor/ops.h"

namespace actcomp::autograd {

namespace ts = actcomp::tensor;
using detail::Node;

namespace {

// Chunking for parallel backward kernels; mirrors the grains in tensor/ops.
constexpr int64_t kEwGrain = 1 << 13;

int64_t row_grain(int64_t cols) {
  return std::max<int64_t>(1, kEwGrain / std::max<int64_t>(1, cols));
}

// Sum `g` (shaped like the broadcast output) down to `target` (the smaller,
// right-aligned operand shape).
ts::Tensor reduce_to_shape(const ts::Tensor& g, const ts::Shape& target) {
  if (g.shape() == target) return g;
  ts::Tensor out{target};
  const auto dg = g.data();
  auto dout = out.data();
  const size_t nb = static_cast<size_t>(target.numel());
  ACTCOMP_ASSERT(nb > 0 && dg.size() % nb == 0, "broadcast reduce mismatch");
  for (size_t i = 0; i < dg.size(); ++i) dout[i % nb] += dg[i];
  return out;
}

}  // namespace

Variable add(const Variable& a, const Variable& b) {
  ts::Tensor out = ts::add(a.value(), b.value());
  return Variable::make(
      std::move(out), {a, b},
      [an = a.node(), bn = b.node()](Node& n) {
        if (an->requires_grad) an->accumulate(n.grad);
        if (bn->requires_grad) bn->accumulate(reduce_to_shape(n.grad, bn->value.shape()));
      },
      "add");
}

Variable sub(const Variable& a, const Variable& b) {
  ts::Tensor out = ts::sub(a.value(), b.value());
  return Variable::make(
      std::move(out), {a, b},
      [an = a.node(), bn = b.node()](Node& n) {
        if (an->requires_grad) an->accumulate(n.grad);
        if (bn->requires_grad) {
          bn->accumulate(reduce_to_shape(ts::neg(n.grad), bn->value.shape()));
        }
      },
      "sub");
}

Variable mul(const Variable& a, const Variable& b) {
  ts::Tensor out = ts::mul(a.value(), b.value());
  return Variable::make(
      std::move(out), {a, b},
      [an = a.node(), bn = b.node()](Node& n) {
        if (an->requires_grad) an->accumulate(ts::mul(n.grad, bn->value));
        if (bn->requires_grad) {
          bn->accumulate(
              reduce_to_shape(ts::mul(n.grad, an->value), bn->value.shape()));
        }
      },
      "mul");
}

Variable mul_scalar(const Variable& a, float s) {
  return Variable::make(
      ts::mul_scalar(a.value(), s), {a},
      [an = a.node(), s](Node& n) { an->accumulate(ts::mul_scalar(n.grad, s)); },
      "mul_scalar");
}

Variable add_scalar(const Variable& a, float s) {
  return Variable::make(
      ts::add_scalar(a.value(), s), {a},
      [an = a.node()](Node& n) { an->accumulate(n.grad); }, "add_scalar");
}

Variable matmul(const Variable& a, const Variable& b) {
  ts::Tensor out = ts::matmul(a.value(), b.value());
  const int ra = a.value().rank();
  const int rb = b.value().rank();
  return Variable::make(
      std::move(out), {a, b},
      [an = a.node(), bn = b.node(), ra, rb](Node& n) {
        const ts::Tensor& g = n.grad;
        if (ra == 2 && rb == 2) {
          if (an->requires_grad)
            an->accumulate(ts::matmul2d(g, ts::transpose_last2(bn->value)));
          if (bn->requires_grad)
            bn->accumulate(ts::matmul2d(ts::transpose_last2(an->value), g));
        } else if (ra == 3 && rb == 2) {
          const int64_t B = an->value.dim(0), m = an->value.dim(1),
                        k = an->value.dim(2);
          const int64_t nn = bn->value.dim(1);
          ts::Tensor g2 = g.reshape(ts::Shape{B * m, nn});
          if (an->requires_grad) {
            an->accumulate(ts::matmul2d(g2, ts::transpose_last2(bn->value))
                               .reshape(ts::Shape{B, m, k}));
          }
          if (bn->requires_grad) {
            ts::Tensor a2 = an->value.reshape(ts::Shape{B * m, k});
            bn->accumulate(ts::matmul2d(ts::transpose_last2(a2), g2));
          }
        } else {  // 3x3 batched
          if (an->requires_grad)
            an->accumulate(ts::matmul(g, ts::transpose_last2(bn->value)));
          if (bn->requires_grad)
            bn->accumulate(ts::matmul(ts::transpose_last2(an->value), g));
        }
      },
      "matmul");
}

Variable reshape(const Variable& a, ts::Shape shape) {
  ts::Tensor out = a.value().reshape(shape);
  return Variable::make(
      std::move(out), {a},
      [an = a.node()](Node& n) {
        an->accumulate(n.grad.reshape(an->value.shape()));
      },
      "reshape");
}

Variable permute(const Variable& a, const std::vector<int>& axes) {
  ts::Tensor out = ts::permute(a.value(), axes);
  std::vector<int> inverse(axes.size());
  for (size_t i = 0; i < axes.size(); ++i) {
    inverse[static_cast<size_t>(axes[i])] = static_cast<int>(i);
  }
  return Variable::make(
      std::move(out), {a},
      [an = a.node(), inverse](Node& n) {
        an->accumulate(ts::permute(n.grad, inverse));
      },
      "permute");
}

Variable transpose_last2(const Variable& a) {
  const int r = a.value().rank();
  std::vector<int> axes(static_cast<size_t>(r));
  for (int i = 0; i < r; ++i) axes[static_cast<size_t>(i)] = i;
  std::swap(axes[axes.size() - 1], axes[axes.size() - 2]);
  return permute(a, axes);
}

Variable concat_last(const std::vector<Variable>& parts) {
  ACTCOMP_CHECK(!parts.empty(), "concat_last of zero variables");
  std::vector<ts::Tensor> values;
  values.reserve(parts.size());
  std::vector<int64_t> widths;
  for (const Variable& p : parts) {
    values.push_back(p.value());
    widths.push_back(p.value().dim(-1));
  }
  ts::Tensor out = ts::concat_last(values);
  return Variable::make(
      std::move(out), parts,
      [parents = parts, widths](Node& n) {
        int64_t off = 0;
        for (size_t i = 0; i < parents.size(); ++i) {
          auto pn = parents[i].node();
          if (pn->requires_grad) {
            pn->accumulate(ts::slice_last(n.grad, off, widths[i]));
          }
          off += widths[i];
        }
      },
      "concat_last");
}

Variable slice_last(const Variable& a, int64_t start, int64_t len) {
  ts::Tensor out = ts::slice_last(a.value(), start, len);
  return Variable::make(
      std::move(out), {a},
      [an = a.node(), start, len](Node& n) {
        ts::Tensor full{an->value.shape()};
        const int64_t cols = an->value.dim(-1);
        const int64_t rows = cols == 0 ? 0 : an->value.numel() / cols;
        auto df = full.data();
        const auto dg = n.grad.data();
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < len; ++c) {
            df[static_cast<size_t>(r * cols + start + c)] =
                dg[static_cast<size_t>(r * len + c)];
          }
        }
        an->accumulate(full);
      },
      "slice_last");
}

Variable gelu(const Variable& a) {
  return Variable::make(
      ts::gelu(a.value()), {a},
      [an = a.node()](Node& n) {
        an->accumulate(ts::mul(n.grad, ts::gelu_grad(an->value)));
      },
      "gelu");
}

Variable relu(const Variable& a) {
  return Variable::make(
      ts::relu(a.value()), {a},
      [an = a.node()](Node& n) {
        ts::Tensor g = n.grad.clone();
        auto dg = g.data();
        const auto dx = an->value.data();
        core::parallel_for(0, static_cast<int64_t>(dg.size()), kEwGrain,
                           [&](int64_t b, int64_t e) {
                             for (int64_t i = b; i < e; ++i) {
                               if (dx[static_cast<size_t>(i)] <= 0.0f) {
                                 dg[static_cast<size_t>(i)] = 0.0f;
                               }
                             }
                           });
        an->accumulate(g);
      },
      "relu");
}

Variable tanh(const Variable& a) {
  ts::Tensor out = ts::tanh(a.value());
  return Variable::make(
      out, {a},
      [an = a.node(), out](Node& n) {
        ts::Tensor g{out.shape()};
        auto dg = g.data();
        const auto dt = out.data();
        const auto dn = n.grad.data();
        core::parallel_for(0, static_cast<int64_t>(dg.size()), kEwGrain,
                           [&](int64_t b, int64_t e) {
                             for (int64_t idx = b; idx < e; ++idx) {
                               const size_t i = static_cast<size_t>(idx);
                               dg[i] = dn[i] * (1.0f - dt[i] * dt[i]);
                             }
                           });
        an->accumulate(g);
      },
      "tanh");
}

Variable sigmoid(const Variable& a) {
  ts::Tensor out = ts::sigmoid(a.value());
  return Variable::make(
      out, {a},
      [an = a.node(), out](Node& n) {
        ts::Tensor g{out.shape()};
        auto dg = g.data();
        const auto ds = out.data();
        const auto dn = n.grad.data();
        core::parallel_for(0, static_cast<int64_t>(dg.size()), kEwGrain,
                           [&](int64_t b, int64_t e) {
                             for (int64_t idx = b; idx < e; ++idx) {
                               const size_t i = static_cast<size_t>(idx);
                               dg[i] = dn[i] * ds[i] * (1.0f - ds[i]);
                             }
                           });
        an->accumulate(g);
      },
      "sigmoid");
}

Variable bias_act(const Variable& x, const Variable& b, Act act) {
  if (act == Act::kNone) return add(x, b);
  const ts::Tensor& xv = x.value();
  const ts::Tensor& bv = b.value();
  {
    // Same right-aligned broadcast contract as add().
    const int off = xv.rank() - bv.rank();
    bool aligned = off >= 0;
    for (int i = 0; aligned && i < bv.rank(); ++i) {
      aligned = bv.dim(i) == xv.dim(i + off);
    }
    ACTCOMP_CHECK(aligned, "bias_act: shape " << bv.shape().str()
                               << " does not right-align with "
                               << xv.shape().str());
  }

  ts::Tensor pre;
  ts::Tensor out;
  if (act == Act::kGelu) {
    // gelu's tanh body stays scalar (libm), so the fusion is tape-level
    // only: the exact ts::add and ts::gelu kernels run, under one node.
    pre = ts::add(xv, bv);
    out = ts::gelu(pre);
  } else {  // Act::kRelu — one pass writes pre (kept for backward) and out.
    pre = ts::Tensor{xv.shape()};
    out = ts::Tensor{xv.shape()};
    const auto dx = xv.data();
    const auto db = bv.data();
    auto dp = pre.data();
    auto dout = out.data();
    const int64_t nb = bv.numel();
    const int64_t n = static_cast<int64_t>(dx.size());
    ACTCOMP_CHECK(nb > 0 || n == 0, "bias_act: empty broadcast operand");
    const auto& kt = ts::kernels::active_kernels();
    core::parallel_for(0, n, kEwGrain, [&](int64_t lo, int64_t hi) {
      kt.ew_bias_relu(dx.data(), db.data(), dp.data(), dout.data(), lo, hi, nb);
    });
  }

  const bool is_relu = act == Act::kRelu;
  return Variable::make(
      std::move(out), {x, b},
      [xn = x.node(), bn = b.node(), pre, is_relu](Node& n) {
        // Replicates the composition's backward byte for byte: the
        // activation's vjp lands on the pre-activation, then the bias takes
        // the broadcast-reduced copy.
        ts::Tensor gy;
        if (is_relu) {
          gy = n.grad.clone();
          auto dg = gy.data();
          const auto dp = pre.data();
          core::parallel_for(0, static_cast<int64_t>(dg.size()), kEwGrain,
                             [&](int64_t b0, int64_t e0) {
                               for (int64_t i = b0; i < e0; ++i) {
                                 if (dp[static_cast<size_t>(i)] <= 0.0f) {
                                   dg[static_cast<size_t>(i)] = 0.0f;
                                 }
                               }
                             });
        } else {
          gy = ts::mul(n.grad, ts::gelu_grad(pre));
        }
        if (xn->requires_grad) xn->accumulate(gy);
        if (bn->requires_grad) {
          bn->accumulate(reduce_to_shape(gy, bn->value.shape()));
        }
      },
      "bias_act");
}

Variable layernorm(const Variable& x, const Variable& gamma, const Variable& beta,
                   float eps) {
  const ts::Tensor& xv = x.value();
  const int64_t h = xv.dim(-1);
  ACTCOMP_CHECK(gamma.value().shape() == ts::Shape{h} &&
                    beta.value().shape() == ts::Shape{h},
                "layernorm affine params must be [" << h << "]");
  const auto mo = ts::row_moments(xv, eps);
  const int64_t rows = h == 0 ? 0 : xv.numel() / h;

  ts::Tensor xhat{xv.shape()};
  {
    const auto dx = xv.data();
    auto dh = xhat.data();
    const auto dm = mo.mean.data();
    const auto dr = mo.rstd.data();
    const auto& kt = ts::kernels::active_kernels();
    core::parallel_for(0, rows, row_grain(h), [&](int64_t r0, int64_t r1) {
      kt.ln_xhat(dx.data(), dm.data(), dr.data(), dh.data(), r0, r1, h);
    });
  }
  ts::Tensor out = ts::add(ts::mul(xhat, gamma.value()), beta.value());

  return Variable::make(
      std::move(out), {x, gamma, beta},
      [xn = x.node(), gn = gamma.node(), bn = beta.node(), xhat, rstd = mo.rstd,
       rows, h](Node& n) {
        const auto dg = n.grad.data();
        const auto dh = xhat.data();
        if (gn->requires_grad) {
          ts::Tensor ggamma{ts::Shape{h}};
          auto d = ggamma.data();
          // Column-parallel with the row walk kept ascending per column, so
          // each gamma element sees the exact same addition order as the
          // old row-major loop nest.
          core::parallel_for(0, h, row_grain(rows), [&](int64_t c0, int64_t c1) {
            for (int64_t c = c0; c < c1; ++c) {
              float s = 0.0f;
              for (int64_t r = 0; r < rows; ++r) {
                const size_t i = static_cast<size_t>(r * h + c);
                s += dg[i] * dh[i];
              }
              d[static_cast<size_t>(c)] = s;
            }
          });
          gn->accumulate(ggamma);
        }
        if (bn->requires_grad) bn->accumulate(ts::sum_to_last(n.grad));
        if (xn->requires_grad) {
          ts::Tensor gx{xn->value.shape()};
          auto dx = gx.data();
          const auto dgam = gn->value.data();
          const auto drs = rstd.data();
          core::parallel_for(0, rows, row_grain(h), [&](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; ++r) {
              // dy = g * gamma;  dx = rstd * (dy - mean(dy) - xhat * mean(dy*xhat))
              double s1 = 0.0, s2 = 0.0;
              for (int64_t c = 0; c < h; ++c) {
                const size_t i = static_cast<size_t>(r * h + c);
                const float dy = dg[i] * dgam[static_cast<size_t>(c)];
                s1 += dy;
                s2 += static_cast<double>(dy) * dh[i];
              }
              const float m1 = static_cast<float>(s1 / static_cast<double>(h));
              const float m2 = static_cast<float>(s2 / static_cast<double>(h));
              const float rs = drs[static_cast<size_t>(r)];
              for (int64_t c = 0; c < h; ++c) {
                const size_t i = static_cast<size_t>(r * h + c);
                const float dy = dg[i] * dgam[static_cast<size_t>(c)];
                dx[i] = rs * (dy - m1 - dh[i] * m2);
              }
            }
          });
          xn->accumulate(gx);
        }
      },
      "layernorm");
}

Variable softmax_last(const Variable& a) {
  ts::Tensor out = ts::softmax_last(a.value());
  return Variable::make(
      out, {a},
      [an = a.node(), out](Node& n) {
        // ds = s * (g - sum(g * s, last))
        const int64_t cols = out.dim(-1);
        const int64_t rows = cols == 0 ? 0 : out.numel() / cols;
        ts::Tensor gx{out.shape()};
        auto dx = gx.data();
        const auto ds = out.data();
        const auto dg = n.grad.data();
        core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            double dot = 0.0;
            for (int64_t c = 0; c < cols; ++c) {
              const size_t i = static_cast<size_t>(r * cols + c);
              dot += static_cast<double>(dg[i]) * ds[i];
            }
            for (int64_t c = 0; c < cols; ++c) {
              const size_t i = static_cast<size_t>(r * cols + c);
              dx[i] = ds[i] * (dg[i] - static_cast<float>(dot));
            }
          }
        });
        an->accumulate(gx);
      },
      "softmax_last");
}

Variable dropout(const Variable& a, float p, ts::Generator& gen, bool training) {
  ACTCOMP_CHECK(p >= 0.0f && p < 1.0f, "dropout p must be in [0, 1), got " << p);
  if (!training || p == 0.0f) return a;
  const float scale = 1.0f / (1.0f - p);
  ts::Tensor mask{a.value().shape()};
  for (float& m : mask.data()) m = gen.bernoulli(p) ? 0.0f : scale;
  ts::Tensor out = ts::mul(a.value(), mask);
  return Variable::make(
      std::move(out), {a},
      [an = a.node(), mask](Node& n) { an->accumulate(ts::mul(n.grad, mask)); },
      "dropout");
}

Variable gather_rows(const Variable& x, const std::vector<int64_t>& rows) {
  const ts::Tensor& xv = x.value();
  ACTCOMP_CHECK(xv.rank() == 2, "gather_rows needs a [N, h] input, got "
                                    << xv.shape().str());
  const int64_t N = xv.dim(0);
  const int64_t h = xv.dim(1);
  ts::Tensor out{ts::Shape{static_cast<int64_t>(rows.size()), h}};
  const auto dx = xv.data();
  auto dout = out.data();
  for (size_t i = 0; i < rows.size(); ++i) {
    ACTCOMP_CHECK(rows[i] >= 0 && rows[i] < N,
                  "gather_rows index " << rows[i] << " out of range [0, " << N << ")");
    for (int64_t c = 0; c < h; ++c) {
      dout[i * static_cast<size_t>(h) + static_cast<size_t>(c)] =
          dx[static_cast<size_t>(rows[i] * h + c)];
    }
  }
  return Variable::make(
      std::move(out), {x},
      [xn = x.node(), rows, h](Node& n) {
        ts::Tensor g{xn->value.shape()};
        auto dg = g.data();
        const auto dn = n.grad.data();
        for (size_t i = 0; i < rows.size(); ++i) {
          for (int64_t c = 0; c < h; ++c) {
            dg[static_cast<size_t>(rows[i] * h + c)] +=
                dn[i * static_cast<size_t>(h) + static_cast<size_t>(c)];
          }
        }
        xn->accumulate(g);
      },
      "gather_rows");
}

Variable embedding(const Variable& table, const std::vector<int64_t>& ids) {
  const ts::Tensor& tv = table.value();
  ACTCOMP_CHECK(tv.rank() == 2, "embedding table must be [V, h]");
  const int64_t V = tv.dim(0);
  const int64_t h = tv.dim(1);
  ts::Tensor out{ts::Shape{static_cast<int64_t>(ids.size()), h}};
  const auto dt = tv.data();
  auto dout = out.data();
  for (size_t i = 0; i < ids.size(); ++i) {
    ACTCOMP_CHECK(ids[i] >= 0 && ids[i] < V,
                  "embedding id " << ids[i] << " out of range [0, " << V << ")");
    for (int64_t c = 0; c < h; ++c) {
      dout[i * static_cast<size_t>(h) + static_cast<size_t>(c)] =
          dt[static_cast<size_t>(ids[i] * h + c)];
    }
  }
  return Variable::make(
      std::move(out), {table},
      [tn = table.node(), ids, h](Node& n) {
        ts::Tensor gt{tn->value.shape()};
        auto dg = gt.data();
        const auto dn = n.grad.data();
        for (size_t i = 0; i < ids.size(); ++i) {
          for (int64_t c = 0; c < h; ++c) {
            dg[static_cast<size_t>(ids[i] * h + c)] +=
                dn[i * static_cast<size_t>(h) + static_cast<size_t>(c)];
          }
        }
        tn->accumulate(gt);
      },
      "embedding");
}

namespace {

Variable cross_entropy_impl(const Variable& logits,
                            const std::vector<int64_t>& labels,
                            int64_t ignore_index, bool use_ignore,
                            const char* name) {
  const ts::Tensor& lv = logits.value();
  ACTCOMP_CHECK(lv.rank() == 2, name << " needs [N, C] logits, got " << lv.shape().str());
  const int64_t N = lv.dim(0);
  const int64_t C = lv.dim(1);
  ACTCOMP_CHECK(static_cast<int64_t>(labels.size()) == N,
                name << ": " << labels.size() << " labels for " << N << " rows");
  const ts::Tensor logp = ts::log_softmax_last(lv);
  const auto dlp = logp.data();
  double loss = 0.0;
  int64_t counted = 0;
  for (int64_t i = 0; i < N; ++i) {
    if (use_ignore && labels[static_cast<size_t>(i)] == ignore_index) continue;
    const int64_t y = labels[static_cast<size_t>(i)];
    ACTCOMP_CHECK(y >= 0 && y < C, name << ": label " << y << " out of range");
    loss -= dlp[static_cast<size_t>(i * C + y)];
    ++counted;
  }
  const float denom = counted > 0 ? static_cast<float>(counted) : 1.0f;
  ts::Tensor out = ts::Tensor::scalar(static_cast<float>(loss) / denom);
  return Variable::make(
      std::move(out), {logits},
      [ln = logits.node(), labels, logp, N, C, denom, use_ignore,
       ignore_index](Node& n) {
        const float seed = n.grad.item();
        ts::Tensor g{ln->value.shape()};
        auto dg = g.data();
        const auto dlp2 = logp.data();
        core::parallel_for(0, N, row_grain(C), [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            const int64_t y = labels[static_cast<size_t>(i)];
            if (use_ignore && y == ignore_index) continue;  // zero grad row
            for (int64_t c = 0; c < C; ++c) {
              const size_t idx = static_cast<size_t>(i * C + c);
              float p = std::exp(dlp2[idx]);
              if (c == y) p -= 1.0f;
              dg[idx] = seed * p / denom;
            }
          }
        });
        ln->accumulate(g);
      },
      name);
}

}  // namespace

Variable softmax_cross_entropy(const Variable& logits,
                               const std::vector<int64_t>& labels) {
  return cross_entropy_impl(logits, labels, 0, false, "softmax_cross_entropy");
}

Variable softmax_cross_entropy_masked(const Variable& logits,
                                      const std::vector<int64_t>& labels,
                                      int64_t ignore_index) {
  return cross_entropy_impl(logits, labels, ignore_index, true,
                            "softmax_cross_entropy_masked");
}

Variable mse_loss(const Variable& pred, const ts::Tensor& target) {
  ACTCOMP_CHECK(pred.value().shape() == target.shape(),
                "mse_loss shape mismatch: " << pred.value().shape().str() << " vs "
                                            << target.shape().str());
  const int64_t N = pred.value().numel();
  ACTCOMP_CHECK(N > 0, "mse_loss of empty tensors");
  const ts::Tensor diff = ts::sub(pred.value(), target);
  double s = 0.0;
  for (float v : diff.data()) s += static_cast<double>(v) * v;
  ts::Tensor out = ts::Tensor::scalar(static_cast<float>(s / static_cast<double>(N)));
  return Variable::make(
      std::move(out), {pred},
      [pn = pred.node(), diff, N](Node& n) {
        const float seed = n.grad.item();
        pn->accumulate(ts::mul_scalar(diff, 2.0f * seed / static_cast<float>(N)));
      },
      "mse_loss");
}

Variable custom_unary(
    const Variable& input, ts::Tensor output_value,
    std::function<ts::Tensor(const ts::Tensor&, const ts::Tensor&)> vjp,
    std::string op_name) {
  return Variable::make(
      std::move(output_value), {input},
      [in = input.node(), vjp = std::move(vjp)](Node& n) {
        in->accumulate(vjp(n.grad, in->value));
      },
      std::move(op_name));
}

}  // namespace actcomp::autograd
