// Differentiable operations over Variables.
//
// Each function computes the forward value with tensor:: kernels and attaches
// a backward closure. Fused ops (layernorm, softmax cross-entropy, attention
// score scaling) carry hand-derived gradients so tapes stay short — this
// library trains real (small) Transformers on one CPU core.
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "tensor/random.h"

namespace actcomp::autograd {

// ---- arithmetic ----
Variable add(const Variable& a, const Variable& b);   // right-aligned broadcast of b
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);   // same-shape or broadcast b
Variable mul_scalar(const Variable& a, float s);
Variable add_scalar(const Variable& a, float s);

// ---- matmul / structure ----
Variable matmul(const Variable& a, const Variable& b);  // 2D/3D as tensor::matmul
Variable reshape(const Variable& a, tensor::Shape shape);
Variable permute(const Variable& a, const std::vector<int>& axes);
Variable transpose_last2(const Variable& a);
Variable concat_last(const std::vector<Variable>& parts);
Variable slice_last(const Variable& a, int64_t start, int64_t len);

// ---- activations ----
Variable gelu(const Variable& a);
Variable relu(const Variable& a);
Variable tanh(const Variable& a);
Variable sigmoid(const Variable& a);

/// Activation applied by the fused bias epilogue.
enum class Act { kNone, kRelu, kGelu };

/// Fused y = act(x + bias), with bias broadcast right-aligned like add().
/// Byte-identical to add(x, bias) followed by the activation — the same
/// kernel expressions run and the backward accumulates the same terms —
/// but the tape carries one node, and the ReLU path computes bias + clamp
/// in a single fused pass (KernelTable::ew_bias_relu).
Variable bias_act(const Variable& x, const Variable& bias, Act act);

// ---- normalization / softmax ----
Variable layernorm(const Variable& x, const Variable& gamma, const Variable& beta,
                   float eps = 1e-5f);
Variable softmax_last(const Variable& a);

// ---- regularization ----
Variable dropout(const Variable& a, float p, tensor::Generator& gen, bool training);

/// Gather rows of a 2-D variable: out[i, :] = x[rows[i], :]. Used for [CLS]
/// pooling and for collecting masked positions in the MLM head.
Variable gather_rows(const Variable& x, const std::vector<int64_t>& rows);

// ---- embedding ----
/// Gather rows of `table` ([V, h]) at `ids` (values in [0, V)); output
/// [ids.size(), h] reshaped to `out_prefix` + [h] by the caller if needed.
Variable embedding(const Variable& table, const std::vector<int64_t>& ids);

// ---- losses (all return scalars, mean-reduced) ----
/// Softmax cross entropy: logits [N, C], labels in [0, C).
Variable softmax_cross_entropy(const Variable& logits,
                               const std::vector<int64_t>& labels);
/// Same but ignoring positions with label == ignore_index (MLM loss).
Variable softmax_cross_entropy_masked(const Variable& logits,
                                      const std::vector<int64_t>& labels,
                                      int64_t ignore_index);
Variable mse_loss(const Variable& pred, const tensor::Tensor& target);

// ---- custom-op escape hatch ----
/// Unary op with caller-supplied forward value and vjp. `vjp(grad_out,
/// input_value)` returns the gradient w.r.t. the input. This is how the
/// compression operators (Top-K masks, quantization straight-through) plug
/// into the tape without autograd knowing about them.
Variable custom_unary(
    const Variable& input, tensor::Tensor output_value,
    std::function<tensor::Tensor(const tensor::Tensor& grad_out,
                                 const tensor::Tensor& input_value)> vjp,
    std::string op_name);

}  // namespace actcomp::autograd
