// Tape-based reverse-mode automatic differentiation.
//
// A Variable is a cheap handle to a graph Node holding a value, an optional
// accumulated gradient, and a backward closure that routes the node's
// gradient to its parents. backward() runs the tape in reverse topological
// order. The design mirrors PyTorch's define-by-run autograd at small scale:
// ops in functions.h build the graph as they execute.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace actcomp::autograd {

class Variable;

namespace detail {

struct Node {
  tensor::Tensor value;
  tensor::Tensor grad;          // empty until first accumulation
  bool has_grad = false;
  bool requires_grad = false;
  std::string op;               // for diagnostics
  std::vector<std::shared_ptr<Node>> parents;
  // Routes this node's grad into parents (called once, after grad is final).
  std::function<void(Node&)> backward_fn;

  void accumulate(const tensor::Tensor& g);
};

}  // namespace detail

/// RAII guard disabling graph construction (inference / no-grad regions).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  static bool grad_enabled();

 private:
  bool prev_;
};

class Variable {
 public:
  /// Invalid handle; most operations on it throw.
  Variable() = default;

  /// Graph leaf. Parameters pass requires_grad = true; inputs false.
  static Variable leaf(tensor::Tensor value, bool requires_grad = false);

  /// Interior node with an explicit backward closure. Building block for all
  /// ops, and the extension point for custom ops (compressors use it).
  static Variable make(tensor::Tensor value, std::vector<Variable> parents,
                       std::function<void(detail::Node&)> backward_fn,
                       std::string op_name);

  bool defined() const { return node_ != nullptr; }
  const tensor::Tensor& value() const;
  tensor::Tensor& mutable_value();
  const tensor::Shape& shape() const { return value().shape(); }
  bool requires_grad() const;

  /// Accumulated gradient. Throws if backward has not produced one.
  const tensor::Tensor& grad() const;
  bool has_grad() const;
  void zero_grad();

  /// Run reverse-mode AD from this (scalar) variable with seed gradient 1.
  void backward() const;
  /// Run reverse-mode AD with an explicit seed gradient (same shape as value).
  void backward(const tensor::Tensor& seed) const;

  /// A leaf sharing this variable's value but cut off from the graph.
  Variable detach() const;

  const std::string& op_name() const;

  /// Identity test for graph nodes.
  bool same_node(const Variable& other) const { return node_ == other.node_; }

  std::shared_ptr<detail::Node> node() const { return node_; }

 private:
  explicit Variable(std::shared_ptr<detail::Node> node) : node_(std::move(node)) {}
  std::shared_ptr<detail::Node> node_;
};

}  // namespace actcomp::autograd
