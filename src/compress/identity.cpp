#include "compress/identity.h"

#include "compress/wire.h"
#include "tensor/fp16.h"

namespace actcomp::compress {

CompressedMessage IdentityCompressor::do_encode(const tensor::Tensor& x) {
  CompressedMessage msg;
  msg.shape_dims = x.shape().dims();
  msg.body.reserve(static_cast<size_t>(x.numel()) * 2);
  wire::append_fp16(msg.body, x);
  return msg;
}

tensor::Tensor IdentityCompressor::do_decode(const CompressedMessage& msg) const {
  tensor::Shape shape{msg.shape_dims};
  size_t off = 0;
  std::vector<float> vals = wire::read_fp16(msg.body, off, shape.numel());
  return tensor::Tensor(shape, std::move(vals));
}

tensor::Tensor IdentityCompressor::round_trip(const tensor::Tensor& x) {
  return tensor::fp16_round(x);
}

WireFormat IdentityCompressor::wire_size(const tensor::Shape& shape) const {
  return WireFormat{.payload_bytes = fp16_bytes(shape), .metadata_bytes = 0};
}

}  // namespace actcomp::compress
