// The paper's Table 1: the named compression settings every experiment sweeps.
//
//   A1/A2   autoencoder, encoder output dim 50 / 100 (at h = 1024)
//   T1/T2   Top-K with the same *communication cost* as A1 / A2
//   T3/T4   Top-K with the same *compression ratio* as A1 / A2
//   R1..R4  Random-K, same four calibrations
//   Q1/Q2/Q3  quantization to 2 / 4 / 8 bits
//
// All calibrations are expressed as ratios of the hidden size so the same
// setting applies to the paper's h=1024 model (simulator plane) and to the
// small h models of the training plane:
//   AE code size          c = round(h · e_ref / 1024)
//   same-ratio fraction   f = e_ref / 1024                  (T3/T4, R3/R4)
//   same-comm fraction    f = e_ref / (3 · 1024)            (T1/T2, R1/R2)
// The factor 3 is the Top-K wire overhead: each kept element costs
// 2 B (fp16 value) + 4 B (int32 index) = 6 B vs the AE's 2 B.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "tensor/random.h"

namespace actcomp::compress {

enum class Setting {
  kBaseline,  // "w/o"
  kA1,
  kA2,
  kT1,
  kT2,
  kT3,
  kT4,
  kR1,
  kR2,
  kR3,
  kR4,
  kQ1,
  kQ2,
  kQ3,
};

/// Paper notation: "w/o", "A1", … , "Q3".
std::string setting_label(Setting s);
/// Inverse of setting_label; empty optional for unknown labels.
std::optional<Setting> parse_setting(const std::string& label);

/// All settings in the paper's table order (Baseline first).
const std::vector<Setting>& all_settings();
/// The subset that appears in the main throughput tables (no Q3).
const std::vector<Setting>& main_settings();

/// Reference encoder dims at h = 1024 (the calibration anchor).
inline constexpr int64_t kRefHidden = 1024;
inline constexpr int64_t kRefCodeA1 = 50;
inline constexpr int64_t kRefCodeA2 = 100;
/// Bytes per kept Top-K/Random-K element (fp16 value + int32 index).
inline constexpr int64_t kSparseBytesPerElement = 6;

/// Kept-element fraction for sparsification settings; throws for others.
double sparse_fraction(Setting s);
/// AE code size at the given hidden size; throws for non-AE settings.
int64_t ae_code_size(Setting s, int64_t hidden);
/// Quantization bit width; throws for non-quant settings.
int quant_bits(Setting s);

/// Instantiate the compressor for `setting` on activations of feature size
/// `hidden`. `gen` seeds AE weights and Random-K sampling.
CompressorPtr make_compressor(Setting setting, int64_t hidden,
                              tensor::Generator& gen);

}  // namespace actcomp::compress
