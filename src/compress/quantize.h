// Uniform quantization (paper §3.1, settings Q1/Q2/Q3 — 2/4/8 bits).
//
// Follows the scheme of Wang et al. 2022 ("Fine-tuning language models over
// slow networks using activation compression with guarantees"), which the
// paper reuses: per-row (last-dimension) min–max affine quantization,
// bit-packed payload, fp16 (min, scale) per row on the wire. Backward is
// straight-through — as the paper notes (§3.3), the PyTorch engine only
// differentiates through the decompressed float tensor.
#pragma once

#include "compress/compressor.h"

namespace actcomp::compress {

class QuantizeCompressor final : public Compressor {
 public:
  /// `bits` in {1..8}.
  explicit QuantizeCompressor(int bits);

  std::string name() const override;
  CompressedMessage do_encode(const tensor::Tensor& x) override;
  tensor::Tensor do_decode(const CompressedMessage& msg) const override;
  tensor::Tensor round_trip(const tensor::Tensor& x) override;
  WireFormat wire_size(const tensor::Shape& shape) const override;
  bool allreduce_compatible() const override { return false; }

  int bits() const { return bits_; }

 private:
  struct RowParams {
    float lo;
    float scale;  // (hi - lo) / (levels - 1), 0 for constant rows
  };
  RowParams row_params(const float* row, int64_t cols) const;

  int bits_;
  int levels_;
};

}  // namespace actcomp::compress
