// Random-K sparsification (paper §3.1, settings R1–R4).
//
// Keeps a uniformly random `fraction` of the elements. The paper implemented
// selection with Python's random.sample, whose host-side cost is what makes
// R1–R4 catastrophically slow in their Tables 2/4/6/7 — our simulator's cost
// model reproduces that (see sim/overhead_model), while this class implements
// the algorithm itself efficiently.
//
// Because apply() must backprop through the *same* random mask the forward
// drew, apply() is overridden to capture the mask instead of re-deriving it.
#pragma once

#include "compress/compressor.h"
#include "tensor/random.h"

namespace actcomp::compress {

class RandomKCompressor final : public Compressor {
 public:
  RandomKCompressor(double fraction, uint64_t seed);

  std::string name() const override;
  CompressedMessage do_encode(const tensor::Tensor& x) override;
  tensor::Tensor do_decode(const CompressedMessage& msg) const override;
  autograd::Variable apply(const autograd::Variable& x) override;
  WireFormat wire_size(const tensor::Shape& shape) const override;
  bool allreduce_compatible() const override { return false; }

  double fraction() const { return fraction_; }
  int64_t k_for(int64_t numel) const;

 private:
  double fraction_;
  tensor::Generator gen_;
};

}  // namespace actcomp::compress
