#include "compress/topk.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <sstream>

#include "compress/wire.h"
#include "core/threadpool.h"
#include "tensor/check.h"
#include "tensor/fp16.h"
#include "tensor/kernels/kernel_table.h"

namespace actcomp::compress {

namespace {

// Fixed chunk width for the parallel candidate pass. A constant (never
// derived from the thread count) keeps the candidate layout — and therefore
// the selected set — identical for any ACTCOMP_THREADS.
constexpr int64_t kChunk = int64_t{1} << 16;

// Elements per parallel chunk for the gather/scatter loops.
constexpr int64_t kEwGrain = int64_t{1} << 13;

}  // namespace

TopKCompressor::TopKCompressor(double fraction) : fraction_(fraction) {
  ACTCOMP_CHECK(fraction > 0.0 && fraction <= 1.0,
                "top-k fraction must be in (0, 1], got " << fraction);
}

std::string TopKCompressor::name() const {
  std::ostringstream os;
  os << "topk(f=" << fraction_ << ')';
  return os.str();
}

int64_t TopKCompressor::k_for(int64_t numel) const {
  if (numel == 0) return 0;
  const auto k = static_cast<int64_t>(
      std::llround(fraction_ * static_cast<double>(numel)));
  return std::clamp<int64_t>(k, 1, numel);
}

std::vector<int64_t> TopKCompressor::select(const tensor::Tensor& x) const {
  const int64_t n = x.numel();
  const int64_t k = k_for(n);
  const auto d = x.data();
  // Magnitudes are precomputed by the SIMD abs kernel so the comparator is
  // a plain buffer read. ew_abs clears the sign bit exactly like fabs, so
  // the comparator sees the same floats — and picks the same set — as the
  // old on-the-fly version.
  std::vector<float> mag(static_cast<size_t>(n));
  {
    const tensor::kernels::KernelTable& kt = tensor::kernels::active_kernels();
    core::parallel_for(0, n, kEwGrain, [&](int64_t lo, int64_t hi) {
      kt.ew_abs(d.data(), mag.data(), lo, hi);
    });
  }
  // Strict total order: |magnitude| descending, index ascending as the
  // tie-break. Under a total order the top-k *set* is unique, which is what
  // makes the chunked pass below exact rather than approximate.
  const auto before = [&](int64_t a, int64_t b) {
    const float fa = mag[static_cast<size_t>(a)];
    const float fb = mag[static_cast<size_t>(b)];
    if (fa != fb) return fa > fb;
    return a < b;
  };

  if (n <= 2 * kChunk || k == n) {
    // Small inputs: the seed path. nth_element + sort of the head is
    // O(n + k log k), matching a device topk.
    std::vector<int64_t> idx(static_cast<size_t>(n));
    std::iota(idx.begin(), idx.end(), 0);
    std::nth_element(idx.begin(), idx.begin() + k, idx.end(), before);
    idx.resize(static_cast<size_t>(k));
    std::sort(idx.begin(), idx.end());  // ascending index order on the wire
    return idx;
  }

  // Parallel exact top-k: each fixed-width chunk reduces to its own top
  // min(k, chunk_len) candidates. Any member of the global top-k is by
  // definition among the top-k of its chunk, so the candidate union
  // provably contains the answer; a final nth_element over it reproduces
  // the seed's selection exactly.
  const int64_t nchunks = (n + kChunk - 1) / kChunk;
  std::vector<int64_t> counts(static_cast<size_t>(nchunks));
  std::vector<int64_t> offsets(static_cast<size_t>(nchunks) + 1, 0);
  for (int64_t c = 0; c < nchunks; ++c) {
    const int64_t len = std::min(kChunk, n - c * kChunk);
    counts[static_cast<size_t>(c)] = std::min(k, len);
    offsets[static_cast<size_t>(c) + 1] =
        offsets[static_cast<size_t>(c)] + counts[static_cast<size_t>(c)];
  }
  std::vector<int64_t> cand(static_cast<size_t>(offsets.back()));
  core::parallel_for(0, nchunks, 1, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      const int64_t b = c * kChunk;
      const int64_t len = std::min(kChunk, n - b);
      const int64_t kc = counts[static_cast<size_t>(c)];
      std::vector<int64_t> idx(static_cast<size_t>(len));
      std::iota(idx.begin(), idx.end(), b);
      if (kc < len) std::nth_element(idx.begin(), idx.begin() + kc, idx.end(), before);
      std::copy(idx.begin(), idx.begin() + kc,
                cand.begin() + offsets[static_cast<size_t>(c)]);
    }
  });
  std::nth_element(cand.begin(), cand.begin() + k, cand.end(), before);
  cand.resize(static_cast<size_t>(k));
  std::sort(cand.begin(), cand.end());
  return cand;
}

CompressedMessage TopKCompressor::do_encode(const tensor::Tensor& x) {
  const std::vector<int64_t> kept = select(x);
  const int64_t k = static_cast<int64_t>(kept.size());
  CompressedMessage msg;
  msg.shape_dims = x.shape().dims();
  msg.body.resize(static_cast<size_t>(k) * 6);
  const auto d = x.data();
  std::byte* idx_base = msg.body.data();
  std::byte* val_base = msg.body.data() + static_cast<size_t>(k) * 4;
  // Gather the kept values per chunk, then batch-convert through the SIMD
  // fp16 kernel (same bit converter, same wire bytes).
  const tensor::kernels::KernelTable& kt = tensor::kernels::active_kernels();
  core::parallel_for(0, k, kEwGrain, [&](int64_t b, int64_t e) {
    const int64_t len = e - b;
    std::vector<float> vals(static_cast<size_t>(len));
    std::vector<uint16_t> half(static_cast<size_t>(len));
    for (int64_t i = b; i < e; ++i) {
      const int32_t j = static_cast<int32_t>(kept[static_cast<size_t>(i)]);
      std::memcpy(idx_base + i * 4, &j, 4);
      vals[static_cast<size_t>(i - b)] =
          d[static_cast<size_t>(kept[static_cast<size_t>(i)])];
    }
    kt.fp16_encode(vals.data(), half.data(), len);
    std::memcpy(val_base + b * 2, half.data(), static_cast<size_t>(len) * 2);
  });
  return msg;
}

tensor::Tensor TopKCompressor::do_decode(const CompressedMessage& msg) const {
  tensor::Shape shape{msg.shape_dims};
  const int64_t k = k_for(shape.numel());
  ACTCOMP_CHECK(static_cast<size_t>(k) * 6 <= msg.body.size(),
                "truncated top-k wire message");
  tensor::Tensor out{shape};
  auto d = out.data();
  const std::byte* idx_base = msg.body.data();
  const std::byte* val_base = msg.body.data() + static_cast<size_t>(k) * 4;
  const int64_t numel = shape.numel();
  // The encoder emits strictly ascending, unique indices, so per-element
  // writes are disjoint and the scatter parallelizes cleanly. Values are
  // batch-decoded through the SIMD fp16 kernel, then scattered.
  const tensor::kernels::KernelTable& kt = tensor::kernels::active_kernels();
  core::parallel_for(0, k, kEwGrain, [&](int64_t b, int64_t e) {
    const int64_t len = e - b;
    std::vector<uint16_t> half(static_cast<size_t>(len));
    std::vector<float> vals(static_cast<size_t>(len));
    std::memcpy(half.data(), val_base + b * 2, static_cast<size_t>(len) * 2);
    kt.fp16_decode(half.data(), vals.data(), len);
    for (int64_t i = b; i < e; ++i) {
      int32_t j = 0;
      std::memcpy(&j, idx_base + i * 4, 4);
      ACTCOMP_CHECK(j >= 0 && j < numel, "top-k index out of range on wire");
      d[static_cast<size_t>(j)] = vals[static_cast<size_t>(i - b)];
    }
  });
  return out;
}

tensor::Tensor TopKCompressor::round_trip(const tensor::Tensor& x) {
  tensor::Tensor out{x.shape()};
  const auto din = x.data();
  auto dout = out.data();
  const std::vector<int64_t> kept = select(x);
  // fp16 on the wire, so round kept values through fp16 too (gather,
  // batch round-trip through the SIMD kernel, scatter back).
  const tensor::kernels::KernelTable& kt = tensor::kernels::active_kernels();
  core::parallel_for(
      0, static_cast<int64_t>(kept.size()), kEwGrain, [&](int64_t b, int64_t e) {
        const int64_t len = e - b;
        std::vector<float> vals(static_cast<size_t>(len));
        for (int64_t i = b; i < e; ++i) {
          vals[static_cast<size_t>(i - b)] =
              din[static_cast<size_t>(kept[static_cast<size_t>(i)])];
        }
        kt.fp16_round_trip(vals.data(), vals.data(), len);
        for (int64_t i = b; i < e; ++i) {
          dout[static_cast<size_t>(kept[static_cast<size_t>(i)])] =
              vals[static_cast<size_t>(i - b)];
        }
      });
  return out;
}

WireFormat TopKCompressor::wire_size(const tensor::Shape& shape) const {
  const int64_t k = k_for(shape.numel());
  return WireFormat{.payload_bytes = k * 2, .metadata_bytes = k * 4};
}

tensor::Tensor TopKCompressor::vjp(const tensor::Tensor& grad_out,
                                   const tensor::Tensor& input) const {
  tensor::Tensor g{grad_out.shape()};
  const auto dg = grad_out.data();
  auto dout = g.data();
  const std::vector<int64_t> kept = select(input);
  core::parallel_for(
      0, static_cast<int64_t>(kept.size()), kEwGrain, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
          const size_t j = static_cast<size_t>(kept[static_cast<size_t>(i)]);
          dout[j] = dg[j];
        }
      });
  return g;
}

}  // namespace actcomp::compress
