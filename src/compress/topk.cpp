#include "compress/topk.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "compress/wire.h"
#include "tensor/check.h"
#include "tensor/fp16.h"

namespace actcomp::compress {

TopKCompressor::TopKCompressor(double fraction) : fraction_(fraction) {
  ACTCOMP_CHECK(fraction > 0.0 && fraction <= 1.0,
                "top-k fraction must be in (0, 1], got " << fraction);
}

std::string TopKCompressor::name() const {
  std::ostringstream os;
  os << "topk(f=" << fraction_ << ')';
  return os.str();
}

int64_t TopKCompressor::k_for(int64_t numel) const {
  if (numel == 0) return 0;
  const auto k = static_cast<int64_t>(
      std::llround(fraction_ * static_cast<double>(numel)));
  return std::clamp<int64_t>(k, 1, numel);
}

std::vector<int64_t> TopKCompressor::select(const tensor::Tensor& x) const {
  const int64_t n = x.numel();
  const int64_t k = k_for(n);
  std::vector<int64_t> idx(static_cast<size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  const auto d = x.data();
  // nth_element + sort of the head: O(n + k log k), matching a device topk.
  std::nth_element(idx.begin(), idx.begin() + k, idx.end(),
                   [&](int64_t a, int64_t b) {
                     const float fa = std::fabs(d[static_cast<size_t>(a)]);
                     const float fb = std::fabs(d[static_cast<size_t>(b)]);
                     if (fa != fb) return fa > fb;
                     return a < b;
                   });
  idx.resize(static_cast<size_t>(k));
  std::sort(idx.begin(), idx.end());  // ascending index order on the wire
  return idx;
}

CompressedMessage TopKCompressor::encode(const tensor::Tensor& x) {
  const std::vector<int64_t> kept = select(x);
  CompressedMessage msg;
  msg.shape_dims = x.shape().dims();
  msg.body.reserve(kept.size() * 6);
  const auto d = x.data();
  for (int64_t i : kept) wire::append_pod<int32_t>(msg.body, static_cast<int32_t>(i));
  for (int64_t i : kept) {
    wire::append_pod<uint16_t>(
        msg.body, tensor::fp32_to_fp16_bits(d[static_cast<size_t>(i)]));
  }
  return msg;
}

tensor::Tensor TopKCompressor::decode(const CompressedMessage& msg) const {
  tensor::Shape shape{msg.shape_dims};
  const int64_t k = k_for(shape.numel());
  tensor::Tensor out{shape};
  auto d = out.data();
  size_t off = 0;
  std::vector<int32_t> idx(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) idx[static_cast<size_t>(i)] = wire::read_pod<int32_t>(msg.body, off);
  for (int64_t i = 0; i < k; ++i) {
    const float v = tensor::fp16_bits_to_fp32(wire::read_pod<uint16_t>(msg.body, off));
    const int32_t j = idx[static_cast<size_t>(i)];
    ACTCOMP_CHECK(j >= 0 && j < shape.numel(), "top-k index out of range on wire");
    d[static_cast<size_t>(j)] = v;
  }
  return out;
}

tensor::Tensor TopKCompressor::round_trip(const tensor::Tensor& x) {
  tensor::Tensor out{x.shape()};
  const auto din = x.data();
  auto dout = out.data();
  for (int64_t i : select(x)) {
    // fp16 on the wire, so round kept values through fp16 too.
    dout[static_cast<size_t>(i)] = tensor::fp16_bits_to_fp32(
        tensor::fp32_to_fp16_bits(din[static_cast<size_t>(i)]));
  }
  return out;
}

WireFormat TopKCompressor::wire_size(const tensor::Shape& shape) const {
  const int64_t k = k_for(shape.numel());
  return WireFormat{.payload_bytes = k * 2, .metadata_bytes = k * 4};
}

tensor::Tensor TopKCompressor::vjp(const tensor::Tensor& grad_out,
                                   const tensor::Tensor& input) const {
  tensor::Tensor g{grad_out.shape()};
  const auto dg = grad_out.data();
  auto dout = g.data();
  for (int64_t i : select(input)) {
    dout[static_cast<size_t>(i)] = dg[static_cast<size_t>(i)];
  }
  return g;
}

}  // namespace actcomp::compress
