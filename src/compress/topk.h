// Top-K sparsification (paper §3.1, settings T1–T4).
//
// Keeps the `fraction`·numel elements of largest magnitude per tensor (the
// paper uses torch.topk over the whole activation) and transmits
// (value: fp16, index: int32) pairs. The backward pass is the kept-element
// mask: y = m ⊙ x  ⇒  ∂y/∂x = m.
#pragma once

#include <cstdint>

#include "compress/compressor.h"

namespace actcomp::compress {

class TopKCompressor final : public Compressor {
 public:
  /// `fraction` of elements kept, in (0, 1].
  explicit TopKCompressor(double fraction);

  std::string name() const override;
  CompressedMessage do_encode(const tensor::Tensor& x) override;
  tensor::Tensor do_decode(const CompressedMessage& msg) const override;
  tensor::Tensor round_trip(const tensor::Tensor& x) override;
  WireFormat wire_size(const tensor::Shape& shape) const override;
  bool allreduce_compatible() const override { return false; }

  double fraction() const { return fraction_; }
  /// Number of elements kept for a tensor with `numel` elements (>= 1).
  int64_t k_for(int64_t numel) const;

 protected:
  tensor::Tensor vjp(const tensor::Tensor& grad_out,
                     const tensor::Tensor& input) const override;

 private:
  /// Indices of the k largest-|x| elements (ties broken by lower index).
  std::vector<int64_t> select(const tensor::Tensor& x) const;

  double fraction_;
};

}  // namespace actcomp::compress
