#include "compress/autoencoder.h"

#include <sstream>

#include "autograd/functions.h"
#include "compress/wire.h"
#include "tensor/check.h"
#include "tensor/fp16.h"
#include "tensor/ops.h"

namespace actcomp::compress {

AutoencoderCompressor::AutoencoderCompressor(int64_t hidden, int64_t code,
                                             tensor::Generator& gen)
    : hidden_(hidden), code_(code) {
  ACTCOMP_CHECK(hidden > 0 && code > 0 && code < hidden,
                "autoencoder needs 0 < code < hidden, got code=" << code
                                                                 << " hidden=" << hidden);
  w_enc_ = autograd::Variable::leaf(
      tensor::xavier_uniform(gen, tensor::Shape{hidden, code}, hidden, code),
      /*requires_grad=*/true);
  w_dec_ = autograd::Variable::leaf(
      tensor::xavier_uniform(gen, tensor::Shape{code, hidden}, code, hidden),
      /*requires_grad=*/true);
}

std::string AutoencoderCompressor::name() const {
  std::ostringstream os;
  os << "ae(h=" << hidden_ << ",c=" << code_ << ')';
  return os.str();
}

namespace {
tensor::Shape code_shape(const tensor::Shape& in, int64_t code) {
  std::vector<int64_t> dims = in.dims();
  dims.back() = code;
  return tensor::Shape(dims);
}
}  // namespace

CompressedMessage AutoencoderCompressor::do_encode(const tensor::Tensor& x) {
  ACTCOMP_CHECK(x.dim(-1) == hidden_,
                "autoencoder expects last dim " << hidden_ << ", got "
                                                << x.shape().str());
  const int64_t rows = x.numel() / hidden_;
  const tensor::Tensor flat = x.reshape(tensor::Shape{rows, hidden_});
  const tensor::Tensor compressed = tensor::matmul2d(flat, w_enc_.value());
  CompressedMessage msg;
  msg.shape_dims = x.shape().dims();
  msg.body.reserve(static_cast<size_t>(compressed.numel()) * 2);
  wire::append_fp16(msg.body, compressed);
  return msg;
}

tensor::Tensor AutoencoderCompressor::do_decode(const CompressedMessage& msg) const {
  tensor::Shape shape{msg.shape_dims};
  const int64_t rows = shape.numel() / hidden_;
  size_t off = 0;
  std::vector<float> vals = wire::read_fp16(msg.body, off, rows * code_);
  const tensor::Tensor compressed(tensor::Shape{rows, code_}, std::move(vals));
  return tensor::matmul2d(compressed, w_dec_.value()).reshape(shape);
}

tensor::Tensor AutoencoderCompressor::round_trip(const tensor::Tensor& x) {
  const int64_t rows = x.numel() / hidden_;
  const tensor::Tensor flat = x.reshape(tensor::Shape{rows, hidden_});
  const tensor::Tensor code =
      tensor::fp16_round(tensor::matmul2d(flat, w_enc_.value()));
  return tensor::matmul2d(code, w_dec_.value()).reshape(x.shape());
}

autograd::Variable AutoencoderCompressor::apply(const autograd::Variable& x) {
  ACTCOMP_CHECK(x.value().dim(-1) == hidden_,
                "autoencoder expects last dim " << hidden_ << ", got "
                                                << x.value().shape().str());
  autograd::Variable code = autograd::matmul(x, w_enc_);
  // The code crosses the wire in fp16; model that rounding with a
  // straight-through custom op so it is visible to the task loss.
  code = autograd::custom_unary(
      code, tensor::fp16_round(code.value()),
      [](const tensor::Tensor& g, const tensor::Tensor&) { return g; },
      "fp16_wire_round");
  return autograd::matmul(code, w_dec_);
}

WireFormat AutoencoderCompressor::wire_size(const tensor::Shape& shape) const {
  ACTCOMP_CHECK(shape.dim(-1) == hidden_,
                "autoencoder wire_size: last dim " << shape.dim(-1) << " != "
                                                   << hidden_);
  return WireFormat{
      .payload_bytes = code_shape(shape, code_).numel() * 2,
      .metadata_bytes = 0};
}

std::vector<autograd::Variable> AutoencoderCompressor::parameters() {
  return {w_enc_, w_dec_};
}

void AutoencoderCompressor::set_weights(const tensor::Tensor& enc,
                                        const tensor::Tensor& dec) {
  ACTCOMP_CHECK(enc.shape() == w_enc_.value().shape(),
                "encoder weight shape mismatch: " << enc.shape().str());
  ACTCOMP_CHECK(dec.shape() == w_dec_.value().shape(),
                "decoder weight shape mismatch: " << dec.shape().str());
  w_enc_.mutable_value() = enc.clone();
  w_dec_.mutable_value() = dec.clone();
}

}  // namespace actcomp::compress
