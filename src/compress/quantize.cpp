#include "compress/quantize.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "compress/wire.h"
#include "core/threadpool.h"
#include "tensor/check.h"
#include "tensor/fp16.h"

namespace actcomp::compress {

namespace {
// Rows = product of all dims but the last; a rank-1 tensor is one row.
std::pair<int64_t, int64_t> rows_cols(const tensor::Shape& s) {
  ACTCOMP_CHECK(s.rank() >= 1, "cannot quantize a scalar shape");
  const int64_t cols = s.dim(-1);
  return {cols == 0 ? 0 : s.numel() / cols, cols};
}

// Rows per parallel chunk for the per-row quantize kernels.
constexpr int64_t kRowGrainElems = int64_t{1} << 13;

int64_t row_grain(int64_t cols) {
  return std::max<int64_t>(1, kRowGrainElems / std::max<int64_t>(1, cols));
}
}  // namespace

QuantizeCompressor::QuantizeCompressor(int bits)
    : bits_(bits), levels_(1 << bits) {
  ACTCOMP_CHECK(bits >= 1 && bits <= 8, "quantize bits must be in [1, 8], got " << bits);
}

std::string QuantizeCompressor::name() const {
  std::ostringstream os;
  os << "quant(" << bits_ << "b)";
  return os.str();
}

QuantizeCompressor::RowParams QuantizeCompressor::row_params(const float* row,
                                                             int64_t cols) const {
  float lo = row[0], hi = row[0];
  for (int64_t c = 1; c < cols; ++c) {
    lo = std::min(lo, row[c]);
    hi = std::max(hi, row[c]);
  }
  // Round the affine params through fp16 — that is what travels on the wire —
  // so round_trip matches decode(encode(x)) bit-for-bit.
  lo = tensor::fp16_bits_to_fp32(tensor::fp32_to_fp16_bits(lo));
  hi = tensor::fp16_bits_to_fp32(tensor::fp32_to_fp16_bits(hi));
  float scale = hi > lo ? (hi - lo) / static_cast<float>(levels_ - 1) : 0.0f;
  scale = tensor::fp16_bits_to_fp32(tensor::fp32_to_fp16_bits(scale));
  return {lo, scale};
}

CompressedMessage QuantizeCompressor::do_encode(const tensor::Tensor& x) {
  const auto [rows, cols] = rows_cols(x.shape());
  CompressedMessage msg;
  msg.shape_dims = x.shape().dims();
  const int64_t payload = (x.numel() * bits_ + 7) / 8;
  const int64_t header = rows * 4;

  const auto d = x.data();
  // Per-row (lo, scale): the min/max scan dominates encode cost.
  std::vector<RowParams> params(static_cast<size_t>(rows));
  core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      params[static_cast<size_t>(r)] = row_params(d.data() + r * cols, cols);
    }
  });
  for (int64_t r = 0; r < rows; ++r) {
    wire::append_pod<uint16_t>(
        msg.body, tensor::fp32_to_fp16_bits(params[static_cast<size_t>(r)].lo));
    wire::append_pod<uint16_t>(
        msg.body, tensor::fp32_to_fp16_bits(params[static_cast<size_t>(r)].scale));
  }

  // Payload: bit-packed codes, little-endian within each byte.
  const int64_t row_bits = cols * bits_;
  if (row_bits % 8 == 0) {
    // Rows start on byte boundaries, so every row owns a disjoint byte
    // range of the payload and packs independently — byte-identical to the
    // serial pass below.
    const int64_t row_bytes = row_bits / 8;
    msg.body.resize(static_cast<size_t>(header + payload));
    std::byte* base = msg.body.data() + header;
    core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const RowParams& p = params[static_cast<size_t>(r)];
        std::byte* dst = base + r * row_bytes;
        uint32_t acc = 0;
        int acc_bits = 0;
        for (int64_t c = 0; c < cols; ++c) {
          uint32_t q = 0;
          if (p.scale > 0.0f) {
            const float normalized =
                (d[static_cast<size_t>(r * cols + c)] - p.lo) / p.scale;
            q = static_cast<uint32_t>(std::clamp(
                std::lround(normalized), 0l, static_cast<long>(levels_ - 1)));
          }
          acc |= q << acc_bits;
          acc_bits += bits_;
          while (acc_bits >= 8) {
            *dst++ = static_cast<std::byte>(acc & 0xFFu);
            acc >>= 8;
            acc_bits -= 8;
          }
        }
      }
    });
    return msg;
  }

  // Rows straddle byte boundaries: the accumulator threads through the whole
  // tensor, so the pack stays serial.
  uint32_t acc = 0;
  int acc_bits = 0;
  for (int64_t r = 0; r < rows; ++r) {
    const RowParams& p = params[static_cast<size_t>(r)];
    for (int64_t c = 0; c < cols; ++c) {
      uint32_t q = 0;
      if (p.scale > 0.0f) {
        const float normalized = (d[static_cast<size_t>(r * cols + c)] - p.lo) / p.scale;
        q = static_cast<uint32_t>(std::clamp(
            std::lround(normalized), 0l, static_cast<long>(levels_ - 1)));
      }
      acc |= q << acc_bits;
      acc_bits += bits_;
      while (acc_bits >= 8) {
        wire::append_pod<uint8_t>(msg.body, static_cast<uint8_t>(acc & 0xFFu));
        acc >>= 8;
        acc_bits -= 8;
      }
    }
  }
  if (acc_bits > 0) wire::append_pod<uint8_t>(msg.body, static_cast<uint8_t>(acc & 0xFFu));
  return msg;
}

tensor::Tensor QuantizeCompressor::do_decode(const CompressedMessage& msg) const {
  tensor::Shape shape{msg.shape_dims};
  const auto [rows, cols] = rows_cols(shape);
  tensor::Tensor out{shape};
  auto d = out.data();
  size_t off = 0;
  std::vector<RowParams> params(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float lo = tensor::fp16_bits_to_fp32(wire::read_pod<uint16_t>(msg.body, off));
    const float scale = tensor::fp16_bits_to_fp32(wire::read_pod<uint16_t>(msg.body, off));
    params[static_cast<size_t>(r)] = {lo, scale};
  }
  const uint32_t mask = static_cast<uint32_t>(levels_ - 1);
  const int64_t row_bits = cols * bits_;
  if (row_bits % 8 == 0) {
    const int64_t row_bytes = row_bits / 8;
    ACTCOMP_CHECK(off + static_cast<size_t>(rows * row_bytes) <= msg.body.size(),
                  "truncated wire message");
    const std::byte* base = msg.body.data() + off;
    core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const RowParams& p = params[static_cast<size_t>(r)];
        const std::byte* src = base + r * row_bytes;
        uint32_t acc = 0;
        int acc_bits = 0;
        for (int64_t c = 0; c < cols; ++c) {
          while (acc_bits < bits_) {
            acc |= static_cast<uint32_t>(static_cast<uint8_t>(*src++)) << acc_bits;
            acc_bits += 8;
          }
          const uint32_t q = acc & mask;
          acc >>= bits_;
          acc_bits -= bits_;
          d[static_cast<size_t>(r * cols + c)] = p.lo + static_cast<float>(q) * p.scale;
        }
      }
    });
    return out;
  }

  uint32_t acc = 0;
  int acc_bits = 0;
  for (int64_t r = 0; r < rows; ++r) {
    const RowParams& p = params[static_cast<size_t>(r)];
    for (int64_t c = 0; c < cols; ++c) {
      while (acc_bits < bits_) {
        acc |= static_cast<uint32_t>(wire::read_pod<uint8_t>(msg.body, off)) << acc_bits;
        acc_bits += 8;
      }
      const uint32_t q = acc & mask;
      acc >>= bits_;
      acc_bits -= bits_;
      d[static_cast<size_t>(r * cols + c)] = p.lo + static_cast<float>(q) * p.scale;
    }
  }
  return out;
}

tensor::Tensor QuantizeCompressor::round_trip(const tensor::Tensor& x) {
  const auto [rows, cols] = rows_cols(x.shape());
  tensor::Tensor out{x.shape()};
  const auto din = x.data();
  auto dout = out.data();
  core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const RowParams p = row_params(din.data() + r * cols, cols);
      for (int64_t c = 0; c < cols; ++c) {
        const size_t i = static_cast<size_t>(r * cols + c);
        if (p.scale <= 0.0f) {
          dout[i] = p.lo;
        } else {
          const long q = std::clamp(std::lround((din[i] - p.lo) / p.scale), 0l,
                                    static_cast<long>(levels_ - 1));
          dout[i] = p.lo + static_cast<float>(q) * p.scale;
        }
      }
    }
  });
  return out;
}

WireFormat QuantizeCompressor::wire_size(const tensor::Shape& shape) const {
  const auto [rows, cols] = rows_cols(shape);
  (void)cols;
  return WireFormat{.payload_bytes = (shape.numel() * bits_ + 7) / 8,
                    .metadata_bytes = rows * 4};
}

}  // namespace actcomp::compress
