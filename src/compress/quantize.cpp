#include "compress/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "compress/wire.h"
#include "core/threadpool.h"
#include "tensor/check.h"
#include "tensor/fp16.h"
#include "tensor/kernels/kernel_table.h"

namespace actcomp::compress {

namespace {
// Rows = product of all dims but the last; a rank-1 tensor is one row.
std::pair<int64_t, int64_t> rows_cols(const tensor::Shape& s) {
  ACTCOMP_CHECK(s.rank() >= 1, "cannot quantize a scalar shape");
  const int64_t cols = s.dim(-1);
  return {cols == 0 ? 0 : s.numel() / cols, cols};
}

// Rows per parallel chunk for the per-row quantize kernels.
constexpr int64_t kRowGrainElems = int64_t{1} << 13;

int64_t row_grain(int64_t cols) {
  return std::max<int64_t>(1, kRowGrainElems / std::max<int64_t>(1, cols));
}
}  // namespace

QuantizeCompressor::QuantizeCompressor(int bits)
    : bits_(bits), levels_(1 << bits) {
  ACTCOMP_CHECK(bits >= 1 && bits <= 8, "quantize bits must be in [1, 8], got " << bits);
}

std::string QuantizeCompressor::name() const {
  std::ostringstream os;
  os << "quant(" << bits_ << "b)";
  return os.str();
}

QuantizeCompressor::RowParams QuantizeCompressor::row_params(const float* row,
                                                             int64_t cols) const {
  float lo, hi;
  tensor::kernels::active_kernels().row_minmax(row, cols, &lo, &hi);
  // Round the affine params through fp16 — that is what travels on the wire —
  // so round_trip matches decode(encode(x)) bit-for-bit.
  lo = tensor::fp16_bits_to_fp32(tensor::fp32_to_fp16_bits(lo));
  hi = tensor::fp16_bits_to_fp32(tensor::fp32_to_fp16_bits(hi));
  float scale = hi > lo ? (hi - lo) / static_cast<float>(levels_ - 1) : 0.0f;
  scale = tensor::fp16_bits_to_fp32(tensor::fp32_to_fp16_bits(scale));
  return {lo, scale};
}

CompressedMessage QuantizeCompressor::do_encode(const tensor::Tensor& x) {
  const auto [rows, cols] = rows_cols(x.shape());
  CompressedMessage msg;
  msg.shape_dims = x.shape().dims();
  const int64_t payload = (x.numel() * bits_ + 7) / 8;
  const int64_t header = rows * 4;

  const auto d = x.data();
  // Per-row (lo, scale): the min/max scan dominates encode cost.
  std::vector<RowParams> params(static_cast<size_t>(rows));
  core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      params[static_cast<size_t>(r)] = row_params(d.data() + r * cols, cols);
    }
  });
  for (int64_t r = 0; r < rows; ++r) {
    wire::append_pod<uint16_t>(
        msg.body, tensor::fp32_to_fp16_bits(params[static_cast<size_t>(r)].lo));
    wire::append_pod<uint16_t>(
        msg.body, tensor::fp32_to_fp16_bits(params[static_cast<size_t>(r)].scale));
  }

  // Payload: bit-packed codes, little-endian within each byte. Quantization
  // is two-phase — the SIMD kernel fills a per-row code buffer, then an
  // integer pass packs it — which produces the same bytes as the old fused
  // per-element loop (the codes are identical; packing is pure bit logic).
  const tensor::kernels::KernelTable& kt = tensor::kernels::active_kernels();
  const auto quantize_row = [&](const RowParams& p, int64_t r, uint8_t* qbuf) {
    if (p.scale > 0.0f) {
      kt.quant_quantize_row(d.data() + r * cols, cols, p.lo, p.scale, levels_,
                            qbuf);
    } else {
      std::fill(qbuf, qbuf + cols, uint8_t{0});
    }
  };
  const int64_t row_bits = cols * bits_;
  if (row_bits % 8 == 0) {
    // Rows start on byte boundaries, so every row owns a disjoint byte
    // range of the payload and packs independently — byte-identical to the
    // serial pass below.
    const int64_t row_bytes = row_bits / 8;
    msg.body.resize(static_cast<size_t>(header + payload));
    std::byte* base = msg.body.data() + header;
    core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
      std::vector<uint8_t> qbuf(static_cast<size_t>(cols));
      for (int64_t r = r0; r < r1; ++r) {
        quantize_row(params[static_cast<size_t>(r)], r, qbuf.data());
        std::byte* dst = base + r * row_bytes;
        if (bits_ == 8) {
          std::memcpy(dst, qbuf.data(), static_cast<size_t>(cols));
          continue;
        }
        uint32_t acc = 0;
        int acc_bits = 0;
        for (int64_t c = 0; c < cols; ++c) {
          acc |= static_cast<uint32_t>(qbuf[static_cast<size_t>(c)]) << acc_bits;
          acc_bits += bits_;
          while (acc_bits >= 8) {
            *dst++ = static_cast<std::byte>(acc & 0xFFu);
            acc >>= 8;
            acc_bits -= 8;
          }
        }
      }
    });
    return msg;
  }

  // Rows straddle byte boundaries: the accumulator threads through the whole
  // tensor, so the pack stays serial (the quantize kernel still runs per row).
  std::vector<uint8_t> qbuf(static_cast<size_t>(cols));
  uint32_t acc = 0;
  int acc_bits = 0;
  for (int64_t r = 0; r < rows; ++r) {
    quantize_row(params[static_cast<size_t>(r)], r, qbuf.data());
    for (int64_t c = 0; c < cols; ++c) {
      acc |= static_cast<uint32_t>(qbuf[static_cast<size_t>(c)]) << acc_bits;
      acc_bits += bits_;
      while (acc_bits >= 8) {
        wire::append_pod<uint8_t>(msg.body, static_cast<uint8_t>(acc & 0xFFu));
        acc >>= 8;
        acc_bits -= 8;
      }
    }
  }
  if (acc_bits > 0) wire::append_pod<uint8_t>(msg.body, static_cast<uint8_t>(acc & 0xFFu));
  return msg;
}

tensor::Tensor QuantizeCompressor::do_decode(const CompressedMessage& msg) const {
  tensor::Shape shape{msg.shape_dims};
  const auto [rows, cols] = rows_cols(shape);
  tensor::Tensor out{shape};
  auto d = out.data();
  size_t off = 0;
  std::vector<RowParams> params(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float lo = tensor::fp16_bits_to_fp32(wire::read_pod<uint16_t>(msg.body, off));
    const float scale = tensor::fp16_bits_to_fp32(wire::read_pod<uint16_t>(msg.body, off));
    params[static_cast<size_t>(r)] = {lo, scale};
  }
  const uint32_t mask = static_cast<uint32_t>(levels_ - 1);
  const int64_t row_bits = cols * bits_;
  // Decode mirrors encode's two phases: unpack codes into a per-row byte
  // buffer, then the SIMD kernel applies the affine map (same mul-then-add
  // expression as the old fused loop, so the floats are bit-identical).
  const tensor::kernels::KernelTable& kt = tensor::kernels::active_kernels();
  if (row_bits % 8 == 0) {
    const int64_t row_bytes = row_bits / 8;
    ACTCOMP_CHECK(off + static_cast<size_t>(rows * row_bytes) <= msg.body.size(),
                  "truncated wire message");
    const std::byte* base = msg.body.data() + off;
    core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
      std::vector<uint8_t> qbuf(static_cast<size_t>(cols));
      for (int64_t r = r0; r < r1; ++r) {
        const RowParams& p = params[static_cast<size_t>(r)];
        const std::byte* src = base + r * row_bytes;
        if (bits_ == 8) {
          kt.quant_dequantize_row(reinterpret_cast<const uint8_t*>(src), cols,
                                  p.lo, p.scale,
                                  d.data() + r * cols);
          continue;
        }
        uint32_t acc = 0;
        int acc_bits = 0;
        for (int64_t c = 0; c < cols; ++c) {
          while (acc_bits < bits_) {
            acc |= static_cast<uint32_t>(static_cast<uint8_t>(*src++)) << acc_bits;
            acc_bits += 8;
          }
          qbuf[static_cast<size_t>(c)] = static_cast<uint8_t>(acc & mask);
          acc >>= bits_;
          acc_bits -= bits_;
        }
        kt.quant_dequantize_row(qbuf.data(), cols, p.lo, p.scale,
                                d.data() + r * cols);
      }
    });
    return out;
  }

  std::vector<uint8_t> qbuf(static_cast<size_t>(cols));
  uint32_t acc = 0;
  int acc_bits = 0;
  for (int64_t r = 0; r < rows; ++r) {
    const RowParams& p = params[static_cast<size_t>(r)];
    for (int64_t c = 0; c < cols; ++c) {
      while (acc_bits < bits_) {
        acc |= static_cast<uint32_t>(wire::read_pod<uint8_t>(msg.body, off)) << acc_bits;
        acc_bits += 8;
      }
      qbuf[static_cast<size_t>(c)] = static_cast<uint8_t>(acc & mask);
      acc >>= bits_;
      acc_bits -= bits_;
    }
    kt.quant_dequantize_row(qbuf.data(), cols, p.lo, p.scale,
                            d.data() + r * cols);
  }
  return out;
}

tensor::Tensor QuantizeCompressor::round_trip(const tensor::Tensor& x) {
  const auto [rows, cols] = rows_cols(x.shape());
  tensor::Tensor out{x.shape()};
  const auto din = x.data();
  auto dout = out.data();
  const tensor::kernels::KernelTable& kt = tensor::kernels::active_kernels();
  core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    std::vector<uint8_t> qbuf(static_cast<size_t>(cols));
    for (int64_t r = r0; r < r1; ++r) {
      const RowParams p = row_params(din.data() + r * cols, cols);
      if (p.scale <= 0.0f) {
        std::fill(dout.data() + r * cols, dout.data() + (r + 1) * cols, p.lo);
      } else {
        kt.quant_quantize_row(din.data() + r * cols, cols, p.lo, p.scale,
                              levels_, qbuf.data());
        kt.quant_dequantize_row(qbuf.data(), cols, p.lo, p.scale,
                                dout.data() + r * cols);
      }
    }
  });
  return out;
}

WireFormat QuantizeCompressor::wire_size(const tensor::Shape& shape) const {
  const auto [rows, cols] = rows_cols(shape);
  (void)cols;
  return WireFormat{.payload_bytes = (shape.numel() * bits_ + 7) / 8,
                    .metadata_bytes = rows * 4};
}

}  // namespace actcomp::compress
