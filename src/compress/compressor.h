// Compressor: the common interface over the paper's §3.1 algorithm classes.
//
// Every algorithm provides three coupled views that MUST agree, because the
// two execution planes of this reproduction consume different ones:
//   * encode()/decode() — a real serialized wire message (byte-exact), used
//     by unit tests and by anyone adopting the library for real transport;
//   * apply()           — the differentiable lossy round-trip inserted into
//     the training tape (accuracy experiments);
//   * wire_size()       — closed-form message-size accounting consumed by the
//     throughput simulator (src/sim), asserted in tests to equal the byte
//     size encode() actually produces.
//
// Elements on the wire are fp16 (the paper trains BERT-Large in fp16);
// sparse indices are int32; quantized payloads are bit-packed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace actcomp::compress {

/// Byte accounting for one compressed activation message.
struct WireFormat {
  int64_t payload_bytes = 0;   ///< the (compressed) values themselves
  int64_t metadata_bytes = 0;  ///< indices / scales / header
  int64_t total_bytes() const { return payload_bytes + metadata_bytes; }
};

/// Uncompressed fp16 bytes for a tensor of this shape (the baseline message).
int64_t fp16_bytes(const tensor::Shape& shape);

/// A serialized message: header (shape) + algorithm-specific body.
struct CompressedMessage {
  std::vector<int64_t> shape_dims;
  std::vector<std::byte> body;

  int64_t body_bytes() const { return static_cast<int64_t>(body.size()); }
};

class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Short identifier, e.g. "topk(f=0.016)".
  virtual std::string name() const = 0;

  /// Serialize `x` into a wire message. Non-const: Random-K consumes RNG
  /// state, error-feedback compressors update their residual. Non-virtual:
  /// this is the observability choke point — it opens the compress.encode
  /// profiler zone, bumps the bytes-on-wire counters, and dispatches to the
  /// subclass's do_encode(). Wrapping compressors (error feedback, hybrid)
  /// that call an inner compressor's encode() simply nest one zone deeper.
  CompressedMessage encode(const tensor::Tensor& x);

  /// Reconstruct the (lossy) tensor a receiver would see. Instrumented
  /// wrapper over do_decode(), like encode().
  tensor::Tensor decode(const CompressedMessage& msg) const;

  /// decode(encode(x)) without paying for serialization; default does exactly
  /// that, subclasses override with a fused path.
  virtual tensor::Tensor round_trip(const tensor::Tensor& x);

  /// Differentiable lossy round-trip for the training tape. Defaults to a
  /// custom op whose backward is the subclass's vjp(); the autoencoder
  /// overrides with a fully differentiable graph instead.
  virtual autograd::Variable apply(const autograd::Variable& x);

  /// Closed-form message size for an input of `shape`. Must equal the body
  /// size encode() produces for that shape (tests enforce this).
  virtual WireFormat wire_size(const tensor::Shape& shape) const = 0;

  /// True if the encoded message is a single dense summable tensor, so tensor
  /// parallelism can keep using all-reduce (§3.2). Sparse and quantized
  /// formats return false and force the all-gather fallback.
  virtual bool allreduce_compatible() const = 0;

  /// Trainable parameters (empty for everything except the autoencoder).
  virtual std::vector<autograd::Variable> parameters() { return {}; }

 protected:
  /// Algorithm-specific serialization; called only through encode()/decode()
  /// so byte accounting can never be bypassed.
  virtual CompressedMessage do_encode(const tensor::Tensor& x) = 0;
  virtual tensor::Tensor do_decode(const CompressedMessage& msg) const = 0;

  /// Gradient of round_trip w.r.t. its input, given upstream grad. Default:
  /// straight-through (identity). Sparsifiers override with their mask.
  virtual tensor::Tensor vjp(const tensor::Tensor& grad_out,
                             const tensor::Tensor& input) const;
};

using CompressorPtr = std::unique_ptr<Compressor>;

}  // namespace actcomp::compress
