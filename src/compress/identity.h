// IdentityCompressor: the paper's "w/o" baseline.
//
// Sends the raw fp16 activation. Exists so every experiment sweeps the same
// code path with and without compression.
#pragma once

#include "compress/compressor.h"

namespace actcomp::compress {

class IdentityCompressor final : public Compressor {
 public:
  std::string name() const override { return "identity"; }
  CompressedMessage do_encode(const tensor::Tensor& x) override;
  tensor::Tensor do_decode(const CompressedMessage& msg) const override;
  tensor::Tensor round_trip(const tensor::Tensor& x) override;
  autograd::Variable apply(const autograd::Variable& x) override { return x; }
  WireFormat wire_size(const tensor::Shape& shape) const override;
  bool allreduce_compatible() const override { return true; }
};

}  // namespace actcomp::compress
