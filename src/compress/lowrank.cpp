#include "compress/lowrank.h"

#include <cmath>
#include <sstream>

#include "compress/wire.h"
#include "tensor/check.h"
#include "tensor/fp16.h"
#include "tensor/ops.h"

namespace actcomp::compress {

namespace ts = actcomp::tensor;

LowRankCompressor::LowRankCompressor(int64_t rank, uint64_t seed,
                                     int power_iterations)
    : rank_(rank), power_iterations_(power_iterations), gen_(seed) {
  ACTCOMP_CHECK(rank >= 1, "low-rank compressor needs rank >= 1, got " << rank);
  ACTCOMP_CHECK(power_iterations >= 1, "need at least one power iteration");
}

std::string LowRankCompressor::name() const {
  std::ostringstream os;
  os << "lowrank(r=" << rank_ << ')';
  return os.str();
}

namespace {

/// Flatten [..., h] to [rows, h].
ts::Tensor as_matrix(const ts::Tensor& x) {
  ACTCOMP_CHECK(x.rank() >= 1, "cannot factorize a scalar");
  const int64_t cols = x.dim(-1);
  ACTCOMP_CHECK(cols > 0 && x.numel() % cols == 0, "bad matrix view");
  return x.reshape(ts::Shape{x.numel() / cols, cols});
}

/// In-place modified Gram-Schmidt on the columns of m ([rows, r]), with two
/// orthogonalization passes for stability. Columns that become numerically
/// rank-deficient (their residual is a vanishing fraction of their original
/// norm) are ZEROED rather than normalized — normalizing amplifies rounding
/// noise into a spurious non-orthogonal direction when the input's true
/// rank is below r.
void orthonormalize_columns(ts::Tensor& m) {
  const int64_t rows = m.dim(0);
  const int64_t r = m.dim(1);
  auto d = m.data();
  auto col_norm2 = [&](int64_t j) {
    double n2 = 0;
    for (int64_t i = 0; i < rows; ++i) {
      n2 += static_cast<double>(d[static_cast<size_t>(i * r + j)]) *
            d[static_cast<size_t>(i * r + j)];
    }
    return n2;
  };
  for (int64_t j = 0; j < r; ++j) {
    const double original_norm2 = col_norm2(j);
    for (int pass = 0; pass < 2; ++pass) {
      for (int64_t k = 0; k < j; ++k) {
        double dot = 0;
        for (int64_t i = 0; i < rows; ++i) {
          dot += static_cast<double>(d[static_cast<size_t>(i * r + j)]) *
                 d[static_cast<size_t>(i * r + k)];
        }
        for (int64_t i = 0; i < rows; ++i) {
          d[static_cast<size_t>(i * r + j)] -=
              static_cast<float>(dot) * d[static_cast<size_t>(i * r + k)];
        }
      }
    }
    const double norm2 = col_norm2(j);
    const bool deficient = norm2 <= 1e-10 * (original_norm2 + 1e-30);
    const float inv =
        deficient ? 0.0f : static_cast<float>(1.0 / std::sqrt(norm2));
    for (int64_t i = 0; i < rows; ++i) {
      d[static_cast<size_t>(i * r + j)] *= inv;
    }
  }
}

}  // namespace

LowRankCompressor::Factors LowRankCompressor::factorize(const ts::Tensor& x2d) {
  const int64_t rows = x2d.dim(0);
  const int64_t cols = x2d.dim(1);
  const int64_t r = std::min({rank_, rows, cols});
  // Subspace iteration: Q <- N(0,1); repeat { P = X Q, orth(P), Q = X^T P }.
  ts::Tensor q = gen_.normal(ts::Shape{cols, r});
  ts::Tensor p;
  const ts::Tensor xt = ts::transpose_last2(x2d);
  for (int it = 0; it < power_iterations_; ++it) {
    p = ts::matmul2d(x2d, q);
    orthonormalize_columns(p);
    q = ts::matmul2d(xt, p);
  }
  return {std::move(p), std::move(q)};
}

CompressedMessage LowRankCompressor::do_encode(const ts::Tensor& x) {
  const ts::Tensor x2d = as_matrix(x);
  const Factors f = factorize(x2d);
  CompressedMessage msg;
  msg.shape_dims = x.shape().dims();
  msg.body.reserve(static_cast<size_t>((f.p.numel() + f.q.numel()) * 2 + 8));
  wire::append_pod<int32_t>(msg.body, static_cast<int32_t>(f.p.dim(1)));
  wire::append_fp16(msg.body, f.p);
  wire::append_fp16(msg.body, f.q);
  return msg;
}

ts::Tensor LowRankCompressor::do_decode(const CompressedMessage& msg) const {
  ts::Shape shape{msg.shape_dims};
  const int64_t cols = shape.dim(-1);
  const int64_t rows = shape.numel() / cols;
  size_t off = 0;
  const int64_t r = wire::read_pod<int32_t>(msg.body, off);
  ACTCOMP_CHECK(r >= 1 && r <= std::min(rows, cols), "bad rank on wire");
  ts::Tensor p(ts::Shape{rows, r}, wire::read_fp16(msg.body, off, rows * r));
  ts::Tensor q(ts::Shape{cols, r}, wire::read_fp16(msg.body, off, cols * r));
  return ts::matmul2d(p, ts::transpose_last2(q)).reshape(shape);
}

ts::Tensor LowRankCompressor::round_trip(const ts::Tensor& x) {
  const ts::Tensor x2d = as_matrix(x);
  const Factors f = factorize(x2d);
  return ts::matmul2d(ts::fp16_round(f.p),
                      ts::transpose_last2(ts::fp16_round(f.q)))
      .reshape(x.shape());
}

WireFormat LowRankCompressor::wire_size(const ts::Shape& shape) const {
  const int64_t cols = shape.dim(-1);
  const int64_t rows = shape.numel() / cols;
  const int64_t r = std::min({rank_, rows, cols});
  return WireFormat{.payload_bytes = (rows + cols) * r * 2, .metadata_bytes = 4};
}

int64_t LowRankCompressor::rank_for_budget(const ts::Shape& shape,
                                           int64_t target_bytes) {
  const int64_t cols = shape.dim(-1);
  const int64_t rows = shape.numel() / cols;
  const int64_t r = target_bytes / ((rows + cols) * 2);
  return std::max<int64_t>(1, r);
}

}  // namespace actcomp::compress
