// Learning-based compression: the autoencoder codec (paper §3.2, A1/A2).
//
// Per compressed layer the paper keeps a learnable encoder w ∈ R^{h×c} and a
// decoder w' ∈ R^{c×h}; the activation X ∈ R^{b×s×h} travels as Xw ∈ R^{b×s×c}.
// Unlike the other compressors this one is *fully differentiable*: apply()
// builds a real autograd subgraph so the codec trains jointly with the task
// loss — the property that makes AEs usable for model parallelism but not for
// gradient compression (paper §2.2, challenge 3).
//
// Because the compressed activation is a single dense fp16 tensor, the AE is
// the only lossy compressor that can ride all-reduce unchanged (§3.2).
#pragma once

#include "compress/compressor.h"
#include "tensor/random.h"

namespace actcomp::compress {

class AutoencoderCompressor final : public Compressor {
 public:
  /// `hidden`: activation feature size h; `code`: compressed size c < h.
  AutoencoderCompressor(int64_t hidden, int64_t code, tensor::Generator& gen);

  std::string name() const override;
  CompressedMessage do_encode(const tensor::Tensor& x) override;
  tensor::Tensor do_decode(const CompressedMessage& msg) const override;
  tensor::Tensor round_trip(const tensor::Tensor& x) override;
  autograd::Variable apply(const autograd::Variable& x) override;
  WireFormat wire_size(const tensor::Shape& shape) const override;
  bool allreduce_compatible() const override { return true; }
  std::vector<autograd::Variable> parameters() override;

  int64_t hidden() const { return hidden_; }
  int64_t code() const { return code_; }
  const autograd::Variable& encoder_weight() const { return w_enc_; }
  const autograd::Variable& decoder_weight() const { return w_dec_; }

  /// Load codec weights (checkpoint restore).
  void set_weights(const tensor::Tensor& enc, const tensor::Tensor& dec);

 private:
  int64_t hidden_;
  int64_t code_;
  autograd::Variable w_enc_;  // [h, c]
  autograd::Variable w_dec_;  // [c, h]
};

}  // namespace actcomp::compress
