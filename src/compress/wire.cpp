#include "compress/wire.h"

namespace actcomp::compress::wire {

void append_fp16(std::vector<std::byte>& buf, const tensor::Tensor& t) {
  for (float v : t.data()) append_pod<uint16_t>(buf, tensor::fp32_to_fp16_bits(v));
}

std::vector<float> read_fp16(const std::vector<std::byte>& buf, size_t& off,
                             int64_t n) {
  std::vector<float> out(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    out[static_cast<size_t>(i)] =
        tensor::fp16_bits_to_fp32(read_pod<uint16_t>(buf, off));
  }
  return out;
}

}  // namespace actcomp::compress::wire
