#include "compress/lossless.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <sstream>

#include "compress/wire.h"
#include "tensor/check.h"
#include "tensor/fp16.h"

namespace actcomp::compress {

namespace {

// ---------------------------------------------------------------------------
// Container constants (normative layout in WIRE_FORMATS.md §4).
// ---------------------------------------------------------------------------

constexpr uint8_t kMagic = 0xAC;
constexpr uint8_t kVersion = 1;
/// Fixed header bytes before the chunk table.
constexpr int64_t kHeaderBytes = 24;
/// Per-plane prefix: u8 plane algo + u64 encoded size.
constexpr int64_t kPlanePrefixBytes = 9;
/// Longest Huffman code the encoder will emit; deeper trees (possible only
/// on adversarial distributions) fall back to the raw plane encoding.
constexpr int kMaxCodeLen = 32;
/// Decoder sanity bound: PackBits expands at most 64x (2 encoded bytes ->
/// up to 128 raw) and Huffman at most 8x (>= 1 bit per symbol), so no valid
/// container's raw payload exceeds 512x its encoded size plus small headers.
constexpr int64_t kMaxExpansion = 512;

/// Bounds-checked reader over a byte span; every violation is a malformed /
/// truncated wire message, reported as std::invalid_argument.
struct ByteReader {
  const std::byte* p = nullptr;
  int64_t n = 0;
  int64_t off = 0;

  template <typename T>
  T get() {
    ACTCOMP_CHECK(off + static_cast<int64_t>(sizeof(T)) <= n,
                  "truncated lossless container");
    T v{};
    std::memcpy(&v, p + off, sizeof(T));
    off += static_cast<int64_t>(sizeof(T));
    return v;
  }
  const std::byte* take(int64_t k) {
    ACTCOMP_CHECK(k >= 0 && off + k <= n, "truncated lossless container");
    const std::byte* q = p + off;
    off += k;
    return q;
  }
};

// ---------------------------------------------------------------------------
// PackBits run-length coding (WIRE_FORMATS.md §4.4).
//
//   control c in [0, 127]   : literal run, copy the next c+1 bytes
//   control c in [129, 255] : repeat the next byte 257-c times (2..128)
//   control 128             : reserved, rejected on decode
// ---------------------------------------------------------------------------

void rle_flush_literals(std::vector<std::byte>& out, const std::byte* p,
                        int64_t begin, int64_t end) {
  while (begin < end) {
    const int64_t len = std::min<int64_t>(128, end - begin);
    out.push_back(static_cast<std::byte>(len - 1));
    out.insert(out.end(), p + begin, p + begin + len);
    begin += len;
  }
}

std::vector<std::byte> rle_encode(const std::byte* p, int64_t n) {
  std::vector<std::byte> out;
  out.reserve(static_cast<size_t>(n / 2 + 16));
  int64_t i = 0;
  auto run_at = [&](int64_t j) {
    int64_t run = 1;
    while (j + run < n && run < 128 && p[j + run] == p[j]) ++run;
    return run;
  };
  while (i < n) {
    int64_t run = run_at(i);
    if (run >= 3) {
      out.push_back(static_cast<std::byte>(257 - run));
      out.push_back(p[i]);
      i += run;
      continue;
    }
    const int64_t lit = i;
    while (i < n) {
      run = run_at(i);
      if (run >= 3) break;
      i += run;
    }
    rle_flush_literals(out, p, lit, i);
  }
  return out;
}

/// Decodes exactly `expected` bytes; anything else is malformed.
std::vector<std::byte> rle_decode(const std::byte* p, int64_t n,
                                  int64_t expected) {
  std::vector<std::byte> out;
  out.reserve(static_cast<size_t>(expected));
  int64_t i = 0;
  while (i < n) {
    const auto c = static_cast<uint8_t>(p[i++]);
    if (c <= 127) {
      const int64_t len = c + 1;
      ACTCOMP_CHECK(i + len <= n, "truncated RLE literal run on wire");
      ACTCOMP_CHECK(static_cast<int64_t>(out.size()) + len <= expected,
                    "RLE stream overruns its declared plane size");
      out.insert(out.end(), p + i, p + i + len);
      i += len;
    } else {
      ACTCOMP_CHECK(c != 128, "reserved RLE control byte 128 on wire");
      ACTCOMP_CHECK(i < n, "truncated RLE repeat run on wire");
      const int64_t len = 257 - c;
      ACTCOMP_CHECK(static_cast<int64_t>(out.size()) + len <= expected,
                    "RLE stream overruns its declared plane size");
      out.insert(out.end(), static_cast<size_t>(len), p[i++]);
    }
  }
  ACTCOMP_CHECK(static_cast<int64_t>(out.size()) == expected,
                "RLE stream decodes to " << out.size() << " bytes, expected "
                                         << expected);
  return out;
}

// ---------------------------------------------------------------------------
// Canonical order-0 Huffman over bytes (WIRE_FORMATS.md §4.5).
//
// Stream = u8 code_length[256], then the symbols' codes packed MSB-first
// into an LSB-first bit accumulator (bit k of the stream is byte k/8, bit
// k%8). Symbol count is implied by the plane's raw size, so the stream
// carries no explicit count; trailing pad bits fill the final byte.
// ---------------------------------------------------------------------------

/// Code lengths via the two-queue method over (count, symbol)-sorted leaves;
/// fully deterministic. Returns false when the tree exceeds kMaxCodeLen
/// (encoder then falls back to the raw plane).
bool huffman_lengths(const int64_t counts[256], uint8_t lens[256]) {
  std::fill(lens, lens + 256, uint8_t{0});
  struct Node {
    int64_t weight;
    int left, right;  // -1 for leaves
    int symbol;
  };
  std::vector<Node> nodes;
  std::vector<int> leaves;  // node ids, sorted by (weight, symbol)
  for (int s = 0; s < 256; ++s) {
    if (counts[s] > 0) {
      nodes.push_back({counts[s], -1, -1, s});
      leaves.push_back(static_cast<int>(nodes.size()) - 1);
    }
  }
  if (leaves.empty()) return true;
  if (leaves.size() == 1) {
    lens[nodes[static_cast<size_t>(leaves[0])].symbol] = 1;
    return true;
  }
  std::sort(leaves.begin(), leaves.end(), [&](int a, int b) {
    const Node& na = nodes[static_cast<size_t>(a)];
    const Node& nb = nodes[static_cast<size_t>(b)];
    if (na.weight != nb.weight) return na.weight < nb.weight;
    return na.symbol < nb.symbol;
  });
  std::vector<int> internal;
  size_t li = 0, ii = 0;
  auto pop_min = [&]() {
    // Ties prefer the leaf queue — a fixed rule keeps the tree deterministic.
    const bool take_leaf =
        li < leaves.size() &&
        (ii >= internal.size() ||
         nodes[static_cast<size_t>(leaves[li])].weight <=
             nodes[static_cast<size_t>(internal[ii])].weight);
    return take_leaf ? leaves[li++] : internal[ii++];
  };
  while (leaves.size() - li + internal.size() - ii > 1) {
    const int a = pop_min();
    const int b = pop_min();
    nodes.push_back({nodes[static_cast<size_t>(a)].weight +
                         nodes[static_cast<size_t>(b)].weight,
                     a, b, -1});
    internal.push_back(static_cast<int>(nodes.size()) - 1);
  }
  // Depth-first walk assigning depths; the tree has < 512 nodes.
  struct Frame {
    int node;
    int depth;
  };
  std::vector<Frame> stack{{pop_min(), 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& nd = nodes[static_cast<size_t>(f.node)];
    if (nd.left < 0) {
      if (f.depth > kMaxCodeLen) return false;
      lens[nd.symbol] = static_cast<uint8_t>(std::max(1, f.depth));
    } else {
      stack.push_back({nd.left, f.depth + 1});
      stack.push_back({nd.right, f.depth + 1});
    }
  }
  return true;
}

/// Canonical code assignment from lengths: symbols sorted by (length,
/// symbol); codes count upward, shifting left at each length step. Returns
/// false on an inconsistent (over-full) length table.
bool canonical_codes(const uint8_t lens[256], uint32_t codes[256]) {
  std::vector<int> syms;
  for (int s = 0; s < 256; ++s) {
    if (lens[s] > 0) syms.push_back(s);
  }
  std::sort(syms.begin(), syms.end(), [&](int a, int b) {
    if (lens[a] != lens[b]) return lens[a] < lens[b];
    return a < b;
  });
  uint64_t code = 0;
  int prev_len = syms.empty() ? 0 : lens[syms[0]];
  for (size_t i = 0; i < syms.size(); ++i) {
    const int s = syms[i];
    code <<= (lens[s] - prev_len);
    prev_len = lens[s];
    if (code >> lens[s]) return false;  // over-full: not a prefix code
    codes[s] = static_cast<uint32_t>(code);
    ++code;
  }
  return true;
}

std::optional<std::vector<std::byte>> huffman_encode(const std::byte* p,
                                                     int64_t n) {
  int64_t counts[256] = {};
  for (int64_t i = 0; i < n; ++i) ++counts[static_cast<uint8_t>(p[i])];
  uint8_t lens[256];
  if (!huffman_lengths(counts, lens)) return std::nullopt;
  uint32_t codes[256] = {};
  if (!canonical_codes(lens, codes)) return std::nullopt;

  // Bit-reverse each code once so emission is a single shift-or per symbol.
  uint32_t rev[256] = {};
  for (int s = 0; s < 256; ++s) {
    for (int b = 0; b < lens[s]; ++b) {
      rev[s] |= ((codes[s] >> b) & 1u) << (lens[s] - 1 - b);
    }
  }
  std::vector<std::byte> out;
  out.reserve(static_cast<size_t>(256 + n / 2 + 16));
  for (int s = 0; s < 256; ++s) out.push_back(static_cast<std::byte>(lens[s]));
  uint64_t acc = 0;
  int nbits = 0;
  for (int64_t i = 0; i < n; ++i) {
    const auto s = static_cast<uint8_t>(p[i]);
    acc |= static_cast<uint64_t>(rev[s]) << nbits;
    nbits += lens[s];
    while (nbits >= 8) {
      out.push_back(static_cast<std::byte>(acc & 0xFFu));
      acc >>= 8;
      nbits -= 8;
    }
  }
  if (nbits > 0) out.push_back(static_cast<std::byte>(acc & 0xFFu));
  return out;
}

/// Decodes exactly `expected` symbols and requires the stream to be exactly
/// consumed (headers + ceil(bits/8) bytes).
std::vector<std::byte> huffman_decode(const std::byte* p, int64_t n,
                                      int64_t expected) {
  ACTCOMP_CHECK(n >= 256, "truncated Huffman length table on wire");
  uint8_t lens[256];
  for (int s = 0; s < 256; ++s) {
    lens[s] = static_cast<uint8_t>(p[s]);
    ACTCOMP_CHECK(lens[s] <= kMaxCodeLen,
                  "Huffman code length " << int{lens[s]} << " exceeds limit "
                                         << kMaxCodeLen);
  }
  // Canonical tables: per length, the first code, symbol count, and the
  // offset into the (length, symbol)-sorted symbol array.
  std::vector<int> syms;
  for (int s = 0; s < 256; ++s) {
    if (lens[s] > 0) syms.push_back(s);
  }
  ACTCOMP_CHECK(!syms.empty() || expected == 0,
                "empty Huffman alphabet for a non-empty plane");
  std::sort(syms.begin(), syms.end(), [&](int a, int b) {
    if (lens[a] != lens[b]) return lens[a] < lens[b];
    return a < b;
  });
  uint32_t first[kMaxCodeLen + 1] = {};
  uint32_t count[kMaxCodeLen + 1] = {};
  uint32_t offset[kMaxCodeLen + 1] = {};
  for (int s : syms) ++count[lens[s]];
  {
    uint64_t code = 0;
    uint32_t off = 0;
    for (int l = 1; l <= kMaxCodeLen; ++l) {
      code <<= 1;
      first[l] = static_cast<uint32_t>(code);
      offset[l] = off;
      code += count[l];
      off += count[l];
      ACTCOMP_CHECK(code <= (uint64_t{1} << l),
                    "over-full Huffman length table on wire");
    }
  }

  const std::byte* bits = p + 256;
  const int64_t nbits_total = (n - 256) * 8;
  int64_t bitpos = 0;
  std::vector<std::byte> out;
  out.reserve(static_cast<size_t>(expected));
  for (int64_t i = 0; i < expected; ++i) {
    uint32_t code = 0;
    int len = 0;
    for (;;) {
      ACTCOMP_CHECK(bitpos < nbits_total, "truncated Huffman bitstream on wire");
      const int bit =
          (static_cast<uint8_t>(bits[bitpos >> 3]) >> (bitpos & 7)) & 1;
      ++bitpos;
      code = (code << 1) | static_cast<uint32_t>(bit);
      ++len;
      ACTCOMP_CHECK(len <= kMaxCodeLen, "invalid Huffman code on wire");
      if (count[len] > 0 && code >= first[len] &&
          code < first[len] + count[len]) {
        out.push_back(static_cast<std::byte>(
            syms[offset[len] + (code - first[len])]));
        break;
      }
    }
  }
  ACTCOMP_CHECK((bitpos + 7) / 8 == n - 256,
                "Huffman bitstream has trailing bytes on wire");
  return out;
}

// ---------------------------------------------------------------------------
// Plane split / merge.
// ---------------------------------------------------------------------------

int64_t plane_raw_len(int64_t chunk_len, int stride, int plane) {
  return chunk_len / stride + (plane < chunk_len % stride ? 1 : 0);
}

std::vector<std::byte> gather_plane(const std::byte* p, int64_t n, int stride,
                                    int plane) {
  std::vector<std::byte> out(static_cast<size_t>(plane_raw_len(n, stride, plane)));
  size_t j = 0;
  for (int64_t i = plane; i < n; i += stride) out[j++] = p[i];
  return out;
}

/// Encodes one plane under the container's requested algo, falling back to
/// raw whenever coding would not shrink it. Returns (plane algo used, bytes).
std::pair<LosslessAlgo, std::vector<std::byte>> encode_plane(
    const std::byte* p, int64_t n, LosslessAlgo algo) {
  std::optional<std::vector<std::byte>> coded;
  switch (algo) {
    case LosslessAlgo::kRaw:
      break;
    case LosslessAlgo::kRle:
      coded = rle_encode(p, n);
      break;
    case LosslessAlgo::kHuffman:
      coded = huffman_encode(p, n);
      break;
    case LosslessAlgo::kRleHuffman: {
      const std::vector<std::byte> rle = rle_encode(p, n);
      if (auto h = huffman_encode(rle.data(), static_cast<int64_t>(rle.size()))) {
        std::vector<std::byte> stream;
        stream.reserve(8 + h->size());
        wire::append_pod<uint64_t>(stream, static_cast<uint64_t>(rle.size()));
        stream.insert(stream.end(), h->begin(), h->end());
        coded = std::move(stream);
      }
      break;
    }
  }
  if (coded && static_cast<int64_t>(coded->size()) < n) {
    return {algo, std::move(*coded)};
  }
  return {LosslessAlgo::kRaw, std::vector<std::byte>(p, p + n)};
}

std::vector<std::byte> decode_plane(LosslessAlgo algo, const std::byte* p,
                                    int64_t n, int64_t expected) {
  switch (algo) {
    case LosslessAlgo::kRaw:
      ACTCOMP_CHECK(n == expected, "raw plane size mismatch on wire");
      return std::vector<std::byte>(p, p + n);
    case LosslessAlgo::kRle:
      return rle_decode(p, n, expected);
    case LosslessAlgo::kHuffman:
      return huffman_decode(p, n, expected);
    case LosslessAlgo::kRleHuffman: {
      ByteReader r{p, n};
      const auto rle_len = static_cast<int64_t>(r.get<uint64_t>());
      ACTCOMP_CHECK(rle_len >= 0 && rle_len <= kMaxExpansion * (n - r.off) + 8,
                    "implausible RLE stream size on wire");
      const std::vector<std::byte> rle =
          huffman_decode(p + r.off, n - r.off, rle_len);
      return rle_decode(rle.data(), static_cast<int64_t>(rle.size()), expected);
    }
  }
  ACTCOMP_CHECK(false, "unknown plane algo id on wire");
}

void encode_chunk(const std::byte* p, int64_t n, LosslessAlgo algo, int stride,
                  std::vector<std::byte>& out) {
  for (int plane = 0; plane < stride; ++plane) {
    std::vector<std::byte> plane_bytes = gather_plane(p, n, stride, plane);
    auto [used, coded] = encode_plane(
        plane_bytes.data(), static_cast<int64_t>(plane_bytes.size()), algo);
    wire::append_pod<uint8_t>(out, static_cast<uint8_t>(used));
    wire::append_pod<uint64_t>(out, static_cast<uint64_t>(coded.size()));
    out.insert(out.end(), coded.begin(), coded.end());
  }
}

void decode_chunk(const std::byte* p, int64_t n, int64_t expected_raw,
                  LosslessAlgo container_algo, int stride,
                  std::vector<std::byte>& out) {
  ByteReader r{p, n};
  const size_t base = out.size();
  out.resize(base + static_cast<size_t>(expected_raw));
  for (int plane = 0; plane < stride; ++plane) {
    const auto algo_id = r.get<uint8_t>();
    ACTCOMP_CHECK(algo_id == static_cast<uint8_t>(LosslessAlgo::kRaw) ||
                      algo_id == static_cast<uint8_t>(container_algo),
                  "plane algo id " << int{algo_id}
                                   << " is neither raw nor the container's");
    const auto coded_len = static_cast<int64_t>(r.get<uint64_t>());
    const std::byte* coded = r.take(coded_len);
    const int64_t expected = plane_raw_len(expected_raw, stride, plane);
    ACTCOMP_CHECK(expected <= kMaxExpansion * coded_len + 8,
                  "implausible plane expansion on wire");
    const std::vector<std::byte> raw = decode_plane(
        static_cast<LosslessAlgo>(algo_id), coded, coded_len, expected);
    size_t j = 0;
    for (int64_t i = plane; i < expected_raw; i += stride) {
      out[base + static_cast<size_t>(i)] = raw[j++];
    }
  }
  ACTCOMP_CHECK(r.off == n, "trailing bytes after the chunk's last plane");
}

}  // namespace

// ---------------------------------------------------------------------------
// Labels / registries.
// ---------------------------------------------------------------------------

std::string lossless_algo_label(LosslessAlgo algo) {
  switch (algo) {
    case LosslessAlgo::kRaw: return "raw";
    case LosslessAlgo::kRle: return "rle";
    case LosslessAlgo::kHuffman: return "huffman";
    case LosslessAlgo::kRleHuffman: return "rle+huffman";
  }
  ACTCOMP_ASSERT(false, "unreachable lossless algo enum");
}

std::string plane_split_label(PlaneSplit split) {
  switch (split) {
    case PlaneSplit::kNone: return "none";
    case PlaneSplit::kStride2: return "bp2";
    case PlaneSplit::kStride4: return "bp4";
  }
  ACTCOMP_ASSERT(false, "unreachable plane split enum");
}

int plane_count(PlaneSplit split) {
  switch (split) {
    case PlaneSplit::kNone: return 1;
    case PlaneSplit::kStride2: return 2;
    case PlaneSplit::kStride4: return 4;
  }
  ACTCOMP_ASSERT(false, "unreachable plane split enum");
}

const std::vector<LosslessCodec>& standard_lossless_codecs() {
  static const std::vector<LosslessCodec> kCodecs = {
      {LosslessAlgo::kRle, PlaneSplit::kStride2, 0},
      {LosslessAlgo::kHuffman, PlaneSplit::kStride2, 0},
      {LosslessAlgo::kRleHuffman, PlaneSplit::kStride2, 0},
      {LosslessAlgo::kRleHuffman, PlaneSplit::kStride4, 0},
  };
  return kCodecs;
}

// ---------------------------------------------------------------------------
// LosslessCodec.
// ---------------------------------------------------------------------------

std::string LosslessCodec::name() const {
  return lossless_algo_label(algo) + "/" + plane_split_label(split);
}

int LosslessCodec::num_chunks(int64_t raw_bytes) const {
  ACTCOMP_CHECK(raw_bytes >= 0, "negative payload size");
  if (chunk_bytes <= 0 || raw_bytes == 0) return 1;
  return static_cast<int>((raw_bytes + chunk_bytes - 1) / chunk_bytes);
}

int64_t LosslessCodec::max_encoded_bytes(int64_t raw_bytes) const {
  const int chunks = num_chunks(raw_bytes);
  // Header + chunk table + per-chunk per-plane prefixes + raw-fallback data.
  return kHeaderBytes + 8 * chunks +
         static_cast<int64_t>(chunks) * plane_count(split) * kPlanePrefixBytes +
         raw_bytes;
}

std::vector<std::byte> LosslessCodec::encode(const std::byte* data,
                                             int64_t n) const {
  ACTCOMP_CHECK(n >= 0, "negative payload size");
  ACTCOMP_CHECK(n == 0 || data != nullptr, "null payload");
  const int chunks = num_chunks(n);
  const int64_t chunk_raw = chunks == 1 ? n : chunk_bytes;
  const int stride = plane_count(split);

  std::vector<std::vector<std::byte>> chunk_streams(
      static_cast<size_t>(chunks));
  for (int c = 0; c < chunks; ++c) {
    const int64_t begin = static_cast<int64_t>(c) * chunk_raw;
    const int64_t len = std::min(chunk_raw, n - begin);
    encode_chunk(data + begin, len, algo, stride,
                 chunk_streams[static_cast<size_t>(c)]);
  }

  std::vector<std::byte> out;
  out.reserve(static_cast<size_t>(kHeaderBytes + 8 * chunks));
  wire::append_pod<uint8_t>(out, kMagic);
  wire::append_pod<uint8_t>(out, kVersion);
  wire::append_pod<uint8_t>(out, static_cast<uint8_t>(algo));
  wire::append_pod<uint8_t>(out, static_cast<uint8_t>(split));
  wire::append_pod<uint64_t>(out, static_cast<uint64_t>(n));
  wire::append_pod<uint32_t>(out, static_cast<uint32_t>(chunks));
  wire::append_pod<uint64_t>(out, static_cast<uint64_t>(chunk_raw));
  for (const auto& cs : chunk_streams) {
    wire::append_pod<uint64_t>(out, static_cast<uint64_t>(cs.size()));
  }
  for (const auto& cs : chunk_streams) out.insert(out.end(), cs.begin(), cs.end());
  return out;
}

std::vector<std::byte> LosslessCodec::encode(
    const std::vector<std::byte>& data) const {
  return encode(data.data(), static_cast<int64_t>(data.size()));
}

std::vector<std::byte> LosslessCodec::decode(
    const std::vector<std::byte>& buf) const {
  ByteReader r{buf.data(), static_cast<int64_t>(buf.size())};
  ACTCOMP_CHECK(r.get<uint8_t>() == kMagic, "bad lossless container magic");
  ACTCOMP_CHECK(r.get<uint8_t>() == kVersion,
                "unsupported lossless container version");
  const auto algo_id = r.get<uint8_t>();
  ACTCOMP_CHECK(algo_id <= static_cast<uint8_t>(LosslessAlgo::kRleHuffman),
                "unknown lossless algo id " << int{algo_id});
  const auto split_id = r.get<uint8_t>();
  ACTCOMP_CHECK(split_id <= static_cast<uint8_t>(PlaneSplit::kStride4),
                "unknown plane split id " << int{split_id});
  const auto raw = static_cast<int64_t>(r.get<uint64_t>());
  ACTCOMP_CHECK(raw >= 0 &&
                    raw <= kMaxExpansion * static_cast<int64_t>(buf.size()),
                "implausible raw payload size on wire");
  const auto chunks = static_cast<int64_t>(r.get<uint32_t>());
  ACTCOMP_CHECK(chunks >= 1, "lossless container needs >= 1 chunk");
  const auto chunk_raw = static_cast<int64_t>(r.get<uint64_t>());
  if (chunks == 1) {
    ACTCOMP_CHECK(chunk_raw == raw,
                  "single-chunk container must have chunk_raw == raw_bytes");
  } else {
    ACTCOMP_CHECK(chunk_raw >= 1, "multi-chunk container needs chunk_raw >= 1");
    ACTCOMP_CHECK(chunk_raw * (chunks - 1) < raw && raw <= chunk_raw * chunks,
                  "chunk table inconsistent with raw_bytes");
  }
  std::vector<int64_t> sizes(static_cast<size_t>(chunks));
  int64_t total = 0;
  for (auto& s : sizes) {
    s = static_cast<int64_t>(r.get<uint64_t>());
    ACTCOMP_CHECK(s >= 0 && s <= static_cast<int64_t>(buf.size()),
                  "chunk size out of range on wire");
    total += s;
  }
  ACTCOMP_CHECK(r.off + total == static_cast<int64_t>(buf.size()),
                "container size does not match its chunk table (truncated or "
                "trailing bytes)");

  std::vector<std::byte> out;
  out.reserve(static_cast<size_t>(raw));
  const auto algo = static_cast<LosslessAlgo>(algo_id);
  const int stride = plane_count(static_cast<PlaneSplit>(split_id));
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t expected =
        c + 1 == chunks ? raw - chunk_raw * (chunks - 1) : chunk_raw;
    const std::byte* p = r.take(sizes[static_cast<size_t>(c)]);
    decode_chunk(p, sizes[static_cast<size_t>(c)], expected, algo, stride, out);
  }
  return out;
}

// ---------------------------------------------------------------------------
// LosslessCompressor.
// ---------------------------------------------------------------------------

LosslessCompressor::LosslessCompressor(LosslessCodec codec) : codec_(codec) {}

std::string LosslessCompressor::name() const {
  return "lossless(" + codec_.name() + ")";
}

CompressedMessage LosslessCompressor::do_encode(const tensor::Tensor& x) {
  std::vector<std::byte> fp16;
  fp16.reserve(static_cast<size_t>(x.numel()) * 2);
  wire::append_fp16(fp16, x);
  CompressedMessage msg;
  msg.shape_dims = x.shape().dims();
  msg.body = codec_.encode(fp16);
  return msg;
}

tensor::Tensor LosslessCompressor::do_decode(const CompressedMessage& msg) const {
  tensor::Shape shape{msg.shape_dims};
  const std::vector<std::byte> fp16 = codec_.decode(msg.body);
  ACTCOMP_CHECK(static_cast<int64_t>(fp16.size()) == shape.numel() * 2,
                "lossless payload decodes to " << fp16.size()
                                               << " bytes, expected "
                                               << shape.numel() * 2);
  size_t off = 0;
  std::vector<float> vals = wire::read_fp16(fp16, off, shape.numel());
  return tensor::Tensor(shape, std::move(vals));
}

tensor::Tensor LosslessCompressor::round_trip(const tensor::Tensor& x) {
  return tensor::fp16_round(x);
}

WireFormat LosslessCompressor::wire_size(const tensor::Shape& shape) const {
  const int64_t raw = fp16_bytes(shape);
  const int64_t header = kHeaderBytes + 8 * codec_.num_chunks(raw);
  return WireFormat{.payload_bytes = codec_.max_encoded_bytes(raw) - header,
                    .metadata_bytes = header};
}

// ---------------------------------------------------------------------------
// Segment layouts.
// ---------------------------------------------------------------------------

SegmentLayoutFn segment_whole(PlaneSplit split) {
  return [split](const tensor::Shape&, int64_t body_bytes) {
    return std::vector<BodySegment>{{0, body_bytes, split}};
  };
}

SegmentLayoutFn segments_topk() {
  return [](const tensor::Shape&, int64_t body_bytes) {
    ACTCOMP_CHECK(body_bytes % 6 == 0,
                  "top-k body is not 6 bytes per kept element: " << body_bytes);
    const int64_t k = body_bytes / 6;
    return std::vector<BodySegment>{{0, 4 * k, PlaneSplit::kStride4},
                                    {4 * k, 2 * k, PlaneSplit::kStride2}};
  };
}

SegmentLayoutFn segments_quantize() {
  return [](const tensor::Shape& shape, int64_t body_bytes) {
    ACTCOMP_CHECK(shape.rank() >= 1, "quantize body needs a ranked shape");
    const int64_t cols = shape.dim(-1);
    const int64_t rows = cols == 0 ? 0 : shape.numel() / cols;
    const int64_t header = rows * 4;
    ACTCOMP_CHECK(header <= body_bytes,
                  "quantize body smaller than its row-params header");
    return std::vector<BodySegment>{
        {0, header, PlaneSplit::kStride2},
        {header, body_bytes - header, PlaneSplit::kNone}};
  };
}

// ---------------------------------------------------------------------------
// StackedCompressor.
// ---------------------------------------------------------------------------

StackedCompressor::StackedCompressor(CompressorPtr inner, LosslessCodec codec,
                                     SegmentLayoutFn layout)
    : inner_(std::move(inner)), codec_(codec), layout_(std::move(layout)) {
  ACTCOMP_CHECK(inner_ != nullptr, "stacked compressor needs an inner codec");
  if (!layout_) layout_ = segment_whole(codec_.split);
}

std::string StackedCompressor::name() const {
  return inner_->name() + "+lossless(" + lossless_algo_label(codec_.algo) + ")";
}

std::vector<BodySegment> StackedCompressor::layout_for(
    const tensor::Shape& shape, int64_t body_bytes) const {
  std::vector<BodySegment> segs = layout_(shape, body_bytes);
  ACTCOMP_CHECK(!segs.empty(), "segment layout produced no segments");
  int64_t off = 0;
  for (const BodySegment& s : segs) {
    ACTCOMP_CHECK(s.offset == off && s.bytes >= 0,
                  "segment layout must tile the body in order without gaps");
    off += s.bytes;
  }
  ACTCOMP_CHECK(off == body_bytes,
                "segment layout covers " << off << " of " << body_bytes
                                         << " body bytes");
  return segs;
}

CompressedMessage StackedCompressor::do_encode(const tensor::Tensor& x) {
  CompressedMessage inner = inner_->encode(x);
  const auto body_bytes = static_cast<int64_t>(inner.body.size());
  const std::vector<BodySegment> segs = layout_for(x.shape(), body_bytes);

  CompressedMessage msg;
  msg.shape_dims = x.shape().dims();
  wire::append_pod<uint32_t>(msg.body, static_cast<uint32_t>(segs.size()));
  std::vector<std::vector<std::byte>> containers;
  containers.reserve(segs.size());
  for (const BodySegment& s : segs) {
    LosslessCodec c = codec_;
    c.split = s.split;
    containers.push_back(c.encode(inner.body.data() + s.offset, s.bytes));
    wire::append_pod<uint64_t>(msg.body,
                               static_cast<uint64_t>(containers.back().size()));
  }
  for (const auto& c : containers) {
    msg.body.insert(msg.body.end(), c.begin(), c.end());
  }
  return msg;
}

tensor::Tensor StackedCompressor::do_decode(const CompressedMessage& msg) const {
  size_t off = 0;
  const auto nseg = static_cast<int64_t>(wire::read_pod<uint32_t>(msg.body, off));
  ACTCOMP_CHECK(nseg >= 1, "stacked message needs >= 1 segment");
  std::vector<int64_t> sizes(static_cast<size_t>(nseg));
  for (auto& s : sizes) {
    s = static_cast<int64_t>(wire::read_pod<uint64_t>(msg.body, off));
  }
  CompressedMessage inner;
  inner.shape_dims = msg.shape_dims;
  for (int64_t i = 0; i < nseg; ++i) {
    const int64_t len = sizes[static_cast<size_t>(i)];
    ACTCOMP_CHECK(off + static_cast<size_t>(len) <= msg.body.size(),
                  "truncated stacked segment on wire");
    // The container header carries its own split, so decode needs no layout.
    const std::vector<std::byte> container(
        msg.body.begin() + static_cast<int64_t>(off),
        msg.body.begin() + static_cast<int64_t>(off) + len);
    const std::vector<std::byte> raw = codec_.decode(container);
    inner.body.insert(inner.body.end(), raw.begin(), raw.end());
    off += static_cast<size_t>(len);
  }
  ACTCOMP_CHECK(off == msg.body.size(),
                "trailing bytes after the stacked message's last segment");
  ACTCOMP_CHECK(
      static_cast<int64_t>(layout_for(tensor::Shape{msg.shape_dims},
                                      static_cast<int64_t>(inner.body.size()))
                               .size()) == nseg,
      "stacked segment count disagrees with the layout");
  return inner_->decode(inner);
}

tensor::Tensor StackedCompressor::round_trip(const tensor::Tensor& x) {
  return inner_->round_trip(x);
}

autograd::Variable StackedCompressor::apply(const autograd::Variable& x) {
  return inner_->apply(x);
}

WireFormat StackedCompressor::wire_size(const tensor::Shape& shape) const {
  const WireFormat inner = inner_->wire_size(shape);
  const std::vector<BodySegment> segs =
      layout_for(shape, inner.total_bytes());
  int64_t payload = 0;
  int64_t metadata = 4 + 8 * static_cast<int64_t>(segs.size());
  for (const BodySegment& s : segs) {
    LosslessCodec c = codec_;
    c.split = s.split;
    payload += c.max_encoded_bytes(s.bytes);
  }
  return WireFormat{.payload_bytes = payload, .metadata_bytes = metadata};
}

std::vector<autograd::Variable> StackedCompressor::parameters() {
  return inner_->parameters();
}

}  // namespace actcomp::compress
