#include "compress/randomk.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "autograd/functions.h"
#include "compress/wire.h"
#include "core/threadpool.h"
#include "tensor/check.h"
#include "tensor/fp16.h"
#include "tensor/kernels/kernel_table.h"
#include "tensor/ops.h"

namespace actcomp::compress {

namespace {
// Elements per parallel chunk for the gather/scatter loops.
constexpr int64_t kEwGrain = int64_t{1} << 13;
}  // namespace

RandomKCompressor::RandomKCompressor(double fraction, uint64_t seed)
    : fraction_(fraction), gen_(seed) {
  ACTCOMP_CHECK(fraction > 0.0 && fraction <= 1.0,
                "random-k fraction must be in (0, 1], got " << fraction);
}

std::string RandomKCompressor::name() const {
  std::ostringstream os;
  os << "randk(f=" << fraction_ << ')';
  return os.str();
}

int64_t RandomKCompressor::k_for(int64_t numel) const {
  if (numel == 0) return 0;
  const auto k = static_cast<int64_t>(
      std::llround(fraction_ * static_cast<double>(numel)));
  return std::clamp<int64_t>(k, 1, numel);
}

CompressedMessage RandomKCompressor::do_encode(const tensor::Tensor& x) {
  const int64_t n = x.numel();
  std::vector<int64_t> kept = gen_.sample_without_replacement(n, k_for(n));
  std::sort(kept.begin(), kept.end());
  CompressedMessage msg;
  msg.shape_dims = x.shape().dims();
  const int64_t k = static_cast<int64_t>(kept.size());
  msg.body.resize(static_cast<size_t>(k) * 6);
  const auto d = x.data();
  std::byte* idx_base = msg.body.data();
  std::byte* val_base = msg.body.data() + static_cast<size_t>(k) * 4;
  // Gather kept values per chunk, batch-convert through the SIMD fp16
  // kernel (same bit converter, same wire bytes).
  const tensor::kernels::KernelTable& kt = tensor::kernels::active_kernels();
  core::parallel_for(0, k, kEwGrain, [&](int64_t b, int64_t e) {
    const int64_t len = e - b;
    std::vector<float> vals(static_cast<size_t>(len));
    std::vector<uint16_t> half(static_cast<size_t>(len));
    for (int64_t i = b; i < e; ++i) {
      const int64_t src = kept[static_cast<size_t>(i)];
      const int32_t j = static_cast<int32_t>(src);
      std::memcpy(idx_base + i * 4, &j, 4);
      vals[static_cast<size_t>(i - b)] = d[static_cast<size_t>(src)];
    }
    kt.fp16_encode(vals.data(), half.data(), len);
    std::memcpy(val_base + b * 2, half.data(), static_cast<size_t>(len) * 2);
  });
  return msg;
}

tensor::Tensor RandomKCompressor::do_decode(const CompressedMessage& msg) const {
  tensor::Shape shape{msg.shape_dims};
  const int64_t k = k_for(shape.numel());
  ACTCOMP_CHECK(static_cast<size_t>(k) * 6 <= msg.body.size(),
                "truncated random-k wire message");
  tensor::Tensor out{shape};
  auto d = out.data();
  const std::byte* idx_base = msg.body.data();
  const std::byte* val_base = msg.body.data() + static_cast<size_t>(k) * 4;
  const int64_t numel = shape.numel();
  // Sampling is without replacement, so wire indices are unique and the
  // parallel scatter writes disjoint elements. Values batch-decode through
  // the SIMD fp16 kernel.
  const tensor::kernels::KernelTable& kt = tensor::kernels::active_kernels();
  core::parallel_for(0, k, kEwGrain, [&](int64_t b, int64_t e) {
    const int64_t len = e - b;
    std::vector<uint16_t> half(static_cast<size_t>(len));
    std::vector<float> vals(static_cast<size_t>(len));
    std::memcpy(half.data(), val_base + b * 2, static_cast<size_t>(len) * 2);
    kt.fp16_decode(half.data(), vals.data(), len);
    for (int64_t i = b; i < e; ++i) {
      int32_t j = 0;
      std::memcpy(&j, idx_base + i * 4, 4);
      ACTCOMP_CHECK(j >= 0 && j < numel, "random-k index out of range on wire");
      d[static_cast<size_t>(j)] = vals[static_cast<size_t>(i - b)];
    }
  });
  return out;
}

autograd::Variable RandomKCompressor::apply(const autograd::Variable& x) {
  const tensor::Tensor& xv = x.value();
  const int64_t n = xv.numel();
  const std::vector<int64_t> kept = gen_.sample_without_replacement(n, k_for(n));

  tensor::Tensor out{xv.shape()};
  tensor::Tensor mask{xv.shape()};
  const auto din = xv.data();
  auto dout = out.data();
  auto dm = mask.data();
  const tensor::kernels::KernelTable& kt = tensor::kernels::active_kernels();
  core::parallel_for(
      0, static_cast<int64_t>(kept.size()), kEwGrain, [&](int64_t b, int64_t e) {
        const int64_t len = e - b;
        std::vector<float> vals(static_cast<size_t>(len));
        for (int64_t i = b; i < e; ++i) {
          vals[static_cast<size_t>(i - b)] =
              din[static_cast<size_t>(kept[static_cast<size_t>(i)])];
        }
        kt.fp16_round_trip(vals.data(), vals.data(), len);
        for (int64_t i = b; i < e; ++i) {
          const size_t j = static_cast<size_t>(kept[static_cast<size_t>(i)]);
          dout[j] = vals[static_cast<size_t>(i - b)];
          dm[j] = 1.0f;
        }
      });
  return autograd::custom_unary(
      x, std::move(out),
      [mask](const tensor::Tensor& g, const tensor::Tensor&) {
        return tensor::mul(g, mask);
      },
      "compress:" + name());
}

WireFormat RandomKCompressor::wire_size(const tensor::Shape& shape) const {
  const int64_t k = k_for(shape.numel());
  return WireFormat{.payload_bytes = k * 2, .metadata_bytes = k * 4};
}

}  // namespace actcomp::compress
