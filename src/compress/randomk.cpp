#include "compress/randomk.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "autograd/functions.h"
#include "compress/wire.h"
#include "tensor/check.h"
#include "tensor/fp16.h"
#include "tensor/ops.h"

namespace actcomp::compress {

RandomKCompressor::RandomKCompressor(double fraction, uint64_t seed)
    : fraction_(fraction), gen_(seed) {
  ACTCOMP_CHECK(fraction > 0.0 && fraction <= 1.0,
                "random-k fraction must be in (0, 1], got " << fraction);
}

std::string RandomKCompressor::name() const {
  std::ostringstream os;
  os << "randk(f=" << fraction_ << ')';
  return os.str();
}

int64_t RandomKCompressor::k_for(int64_t numel) const {
  if (numel == 0) return 0;
  const auto k = static_cast<int64_t>(
      std::llround(fraction_ * static_cast<double>(numel)));
  return std::clamp<int64_t>(k, 1, numel);
}

CompressedMessage RandomKCompressor::encode(const tensor::Tensor& x) {
  const int64_t n = x.numel();
  std::vector<int64_t> kept = gen_.sample_without_replacement(n, k_for(n));
  std::sort(kept.begin(), kept.end());
  CompressedMessage msg;
  msg.shape_dims = x.shape().dims();
  msg.body.reserve(kept.size() * 6);
  const auto d = x.data();
  for (int64_t i : kept) wire::append_pod<int32_t>(msg.body, static_cast<int32_t>(i));
  for (int64_t i : kept) {
    wire::append_pod<uint16_t>(
        msg.body, tensor::fp32_to_fp16_bits(d[static_cast<size_t>(i)]));
  }
  return msg;
}

tensor::Tensor RandomKCompressor::decode(const CompressedMessage& msg) const {
  tensor::Shape shape{msg.shape_dims};
  const int64_t k = k_for(shape.numel());
  tensor::Tensor out{shape};
  auto d = out.data();
  size_t off = 0;
  std::vector<int32_t> idx(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) idx[static_cast<size_t>(i)] = wire::read_pod<int32_t>(msg.body, off);
  for (int64_t i = 0; i < k; ++i) {
    const float v = tensor::fp16_bits_to_fp32(wire::read_pod<uint16_t>(msg.body, off));
    const int32_t j = idx[static_cast<size_t>(i)];
    ACTCOMP_CHECK(j >= 0 && j < shape.numel(), "random-k index out of range on wire");
    d[static_cast<size_t>(j)] = v;
  }
  return out;
}

autograd::Variable RandomKCompressor::apply(const autograd::Variable& x) {
  const tensor::Tensor& xv = x.value();
  const int64_t n = xv.numel();
  const std::vector<int64_t> kept = gen_.sample_without_replacement(n, k_for(n));

  tensor::Tensor out{xv.shape()};
  tensor::Tensor mask{xv.shape()};
  const auto din = xv.data();
  auto dout = out.data();
  auto dm = mask.data();
  for (int64_t i : kept) {
    dout[static_cast<size_t>(i)] = tensor::fp16_bits_to_fp32(
        tensor::fp32_to_fp16_bits(din[static_cast<size_t>(i)]));
    dm[static_cast<size_t>(i)] = 1.0f;
  }
  return autograd::custom_unary(
      x, std::move(out),
      [mask](const tensor::Tensor& g, const tensor::Tensor&) {
        return tensor::mul(g, mask);
      },
      "compress:" + name());
}

WireFormat RandomKCompressor::wire_size(const tensor::Shape& shape) const {
  const int64_t k = k_for(shape.numel());
  return WireFormat{.payload_bytes = k * 2, .metadata_bytes = k * 4};
}

}  // namespace actcomp::compress
