// Lossless wire compression (DESIGN.md §16, WIRE_FORMATS.md §4-§5).
//
// ZipCCL (PAPERS.md) shows that *lossless* codecs on collective payloads
// accelerate LLM training with zero accuracy risk — a column the source
// paper's Table 4/7 sweeps (all lossy) do not have. This module adds that
// stage: a byte-oriented container codec that splits fixed-stride payloads
// (fp16/fp32/int32 streams) into byte planes and runs a real run-length
// coder (PackBits) and/or a canonical order-0 Huffman coder over each plane.
//
// Three surfaces:
//   * LosslessCodec      — bytes in, LosslessContainer bytes out. Exact
//     round-trip for ANY input (NaN payloads, ±0, empty); per-plane raw
//     fallback guarantees the container never expands beyond
//     max_encoded_bytes(). Optional chunking emits an up-front chunk table
//     so a receiver can decode chunk i as soon as it lands — the wire-level
//     hook for the chunk-pipelined collectives in sim/collectives.h.
//   * LosslessCompressor — the codec as a standalone Compressor: the fp16
//     baseline wire stream (identical precision loss to "w/o") inside a
//     container. The paper-table benches use it for the "lossless" column.
//   * StackedCompressor  — lossless-over-lossy: codes an inner compressor's
//     serialized body, segment by segment (e.g. Top-K's int32 index plane
//     and fp16 value plane get different plane splits). Decoding the
//     lossless layer recovers the inner wire bytes exactly, so accuracy
//     behaviour (round_trip/apply) is the inner algorithm's, byte for byte.
//
// The byte-level container layout is normative in WIRE_FORMATS.md; the
// codec/plane-split registries below are cross-checked against that spec by
// tools/check_docs.py (./ci.sh docs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace actcomp::compress {

/// Entropy stage applied to each byte plane. kRaw stores the plane verbatim;
/// the others may still fall back to raw per plane when coding would expand
/// (WIRE_FORMATS.md §4.3).
enum class LosslessAlgo : uint8_t {
  kRaw = 0,
  kRle = 1,         ///< PackBits run-length coding
  kHuffman = 2,     ///< canonical order-0 Huffman over bytes
  kRleHuffman = 3,  ///< Huffman over the PackBits stream
};

/// How the payload is split into byte planes before coding. kStride2 models
/// fp16 streams (plane 1 = sign/exponent bytes, highly compressible);
/// kStride4 models fp32 or int32 streams (e.g. Top-K's index plane, whose
/// high bytes are near-constant).
enum class PlaneSplit : uint8_t {
  kNone = 0,     ///< one plane, the payload verbatim
  kStride2 = 1,  ///< 2 planes: bytes at offsets ≡ 0, 1 (mod 2)
  kStride4 = 2,  ///< 4 planes: bytes at offsets ≡ 0..3 (mod 4)
};

/// Spec ids ("raw", "rle", "huffman", "rle+huffman") — the names the
/// wire-format spec's format index must list (tools/check_docs.py).
std::string lossless_algo_label(LosslessAlgo algo);
/// Spec ids ("none", "bp2", "bp4").
std::string plane_split_label(PlaneSplit split);
/// Plane count for a split (1, 2 or 4).
int plane_count(PlaneSplit split);

/// A configured lossless coder. Encode/decode are exact inverses for every
/// byte string; decode throws std::invalid_argument on truncated or
/// malformed containers (the container's sizes are fully determined by its
/// header, so any proper prefix — and any trailing garbage — is rejected).
struct LosslessCodec {
  LosslessAlgo algo = LosslessAlgo::kRleHuffman;
  PlaneSplit split = PlaneSplit::kStride2;
  /// Raw bytes per chunk; 0 = one chunk for the whole payload. Chunks are
  /// independently decodable (their encoded sizes are in the header's chunk
  /// table), which is what the chunk-pipelined transfer model overlaps.
  int64_t chunk_bytes = 0;

  /// Spec id, e.g. "rle+huffman/bp2".
  std::string name() const;

  std::vector<std::byte> encode(const std::byte* data, int64_t n) const;
  std::vector<std::byte> encode(const std::vector<std::byte>& data) const;
  std::vector<std::byte> decode(const std::vector<std::byte>& buf) const;

  /// Chunks encode() will emit for a payload of `raw_bytes`.
  int num_chunks(int64_t raw_bytes) const;
  /// Hard upper bound on encode()'s output size (header + chunk table +
  /// per-plane raw fallback). wire_size() of the wrapping compressors quotes
  /// this bound, since a lossless codec's true size is data-dependent.
  int64_t max_encoded_bytes(int64_t raw_bytes) const;
};

/// The codec tiers benched per-record in bench/kernels_bench and documented
/// in WIRE_FORMATS.md — the codec registry tools/check_docs.py checks.
const std::vector<LosslessCodec>& standard_lossless_codecs();

/// Standalone lossless wire compressor: the baseline fp16 stream (same
/// precision loss as "w/o") inside a LosslessContainer. round_trip() is
/// exactly the fp16 round-trip — the container itself adds zero error.
///
/// wire_size() deviates from the base-class contract in one documented way:
/// a lossless message's size is data-dependent, so it returns the
/// max_encoded_bytes() UPPER BOUND and tests assert encode() <= wire_size()
/// instead of equality.
class LosslessCompressor : public Compressor {
 public:
  explicit LosslessCompressor(LosslessCodec codec = LosslessCodec{});

  std::string name() const override;
  tensor::Tensor round_trip(const tensor::Tensor& x) override;
  WireFormat wire_size(const tensor::Shape& shape) const override;
  bool allreduce_compatible() const override { return false; }
  const LosslessCodec& codec() const { return codec_; }

 protected:
  CompressedMessage do_encode(const tensor::Tensor& x) override;
  tensor::Tensor do_decode(const CompressedMessage& msg) const override;

 private:
  LosslessCodec codec_;
};

/// One contiguous slice of an inner compressor's body and the plane split it
/// should be coded with (WIRE_FORMATS.md §5).
struct BodySegment {
  int64_t offset = 0;
  int64_t bytes = 0;
  PlaneSplit split = PlaneSplit::kNone;
};

/// Maps an inner message (input shape + body size) to its segment layout.
/// Segments must tile [0, body_bytes) in order without gaps.
using SegmentLayoutFn =
    std::function<std::vector<BodySegment>(const tensor::Shape&, int64_t)>;

/// Whole body as one segment with the given split (generic fp16-ish bodies).
SegmentLayoutFn segment_whole(PlaneSplit split);
/// Top-K/Random-K bodies: [0, 4k) int32 index plane (bp4), [4k, 6k) fp16
/// value plane (bp2), with k = body_bytes / 6.
SegmentLayoutFn segments_topk();
/// Quantize bodies: rows*4 bytes of fp16 (lo, scale) pairs (bp2), then the
/// bit-packed codes (no split). rows = numel / last-dim.
SegmentLayoutFn segments_quantize();

/// Lossless-over-lossy: serializes the inner compressor, then codes its body
/// segment-by-segment. Decoding the lossless layer reproduces the inner wire
/// bytes exactly, so decode()/round_trip()/apply() match the inner algorithm
/// bit for bit. wire_size() is the raw-fallback upper bound, like
/// LosslessCompressor's.
class StackedCompressor : public Compressor {
 public:
  /// `layout` defaults to segment_whole(codec.split).
  StackedCompressor(CompressorPtr inner, LosslessCodec codec,
                    SegmentLayoutFn layout = nullptr);

  std::string name() const override;
  tensor::Tensor round_trip(const tensor::Tensor& x) override;
  autograd::Variable apply(const autograd::Variable& x) override;
  WireFormat wire_size(const tensor::Shape& shape) const override;
  bool allreduce_compatible() const override { return false; }
  std::vector<autograd::Variable> parameters() override;

  Compressor& inner() { return *inner_; }

 protected:
  CompressedMessage do_encode(const tensor::Tensor& x) override;
  tensor::Tensor do_decode(const CompressedMessage& msg) const override;

 private:
  std::vector<BodySegment> layout_for(const tensor::Shape& shape,
                                      int64_t body_bytes) const;

  CompressorPtr inner_;
  LosslessCodec codec_;
  SegmentLayoutFn layout_;
};

}  // namespace actcomp::compress
