// Byte-level helpers shared by the wire formats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/check.h"
#include "tensor/fp16.h"
#include "tensor/tensor.h"

namespace actcomp::compress::wire {

template <typename T>
void append_pod(std::vector<std::byte>& buf, T v) {
  const size_t off = buf.size();
  buf.resize(off + sizeof(T));
  std::memcpy(buf.data() + off, &v, sizeof(T));
}

template <typename T>
T read_pod(const std::vector<std::byte>& buf, size_t& off) {
  ACTCOMP_CHECK(off + sizeof(T) <= buf.size(), "truncated wire message");
  T v{};
  std::memcpy(&v, buf.data() + off, sizeof(T));
  off += sizeof(T);
  return v;
}

/// Append every element of `t` as IEEE fp16.
void append_fp16(std::vector<std::byte>& buf, const tensor::Tensor& t);

/// Read `n` fp16 values starting at `off` into fp32.
std::vector<float> read_fp16(const std::vector<std::byte>& buf, size_t& off,
                             int64_t n);

}  // namespace actcomp::compress::wire
