// Hybrid AE + quantization compressor — the paper's future-work direction.
//
// The paper's conclusion asks for "improved activation compression
// algorithms"; the natural composition of its two accuracy-preserving
// families is to quantize the autoencoder's code: the AE already maps the
// activation into a low-dimensional learned basis, and the code's dynamic
// range is narrow enough for aggressive uniform quantization. At A2's
// ratio this multiplies the wire saving by another 16/bits x while keeping
// the decode a single GEMM.
//
// Wire: quantized code (bits per element, per-row affine params), decoded
// by dequantize + decoder GEMM. The training-plane apply() is fully
// differentiable through the codec with a straight-through quantizer.
#pragma once

#include "compress/autoencoder.h"
#include "compress/quantize.h"

namespace actcomp::compress {

class HybridAeQuantCompressor final : public Compressor {
 public:
  HybridAeQuantCompressor(int64_t hidden, int64_t code, int bits,
                          tensor::Generator& gen);

  std::string name() const override;
  CompressedMessage do_encode(const tensor::Tensor& x) override;
  tensor::Tensor do_decode(const CompressedMessage& msg) const override;
  tensor::Tensor round_trip(const tensor::Tensor& x) override;
  autograd::Variable apply(const autograd::Variable& x) override;
  WireFormat wire_size(const tensor::Shape& shape) const override;
  /// Quantized codes are not summable — all-gather fallback, like Q*.
  bool allreduce_compatible() const override { return false; }
  std::vector<autograd::Variable> parameters() override;

  int64_t code() const { return ae_.code(); }
  int bits() const { return quant_.bits(); }

 private:
  tensor::Shape code_shape(const tensor::Shape& in) const;

  AutoencoderCompressor ae_;
  QuantizeCompressor quant_;
};

}  // namespace actcomp::compress
