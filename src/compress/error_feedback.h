// Error-feedback wrapper (paper §3.3).
//
// Classic EF-SGD style residual correction: the compressor transmits
// C(x + e) and locally retains e' = (x + e) − C(x + e) to be added to the
// next message. The paper's implementation "allows the integration of
// error-feedback compression algorithms by retaining the error information
// from the previous compression step" — this wrapper adds that capability to
// any inner Compressor.
//
// One wrapper instance corresponds to one communication point (one layer's
// activation stream); the residual is reset whenever the input shape changes
// (e.g. last partial batch).
#pragma once

#include "compress/compressor.h"

namespace actcomp::compress {

class ErrorFeedbackCompressor final : public Compressor {
 public:
  explicit ErrorFeedbackCompressor(CompressorPtr inner);

  std::string name() const override;
  CompressedMessage do_encode(const tensor::Tensor& x) override;
  tensor::Tensor do_decode(const CompressedMessage& msg) const override;
  tensor::Tensor round_trip(const tensor::Tensor& x) override;
  autograd::Variable apply(const autograd::Variable& x) override;
  WireFormat wire_size(const tensor::Shape& shape) const override;
  bool allreduce_compatible() const override;
  std::vector<autograd::Variable> parameters() override;

  const tensor::Tensor& residual() const { return residual_; }
  void reset_residual();

 private:
  /// x + residual (allocating the residual lazily / on shape change).
  tensor::Tensor shifted(const tensor::Tensor& x);
  void update_residual(const tensor::Tensor& shifted_in,
                       const tensor::Tensor& reconstructed);

  CompressorPtr inner_;
  tensor::Tensor residual_;
  bool has_residual_ = false;
};

}  // namespace actcomp::compress
