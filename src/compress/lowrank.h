// Low-rank (PowerSGD-style) compression — implemented to DEMONSTRATE the
// paper's negative result, not to use.
//
// The paper's §2.2/Fig. 2 argument for excluding low-rank compressors from
// the study is that activation matrices, unlike gradient matrices, are not
// low-rank, so a rank-r factorization X ≈ P·Qᵀ destroys activations at any
// budget where it would be competitive. This class implements the
// single-round subspace (power) iteration of PowerSGD (Vogels et al. 2019)
// over an activation-shaped matrix so bench/ablation_lowrank can measure
// that claim directly: at equal wire budget, the low-rank reconstruction
// error on activations is far worse than the AE's after training (and than
// quantization's always), while on gradient-like matrices it excels.
//
// Wire format: P [rows x r] and Q [cols x r] as fp16 -> (rows + cols)·r·2
// bytes per message.
#pragma once

#include "compress/compressor.h"
#include "tensor/random.h"

namespace actcomp::compress {

class LowRankCompressor final : public Compressor {
 public:
  /// `rank`: factorization rank r; `power_iterations`: extra subspace
  /// iterations (PowerSGD uses 1 round total; more rounds tighten the
  /// approximation at extra encode cost).
  LowRankCompressor(int64_t rank, uint64_t seed, int power_iterations = 1);

  std::string name() const override;
  CompressedMessage do_encode(const tensor::Tensor& x) override;
  tensor::Tensor do_decode(const CompressedMessage& msg) const override;
  tensor::Tensor round_trip(const tensor::Tensor& x) override;
  WireFormat wire_size(const tensor::Shape& shape) const override;
  /// P/Q factors of different ranks cannot be summed elementwise.
  bool allreduce_compatible() const override { return false; }

  int64_t rank() const { return rank_; }

  /// Rank giving the same wire budget as `target_bytes` on `shape`.
  static int64_t rank_for_budget(const tensor::Shape& shape, int64_t target_bytes);

 private:
  struct Factors {
    tensor::Tensor p;  // [rows, r]
    tensor::Tensor q;  // [cols, r]
  };
  Factors factorize(const tensor::Tensor& x2d);

  int64_t rank_;
  int power_iterations_;
  tensor::Generator gen_;
};

}  // namespace actcomp::compress
