#include "compress/hybrid.h"

#include <sstream>

#include "autograd/functions.h"
#include "tensor/check.h"
#include "tensor/ops.h"

namespace actcomp::compress {

namespace ts = actcomp::tensor;
namespace ag = actcomp::autograd;

HybridAeQuantCompressor::HybridAeQuantCompressor(int64_t hidden, int64_t code,
                                                 int bits,
                                                 tensor::Generator& gen)
    : ae_(hidden, code, gen), quant_(bits) {}

std::string HybridAeQuantCompressor::name() const {
  std::ostringstream os;
  os << "hybrid(c=" << ae_.code() << ',' << quant_.bits() << "b)";
  return os.str();
}

ts::Shape HybridAeQuantCompressor::code_shape(const ts::Shape& in) const {
  ACTCOMP_CHECK(in.dim(-1) == ae_.hidden(),
                "hybrid expects last dim " << ae_.hidden() << ", got " << in.str());
  return ts::Shape{in.numel() / ae_.hidden(), ae_.code()};
}

CompressedMessage HybridAeQuantCompressor::do_encode(const ts::Tensor& x) {
  const int64_t rows = x.numel() / ae_.hidden();
  const ts::Tensor code = ts::matmul2d(
      x.reshape(ts::Shape{rows, ae_.hidden()}), ae_.encoder_weight().value());
  CompressedMessage inner = quant_.encode(code);
  CompressedMessage msg;
  msg.shape_dims = x.shape().dims();
  msg.body = std::move(inner.body);
  return msg;
}

ts::Tensor HybridAeQuantCompressor::do_decode(const CompressedMessage& msg) const {
  ts::Shape shape{msg.shape_dims};
  CompressedMessage inner;
  inner.shape_dims = code_shape(shape).dims();
  inner.body = msg.body;
  const ts::Tensor code = quant_.decode(inner);
  return ts::matmul2d(code, ae_.decoder_weight().value()).reshape(shape);
}

ts::Tensor HybridAeQuantCompressor::round_trip(const ts::Tensor& x) {
  const int64_t rows = x.numel() / ae_.hidden();
  const ts::Tensor code = ts::matmul2d(
      x.reshape(ts::Shape{rows, ae_.hidden()}), ae_.encoder_weight().value());
  return ts::matmul2d(quant_.round_trip(code), ae_.decoder_weight().value())
      .reshape(x.shape());
}

autograd::Variable HybridAeQuantCompressor::apply(const ag::Variable& x) {
  ag::Variable code = ag::matmul(x, ae_.encoder_weight());
  // Straight-through quantizer on the code.
  code = ag::custom_unary(
      code, quant_.round_trip(code.value()),
      [](const ts::Tensor& g, const ts::Tensor&) { return g; },
      "hybrid_quant_code");
  return ag::matmul(code, ae_.decoder_weight());
}

WireFormat HybridAeQuantCompressor::wire_size(const ts::Shape& shape) const {
  return quant_.wire_size(code_shape(shape));
}

std::vector<ag::Variable> HybridAeQuantCompressor::parameters() {
  return ae_.parameters();
}

}  // namespace actcomp::compress
