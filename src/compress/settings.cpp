#include "compress/settings.h"

#include <algorithm>
#include <cmath>

#include "compress/autoencoder.h"
#include "compress/identity.h"
#include "compress/quantize.h"
#include "compress/randomk.h"
#include "compress/topk.h"
#include "tensor/check.h"

namespace actcomp::compress {

std::string setting_label(Setting s) {
  switch (s) {
    case Setting::kBaseline: return "w/o";
    case Setting::kA1: return "A1";
    case Setting::kA2: return "A2";
    case Setting::kT1: return "T1";
    case Setting::kT2: return "T2";
    case Setting::kT3: return "T3";
    case Setting::kT4: return "T4";
    case Setting::kR1: return "R1";
    case Setting::kR2: return "R2";
    case Setting::kR3: return "R3";
    case Setting::kR4: return "R4";
    case Setting::kQ1: return "Q1";
    case Setting::kQ2: return "Q2";
    case Setting::kQ3: return "Q3";
  }
  ACTCOMP_ASSERT(false, "unreachable setting enum");
}

std::optional<Setting> parse_setting(const std::string& label) {
  for (Setting s : all_settings()) {
    if (setting_label(s) == label) return s;
  }
  return std::nullopt;
}

const std::vector<Setting>& all_settings() {
  static const std::vector<Setting> kAll = {
      Setting::kBaseline, Setting::kA1, Setting::kA2, Setting::kT1,
      Setting::kT2,       Setting::kT3, Setting::kT4, Setting::kR1,
      Setting::kR2,       Setting::kR3, Setting::kR4, Setting::kQ1,
      Setting::kQ2,       Setting::kQ3};
  return kAll;
}

const std::vector<Setting>& main_settings() {
  static const std::vector<Setting> kMain = {
      Setting::kBaseline, Setting::kA1, Setting::kA2, Setting::kT1,
      Setting::kT2,       Setting::kT3, Setting::kT4, Setting::kR1,
      Setting::kR2,       Setting::kR3, Setting::kR4, Setting::kQ1,
      Setting::kQ2};
  return kMain;
}

namespace {
int64_t ref_code(Setting s) {
  switch (s) {
    case Setting::kA1:
    case Setting::kT1:
    case Setting::kT3:
    case Setting::kR1:
    case Setting::kR3:
      return kRefCodeA1;
    case Setting::kA2:
    case Setting::kT2:
    case Setting::kT4:
    case Setting::kR2:
    case Setting::kR4:
      return kRefCodeA2;
    default:
      ACTCOMP_CHECK(false, "setting " << setting_label(s)
                                      << " has no AE reference dim");
  }
}

bool is_same_comm(Setting s) {
  return s == Setting::kT1 || s == Setting::kT2 || s == Setting::kR1 ||
         s == Setting::kR2;
}
}  // namespace

double sparse_fraction(Setting s) {
  switch (s) {
    case Setting::kT1:
    case Setting::kT2:
    case Setting::kR1:
    case Setting::kR2:
    case Setting::kT3:
    case Setting::kT4:
    case Setting::kR3:
    case Setting::kR4: {
      const double ratio =
          static_cast<double>(ref_code(s)) / static_cast<double>(kRefHidden);
      return is_same_comm(s)
                 ? ratio * 2.0 / static_cast<double>(kSparseBytesPerElement)
                 : ratio;
    }
    default:
      ACTCOMP_CHECK(false, "setting " << setting_label(s)
                                      << " is not a sparsification setting");
  }
}

int64_t ae_code_size(Setting s, int64_t hidden) {
  ACTCOMP_CHECK(s == Setting::kA1 || s == Setting::kA2,
                "setting " << setting_label(s) << " is not an AE setting");
  ACTCOMP_CHECK(hidden >= 2, "hidden size too small for AE: " << hidden);
  const double scaled = static_cast<double>(ref_code(s)) *
                        static_cast<double>(hidden) /
                        static_cast<double>(kRefHidden);
  return std::clamp<int64_t>(static_cast<int64_t>(std::llround(scaled)), 1,
                             hidden - 1);
}

int quant_bits(Setting s) {
  switch (s) {
    case Setting::kQ1: return 2;
    case Setting::kQ2: return 4;
    case Setting::kQ3: return 8;
    default:
      ACTCOMP_CHECK(false, "setting " << setting_label(s)
                                      << " is not a quantization setting");
  }
}

CompressorPtr make_compressor(Setting setting, int64_t hidden,
                              tensor::Generator& gen) {
  switch (setting) {
    case Setting::kBaseline:
      return std::make_unique<IdentityCompressor>();
    case Setting::kA1:
    case Setting::kA2:
      return std::make_unique<AutoencoderCompressor>(
          hidden, ae_code_size(setting, hidden), gen);
    case Setting::kT1:
    case Setting::kT2:
    case Setting::kT3:
    case Setting::kT4:
      return std::make_unique<TopKCompressor>(sparse_fraction(setting));
    case Setting::kR1:
    case Setting::kR2:
    case Setting::kR3:
    case Setting::kR4:
      return std::make_unique<RandomKCompressor>(
          sparse_fraction(setting), static_cast<uint64_t>(gen.randint(1, 1u << 30)));
    case Setting::kQ1:
    case Setting::kQ2:
    case Setting::kQ3:
      return std::make_unique<QuantizeCompressor>(quant_bits(setting));
  }
  ACTCOMP_ASSERT(false, "unreachable setting enum");
}

}  // namespace actcomp::compress
