#include "compress/error_feedback.h"

#include "autograd/functions.h"
#include "tensor/check.h"
#include "tensor/ops.h"

namespace actcomp::compress {

ErrorFeedbackCompressor::ErrorFeedbackCompressor(CompressorPtr inner)
    : inner_(std::move(inner)) {
  ACTCOMP_CHECK(inner_ != nullptr, "error feedback needs an inner compressor");
}

std::string ErrorFeedbackCompressor::name() const {
  return "ef(" + inner_->name() + ")";
}

void ErrorFeedbackCompressor::reset_residual() {
  residual_ = tensor::Tensor();
  has_residual_ = false;
}

tensor::Tensor ErrorFeedbackCompressor::shifted(const tensor::Tensor& x) {
  if (!has_residual_ || residual_.shape() != x.shape()) return x.clone();
  return tensor::add(x, residual_);
}

void ErrorFeedbackCompressor::update_residual(const tensor::Tensor& shifted_in,
                                              const tensor::Tensor& reconstructed) {
  residual_ = tensor::sub(shifted_in, reconstructed);
  has_residual_ = true;
}

CompressedMessage ErrorFeedbackCompressor::do_encode(const tensor::Tensor& x) {
  const tensor::Tensor s = shifted(x);
  CompressedMessage msg = inner_->encode(s);
  update_residual(s, inner_->decode(msg));
  return msg;
}

tensor::Tensor ErrorFeedbackCompressor::do_decode(const CompressedMessage& msg) const {
  return inner_->decode(msg);
}

tensor::Tensor ErrorFeedbackCompressor::round_trip(const tensor::Tensor& x) {
  const tensor::Tensor s = shifted(x);
  tensor::Tensor out = inner_->round_trip(s);
  update_residual(s, out);
  return out;
}

autograd::Variable ErrorFeedbackCompressor::apply(const autograd::Variable& x) {
  // The residual is a constant w.r.t. the current step's parameters; attach
  // it as a non-grad leaf, run the inner differentiable op on the sum, and
  // refresh the residual from the realized values.
  const bool use_residual = has_residual_ && residual_.shape() == x.value().shape();
  autograd::Variable shifted_var =
      use_residual ? autograd::add(x, autograd::Variable::leaf(residual_)) : x;
  autograd::Variable out = inner_->apply(shifted_var);
  update_residual(shifted_var.value(), out.value());
  return out;
}

WireFormat ErrorFeedbackCompressor::wire_size(const tensor::Shape& shape) const {
  return inner_->wire_size(shape);
}

bool ErrorFeedbackCompressor::allreduce_compatible() const {
  return inner_->allreduce_compatible();
}

std::vector<autograd::Variable> ErrorFeedbackCompressor::parameters() {
  return inner_->parameters();
}

}  // namespace actcomp::compress
