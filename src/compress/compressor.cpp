#include "compress/compressor.h"

#include "autograd/functions.h"
#include "tensor/check.h"

namespace actcomp::compress {

int64_t fp16_bytes(const tensor::Shape& shape) { return shape.numel() * 2; }

tensor::Tensor Compressor::round_trip(const tensor::Tensor& x) {
  return decode(encode(x));
}

autograd::Variable Compressor::apply(const autograd::Variable& x) {
  tensor::Tensor out = round_trip(x.value());
  // NOTE: the closure captures `this`; the compressor must outlive the tape
  // (the Trainer owns compressors for the whole training run).
  return autograd::custom_unary(
      x, std::move(out),
      [this](const tensor::Tensor& g, const tensor::Tensor& in) {
        return vjp(g, in);
      },
      "compress:" + name());
}

tensor::Tensor Compressor::vjp(const tensor::Tensor& grad_out,
                               const tensor::Tensor& input) const {
  ACTCOMP_ASSERT(grad_out.shape() == input.shape(),
                 "compressor vjp shape mismatch");
  // Straight-through estimator: the paper's PyTorch integration backpropagates
  // through the decompressed float tensor as if compression were identity.
  return grad_out;
}

}  // namespace actcomp::compress
