#include "compress/compressor.h"

#include "autograd/functions.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "tensor/check.h"

namespace actcomp::compress {

int64_t fp16_bytes(const tensor::Shape& shape) { return shape.numel() * 2; }

CompressedMessage Compressor::encode(const tensor::Tensor& x) {
  ACTCOMP_PROFILE("compress.encode");
  CompressedMessage msg = do_encode(x);
  static obs::Counter& calls =
      obs::Registry::instance().counter("compress.encode.calls");
  static obs::Counter& bytes_in =
      obs::Registry::instance().counter("compress.encode.bytes_in_fp16");
  static obs::Counter& bytes_out =
      obs::Registry::instance().counter("compress.encode.bytes_out");
  calls.add();
  bytes_in.add(fp16_bytes(x.shape()));
  bytes_out.add(msg.body_bytes());
  // Cumulative wire ratio over the whole run so far (bytes_out / bytes_in);
  // nested encodes (error feedback, hybrid) double-count by design — the
  // outermost message is what actually travels, and its bytes dominate.
  static obs::Gauge& ratio =
      obs::Registry::instance().gauge("compress.wire_ratio");
  const double in = static_cast<double>(bytes_in.value());
  if (in > 0) ratio.set(static_cast<double>(bytes_out.value()) / in);
  return msg;
}

tensor::Tensor Compressor::decode(const CompressedMessage& msg) const {
  ACTCOMP_PROFILE("compress.decode");
  static obs::Counter& calls =
      obs::Registry::instance().counter("compress.decode.calls");
  calls.add();
  return do_decode(msg);
}

tensor::Tensor Compressor::round_trip(const tensor::Tensor& x) {
  return decode(encode(x));
}

autograd::Variable Compressor::apply(const autograd::Variable& x) {
  tensor::Tensor out = round_trip(x.value());
  // NOTE: the closure captures `this`; the compressor must outlive the tape
  // (the Trainer owns compressors for the whole training run).
  return autograd::custom_unary(
      x, std::move(out),
      [this](const tensor::Tensor& g, const tensor::Tensor& in) {
        return vjp(g, in);
      },
      "compress:" + name());
}

tensor::Tensor Compressor::vjp(const tensor::Tensor& grad_out,
                               const tensor::Tensor& input) const {
  ACTCOMP_ASSERT(grad_out.shape() == input.shape(),
                 "compressor vjp shape mismatch");
  // Straight-through estimator: the paper's PyTorch integration backpropagates
  // through the decompressed float tensor as if compression were identity.
  return grad_out;
}

}  // namespace actcomp::compress
