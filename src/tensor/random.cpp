#include "tensor/random.h"

#include <cmath>
#include <numeric>
#include <unordered_map>

#include "tensor/check.h"

namespace actcomp::tensor {

Tensor Generator::normal(Shape shape, float mean, float stddev) {
  Tensor t(std::move(shape));
  std::normal_distribution<float> dist(mean, stddev);
  for (float& v : t.data()) v = dist(engine_);
  return t;
}

Tensor Generator::uniform(Shape shape, float lo, float hi) {
  ACTCOMP_CHECK(lo <= hi, "uniform bounds inverted: [" << lo << ", " << hi << ")");
  Tensor t(std::move(shape));
  std::uniform_real_distribution<float> dist(lo, hi);
  for (float& v : t.data()) v = dist(engine_);
  return t;
}

int64_t Generator::randint(int64_t lo, int64_t hi) {
  ACTCOMP_CHECK(lo <= hi, "randint bounds inverted: [" << lo << ", " << hi << "]");
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

float Generator::rand_float(float lo, float hi) {
  std::uniform_real_distribution<float> dist(lo, hi);
  return dist(engine_);
}

float Generator::rand_normal(float mean, float stddev) {
  std::normal_distribution<float> dist(mean, stddev);
  return dist(engine_);
}

bool Generator::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<int64_t> Generator::sample_without_replacement(int64_t n, int64_t k) {
  ACTCOMP_CHECK(k >= 0 && k <= n,
                "cannot sample " << k << " distinct values from [0, " << n << ")");
  // Partial Fisher–Yates on a sparse permutation: O(k) time and space even for
  // huge n (activation tensors have millions of elements).
  std::unordered_map<int64_t, int64_t> displaced;
  displaced.reserve(static_cast<size_t>(k) * 2);
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    const int64_t j = randint(i, n - 1);
    const auto it_j = displaced.find(j);
    const int64_t vj = it_j == displaced.end() ? j : it_j->second;
    const auto it_i = displaced.find(i);
    const int64_t vi = it_i == displaced.end() ? i : it_i->second;
    out.push_back(vj);
    displaced[j] = vi;
  }
  return out;
}

Generator Generator::split() { return Generator(engine_()); }

std::string Generator::state() const {
  std::ostringstream os;
  os << engine_;
  return os.str();
}

void Generator::set_state(const std::string& s) {
  std::istringstream is(s);
  std::mt19937_64 restored;
  is >> restored;
  ACTCOMP_CHECK(static_cast<bool>(is),
                "malformed RNG state string (" << s.size() << " bytes)");
  engine_ = restored;
}

Tensor xavier_uniform(Generator& gen, Shape shape, int64_t fan_in, int64_t fan_out) {
  ACTCOMP_CHECK(fan_in > 0 && fan_out > 0, "xavier fan dims must be positive");
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return gen.uniform(std::move(shape), -bound, bound);
}

}  // namespace actcomp::tensor
