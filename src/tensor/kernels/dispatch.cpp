// Wires the per-ISA kernel tables to the runtime tier selection in
// core/simd.cpp. Tiers the build could not compile (non-x86 target, old
// compiler) alias the widest available narrower tier, so indexing by
// core::simd_isa() is always valid — and core/simd.cpp already clamps the
// selected tier to what the host supports.
#include "tensor/kernels/kernel_table.h"

#include <algorithm>

#include "core/simd.h"
#include "tensor/kernels/tiers.h"

namespace actcomp::tensor::kernels {

namespace {

struct TierTables {
  const KernelTable* tables[3];

  TierTables() {
    tables[0] = &scalar_kernels();
    tables[1] = avx2_kernels() ? avx2_kernels() : tables[0];
    tables[2] = avx512_kernels() ? avx512_kernels() : tables[1];
  }
};

const TierTables& tier_tables() {
  static const TierTables t;
  return t;
}

}  // namespace

const KernelTable& kernels_for_tier(int tier) {
  const int i = std::clamp(tier, 0, 2);
  return *tier_tables().tables[i];
}

const KernelTable& active_kernels() {
  return kernels_for_tier(static_cast<int>(core::simd_isa()));
}

}  // namespace actcomp::tensor::kernels
