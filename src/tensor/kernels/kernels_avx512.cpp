// AVX-512 kernel tier. Compiled with -mavx512f -mavx2 -mf16c -O3
// -ffp-contract=off; selected at runtime only when cpuid reports AVX-512F
// (core/simd.cpp). Foundation instructions only — no BW/DQ/VL — so the
// 16-bit lane work (fp16 NaN screening, quantizer byte packing) stays on
// the 128/256-bit units via the shared avx2 implementations, which this TU
// compiles as its own internal copies.
#include "tensor/kernels/tiers.h"

#if defined(__AVX512F__) && defined(__AVX2__) && defined(__F16C__)

#include <immintrin.h>

#include "tensor/kernels/gemm_common.h"
#include "tensor/kernels/kernels_avx2_inl.h"
#include "tensor/kernels/kernels_generic.h"

namespace actcomp::tensor::kernels {
namespace avx512i {

namespace {  // internal types: keep template instantiations TU-local

struct AddOp {
  static __m512 v(__m512 x, __m512 y) { return _mm512_add_ps(x, y); }
  static float s(float x, float y) { return x + y; }
};
struct SubOp {
  static __m512 v(__m512 x, __m512 y) { return _mm512_sub_ps(x, y); }
  static float s(float x, float y) { return x - y; }
};
struct MulOp {
  static __m512 v(__m512 x, __m512 y) { return _mm512_mul_ps(x, y); }
  static float s(float x, float y) { return x * y; }
};
struct DivOp {
  static __m512 v(__m512 x, __m512 y) { return _mm512_div_ps(x, y); }
  static float s(float x, float y) { return x / y; }
};

// 8x32 micro-tile: 16 zmm accumulators + 2 B columns + 1 broadcast = 19 of
// the 32 zmm registers. Same kKC/kRowGrain and per-element ascending-k sum
// as the other tiers, so the bytes match despite the different tile shape.
struct Avx512GemmPolicy {
  static constexpr int64_t kNR = 32;
  static constexpr int64_t kMR = 8;

  template <int MR, bool FIRST>
  static void micro(const float* a, int64_t lda, const float* panel, float* c,
                    int64_t ldc, int64_t kc) {
    __m512 acc[MR][2];
    for (int r = 0; r < MR; ++r) {
      if (FIRST) {
        acc[r][0] = _mm512_setzero_ps();
        acc[r][1] = _mm512_setzero_ps();
      } else {
        acc[r][0] = _mm512_loadu_ps(c + r * ldc);
        acc[r][1] = _mm512_loadu_ps(c + r * ldc + 16);
      }
    }
    for (int64_t kk = 0; kk < kc; ++kk) {
      const __m512 b0 = _mm512_loadu_ps(panel + kk * kNR);
      const __m512 b1 = _mm512_loadu_ps(panel + kk * kNR + 16);
      for (int r = 0; r < MR; ++r) {
        const __m512 av = _mm512_set1_ps(a[r * lda + kk]);
        acc[r][0] = _mm512_add_ps(acc[r][0], _mm512_mul_ps(av, b0));
        acc[r][1] = _mm512_add_ps(acc[r][1], _mm512_mul_ps(av, b1));
      }
    }
    for (int r = 0; r < MR; ++r) {
      _mm512_storeu_ps(c + r * ldc, acc[r][0]);
      _mm512_storeu_ps(c + r * ldc + 16, acc[r][1]);
    }
  }
};

}  // namespace

// ---- elementwise ----

template <class Op>
static inline void ew_binary_v(const float* a, const float* b, float* out,
                               int64_t lo, int64_t hi, int64_t nb) {
  if (hi <= nb) {
    int64_t i = lo;
    for (; i + 16 <= hi; i += 16) {
      _mm512_storeu_ps(
          out + i, Op::v(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i)));
    }
    for (; i < hi; ++i) out[i] = Op::s(a[i], b[i]);
    return;
  }
  int64_t i = lo;
  while (i < hi) {
    const int64_t boff = i % nb;
    const int64_t seg = std::min(hi, i + (nb - boff));
    int64_t j = i;
    for (; j + 16 <= seg; j += 16) {
      _mm512_storeu_ps(out + j, Op::v(_mm512_loadu_ps(a + j),
                                      _mm512_loadu_ps(b + boff + (j - i))));
    }
    for (; j < seg; ++j) out[j] = Op::s(a[j], b[boff + (j - i)]);
    i = seg;
  }
}

static inline void ew_add(const float* a, const float* b, float* out,
                          int64_t lo, int64_t hi, int64_t nb) {
  ew_binary_v<AddOp>(a, b, out, lo, hi, nb);
}
static inline void ew_sub(const float* a, const float* b, float* out,
                          int64_t lo, int64_t hi, int64_t nb) {
  ew_binary_v<SubOp>(a, b, out, lo, hi, nb);
}
static inline void ew_mul(const float* a, const float* b, float* out,
                          int64_t lo, int64_t hi, int64_t nb) {
  ew_binary_v<MulOp>(a, b, out, lo, hi, nb);
}
static inline void ew_div(const float* a, const float* b, float* out,
                          int64_t lo, int64_t hi, int64_t nb) {
  ew_binary_v<DivOp>(a, b, out, lo, hi, nb);
}

template <class Op>
static inline void ew_scalar_v(const float* a, float s, float* out, int64_t lo,
                               int64_t hi) {
  const __m512 vs = _mm512_set1_ps(s);
  int64_t i = lo;
  for (; i + 16 <= hi; i += 16) {
    _mm512_storeu_ps(out + i, Op::v(_mm512_loadu_ps(a + i), vs));
  }
  for (; i < hi; ++i) out[i] = Op::s(a[i], s);
}

static inline void ew_add_scalar(const float* a, float s, float* out,
                                 int64_t lo, int64_t hi) {
  ew_scalar_v<AddOp>(a, s, out, lo, hi);
}
static inline void ew_mul_scalar(const float* a, float s, float* out,
                                 int64_t lo, int64_t hi) {
  ew_scalar_v<MulOp>(a, s, out, lo, hi);
}
static inline void ew_sub_scalar(const float* a, float s, float* out,
                                 int64_t lo, int64_t hi) {
  ew_scalar_v<SubOp>(a, s, out, lo, hi);
}

static inline void ew_neg(const float* a, float* out, int64_t lo, int64_t hi) {
  const __m512i sign = _mm512_set1_epi32(static_cast<int>(0x80000000u));
  int64_t i = lo;
  for (; i + 16 <= hi; i += 16) {
    _mm512_storeu_ps(out + i,
                     _mm512_castsi512_ps(_mm512_xor_epi32(
                         _mm512_castps_si512(_mm512_loadu_ps(a + i)), sign)));
  }
  for (; i < hi; ++i) out[i] = -a[i];
}

static inline void ew_abs(const float* a, float* out, int64_t lo, int64_t hi) {
  const __m512i mag = _mm512_set1_epi32(0x7FFFFFFF);
  int64_t i = lo;
  for (; i + 16 <= hi; i += 16) {
    _mm512_storeu_ps(out + i,
                     _mm512_castsi512_ps(_mm512_and_epi32(
                         _mm512_castps_si512(_mm512_loadu_ps(a + i)), mag)));
  }
  for (; i < hi; ++i) out[i] = std::fabs(a[i]);
}

static inline void ew_sqrt(const float* a, float* out, int64_t lo, int64_t hi) {
  int64_t i = lo;
  for (; i + 16 <= hi; i += 16) {
    _mm512_storeu_ps(out + i, _mm512_sqrt_ps(_mm512_loadu_ps(a + i)));
  }
  for (; i < hi; ++i) out[i] = std::sqrt(a[i]);
}

static inline void ew_relu(const float* a, float* out, int64_t lo, int64_t hi) {
  const __m512 zero = _mm512_setzero_ps();
  int64_t i = lo;
  for (; i + 16 <= hi; i += 16) {
    _mm512_storeu_ps(out + i, _mm512_max_ps(_mm512_loadu_ps(a + i), zero));
  }
  for (; i < hi; ++i) out[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

static inline void ew_scale(float* x, float s, int64_t lo, int64_t hi) {
  const __m512 vs = _mm512_set1_ps(s);
  int64_t i = lo;
  for (; i + 16 <= hi; i += 16) {
    _mm512_storeu_ps(x + i, _mm512_mul_ps(_mm512_loadu_ps(x + i), vs));
  }
  for (; i < hi; ++i) x[i] *= s;
}

static inline void ew_bias_relu(const float* x, const float* b, float* pre,
                                float* out, int64_t lo, int64_t hi,
                                int64_t nb) {
  const __m512 zero = _mm512_setzero_ps();
  int64_t i = lo;
  while (i < hi) {
    const int64_t boff = i % nb;
    const int64_t seg = std::min(hi, i + (nb - boff));
    int64_t j = i;
    for (; j + 16 <= seg; j += 16) {
      const __m512 p = _mm512_add_ps(_mm512_loadu_ps(x + j),
                                     _mm512_loadu_ps(b + boff + (j - i)));
      _mm512_storeu_ps(pre + j, p);
      _mm512_storeu_ps(out + j, _mm512_max_ps(p, zero));
    }
    for (; j < seg; ++j) {
      const float p = x[j] + b[boff + (j - i)];
      pre[j] = p;
      out[j] = p > 0.0f ? p : 0.0f;
    }
    i = seg;
  }
}

// ---- row reductions ----

// Lane-per-row layernorm statistics: 8 rows per block, one double lane per
// row, columns gathered ascending. Each row's accumulation order is exactly
// the scalar loop's (ascending c, double precision, mul-then-add for the
// variance), so the statistics are bit-identical; div_pd/sqrt_pd and the
// final cvtpd->ps are IEEE-exact single operations.
static inline void rows_moments(const float* x, int64_t r0, int64_t r1,
                                int64_t cols, float eps, float* mean,
                                float* rstd) {
  // Gather offsets are 32-bit lane indices; bail out (unreachably large
  // rows) rather than overflow.
  if (cols <= 0 || cols > (int64_t{1} << 27)) {
    generic::rows_moments(x, r0, r1, cols, eps, mean, rstd);
    return;
  }
  const int c32 = static_cast<int>(cols);
  const __m256i vidx = _mm256_setr_epi32(0, c32, 2 * c32, 3 * c32, 4 * c32,
                                         5 * c32, 6 * c32, 7 * c32);
  const __m512d vcols = _mm512_set1_pd(static_cast<double>(cols));
  const __m512d veps = _mm512_set1_pd(static_cast<double>(eps));
  const __m512d vone = _mm512_set1_pd(1.0);
  int64_t r = r0;
  for (; r + 8 <= r1; r += 8) {
    const float* base = x + r * cols;
    __m512d s = _mm512_setzero_pd();
    for (int64_t c = 0; c < cols; ++c) {
      const __m256 g = _mm256_i32gather_ps(base + c, vidx, 4);
      s = _mm512_add_pd(s, _mm512_cvtps_pd(g));
    }
    const __m512d m = _mm512_div_pd(s, vcols);
    __m512d var = _mm512_setzero_pd();
    for (int64_t c = 0; c < cols; ++c) {
      const __m256 g = _mm256_i32gather_ps(base + c, vidx, 4);
      const __m512d d = _mm512_sub_pd(_mm512_cvtps_pd(g), m);
      var = _mm512_add_pd(var, _mm512_mul_pd(d, d));
    }
    var = _mm512_div_pd(var, vcols);
    const __m512d rs =
        _mm512_div_pd(vone, _mm512_sqrt_pd(_mm512_add_pd(var, veps)));
    _mm256_storeu_ps(mean + r, _mm512_cvtpd_ps(m));
    _mm256_storeu_ps(rstd + r, _mm512_cvtpd_ps(rs));
  }
  if (r < r1) generic::rows_moments(x, r, r1, cols, eps, mean, rstd);
}

static inline void ln_xhat(const float* x, const float* mean,
                           const float* rstd, float* out, int64_t r0,
                           int64_t r1, int64_t cols) {
  for (int64_t r = r0; r < r1; ++r) {
    const __m512 vm = _mm512_set1_ps(mean[r]);
    const __m512 vrs = _mm512_set1_ps(rstd[r]);
    const float* row = x + r * cols;
    float* orow = out + r * cols;
    int64_t c = 0;
    for (; c + 16 <= cols; c += 16) {
      _mm512_storeu_ps(
          orow + c,
          _mm512_mul_ps(_mm512_sub_ps(_mm512_loadu_ps(row + c), vm), vrs));
    }
    const float m = mean[r];
    const float rs = rstd[r];
    for (; c < cols; ++c) orow[c] = (row[c] - m) * rs;
  }
}

// ---- fp16 (zmm-width F16C; same NaN screening as the avx2 tier) ----

static inline void fp16_encode(const float* in, uint16_t* out, int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_loadu_ps(in + i);
    if (_mm512_cmp_ps_mask(v, v, _CMP_UNORD_Q) != 0) {
      generic::fp16_encode(in + i, out + i, 16);
      continue;
    }
    const __m256i h = _mm512_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  if (i < n) avx2i::fp16_encode(in + i, out + i, n - i);
}

static inline void fp16_decode(const uint16_t* in, float* out, int64_t n) {
  const __m256i expmask = _mm256_set1_epi16(0x7FFF);
  const __m256i inf16 = _mm256_set1_epi16(0x7C00);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i h =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i isnan =
        _mm256_cmpgt_epi16(_mm256_and_si256(h, expmask), inf16);
    if (_mm256_movemask_epi8(isnan) != 0) {
      generic::fp16_decode(in + i, out + i, 16);
      continue;
    }
    _mm512_storeu_ps(out + i, _mm512_cvtph_ps(h));
  }
  if (i < n) avx2i::fp16_decode(in + i, out + i, n - i);
}

static inline void fp16_round_trip(const float* in, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_loadu_ps(in + i);
    if (_mm512_cmp_ps_mask(v, v, _CMP_UNORD_Q) != 0) {
      generic::fp16_round_trip(in + i, out + i, 16);
      continue;
    }
    const __m256i h = _mm512_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT);
    _mm512_storeu_ps(out + i, _mm512_cvtph_ps(h));
  }
  if (i < n) avx2i::fp16_round_trip(in + i, out + i, n - i);
}

// ---- GEMM ----

static inline void gemm_into(const float* a, const float* b, float* c,
                             int64_t m, int64_t k, int64_t n) {
  gemm_into_t<Avx512GemmPolicy>(a, b, c, m, k, n);
}

}  // namespace avx512i

const KernelTable* avx512_kernels() {
  static const KernelTable table = {
      "avx512",
      avx512i::gemm_into,
      gemm_simple_impl,
      avx512i::ew_add,
      avx512i::ew_sub,
      avx512i::ew_mul,
      avx512i::ew_div,
      avx512i::ew_add_scalar,
      avx512i::ew_mul_scalar,
      avx512i::ew_sub_scalar,
      avx512i::ew_neg,
      avx512i::ew_abs,
      avx512i::ew_sqrt,
      avx512i::ew_relu,
      avx512i::ew_scale,
      avx512i::ew_bias_relu,
      // Fallback-heavy scans and 8-bit packing: the 256-bit versions are
      // already bound by the semantic screening / byte shuffles.
      avx2i::row_max,
      avx2i::row_minmax,
      avx512i::rows_moments,
      avx512i::ln_xhat,
      avx512i::fp16_encode,
      avx512i::fp16_decode,
      avx512i::fp16_round_trip,
      avx2i::quant_quantize_row,
      avx2i::quant_dequantize_row,
  };
  return &table;
}

}  // namespace actcomp::tensor::kernels

#else  // toolchain/target cannot build this tier

namespace actcomp::tensor::kernels {
const KernelTable* avx512_kernels() { return nullptr; }
}  // namespace actcomp::tensor::kernels

#endif
