// Scalar kernel tier: the portable baseline every wider tier must match
// byte for byte. Compiled with -O3 -ffp-contract=off and NO architecture
// flags, so the binary runs on any x86-64 (or non-x86) host.
//
// The GEMM micro-kernel keeps the GNU vector extension tile from the
// pre-dispatch ops.cpp: without an explicit vector type GCC's SLP
// vectorizer gives up on the accumulator and the kernel runs ~7x slower
// than the streaming loop it replaces. With no -m flags this compiles to
// the baseline SSE2 encoding.
#include <cstring>

#include "tensor/kernels/gemm_common.h"
#include "tensor/kernels/kernel_table.h"
#include "tensor/kernels/kernels_generic.h"

namespace actcomp::tensor::kernels {

namespace {

#if defined(__GNUC__) || defined(__clang__)
typedef float v8f __attribute__((vector_size(32)));

struct ScalarGemmPolicy {
  static constexpr int64_t kNR = 16;  // micro-tile cols = packed panel width
  static constexpr int64_t kMR = 5;   // micro-tile rows

  template <int MR, bool FIRST>
  static void micro(const float* __restrict__ a, int64_t lda,
                    const float* __restrict__ panel, float* __restrict__ c,
                    int64_t ldc, int64_t kc) {
    v8f acc[MR][2];
    for (int r = 0; r < MR; ++r) {
      if (FIRST) {
        acc[r][0] = v8f{};
        acc[r][1] = v8f{};
      } else {
        std::memcpy(&acc[r][0], c + r * ldc, sizeof(v8f));
        std::memcpy(&acc[r][1], c + r * ldc + 8, sizeof(v8f));
      }
    }
    for (int64_t kk = 0; kk < kc; ++kk) {
      v8f b0, b1;
      std::memcpy(&b0, panel + kk * kNR, sizeof(v8f));
      std::memcpy(&b1, panel + kk * kNR + 8, sizeof(v8f));
      for (int r = 0; r < MR; ++r) {
        const float s = a[r * lda + kk];
        const v8f av = {s, s, s, s, s, s, s, s};
        acc[r][0] = acc[r][0] + av * b0;
        acc[r][1] = acc[r][1] + av * b1;
      }
    }
    for (int r = 0; r < MR; ++r) {
      std::memcpy(c + r * ldc, &acc[r][0], sizeof(v8f));
      std::memcpy(c + r * ldc + 8, &acc[r][1], sizeof(v8f));
    }
  }
};
#else
struct ScalarGemmPolicy {
  static constexpr int64_t kNR = 16;
  static constexpr int64_t kMR = 5;

  template <int MR, bool FIRST>
  static void micro(const float* a, int64_t lda, const float* panel, float* c,
                    int64_t ldc, int64_t kc) {
    float acc[MR][kNR];
    for (int r = 0; r < MR; ++r) {
      for (int64_t j = 0; j < kNR; ++j) {
        acc[r][j] = FIRST ? 0.0f : c[r * ldc + j];
      }
    }
    for (int64_t kk = 0; kk < kc; ++kk) {
      const float* bk = panel + kk * kNR;
      for (int r = 0; r < MR; ++r) {
        const float av = a[r * lda + kk];
        for (int64_t j = 0; j < kNR; ++j) acc[r][j] += av * bk[j];
      }
    }
    for (int r = 0; r < MR; ++r) {
      for (int64_t j = 0; j < kNR; ++j) c[r * ldc + j] = acc[r][j];
    }
  }
};
#endif

void gemm_into(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  gemm_into_t<ScalarGemmPolicy>(a, b, c, m, k, n);
}

}  // namespace

const KernelTable& scalar_kernels() {
  static const KernelTable table = {
      "scalar",
      gemm_into,
      gemm_simple_impl,
      generic::ew_add,
      generic::ew_sub,
      generic::ew_mul,
      generic::ew_div,
      generic::ew_add_scalar,
      generic::ew_mul_scalar,
      generic::ew_sub_scalar,
      generic::ew_neg,
      generic::ew_abs,
      generic::ew_sqrt,
      generic::ew_relu,
      generic::ew_scale,
      generic::ew_bias_relu,
      generic::row_max,
      generic::row_minmax,
      generic::rows_moments,
      generic::ln_xhat,
      generic::fp16_encode,
      generic::fp16_decode,
      generic::fp16_round_trip,
      generic::quant_quantize_row,
      generic::quant_dequantize_row,
  };
  return table;
}

}  // namespace actcomp::tensor::kernels
