// 256-bit AVX2 + F16C kernel implementations, shared by the avx2 and avx512
// translation units (the AVX-512 tier reuses these where 512-bit lanes buy
// nothing, e.g. the byte-packing quantizer).
//
// Only include from a TU compiled with -mavx2 -mf16c (or wider). Everything
// here is `static` (or a static function template, or a type in an anonymous
// namespace): these functions exist in TUs compiled under *different* -m
// flag sets, and a COMDAT-deduplicated copy encoded with AVX-512 must never
// be linked into a narrower tier — it would SIGILL on an AVX2-only host.
//
// Identity rules applied throughout (see kernel_table.h):
//   * mul-then-add spelled explicitly, no FMA intrinsics;
//   * remainders use the exact scalar expression (IEEE add/sub/mul/div/sqrt
//     are per-element, so lane width never changes bytes);
//   * semantic gaps (NaN payloads through F16C, ±0 ties through
//     min/max_ps, non-finite quantizer inputs) are detected per block and
//     routed to the generic scalar code.
#pragma once

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

#include "tensor/fp16.h"
#include "tensor/kernels/gemm_common.h"
#include "tensor/kernels/kernels_generic.h"

namespace actcomp::tensor::kernels::avx2i {

namespace {  // internal types: keep template instantiations TU-local

struct AddOp {
  static __m256 v(__m256 x, __m256 y) { return _mm256_add_ps(x, y); }
  static float s(float x, float y) { return x + y; }
};
struct SubOp {
  static __m256 v(__m256 x, __m256 y) { return _mm256_sub_ps(x, y); }
  static float s(float x, float y) { return x - y; }
};
struct MulOp {
  static __m256 v(__m256 x, __m256 y) { return _mm256_mul_ps(x, y); }
  static float s(float x, float y) { return x * y; }
};
struct DivOp {
  static __m256 v(__m256 x, __m256 y) { return _mm256_div_ps(x, y); }
  static float s(float x, float y) { return x / y; }
};

// 5x16 micro-tile on ymm registers: 10 accumulators + 2 B columns + 1
// broadcast stay inside the 16-register file. Same tile shape and k order
// as the scalar tier's GNU-vector kernel, so the sums are bit-identical.
struct Avx2GemmPolicy {
  static constexpr int64_t kNR = 16;
  static constexpr int64_t kMR = 5;

  template <int MR, bool FIRST>
  static void micro(const float* a, int64_t lda, const float* panel, float* c,
                    int64_t ldc, int64_t kc) {
    __m256 acc[MR][2];
    for (int r = 0; r < MR; ++r) {
      if (FIRST) {
        acc[r][0] = _mm256_setzero_ps();
        acc[r][1] = _mm256_setzero_ps();
      } else {
        acc[r][0] = _mm256_loadu_ps(c + r * ldc);
        acc[r][1] = _mm256_loadu_ps(c + r * ldc + 8);
      }
    }
    for (int64_t kk = 0; kk < kc; ++kk) {
      const __m256 b0 = _mm256_loadu_ps(panel + kk * kNR);
      const __m256 b1 = _mm256_loadu_ps(panel + kk * kNR + 8);
      for (int r = 0; r < MR; ++r) {
        const __m256 av = _mm256_set1_ps(a[r * lda + kk]);
        acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(av, b0));
        acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(av, b1));
      }
    }
    for (int r = 0; r < MR; ++r) {
      _mm256_storeu_ps(c + r * ldc, acc[r][0]);
      _mm256_storeu_ps(c + r * ldc + 8, acc[r][1]);
    }
  }
};

}  // namespace

// ---- elementwise ----

template <class Op>
static inline void ew_binary_v(const float* a, const float* b, float* out,
                               int64_t lo, int64_t hi, int64_t nb) {
  if (hi <= nb) {  // same-shape fast path: i % nb == i on this chunk
    int64_t i = lo;
    for (; i + 8 <= hi; i += 8) {
      _mm256_storeu_ps(
          out + i, Op::v(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
    }
    for (; i < hi; ++i) out[i] = Op::s(a[i], b[i]);
    return;
  }
  // Broadcast: split [lo, hi) at multiples of nb; within a segment the b
  // index boff + (j - i) is contiguous, so plain vector loads apply.
  int64_t i = lo;
  while (i < hi) {
    const int64_t boff = i % nb;
    const int64_t seg = std::min(hi, i + (nb - boff));
    int64_t j = i;
    for (; j + 8 <= seg; j += 8) {
      _mm256_storeu_ps(out + j, Op::v(_mm256_loadu_ps(a + j),
                                      _mm256_loadu_ps(b + boff + (j - i))));
    }
    for (; j < seg; ++j) out[j] = Op::s(a[j], b[boff + (j - i)]);
    i = seg;
  }
}

static inline void ew_add(const float* a, const float* b, float* out,
                          int64_t lo, int64_t hi, int64_t nb) {
  ew_binary_v<AddOp>(a, b, out, lo, hi, nb);
}
static inline void ew_sub(const float* a, const float* b, float* out,
                          int64_t lo, int64_t hi, int64_t nb) {
  ew_binary_v<SubOp>(a, b, out, lo, hi, nb);
}
static inline void ew_mul(const float* a, const float* b, float* out,
                          int64_t lo, int64_t hi, int64_t nb) {
  ew_binary_v<MulOp>(a, b, out, lo, hi, nb);
}
static inline void ew_div(const float* a, const float* b, float* out,
                          int64_t lo, int64_t hi, int64_t nb) {
  ew_binary_v<DivOp>(a, b, out, lo, hi, nb);
}

template <class Op>
static inline void ew_scalar_v(const float* a, float s, float* out, int64_t lo,
                               int64_t hi) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    _mm256_storeu_ps(out + i, Op::v(_mm256_loadu_ps(a + i), vs));
  }
  for (; i < hi; ++i) out[i] = Op::s(a[i], s);
}

static inline void ew_add_scalar(const float* a, float s, float* out,
                                 int64_t lo, int64_t hi) {
  ew_scalar_v<AddOp>(a, s, out, lo, hi);
}
static inline void ew_mul_scalar(const float* a, float s, float* out,
                                 int64_t lo, int64_t hi) {
  ew_scalar_v<MulOp>(a, s, out, lo, hi);
}
static inline void ew_sub_scalar(const float* a, float s, float* out,
                                 int64_t lo, int64_t hi) {
  ew_scalar_v<SubOp>(a, s, out, lo, hi);
}

static inline void ew_neg(const float* a, float* out, int64_t lo, int64_t hi) {
  // -x flips the sign bit for every input (NaN included); xor matches.
  const __m256 sign = _mm256_set1_ps(-0.0f);
  int64_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_xor_ps(_mm256_loadu_ps(a + i), sign));
  }
  for (; i < hi; ++i) out[i] = -a[i];
}

static inline void ew_abs(const float* a, float* out, int64_t lo, int64_t hi) {
  // fabs clears the sign bit for every input (NaN included); andnot matches.
  const __m256 sign = _mm256_set1_ps(-0.0f);
  int64_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_andnot_ps(sign, _mm256_loadu_ps(a + i)));
  }
  for (; i < hi; ++i) out[i] = std::fabs(a[i]);
}

static inline void ew_sqrt(const float* a, float* out, int64_t lo, int64_t hi) {
  // sqrtps is IEEE correctly rounded, same as sqrtss behind std::sqrt.
  int64_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_sqrt_ps(_mm256_loadu_ps(a + i)));
  }
  for (; i < hi; ++i) out[i] = std::sqrt(a[i]);
}

static inline void ew_relu(const float* a, float* out, int64_t lo, int64_t hi) {
  // max_ps(x, +0) returns the second operand on ties and NaN, which is
  // exactly `x > 0 ? x : 0` for ±0 and NaN alike — no fallback needed.
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_max_ps(_mm256_loadu_ps(a + i), zero));
  }
  for (; i < hi; ++i) out[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

static inline void ew_scale(float* x, float s, int64_t lo, int64_t hi) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), vs));
  }
  for (; i < hi; ++i) x[i] *= s;
}

static inline void ew_bias_relu(const float* x, const float* b, float* pre,
                                float* out, int64_t lo, int64_t hi,
                                int64_t nb) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = lo;
  while (i < hi) {
    const int64_t boff = i % nb;
    const int64_t seg = std::min(hi, i + (nb - boff));
    int64_t j = i;
    for (; j + 8 <= seg; j += 8) {
      const __m256 p = _mm256_add_ps(_mm256_loadu_ps(x + j),
                                     _mm256_loadu_ps(b + boff + (j - i)));
      _mm256_storeu_ps(pre + j, p);
      _mm256_storeu_ps(out + j, _mm256_max_ps(p, zero));
    }
    for (; j < seg; ++j) {
      const float p = x[j] + b[boff + (j - i)];
      pre[j] = p;
      out[j] = p > 0.0f ? p : 0.0f;
    }
    i = seg;
  }
}

// ---- row reductions ----
//
// Scalar max/min keep the FIRST operand on ties and skip NaN inputs
// entirely (std::max(m, x) takes x only when m < x). max_ps/min_ps return
// the SECOND operand on ties and propagate a NaN second operand. Equal
// floats are bit-identical except ±0, so the vector scan diverges only when
// (a) any scanned lane was NaN, or (b) the winning value is a zero. Both
// are detected and rescanned with the generic code.

static inline float row_max(const float* x, int64_t n) {
  if (n < 16) return generic::row_max(x, n);
  __m256 acc = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
  __m256 nanm = _mm256_setzero_ps();
  int64_t c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m256 v = _mm256_loadu_ps(x + c);
    nanm = _mm256_or_ps(nanm, _mm256_cmp_ps(v, v, _CMP_UNORD_Q));
    acc = _mm256_max_ps(acc, v);
  }
  if (_mm256_movemask_ps(nanm) != 0) return generic::row_max(x, n);
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  float m = lanes[0];
  for (int i = 1; i < 8; ++i) m = std::max(m, lanes[i]);
  for (; c < n; ++c) m = std::max(m, x[c]);  // std::max skips tail NaNs too
  if (m == 0.0f) return generic::row_max(x, n);  // ±0 tie: first-wins rescan
  return m;
}

static inline void row_minmax(const float* x, int64_t n, float* lo_out,
                              float* hi_out) {
  if (n < 16) {
    generic::row_minmax(x, n, lo_out, hi_out);
    return;
  }
  __m256 vlo = _mm256_loadu_ps(x);
  __m256 vhi = vlo;
  __m256 nanm = _mm256_cmp_ps(vlo, vlo, _CMP_UNORD_Q);
  int64_t c = 8;
  for (; c + 8 <= n; c += 8) {
    const __m256 v = _mm256_loadu_ps(x + c);
    nanm = _mm256_or_ps(nanm, _mm256_cmp_ps(v, v, _CMP_UNORD_Q));
    vlo = _mm256_min_ps(vlo, v);
    vhi = _mm256_max_ps(vhi, v);
  }
  if (_mm256_movemask_ps(nanm) != 0) {
    generic::row_minmax(x, n, lo_out, hi_out);
    return;
  }
  alignas(32) float llo[8], lhi[8];
  _mm256_store_ps(llo, vlo);
  _mm256_store_ps(lhi, vhi);
  float lo = llo[0], hi = lhi[0];
  for (int i = 1; i < 8; ++i) {
    lo = std::min(lo, llo[i]);
    hi = std::max(hi, lhi[i]);
  }
  for (; c < n; ++c) {
    lo = std::min(lo, x[c]);
    hi = std::max(hi, x[c]);
  }
  if (lo == 0.0f || hi == 0.0f) {  // ±0 tie: rescan with first-wins order
    generic::row_minmax(x, n, lo_out, hi_out);
    return;
  }
  *lo_out = lo;
  *hi_out = hi;
}

static inline void ln_xhat(const float* x, const float* mean,
                           const float* rstd, float* out, int64_t r0,
                           int64_t r1, int64_t cols) {
  for (int64_t r = r0; r < r1; ++r) {
    const __m256 vm = _mm256_set1_ps(mean[r]);
    const __m256 vrs = _mm256_set1_ps(rstd[r]);
    const float* row = x + r * cols;
    float* orow = out + r * cols;
    int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      _mm256_storeu_ps(
          orow + c,
          _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(row + c), vm), vrs));
    }
    const float m = mean[r];
    const float rs = rstd[r];
    for (; c < cols; ++c) orow[c] = (row[c] - m) * rs;
  }
}

// ---- fp16 via F16C ----
//
// vcvtps2ph (RNE) and vcvtph2ps agree with the software converter for every
// non-NaN input, including overflow-to-inf and subnormals (default MXCSR).
// NaNs diverge (the hardware preserves payload bits; the software converter
// emits a canonical quiet NaN), so any block containing a NaN lane is
// converted by the generic code instead.

static inline void fp16_encode(const float* in, uint16_t* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(in + i);
    if (_mm256_movemask_ps(_mm256_cmp_ps(v, v, _CMP_UNORD_Q)) != 0) {
      generic::fp16_encode(in + i, out + i, 8);
      continue;
    }
    const __m128i h = _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), h);
  }
  if (i < n) generic::fp16_encode(in + i, out + i, n - i);
}

static inline void fp16_decode(const uint16_t* in, float* out, int64_t n) {
  // An fp16 NaN has (bits & 0x7FFF) > 0x7C00; masked values are <= 0x7FFF,
  // so the signed 16-bit compare is safe.
  const __m128i expmask = _mm_set1_epi16(0x7FFF);
  const __m128i inf16 = _mm_set1_epi16(0x7C00);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    const __m128i isnan =
        _mm_cmpgt_epi16(_mm_and_si128(h, expmask), inf16);
    if (_mm_movemask_epi8(isnan) != 0) {
      generic::fp16_decode(in + i, out + i, 8);
      continue;
    }
    _mm256_storeu_ps(out + i, _mm256_cvtph_ps(h));
  }
  if (i < n) generic::fp16_decode(in + i, out + i, n - i);
}

static inline void fp16_round_trip(const float* in, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(in + i);
    if (_mm256_movemask_ps(_mm256_cmp_ps(v, v, _CMP_UNORD_Q)) != 0) {
      generic::fp16_round_trip(in + i, out + i, 8);
      continue;
    }
    // Encoding a non-NaN never yields NaN bits (inf stays 0x7C00), so the
    // decode side needs no second check.
    const __m128i h = _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT);
    _mm256_storeu_ps(out + i, _mm256_cvtph_ps(h));
  }
  if (i < n) generic::fp16_round_trip(in + i, out + i, n - i);
}

// ---- quantization ----
//
// Scalar reference: q = clamp(lround((x - lo) / scale), 0, levels-1), i.e.
// round-half-AWAY-from-zero. cvtps2dq rounds half to even, so after the
// high clamp (which also keeps the conversion in int32 range) a lane whose
// remainder v - q is exactly +0.5 was rounded down and gets +1; the final
// max(q, 0) then matches the low clamp — negative halfway lanes land <= 0
// either way. v - (float)q is exact (Sterbenz / q == 0), so the halfway
// test is precise. Non-finite v (NaN, or inf from scale == 0) would hit
// lround's unspecified behavior in the scalar path; those blocks — plus
// anything with |v| >= 2^31, unreachable for real row params — fall back so
// the bytes match whatever the host libm does.

static inline void quant_quantize_row(const float* row, int64_t cols,
                                      float lo, float scale, int levels,
                                      uint8_t* q) {
  const __m256 vlo = _mm256_set1_ps(lo);
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 vmaxq = _mm256_set1_ps(static_cast<float>(levels - 1));
  const __m256 vhalf = _mm256_set1_ps(0.5f);
  const __m256 vbig = _mm256_set1_ps(2147483648.0f);  // 2^31
  const __m256 signmask = _mm256_set1_ps(-0.0f);
  int64_t c = 0;
  for (; c + 8 <= cols; c += 8) {
    const __m256 v = _mm256_div_ps(
        _mm256_sub_ps(_mm256_loadu_ps(row + c), vlo), vscale);
    // NLT_UQ: true when |v| >= 2^31 or v is NaN.
    const __m256 bad =
        _mm256_cmp_ps(_mm256_andnot_ps(signmask, v), vbig, _CMP_NLT_UQ);
    if (_mm256_movemask_ps(bad) != 0) {
      generic::quant_quantize_row(row + c, 8, lo, scale, levels, q + c);
      continue;
    }
    const __m256 vc = _mm256_min_ps(v, vmaxq);  // high clamp before rounding
    __m256i qi = _mm256_cvtps_epi32(vc);        // RNE
    const __m256 rem = _mm256_sub_ps(vc, _mm256_cvtepi32_ps(qi));
    const __m256 up = _mm256_cmp_ps(rem, vhalf, _CMP_EQ_OQ);
    // Mask lanes are -1; subtracting the mask adds 1 where rem == 0.5.
    qi = _mm256_sub_epi32(qi, _mm256_castps_si256(up));
    qi = _mm256_max_epi32(qi, _mm256_setzero_si256());  // low clamp
    const __m128i p16 = _mm_packus_epi32(_mm256_castsi256_si128(qi),
                                         _mm256_extracti128_si256(qi, 1));
    const __m128i p8 = _mm_packus_epi16(p16, p16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(q + c), p8);
  }
  if (c < cols) {
    generic::quant_quantize_row(row + c, cols - c, lo, scale, levels, q + c);
  }
}

static inline void quant_dequantize_row(const uint8_t* q, int64_t cols,
                                        float lo, float scale, float* out) {
  const __m256 vlo = _mm256_set1_ps(lo);
  const __m256 vscale = _mm256_set1_ps(scale);
  int64_t c = 0;
  for (; c + 8 <= cols; c += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + c));
    const __m256 qf = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
    _mm256_storeu_ps(out + c,
                     _mm256_add_ps(vlo, _mm256_mul_ps(qf, vscale)));
  }
  if (c < cols) generic::quant_dequantize_row(q + c, cols - c, lo, scale,
                                              out + c);
}

// ---- GEMM ----

static inline void gemm_into(const float* a, const float* b, float* c,
                             int64_t m, int64_t k, int64_t n) {
  gemm_into_t<Avx2GemmPolicy>(a, b, c, m, k, n);
}

}  // namespace actcomp::tensor::kernels::avx2i
