// Per-ISA microkernel dispatch table (DESIGN.md §15).
//
// Every hot inner loop in tensor/ and compress/ is a raw-pointer kernel
// behind this table; `active_kernels()` returns the table for the tier
// `core::simd_isa()` currently selects (scalar, AVX2, or AVX-512). The
// per-ISA translation units are compiled with explicit -mavx2/-mavx512f
// flags (never -march=native), so one binary carries every tier and picks
// at runtime — release builds no longer depend on the build host's ISA.
//
// Identity contract: for finite inputs, every entry produces bytes
// identical to the scalar tier. The mechanics:
//   * No FMA anywhere (all kernel TUs are -ffp-contract=off, and the SIMD
//     kernels spell mul-then-add explicitly), so per-element rounding
//     matches the documented scalar order.
//   * Accumulations keep the scalar order (GEMM walks k ascending per C
//     element; moments accumulate columns ascending with one row per SIMD
//     lane), which is lane-count independent.
//   * Where an ISA genuinely cannot match scalar semantics bit-for-bit —
//     F16C on NaN payloads, min/max ties against ±0 — the SIMD kernel
//     detects the case and falls back to the scalar path for that block.
// Kernels that take a [lo, hi) range operate on the caller's parallel_for
// chunk, so chunk boundaries (and thus 1-vs-N-thread identity) are owned
// by the caller exactly as before.
#pragma once

#include <cstdint>

namespace actcomp::tensor::kernels {

struct KernelTable {
  // Tier this table implements ("scalar" | "avx2" | "avx512").
  const char* name;

  // ---- GEMM ----
  // c (m x n, zero-initialized) += a (m x k) * b (k x n). Packs B into
  // panels, parallelizes rows, walks k ascending per C element.
  void (*gemm_into)(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n);
  // Streaming i-k-j kernel for shapes below the packing threshold; serial.
  void (*gemm_simple)(const float* a, const float* b, float* c, int64_t m,
                      int64_t k, int64_t n);

  // ---- elementwise (i in [lo, hi); b index is i % nb, nb == len(a) for
  // same-shape operands) ----
  void (*ew_add)(const float* a, const float* b, float* out, int64_t lo,
                 int64_t hi, int64_t nb);
  void (*ew_sub)(const float* a, const float* b, float* out, int64_t lo,
                 int64_t hi, int64_t nb);
  void (*ew_mul)(const float* a, const float* b, float* out, int64_t lo,
                 int64_t hi, int64_t nb);
  void (*ew_div)(const float* a, const float* b, float* out, int64_t lo,
                 int64_t hi, int64_t nb);
  void (*ew_add_scalar)(const float* a, float s, float* out, int64_t lo,
                        int64_t hi);
  void (*ew_mul_scalar)(const float* a, float s, float* out, int64_t lo,
                        int64_t hi);
  void (*ew_sub_scalar)(const float* a, float s, float* out, int64_t lo,
                        int64_t hi);
  void (*ew_neg)(const float* a, float* out, int64_t lo, int64_t hi);
  void (*ew_abs)(const float* a, float* out, int64_t lo, int64_t hi);
  void (*ew_sqrt)(const float* a, float* out, int64_t lo, int64_t hi);
  void (*ew_relu)(const float* a, float* out, int64_t lo, int64_t hi);
  void (*ew_scale)(float* x, float s, int64_t lo, int64_t hi);  // x[i] *= s
  // Fused bias + ReLU epilogue: pre[i] = x[i] + b[i % nb]; out[i] =
  // max(pre[i], 0). pre is kept for the byte-exact backward.
  void (*ew_bias_relu)(const float* x, const float* b, float* pre, float* out,
                       int64_t lo, int64_t hi, int64_t nb);

  // ---- row reductions ----
  // max over x[0..n) with the scalar tie/NaN semantics (-inf for n == 0).
  float (*row_max)(const float* x, int64_t n);
  // min/max over x[0..n), n >= 1, matching the serial first-wins scan.
  void (*row_minmax)(const float* x, int64_t n, float* lo_out, float* hi_out);
  // Per-row mean / 1/sqrt(var + eps) for rows [r0, r1): double
  // accumulation, columns ascending (the layernorm statistics pass).
  void (*rows_moments)(const float* x, int64_t r0, int64_t r1, int64_t cols,
                       float eps, float* mean, float* rstd);
  // out[r, c] = (x[r, c] - mean[r]) * rstd[r] for rows [r0, r1).
  void (*ln_xhat)(const float* x, const float* mean, const float* rstd,
                  float* out, int64_t r0, int64_t r1, int64_t cols);

  // ---- fp16 (IEEE binary16; identical to tensor/fp16.h bit for bit,
  // including round-to-nearest-even, overflow to inf, and the canonical
  // NaN the software converter emits) ----
  void (*fp16_encode)(const float* in, uint16_t* out, int64_t n);
  void (*fp16_decode)(const uint16_t* in, float* out, int64_t n);
  void (*fp16_round_trip)(const float* in, float* out, int64_t n);

  // ---- quantization (affine, per row; scale > 0) ----
  // q[c] = clamp(lround((row[c] - lo) / scale), 0, levels - 1).
  void (*quant_quantize_row)(const float* row, int64_t cols, float lo,
                             float scale, int levels, uint8_t* q);
  // out[c] = lo + q[c] * scale.
  void (*quant_dequantize_row)(const uint8_t* q, int64_t cols, float lo,
                               float scale, float* out);
};

/// The table for the currently active tier (core::simd_isa()).
const KernelTable& active_kernels();

/// The table for a specific tier index (0 = scalar, 1 = avx2, 2 = avx512);
/// tiers the build or host lacks alias the widest available narrower tier.
const KernelTable& kernels_for_tier(int tier);

}  // namespace actcomp::tensor::kernels
