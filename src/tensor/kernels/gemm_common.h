// Shared panel-packed GEMM driver, parameterized on a per-ISA micro-kernel
// policy (DESIGN.md §10/§15).
//
// A policy supplies:
//   static constexpr int64_t kNR;   // panel width = micro-tile columns
//   static constexpr int64_t kMR;   // micro-tile rows
//   template <int MR, bool FIRST>
//   static void micro(const float* a, int64_t lda, const float* panel,
//                     float* c, int64_t ldc, int64_t kc);
//
// The driver owns everything ISA-independent: B packing (zero-padded right
// edge), k-blocking by kKC with C-tile reload, row parallelization, and the
// scalar edge kernel for the final partial-width panel. Determinism: every
// C element is owned by one row chunk and its additions happen in ascending
// k order whatever kNR/kMR the policy picks — so the scalar, AVX2, and
// AVX-512 instantiations are bit-identical to each other and to any thread
// count, as long as the micro-kernel spells mul-then-add (no FMA).
//
// Linkage note: each policy struct lives in its TU's anonymous namespace,
// which makes every template instantiation here TU-local. That is
// deliberate — these helpers are compiled under three different -m flag
// sets, and a COMDAT-deduplicated copy built with AVX-512 flags must never
// be linked into the scalar tier (it would SIGILL on a narrower host).
// gemm_simple_impl is `static inline` for the same reason.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/threadpool.h"

namespace actcomp::tensor::kernels {

inline constexpr int64_t kKC = 512;       // k-block: panel slice stays cache-resident
inline constexpr int64_t kRowGrain = 32;  // rows per parallel chunk
// Below this many multiply-adds the packing + dispatch overhead outweighs
// the cache wins; use the simple streaming kernel instead.
inline constexpr int64_t kSimpleGemmFlops = 1 << 18;

// The streaming i-k-j kernel for small shapes. Each ISA TU compiles its own
// copy with its own vector width — the j loop is elementwise per C element
// (ascending k outside it), so wider autovectorization changes speed, never
// bytes.
static inline void gemm_simple_impl(const float* a, const float* b, float* c,
                                    int64_t m, int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    const float* a_row = a + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      const float* b_row = b + kk * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

// Pack b (k x n row-major) into ceil(n/NR) panels. Panel p holds columns
// [p*NR, p*NR + NR) for every k row, contiguous, zero-padded on the right
// edge so the full-width micro-kernel never branches on width.
template <class P>
std::vector<float> pack_b_panels(const float* b, int64_t k, int64_t n) {
  constexpr int64_t NR = P::kNR;
  const int64_t npanels = (n + NR - 1) / NR;
  std::vector<float> bp(static_cast<size_t>(npanels * k * NR));
  core::parallel_for(0, npanels, 1, [&](int64_t p0, int64_t p1) {
    for (int64_t p = p0; p < p1; ++p) {
      const int64_t j0 = p * NR;
      const int64_t w = std::min(NR, n - j0);
      float* dst = bp.data() + p * k * NR;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float* src = b + kk * n + j0;
        for (int64_t j = 0; j < w; ++j) dst[j] = src[j];
        for (int64_t j = w; j < NR; ++j) dst[j] = 0.0f;
        dst += NR;
      }
    }
  });
  return bp;
}

// Right-edge variant for the final panel when n % NR != 0: same k order,
// but C loads/stores are guarded by the live width w so the kernel never
// touches memory past the row end. Scalar is fine here — the edge covers
// at most NR-1 of n columns.
template <class P, int MR>
void gemm_micro_edge(const float* a, int64_t lda, const float* panel, float* c,
                     int64_t ldc, int64_t kc, int64_t w, bool first) {
  constexpr int64_t NR = P::kNR;
  float acc[MR][NR];
  for (int r = 0; r < MR; ++r) {
    for (int64_t j = 0; j < NR; ++j) {
      acc[r][j] = (first || j >= w) ? 0.0f : c[r * ldc + j];
    }
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* bk = panel + kk * NR;
    for (int r = 0; r < MR; ++r) {
      const float av = a[r * lda + kk];
      for (int64_t j = 0; j < NR; ++j) acc[r][j] += av * bk[j];
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (int64_t j = 0; j < w; ++j) c[r * ldc + j] = acc[r][j];
  }
}

template <class P, int R>
void micro_dispatch(int64_t mr, bool first, const float* a, int64_t lda,
                    const float* panel, float* c, int64_t ldc, int64_t kc) {
  if (mr == R) {
    if (first) {
      P::template micro<R, true>(a, lda, panel, c, ldc, kc);
    } else {
      P::template micro<R, false>(a, lda, panel, c, ldc, kc);
    }
    return;
  }
  if constexpr (R > 1) {
    micro_dispatch<P, R - 1>(mr, first, a, lda, panel, c, ldc, kc);
  }
}

template <class P, int R>
void edge_dispatch(int64_t mr, const float* a, int64_t lda, const float* panel,
                   float* c, int64_t ldc, int64_t kc, int64_t w, bool first) {
  if (mr == R) {
    gemm_micro_edge<P, R>(a, lda, panel, c, ldc, kc, w, first);
    return;
  }
  if constexpr (R > 1) {
    edge_dispatch<P, R - 1>(mr, a, lda, panel, c, ldc, kc, w, first);
  }
}

// c (m x n, zero-initialized) += a (m x k) * b (k x n).
template <class P>
void gemm_into_t(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n) {
  if (m == 0 || n == 0 || k == 0) return;
  if (m * n * k <= kSimpleGemmFlops) {
    gemm_simple_impl(a, b, c, m, k, n);
    return;
  }
  const std::vector<float> bp = pack_b_panels<P>(b, k, n);
  const int64_t npanels = (n + P::kNR - 1) / P::kNR;
  core::parallel_for(0, m, kRowGrain, [&](int64_t r0, int64_t r1) {
    for (int64_t kc0 = 0; kc0 < k; kc0 += kKC) {
      const int64_t kc = std::min(kKC, k - kc0);
      for (int64_t p = 0; p < npanels; ++p) {
        const float* panel = bp.data() + p * k * P::kNR + kc0 * P::kNR;
        const int64_t j0 = p * P::kNR;
        const int64_t w = std::min(P::kNR, n - j0);
        for (int64_t i = r0; i < r1; i += P::kMR) {
          const int64_t mr = std::min<int64_t>(P::kMR, r1 - i);
          if (w == P::kNR) {
            micro_dispatch<P, static_cast<int>(P::kMR)>(
                mr, kc0 == 0, a + i * k + kc0, k, panel, c + i * n + j0, n, kc);
          } else {
            edge_dispatch<P, static_cast<int>(P::kMR)>(
                mr, a + i * k + kc0, k, panel, c + i * n + j0, n, kc, w,
                kc0 == 0);
          }
        }
      }
    }
  });
}

}  // namespace actcomp::tensor::kernels
