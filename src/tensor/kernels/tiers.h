// Internal: per-tier table accessors wired together by dispatch.cpp.
#pragma once

#include "tensor/kernels/kernel_table.h"

namespace actcomp::tensor::kernels {

/// Always available.
const KernelTable& scalar_kernels();

/// nullptr when the toolchain could not compile the tier (non-x86 targets
/// or a compiler without -mavx2/-mavx512f); dispatch then aliases the
/// widest available narrower tier.
const KernelTable* avx2_kernels();
const KernelTable* avx512_kernels();

}  // namespace actcomp::tensor::kernels
