// Scalar reference implementations for every KernelTable entry.
//
// These are the loops the repo ran before the SIMD overhaul, verbatim —
// they define the bytes every wider tier must reproduce. They are inline
// so each per-ISA TU can also use them for remainders and semantic
// fallbacks (NaN lanes, ±0 ties) without cross-TU calls; all kernel TUs
// compile with -ffp-contract=off, so the math is flag-identical wherever
// it is instantiated.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "tensor/fp16.h"

namespace actcomp::tensor::kernels::generic {

// ---- elementwise ----

template <typename F>
static inline void ew_binary(const float* a, const float* b, float* out, int64_t lo,
                      int64_t hi, int64_t nb, F f) {
  if (hi <= nb) {  // same-shape fast path: i % nb == i on this chunk
    for (int64_t i = lo; i < hi; ++i) out[i] = f(a[i], b[i]);
  } else {
    for (int64_t i = lo; i < hi; ++i) out[i] = f(a[i], b[i % nb]);
  }
}

static inline void ew_add(const float* a, const float* b, float* out, int64_t lo,
                   int64_t hi, int64_t nb) {
  ew_binary(a, b, out, lo, hi, nb, [](float x, float y) { return x + y; });
}
static inline void ew_sub(const float* a, const float* b, float* out, int64_t lo,
                   int64_t hi, int64_t nb) {
  ew_binary(a, b, out, lo, hi, nb, [](float x, float y) { return x - y; });
}
static inline void ew_mul(const float* a, const float* b, float* out, int64_t lo,
                   int64_t hi, int64_t nb) {
  ew_binary(a, b, out, lo, hi, nb, [](float x, float y) { return x * y; });
}
static inline void ew_div(const float* a, const float* b, float* out, int64_t lo,
                   int64_t hi, int64_t nb) {
  ew_binary(a, b, out, lo, hi, nb, [](float x, float y) { return x / y; });
}

static inline void ew_add_scalar(const float* a, float s, float* out, int64_t lo,
                          int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) out[i] = a[i] + s;
}
static inline void ew_mul_scalar(const float* a, float s, float* out, int64_t lo,
                          int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) out[i] = a[i] * s;
}
static inline void ew_sub_scalar(const float* a, float s, float* out, int64_t lo,
                          int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) out[i] = a[i] - s;
}
static inline void ew_neg(const float* a, float* out, int64_t lo, int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) out[i] = -a[i];
}
static inline void ew_abs(const float* a, float* out, int64_t lo, int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) out[i] = std::fabs(a[i]);
}
static inline void ew_sqrt(const float* a, float* out, int64_t lo, int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) out[i] = std::sqrt(a[i]);
}
static inline void ew_relu(const float* a, float* out, int64_t lo, int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) out[i] = a[i] > 0.0f ? a[i] : 0.0f;
}
static inline void ew_scale(float* x, float s, int64_t lo, int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) x[i] *= s;
}
static inline void ew_bias_relu(const float* x, const float* b, float* pre,
                         float* out, int64_t lo, int64_t hi, int64_t nb) {
  for (int64_t i = lo; i < hi; ++i) {
    const float p = x[i] + b[i % nb];
    pre[i] = p;
    out[i] = p > 0.0f ? p : 0.0f;
  }
}

// ---- row reductions ----

static inline float row_max(const float* x, int64_t n) {
  float m = -std::numeric_limits<float>::infinity();
  for (int64_t c = 0; c < n; ++c) m = std::max(m, x[c]);
  return m;
}

static inline void row_minmax(const float* x, int64_t n, float* lo_out,
                       float* hi_out) {
  float lo = x[0], hi = x[0];
  for (int64_t c = 1; c < n; ++c) {
    lo = std::min(lo, x[c]);
    hi = std::max(hi, x[c]);
  }
  *lo_out = lo;
  *hi_out = hi;
}

static inline void rows_moments(const float* x, int64_t r0, int64_t r1, int64_t cols,
                         float eps, float* mean, float* rstd) {
  for (int64_t r = r0; r < r1; ++r) {
    const float* row = x + r * cols;
    double s = 0.0;
    for (int64_t c = 0; c < cols; ++c) s += row[c];
    const double m = s / static_cast<double>(cols);
    double var = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      const double d = row[c] - m;
      var += d * d;
    }
    var /= static_cast<double>(cols);
    mean[r] = static_cast<float>(m);
    rstd[r] = static_cast<float>(1.0 / std::sqrt(var + eps));
  }
}

static inline void ln_xhat(const float* x, const float* mean, const float* rstd,
                    float* out, int64_t r0, int64_t r1, int64_t cols) {
  for (int64_t r = r0; r < r1; ++r) {
    const float m = mean[r];
    const float rs = rstd[r];
    const float* row = x + r * cols;
    float* orow = out + r * cols;
    for (int64_t c = 0; c < cols; ++c) orow[c] = (row[c] - m) * rs;
  }
}

// ---- fp16 ----

static inline void fp16_encode(const float* in, uint16_t* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = fp32_to_fp16_bits(in[i]);
}
static inline void fp16_decode(const uint16_t* in, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = fp16_bits_to_fp32(in[i]);
}
static inline void fp16_round_trip(const float* in, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = fp16_bits_to_fp32(fp32_to_fp16_bits(in[i]));
  }
}

// ---- quantization ----

static inline void quant_quantize_row(const float* row, int64_t cols, float lo,
                               float scale, int levels, uint8_t* q) {
  for (int64_t c = 0; c < cols; ++c) {
    const float normalized = (row[c] - lo) / scale;
    q[c] = static_cast<uint8_t>(std::clamp(std::lround(normalized), 0l,
                                           static_cast<long>(levels - 1)));
  }
}

static inline void quant_dequantize_row(const uint8_t* q, int64_t cols, float lo,
                                 float scale, float* out) {
  for (int64_t c = 0; c < cols; ++c) {
    out[c] = lo + static_cast<float>(q[c]) * scale;
  }
}

}  // namespace actcomp::tensor::kernels::generic
