// AVX2 kernel tier. Compiled with -mavx2 -mf16c -O3 -ffp-contract=off;
// selected at runtime only when cpuid reports both features (core/simd.cpp),
// so the EVEX-free 256-bit code here never executes on a narrower host.
#include "tensor/kernels/tiers.h"

#if defined(__AVX2__) && defined(__F16C__)

#include "tensor/kernels/kernels_avx2_inl.h"
#include "tensor/kernels/kernels_generic.h"

namespace actcomp::tensor::kernels {

const KernelTable* avx2_kernels() {
  static const KernelTable table = {
      "avx2",
      avx2i::gemm_into,
      gemm_simple_impl,
      avx2i::ew_add,
      avx2i::ew_sub,
      avx2i::ew_mul,
      avx2i::ew_div,
      avx2i::ew_add_scalar,
      avx2i::ew_mul_scalar,
      avx2i::ew_sub_scalar,
      avx2i::ew_neg,
      avx2i::ew_abs,
      avx2i::ew_sqrt,
      avx2i::ew_relu,
      avx2i::ew_scale,
      avx2i::ew_bias_relu,
      avx2i::row_max,
      avx2i::row_minmax,
      // Double-precision two-pass statistics: 256-bit lanes buy nothing
      // over the compiler's autovectorized scalar loop; the AVX-512 tier
      // has the lane-per-row variant.
      generic::rows_moments,
      avx2i::ln_xhat,
      avx2i::fp16_encode,
      avx2i::fp16_decode,
      avx2i::fp16_round_trip,
      avx2i::quant_quantize_row,
      avx2i::quant_dequantize_row,
  };
  return &table;
}

}  // namespace actcomp::tensor::kernels

#else  // toolchain/target cannot build this tier

namespace actcomp::tensor::kernels {
const KernelTable* avx2_kernels() { return nullptr; }
}  // namespace actcomp::tensor::kernels

#endif
