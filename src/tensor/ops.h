// Raw (non-differentiable) math kernels over Tensor.
//
// These are the primitives the autograd layer composes. Broadcasting is
// deliberately limited to the two cases the library needs:
//   * identical shapes, and
//   * right-aligned broadcast of a lower-rank operand (e.g. adding a [h] bias
//     to a [b, s, h] activation).
// Anything fancier is a caller bug and throws.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace actcomp::tensor {

// ---- elementwise binary (with right-aligned broadcast of `b`) ----
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// ---- elementwise with scalar ----
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

// ---- elementwise unary ----
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor relu(const Tensor& a);
/// Gaussian error linear unit (tanh approximation, as in BERT).
Tensor gelu(const Tensor& a);
/// d gelu(x) / dx, elementwise.
Tensor gelu_grad(const Tensor& a);
/// Apply an arbitrary float->float function elementwise (test/helper use).
Tensor map(const Tensor& a, const std::function<float(float)>& f);

// ---- matmul ----
/// (m,k) x (k,n) -> (m,n).
Tensor matmul2d(const Tensor& a, const Tensor& b);
/// Batched matmul. Accepts:
///   (B,m,k) x (B,k,n) -> (B,m,n)
///   (B,m,k) x (k,n)   -> (B,m,n)   (shared right operand)
///   (m,k)   x (k,n)   -> (m,n)
Tensor matmul(const Tensor& a, const Tensor& b);

/// Transpose the last two dimensions (materializes; rank >= 2).
Tensor transpose_last2(const Tensor& a);
/// General axis permutation (materializes).
Tensor permute(const Tensor& a, const std::vector<int>& axes);

// ---- reductions ----
float sum_all(const Tensor& a);
float mean_all(const Tensor& a);
float max_all(const Tensor& a);
/// Sum over the last dimension: [..., n] -> [...].
Tensor sum_last(const Tensor& a);
/// Sum over all dimensions except the last: [..., n] -> [n] (bias gradients).
Tensor sum_to_last(const Tensor& a);
/// Index of the max element along the last dimension, as floats: [..., n] -> [...].
Tensor argmax_last(const Tensor& a);

// ---- softmax family (last dimension) ----
Tensor softmax_last(const Tensor& a);
Tensor log_softmax_last(const Tensor& a);

// ---- normalization helpers ----
/// Per-row (last-dim) mean and reciprocal standard deviation, for layernorm.
struct RowMoments {
  Tensor mean;  ///< shape = a.shape() minus last dim
  Tensor rstd;  ///< 1 / sqrt(var + eps), same shape as mean
};
RowMoments row_moments(const Tensor& a, float eps);

// ---- comparison helpers (tests) ----
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f, float atol = 1e-6f);
float max_abs_diff(const Tensor& a, const Tensor& b);
/// Relative Frobenius-norm error ||a-b|| / max(||b||, tiny).
float rel_error(const Tensor& a, const Tensor& b);
float frobenius_norm(const Tensor& a);

// ---- structural ----
/// Concatenate along the last dimension; all inputs must agree elsewhere.
Tensor concat_last(const std::vector<Tensor>& parts);
/// Slice [start, start+len) of the last dimension.
Tensor slice_last(const Tensor& a, int64_t start, int64_t len);

}  // namespace actcomp::tensor
