// Tensor: a contiguous, row-major float32 array with shared storage.
//
// Semantics mirror the common ML-framework convention: copying a Tensor is
// cheap and aliases the same storage (like a torch.Tensor handle); use
// clone() for a deep copy. All tensors are contiguous — reshape() is free,
// and transposes materialize.
//
// The library is CPU-only and single-threaded by design: the accuracy
// experiments in this reproduction use small models, and the throughput
// experiments run on the event simulator (src/sim), not on this math.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/shape.h"

namespace actcomp::tensor {

class Tensor {
 public:
  /// An empty 0-element tensor of rank 1.
  Tensor();

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor over existing values; `values.size()` must equal `shape.numel()`.
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  static Tensor scalar(float value) { return Tensor(Shape{}, {value}); }
  /// [start, start+step, ...] of length n, as a rank-1 tensor.
  static Tensor arange(int64_t n, float start = 0.0f, float step = 1.0f);

  const Shape& shape() const { return shape_; }
  int rank() const { return shape_.rank(); }
  int64_t numel() const { return shape_.numel(); }
  int64_t dim(int i) const { return shape_.dim(i); }

  /// Mutable / const views of the underlying contiguous storage.
  std::span<float> data() { return {storage_->data(), storage_->size()}; }
  std::span<const float> data() const { return {storage_->data(), storage_->size()}; }

  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  /// Value of a 1-element tensor.
  float item() const;

  /// Deep copy.
  Tensor clone() const;

  /// Same storage, new shape (numel must match).
  Tensor reshape(Shape new_shape) const;

  /// True if the two handles alias the same storage.
  bool shares_storage_with(const Tensor& other) const {
    return storage_ == other.storage_;
  }

  void fill(float value);

  /// Human-readable summary, e.g. "Tensor[2, 3] {…}" (values elided past 16).
  std::string str() const;

 private:
  Shape shape_;
  std::shared_ptr<std::vector<float>> storage_;
};

}  // namespace actcomp::tensor
