// Lightweight runtime-check macros used across the library.
//
// All preconditions on public APIs are enforced with ACTCOMP_CHECK, which
// throws std::invalid_argument with a formatted message. Internal invariants
// use ACTCOMP_ASSERT, which throws std::logic_error (these indicate bugs in
// this library, not caller errors).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace actcomp::detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assert_failure(const char* expr, const char* file,
                                              int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace actcomp::detail

#define ACTCOMP_CHECK(cond, msg)                                              \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::ostringstream actcomp_check_os_;                                   \
      actcomp_check_os_ << msg; /* NOLINT */                                  \
      ::actcomp::detail::throw_check_failure(#cond, __FILE__, __LINE__,       \
                                             actcomp_check_os_.str());        \
    }                                                                         \
  } while (0)

#define ACTCOMP_ASSERT(cond, msg)                                             \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::ostringstream actcomp_check_os_;                                   \
      actcomp_check_os_ << msg; /* NOLINT */                                  \
      ::actcomp::detail::throw_assert_failure(#cond, __FILE__, __LINE__,      \
                                              actcomp_check_os_.str());       \
    }                                                                         \
  } while (0)
