#include "tensor/io.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "tensor/check.h"

namespace actcomp::tensor {

namespace {

constexpr uint32_t kMagic = 0xAC7C0301;  // "actcomp" v3.1 tensor container

template <typename T>
void write_pod(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  ACTCOMP_CHECK(static_cast<bool>(is), "truncated tensor stream");
  return v;
}

}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  write_pod<uint32_t>(os, static_cast<uint32_t>(t.rank()));
  for (int i = 0; i < t.rank(); ++i) write_pod<int64_t>(os, t.dim(i));
  const auto d = t.data();
  os.write(reinterpret_cast<const char*>(d.data()),
           static_cast<std::streamsize>(d.size() * sizeof(float)));
}

Tensor read_tensor(std::istream& is) {
  const uint32_t rank = read_pod<uint32_t>(is);
  ACTCOMP_CHECK(rank <= 8, "implausible tensor rank " << rank << " in stream");
  std::vector<int64_t> dims(rank);
  for (uint32_t i = 0; i < rank; ++i) dims[i] = read_pod<int64_t>(is);
  Tensor t{Shape(dims)};
  auto d = t.data();
  is.read(reinterpret_cast<char*>(d.data()),
          static_cast<std::streamsize>(d.size() * sizeof(float)));
  ACTCOMP_CHECK(static_cast<bool>(is), "truncated tensor payload");
  return t;
}

void write_tensor_map(std::ostream& os, const TensorMap& m) {
  write_pod<uint32_t>(os, kMagic);
  write_pod<uint64_t>(os, m.size());
  for (const auto& [name, t] : m) {
    write_pod<uint64_t>(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_tensor(os, t);
  }
}

TensorMap read_tensor_map(std::istream& is) {
  ACTCOMP_CHECK(read_pod<uint32_t>(is) == kMagic, "bad tensor-map magic");
  const uint64_t count = read_pod<uint64_t>(is);
  TensorMap m;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t len = read_pod<uint64_t>(is);
    ACTCOMP_CHECK(len <= 4096, "implausible name length " << len);
    std::string name(len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(len));
    ACTCOMP_CHECK(static_cast<bool>(is), "truncated tensor name");
    m.emplace(std::move(name), read_tensor(is));
  }
  return m;
}

void save_tensor_map(const std::string& path, const TensorMap& m) {
  std::ofstream os(path, std::ios::binary);
  ACTCOMP_CHECK(os.is_open(), "cannot open " << path << " for writing");
  write_tensor_map(os, m);
  ACTCOMP_CHECK(static_cast<bool>(os), "write failed for " << path);
}

TensorMap load_tensor_map(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ACTCOMP_CHECK(is.is_open(), "cannot open " << path << " for reading");
  return read_tensor_map(is);
}

}  // namespace actcomp::tensor
