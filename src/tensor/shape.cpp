#include "tensor/shape.h"

#include <sstream>

#include "tensor/check.h"

namespace actcomp::tensor {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims) {
  for (int64_t d : dims_) ACTCOMP_CHECK(d >= 0, "negative extent in shape " << str());
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  for (int64_t d : dims_) ACTCOMP_CHECK(d >= 0, "negative extent in shape " << str());
}

int64_t Shape::numel() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

int64_t Shape::dim(int i) const {
  const int r = rank();
  if (i < 0) i += r;
  ACTCOMP_CHECK(i >= 0 && i < r, "dim index " << i << " out of range for rank " << r);
  return dims_[static_cast<size_t>(i)];
}

std::vector<int64_t> Shape::strides() const {
  std::vector<int64_t> s(dims_.size(), 1);
  for (int i = rank() - 2; i >= 0; --i) {
    s[static_cast<size_t>(i)] =
        s[static_cast<size_t>(i) + 1] * dims_[static_cast<size_t>(i) + 1];
  }
  return s;
}

std::string Shape::str() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace actcomp::tensor
