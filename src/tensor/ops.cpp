#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/threadpool.h"
#include "obs/profiler.h"
#include "tensor/check.h"

namespace actcomp::tensor {

namespace {

// Elements per parallel_for chunk for elementwise kernels: large enough
// that a chunk outweighs the dispatch cost, small enough to split the
// biggest activations across the pool.
constexpr int64_t kEwGrain = 1 << 13;

// Rows per chunk for row-independent kernels (softmax, moments, ...):
// aim for ~kEwGrain elements per chunk, at least one row.
int64_t row_grain(int64_t cols) { return std::max<int64_t>(1, kEwGrain / std::max<int64_t>(1, cols)); }

// True if `small` right-aligns with `big` (i.e. small's dims equal big's
// trailing dims). Identical shapes qualify trivially.
bool right_aligned(const Shape& big, const Shape& small) {
  if (small.rank() > big.rank()) return false;
  const int offset = big.rank() - small.rank();
  for (int i = 0; i < small.rank(); ++i) {
    if (small.dim(i) != big.dim(i + offset)) return false;
  }
  return true;
}

template <typename F>
Tensor binary_broadcast(const Tensor& a, const Tensor& b, F f, const char* name) {
  ACTCOMP_CHECK(right_aligned(a.shape(), b.shape()),
                name << ": shape " << b.shape().str()
                     << " does not right-align with " << a.shape().str());
  Tensor out(a.shape());
  const auto da = a.data();
  const auto db = b.data();
  auto dout = out.data();
  const size_t nb = static_cast<size_t>(b.numel());
  const int64_t n = static_cast<int64_t>(da.size());
  if (nb == da.size()) {
    core::parallel_for(0, n, kEwGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        dout[static_cast<size_t>(i)] = f(da[static_cast<size_t>(i)], db[static_cast<size_t>(i)]);
      }
    });
  } else {
    ACTCOMP_CHECK(nb > 0, name << ": empty broadcast operand");
    core::parallel_for(0, n, kEwGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        dout[static_cast<size_t>(i)] = f(da[static_cast<size_t>(i)], db[static_cast<size_t>(i) % nb]);
      }
    });
  }
  return out;
}

template <typename F>
Tensor unary(const Tensor& a, F f) {
  Tensor out(a.shape());
  const auto da = a.data();
  auto dout = out.data();
  core::parallel_for(0, static_cast<int64_t>(da.size()), kEwGrain,
                     [&](int64_t lo, int64_t hi) {
                       for (int64_t i = lo; i < hi; ++i) {
                         dout[static_cast<size_t>(i)] = f(da[static_cast<size_t>(i)]);
                       }
                     });
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_broadcast(a, b, [](float x, float y) { return x + y; }, "add");
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_broadcast(a, b, [](float x, float y) { return x - y; }, "sub");
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_broadcast(a, b, [](float x, float y) { return x * y; }, "mul");
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary_broadcast(a, b, [](float x, float y) { return x / y; }, "div");
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x * s; });
}

Tensor neg(const Tensor& a) { return unary(a, [](float x) { return -x; }); }
Tensor exp(const Tensor& a) { return unary(a, [](float x) { return std::exp(x); }); }
Tensor log(const Tensor& a) { return unary(a, [](float x) { return std::log(x); }); }
Tensor sqrt(const Tensor& a) { return unary(a, [](float x) { return std::sqrt(x); }); }
Tensor abs(const Tensor& a) { return unary(a, [](float x) { return std::fabs(x); }); }
Tensor tanh(const Tensor& a) { return unary(a, [](float x) { return std::tanh(x); }); }
Tensor sigmoid(const Tensor& a) {
  return unary(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor relu(const Tensor& a) {
  return unary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;
}  // namespace

Tensor gelu(const Tensor& a) {
  return unary(a, [](float x) {
    const float u = kGeluC * (x + kGeluA * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(u));
  });
}

Tensor gelu_grad(const Tensor& a) {
  return unary(a, [](float x) {
    const float u = kGeluC * (x + kGeluA * x * x * x);
    const float t = std::tanh(u);
    const float du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
    return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
  });
}

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  // Deliberately serial: `f` is caller-supplied (tests/helpers) and may not
  // be safe to invoke from several threads at once.
  Tensor out(a.shape());
  const auto da = a.data();
  auto dout = out.data();
  for (size_t i = 0; i < da.size(); ++i) dout[i] = f(da[i]);
  return out;
}

// ---------------------------------------------------------------------------
// Blocked GEMM (DESIGN.md §10).
//
// Layout: B is packed once per call into column panels of kNR columns,
// k-major within the panel, so the micro-kernel streams it with unit
// stride. The micro-kernel holds a kMR x kNR accumulator tile and walks k
// in ascending order; k is additionally blocked by kKC so the hot panel
// slice stays L1-resident, with the C tile reloaded between k-blocks.
// Rows are parallelized via parallel_for.
//
// Determinism: every C element is owned by exactly one row chunk, and its
// additions happen in ascending-k order no matter how rows are tiled or
// which thread runs them — results are bit-identical for any thread count
// (and match the old naive i-k-j kernel, which used the same order).
namespace {

constexpr int64_t kMR = 5;        // micro-tile rows
constexpr int64_t kNR = 16;       // micro-tile cols = packed panel width
constexpr int64_t kKC = 512;      // k-block: panel slice kKC*kNR*4 = 32 KiB
constexpr int64_t kRowGrain = 32; // rows per parallel chunk
// Below this many multiply-adds the packing + dispatch overhead outweighs
// the cache wins; use the simple streaming kernel instead.
constexpr int64_t kSimpleGemmFlops = 1 << 18;

// The old i-k-j kernel minus its `av == 0` branch (see ISSUE 3): dense
// inputs are the common case and the branch cost more than it saved.
void gemm_simple(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    const float* a_row = a + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      const float* b_row = b + kk * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

// Pack b (k x n row-major) into ceil(n/kNR) panels. Panel p holds columns
// [p*kNR, p*kNR + kNR) for every k row, contiguous, zero-padded on the
// right edge so the micro-kernel never branches on width.
std::vector<float> pack_b_panels(const float* b, int64_t k, int64_t n) {
  const int64_t npanels = (n + kNR - 1) / kNR;
  std::vector<float> bp(static_cast<size_t>(npanels * k * kNR));
  core::parallel_for(0, npanels, 1, [&](int64_t p0, int64_t p1) {
    for (int64_t p = p0; p < p1; ++p) {
      const int64_t j0 = p * kNR;
      const int64_t w = std::min(kNR, n - j0);
      float* dst = bp.data() + p * k * kNR;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float* src = b + kk * n + j0;
        for (int64_t j = 0; j < w; ++j) dst[j] = src[j];
        for (int64_t j = w; j < kNR; ++j) dst[j] = 0.0f;
        dst += kNR;
      }
    }
  });
  return bp;
}

// C[mr x kNR] (+)= A[mr x kc] * panel[kc x kNR], full-width panels only.
// MR and FIRST are compile-time so the accumulator tile is register
// resident and the zero-init/reload choice (k-blocking) costs no branch in
// the hot loop. The explicit vector type is load-bearing: with a plain
// float[][] tile GCC's SLP vectorizer gives up on the accumulator and the
// kernel runs ~7x slower than the streaming loop it is meant to replace.
#if defined(__GNUC__) || defined(__clang__)
typedef float v8f __attribute__((vector_size(32)));

template <int MR, bool FIRST>
void gemm_micro(const float* __restrict__ a, int64_t lda,
                const float* __restrict__ panel, float* __restrict__ c,
                int64_t ldc, int64_t kc) {
  v8f acc[MR][2];
  for (int r = 0; r < MR; ++r) {
    if (FIRST) {
      acc[r][0] = v8f{};
      acc[r][1] = v8f{};
    } else {
      std::memcpy(&acc[r][0], c + r * ldc, sizeof(v8f));
      std::memcpy(&acc[r][1], c + r * ldc + 8, sizeof(v8f));
    }
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    v8f b0, b1;
    std::memcpy(&b0, panel + kk * kNR, sizeof(v8f));
    std::memcpy(&b1, panel + kk * kNR + 8, sizeof(v8f));
    for (int r = 0; r < MR; ++r) {
      const float s = a[r * lda + kk];
      const v8f av = {s, s, s, s, s, s, s, s};
      acc[r][0] = acc[r][0] + av * b0;
      acc[r][1] = acc[r][1] + av * b1;
    }
  }
  for (int r = 0; r < MR; ++r) {
    std::memcpy(c + r * ldc, &acc[r][0], sizeof(v8f));
    std::memcpy(c + r * ldc + 8, &acc[r][1], sizeof(v8f));
  }
}
#else
template <int MR, bool FIRST>
void gemm_micro(const float* a, int64_t lda, const float* panel, float* c,
                int64_t ldc, int64_t kc) {
  float acc[MR][kNR];
  for (int r = 0; r < MR; ++r) {
    for (int64_t j = 0; j < kNR; ++j) {
      acc[r][j] = FIRST ? 0.0f : c[r * ldc + j];
    }
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* bk = panel + kk * kNR;
    for (int r = 0; r < MR; ++r) {
      const float av = a[r * lda + kk];
      for (int64_t j = 0; j < kNR; ++j) acc[r][j] += av * bk[j];
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (int64_t j = 0; j < kNR; ++j) c[r * ldc + j] = acc[r][j];
  }
}
#endif

// Right-edge variant for the final panel when n % kNR != 0: same k order,
// but C loads/stores are guarded by the live width w so the kernel never
// touches memory past the row end. Scalar is fine here — the edge covers
// at most kNR-1 of n columns.
template <int MR>
void gemm_micro_edge(const float* a, int64_t lda, const float* panel,
                     float* c, int64_t ldc, int64_t kc, int64_t w,
                     bool first) {
  float acc[MR][kNR];
  for (int r = 0; r < MR; ++r) {
    for (int64_t j = 0; j < kNR; ++j) {
      acc[r][j] = (first || j >= w) ? 0.0f : c[r * ldc + j];
    }
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* bk = panel + kk * kNR;
    for (int r = 0; r < MR; ++r) {
      const float av = a[r * lda + kk];
      for (int64_t j = 0; j < kNR; ++j) acc[r][j] += av * bk[j];
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (int64_t j = 0; j < w; ++j) c[r * ldc + j] = acc[r][j];
  }
}

void gemm_micro_dispatch(int64_t mr, bool first, const float* a, int64_t lda,
                         const float* panel, float* c, int64_t ldc,
                         int64_t kc) {
  switch (mr * 2 + (first ? 1 : 0)) {
    case 11: gemm_micro<5, true>(a, lda, panel, c, ldc, kc); break;
    case 10: gemm_micro<5, false>(a, lda, panel, c, ldc, kc); break;
    case 9: gemm_micro<4, true>(a, lda, panel, c, ldc, kc); break;
    case 8: gemm_micro<4, false>(a, lda, panel, c, ldc, kc); break;
    case 7: gemm_micro<3, true>(a, lda, panel, c, ldc, kc); break;
    case 6: gemm_micro<3, false>(a, lda, panel, c, ldc, kc); break;
    case 5: gemm_micro<2, true>(a, lda, panel, c, ldc, kc); break;
    case 4: gemm_micro<2, false>(a, lda, panel, c, ldc, kc); break;
    case 3: gemm_micro<1, true>(a, lda, panel, c, ldc, kc); break;
    default: gemm_micro<1, false>(a, lda, panel, c, ldc, kc); break;
  }
}

void gemm_edge_dispatch(int64_t mr, const float* a, int64_t lda,
                        const float* panel, float* c, int64_t ldc, int64_t kc,
                        int64_t w, bool first) {
  switch (mr) {
    case 5: gemm_micro_edge<5>(a, lda, panel, c, ldc, kc, w, first); break;
    case 4: gemm_micro_edge<4>(a, lda, panel, c, ldc, kc, w, first); break;
    case 3: gemm_micro_edge<3>(a, lda, panel, c, ldc, kc, w, first); break;
    case 2: gemm_micro_edge<2>(a, lda, panel, c, ldc, kc, w, first); break;
    default: gemm_micro_edge<1>(a, lda, panel, c, ldc, kc, w, first); break;
  }
}

// c (m x n, zero-initialized) += a (m x k) * b (k x n).
void gemm_into(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  if (m == 0 || n == 0 || k == 0) return;
  if (m * n * k <= kSimpleGemmFlops) {
    gemm_simple(a, b, c, m, k, n);
    return;
  }
  const std::vector<float> bp = pack_b_panels(b, k, n);
  const int64_t npanels = (n + kNR - 1) / kNR;
  core::parallel_for(0, m, kRowGrain, [&](int64_t r0, int64_t r1) {
    for (int64_t kc0 = 0; kc0 < k; kc0 += kKC) {
      const int64_t kc = std::min(kKC, k - kc0);
      for (int64_t p = 0; p < npanels; ++p) {
        const float* panel = bp.data() + p * k * kNR + kc0 * kNR;
        const int64_t j0 = p * kNR;
        const int64_t w = std::min(kNR, n - j0);
        for (int64_t i = r0; i < r1; i += kMR) {
          const int64_t mr = std::min(kMR, r1 - i);
          if (w == kNR) {
            gemm_micro_dispatch(mr, kc0 == 0, a + i * k + kc0, k, panel,
                                c + i * n + j0, n, kc);
          } else {
            gemm_edge_dispatch(mr, a + i * k + kc0, k, panel, c + i * n + j0,
                               n, kc, w, kc0 == 0);
          }
        }
      }
    }
  });
}

}  // namespace

Tensor matmul2d(const Tensor& a, const Tensor& b) {
  ACTCOMP_CHECK(a.rank() == 2 && b.rank() == 2,
                "matmul2d needs rank-2 operands, got " << a.shape().str() << " x "
                                                       << b.shape().str());
  const int64_t m = a.dim(0), k = a.dim(1), k2 = b.dim(0), n = b.dim(1);
  ACTCOMP_CHECK(k == k2, "matmul2d inner dims differ: " << a.shape().str() << " x "
                                                        << b.shape().str());
  ACTCOMP_PROFILE("tensor.matmul2d");
  Tensor out(Shape{m, n});
  gemm_into(a.data().data(), b.data().data(), out.data().data(), m, k, n);
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() == 2 && b.rank() == 2) return matmul2d(a, b);
  if (a.rank() == 3 && b.rank() == 2) {
    const int64_t B = a.dim(0), m = a.dim(1), k = a.dim(2);
    Tensor flat = a.reshape(Shape{B * m, k});
    return matmul2d(flat, b).reshape(Shape{B, m, b.dim(1)});
  }
  if (a.rank() == 3 && b.rank() == 3) {
    ACTCOMP_CHECK(a.dim(0) == b.dim(0), "batched matmul batch dims differ: "
                                            << a.shape().str() << " x "
                                            << b.shape().str());
    ACTCOMP_CHECK(a.dim(2) == b.dim(1), "batched matmul inner dims differ: "
                                            << a.shape().str() << " x "
                                            << b.shape().str());
    ACTCOMP_PROFILE("tensor.matmul_batched");
    const int64_t B = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
    Tensor out(Shape{B, m, n});
    const float* pa = a.data().data();
    const float* pb = b.data().data();
    float* pc = out.data().data();
    if (m * n * k <= kSimpleGemmFlops) {
      // Small per-batch matrices (attention heads): parallelize across the
      // batch instead of within one matrix.
      core::parallel_for(0, B, 1, [&](int64_t b0, int64_t b1) {
        for (int64_t batch = b0; batch < b1; ++batch) {
          gemm_simple(pa + batch * m * k, pb + batch * k * n,
                      pc + batch * m * n, m, k, n);
        }
      });
    } else {
      for (int64_t batch = 0; batch < B; ++batch) {
        gemm_into(pa + batch * m * k, pb + batch * k * n, pc + batch * m * n,
                  m, k, n);
      }
    }
    return out;
  }
  ACTCOMP_CHECK(false, "matmul: unsupported ranks " << a.rank() << " x " << b.rank());
}

Tensor transpose_last2(const Tensor& a) {
  ACTCOMP_CHECK(a.rank() >= 2, "transpose_last2 needs rank >= 2");
  std::vector<int> axes(static_cast<size_t>(a.rank()));
  for (int i = 0; i < a.rank(); ++i) axes[static_cast<size_t>(i)] = i;
  std::swap(axes[axes.size() - 1], axes[axes.size() - 2]);
  return permute(a, axes);
}

Tensor permute(const Tensor& a, const std::vector<int>& axes) {
  const int r = a.rank();
  ACTCOMP_CHECK(static_cast<int>(axes.size()) == r,
                "permute axes count " << axes.size() << " != rank " << r);
  std::vector<bool> seen(static_cast<size_t>(r), false);
  std::vector<int64_t> out_dims(static_cast<size_t>(r));
  for (int i = 0; i < r; ++i) {
    const int ax = axes[static_cast<size_t>(i)];
    ACTCOMP_CHECK(ax >= 0 && ax < r && !seen[static_cast<size_t>(ax)],
                  "invalid permutation axis " << ax);
    seen[static_cast<size_t>(ax)] = true;
    out_dims[static_cast<size_t>(i)] = a.dim(ax);
  }
  Tensor out{Shape(out_dims)};
  const auto in_strides = a.shape().strides();
  const auto out_strides = out.shape().strides();
  const auto din = a.data();
  auto dout = out.data();
  const int64_t n = a.numel();
  // For each output flat index, reconstruct multi-index and map to input.
  core::parallel_for(0, n, kEwGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t flat = lo; flat < hi; ++flat) {
      int64_t rem = flat;
      int64_t src = 0;
      for (int i = 0; i < r; ++i) {
        const int64_t coord = rem / out_strides[static_cast<size_t>(i)];
        rem %= out_strides[static_cast<size_t>(i)];
        src += coord * in_strides[static_cast<size_t>(axes[static_cast<size_t>(i)])];
      }
      dout[static_cast<size_t>(flat)] = din[static_cast<size_t>(src)];
    }
  });
  return out;
}

float sum_all(const Tensor& a) {
  double s = 0.0;
  for (float v : a.data()) s += v;
  return static_cast<float>(s);
}

float mean_all(const Tensor& a) {
  ACTCOMP_CHECK(a.numel() > 0, "mean_all of empty tensor");
  return sum_all(a) / static_cast<float>(a.numel());
}

float max_all(const Tensor& a) {
  ACTCOMP_CHECK(a.numel() > 0, "max_all of empty tensor");
  float m = -std::numeric_limits<float>::infinity();
  for (float v : a.data()) m = std::max(m, v);
  return m;
}

namespace {
// Split shape into (rows, cols) where cols is the last dim.
std::pair<int64_t, int64_t> rows_cols(const Tensor& a) {
  ACTCOMP_CHECK(a.rank() >= 1, "reduction needs rank >= 1");
  const int64_t cols = a.dim(-1);
  const int64_t rows = cols == 0 ? 0 : a.numel() / cols;
  return {rows, cols};
}

Shape drop_last(const Shape& s) {
  std::vector<int64_t> d = s.dims();
  d.pop_back();
  return Shape(d);
}
}  // namespace

Tensor sum_last(const Tensor& a) {
  const auto [rows, cols] = rows_cols(a);
  Tensor out{drop_last(a.shape())};
  const auto din = a.data();
  auto dout = out.data();
  core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      double s = 0.0;
      for (int64_t c = 0; c < cols; ++c) s += din[static_cast<size_t>(r * cols + c)];
      dout[static_cast<size_t>(r)] = static_cast<float>(s);
    }
  });
  return out;
}

Tensor sum_to_last(const Tensor& a) {
  const auto [rows, cols] = rows_cols(a);
  Tensor out{Shape{cols}};
  const auto din = a.data();
  auto dout = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      dout[static_cast<size_t>(c)] += din[static_cast<size_t>(r * cols + c)];
    }
  }
  return out;
}

Tensor argmax_last(const Tensor& a) {
  const auto [rows, cols] = rows_cols(a);
  ACTCOMP_CHECK(cols > 0, "argmax_last of empty rows");
  Tensor out{drop_last(a.shape())};
  const auto din = a.data();
  auto dout = out.data();
  core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      int64_t best = 0;
      float bv = din[static_cast<size_t>(r * cols)];
      for (int64_t c = 1; c < cols; ++c) {
        const float v = din[static_cast<size_t>(r * cols + c)];
        if (v > bv) {
          bv = v;
          best = c;
        }
      }
      dout[static_cast<size_t>(r)] = static_cast<float>(best);
    }
  });
  return out;
}

Tensor softmax_last(const Tensor& a) {
  ACTCOMP_PROFILE("tensor.softmax");
  const auto [rows, cols] = rows_cols(a);
  Tensor out(a.shape());
  const auto din = a.data();
  auto dout = out.data();
  core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const size_t base = static_cast<size_t>(r * cols);
      float m = -std::numeric_limits<float>::infinity();
      for (int64_t c = 0; c < cols; ++c) m = std::max(m, din[base + static_cast<size_t>(c)]);
      double z = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        const float e = std::exp(din[base + static_cast<size_t>(c)] - m);
        dout[base + static_cast<size_t>(c)] = e;
        z += e;
      }
      const float inv = static_cast<float>(1.0 / z);
      for (int64_t c = 0; c < cols; ++c) dout[base + static_cast<size_t>(c)] *= inv;
    }
  });
  return out;
}

Tensor log_softmax_last(const Tensor& a) {
  const auto [rows, cols] = rows_cols(a);
  Tensor out(a.shape());
  const auto din = a.data();
  auto dout = out.data();
  core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const size_t base = static_cast<size_t>(r * cols);
      float m = -std::numeric_limits<float>::infinity();
      for (int64_t c = 0; c < cols; ++c) m = std::max(m, din[base + static_cast<size_t>(c)]);
      double z = 0.0;
      for (int64_t c = 0; c < cols; ++c) z += std::exp(din[base + static_cast<size_t>(c)] - m);
      const float lz = m + static_cast<float>(std::log(z));
      for (int64_t c = 0; c < cols; ++c) {
        dout[base + static_cast<size_t>(c)] = din[base + static_cast<size_t>(c)] - lz;
      }
    }
  });
  return out;
}

RowMoments row_moments(const Tensor& a, float eps) {
  const auto [rows, cols] = rows_cols(a);
  ACTCOMP_CHECK(cols > 0, "row_moments of empty rows");
  RowMoments mo{Tensor{drop_last(a.shape())}, Tensor{drop_last(a.shape())}};
  const auto din = a.data();
  auto dmean = mo.mean.data();
  auto drstd = mo.rstd.data();
  core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const size_t base = static_cast<size_t>(r * cols);
      double s = 0.0;
      for (int64_t c = 0; c < cols; ++c) s += din[base + static_cast<size_t>(c)];
      const double mean = s / static_cast<double>(cols);
      double var = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        const double d = din[base + static_cast<size_t>(c)] - mean;
        var += d * d;
      }
      var /= static_cast<double>(cols);
      dmean[static_cast<size_t>(r)] = static_cast<float>(mean);
      drstd[static_cast<size_t>(r)] = static_cast<float>(1.0 / std::sqrt(var + eps));
    }
  });
  return mo;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (a.shape() != b.shape()) return false;
  const auto da = a.data();
  const auto db = b.data();
  for (size_t i = 0; i < da.size(); ++i) {
    const float diff = std::fabs(da[i] - db[i]);
    if (diff > atol + rtol * std::fabs(db[i])) return false;
  }
  return true;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  ACTCOMP_CHECK(a.shape() == b.shape(), "max_abs_diff shape mismatch");
  const auto da = a.data();
  const auto db = b.data();
  float m = 0.0f;
  for (size_t i = 0; i < da.size(); ++i) m = std::max(m, std::fabs(da[i] - db[i]));
  return m;
}

float frobenius_norm(const Tensor& a) {
  double s = 0.0;
  for (float v : a.data()) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

float rel_error(const Tensor& a, const Tensor& b) {
  ACTCOMP_CHECK(a.shape() == b.shape(), "rel_error shape mismatch");
  const float nb = frobenius_norm(b);
  double s = 0.0;
  const auto da = a.data();
  const auto db = b.data();
  for (size_t i = 0; i < da.size(); ++i) {
    const double d = static_cast<double>(da[i]) - db[i];
    s += d * d;
  }
  return static_cast<float>(std::sqrt(s)) / std::max(nb, 1e-12f);
}

Tensor concat_last(const std::vector<Tensor>& parts) {
  ACTCOMP_CHECK(!parts.empty(), "concat_last of zero tensors");
  const Shape& first = parts.front().shape();
  int64_t total_last = 0;
  for (const Tensor& p : parts) {
    ACTCOMP_CHECK(p.rank() == first.rank(), "concat_last rank mismatch");
    for (int i = 0; i + 1 < first.rank(); ++i) {
      ACTCOMP_CHECK(p.dim(i) == first.dim(i), "concat_last leading-dim mismatch");
    }
    total_last += p.dim(-1);
  }
  std::vector<int64_t> out_dims = first.dims();
  out_dims.back() = total_last;
  Tensor out{Shape(out_dims)};
  const int64_t rows = total_last == 0 ? 0 : out.numel() / total_last;
  auto dout = out.data();
  int64_t col_off = 0;
  for (const Tensor& p : parts) {
    const int64_t pc = p.dim(-1);
    const auto dp = p.data();
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < pc; ++c) {
        dout[static_cast<size_t>(r * total_last + col_off + c)] =
            dp[static_cast<size_t>(r * pc + c)];
      }
    }
    col_off += pc;
  }
  return out;
}

Tensor slice_last(const Tensor& a, int64_t start, int64_t len) {
  const int64_t cols = a.dim(-1);
  ACTCOMP_CHECK(start >= 0 && len >= 0 && start + len <= cols,
                "slice_last [" << start << ", " << start + len << ") out of range "
                               << cols);
  std::vector<int64_t> out_dims = a.shape().dims();
  out_dims.back() = len;
  Tensor out{Shape(out_dims)};
  const int64_t rows = cols == 0 ? 0 : a.numel() / cols;
  const auto din = a.data();
  auto dout = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < len; ++c) {
      dout[static_cast<size_t>(r * len + c)] =
          din[static_cast<size_t>(r * cols + start + c)];
    }
  }
  return out;
}

}  // namespace actcomp::tensor
