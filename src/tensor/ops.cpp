#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/threadpool.h"
#include "obs/profiler.h"
#include "tensor/check.h"
#include "tensor/kernels/gemm_common.h"
#include "tensor/kernels/kernel_table.h"

namespace actcomp::tensor {

namespace {

// Elements per parallel_for chunk for elementwise kernels: large enough
// that a chunk outweighs the dispatch cost, small enough to split the
// biggest activations across the pool.
constexpr int64_t kEwGrain = 1 << 13;

// Rows per chunk for row-independent kernels (softmax, moments, ...):
// aim for ~kEwGrain elements per chunk, at least one row.
int64_t row_grain(int64_t cols) { return std::max<int64_t>(1, kEwGrain / std::max<int64_t>(1, cols)); }

// True if `small` right-aligns with `big` (i.e. small's dims equal big's
// trailing dims). Identical shapes qualify trivially.
bool right_aligned(const Shape& big, const Shape& small) {
  if (small.rank() > big.rank()) return false;
  const int offset = big.rank() - small.rank();
  for (int i = 0; i < small.rank(); ++i) {
    if (small.dim(i) != big.dim(i + offset)) return false;
  }
  return true;
}

// Elementwise ops route through the active SIMD kernel tier
// (tensor/kernels): the parallel_for chunking — and thus 1-vs-N-thread
// identity — stays here in the caller, and the kernel handles [lo, hi).
// Transcendentals (exp, log, tanh, ...) stay as scalar libm lambdas.

Tensor binary_kernel(const Tensor& a, const Tensor& b,
                     void (*kfn)(const float*, const float*, float*, int64_t,
                                 int64_t, int64_t),
                     const char* name) {
  ACTCOMP_CHECK(right_aligned(a.shape(), b.shape()),
                name << ": shape " << b.shape().str()
                     << " does not right-align with " << a.shape().str());
  Tensor out(a.shape());
  const auto da = a.data();
  const auto db = b.data();
  auto dout = out.data();
  const int64_t nb = b.numel();
  const int64_t n = static_cast<int64_t>(da.size());
  ACTCOMP_CHECK(nb > 0 || n == 0, name << ": empty broadcast operand");
  core::parallel_for(0, n, kEwGrain, [&](int64_t lo, int64_t hi) {
    kfn(da.data(), db.data(), dout.data(), lo, hi, nb);
  });
  return out;
}

Tensor unary_kernel(const Tensor& a,
                    void (*kfn)(const float*, float*, int64_t, int64_t)) {
  Tensor out(a.shape());
  const auto da = a.data();
  auto dout = out.data();
  core::parallel_for(0, static_cast<int64_t>(da.size()), kEwGrain,
                     [&](int64_t lo, int64_t hi) {
                       kfn(da.data(), dout.data(), lo, hi);
                     });
  return out;
}

Tensor scalar_kernel(const Tensor& a, float s,
                     void (*kfn)(const float*, float, float*, int64_t,
                                 int64_t)) {
  Tensor out(a.shape());
  const auto da = a.data();
  auto dout = out.data();
  core::parallel_for(0, static_cast<int64_t>(da.size()), kEwGrain,
                     [&](int64_t lo, int64_t hi) {
                       kfn(da.data(), s, dout.data(), lo, hi);
                     });
  return out;
}

template <typename F>
Tensor unary(const Tensor& a, F f) {
  Tensor out(a.shape());
  const auto da = a.data();
  auto dout = out.data();
  core::parallel_for(0, static_cast<int64_t>(da.size()), kEwGrain,
                     [&](int64_t lo, int64_t hi) {
                       for (int64_t i = lo; i < hi; ++i) {
                         dout[static_cast<size_t>(i)] = f(da[static_cast<size_t>(i)]);
                       }
                     });
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_kernel(a, b, kernels::active_kernels().ew_add, "add");
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_kernel(a, b, kernels::active_kernels().ew_sub, "sub");
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_kernel(a, b, kernels::active_kernels().ew_mul, "mul");
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary_kernel(a, b, kernels::active_kernels().ew_div, "div");
}

Tensor add_scalar(const Tensor& a, float s) {
  return scalar_kernel(a, s, kernels::active_kernels().ew_add_scalar);
}
Tensor mul_scalar(const Tensor& a, float s) {
  return scalar_kernel(a, s, kernels::active_kernels().ew_mul_scalar);
}

Tensor neg(const Tensor& a) {
  return unary_kernel(a, kernels::active_kernels().ew_neg);
}
Tensor exp(const Tensor& a) { return unary(a, [](float x) { return std::exp(x); }); }
Tensor log(const Tensor& a) { return unary(a, [](float x) { return std::log(x); }); }
Tensor sqrt(const Tensor& a) {
  return unary_kernel(a, kernels::active_kernels().ew_sqrt);
}
Tensor abs(const Tensor& a) {
  return unary_kernel(a, kernels::active_kernels().ew_abs);
}
Tensor tanh(const Tensor& a) { return unary(a, [](float x) { return std::tanh(x); }); }
Tensor sigmoid(const Tensor& a) {
  return unary(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor relu(const Tensor& a) {
  return unary_kernel(a, kernels::active_kernels().ew_relu);
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;
}  // namespace

Tensor gelu(const Tensor& a) {
  return unary(a, [](float x) {
    const float u = kGeluC * (x + kGeluA * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(u));
  });
}

Tensor gelu_grad(const Tensor& a) {
  return unary(a, [](float x) {
    const float u = kGeluC * (x + kGeluA * x * x * x);
    const float t = std::tanh(u);
    const float du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
    return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
  });
}

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  // Deliberately serial: `f` is caller-supplied (tests/helpers) and may not
  // be safe to invoke from several threads at once.
  Tensor out(a.shape());
  const auto da = a.data();
  auto dout = out.data();
  for (size_t i = 0; i < da.size(); ++i) dout[i] = f(da[i]);
  return out;
}

// ---------------------------------------------------------------------------
// Blocked GEMM (DESIGN.md §10/§15).
//
// The panel-packing driver and per-ISA micro-kernels live in
// tensor/kernels (gemm_common.h + the per-tier TUs); matmul dispatches
// through the active kernel table. Every tier walks k in ascending order
// per C element with mul-then-add, so results are bit-identical across
// tiers and thread counts (and match the pre-dispatch blocked kernel).

Tensor matmul2d(const Tensor& a, const Tensor& b) {
  ACTCOMP_CHECK(a.rank() == 2 && b.rank() == 2,
                "matmul2d needs rank-2 operands, got " << a.shape().str() << " x "
                                                       << b.shape().str());
  const int64_t m = a.dim(0), k = a.dim(1), k2 = b.dim(0), n = b.dim(1);
  ACTCOMP_CHECK(k == k2, "matmul2d inner dims differ: " << a.shape().str() << " x "
                                                        << b.shape().str());
  ACTCOMP_PROFILE("tensor.matmul2d");
  Tensor out(Shape{m, n});
  kernels::active_kernels().gemm_into(a.data().data(), b.data().data(),
                                      out.data().data(), m, k, n);
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() == 2 && b.rank() == 2) return matmul2d(a, b);
  if (a.rank() == 3 && b.rank() == 2) {
    const int64_t B = a.dim(0), m = a.dim(1), k = a.dim(2);
    Tensor flat = a.reshape(Shape{B * m, k});
    return matmul2d(flat, b).reshape(Shape{B, m, b.dim(1)});
  }
  if (a.rank() == 3 && b.rank() == 3) {
    ACTCOMP_CHECK(a.dim(0) == b.dim(0), "batched matmul batch dims differ: "
                                            << a.shape().str() << " x "
                                            << b.shape().str());
    ACTCOMP_CHECK(a.dim(2) == b.dim(1), "batched matmul inner dims differ: "
                                            << a.shape().str() << " x "
                                            << b.shape().str());
    ACTCOMP_PROFILE("tensor.matmul_batched");
    const int64_t B = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
    Tensor out(Shape{B, m, n});
    const float* pa = a.data().data();
    const float* pb = b.data().data();
    float* pc = out.data().data();
    const kernels::KernelTable& kt = kernels::active_kernels();
    if (m * n * k <= kernels::kSimpleGemmFlops) {
      // Small per-batch matrices (attention heads): parallelize across the
      // batch instead of within one matrix.
      core::parallel_for(0, B, 1, [&](int64_t b0, int64_t b1) {
        for (int64_t batch = b0; batch < b1; ++batch) {
          kt.gemm_simple(pa + batch * m * k, pb + batch * k * n,
                         pc + batch * m * n, m, k, n);
        }
      });
    } else {
      for (int64_t batch = 0; batch < B; ++batch) {
        kt.gemm_into(pa + batch * m * k, pb + batch * k * n,
                     pc + batch * m * n, m, k, n);
      }
    }
    return out;
  }
  ACTCOMP_CHECK(false, "matmul: unsupported ranks " << a.rank() << " x " << b.rank());
}

Tensor transpose_last2(const Tensor& a) {
  ACTCOMP_CHECK(a.rank() >= 2, "transpose_last2 needs rank >= 2");
  std::vector<int> axes(static_cast<size_t>(a.rank()));
  for (int i = 0; i < a.rank(); ++i) axes[static_cast<size_t>(i)] = i;
  std::swap(axes[axes.size() - 1], axes[axes.size() - 2]);
  return permute(a, axes);
}

Tensor permute(const Tensor& a, const std::vector<int>& axes) {
  const int r = a.rank();
  ACTCOMP_CHECK(static_cast<int>(axes.size()) == r,
                "permute axes count " << axes.size() << " != rank " << r);
  std::vector<bool> seen(static_cast<size_t>(r), false);
  std::vector<int64_t> out_dims(static_cast<size_t>(r));
  for (int i = 0; i < r; ++i) {
    const int ax = axes[static_cast<size_t>(i)];
    ACTCOMP_CHECK(ax >= 0 && ax < r && !seen[static_cast<size_t>(ax)],
                  "invalid permutation axis " << ax);
    seen[static_cast<size_t>(ax)] = true;
    out_dims[static_cast<size_t>(i)] = a.dim(ax);
  }
  Tensor out{Shape(out_dims)};
  const auto in_strides = a.shape().strides();
  const auto out_strides = out.shape().strides();
  const auto din = a.data();
  auto dout = out.data();
  const int64_t n = a.numel();
  // For each output flat index, reconstruct multi-index and map to input.
  core::parallel_for(0, n, kEwGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t flat = lo; flat < hi; ++flat) {
      int64_t rem = flat;
      int64_t src = 0;
      for (int i = 0; i < r; ++i) {
        const int64_t coord = rem / out_strides[static_cast<size_t>(i)];
        rem %= out_strides[static_cast<size_t>(i)];
        src += coord * in_strides[static_cast<size_t>(axes[static_cast<size_t>(i)])];
      }
      dout[static_cast<size_t>(flat)] = din[static_cast<size_t>(src)];
    }
  });
  return out;
}

float sum_all(const Tensor& a) {
  double s = 0.0;
  for (float v : a.data()) s += v;
  return static_cast<float>(s);
}

float mean_all(const Tensor& a) {
  ACTCOMP_CHECK(a.numel() > 0, "mean_all of empty tensor");
  return sum_all(a) / static_cast<float>(a.numel());
}

float max_all(const Tensor& a) {
  ACTCOMP_CHECK(a.numel() > 0, "max_all of empty tensor");
  return kernels::active_kernels().row_max(a.data().data(),
                                           static_cast<int64_t>(a.numel()));
}

namespace {
// Split shape into (rows, cols) where cols is the last dim.
std::pair<int64_t, int64_t> rows_cols(const Tensor& a) {
  ACTCOMP_CHECK(a.rank() >= 1, "reduction needs rank >= 1");
  const int64_t cols = a.dim(-1);
  const int64_t rows = cols == 0 ? 0 : a.numel() / cols;
  return {rows, cols};
}

Shape drop_last(const Shape& s) {
  std::vector<int64_t> d = s.dims();
  d.pop_back();
  return Shape(d);
}
}  // namespace

Tensor sum_last(const Tensor& a) {
  const auto [rows, cols] = rows_cols(a);
  Tensor out{drop_last(a.shape())};
  const auto din = a.data();
  auto dout = out.data();
  core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      double s = 0.0;
      for (int64_t c = 0; c < cols; ++c) s += din[static_cast<size_t>(r * cols + c)];
      dout[static_cast<size_t>(r)] = static_cast<float>(s);
    }
  });
  return out;
}

Tensor sum_to_last(const Tensor& a) {
  const auto [rows, cols] = rows_cols(a);
  Tensor out{Shape{cols}};
  const auto din = a.data();
  auto dout = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      dout[static_cast<size_t>(c)] += din[static_cast<size_t>(r * cols + c)];
    }
  }
  return out;
}

Tensor argmax_last(const Tensor& a) {
  const auto [rows, cols] = rows_cols(a);
  ACTCOMP_CHECK(cols > 0, "argmax_last of empty rows");
  Tensor out{drop_last(a.shape())};
  const auto din = a.data();
  auto dout = out.data();
  core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      int64_t best = 0;
      float bv = din[static_cast<size_t>(r * cols)];
      for (int64_t c = 1; c < cols; ++c) {
        const float v = din[static_cast<size_t>(r * cols + c)];
        if (v > bv) {
          bv = v;
          best = c;
        }
      }
      dout[static_cast<size_t>(r)] = static_cast<float>(best);
    }
  });
  return out;
}

Tensor softmax_last(const Tensor& a) {
  ACTCOMP_PROFILE("tensor.softmax");
  const auto [rows, cols] = rows_cols(a);
  Tensor out(a.shape());
  const auto din = a.data();
  auto dout = out.data();
  const kernels::KernelTable& kt = kernels::active_kernels();
  core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const size_t base = static_cast<size_t>(r * cols);
      const float m = kt.row_max(din.data() + base, cols);
      double z = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        const float e = std::exp(din[base + static_cast<size_t>(c)] - m);
        dout[base + static_cast<size_t>(c)] = e;
        z += e;
      }
      const float inv = static_cast<float>(1.0 / z);
      kt.ew_scale(dout.data(), inv, r * cols, (r + 1) * cols);
    }
  });
  return out;
}

Tensor log_softmax_last(const Tensor& a) {
  const auto [rows, cols] = rows_cols(a);
  Tensor out(a.shape());
  const auto din = a.data();
  auto dout = out.data();
  const kernels::KernelTable& kt = kernels::active_kernels();
  core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const size_t base = static_cast<size_t>(r * cols);
      const float m = kt.row_max(din.data() + base, cols);
      double z = 0.0;
      for (int64_t c = 0; c < cols; ++c) z += std::exp(din[base + static_cast<size_t>(c)] - m);
      const float lz = m + static_cast<float>(std::log(z));
      kt.ew_sub_scalar(din.data(), lz, dout.data(), r * cols, (r + 1) * cols);
    }
  });
  return out;
}

RowMoments row_moments(const Tensor& a, float eps) {
  const auto [rows, cols] = rows_cols(a);
  ACTCOMP_CHECK(cols > 0, "row_moments of empty rows");
  RowMoments mo{Tensor{drop_last(a.shape())}, Tensor{drop_last(a.shape())}};
  const auto din = a.data();
  auto dmean = mo.mean.data();
  auto drstd = mo.rstd.data();
  const kernels::KernelTable& kt = kernels::active_kernels();
  core::parallel_for(0, rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    kt.rows_moments(din.data(), r0, r1, cols, eps, dmean.data(), drstd.data());
  });
  return mo;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (a.shape() != b.shape()) return false;
  const auto da = a.data();
  const auto db = b.data();
  for (size_t i = 0; i < da.size(); ++i) {
    const float diff = std::fabs(da[i] - db[i]);
    if (diff > atol + rtol * std::fabs(db[i])) return false;
  }
  return true;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  ACTCOMP_CHECK(a.shape() == b.shape(), "max_abs_diff shape mismatch");
  const auto da = a.data();
  const auto db = b.data();
  float m = 0.0f;
  for (size_t i = 0; i < da.size(); ++i) m = std::max(m, std::fabs(da[i] - db[i]));
  return m;
}

float frobenius_norm(const Tensor& a) {
  double s = 0.0;
  for (float v : a.data()) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

float rel_error(const Tensor& a, const Tensor& b) {
  ACTCOMP_CHECK(a.shape() == b.shape(), "rel_error shape mismatch");
  const float nb = frobenius_norm(b);
  double s = 0.0;
  const auto da = a.data();
  const auto db = b.data();
  for (size_t i = 0; i < da.size(); ++i) {
    const double d = static_cast<double>(da[i]) - db[i];
    s += d * d;
  }
  return static_cast<float>(std::sqrt(s)) / std::max(nb, 1e-12f);
}

Tensor concat_last(const std::vector<Tensor>& parts) {
  ACTCOMP_CHECK(!parts.empty(), "concat_last of zero tensors");
  const Shape& first = parts.front().shape();
  int64_t total_last = 0;
  for (const Tensor& p : parts) {
    ACTCOMP_CHECK(p.rank() == first.rank(), "concat_last rank mismatch");
    for (int i = 0; i + 1 < first.rank(); ++i) {
      ACTCOMP_CHECK(p.dim(i) == first.dim(i), "concat_last leading-dim mismatch");
    }
    total_last += p.dim(-1);
  }
  std::vector<int64_t> out_dims = first.dims();
  out_dims.back() = total_last;
  Tensor out{Shape(out_dims)};
  const int64_t rows = total_last == 0 ? 0 : out.numel() / total_last;
  auto dout = out.data();
  int64_t col_off = 0;
  for (const Tensor& p : parts) {
    const int64_t pc = p.dim(-1);
    const auto dp = p.data();
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < pc; ++c) {
        dout[static_cast<size_t>(r * total_last + col_off + c)] =
            dp[static_cast<size_t>(r * pc + c)];
      }
    }
    col_off += pc;
  }
  return out;
}

Tensor slice_last(const Tensor& a, int64_t start, int64_t len) {
  const int64_t cols = a.dim(-1);
  ACTCOMP_CHECK(start >= 0 && len >= 0 && start + len <= cols,
                "slice_last [" << start << ", " << start + len << ") out of range "
                               << cols);
  std::vector<int64_t> out_dims = a.shape().dims();
  out_dims.back() = len;
  Tensor out{Shape(out_dims)};
  const int64_t rows = cols == 0 ? 0 : a.numel() / cols;
  const auto din = a.data();
  auto dout = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < len; ++c) {
      dout[static_cast<size_t>(r * len + c)] =
          din[static_cast<size_t>(r * cols + start + c)];
    }
  }
  return out;
}

}  // namespace actcomp::tensor
