// Tensor (de)serialization for checkpointing.
//
// A checkpoint is a named map of tensors in a simple tagged binary format.
// Takeaway 5 in the paper relies on checkpoint surgery: pre-train with AE
// codecs attached, then load only the BERT weights for fine-tuning (dropping
// the AE parameters). save/load of partial name sets makes that a one-liner.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "tensor/tensor.h"

namespace actcomp::tensor {

using TensorMap = std::map<std::string, Tensor>;

void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is);

void write_tensor_map(std::ostream& os, const TensorMap& m);
TensorMap read_tensor_map(std::istream& is);

void save_tensor_map(const std::string& path, const TensorMap& m);
TensorMap load_tensor_map(const std::string& path);

}  // namespace actcomp::tensor
