#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>

#include "tensor/check.h"

namespace actcomp::tensor {

Tensor::Tensor() : Tensor(Shape{0}) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      storage_(std::make_shared<std::vector<float>>(
          static_cast<size_t>(shape_.numel()), 0.0f)) {}

Tensor::Tensor(Shape shape, std::vector<float> values) : shape_(std::move(shape)) {
  ACTCOMP_CHECK(static_cast<int64_t>(values.size()) == shape_.numel(),
                "value count " << values.size() << " != numel of " << shape_.str());
  storage_ = std::make_shared<std::vector<float>>(std::move(values));
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::arange(int64_t n, float start, float step) {
  ACTCOMP_CHECK(n >= 0, "arange length must be non-negative, got " << n);
  Tensor t(Shape{n});
  auto d = t.data();
  for (int64_t i = 0; i < n; ++i) d[static_cast<size_t>(i)] = start + step * static_cast<float>(i);
  return t;
}

namespace {
int64_t flat_index(const Shape& shape, std::initializer_list<int64_t> idx) {
  ACTCOMP_CHECK(static_cast<int>(idx.size()) == shape.rank(),
                "index rank " << idx.size() << " != tensor rank " << shape.rank());
  const auto strides = shape.strides();
  int64_t flat = 0;
  int i = 0;
  for (int64_t v : idx) {
    ACTCOMP_CHECK(v >= 0 && v < shape.dim(i),
                  "index " << v << " out of range for dim " << i << " of " << shape.str());
    flat += v * strides[static_cast<size_t>(i)];
    ++i;
  }
  return flat;
}
}  // namespace

float& Tensor::at(std::initializer_list<int64_t> idx) {
  return (*storage_)[static_cast<size_t>(flat_index(shape_, idx))];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return (*storage_)[static_cast<size_t>(flat_index(shape_, idx))];
}

float Tensor::item() const {
  ACTCOMP_CHECK(numel() == 1, "item() on tensor of shape " << shape_.str());
  return (*storage_)[0];
}

Tensor Tensor::clone() const {
  Tensor t;
  t.shape_ = shape_;
  t.storage_ = std::make_shared<std::vector<float>>(*storage_);
  return t;
}

Tensor Tensor::reshape(Shape new_shape) const {
  ACTCOMP_CHECK(new_shape.numel() == numel(),
                "reshape " << shape_.str() << " -> " << new_shape.str()
                           << " changes element count");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.storage_ = storage_;
  return t;
}

void Tensor::fill(float value) {
  std::fill(storage_->begin(), storage_->end(), value);
}

std::string Tensor::str() const {
  std::ostringstream os;
  os << "Tensor" << shape_.str() << " {";
  const auto d = data();
  const size_t shown = std::min<size_t>(d.size(), 16);
  for (size_t i = 0; i < shown; ++i) {
    if (i) os << ", ";
    os << d[i];
  }
  if (d.size() > shown) os << ", …";
  os << '}';
  return os.str();
}

}  // namespace actcomp::tensor
