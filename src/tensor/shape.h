// Shape: the dimension list of a Tensor.
//
// A thin value type over std::vector<int64_t> with the handful of queries the
// rest of the library needs (numel, rank, equality, pretty-printing) and
// validation that every extent is non-negative.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace actcomp::tensor {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims);
  explicit Shape(std::vector<int64_t> dims);

  /// Number of dimensions (0 for a scalar shape).
  int rank() const { return static_cast<int>(dims_.size()); }

  /// Total number of elements (1 for a scalar shape).
  int64_t numel() const;

  /// Extent of dimension `i`; negative `i` counts from the back (-1 == last).
  int64_t dim(int i) const;
  int64_t operator[](int i) const { return dim(i); }

  const std::vector<int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Row-major strides (in elements) for this shape.
  std::vector<int64_t> strides() const;

  /// "[2, 3, 4]"
  std::string str() const;

 private:
  std::vector<int64_t> dims_;
};

}  // namespace actcomp::tensor
