#include "tensor/fp16.h"

#include "tensor/kernels/kernel_table.h"

namespace actcomp::tensor {

Tensor fp16_round(const Tensor& t) {
  Tensor out(t.shape());
  const auto din = t.data();
  auto dout = out.data();
  kernels::active_kernels().fp16_round_trip(din.data(), dout.data(),
                                            static_cast<int64_t>(din.size()));
  return out;
}

}  // namespace actcomp::tensor
