#include "tensor/svd.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"
#include "tensor/ops.h"

namespace actcomp::tensor {

std::vector<float> singular_values(const Tensor& a, float tol, int max_sweeps) {
  ACTCOMP_CHECK(a.rank() == 2, "singular_values needs a matrix, got " << a.shape().str());
  // Work on the orientation with fewer columns: sv(A) == sv(A^T).
  Tensor m = a.dim(0) >= a.dim(1) ? a.clone() : transpose_last2(a);
  const int64_t rows = m.dim(0);
  const int64_t cols = m.dim(1);
  if (rows == 0 || cols == 0) return {};

  // Column-major working copy for cache-friendly column rotations.
  std::vector<double> col(static_cast<size_t>(rows * cols));
  {
    const auto d = m.data();
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < cols; ++j) {
        col[static_cast<size_t>(j * rows + i)] = d[static_cast<size_t>(i * cols + j)];
      }
    }
  }
  auto column = [&](int64_t j) { return col.data() + j * rows; };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (int64_t p = 0; p < cols - 1; ++p) {
      for (int64_t q = p + 1; q < cols; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        const double* cp = column(p);
        const double* cq = column(q);
        for (int64_t i = 0; i < rows; ++i) {
          app += cp[i] * cp[i];
          aqq += cq[i] * cq[i];
          apq += cp[i] * cq[i];
        }
        if (std::fabs(apq) <= tol * std::sqrt(app * aqq) || apq == 0.0) continue;
        converged = false;
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        double* mp = column(p);
        double* mq = column(q);
        for (int64_t i = 0; i < rows; ++i) {
          const double vp = mp[i];
          const double vq = mq[i];
          mp[i] = c * vp - s * vq;
          mq[i] = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  std::vector<float> sv(static_cast<size_t>(cols));
  for (int64_t j = 0; j < cols; ++j) {
    double n2 = 0.0;
    const double* cj = column(j);
    for (int64_t i = 0; i < rows; ++i) n2 += cj[i] * cj[i];
    sv[static_cast<size_t>(j)] = static_cast<float>(std::sqrt(n2));
  }
  std::sort(sv.begin(), sv.end(), std::greater<float>());
  return sv;
}

std::vector<float> cumulative_sigma_fraction(const std::vector<float>& sv) {
  std::vector<float> out(sv.size());
  double total = 0.0;
  for (float v : sv) total += v;
  if (total == 0.0) {
    std::fill(out.begin(), out.end(), 0.0f);
    return out;
  }
  double run = 0.0;
  for (size_t i = 0; i < sv.size(); ++i) {
    run += sv[i];
    out[i] = static_cast<float>(run / total);
  }
  return out;
}

int effective_rank(const std::vector<float>& sv, float fraction) {
  ACTCOMP_CHECK(fraction > 0.0f && fraction <= 1.0f,
                "fraction must be in (0, 1], got " << fraction);
  const auto cum = cumulative_sigma_fraction(sv);
  for (size_t i = 0; i < cum.size(); ++i) {
    if (cum[i] >= fraction) return static_cast<int>(i) + 1;
  }
  return static_cast<int>(cum.size());
}

}  // namespace actcomp::tensor
