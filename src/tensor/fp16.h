// IEEE-754 binary16 emulation.
//
// The paper trains BERT-Large in fp16 and all its message-size accounting
// assumes 2-byte elements. We store math in fp32 but provide exact
// half-precision round-tripping so that (a) wire formats can quote true fp16
// byte counts and (b) training can emulate fp16 forward-activation rounding.
//
// The bit converters are `static inline`, integer-only code: every
// translation unit (including the per-ISA kernel TUs under tensor/kernels,
// whose F16C paths fall back to them for NaN payloads) compiles its own
// internal copy, so a copy built under -mavx512f can never be COMDAT-merged
// into a TU that must run on narrower hosts.
#pragma once

#include <bit>
#include <cstdint>

#include "tensor/tensor.h"

namespace actcomp::tensor {

/// Encode an fp32 value as IEEE binary16 bits (round-to-nearest-even,
/// overflow to +/-inf, subnormals preserved).
static inline uint16_t fp32_to_fp16_bits(float v) {
  const uint32_t x = std::bit_cast<uint32_t>(v);
  const uint32_t sign = (x >> 16) & 0x8000u;
  const int32_t exp = static_cast<int32_t>((x >> 23) & 0xFFu) - 127 + 15;
  uint32_t mant = x & 0x7FFFFFu;

  if (((x >> 23) & 0xFFu) == 0xFFu) {  // inf / nan
    return static_cast<uint16_t>(sign | 0x7C00u | (mant ? 0x200u : 0u));
  }
  if (exp >= 0x1F) {  // overflow -> inf
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (exp <= 0) {  // subnormal or zero
    if (exp < -10) return static_cast<uint16_t>(sign);  // underflow to zero
    mant |= 0x800000u;                                  // implicit leading 1
    const int shift = 14 - exp;                         // in [14, 24]
    const uint32_t half = mant >> shift;
    const uint32_t rem = mant & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    uint32_t rounded = half;
    if (rem > halfway || (rem == halfway && (half & 1u))) ++rounded;
    return static_cast<uint16_t>(sign | rounded);
  }
  // Normal: round mantissa from 23 to 10 bits, round-to-nearest-even.
  uint32_t half = mant >> 13;
  const uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
  uint32_t out = (static_cast<uint32_t>(exp) << 10) + half;  // carry may bump exp
  return static_cast<uint16_t>(sign | out);
}

/// Decode IEEE binary16 bits to fp32 (exact).
static inline float fp16_bits_to_fp32(uint16_t bits) {
  const uint32_t sign = static_cast<uint32_t>(bits & 0x8000u) << 16;
  const uint32_t exp = (bits >> 10) & 0x1Fu;
  const uint32_t mant = bits & 0x3FFu;
  uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // +/- 0
    } else {
      // Subnormal: normalize.
      int e = -1;
      uint32_t m = mant;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        ++e;
      }
      out = sign | (static_cast<uint32_t>(127 - 15 - e) << 23) | ((m & 0x3FFu) << 13);
    }
  } else if (exp == 0x1Fu) {
    out = sign | 0x7F800000u | (mant << 13);  // inf / nan
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

/// Round every element through fp16 and back (the value a V100 tensor core
/// would have seen). Dispatches to the active SIMD tier (F16C when the
/// host has it).
Tensor fp16_round(const Tensor& t);

/// Largest finite fp16 value.
inline constexpr float kFp16Max = 65504.0f;

}  // namespace actcomp::tensor
