// IEEE-754 binary16 emulation.
//
// The paper trains BERT-Large in fp16 and all its message-size accounting
// assumes 2-byte elements. We store math in fp32 but provide exact
// half-precision round-tripping so that (a) wire formats can quote true fp16
// byte counts and (b) training can emulate fp16 forward-activation rounding.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace actcomp::tensor {

/// Encode an fp32 value as IEEE binary16 bits (round-to-nearest-even,
/// overflow to +/-inf, subnormals preserved).
uint16_t fp32_to_fp16_bits(float v);

/// Decode IEEE binary16 bits to fp32 (exact).
float fp16_bits_to_fp32(uint16_t bits);

/// Round every element through fp16 and back (the value a V100 tensor core
/// would have seen).
Tensor fp16_round(const Tensor& t);

/// Largest finite fp16 value.
inline constexpr float kFp16Max = 65504.0f;

}  // namespace actcomp::tensor
