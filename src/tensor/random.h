// Deterministic random number generation for reproducible experiments.
//
// Every randomized component in the library takes a Generator& so that a
// single seed at the experiment driver reproduces the whole run — the same
// discipline the paper needed to compare 160+ settings fairly.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "tensor/tensor.h"

namespace actcomp::tensor {

class Generator {
 public:
  explicit Generator(uint64_t seed) : engine_(seed) {}

  /// i.i.d. N(mean, stddev^2).
  Tensor normal(Shape shape, float mean = 0.0f, float stddev = 1.0f);
  /// i.i.d. U[lo, hi).
  Tensor uniform(Shape shape, float lo = 0.0f, float hi = 1.0f);
  /// Integers in [lo, hi], uniformly.
  int64_t randint(int64_t lo, int64_t hi);
  float rand_float(float lo = 0.0f, float hi = 1.0f);
  float rand_normal(float mean = 0.0f, float stddev = 1.0f);
  bool bernoulli(double p);

  /// k distinct indices sampled uniformly from [0, n) (partial Fisher–Yates).
  std::vector<int64_t> sample_without_replacement(int64_t n, int64_t k);

  /// A fresh generator seeded from this one (for spawning independent streams).
  Generator split();

  /// Serialized engine state (the mt19937_64 textual form, which the
  /// standard specifies exactly), for checkpointing: restoring it resumes
  /// the stream at the same cursor, so save -> restore -> draw produces the
  /// bit-identical sequence a straight run would. Distributions carry no
  /// cross-call state here (each draw constructs its own), so the engine
  /// state is the whole cursor.
  std::string state() const;
  /// Inverse of state(); throws std::invalid_argument on a malformed string.
  void set_state(const std::string& s);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Xavier/Glorot-uniform initialization for a [fan_in, fan_out] weight.
Tensor xavier_uniform(Generator& gen, Shape shape, int64_t fan_in, int64_t fan_out);

}  // namespace actcomp::tensor
