// Singular value decomposition via one-sided Jacobi rotations.
//
// Used for the paper's Figure 2 "low-rank analysis": order the singular
// values of gradient vs activation matrices and plot their cumulative mass.
// One-sided Jacobi is simple, numerically robust, and plenty fast for the
// matrix sizes this reproduction analyzes (up to a few thousand columns).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace actcomp::tensor {

/// Singular values of a rank-2 tensor, in descending order.
/// Converges when all column pairs are orthogonal to `tol` (relative).
std::vector<float> singular_values(const Tensor& a, float tol = 1e-7f,
                                   int max_sweeps = 60);

/// The paper's Fig. 2 y-axis: cumulative singular-value mass.
/// cum[i] = (s_0 + … + s_i) / (s_0 + … + s_{n-1}), i.e. the "sigma value
/// percentage" reached by the top (i+1) directions.
std::vector<float> cumulative_sigma_fraction(const std::vector<float>& sv);

/// Effective rank: the smallest r such that the top-r singular values hold
/// `fraction` of the total mass. A low-rank matrix has r << min(m, n).
int effective_rank(const std::vector<float>& sv, float fraction = 0.9f);

}  // namespace actcomp::tensor
