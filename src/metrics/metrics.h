// GLUE-style evaluation metrics (paper §4.3 tables).
//
// The paper reports: accuracy for most tasks, F1 for QQP/MRPC, Matthews
// correlation for CoLA, and Spearman correlation for STS-B.
#pragma once

#include <cstdint>
#include <vector>

namespace actcomp::metrics {

/// Fraction of positions where pred == label, in [0, 1].
double accuracy(const std::vector<int64_t>& pred, const std::vector<int64_t>& label);

/// Binary F1 with class 1 as positive. Returns 0 when no positives exist
/// anywhere (degenerate predictor).
double f1_binary(const std::vector<int64_t>& pred, const std::vector<int64_t>& label);

/// Matthews correlation coefficient for binary labels, in [-1, 1]. Returns 0
/// when any confusion-matrix margin is empty (the GLUE convention).
double matthews_corrcoef(const std::vector<int64_t>& pred,
                         const std::vector<int64_t>& label);

/// Pearson product-moment correlation. Returns 0 for zero-variance inputs.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Spearman rank correlation (average ranks for ties). Returns 0 for
/// zero-variance inputs.
double spearman(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace actcomp::metrics
