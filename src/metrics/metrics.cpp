#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/check.h"

namespace actcomp::metrics {

namespace {
void check_sizes(size_t a, size_t b, const char* name) {
  ACTCOMP_CHECK(a == b, name << ": size mismatch " << a << " vs " << b);
  ACTCOMP_CHECK(a > 0, name << ": empty inputs");
}
}  // namespace

double accuracy(const std::vector<int64_t>& pred, const std::vector<int64_t>& label) {
  check_sizes(pred.size(), label.size(), "accuracy");
  size_t hit = 0;
  for (size_t i = 0; i < pred.size(); ++i) hit += pred[i] == label[i];
  return static_cast<double>(hit) / static_cast<double>(pred.size());
}

double f1_binary(const std::vector<int64_t>& pred, const std::vector<int64_t>& label) {
  check_sizes(pred.size(), label.size(), "f1_binary");
  int64_t tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const bool p = pred[i] == 1;
    const bool l = label[i] == 1;
    tp += p && l;
    fp += p && !l;
    fn += !p && l;
  }
  const int64_t denom = 2 * tp + fp + fn;
  return denom == 0 ? 0.0 : 2.0 * static_cast<double>(tp) / static_cast<double>(denom);
}

double matthews_corrcoef(const std::vector<int64_t>& pred,
                         const std::vector<int64_t>& label) {
  check_sizes(pred.size(), label.size(), "matthews_corrcoef");
  double tp = 0, tn = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const bool p = pred[i] == 1;
    const bool l = label[i] == 1;
    tp += p && l;
    tn += !p && !l;
    fp += p && !l;
    fn += !p && l;
  }
  const double denom =
      std::sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn));
  return denom == 0.0 ? 0.0 : (tp * tn - fp * fn) / denom;
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  check_sizes(a.size(), b.size(), "pearson");
  const double n = static_cast<double>(a.size());
  const double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
  const double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  const double denom = std::sqrt(va * vb);
  return denom == 0.0 ? 0.0 : cov / denom;
}

namespace {
std::vector<double> ranks(const std::vector<double>& v) {
  std::vector<size_t> order(v.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return v[i] < v[j]; });
  std::vector<double> r(v.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) r[order[k]] = avg;
    i = j + 1;
  }
  return r;
}
}  // namespace

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  check_sizes(a.size(), b.size(), "spearman");
  return pearson(ranks(a), ranks(b));
}

}  // namespace actcomp::metrics
