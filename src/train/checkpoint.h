// Versioned, deterministic checkpoint/restore for the training plane.
//
// A checkpoint captures everything a training session needs to resume
// bit-identically: model parameters, optimizer state (Adam moments + step
// count), and the data/RNG cursor (the Generator's engine state plus the
// step counter that drives the LR schedule). The contract, enforced by
// tests/checkpoint_test.cpp, is
//
//   train(N)  ==  train(k) -> save -> restore -> train(N - k)
//
// byte-for-byte on parameters and optimizer moments, for any split point k.
//
// On-disk format (version 1, little-endian, single file):
//
//   u32  magic       0xAC7C0C4B
//   u32  version     1
//   u64  meta_len    | meta: one JSON object (obs/json dump) holding the
//   meta bytes       | step counter, the RNG state string, and free-form
//                    | string metadata
//   u64  payload_len | payload: a tensor/io.h tensor map holding the named
//   payload bytes    | parameters and the optimizer moments ("opt.m.NNN" /
//                    | "opt.v.NNN", aligned with the optimizer's parameter
//                    | order)
//   u64  checksum    FNV-1a over meta + payload
//
// load_checkpoint() rejects bad files with precise std::runtime_error
// messages ("bad checkpoint magic…", "unsupported checkpoint version…",
// "checkpoint truncated…", "checkpoint checksum mismatch…") — a corrupted or
// torn file can never be half-restored into a live model.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/io.h"
#include "tensor/random.h"
#include "train/optimizer.h"

namespace actcomp::train {

inline constexpr uint32_t kCheckpointMagic = 0xAC7C0C4B;
inline constexpr uint32_t kCheckpointVersion = 1;

/// In-memory image of one checkpoint file.
struct Checkpoint {
  int64_t step = 0;             ///< steps completed when the snapshot was taken
  std::string rng_state;        ///< tensor::Generator::state()
  std::map<std::string, std::string> meta;  ///< free-form (config echo, notes)
  tensor::TensorMap tensors;    ///< parameters + optimizer moments
};

/// Serialize / deserialize the container format above. Streams must be
/// binary. Reading throws std::runtime_error on any malformed input.
void write_checkpoint(std::ostream& os, const Checkpoint& ckpt);
Checkpoint read_checkpoint(std::istream& is);

/// File convenience wrappers. save_checkpoint writes to `path` + ".tmp" and
/// renames, so a crash mid-save never leaves a torn file at `path`.
void save_checkpoint(const std::string& path, const Checkpoint& ckpt);
Checkpoint load_checkpoint(const std::string& path);

/// Assemble a Checkpoint from live training state. `params` must cover the
/// optimizer's parameters 1:1 in registration order (model first, then any
/// heads/codecs, exactly as they were added to the optimizer) — the moments
/// are stored positionally.
Checkpoint capture_train_state(const std::vector<nn::NamedParam>& params,
                               const Adam& opt, const tensor::Generator& gen,
                               int64_t step);

/// Inverse of capture_train_state: write parameter values, optimizer
/// moments, and the RNG cursor back into live objects. Throws
/// std::runtime_error naming the first missing or shape-mismatched entry;
/// nothing is mutated until the whole checkpoint has validated.
void restore_train_state(const Checkpoint& ckpt,
                         const std::vector<nn::NamedParam>& params, Adam& opt,
                         tensor::Generator& gen);

}  // namespace actcomp::train
