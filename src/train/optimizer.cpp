#include "train/optimizer.h"

#include <cmath>

#include "tensor/check.h"

namespace actcomp::train {

Optimizer::Optimizer(std::vector<autograd::Variable> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  for (const auto& p : params_) {
    ACTCOMP_CHECK(p.defined() && p.requires_grad(),
                  "optimizer parameter must be a trainable leaf");
  }
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

void Optimizer::add_parameters(const std::vector<autograd::Variable>& params) {
  for (const auto& p : params) {
    ACTCOMP_CHECK(p.defined() && p.requires_grad(),
                  "optimizer parameter must be a trainable leaf");
    params_.push_back(p);
  }
}

float Optimizer::clip_grad_norm(float max_norm) {
  ACTCOMP_CHECK(max_norm > 0.0f, "max_norm must be positive");
  double total = 0.0;
  for (const auto& p : params_) {
    if (!p.has_grad()) continue;
    for (float g : p.grad().data()) total += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    for (auto& p : params_) {
      if (!p.has_grad()) continue;
      // grad() is const; scale through the node.
      for (float& g : p.node()->grad.data()) g *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<autograd::Variable> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {}

void Sgd::step() {
  if (velocity_.size() != params_.size()) velocity_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    auto w = p.mutable_value().data();
    const auto g = p.grad().data();
    if (momentum_ > 0.0f) {
      if (velocity_[i].numel() != p.value().numel()) {
        velocity_[i] = tensor::Tensor::zeros(p.value().shape());
      }
      auto v = velocity_[i].data();
      for (size_t j = 0; j < w.size(); ++j) {
        v[j] = momentum_ * v[j] + g[j];
        w[j] -= lr_ * v[j];
      }
    } else {
      for (size_t j = 0; j < w.size(); ++j) w[j] -= lr_ * g[j];
    }
  }
}

Adam::Adam(std::vector<autograd::Variable> params, float lr, float beta1,
           float beta2, float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {}

void Adam::step() {
  if (m_.size() != params_.size()) {
    m_.resize(params_.size());
    v_.resize(params_.size());
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    if (m_[i].numel() != p.value().numel()) {
      m_[i] = tensor::Tensor::zeros(p.value().shape());
      v_[i] = tensor::Tensor::zeros(p.value().shape());
    }
    auto w = p.mutable_value().data();
    const auto g = p.grad().data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (size_t j = 0; j < w.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) + weight_decay_ * w[j]);
    }
  }
}

void Adam::restore_state(int64_t step_count, std::vector<tensor::Tensor> m,
                         std::vector<tensor::Tensor> v) {
  ACTCOMP_CHECK(step_count >= 0, "Adam step count must be >= 0, got " << step_count);
  ACTCOMP_CHECK(m.size() == params_.size() && v.size() == params_.size(),
                "Adam moment count " << m.size() << "/" << v.size()
                                     << " != parameter count " << params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    const int64_t n = params_[i].value().numel();
    ACTCOMP_CHECK(m[i].numel() == 0 || m[i].numel() == n,
                  "Adam first moment " << i << " has " << m[i].numel()
                                       << " elements, parameter has " << n);
    ACTCOMP_CHECK(v[i].numel() == 0 || v[i].numel() == n,
                  "Adam second moment " << i << " has " << v[i].numel()
                                        << " elements, parameter has " << n);
  }
  t_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
}

LinearWarmupSchedule::LinearWarmupSchedule(float peak_lr, int64_t warmup_steps,
                                           int64_t total_steps)
    : peak_lr_(peak_lr), warmup_steps_(warmup_steps), total_steps_(total_steps) {
  ACTCOMP_CHECK(total_steps > 0 && warmup_steps >= 0 && warmup_steps <= total_steps,
                "bad schedule: warmup " << warmup_steps << " of " << total_steps);
}

float LinearWarmupSchedule::lr_at(int64_t step) const {
  if (step < warmup_steps_) {
    return peak_lr_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  if (step >= total_steps_) return 0.0f;
  const float frac = static_cast<float>(total_steps_ - step) /
                     static_cast<float>(total_steps_ - warmup_steps_);
  return peak_lr_ * frac;
}

}  // namespace actcomp::train
